// Command benchguard is the CI bench-regression gate (`make benchguard`):
// it re-measures the multi-core scaling workload and compares the shape
// of the result — median-normalized Mpps aggregated per (switch,
// representation) — against the checked-in BENCH_parallel.json baseline
// with a symmetric tolerance. See internal/bench/guard.go for why the
// comparison is shape-based rather than absolute.
//
// Usage:
//
//	benchguard                          # measure (best of 3) and compare
//	                                    # against BENCH_parallel.json, ±20%
//	benchguard -tol 0.3 -runs 5         # looser gate, more stable measurement
//	benchguard -current other.json      # compare two files, no measurement
//	benchguard -update -current out.json  # measure and write a fresh
//	                                      # baseline instead of comparing
//	benchguard -measured-out rows.json  # also persist every fresh
//	                                    # measurement, pass or fail
//
// -measured-out writes each fresh measurement to the given path before
// the comparison runs, so a failing CI job still leaves the measured
// rows behind as an artifact — without it, a regression verdict is a
// delta table with no way to inspect what was actually measured.
//
// Exit status is non-zero when any (switch, rep) aggregate moved by more
// than the tolerance in either direction — a too-good result usually
// means the workload or the measurement broke, not that the code got
// faster for free.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"manorm/internal/bench"
)

// options carries the parsed flags through run.
type options struct {
	baseline     string
	current      string
	measuredOut  string
	update       bool
	tol          float64
	runs         int
	attempts     int
	workers      int
	packets      int
	requireReps  []string
	requireWires []string
}

func main() {
	var (
		baseline    = flag.String("baseline", "BENCH_parallel.json", "checked-in baseline report")
		current     = flag.String("current", "", "compare this report instead of measuring")
		measuredOut = flag.String("measured-out", "", "write every fresh measurement to this path before comparing (CI failure artifact)")
		update      = flag.Bool("update", false, "measure and write a fresh report to -current instead of comparing")
		tol         = flag.Float64("tol", 0.20, "symmetric tolerance on each (switch, rep) aggregate")
		runs        = flag.Int("runs", 3, "measurement repetitions (best rate per row is kept)")
		attempts    = flag.Int("attempts", 2, "fresh measurements to try before declaring a regression (ignored with -current)")
		workers     = flag.Int("workers", 8, "worker-count ceiling of the measured workload (keep equal to the baseline's max_workers: the shared rows must run under identical conditions)")
		packets     = flag.Int("packets", 400_000, "packets per measurement")
		requireRep  = flag.String("require-rep", "", "comma-separated representations every switch in the current report must cover (e.g. fused)")
		requireWire = flag.String("require-wire", "", "comma-separated ingest paths every switch in the current report must cover (frames, structs)")
	)
	flag.Parse()

	opts := options{
		baseline: *baseline, current: *current, measuredOut: *measuredOut, update: *update,
		tol: *tol, runs: *runs, attempts: *attempts, workers: *workers, packets: *packets,
	}
	if *requireRep != "" {
		opts.requireReps = strings.Split(*requireRep, ",")
	}
	if *requireWire != "" {
		opts.requireWires = strings.Split(*requireWire, ",")
	}
	if err := run(os.Stdout, opts); err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(1)
	}
}

// measure takes the guard measurement: the fixed scaling workload,
// best-of-runs per row. With -measured-out the rows are persisted
// immediately, so they survive a failing comparison as a CI artifact.
func measure(opts options) (*bench.ParallelReport, error) {
	cfg := bench.DefaultConfig()
	cfg.Packets = opts.packets
	rep, err := bench.MeasureGuard(cfg, opts.workers, opts.runs)
	if err != nil {
		return nil, err
	}
	if opts.measuredOut != "" {
		if werr := bench.WriteParallelJSON(opts.measuredOut, cfg, opts.workers, rep.Results); werr != nil {
			return nil, fmt.Errorf("writing -measured-out: %w", werr)
		}
	}
	return rep, nil
}

func run(w io.Writer, opts options) error {
	if opts.update {
		if opts.current == "" {
			return fmt.Errorf("-update needs -current PATH to write the new baseline to")
		}
		rep, err := measure(opts)
		if err != nil {
			return err
		}
		if err := bench.RequireReps(rep, opts.requireReps); err != nil {
			return err
		}
		if err := bench.RequireWires(rep, opts.requireWires); err != nil {
			return err
		}
		cfg := bench.DefaultConfig()
		cfg.Packets = opts.packets
		if err := bench.WriteParallelJSON(opts.current, cfg, opts.workers, rep.Results); err != nil {
			return err
		}
		fmt.Fprintf(w, "benchguard: wrote %s (%d rows, best of %d runs)\n",
			opts.current, len(rep.Results), opts.runs)
		return nil
	}

	base, err := bench.ReadParallelReport(opts.baseline)
	if err != nil {
		return err
	}
	if opts.current != "" {
		cur, err := bench.ReadParallelReport(opts.current)
		if err != nil {
			return err
		}
		return compareOnce(w, base, cur, opts)
	}

	// A fresh measurement on a shared runner can lose the coin toss; a
	// regression that is real survives a re-measurement, noise does not.
	attempts := max(opts.attempts, 1)
	for i := 1; ; i++ {
		cur, err := measure(opts)
		if err != nil {
			return err
		}
		err = compareOnce(w, base, cur, opts)
		if err == nil || i >= attempts {
			return err
		}
		fmt.Fprintf(w, "benchguard: attempt %d/%d failed (%v); re-measuring\n", i, attempts, err)
	}
}

// compareOnce prints the per-(switch, rep) comparison table and returns
// an error when any aggregate moved beyond the tolerance or the current
// report lacks a required representation. Rows only one report covers are
// printed first: the shape comparison scores just the intersection, so
// coverage drift has to be surfaced rather than silently dropped.
func compareOnce(w io.Writer, base, cur *bench.ParallelReport, opts options) error {
	if err := bench.RequireReps(cur, opts.requireReps); err != nil {
		return err
	}
	if err := bench.RequireWires(cur, opts.requireWires); err != nil {
		return err
	}
	deltas, err := bench.CompareParallel(base, cur, opts.tol)
	if err != nil {
		return err
	}
	if diff := bench.DiffParallelRows(base, cur); !diff.Empty() {
		if len(diff.Added) > 0 {
			fmt.Fprintf(w, "benchguard: rows only in current (not scored): %s\n", strings.Join(diff.Added, ", "))
		}
		if len(diff.Removed) > 0 {
			fmt.Fprintf(w, "benchguard: rows only in baseline (not scored): %s\n", strings.Join(diff.Removed, ", "))
		}
	}
	fmt.Fprintf(w, "benchguard: %s vs current (tol ±%.0f%%, normalized per-host)\n",
		opts.baseline, opts.tol*100)
	fmt.Fprintf(w, "%-22s %-10s %-10s %-8s %s\n", "switch/rep", "base", "current", "delta", "")
	bad := 0
	for _, d := range deltas {
		mark := "ok"
		if !d.OK {
			mark = "REGRESSION"
			bad++
		}
		fmt.Fprintf(w, "%-22s %-10.3f %-10.3f %+-8.1f %s\n",
			d.Key, d.Base, d.Cur, d.Delta*100, mark)
	}
	if bad > 0 {
		return fmt.Errorf("%d of %d (switch, rep) aggregates moved beyond ±%.0f%%", bad, len(deltas), opts.tol*100)
	}
	fmt.Fprintf(w, "benchguard: all %d aggregates within tolerance\n", len(deltas))
	return nil
}
