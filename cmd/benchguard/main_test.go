package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"manorm/internal/bench"
	"manorm/internal/usecases"
)

// writeReport drops a two-row scaling report at path, with the given
// rate for the (ovs, universal) rows.
func writeReport(t *testing.T, path string, ovsRate float64) {
	t.Helper()
	rows := []*bench.ParallelResult{
		{Switch: "ovs", Rep: usecases.Representation("universal"), Workers: 1, RateMpps: ovsRate},
		{Switch: "ovs", Rep: usecases.Representation("universal"), Workers: 2, RateMpps: ovsRate * 1.1},
		{Switch: "eswitch", Rep: usecases.Representation("goto"), Workers: 1, RateMpps: 5},
		{Switch: "eswitch", Rep: usecases.Representation("goto"), Workers: 2, RateMpps: 6},
	}
	if err := bench.WriteParallelJSON(path, bench.DefaultConfig(), 2, rows); err != nil {
		t.Fatal(err)
	}
}

// TestRunCompareFiles: file-vs-file mode passes on matching reports and
// fails when one aggregate regresses beyond tolerance.
func TestRunCompareFiles(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	same := filepath.Join(dir, "same.json")
	slow := filepath.Join(dir, "slow.json")
	writeReport(t, base, 10)
	writeReport(t, same, 10)
	writeReport(t, slow, 4) // ovs/universal halved relative to eswitch/goto

	var out bytes.Buffer
	if err := run(&out, options{baseline: base, current: same, tol: 0.20}); err != nil {
		t.Fatalf("identical reports flagged: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "within tolerance") {
		t.Fatalf("missing pass summary:\n%s", out.String())
	}

	out.Reset()
	if err := run(&out, options{baseline: base, current: slow, tol: 0.20}); err == nil {
		t.Fatalf("regressed report passed:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Fatalf("missing REGRESSION marker:\n%s", out.String())
	}
}

// TestMeasuredOut: a fresh measurement with -measured-out persists the
// rows before any comparison, so a failing gate still leaves them behind.
func TestMeasuredOut(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real (tiny) measurement")
	}
	out := filepath.Join(t.TempDir(), "measured.json")
	rep, err := measure(options{measuredOut: out, packets: 2000, workers: 1, runs: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := bench.ReadParallelReport(out)
	if err != nil {
		t.Fatalf("measured-out not readable: %v", err)
	}
	if len(got.Results) == 0 || len(got.Results) != len(rep.Results) {
		t.Fatalf("measured-out rows = %d, want %d", len(got.Results), len(rep.Results))
	}
}

// TestRunUpdateNeedsPath: -update without -current is a usage error.
func TestRunUpdateNeedsPath(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, options{update: true}); err == nil {
		t.Fatal("expected error")
	}
}

// TestRunMissingBaseline: a deleted baseline is an error, not a pass.
func TestRunMissingBaseline(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, options{baseline: filepath.Join(t.TempDir(), "nope.json")}); err == nil {
		t.Fatal("expected error")
	}
}
