package main

import (
	"testing"

	"manorm/internal/usecases"
)

func TestRunAllSwitchesAndReps(t *testing.T) {
	for _, sw := range []string{"ovs", "eswitch", "lagopus", "noviflow"} {
		for _, rep := range []usecases.Representation{usecases.RepUniversal, usecases.RepGoto} {
			if err := run(sw, rep, 4, 4, 2000, 1, ""); err != nil {
				t.Errorf("%s/%s: %v", sw, rep, err)
			}
		}
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	if err := run("cisco", usecases.RepGoto, 4, 4, 100, 1, ""); err == nil {
		t.Errorf("unknown switch accepted")
	}
	if err := run("ovs", usecases.Representation("x"), 4, 4, 100, 1, ""); err == nil {
		t.Errorf("unknown representation accepted")
	}
}
