package main

import (
	"testing"

	"manorm/internal/usecases"
)

func opts(sw string, rep usecases.Representation, packets int) options {
	return options{
		swName: sw, rep: rep, services: 4, backends: 4,
		packets: packets, seed: 1,
	}
}

func TestRunAllSwitchesAndReps(t *testing.T) {
	for _, sw := range []string{"ovs", "eswitch", "lagopus", "noviflow"} {
		for _, rep := range []usecases.Representation{usecases.RepUniversal, usecases.RepGoto} {
			if err := run(opts(sw, rep, 2000)); err != nil {
				t.Errorf("%s/%s: %v", sw, rep, err)
			}
		}
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	if err := run(opts("cisco", usecases.RepGoto, 100)); err == nil {
		t.Errorf("unknown switch accepted")
	}
	if err := run(opts("ovs", usecases.Representation("x"), 100)); err == nil {
		t.Errorf("unknown representation accepted")
	}
}

func TestRunChurnMode(t *testing.T) {
	if testing.Short() {
		t.Skip("churn mode dials TCP and injects faults")
	}
	o := opts("eswitch", usecases.RepGoto, 0)
	o.churn = 6
	o.loss = 0.05
	o.cut = true
	o.faultSeed = 7
	if err := run(o); err != nil {
		t.Fatalf("churn mode: %v", err)
	}
}
