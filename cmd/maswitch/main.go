// Command maswitch runs one switch model loaded with a gateway &
// load-balancer representation, optionally exposing its OpenFlow-like
// control channel on a TCP port, and reports forwarding rate and latency
// for a generated traffic run.
//
// Usage:
//
//	maswitch -switch eswitch -rep universal -services 20 -backends 8
//	maswitch -switch eswitch -rep goto -listen 127.0.0.1:6653 &
//	          # then drive it with a controller (see examples/reactive)
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"time"

	"manorm/internal/bench"
	"manorm/internal/openflow"
	"manorm/internal/stats"
	"manorm/internal/trafficgen"
	"manorm/internal/usecases"
)

func main() {
	var (
		swName   = flag.String("switch", "eswitch", "switch model: ovs, eswitch, lagopus, noviflow")
		rep      = flag.String("rep", "universal", "representation: universal, goto, metadata, rematch")
		services = flag.Int("services", 20, "number of services (N)")
		backends = flag.Int("backends", 8, "backends per service (M)")
		packets  = flag.Int("packets", 1_000_000, "packets to forward")
		seed     = flag.Int64("seed", 42, "workload seed")
		listen   = flag.String("listen", "", "serve the control channel on this TCP address (runs until killed)")
	)
	flag.Parse()

	if err := run(*swName, usecases.Representation(*rep), *services, *backends, *packets, *seed, *listen); err != nil {
		fmt.Fprintln(os.Stderr, "maswitch:", err)
		os.Exit(1)
	}
}

func run(swName string, rep usecases.Representation, services, backends, packets int, seed int64, listen string) error {
	sw, err := bench.NewSwitch(swName)
	if err != nil {
		return err
	}
	g := usecases.Generate(services, backends, seed)
	p, err := g.Build(rep)
	if err != nil {
		return err
	}
	agent, err := openflow.NewAgent(sw, p)
	if err != nil {
		return err
	}
	fmt.Printf("maswitch: %s loaded with %s (%d stages, %d entries, %d fields)\n",
		swName, rep, p.Depth(), p.EntryCount(), p.FieldCount())

	if listen != "" {
		ln, err := net.Listen("tcp", listen)
		if err != nil {
			return err
		}
		fmt.Printf("maswitch: control channel on %s\n", ln.Addr())
		for {
			c, err := ln.Accept()
			if err != nil {
				return err
			}
			go func() {
				if err := agent.Serve(openflow.NewConn(c)); err != nil {
					fmt.Fprintf(os.Stderr, "maswitch: control session ended: %v\n", err)
				}
			}()
		}
	}

	stream := trafficgen.GwLB(g, 4096, 1.0, seed+1)
	// Warm-up.
	for i := 0; i < stream.Len(); i++ {
		if _, err := sw.Process(stream.Next()); err != nil {
			return err
		}
	}
	var meter stats.RateMeter
	lat := stats.NewReservoir(8192, seed)
	start := time.Now()
	for i := 0; i < packets; i++ {
		t0 := time.Now()
		if _, err := sw.Process(stream.Next()); err != nil {
			return err
		}
		if i%16 == 0 {
			lat.Add(float64(time.Since(t0).Nanoseconds()))
		}
	}
	meter.Record(int64(packets), time.Since(start))

	pm := sw.Perf()
	rate := meter.Mpps()
	if pm.HWLineRateMpps > 0 {
		rate = pm.HWLineRateMpps
	}
	fmt.Printf("maswitch: forwarded %d packets\n", packets)
	fmt.Printf("maswitch: rate %.2f Mpps (software loop: %.2f Mpps)\n", rate, meter.Mpps())
	fmt.Printf("maswitch: service time p50/p75/p99 = %.0f/%.0f/%.0f ns\n",
		lat.Quantile(0.5), lat.Quantile(0.75), lat.Quantile(0.99))
	return nil
}
