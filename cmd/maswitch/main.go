// Command maswitch runs one switch model loaded with a gateway &
// load-balancer representation, optionally exposing its OpenFlow-like
// control channel on a TCP port, and reports forwarding rate and latency
// for a generated traffic run.
//
// With -churn it instead runs a service-update burst against the switch
// over a fault-injected control channel (-loss, -jitter, -cut) and
// reports the client's retry/reconnect counters plus whether the final
// switch state matches the fault-free run. The fault schedule is seeded
// (-faultseed), so the counters are reproducible.
//
// Usage:
//
//	maswitch -switch eswitch -rep universal -services 20 -backends 8
//	maswitch -switch eswitch -rep goto -listen 127.0.0.1:6653 &
//	          # then drive it with a controller (see examples/reactive)
//	maswitch -rep goto -churn 40 -loss 0.01 -jitter 25ms -cut
//	maswitch -rep goto -listen 127.0.0.1:6653 -fabric 3 -fabricmode partition &
//	          # serve 3 control channels (ports 6653..6655), each member
//	          # holding its placement shard — drive them as one logical
//	          # switch with a fabric controller (internal/fabric)
//
// With -schema the switch runs in protocol-independent mode: frames are
// decoded by the named shipped schema's programmable parse graph instead
// of the canonical fixed parser, and the workload is that schema's use
// case (VXLAN tenant gateway, MPLS label-switching router, GTP-U mobile
// gateway):
//
//	maswitch -switch ovs -rep goto -schema vxlan -packets 200000
//
// The shared observability flags (internal/cliflags) apply:
// -metrics-addr serves the switch's telemetry registry as JSON plus
// net/http/pprof; -trace-sample N records a pipeline witness for every
// Nth packet and cross-checks its verdict against the switch's (in both
// the canonical and -schema paths); -json emits the run summary (with
// the full telemetry snapshot) as JSON.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"strconv"
	"time"

	"manorm/internal/bench"
	"manorm/internal/cliflags"
	"manorm/internal/dataplane"
	"manorm/internal/fabric"
	"manorm/internal/openflow"
	"manorm/internal/packet"
	"manorm/internal/stats"
	"manorm/internal/switches"
	"manorm/internal/telemetry"
	"manorm/internal/trafficgen"
	"manorm/internal/usecases"
)

// options carries the full flag set; churn > 0 selects the
// fault-injection mode.
type options struct {
	swName   string
	rep      usecases.Representation
	services int
	backends int
	packets  int
	seed     int64
	listen   string

	fabric     int
	fabricMode string

	churn     int
	loss      float64
	jitter    time.Duration
	cut       bool
	faultSeed int64

	// Observability and schema selection (shared flag set,
	// internal/cliflags).
	metricsAddr string
	traceSample int
	jsonOut     bool
	schema      string
}

func main() {
	var o options
	var rep string
	flag.StringVar(&o.swName, "switch", "eswitch", "switch model: ovs, eswitch, lagopus, noviflow")
	flag.StringVar(&rep, "rep", "universal", "representation: universal, goto, metadata, rematch, fused")
	flag.IntVar(&o.services, "services", 20, "number of services (N)")
	flag.IntVar(&o.backends, "backends", 8, "backends per service (M)")
	flag.IntVar(&o.packets, "packets", 1_000_000, "packets to forward")
	flag.Int64Var(&o.seed, "seed", 42, "workload seed")
	flag.StringVar(&o.listen, "listen", "", "serve the control channel on this TCP address (runs until killed)")
	flag.IntVar(&o.fabric, "fabric", 1, "serve this many fabric members on ports counting up from -listen")
	flag.StringVar(&o.fabricMode, "fabricmode", "replicate", "fabric placement: replicate or partition")
	flag.IntVar(&o.churn, "churn", 0, "run this many service updates over a fault-injected control channel instead of forwarding")
	flag.Float64Var(&o.loss, "loss", 0, "control-channel frame loss probability (churn mode)")
	flag.DurationVar(&o.jitter, "jitter", 0, "control-channel jitter upper bound (churn mode)")
	flag.BoolVar(&o.cut, "cut", false, "force one mid-churn disconnect (churn mode)")
	flag.Int64Var(&o.faultSeed, "faultseed", 1, "fault schedule seed (churn mode)")
	obs := cliflags.Register(flag.CommandLine)
	flag.Parse()
	o.rep = usecases.Representation(rep)
	o.metricsAddr = obs.MetricsAddr
	o.traceSample = obs.TraceSample
	o.jsonOut = obs.JSON
	o.schema = obs.Schema

	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "maswitch:", err)
		os.Exit(1)
	}
}

// summary is the -json report of a forwarding run.
type summary struct {
	Switch    string                  `json:"switch"`
	Rep       usecases.Representation `json:"rep"`
	Schema    string                  `json:"schema,omitempty"`
	Packets   int                     `json:"packets"`
	RateMpps  float64                 `json:"mpps"`
	LoopMpps  float64                 `json:"loop_mpps"`
	ServiceNs struct {
		P50 float64 `json:"p50"`
		P75 float64 `json:"p75"`
		P99 float64 `json:"p99"`
	} `json:"service_ns"`
	// WitnessMismatches counts sampled packets whose witness verdict
	// disagreed with the switch's (must be 0).
	WitnessMismatches int                 `json:"witness_mismatches"`
	Telemetry         *telemetry.Snapshot `json:"telemetry,omitempty"`
}

func run(o options) error {
	if o.churn > 0 {
		return runChurn(o)
	}
	if o.fabric > 1 {
		if o.listen == "" {
			return fmt.Errorf("-fabric needs -listen")
		}
		return runFabric(o)
	}
	if o.schema != "" && o.schema != packet.SchemaDefault {
		if o.listen != "" {
			return fmt.Errorf("-schema does not combine with -listen")
		}
		return runSchema(o)
	}
	o.schema = ""
	reg := telemetry.NewRegistry()
	sw, err := bench.NewSwitch(o.swName, switches.WithTelemetry(reg))
	if err != nil {
		return err
	}
	reg.Register("switch", sw)
	g := usecases.Generate(o.services, o.backends, o.seed)
	p, err := g.Build(o.rep)
	if err != nil {
		return err
	}
	agent, err := openflow.NewAgent(sw, p)
	if err != nil {
		return err
	}
	reg.Register("agent", agent)
	fmt.Printf("maswitch: %s loaded with %s (%d stages, %d entries, %d fields)\n",
		o.swName, o.rep, p.Depth(), p.EntryCount(), p.FieldCount())

	if o.metricsAddr != "" {
		srv, err := telemetry.Serve(o.metricsAddr, reg)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Printf("maswitch: metrics and pprof on http://%s/metrics\n", srv.Addr)
	}

	// The witness datapath is a parallel compilation of the same pipeline
	// used only for sampled packets — the forwarding hot path never pays
	// for explanation.
	sink := telemetry.NewTraceSink(o.traceSample, 32)
	var wdp *dataplane.Pipeline
	var wctx *dataplane.Ctx
	if o.traceSample > 0 {
		reg.SetTraceSink(sink)
		if wdp, err = dataplane.Compile(p, dataplane.AutoTemplates); err != nil {
			return err
		}
		wctx = wdp.NewCtx()
	}

	if o.listen != "" {
		ln, err := net.Listen("tcp", o.listen)
		if err != nil {
			return err
		}
		fmt.Printf("maswitch: control channel on %s\n", ln.Addr())
		for {
			c, err := ln.Accept()
			if err != nil {
				return err
			}
			go func() {
				if err := agent.Serve(nil, c); err != nil {
					fmt.Fprintf(os.Stderr, "maswitch: control session ended: %v\n", err)
				}
			}()
		}
	}

	stream := trafficgen.GwLB(g, 4096, 1.0, o.seed+1)
	// Warm-up.
	for i := 0; i < stream.Len(); i++ {
		if _, err := sw.Process(stream.Next()); err != nil {
			return err
		}
	}
	var meter stats.RateMeter
	lat := stats.NewReservoir(8192, o.seed)
	mismatches := 0
	start := time.Now()
	for i := 0; i < o.packets; i++ {
		pkt := stream.Next()
		var wit *telemetry.Trace
		if sink.Tick() {
			// Explain a copy first: the switch's Process may rewrite the
			// packet's headers.
			cp := *pkt
			if _, tr, werr := wdp.ProcessExplain(&cp, wctx); werr == nil {
				sink.Add(*tr)
				wit = tr
			}
		}
		t0 := time.Now()
		v, err := sw.Process(pkt)
		if err != nil {
			return err
		}
		if i%16 == 0 {
			lat.Add(float64(time.Since(t0).Nanoseconds()))
		}
		if wit != nil && (wit.Drop != v.Drop || (!v.Drop && wit.Port != v.Port)) {
			mismatches++
		}
	}
	meter.Record(int64(o.packets), time.Since(start))

	pm := sw.Perf()
	rate := meter.Mpps()
	if pm.HWLineRateMpps > 0 {
		rate = pm.HWLineRateMpps
	}
	return report(o, rate, meter.Mpps(), lat, mismatches, sink, reg)
}

// runSchema is the protocol-independent forwarding run (-schema): the
// switch parses frames through the named shipped schema's compiled parse
// graph and the workload is that schema's use case. The witness path
// (-trace-sample) compiles the same pipeline against the schema and
// replays sampled frames through ProcessExplainView, so the cross-check
// covers the programmable decoder as well as the match logic.
func runSchema(o options) error {
	dec, err := packet.BuiltinDecoder(o.schema)
	if err != nil {
		return err
	}
	reg := telemetry.NewRegistry()
	sw, err := bench.NewSwitch(o.swName, switches.WithTelemetry(reg), switches.WithSchema(dec))
	if err != nil {
		return err
	}
	reg.Register("switch", sw)
	cfg := bench.Config{Services: o.services, Backends: o.backends, Seed: o.seed}
	p, frames, err := bench.SchemaWorkload(o.schema, o.rep, cfg)
	if err != nil {
		return err
	}
	agent, err := openflow.NewAgent(sw, p)
	if err != nil {
		return err
	}
	reg.Register("agent", agent)
	fmt.Printf("maswitch: %s loaded with %s under schema %s (%d stages, %d entries, %d fields)\n",
		o.swName, o.rep, o.schema, p.Depth(), p.EntryCount(), p.FieldCount())

	if o.metricsAddr != "" {
		srv, err := telemetry.Serve(o.metricsAddr, reg)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Printf("maswitch: metrics and pprof on http://%s/metrics\n", srv.Addr)
	}

	sink := telemetry.NewTraceSink(o.traceSample, 32)
	var wdp *dataplane.Pipeline
	var wctx *dataplane.Ctx
	var wview *packet.FieldView
	if o.traceSample > 0 {
		reg.SetTraceSink(sink)
		if wdp, err = dataplane.Compile(p, dataplane.AutoTemplates, dataplane.WithSchema(dec.Schema())); err != nil {
			return err
		}
		wctx = wdp.NewCtx()
		wview = dec.NewView()
	}

	// Warm-up over one pass of the batch.
	for _, f := range frames {
		if _, err := sw.ProcessFrame(f); err != nil {
			return err
		}
	}
	var meter stats.RateMeter
	lat := stats.NewReservoir(8192, o.seed)
	mismatches := 0
	start := time.Now()
	for i := 0; i < o.packets; i++ {
		f := frames[i%len(frames)]
		var wit *telemetry.Trace
		if sink.Tick() {
			// Explain a fresh parse of the same frame: the switch decodes
			// into its own view inside ProcessFrame, so the witness never
			// observes its mutations.
			if werr := dec.ParseInto(wview, f); werr == nil {
				if _, tr, werr := wdp.ProcessExplainView(wview, wctx); werr == nil {
					sink.Add(*tr)
					wit = tr
				}
			}
		}
		t0 := time.Now()
		v, err := sw.ProcessFrame(f)
		if err != nil {
			return err
		}
		if i%16 == 0 {
			lat.Add(float64(time.Since(t0).Nanoseconds()))
		}
		if wit != nil && (wit.Drop != v.Drop || (!v.Drop && wit.Port != v.Port)) {
			mismatches++
		}
	}
	meter.Record(int64(o.packets), time.Since(start))

	pm := sw.Perf()
	rate := meter.Mpps()
	if pm.HWLineRateMpps > 0 {
		rate = pm.HWLineRateMpps
	}
	return report(o, rate, meter.Mpps(), lat, mismatches, sink, reg)
}

// report prints (or JSON-encodes, -json) the forwarding-run summary
// shared by the canonical and -schema paths.
func report(o options, rate, loopMpps float64, lat *stats.Reservoir, mismatches int, sink *telemetry.TraceSink, reg *telemetry.Registry) error {
	if o.jsonOut {
		var s summary
		s.Switch, s.Rep, s.Schema, s.Packets = o.swName, o.rep, o.schema, o.packets
		s.RateMpps, s.LoopMpps = rate, loopMpps
		s.ServiceNs.P50 = lat.Quantile(0.5)
		s.ServiceNs.P75 = lat.Quantile(0.75)
		s.ServiceNs.P99 = lat.Quantile(0.99)
		s.WitnessMismatches = mismatches
		snap := reg.Snapshot()
		s.Telemetry = &snap
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(&s)
	}

	fmt.Printf("maswitch: forwarded %d packets\n", o.packets)
	fmt.Printf("maswitch: rate %.2f Mpps (software loop: %.2f Mpps)\n", rate, loopMpps)
	fmt.Printf("maswitch: service time p50/p75/p99 = %.0f/%.0f/%.0f ns\n",
		lat.Quantile(0.5), lat.Quantile(0.75), lat.Quantile(0.99))
	if o.traceSample > 0 {
		fmt.Printf("maswitch: %d packets witnessed, %d verdict mismatches\n", sink.Total(), mismatches)
		if traces := sink.Snapshot(); len(traces) > 0 {
			fmt.Print(traces[len(traces)-1].String())
		}
	}
	return nil
}

// runChurn drives the churn-under-faults experiment for one
// representation and prints the deterministic resilience counters.
// runFabric serves a fabric of control channels: the built pipeline is
// placed across -fabric members (replicated, or partitioned by entry-
// stage match key) and each member's shard is loaded into its own switch
// behind its own TCP listener, on ports counting up from -listen. A
// fabric controller (internal/fabric) can then drive the members as one
// logical switch with epoch-stamped updates and convergence checking.
func runFabric(o options) error {
	var mode fabric.PlacementMode
	switch o.fabricMode {
	case "replicate":
		mode = fabric.Replicate
	case "partition":
		mode = fabric.Partition
	default:
		return fmt.Errorf("unknown fabric mode %q (replicate, partition)", o.fabricMode)
	}
	g := usecases.Generate(o.services, o.backends, o.seed)
	p, err := g.Build(o.rep)
	if err != nil {
		return err
	}
	placed, err := fabric.Place(p, o.fabric, mode)
	if err != nil {
		return err
	}
	host, portStr, err := net.SplitHostPort(o.listen)
	if err != nil {
		return err
	}
	basePort, err := strconv.Atoi(portStr)
	if err != nil {
		return fmt.Errorf("-listen port: %w", err)
	}

	reg := telemetry.NewRegistry()
	fmt.Printf("maswitch: fabric of %d members, %s placement of %s (%d stages, %d entries)\n",
		o.fabric, mode, o.rep, p.Depth(), p.EntryCount())
	for i, mp := range placed {
		sw, err := bench.NewSwitch(o.swName)
		if err != nil {
			return err
		}
		agent, err := openflow.NewAgent(sw, mp)
		if err != nil {
			return err
		}
		name := fmt.Sprintf("sw%d", i)
		reg.Register(name, agent)
		addr := net.JoinHostPort(host, portStr)
		if basePort > 0 {
			addr = net.JoinHostPort(host, strconv.Itoa(basePort+i))
		}
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			return err
		}
		fmt.Printf("maswitch: member %s (%d entries) control channel on %s\n",
			name, mp.EntryCount(), ln.Addr())
		go func() {
			for {
				c, err := ln.Accept()
				if err != nil {
					return
				}
				go func() {
					if err := agent.Serve(nil, c); err != nil {
						fmt.Fprintf(os.Stderr, "maswitch: %s control session ended: %v\n", name, err)
					}
				}()
			}
		}()
	}
	if o.metricsAddr != "" {
		srv, err := telemetry.Serve(o.metricsAddr, reg)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Printf("maswitch: metrics and pprof on http://%s/metrics\n", srv.Addr)
	}
	select {}
}

func runChurn(o options) error {
	cfg := bench.Config{Services: o.services, Backends: o.backends, Seed: o.seed}
	fs := bench.FaultSpec{Loss: o.loss, Jitter: o.jitter, Cut: o.cut, Seed: o.faultSeed}
	row, err := bench.FaultChurnOne(cfg, o.rep, o.churn, fs)
	if err != nil {
		return err
	}
	state := "OK (equals fault-free run)"
	if !row.StateOK {
		state = "DIVERGED"
	}
	m := row.Client.Counters
	lat := row.Client.Histograms["rpc_latency_ns"]
	fmt.Printf("maswitch churn: %s, %d updates under %s (seed %d)\n", o.rep, o.churn, fs, o.faultSeed)
	fmt.Printf("  flow-mods sent      %d\n", m["mods_sent"])
	fmt.Printf("  resent after loss   %d\n", m["mods_resent"])
	fmt.Printf("  rpc retries         %d (timeouts %d)\n", m["retries"], m["timeouts"])
	fmt.Printf("  reconnects          %d (sessions %d)\n", m["reconnects"], row.Sessions)
	fmt.Printf("  dup mods absorbed   %d\n", row.DupsSkipped)
	fmt.Printf("  rpc latency p50/p99 %.2f/%.2f ms\n", lat.P50/1e6, lat.P99/1e6)
	fmt.Printf("  final state         %s\n", state)
	return nil
}
