// Command maswitch runs one switch model loaded with a gateway &
// load-balancer representation, optionally exposing its OpenFlow-like
// control channel on a TCP port, and reports forwarding rate and latency
// for a generated traffic run.
//
// With -churn it instead runs a service-update burst against the switch
// over a fault-injected control channel (-loss, -jitter, -cut) and
// reports the client's retry/reconnect counters plus whether the final
// switch state matches the fault-free run. The fault schedule is seeded
// (-faultseed), so the counters are reproducible.
//
// Usage:
//
//	maswitch -switch eswitch -rep universal -services 20 -backends 8
//	maswitch -switch eswitch -rep goto -listen 127.0.0.1:6653 &
//	          # then drive it with a controller (see examples/reactive)
//	maswitch -rep goto -churn 40 -loss 0.01 -jitter 25ms -cut
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"time"

	"manorm/internal/bench"
	"manorm/internal/openflow"
	"manorm/internal/stats"
	"manorm/internal/trafficgen"
	"manorm/internal/usecases"
)

// options carries the full flag set; churn > 0 selects the
// fault-injection mode.
type options struct {
	swName   string
	rep      usecases.Representation
	services int
	backends int
	packets  int
	seed     int64
	listen   string

	churn     int
	loss      float64
	jitter    time.Duration
	cut       bool
	faultSeed int64
}

func main() {
	var o options
	var rep string
	flag.StringVar(&o.swName, "switch", "eswitch", "switch model: ovs, eswitch, lagopus, noviflow")
	flag.StringVar(&rep, "rep", "universal", "representation: universal, goto, metadata, rematch")
	flag.IntVar(&o.services, "services", 20, "number of services (N)")
	flag.IntVar(&o.backends, "backends", 8, "backends per service (M)")
	flag.IntVar(&o.packets, "packets", 1_000_000, "packets to forward")
	flag.Int64Var(&o.seed, "seed", 42, "workload seed")
	flag.StringVar(&o.listen, "listen", "", "serve the control channel on this TCP address (runs until killed)")
	flag.IntVar(&o.churn, "churn", 0, "run this many service updates over a fault-injected control channel instead of forwarding")
	flag.Float64Var(&o.loss, "loss", 0, "control-channel frame loss probability (churn mode)")
	flag.DurationVar(&o.jitter, "jitter", 0, "control-channel jitter upper bound (churn mode)")
	flag.BoolVar(&o.cut, "cut", false, "force one mid-churn disconnect (churn mode)")
	flag.Int64Var(&o.faultSeed, "faultseed", 1, "fault schedule seed (churn mode)")
	flag.Parse()
	o.rep = usecases.Representation(rep)

	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "maswitch:", err)
		os.Exit(1)
	}
}

func run(o options) error {
	if o.churn > 0 {
		return runChurn(o)
	}
	sw, err := bench.NewSwitch(o.swName)
	if err != nil {
		return err
	}
	g := usecases.Generate(o.services, o.backends, o.seed)
	p, err := g.Build(o.rep)
	if err != nil {
		return err
	}
	agent, err := openflow.NewAgent(sw, p)
	if err != nil {
		return err
	}
	fmt.Printf("maswitch: %s loaded with %s (%d stages, %d entries, %d fields)\n",
		o.swName, o.rep, p.Depth(), p.EntryCount(), p.FieldCount())

	if o.listen != "" {
		ln, err := net.Listen("tcp", o.listen)
		if err != nil {
			return err
		}
		fmt.Printf("maswitch: control channel on %s\n", ln.Addr())
		for {
			c, err := ln.Accept()
			if err != nil {
				return err
			}
			go func() {
				if err := agent.Serve(nil, c); err != nil {
					fmt.Fprintf(os.Stderr, "maswitch: control session ended: %v\n", err)
				}
			}()
		}
	}

	stream := trafficgen.GwLB(g, 4096, 1.0, o.seed+1)
	// Warm-up.
	for i := 0; i < stream.Len(); i++ {
		if _, err := sw.Process(stream.Next()); err != nil {
			return err
		}
	}
	var meter stats.RateMeter
	lat := stats.NewReservoir(8192, o.seed)
	start := time.Now()
	for i := 0; i < o.packets; i++ {
		t0 := time.Now()
		if _, err := sw.Process(stream.Next()); err != nil {
			return err
		}
		if i%16 == 0 {
			lat.Add(float64(time.Since(t0).Nanoseconds()))
		}
	}
	meter.Record(int64(o.packets), time.Since(start))

	pm := sw.Perf()
	rate := meter.Mpps()
	if pm.HWLineRateMpps > 0 {
		rate = pm.HWLineRateMpps
	}
	fmt.Printf("maswitch: forwarded %d packets\n", o.packets)
	fmt.Printf("maswitch: rate %.2f Mpps (software loop: %.2f Mpps)\n", rate, meter.Mpps())
	fmt.Printf("maswitch: service time p50/p75/p99 = %.0f/%.0f/%.0f ns\n",
		lat.Quantile(0.5), lat.Quantile(0.75), lat.Quantile(0.99))
	return nil
}

// runChurn drives the churn-under-faults experiment for one
// representation and prints the deterministic resilience counters.
func runChurn(o options) error {
	cfg := bench.Config{Services: o.services, Backends: o.backends, Seed: o.seed}
	fs := bench.FaultSpec{Loss: o.loss, Jitter: o.jitter, Cut: o.cut, Seed: o.faultSeed}
	row, err := bench.FaultChurnOne(cfg, o.rep, o.churn, fs)
	if err != nil {
		return err
	}
	state := "OK (equals fault-free run)"
	if !row.StateOK {
		state = "DIVERGED"
	}
	m := row.Client
	fmt.Printf("maswitch churn: %s, %d updates under %s (seed %d)\n", o.rep, o.churn, fs, o.faultSeed)
	fmt.Printf("  flow-mods sent      %d\n", m.ModsSent)
	fmt.Printf("  resent after loss   %d\n", m.ModsResent)
	fmt.Printf("  rpc retries         %d (timeouts %d)\n", m.Retries, m.Timeouts)
	fmt.Printf("  reconnects          %d (sessions %d)\n", m.Reconnects, row.Sessions)
	fmt.Printf("  dup mods absorbed   %d\n", row.DupsSkipped)
	fmt.Printf("  rpc latency p50/p99 %.2f/%.2f ms\n", m.RPCLatencyP50Ms, m.RPCLatencyP99Ms)
	fmt.Printf("  final state         %s\n", state)
	return nil
}
