// Command manorm is the match-action normalizer CLI: it reads a table (or
// pipeline) in the JSON format of internal/mat, reports its dependency
// structure and normal form, and performs the paper's transformations —
// normalization into a multi-table pipeline, single-step decomposition,
// goto conversion, and denormalization back into a universal table.
//
// Usage:
//
//	manorm -analyze        -in table.json
//	manorm -normalize      -in table.json [-target 3nf] [-fd "ip_dst -> tcp_dst"]... [-join goto] [-verify]
//	manorm -decompose "ip_dst -> tcp_dst" -in table.json [-join metadata]
//	manorm -prove     "ip_dst -> tcp_dst" -in table.json
//	manorm -denormalize    -in pipeline.json
//	manorm -fingerprint    -in pipeline.json
//	manorm -confluence     -in case.json
//
// -prove prints the paper's Theorem 1 rewrite chain for the given
// dependency, machine-checking every step (exact-match tables only).
//
// -trace-sample N emits a runtime witness for every Nth table entry; the
// probes default to canonical packets, and -schema <name> switches them
// to FieldViews over a shipped header schema so tables over arbitrary
// schema fields (vxlan_vni, mpls_label, gtpu_teid, ...) can be witnessed.
//
// -fingerprint prints the canonical normal-form fingerprint of a table
// or pipeline: the installed rules are denormalized to the universal
// table, sorted into canonical entry order, and renormalized, and the
// result is hashed. The fingerprint is invariant to the order rules were
// installed in (resends and interleaved deliveries reorder entries), so
// two switches driven to the same program fingerprint equal — it is how
// the fabric convergence checker (internal/fabric) decides that replicas
// agree.
//
// -confluence runs the semantic commutation verifier
// (internal/confluence) on a JSON case of the form
//
//	{"pipeline": {...} | "table": {...}, "batches": [[flowmod...], ...]}
//
// — a base state plus concurrently-planned flow-mod batches. Every
// interleaving of the batches is applied (exhaustively up to a budget,
// seeded-sampled beyond it) and checked to renormalize to one canonical
// fingerprint, forward witness packets identically, and compensate
// cleanly (rolling back any applied prefix restores the base state). The
// text output is the verdict plus a rendered minimal counterexample for
// non-confluent cases; -format json emits the full verdict structure.
// The exit status is 0 either way — non-confluence is a property of the
// input, not a tool failure.
//
// Input defaults to stdin; output is text (-format text) or JSON
// (-format json) on stdout.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"manorm/internal/cliflags"
	"manorm/internal/confluence"
	"manorm/internal/core"
	"manorm/internal/dataplane"
	"manorm/internal/fabric"
	"manorm/internal/fd"
	"manorm/internal/mat"
	"manorm/internal/netkat"
	"manorm/internal/openflow"
	"manorm/internal/packet"
	"manorm/internal/telemetry"
)

type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, "; ") }
func (m *multiFlag) Set(s string) error { *m = append(*m, s); return nil }

func main() {
	var (
		analyze     = flag.Bool("analyze", false, "report dependencies, keys and normal form")
		normalize   = flag.Bool("normalize", false, "normalize the table into a pipeline")
		decompose   = flag.String("decompose", "", "single decomposition step along the given dependency (\"a,b -> c\")")
		prove       = flag.String("prove", "", "print the machine-checked Theorem 1 rewrite chain for the dependency")
		denorm      = flag.Bool("denormalize", false, "re-join a pipeline into its universal table")
		fingerprint = flag.Bool("fingerprint", false, "print the canonical normal-form fingerprint of a table or pipeline")
		confl       = flag.Bool("confluence", false, "verify semantic commutation of concurrent flow-mod batches against a base state")
		in          = flag.String("in", "-", "input file (JSON table or pipeline), - for stdin")
		target      = flag.String("target", "3nf", "normalization target: 2nf, 3nf or bcnf")
		join        = flag.String("join", "metadata", "join abstraction: metadata, goto or rematch")
		verify      = flag.Bool("verify", false, "verify semantic equivalence of the result")
		format      = flag.String("format", "text", "output format: text or json")
		declaredFDs multiFlag
	)
	flag.Var(&declaredFDs, "fd", "declared semantic dependency (repeatable), e.g. \"ip_dst -> tcp_dst\"")
	obs := cliflags.Register(flag.CommandLine)
	flag.Parse()
	if obs.JSON {
		*format = "json"
	}

	// Verification over large tables can run long; the endpoint mostly
	// buys pprof access while it does.
	if srv, err := obs.Serve(telemetry.NewRegistry()); err != nil {
		fmt.Fprintln(os.Stderr, "manorm:", err)
		os.Exit(1)
	} else if srv != nil {
		fmt.Fprintf(os.Stderr, "manorm: metrics and pprof on http://%s\n", srv.Addr)
		defer srv.Close()
	}

	if err := run(*analyze, *normalize, *decompose, *denorm, *fingerprint, *confl, *in, *target, *join, *verify, *format, declaredFDs, *prove, obs.TraceSample, obs.Schema); err != nil {
		fmt.Fprintln(os.Stderr, "manorm:", err)
		os.Exit(1)
	}
}

func run(analyze, normalize bool, decompose string, denorm, fingerprint, confl bool, in, target, join string, verify bool, format string, declaredFDs []string, prove string, traceSample int, schema string) error {
	data, err := readInput(in)
	if err != nil {
		return err
	}

	if fingerprint {
		return runFingerprint(data)
	}

	if confl {
		return runConfluence(data, format)
	}

	if denorm {
		var p mat.Pipeline
		if err := json.Unmarshal(data, &p); err != nil {
			return fmt.Errorf("parsing pipeline: %w", err)
		}
		tab, err := core.Denormalize(&p)
		if err != nil {
			return err
		}
		return emitTable(os.Stdout, tab, format)
	}

	var tab mat.Table
	if err := json.Unmarshal(data, &tab); err != nil {
		return fmt.Errorf("parsing table: %w", err)
	}
	if err := tab.Validate(); err != nil {
		return err
	}

	var declared []fd.FD
	for _, s := range declaredFDs {
		f, err := fd.Parse(s, tab.Schema)
		if err != nil {
			return err
		}
		declared = append(declared, f)
	}

	switch {
	case analyze:
		return runAnalyze(&tab, declared)
	case prove != "":
		return runProve(&tab, prove)
	case decompose != "":
		return runDecompose(&tab, declared, decompose, join, verify, format, traceSample, schema)
	case normalize:
		return runNormalize(&tab, declared, target, join, verify, format, traceSample, schema)
	default:
		return fmt.Errorf("pick one of -analyze, -normalize, -decompose or -denormalize")
	}
}

// emitWitnesses probes the original table and the produced pipeline with
// packets synthesized from every trace-sample'th table entry and prints
// the paired per-stage witnesses to stderr — the runtime Theorem 1 check
// alongside the symbolic -verify. With schema empty the probes are
// canonical packets (entries using non-canonical fields are skipped);
// with -schema they are FieldViews over the named shipped schema, so
// tables matching arbitrary schema fields (vxlan_vni, mpls_label, ...)
// can be witnessed too.
func emitWitnesses(tab *mat.Table, p *mat.Pipeline, every int, schema string) error {
	if every <= 0 {
		return nil
	}
	var opts []dataplane.Option
	var dec *packet.Decoder
	if schema != "" && schema != packet.SchemaDefault {
		var err error
		if dec, err = packet.BuiltinDecoder(schema); err != nil {
			return err
		}
		opts = append(opts, dataplane.WithSchema(dec.Schema()))
	}
	udp, err := dataplane.Compile(mat.SingleTable(tab), dataplane.AutoTemplates, opts...)
	if err != nil {
		return fmt.Errorf("witness compile (universal): %w", err)
	}
	pdp, err := dataplane.Compile(p, dataplane.AutoTemplates, opts...)
	if err != nil {
		return fmt.Errorf("witness compile (pipeline): %w", err)
	}
	uctx, pctx := udp.NewCtx(), pdp.NewCtx()
	probed := 0
	for ei, entry := range tab.Entries {
		if (ei+1)%every != 0 {
			continue
		}
		var uv, pv dataplane.Verdict
		var utr, ptr *telemetry.Trace
		if dec != nil {
			// Each side explains its own freshly synthesized view: the
			// universal pass may rewrite fields the pipeline pass matches.
			uview, ok := viewProbeFor(dec, tab, entry)
			if !ok {
				continue
			}
			pview, _ := viewProbeFor(dec, tab, entry)
			if uv, utr, err = udp.ProcessExplainView(uview, uctx); err != nil {
				return err
			}
			if pv, ptr, err = pdp.ProcessExplainView(pview, pctx); err != nil {
				return err
			}
		} else {
			pkt, ok := probeFor(tab, entry)
			if !ok {
				continue
			}
			cp := *pkt
			if uv, utr, err = udp.ProcessExplain(pkt, uctx); err != nil {
				return err
			}
			if pv, ptr, err = pdp.ProcessExplain(&cp, pctx); err != nil {
				return err
			}
		}
		probed++
		fmt.Fprint(os.Stderr, utr.String())
		fmt.Fprint(os.Stderr, ptr.String())
		if uv.Drop != pv.Drop || (!uv.Drop && uv.Port != pv.Port) {
			return fmt.Errorf("witness verdicts disagree on entry %d: %s vs %s", ei, utr.Verdict(), ptr.Verdict())
		}
		fmt.Fprintf(os.Stderr, "manorm: entry %d verdicts agree: %s\n", ei, utr.Verdict())
	}
	if probed == 0 {
		fmt.Fprintln(os.Stderr, "manorm: no witnesses emitted (no sampled entry's fields fit the probe schema)")
	}
	return nil
}

// probeFor synthesizes a packet matching one table entry. Only canonical
// packet fields can be probed; ok is false otherwise.
func probeFor(tab *mat.Table, entry mat.Entry) (*packet.Packet, bool) {
	pkt := packet.TCP4(0xA, 0xB, 0, 0, 33333, 0)
	for i, a := range tab.Schema {
		if a.Kind != mat.Field {
			continue
		}
		if packet.FieldWidth(a.Name) == 0 {
			return nil, false
		}
		if !pkt.SetField(a.Name, entry[i].Bits) {
			return nil, false
		}
	}
	return pkt, true
}

// viewProbeFor synthesizes a FieldView matching one table entry under the
// probe schema: every header is marked present and each match field is
// written through its schema slot. Entries matching fields the schema
// does not define cannot be probed; ok is false.
func viewProbeFor(dec *packet.Decoder, tab *mat.Table, entry mat.Entry) (*packet.FieldView, bool) {
	view := dec.NewView()
	sch := dec.Schema()
	for hi := range sch.Headers {
		view.MarkPresent(hi)
	}
	for i, a := range tab.Schema {
		if a.Kind != mat.Field {
			continue
		}
		slot := sch.Slot(a.Name)
		if slot < 0 {
			return nil, false
		}
		view.Set(slot, entry[i].Bits)
	}
	return view, true
}

func readInput(in string) ([]byte, error) {
	if in == "-" {
		return io.ReadAll(os.Stdin)
	}
	return os.ReadFile(in)
}

func buildAnalysis(tab *mat.Table, declared []fd.FD) (*core.Analysis, error) {
	if len(declared) > 0 {
		return core.AnalyzeDeclared(tab, declared)
	}
	return core.Analyze(tab), nil
}

func runAnalyze(tab *mat.Table, declared []fd.FD) error {
	a, err := buildAnalysis(tab, declared)
	if err != nil {
		return err
	}
	fmt.Print(tab.String())
	src := "mined from the instance"
	if a.Declared {
		src = "declared"
	}
	fmt.Printf("\ndependencies (%s):\n", src)
	for _, f := range a.FDs {
		fmt.Printf("  %s\n", f.Format(tab.Schema))
	}
	fmt.Println("candidate keys:")
	for _, k := range a.Keys {
		fmt.Printf("  %s\n", k.Format(tab.Schema))
	}
	fmt.Printf("non-prime attributes: %s\n", a.NonPrime().Format(tab.Schema))
	form, violations := core.Check(a)
	fmt.Printf("normal form: %s\n", form)
	for _, v := range violations {
		fmt.Printf("  %s\n", v.Format(tab.Schema))
	}
	if blocking := core.Check4NF(a); len(blocking) > 0 {
		fmt.Println("multivalued dependencies blocking 4NF:")
		for _, m := range blocking {
			fmt.Printf("  %s\n", m.Format(tab.Schema))
		}
	} else {
		fmt.Println("no multivalued dependencies block 4NF")
	}
	return nil
}

func parseJoin(join string) (core.JoinKind, error) {
	switch join {
	case "metadata", "meta":
		return core.JoinMetadata, nil
	case "goto":
		return core.JoinGoto, nil
	case "rematch":
		return core.JoinRematch, nil
	default:
		return 0, fmt.Errorf("unknown join %q (metadata, goto, rematch)", join)
	}
}

func runDecompose(tab *mat.Table, declared []fd.FD, dep, join string, verify bool, format string, traceSample int, schema string) error {
	a, err := buildAnalysis(tab, declared)
	if err != nil {
		return err
	}
	f, err := fd.Parse(dep, tab.Schema)
	if err != nil {
		return err
	}
	jk, err := parseJoin(join)
	if err != nil {
		return err
	}
	p, err := core.Decompose(a, f, jk)
	if err != nil {
		return err
	}
	if verify {
		if err := verifyEquiv(tab, p); err != nil {
			return err
		}
		fmt.Fprintln(os.Stderr, "manorm: equivalence verified")
	}
	if err := emitWitnesses(tab, p, traceSample, schema); err != nil {
		return err
	}
	return emitPipeline(os.Stdout, p, format)
}

func runNormalize(tab *mat.Table, declared []fd.FD, target, join string, verify bool, format string, traceSample int, schema string) error {
	var form core.Form
	switch target {
	case "2nf":
		form = core.NF2
	case "3nf":
		form = core.NF3
	case "bcnf":
		form = core.BCNF
	default:
		return fmt.Errorf("unknown target %q (2nf, 3nf, bcnf)", target)
	}
	res, err := core.Normalize(tab, core.Options{Target: form, Declared: declared, Verify: verify})
	if err != nil {
		return err
	}
	p := res.Pipeline
	if join == "goto" {
		if p, err = core.ToGoto(p); err != nil {
			return err
		}
		if verify {
			if err := verifyEquiv(tab, p); err != nil {
				return err
			}
		}
	}
	for _, s := range res.Steps {
		fmt.Fprintf(os.Stderr, "manorm: decomposed %s along %s (%s violation)\n", s.TableName, s.FD, s.Level)
	}
	for _, v := range res.Residual {
		fmt.Fprintf(os.Stderr, "manorm: residual: %s\n", v.Format(tab.Schema))
	}
	fmt.Fprintf(os.Stderr, "manorm: footprint %d -> %d fields, %d stage(s)\n",
		tab.FieldCount(), p.FieldCount(), p.Depth())
	if verify {
		fmt.Fprintln(os.Stderr, "manorm: equivalence verified")
	}
	if err := emitWitnesses(tab, p, traceSample, schema); err != nil {
		return err
	}
	return emitPipeline(os.Stdout, p, format)
}

func verifyEquiv(tab *mat.Table, p *mat.Pipeline) error {
	return core.VerifyEquivalent(tab, p)
}

// runFingerprint prints the canonical normal-form fingerprint of the
// input, which may be either a pipeline or a single universal table.
func runFingerprint(data []byte) error {
	var p mat.Pipeline
	if err := json.Unmarshal(data, &p); err == nil && len(p.Stages) > 0 {
		fp, err := fabric.Fingerprint(&p)
		if err != nil {
			return err
		}
		fmt.Println(fp)
		return nil
	}
	var tab mat.Table
	if err := json.Unmarshal(data, &tab); err != nil {
		return fmt.Errorf("parsing table or pipeline: %w", err)
	}
	if err := tab.Validate(); err != nil {
		return err
	}
	fp, err := fabric.Fingerprint(mat.SingleTable(&tab))
	if err != nil {
		return err
	}
	fmt.Println(fp)
	return nil
}

// confluenceCase is the -confluence input: a base state (pipeline or
// single table) plus the concurrently-planned flow-mod batches to race
// against it.
type confluenceCase struct {
	Pipeline *mat.Pipeline        `json:"pipeline,omitempty"`
	Table    *mat.Table           `json:"table,omitempty"`
	Batches  [][]openflow.FlowMod `json:"batches"`
	Options  *confluence.Options  `json:"options,omitempty"`
}

// runConfluence checks semantic commutation of concurrent batches and
// reports the verdict. Non-confluence is a property of the input, not a
// tool failure, so it exits 0 either way.
func runConfluence(data []byte, format string) error {
	var c confluenceCase
	if err := json.Unmarshal(data, &c); err != nil {
		return fmt.Errorf("parsing confluence case: %w", err)
	}
	base := c.Pipeline
	if base == nil || len(base.Stages) == 0 {
		if c.Table == nil {
			return fmt.Errorf("confluence case needs a \"pipeline\" or \"table\" base state")
		}
		if err := c.Table.Validate(); err != nil {
			return err
		}
		base = mat.SingleTable(c.Table)
	}
	if len(c.Batches) < 2 {
		return fmt.Errorf("confluence case needs at least 2 batches, got %d", len(c.Batches))
	}
	opts := confluence.Options{Compensation: true}
	if c.Options != nil {
		opts = *c.Options
	}
	v, err := confluence.Check(base, c.Batches, opts)
	if err != nil {
		return err
	}
	if format == "json" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(v)
	}
	if v.Confluent {
		fmt.Printf("confluent: %d orderings (exhaustive=%v) -> normal form %s\n",
			v.Orderings, v.Exhaustive, v.Fingerprint)
	} else if v.Counterexample != nil {
		fmt.Print(v.Counterexample.Render(c.Batches))
	} else {
		fmt.Println("non-confluent")
	}
	if len(v.Rejections) > 0 {
		fmt.Printf("rejected mods: %d (first: ordering %d batch %d mod %d: %s)\n",
			len(v.Rejections), v.Rejections[0].Ordering, v.Rejections[0].Batch,
			v.Rejections[0].Index, v.Rejections[0].Err)
	}
	if v.Compensation != nil {
		if v.Compensation.OK {
			fmt.Printf("compensation: OK (%d prefixes rolled back cleanly)\n", v.Compensation.Prefixes)
		} else {
			fmt.Printf("compensation: FAILED at batch %d prefix %d: %s\n",
				v.Compensation.Batch, v.Compensation.Prefix, v.Compensation.Detail)
		}
	}
	fmt.Printf("witness: %d packets compared (exhaustive=%v)\n", v.PacketsChecked, v.WitnessExhaustive)
	return nil
}

// runProve prints the machine-checked Theorem 1 rewrite chain.
func runProve(tab *mat.Table, dep string) error {
	f, err := fd.Parse(dep, tab.Schema)
	if err != nil {
		return err
	}
	steps, err := netkat.ProveDecomposition(tab, f.From, f.To)
	if err != nil {
		return err
	}
	fmt.Printf("Theorem 1 instance for %s on table %s — %d machine-checked steps:\n",
		f.Format(tab.Schema), tab.Name, len(steps))
	for i, st := range steps {
		fmt.Printf("\n[%d] %s\n    %s\n", i, st.Axiom, st.Policy)
	}
	fmt.Println("\nall steps verified semantically equivalent over the complete probe domain")
	return nil
}

func emitTable(w io.Writer, t *mat.Table, format string) error {
	if format == "json" {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(t)
	}
	_, err := fmt.Fprint(w, t.String())
	return err
}

func emitPipeline(w io.Writer, p *mat.Pipeline, format string) error {
	if format == "json" {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(p)
	}
	_, err := fmt.Fprint(w, p.String())
	return err
}
