package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"manorm/internal/mat"
)

const fixture = "testdata/gwlb.json"

// captureStdout redirects os.Stdout around fn and returns what was
// written.
func captureStdout(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	runErr := fn()
	w.Close()
	out, err := readAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return out, runErr
}

func readAll(f *os.File) (string, error) {
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := f.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			if err.Error() == "EOF" {
				return sb.String(), nil
			}
			return sb.String(), nil
		}
	}
}

func TestAnalyzeFixture(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return run(true, false, "", false, false, false, fixture, "3nf", "metadata", false, "text",
			[]string{"ip_dst -> tcp_dst", "ip_src, ip_dst -> out"}, "", 0, "")
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"normal form: 1NF", "partial dependency", "{ip_src, ip_dst}", "declared"} {
		if !strings.Contains(out, want) {
			t.Errorf("analyze output missing %q:\n%s", want, out)
		}
	}
}

func TestAnalyzeMined(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return run(true, false, "", false, false, false, fixture, "3nf", "metadata", false, "text", nil, "", 0, "")
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "mined from the instance") {
		t.Errorf("mined analysis not labeled:\n%s", out)
	}
}

func TestNormalizeFixtureJSON(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return run(false, true, "", false, false, false, fixture, "3nf", "metadata", true, "json",
			[]string{"ip_dst -> tcp_dst", "ip_src, ip_dst -> out"}, "", 0, "")
	})
	if err != nil {
		t.Fatal(err)
	}
	var p mat.Pipeline
	if err := json.Unmarshal([]byte(out), &p); err != nil {
		t.Fatalf("output is not a pipeline JSON: %v\n%s", err, out)
	}
	if p.Depth() != 2 {
		t.Errorf("normalized depth = %d, want 2", p.Depth())
	}
}

func TestNormalizeGotoFixture(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return run(false, true, "", false, false, false, fixture, "3nf", "goto", true, "json",
			[]string{"ip_dst -> tcp_dst", "ip_src, ip_dst -> out"}, "", 0, "")
	})
	if err != nil {
		t.Fatal(err)
	}
	var p mat.Pipeline
	if err := json.Unmarshal([]byte(out), &p); err != nil {
		t.Fatal(err)
	}
	// Fig. 1b: 4 stages, 21 fields.
	if p.Depth() != 4 || p.FieldCount() != 21 {
		t.Errorf("goto pipeline: depth=%d fields=%d, want 4/21", p.Depth(), p.FieldCount())
	}
}

func TestDecomposeFixture(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return run(false, false, "ip_dst -> tcp_dst", false, false, false, fixture, "3nf", "goto", true, "text",
			[]string{"ip_dst -> tcp_dst"}, "", 0, "")
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "stage 3") {
		t.Errorf("goto decomposition should have 4 stages:\n%s", out)
	}
}

func TestDenormalizeRoundTrip(t *testing.T) {
	// normalize -> write pipeline -> denormalize -> must be a 6-entry
	// table again.
	pipeJSON, err := captureStdout(t, func() error {
		return run(false, true, "", false, false, false, fixture, "3nf", "metadata", false, "json",
			[]string{"ip_dst -> tcp_dst", "ip_src, ip_dst -> out"}, "", 0, "")
	})
	if err != nil {
		t.Fatal(err)
	}
	tmp := filepath.Join(t.TempDir(), "pipe.json")
	if err := os.WriteFile(tmp, []byte(pipeJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := captureStdout(t, func() error {
		return run(false, false, "", true, false, false, tmp, "3nf", "metadata", false, "json", nil, "", 0, "")
	})
	if err != nil {
		t.Fatal(err)
	}
	var tab mat.Table
	if err := json.Unmarshal([]byte(out), &tab); err != nil {
		t.Fatal(err)
	}
	if len(tab.Entries) != 6 {
		t.Errorf("denormalized entries = %d, want 6", len(tab.Entries))
	}
}

func TestRunErrors(t *testing.T) {
	cases := []struct {
		name string
		fn   func() error
	}{
		{"no mode", func() error {
			return run(false, false, "", false, false, false, fixture, "3nf", "metadata", false, "text", nil, "", 0, "")
		}},
		{"missing file", func() error {
			return run(true, false, "", false, false, false, "testdata/nope.json", "3nf", "metadata", false, "text", nil, "", 0, "")
		}},
		{"bad target", func() error {
			return run(false, true, "", false, false, false, fixture, "7nf", "metadata", false, "text", nil, "", 0, "")
		}},
		{"bad join", func() error {
			return run(false, false, "ip_dst -> tcp_dst", false, false, false, fixture, "3nf", "zipper", false, "text", nil, "", 0, "")
		}},
		{"bad fd", func() error {
			return run(true, false, "", false, false, false, fixture, "3nf", "metadata", false, "text", []string{"nope"}, "", 0, "")
		}},
		{"unknown attr fd", func() error {
			return run(true, false, "", false, false, false, fixture, "3nf", "metadata", false, "text", []string{"bogus -> out"}, "", 0, "")
		}},
		{"false fd", func() error {
			return run(true, false, "", false, false, false, fixture, "3nf", "metadata", false, "text", []string{"ip_dst -> out"}, "", 0, "")
		}},
	}
	for _, tc := range cases {
		if _, err := captureStdout(t, tc.fn); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestProveFixture(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return run(false, false, "", false, false, false, "testdata/exact.json", "3nf", "metadata", false, "text", nil,
			"ip_dst -> tcp_dst", 0, "")
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Theorem 1", "BA-Seq-Idem", "KA-Seq-Dist-R", "all steps verified"} {
		if !strings.Contains(out, want) {
			t.Errorf("prove output missing %q", want)
		}
	}
	// Prefix tables are outside the proof's setting.
	if _, err := captureStdout(t, func() error {
		return run(false, false, "", false, false, false, fixture, "3nf", "metadata", false, "text", nil,
			"ip_dst -> tcp_dst", 0, "")
	}); err == nil {
		t.Errorf("prefix table accepted by -prove")
	}
}

func TestAnalyzeReports4NFBlockers(t *testing.T) {
	// A cross-product table is 3NF+ under mined FDs but blocked from
	// 4NF; -analyze must say so.
	src := `{"name":"acl","attrs":[
	  {"name":"a","kind":"field","width":8},
	  {"name":"b","kind":"field","width":8},
	  {"name":"c","kind":"field","width":8}],
	 "entries":[["1","1","1"],["1","1","2"],["1","2","1"],["1","2","2"],
	            ["2","3","5"],["2","3","6"]]}`
	tmp := filepath.Join(t.TempDir(), "acl.json")
	if err := os.WriteFile(tmp, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := captureStdout(t, func() error {
		return run(true, false, "", false, false, false, tmp, "3nf", "metadata", false, "text", nil, "", 0, "")
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "blocking 4NF") {
		t.Errorf("4NF blockers not reported:\n%s", out)
	}
}

// TestConfluence drives -confluence over a table base with racing adds:
// disjoint keys must report confluent, the same key with different
// actions must render a counterexample. JSON output must round-trip.
func TestConfluence(t *testing.T) {
	writeCase := func(secondKey string) string {
		t.Helper()
		src := `{"table":{"name":"acl","attrs":[
		  {"name":"ip_dst","kind":"field","width":8},
		  {"name":"out","kind":"action","width":8}],
		 "entries":[["1","10"]]},
		 "batches":[
		  [{"Command":1,"TableID":0,"Match":[{"Name":"ip_dst","Width":8,"Cell":{"Bits":2,"PLen":8}}],
		    "Actions":[{"Name":"out","Width":8,"Value":20}]}],
		  [{"Command":1,"TableID":0,"Match":[{"Name":"ip_dst","Width":8,"Cell":{"Bits":` + secondKey + `,"PLen":8}}],
		    "Actions":[{"Name":"out","Width":8,"Value":30}]}]]}`
		tmp := filepath.Join(t.TempDir(), "case.json")
		if err := os.WriteFile(tmp, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
		return tmp
	}

	out, err := captureStdout(t, func() error {
		return run(false, false, "", false, false, true, writeCase("3"), "3nf", "metadata", false, "text", nil, "", 0, "")
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "confluent:") || !strings.Contains(out, "compensation: OK") {
		t.Errorf("disjoint adds should be confluent:\n%s", out)
	}

	out, err = captureStdout(t, func() error {
		return run(false, false, "", false, false, true, writeCase("2"), "3nf", "metadata", false, "text", nil, "", 0, "")
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "non-confluent") || !strings.Contains(out, "batch 0") {
		t.Errorf("racing adds on one key should render a counterexample:\n%s", out)
	}

	out, err = captureStdout(t, func() error {
		return run(false, false, "", false, false, true, writeCase("3"), "3nf", "metadata", false, "json", nil, "", 0, "")
	})
	if err != nil {
		t.Fatal(err)
	}
	var v map[string]any
	if err := json.Unmarshal([]byte(out), &v); err != nil {
		t.Fatalf("json verdict does not parse: %v\n%s", err, out)
	}
	if v["confluent"] != true {
		t.Errorf("json verdict confluent = %v, want true", v["confluent"])
	}

	// A single batch cannot race; the case must be rejected.
	src := `{"table":{"name":"t","attrs":[{"name":"a","kind":"field","width":8},
	 {"name":"out","kind":"action","width":8}],"entries":[]},"batches":[[]]}`
	tmp := filepath.Join(t.TempDir(), "one.json")
	if err := os.WriteFile(tmp, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := captureStdout(t, func() error {
		return run(false, false, "", false, false, true, tmp, "3nf", "metadata", false, "text", nil, "", 0, "")
	}); err == nil {
		t.Errorf("single-batch case accepted")
	}
}

// TestFingerprint checks the canonical normal-form fingerprint: stable
// format, deterministic across runs, invariant under entry reordering,
// and accepted for both table and pipeline inputs.
func TestFingerprint(t *testing.T) {
	fp := func(in string) string {
		t.Helper()
		out, err := captureStdout(t, func() error {
			return run(false, false, "", false, true, false, in, "3nf", "metadata", false, "text", nil, "", 0, "")
		})
		if err != nil {
			t.Fatal(err)
		}
		return strings.TrimSpace(out)
	}
	a := fp(fixture)
	if len(a) != 16 {
		t.Fatalf("fingerprint %q, want 16 hex chars", a)
	}
	if b := fp(fixture); b != a {
		t.Fatalf("fingerprint not deterministic: %s vs %s", a, b)
	}

	// Reverse the table's entries: matching is order-free, so the
	// fingerprint must not move.
	raw, err := os.ReadFile(fixture)
	if err != nil {
		t.Fatal(err)
	}
	var tab mat.Table
	if err := json.Unmarshal(raw, &tab); err != nil {
		t.Fatal(err)
	}
	for i, j := 0, len(tab.Entries)-1; i < j; i, j = i+1, j-1 {
		tab.Entries[i], tab.Entries[j] = tab.Entries[j], tab.Entries[i]
	}
	tmp := filepath.Join(t.TempDir(), "reversed.json")
	enc, err := json.Marshal(&tab)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(tmp, enc, 0o644); err != nil {
		t.Fatal(err)
	}
	if c := fp(tmp); c != a {
		t.Fatalf("fingerprint depends on entry order: %s vs %s", c, a)
	}
}
