package main

import (
	"testing"

	"manorm/internal/bench"
)

// TestAllExperimentsRun smoke-tests every experiment the tool exposes with
// the quick config; output goes to the test log via stdout.
func TestAllExperimentsRun(t *testing.T) {
	cfg := bench.QuickConfig()
	for _, exp := range []string{
		"footprint", "control", "monitor", "reactive",
		"l3", "caveat", "sdx", "depth", "nf4", "churnwire", "cache",
	} {
		if err := run(exp, cfg); err != nil {
			t.Errorf("%s: %v", exp, err)
		}
	}
}

// The measurement-heavy experiments get their own test so a slow machine
// can still see the cheap ones pass quickly.
func TestMeasurementExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("measurement experiments skipped in -short mode")
	}
	cfg := bench.QuickConfig()
	cfg.Packets = 5000
	cfg.LatencySamples = 500
	for _, exp := range []string{"static", "joins"} {
		if err := run(exp, cfg); err != nil {
			t.Errorf("%s: %v", exp, err)
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	if err := run("warp-drive", bench.QuickConfig()); err == nil {
		t.Errorf("unknown experiment accepted")
	}
}
