package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"manorm/internal/bench"
	"manorm/internal/usecases"
)

// TestAllExperimentsRun smoke-tests every experiment the tool exposes with
// the quick config; output goes to the test log via stdout.
func TestAllExperimentsRun(t *testing.T) {
	cfg := bench.QuickConfig()
	for _, exp := range []string{
		"footprint", "control", "monitor", "reactive",
		"l3", "caveat", "sdx", "depth", "nf4", "churnwire", "cache",
	} {
		if err := run(exp, cfg, options{workers: 2}); err != nil {
			t.Errorf("%s: %v", exp, err)
		}
	}
}

// The measurement-heavy experiments get their own test so a slow machine
// can still see the cheap ones pass quickly.
func TestMeasurementExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("measurement experiments skipped in -short mode")
	}
	cfg := bench.QuickConfig()
	cfg.Packets = 5000
	cfg.LatencySamples = 500
	for _, exp := range []string{"static", "joins"} {
		if err := run(exp, cfg, options{workers: 2}); err != nil {
			t.Errorf("%s: %v", exp, err)
		}
	}
}

// TestParallelExperimentWritesJSON runs the multi-core scaling experiment
// end to end and checks the -json artifact: per-switch, per-representation,
// per-worker-count rows.
func TestParallelExperimentWritesJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("measurement experiments skipped in -short mode")
	}
	cfg := bench.QuickConfig()
	cfg.Packets = 5000
	path := filepath.Join(t.TempDir(), "BENCH_parallel.json")
	if err := run("parallel", cfg, options{workers: 2, jsonPath: path}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep bench.ParallelReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	// 4 switches × 3 representations (universal, goto, fused) × (2 worker
	// counts on the frames path + 1 struct-path row of the wire dimension).
	if len(rep.Results) != 36 {
		t.Errorf("got %d result rows, want 36", len(rep.Results))
	}
	seen := map[string]bool{}
	fused, structs := 0, 0
	for _, r := range rep.Results {
		seen[r.Switch] = true
		if r.Rep == usecases.RepFused {
			fused++
		}
		if r.Wire == "structs" {
			structs++
		}
		if r.RateMpps <= 0 {
			t.Errorf("%s/%s @%d: non-positive rate", r.Switch, r.Rep, r.Workers)
		}
	}
	if fused != 12 {
		t.Errorf("got %d fused rows, want 12", fused)
	}
	if structs != 12 {
		t.Errorf("got %d struct-path rows, want 12", structs)
	}
	if len(seen) != 4 {
		t.Errorf("results cover %d switches, want 4", len(seen))
	}
}

// TestFaultChurnExperimentRuns drives the churn-under-faults sweep on a
// scaled-down workload; it dials TCP and sleeps through injected jitter,
// so it stays out of -short runs.
func TestFaultChurnExperimentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("fault-injection experiment skipped in -short mode")
	}
	cfg := bench.QuickConfig()
	cfg.Services, cfg.Backends = 4, 3
	if err := run("faultchurn", cfg, options{workers: 2}); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownExperiment(t *testing.T) {
	if err := run("warp-drive", bench.QuickConfig(), options{workers: 2}); err == nil {
		t.Errorf("unknown experiment accepted")
	}
}
