// Command mabench regenerates the paper's evaluation artifacts — every
// table and figure plus the ablations indexed in DESIGN.md — on the switch
// models of this repository.
//
// Usage:
//
//	mabench -experiment all            # everything (default)
//	mabench -experiment static         # Table 1
//	mabench -experiment reactive       # Fig. 4
//	mabench -experiment footprint      # E1 (§2 redundancy)
//	mabench -experiment control        # E2 (§2 controllability)
//	mabench -experiment monitor        # E3 (§2 monitorability)
//	mabench -experiment l3             # E6 (Fig. 2 at scale)
//	mabench -experiment caveat         # E7 (Fig. 3)
//	mabench -experiment sdx            # E8 (appendix Fig. 5)
//	mabench -experiment joins          # A1
//	mabench -experiment depth          # A2
//	mabench -experiment nf4            # beyond-3NF extension (MVD split)
//	mabench -experiment churnwire      # E2b: update burst cost over TCP
//	mabench -experiment faultchurn     # E2c: update burst under channel faults
//	mabench -experiment fabricchurn    # E9: multi-switch fabric under partitioned churn
//	mabench -experiment cache          # OVS cache layers under Zipf traffic
//	mabench -experiment parallel       # multi-core scaling over sharded workers
//	mabench -experiment schemas        # shipped non-default schemas (VXLAN,
//	                                   # MPLS, GTP-U) through the programmable
//	                                   # parser, all switch models
//	mabench -experiment soak           # E10: sustained soak — forwarding +
//	                                   # churn + channel faults concurrently,
//	                                   # with drift/p99 gates (-duration sets
//	                                   # the soak length; not part of "all",
//	                                   # which is duration-unbounded otherwise)
//
// -workers W runs the multi-core scaling experiment with worker counts
// doubling up to W (`mabench -workers 8` is shorthand for
// `-experiment parallel` with an 8-worker ceiling); -json additionally
// writes the scaling results to BENCH_parallel.json (-o redirects them
// elsewhere, which is how `make benchguard` takes a throwaway measurement
// without clobbering the checked-in baseline).
//
// -quick trades measurement accuracy for speed (used by the smoke tests).
//
// Observability (see the README's "Observability" section): -metrics
// instruments the measured switches and embeds telemetry snapshots in the
// JSON results; -trace-sample N prints paired per-packet pipeline
// witnesses (universal vs goto) after the experiments, failing on any
// verdict disagreement; -metrics-addr serves JSON metrics plus
// net/http/pprof during the run; -cpuprofile captures a CPU profile
// (`make profile`).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime/pprof"
	"time"

	"manorm/internal/bench"
	"manorm/internal/cliflags"
	"manorm/internal/telemetry"
)

// parallelJSONPath is where -json drops the machine-readable scaling
// results.
const parallelJSONPath = "BENCH_parallel.json"

// options carries the multi-core experiment knobs through run.
type options struct {
	// workers is the ceiling of the scaling curve (counts double up to it).
	workers int
	// fabric is the member count for the fabric-churn experiment.
	fabric int
	// jsonPath, when non-empty, receives the scaling results as JSON.
	jsonPath string
	// traceSample > 0 prints witness pairs (universal vs decomposed) for
	// every Nth packet of the standard workload after the experiments.
	traceSample int
	// duration overrides the soak experiment's run length (0 keeps the
	// spec default).
	duration time.Duration
}

func main() {
	var (
		experiment = flag.String("experiment", "all", "which experiment to run")
		quick      = flag.Bool("quick", false, "short measurement loops")
		services   = flag.Int("services", 20, "number of services (N)")
		backends   = flag.Int("backends", 8, "backends per service (M)")
		seed       = flag.Int64("seed", 42, "workload seed")
		packets    = flag.Int("packets", 0, "override the per-measurement packet count (0 keeps the config default)")
		workers    = flag.Int("workers", 0, "max workers for the parallel scaling experiment (implies -experiment parallel)")
		fabricN    = flag.Int("fabric", 3, "switch count for the fabric-churn experiment")
		metrics    = flag.Bool("metrics", false, "instrument measured switches and embed telemetry snapshots in JSON results")
		jsonOut    = flag.String("o", "", "write -json output to this path instead of "+parallelJSONPath)
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file (see `make profile`)")
		duration   = flag.Duration("duration", 0, "soak experiment length (0 keeps the 60s default)")
	)
	obs := cliflags.Register(flag.CommandLine)
	flag.Parse()

	cfg := bench.DefaultConfig()
	if *quick {
		cfg = bench.QuickConfig()
	}
	cfg.Services = *services
	cfg.Backends = *backends
	cfg.Seed = *seed
	cfg.Telemetry = *metrics
	if *packets > 0 {
		cfg.Packets = *packets
	}

	if *workers < 0 {
		fmt.Fprintln(os.Stderr, "mabench: -workers must be >= 1")
		os.Exit(2)
	}
	if *workers > 0 && *experiment == "all" {
		*experiment = "parallel"
	}
	opts := options{workers: *workers, fabric: *fabricN, traceSample: obs.TraceSample, duration: *duration}
	if opts.workers <= 0 {
		opts.workers = 8
	}
	if obs.JSON {
		opts.jsonPath = parallelJSONPath
		if *jsonOut != "" {
			opts.jsonPath = *jsonOut
		}
	}

	// The metrics endpoint of a batch run mainly buys live pprof profiling
	// of the measurement loops; the per-phase registries live inside the
	// harness and land in the JSON results instead.
	if srv, err := obs.Serve(telemetry.NewRegistry()); err != nil {
		fmt.Fprintln(os.Stderr, "mabench:", err)
		os.Exit(1)
	} else if srv != nil {
		fmt.Fprintf(os.Stderr, "mabench: metrics and pprof on http://%s\n", srv.Addr)
		defer srv.Close()
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mabench:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "mabench:", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	if err := run(*experiment, cfg, opts); err != nil {
		fmt.Fprintln(os.Stderr, "mabench:", err)
		os.Exit(1)
	}
}

func run(experiment string, cfg bench.Config, opts options) error {
	w := os.Stdout
	sep := func() { fmt.Fprintln(w) }

	runOne := func(name string) error {
		switch name {
		case "footprint":
			rows, err := bench.Footprint([]int{cfg.Services}, []int{2, 4, 8, 16, 32, 64}, cfg.Seed)
			if err != nil {
				return err
			}
			bench.RenderFootprint(w, rows)
		case "control":
			rows, err := bench.Control(cfg)
			if err != nil {
				return err
			}
			bench.RenderControl(w, rows)
		case "monitor":
			rows, err := bench.Monitor(cfg)
			if err != nil {
				return err
			}
			bench.RenderMonitor(w, rows)
		case "reactive":
			rows, err := bench.Fig4(bench.DefaultUpdateRates(), cfg)
			if err != nil {
				return err
			}
			bench.RenderFig4(w, rows)
		case "static":
			rows, err := bench.Table1(cfg)
			if err != nil {
				return err
			}
			bench.RenderTable1(w, rows)
		case "l3":
			rows, err := bench.L3Experiment([][3]int{{16, 4, 2}, {64, 8, 3}, {256, 16, 4}, {1024, 32, 8}}, cfg.Seed)
			if err != nil {
				return err
			}
			bench.RenderL3(w, rows)
		case "caveat":
			r, err := bench.Caveat()
			if err != nil {
				return err
			}
			bench.RenderCaveat(w, r)
		case "sdx":
			r, err := bench.SDX()
			if err != nil {
				return err
			}
			bench.RenderSDX(w, r)
		case "joins":
			rows, err := bench.Joins(cfg)
			if err != nil {
				return err
			}
			bench.RenderJoins(w, rows)
		case "depth":
			rows, err := bench.Depth(256, 16, 4, cfg.Seed)
			if err != nil {
				return err
			}
			bench.RenderDepth(w, rows)
		case "cache":
			rows, err := bench.CacheLayers(cfg, []int{100, 1000, 10000, 100000})
			if err != nil {
				return err
			}
			bench.RenderCache(w, rows)
		case "churnwire":
			rows, err := bench.WireChurn(cfg, 40)
			if err != nil {
				return err
			}
			bench.RenderWireChurn(w, rows)
		case "faultchurn":
			rows, err := bench.FaultChurn(cfg, 24, bench.DefaultFaultGrid())
			if err != nil {
				return err
			}
			bench.RenderFaultChurn(w, rows)
		case "fabricchurn":
			rows, err := bench.FabricChurn(cfg, 12, bench.DefaultFabricGrid(opts.fabric))
			if err != nil {
				return err
			}
			bench.RenderFabricChurn(w, rows)
			for _, r := range rows {
				if !r.Report.OK() {
					return fmt.Errorf("fabric did not converge (%s): %s\n%s", r.Spec, r.Report, r.Report.Witness)
				}
			}
		case "nf4":
			rows, err := bench.NF4([][3]int{{4, 4, 4}, {8, 8, 4}, {16, 8, 8}})
			if err != nil {
				return err
			}
			bench.RenderNF4(w, rows)
		case "soak":
			// Duration-bounded by construction; excluded from "all" so the
			// full artifact run stays wall-clock bounded by the measurement
			// configs alone.
			spec := bench.DefaultSoakSpec()
			if opts.duration > 0 {
				spec.Duration = opts.duration
			}
			r, err := bench.Soak(cfg, spec)
			if err != nil {
				return err
			}
			bench.RenderSoak(w, r)
			if !r.OK() {
				return fmt.Errorf("soak gates failed: %d violation(s)", len(r.Violations))
			}
		case "schemas":
			rows, err := bench.SchemaTable(cfg, opts.workers)
			if err != nil {
				return err
			}
			bench.RenderSchemas(w, rows)
		case "parallel":
			rows, err := bench.ParallelTable(cfg, opts.workers)
			if err != nil {
				return err
			}
			bench.RenderParallel(w, rows)
			if opts.jsonPath != "" {
				if err := bench.WriteParallelJSON(opts.jsonPath, cfg, opts.workers, rows); err != nil {
					return err
				}
				fmt.Fprintf(w, "wrote %s\n", opts.jsonPath)
			}
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
		return nil
	}

	if experiment != "all" {
		if err := runOne(experiment); err != nil {
			return err
		}
		return traceDemo(w, cfg, opts.traceSample)
	}
	for _, name := range []string{
		"footprint", "control", "monitor", "reactive", "static",
		"l3", "caveat", "sdx", "joins", "depth", "nf4", "churnwire",
		"faultchurn", "fabricchurn", "cache", "parallel", "schemas",
	} {
		if err := runOne(name); err != nil {
			return err
		}
		sep()
	}
	return traceDemo(w, cfg, opts.traceSample)
}

// traceDemo prints sampled per-packet witness pairs — the same packet
// explained through the universal table and the goto-decomposed pipeline
// — and fails if any pair disagrees on the verdict (Theorem 1 violated at
// runtime).
func traceDemo(w io.Writer, cfg bench.Config, every int) error {
	if every <= 0 {
		return nil
	}
	pairs, err := bench.TraceWitnesses(cfg, every, 4)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nsampled pipeline witnesses (every %d packets, universal vs goto):\n", every)
	for _, p := range pairs {
		fmt.Fprint(w, p.Universal.String())
		fmt.Fprint(w, p.Decomposed.String())
		if !p.Agree {
			return fmt.Errorf("witness verdicts disagree: universal %s vs decomposed %s",
				p.Universal.Verdict(), p.Decomposed.Verdict())
		}
		fmt.Fprintf(w, "  verdicts agree: %s\n", p.Universal.Verdict())
	}
	return nil
}
