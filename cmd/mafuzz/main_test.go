package main

import (
	"bytes"
	"strings"
	"testing"

	"manorm/internal/difftest"
	"manorm/internal/switches"
)

// TestRunFuzzClean: a short fuzzing run over healthy seeds must complete
// with zero divergences and a summary line.
func TestRunFuzzClean(t *testing.T) {
	var out bytes.Buffer
	err := run(&out, options{seed: 1, iters: 5, models: switches.ModelNames()})
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "5 programs") || !strings.Contains(out.String(), "0 divergent") {
		t.Fatalf("unexpected summary:\n%s", out.String())
	}
}

// TestRunPlantThenReplay: the Fig. 3 demo must diverge, write a shrunk
// reproducer into the corpus directory, and the replay mode must then
// reproduce it from disk.
func TestRunPlantThenReplay(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	err := run(&out, options{seed: 1, plant: true, corpus: dir, models: switches.ModelNames()})
	if err != nil {
		t.Fatalf("plant: %v\n%s", err, out.String())
	}
	files, err := difftest.CorpusFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 1 {
		t.Fatalf("want 1 reproducer, got %v", files)
	}
	out.Reset()
	if err := run(&out, options{replay: true, corpus: dir, models: switches.ModelNames()}); err != nil {
		t.Fatalf("replay: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "reproduced") {
		t.Fatalf("replay output:\n%s", out.String())
	}
}

// TestRunReplayEmptyCorpus: replaying an empty corpus is an error, not a
// silent pass — CI must not green-light a deleted corpus.
func TestRunReplayEmptyCorpus(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, options{replay: true, corpus: t.TempDir()}); err == nil {
		t.Fatal("expected error for empty corpus")
	}
}
