// Command mafuzz drives the differential fuzzing subsystem
// (internal/difftest): it generates seeded random match-action programs,
// executes every representation the normalizer can produce for them on
// every switch model, and cross-checks all outputs packet by packet,
// against the relational semantics and against the NetKAT oracle. Any
// divergence is shrunk to a minimal reproducer and written to the corpus
// directory; the exit status is non-zero.
//
// Usage:
//
//	mafuzz -seed 1 -iters 2000              # fixed iteration budget
//	mafuzz -seed 1 -duration 30s            # time budget (the CI smoke stage)
//	mafuzz -plant-caveat -corpus DIR        # Fig. 3 demo: plant the forbidden
//	                                        # decomposition; it MUST diverge,
//	                                        # and the minimized reproducer is
//	                                        # written to DIR
//	mafuzz -replay -corpus DIR              # re-execute every reproducer in
//	                                        # DIR; each must still diverge
//	                                        # with its recorded kind
//	mafuzz -schema-fuzz -iters 500          # schema mode: every program gets a
//	                                        # freshly invented header schema and
//	                                        # parse graph; frames replay through
//	                                        # the compiled decoder
//	mafuzz -plant-schema-hazard -corpus DIR # the rematch hazard expressed over
//	                                        # the VXLAN schema: must diverge at
//	                                        # the compiled layers only
//	mafuzz -confluence-fuzz -iters 250      # confluence mode: every seed draws a
//	                                        # base table plus two concurrent
//	                                        # flow-mod batches; the semantic
//	                                        # confluence verifier's verdict is
//	                                        # cross-checked against brute-force
//	                                        # interleaving on the NetKAT oracle.
//	                                        # Genuine non-confluence is counted;
//	                                        # only verifier-vs-brute-force
//	                                        # disagreement fails the run
//	mafuzz -plant-confluence -corpus DIR    # plant two racing adds of one key on
//	                                        # the rematch-hazard table: the pair
//	                                        # MUST be flagged non-confluent and
//	                                        # the reproducer is written to DIR
//
// The committed reproducers live in internal/difftest/testdata/corpus and
// are replayed by `go test ./internal/difftest` on every run.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"manorm/internal/difftest"
	"manorm/internal/switches"
)

// options carries the parsed flags through run.
type options struct {
	seed     int64
	iters    int
	duration time.Duration
	corpus   string
	models   []string
	plant    bool
	hazard   bool
	schema   bool
	schemaHz bool
	conflFz  bool
	conflPl  bool
	replay   bool
	verbose  bool
}

func main() {
	var (
		seed     = flag.Int64("seed", 1, "base seed; iteration i runs program seed+i")
		iters    = flag.Int("iters", 0, "iteration budget (default 1000 when no -duration)")
		duration = flag.Duration("duration", 0, "time budget; stops after the current program")
		corpus   = flag.String("corpus", "", "corpus directory for reproducers (write on divergence, read with -replay)")
		models   = flag.String("models", strings.Join(switches.ModelNames(), ","), "comma-separated switch models to execute on")
		plant    = flag.Bool("plant-caveat", false, "plant the paper's Fig. 3 action-to-match decomposition: the run fails unless it diverges; the shrunk reproducer goes to -corpus")
		hazard   = flag.Bool("plant-hazard", false, "plant the set-field/rematch hazard (rewrite a field a later stage re-matches): must diverge at the compiled layers only")
		schema   = flag.Bool("schema-fuzz", false, "fuzz schema-mode programs: each seed invents a header schema and parse graph and the frames replay through its compiled decoder")
		schemaHz = flag.Bool("plant-schema-hazard", false, "plant the rematch hazard over the VXLAN schema: must diverge at the compiled layers only")
		conflFz  = flag.Bool("confluence-fuzz", false, "fuzz concurrent flow-mod batch pairs: the confluence verifier's verdict must agree with brute-force interleaving on every seed")
		conflPl  = flag.Bool("plant-confluence", false, "plant two racing adds of the same key on the rematch-hazard table: must be flagged non-confluent")
		replay   = flag.Bool("replay", false, "replay every corpus file instead of fuzzing")
		verbose  = flag.Bool("v", false, "log every program")
	)
	flag.Parse()

	opts := options{
		seed: *seed, iters: *iters, duration: *duration,
		corpus: *corpus, plant: *plant, hazard: *hazard,
		schema: *schema, schemaHz: *schemaHz, conflFz: *conflFz, conflPl: *conflPl,
		replay: *replay, verbose: *verbose,
	}
	for _, m := range strings.Split(*models, ",") {
		if m = strings.TrimSpace(m); m != "" {
			opts.models = append(opts.models, m)
		}
	}
	if opts.iters == 0 && opts.duration == 0 {
		opts.iters = 1000
	}

	if err := run(os.Stdout, opts); err != nil {
		fmt.Fprintln(os.Stderr, "mafuzz:", err)
		os.Exit(1)
	}
}

// run dispatches to the selected mode and returns an error when the run
// must fail (divergence while fuzzing, no divergence while planting, lost
// divergence while replaying).
func run(w io.Writer, opts options) error {
	cfg := difftest.DefaultExecConfig()
	cfg.Models = opts.models
	switch {
	case opts.replay:
		return runReplay(w, opts, cfg)
	case opts.conflFz:
		return runConfluenceFuzz(w, opts, cfg)
	case opts.conflPl:
		return runPlantConfluence(w, opts, cfg)
	case opts.plant || opts.hazard || opts.schemaHz:
		return runPlant(w, opts, cfg)
	default:
		return runFuzz(w, opts, cfg)
	}
}

// runFuzz is the main loop: generate, execute, and on divergence shrink
// and persist.
func runFuzz(w io.Writer, opts options, cfg difftest.ExecConfig) error {
	start := time.Now()
	divergent := 0
	programs := 0
	packets := 0
	for i := 0; ; i++ {
		if opts.iters > 0 && i >= opts.iters {
			break
		}
		if opts.duration > 0 && time.Since(start) >= opts.duration {
			break
		}
		seed := opts.seed + int64(i)
		var p *difftest.Program
		if opts.schema {
			p = difftest.GenerateSchema(seed, difftest.DefaultGenConfig())
		} else {
			p = difftest.Generate(seed, difftest.DefaultGenConfig())
		}
		programs++
		packets += p.NumInputs()
		divs, err := difftest.Execute(p, cfg)
		if err != nil {
			return fmt.Errorf("seed %d: %w", seed, err)
		}
		if opts.verbose {
			fmt.Fprintf(w, "seed %d: %d entries, %d packets, %d divergences\n",
				seed, len(p.Table.Entries), p.NumInputs(), len(divs))
		}
		if len(divs) == 0 {
			continue
		}
		divergent++
		fmt.Fprintf(w, "seed %d DIVERGED:\n", seed)
		for _, d := range divs {
			fmt.Fprintf(w, "  %s\n", d)
		}
		if opts.corpus != "" {
			s := difftest.Shrink(p, cfg)
			path, err := difftest.WriteCorpus(opts.corpus, s, divs[0].Kind)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "  minimized reproducer (%d attrs, %d entries, %d packets): %s\n",
				len(s.Table.Schema), len(s.Table.Entries), s.NumInputs(), path)
		}
	}
	elapsed := time.Since(start)
	fmt.Fprintf(w, "mafuzz: %d programs (%d packets) on models [%s] in %v (%.1f prog/s): %d divergent\n",
		programs, packets, strings.Join(opts.models, " "), elapsed.Round(time.Millisecond),
		float64(programs)/elapsed.Seconds(), divergent)
	if divergent > 0 {
		return fmt.Errorf("%d of %d programs diverged", divergent, programs)
	}
	return nil
}

// runPlant demonstrates a known caveat end to end: build a program whose
// decomposition must misbehave (the paper's Fig. 3 action-to-match split,
// or the set-field/rematch hazard), execute it, require a divergence, and
// write the shrunk reproducer to the corpus.
func runPlant(w io.Writer, opts options, cfg difftest.ExecConfig) error {
	var p *difftest.Program
	var err error
	what := "fig3 caveat"
	if opts.schemaHz {
		what = "schema rematch hazard"
		p, err = difftest.PlantSchemaHazard(opts.seed)
		if err != nil {
			return err
		}
	} else if opts.hazard {
		what = "rematch hazard"
		p = difftest.PlantRematchHazard(opts.seed)
	} else {
		p, err = difftest.PlantCaveat(opts.seed, difftest.DefaultGenConfig())
		if err != nil {
			return err
		}
	}
	divs, err := difftest.Execute(p, cfg)
	if err != nil {
		return err
	}
	if len(divs) == 0 {
		return fmt.Errorf("seed %d: planted %s did NOT diverge — the detector is broken", opts.seed, what)
	}
	fmt.Fprintf(w, "planted %s (seed %d) diverged as it must:\n", what, opts.seed)
	for _, d := range divs {
		fmt.Fprintf(w, "  %s\n", d)
	}
	s := difftest.Shrink(p, cfg)
	fmt.Fprintf(w, "shrunk %d -> %d (attrs+entries+packets)\n", p.Size(), s.Size())
	if opts.corpus != "" {
		path, err := difftest.WriteCorpus(opts.corpus, s, divs[0].Kind)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "reproducer: %s\n", path)
	}
	return nil
}

// runConfluenceFuzz is the confluence difftest loop: every seed draws a
// base table plus two concurrent batches, and the verifier's verdict is
// cross-checked against brute-force interleaving on the NetKAT oracle.
// Genuine non-confluence ("non-confluent") is an expected, counted
// outcome of racing updates; only a verifier-vs-brute-force disagreement
// ("confluence") fails the run, and those disagreements are shrunk into
// the corpus.
func runConfluenceFuzz(w io.Writer, opts options, cfg difftest.ExecConfig) error {
	start := time.Now()
	programs, confluent, nonConfluent, disagreements := 0, 0, 0, 0
	for i := 0; ; i++ {
		if opts.iters > 0 && i >= opts.iters {
			break
		}
		if opts.duration > 0 && time.Since(start) >= opts.duration {
			break
		}
		seed := opts.seed + int64(i)
		p := difftest.GenerateConcurrent(seed, difftest.DefaultGenConfig())
		programs++
		divs, err := difftest.Execute(p, cfg)
		if err != nil {
			return fmt.Errorf("seed %d: %w", seed, err)
		}
		mods := 0
		for _, b := range p.Batches {
			mods += len(b)
		}
		if opts.verbose {
			fmt.Fprintf(w, "seed %d: %d entries, %d batch mods, %d divergences\n",
				seed, len(p.Table.Entries), mods, len(divs))
		}
		bad := false
		for _, d := range divs {
			switch d.Kind {
			case difftest.KindNonConfluent:
				nonConfluent++
			default:
				bad = true
			}
		}
		if !bad {
			if len(divs) == 0 {
				confluent++
			}
			continue
		}
		disagreements++
		fmt.Fprintf(w, "seed %d VERIFIER DISAGREEMENT:\n", seed)
		for _, d := range divs {
			fmt.Fprintf(w, "  %s\n", d)
		}
		if opts.corpus != "" {
			s := difftest.Shrink(p, cfg)
			path, err := difftest.WriteCorpus(opts.corpus, s, divs[0].Kind)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "  minimized reproducer: %s\n", path)
		}
	}
	elapsed := time.Since(start)
	fmt.Fprintf(w, "mafuzz: %d concurrent batch pairs in %v (%.1f pair/s): %d confluent, %d non-confluent, %d verifier disagreements\n",
		programs, elapsed.Round(time.Millisecond), float64(programs)/elapsed.Seconds(),
		confluent, nonConfluent, disagreements)
	if disagreements > 0 {
		return fmt.Errorf("%d of %d pairs produced verifier-vs-brute-force disagreements", disagreements, programs)
	}
	return nil
}

// runPlantConfluence plants the canonical racing pair (two adds of the
// same fresh key with different actions on the rematch-hazard table),
// requires the non-confluent verdict, and writes the shrunk reproducer.
func runPlantConfluence(w io.Writer, opts options, cfg difftest.ExecConfig) error {
	p := difftest.PlantConfluencePair(opts.seed)
	divs, err := difftest.Execute(p, cfg)
	if err != nil {
		return err
	}
	flagged := false
	for _, d := range divs {
		if d.Kind == difftest.KindNonConfluent {
			flagged = true
		} else {
			return fmt.Errorf("seed %d: planted racing pair produced a %s divergence — the verifier is broken: %s", opts.seed, d.Kind, d)
		}
	}
	if !flagged {
		return fmt.Errorf("seed %d: planted racing pair was NOT flagged non-confluent — the detector is broken", opts.seed)
	}
	fmt.Fprintf(w, "planted racing pair (seed %d) flagged non-confluent as it must:\n", opts.seed)
	for _, d := range divs {
		fmt.Fprintf(w, "  %s\n", d)
	}
	s := difftest.Shrink(p, cfg)
	fmt.Fprintf(w, "shrunk %d -> %d (attrs+entries+mods)\n", p.Size(), s.Size())
	if opts.corpus != "" {
		path, err := difftest.WriteCorpus(opts.corpus, s, difftest.KindNonConfluent)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "reproducer: %s\n", path)
	}
	return nil
}

// runReplay re-executes every corpus reproducer; each must still diverge
// with the kind recorded when it was written.
func runReplay(w io.Writer, opts options, cfg difftest.ExecConfig) error {
	if opts.corpus == "" {
		return fmt.Errorf("-replay needs -corpus")
	}
	files, err := difftest.CorpusFiles(opts.corpus)
	if err != nil {
		return err
	}
	if len(files) == 0 {
		return fmt.Errorf("no corpus files in %s", opts.corpus)
	}
	bad := 0
	for _, f := range files {
		divs, kind, err := difftest.Replay(f, cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", f, err)
		}
		found := false
		for _, d := range divs {
			if d.Kind == kind {
				found = true
			}
		}
		if found {
			fmt.Fprintf(w, "%s: reproduced [%s]\n", f, kind)
		} else {
			bad++
			fmt.Fprintf(w, "%s: LOST its [%s] divergence (got %v)\n", f, kind, divs)
		}
	}
	if bad > 0 {
		return fmt.Errorf("%d of %d reproducers no longer diverge", bad, len(files))
	}
	return nil
}
