// Top-level benchmarks: one per table/figure of the paper, delegating to
// the measurement harness and substrates. Run with
//
//	go test -bench=. -benchmem
//
// The custom metrics (Mpps, delay-us, fields, entries-touched) carry the
// numbers EXPERIMENTS.md records; ns/op of the packet benches is the raw
// per-packet service time of the switch model under test.
package manorm_test

import (
	"runtime"
	"testing"

	"manorm/internal/bench"
	"manorm/internal/controlplane"
	"manorm/internal/core"
	"manorm/internal/dataplane"
	"manorm/internal/switches"
	"manorm/internal/trafficgen"
	"manorm/internal/usecases"
)

// --- Table 1: static performance --------------------------------------

// benchSwitch measures one (switch, representation) cell of Table 1 as a
// packet-processing loop.
func benchSwitch(b *testing.B, swName string, rep usecases.Representation) {
	sw, err := bench.NewSwitch(swName)
	if err != nil {
		b.Fatal(err)
	}
	g := usecases.Generate(20, 8, 42)
	p, err := g.Build(rep)
	if err != nil {
		b.Fatal(err)
	}
	if err := sw.Install(p); err != nil {
		b.Fatal(err)
	}
	stream := trafficgen.GwLB(g, 4096, 1.0, 43)
	frames, _ := trafficgen.Wire(stream)
	for _, f := range frames { // warm-up (OVS cache fill)
		if _, err := sw.ProcessFrame(f); err != nil {
			b.Fatal(err)
		}
	}
	// Collect the previous benchmark's garbage before timing: the
	// allocation-heavy models (record building, cache maps) otherwise
	// leak GC pressure into whichever bench runs next in the binary.
	runtime.GC()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sw.ProcessFrame(frames[i&4095]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	nsPerPkt := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	if pm := sw.Perf(); pm.HWLineRateMpps > 0 {
		b.ReportMetric(pm.HWLineRateMpps, "Mpps")
	} else {
		b.ReportMetric(1000/nsPerPkt, "Mpps")
	}
}

func BenchmarkTable1OVSUniversal(b *testing.B)     { benchSwitch(b, "ovs", usecases.RepUniversal) }
func BenchmarkTable1OVSGoto(b *testing.B)          { benchSwitch(b, "ovs", usecases.RepGoto) }
func BenchmarkTable1ESwitchUniversal(b *testing.B) { benchSwitch(b, "eswitch", usecases.RepUniversal) }
func BenchmarkTable1ESwitchGoto(b *testing.B)      { benchSwitch(b, "eswitch", usecases.RepGoto) }
func BenchmarkTable1LagopusUniversal(b *testing.B) { benchSwitch(b, "lagopus", usecases.RepUniversal) }
func BenchmarkTable1LagopusGoto(b *testing.B)      { benchSwitch(b, "lagopus", usecases.RepGoto) }
func BenchmarkTable1NoviFlowUniversal(b *testing.B) {
	benchSwitch(b, "noviflow", usecases.RepUniversal)
}
func BenchmarkTable1NoviFlowGoto(b *testing.B) { benchSwitch(b, "noviflow", usecases.RepGoto) }

// benchSwitchBatch measures the batched hot path: a dedicated worker
// driving ProcessBatch over 64-frame batches, ns/op per packet. Comparing
// against the single-frame benches above shows the amortization of worker
// checkout and datapath revalidation.
func benchSwitchBatch(b *testing.B, swName string, rep usecases.Representation) {
	sw, err := bench.NewSwitch(swName)
	if err != nil {
		b.Fatal(err)
	}
	g := usecases.Generate(20, 8, 42)
	p, err := g.Build(rep)
	if err != nil {
		b.Fatal(err)
	}
	if err := sw.Install(p); err != nil {
		b.Fatal(err)
	}
	stream := trafficgen.GwLB(g, 4096, 1.0, 43)
	frames, _ := trafficgen.Wire(stream)
	const batch = 64
	worker := sw.NewWorker()
	out := make([]dataplane.Verdict, batch)
	for off := 0; off < len(frames); off += batch { // warm-up (cache fill)
		if err := worker.ProcessBatch(frames[off:off+batch], out); err != nil {
			b.Fatal(err)
		}
	}
	runtime.GC()
	b.ReportAllocs()
	b.ResetTimer()
	done := 0
	for i := 0; done < b.N; i++ {
		off := (i * batch) & 4095
		if err := worker.ProcessBatch(frames[off:off+batch], out); err != nil {
			b.Fatal(err)
		}
		done += batch
	}
	b.StopTimer()
	nsPerPkt := float64(b.Elapsed().Nanoseconds()) / float64(done)
	b.ReportMetric(nsPerPkt, "ns/pkt")
	b.ReportMetric(1000/nsPerPkt, "Mpps")
}

func BenchmarkBatchOVSGoto(b *testing.B)     { benchSwitchBatch(b, "ovs", usecases.RepGoto) }
func BenchmarkBatchESwitchGoto(b *testing.B) { benchSwitchBatch(b, "eswitch", usecases.RepGoto) }
func BenchmarkBatchESwitchUniversal(b *testing.B) {
	benchSwitchBatch(b, "eswitch", usecases.RepUniversal)
}

// --- Fig. 4: reactiveness ----------------------------------------------

// benchFig4 evaluates the reactiveness model at 100 updates/s and reports
// the modeled throughput; ns/op measures the model evaluation itself (it
// is analytic).
func benchFig4(b *testing.B, rep usecases.Representation) {
	g := usecases.Generate(20, 8, 42)
	sw := switches.NewNoviFlow()
	p, err := g.Build(rep)
	if err != nil {
		b.Fatal(err)
	}
	if err := sw.Install(p); err != nil {
		b.Fatal(err)
	}
	plan, err := controlplane.PlanPortChange(g, rep, 0, 9999)
	if err != nil {
		b.Fatal(err)
	}
	entries := len(p.Stages[0].Table.Entries)
	var rate float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rate = sw.ReactiveThroughput(100, plan.EntriesTouched, entries)
	}
	b.ReportMetric(rate, "Mpps@100upd/s")
	b.ReportMetric(float64(plan.EntriesTouched), "mods/update")
}

func BenchmarkFig4Universal(b *testing.B) { benchFig4(b, usecases.RepUniversal) }
func BenchmarkFig4Goto(b *testing.B)      { benchFig4(b, usecases.RepGoto) }

// --- E1: footprint (§2 redundancy) --------------------------------------

func BenchmarkFootprintNormalization(b *testing.B) {
	// Measures the normalizer itself on the paper-sized workload and
	// reports the footprint ratio it achieves.
	g := usecases.Generate(20, 8, 42)
	uni, err := g.Universal()
	if err != nil {
		b.Fatal(err)
	}
	var ratio float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.Normalize(uni, core.Options{Target: core.NF3, Declared: g.Declared()})
		if err != nil {
			b.Fatal(err)
		}
		gp, err := core.ToGoto(res.Pipeline)
		if err != nil {
			b.Fatal(err)
		}
		ratio = float64(uni.FieldCount()) / float64(gp.FieldCount())
	}
	b.ReportMetric(ratio, "uni/goto-fields")
}

// --- E2/E3: controllability & monitorability ----------------------------

func BenchmarkControlPlanUniversal(b *testing.B) { benchControlPlan(b, usecases.RepUniversal) }
func BenchmarkControlPlanGoto(b *testing.B)      { benchControlPlan(b, usecases.RepGoto) }

func benchControlPlan(b *testing.B, rep usecases.Representation) {
	g := usecases.Generate(20, 8, 42)
	var touched int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan, err := controlplane.PlanPortChange(g, rep, i%20, uint16(10000+i%1000))
		if err != nil {
			b.Fatal(err)
		}
		touched = plan.EntriesTouched
	}
	b.ReportMetric(float64(touched), "entries-touched")
}

// --- E6: the L3 pipeline at scale ---------------------------------------

func BenchmarkL3Normalize1024(b *testing.B) {
	l3 := usecases.GenerateL3(1024, 32, 8, 7)
	var fields int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.Normalize(l3.Table, core.Options{Target: core.NF3, Declared: l3.Declared()})
		if err != nil {
			b.Fatal(err)
		}
		fields = res.Pipeline.FieldCount()
	}
	b.ReportMetric(float64(l3.Table.FieldCount())/float64(fields), "shrink-ratio")
}

// --- E7/E8 run as tests (pass/fail demonstrations) ----------------------

// --- A1: join abstractions on ESwitch ------------------------------------

func BenchmarkJoinESwitchMetadata(b *testing.B) { benchSwitch(b, "eswitch", usecases.RepMetadata) }
func BenchmarkJoinESwitchRematch(b *testing.B)  { benchSwitch(b, "eswitch", usecases.RepRematch) }

// --- A3: classifier templates live in internal/classifier ---------------

// --- FD mining at scale --------------------------------------------------

func BenchmarkMineGwlb160(b *testing.B) {
	// TANE on the paper-sized 160-entry universal table.
	g := usecases.Generate(20, 8, 42)
	uni, err := g.Universal()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := core.Analyze(uni)
		if len(a.FDs) == 0 {
			b.Fatal("no dependencies mined")
		}
	}
}
