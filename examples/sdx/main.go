// sdx: the appendix use case (Fig. 5) — where functional dependencies end.
//
// A simplified software-defined IXP combines BGP announcements, member A's
// outbound policy and member C's inbound policy into one collapsed table.
// The desired three-table decomposition is a *join* dependency (4NF/5NF
// territory): no functional dependency of the collapsed table produces it,
// and the naive pipeline is order-dependent. Encoding the candidate set
// into an "all" metadata tag (as the SDX literature does) fixes it; this
// example verifies both halves of that story.
//
//	go run ./examples/sdx
package main

import (
	"fmt"
	"log"

	"manorm/internal/core"
	"manorm/internal/mat"
	"manorm/internal/usecases"
)

func main() {
	s := usecases.NewSDX()

	fmt.Println("=== Collapsed SDX table (Fig. 5a) ===")
	fmt.Print(s.Universal.String())

	// 1. The FD framework finds nothing to split: the table is already
	//    in 3NF under its mined dependencies.
	a := core.Analyze(s.Universal)
	form, _ := core.Check(a)
	fmt.Printf("\nnormal form under mined dependencies: %s\n", form)
	fmt.Println("=> functional dependencies cannot produce the announcement/outbound/inbound split")

	// 2. The naive decomposition's inbound table is order-dependent.
	naive := usecases.NaiveInboundTable()
	fmt.Printf("\nnaive inbound table order-independent: %v (Fig. 5b is incorrect)\n",
		naive.IsOrderIndependent())

	// 3. The 'all'-tag pipeline (Fig. 5c) is correct.
	fmt.Println("\n=== Metadata-encoded pipeline (Fig. 5c) ===")
	fmt.Print(s.Pipeline.String())
	if err := core.VerifyEquivalent(s.Universal, s.Pipeline); err != nil {
		log.Fatal(err)
	}
	fmt.Println("verified: pipeline ≡ collapsed table on the complete probe domain")

	// 4. Watch one packet flow: HTTP to P1 from the high half goes to C2
	//    under A's outbound policy + C's inbound balancing.
	in := mat.Record{"ip_src": 0x90000000, "ip_dst": 0xCB007105 /* 203.0.113.5 */, "tcp_dst": 80}
	out, err := s.Pipeline.Eval(in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nHTTP to P1 from high half: out=%d (C2)\n", out["out"])
	in["tcp_dst"] = 443
	out, err = s.Pipeline.Eval(in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("HTTPS to P1 (BGP ranking):  out=%d (D)\n", out["out"])
}
