// reactive: the Fig. 4 story live, over a real control channel.
//
// A controller connects to two NoviFlow-model switches through the
// OpenFlow-like protocol (over TCP on localhost) — one programmed with the
// universal gateway & load-balancer table, one with the normalized goto
// pipeline — and performs a burst of service updates on each. The example
// prints the flow-mod churn both sides generate and the modeled throughput
// at increasing update rates.
//
// It then repeats the burst over a fault-injected channel — seeded frame
// loss, jitter, and one forced mid-churn disconnect — showing that the
// resilient client recovers every dropped flow-mod (the final switch
// state equals the fault-free run) and what the recovery costs each
// representation, and feeds the measured control latency back into the
// reactiveness model.
//
//	go run ./examples/reactive
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"os"
	"time"

	"manorm/internal/bench"
	"manorm/internal/controlplane"
	"manorm/internal/openflow"
	"manorm/internal/switches"
	"manorm/internal/usecases"
)

const services, backends = 20, 8

func main() {
	for _, rep := range []usecases.Representation{usecases.RepUniversal, usecases.RepGoto} {
		if err := driveSwitch(rep); err != nil {
			log.Fatal(err)
		}
	}

	// The analytic Fig. 4 sweep for the same setup.
	g := usecases.Generate(services, backends, 42)
	fmt.Println("\nmodeled reactiveness (NoviFlow):")
	fmt.Printf("%-8s %-16s %-16s\n", "upd/s", "universal Mpps", "goto Mpps")
	for _, rate := range []float64{0, 10, 25, 50, 100, 200} {
		row := make(map[usecases.Representation]float64)
		for _, rep := range []usecases.Representation{usecases.RepUniversal, usecases.RepGoto} {
			sw := switches.NewNoviFlow()
			p, err := g.Build(rep)
			if err != nil {
				log.Fatal(err)
			}
			if err := sw.Install(p); err != nil {
				log.Fatal(err)
			}
			plan, err := controlplane.PlanPortChange(g, rep, 0, 9999)
			if err != nil {
				log.Fatal(err)
			}
			row[rep] = sw.ReactiveThroughput(rate, plan.EntriesTouched, len(p.Stages[0].Table.Entries))
		}
		fmt.Printf("%-8.0f %-16.2f %-16.2f\n", rate, row[usecases.RepUniversal], row[usecases.RepGoto])
	}

	if err := churnUnderFaults(g); err != nil {
		log.Fatal(err)
	}
}

// churnUnderFaults reruns the update burst over progressively worse
// channels. Every row must end "OK": the barrier receipt lists and the
// xid-keyed resend queue guarantee no flow-mod is lost, whatever the
// channel drops — the universal representation just pays for recovery
// more often because it puts more flow-mods on the wire.
func churnUnderFaults(g *usecases.GwLB) error {
	cfg := bench.Config{Services: services, Backends: backends, Seed: 42}
	grid := []bench.FaultSpec{
		{Seed: 1},
		{Loss: 0.005, Seed: 1},
		{Loss: 0.02, Seed: 1},
		// The headline scenario: 1% loss, 25 ms jitter, one forced
		// disconnect mid-burst.
		{Loss: 0.01, Jitter: 25 * time.Millisecond, Cut: true, Seed: 1},
	}
	fmt.Println()
	rows, err := bench.FaultChurn(cfg, services, grid)
	if err != nil {
		return err
	}
	bench.RenderFaultChurn(os.Stdout, rows)

	// Close the loop with the reactiveness model: the measured control
	// latency (RPC p50 under the headline faults) delays and rate-limits
	// the updates the simulation applies.
	var gotoLatMs float64
	for _, r := range rows {
		if r.Rep == usecases.RepGoto && r.Spec.Cut {
			gotoLatMs = r.Client.Histograms["rpc_latency_ns"].P50 / 1e6
		}
	}
	p, err := g.Build(usecases.RepGoto)
	if err != nil {
		return err
	}
	plan, err := controlplane.PlanPortChange(g, usecases.RepGoto, 0, 9999)
	if err != nil {
		return err
	}
	sw := switches.NewNoviFlow()
	entries := len(p.Stages[0].Table.Entries)
	simCfg := switches.DefaultReactiveSim(200, plan.EntriesTouched, entries, float64(p.Depth()))
	ideal := sw.SimulateReactive(simCfg)
	simCfg.UpdateLatencyNs = gotoLatMs * 1e6
	faulty := sw.SimulateReactive(simCfg)
	fmt.Printf("\nmodeled 200 upd/s on goto: ideal channel %.2f Mpps (%d updates applied), "+
		"faulty channel (%.1f ms control latency) %.2f Mpps (%d updates applied)\n",
		ideal.RateMpps, ideal.UpdatesApplied, gotoLatMs, faulty.RateMpps, faulty.UpdatesApplied)
	return nil
}

// driveSwitch starts a switch agent on a TCP listener, connects a
// controller, and runs an update burst.
func driveSwitch(rep usecases.Representation) error {
	g := usecases.Generate(services, backends, 42)
	p, err := g.Build(rep)
	if err != nil {
		return err
	}
	sw := switches.NewNoviFlow()
	agent, err := openflow.NewAgent(sw, p)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer ln.Close()
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		_ = agent.Serve(context.Background(), c)
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		return err
	}
	client, err := openflow.NewClient(conn)
	if err != nil {
		return err
	}
	defer client.Close()

	ctx := context.Background()
	ctl := &controlplane.Controller{Client: client, Rep: rep, Config: g}

	// Burst: move every service to a fresh port, one barrier per update
	// (the per-update commit the reactiveness experiment assumes).
	totalTouched := 0
	for i := 0; i < services; i++ {
		touched, err := ctl.ChangeServicePort(ctx, i, uint16(20000+i))
		if err != nil {
			return err
		}
		totalTouched += touched
	}
	fmt.Printf("%-10s: %2d updates -> %3d entries rewritten, %3d flow-mods on the wire\n",
		rep, services, totalTouched, client.ModsSent)
	return nil
}
