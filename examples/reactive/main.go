// reactive: the Fig. 4 story live, over a real control channel.
//
// A controller connects to two NoviFlow-model switches through the
// OpenFlow-like protocol (over TCP on localhost) — one programmed with the
// universal gateway & load-balancer table, one with the normalized goto
// pipeline — and performs a burst of service updates on each. The example
// prints the flow-mod churn both sides generate and the modeled throughput
// at increasing update rates.
//
//	go run ./examples/reactive
package main

import (
	"fmt"
	"log"
	"net"

	"manorm/internal/controlplane"
	"manorm/internal/openflow"
	"manorm/internal/switches"
	"manorm/internal/usecases"
)

const services, backends = 20, 8

func main() {
	for _, rep := range []usecases.Representation{usecases.RepUniversal, usecases.RepGoto} {
		if err := driveSwitch(rep); err != nil {
			log.Fatal(err)
		}
	}

	// The analytic Fig. 4 sweep for the same setup.
	g := usecases.Generate(services, backends, 42)
	fmt.Println("\nmodeled reactiveness (NoviFlow):")
	fmt.Printf("%-8s %-16s %-16s\n", "upd/s", "universal Mpps", "goto Mpps")
	for _, rate := range []float64{0, 10, 25, 50, 100, 200} {
		row := make(map[usecases.Representation]float64)
		for _, rep := range []usecases.Representation{usecases.RepUniversal, usecases.RepGoto} {
			sw := switches.NewNoviFlow()
			p, err := g.Build(rep)
			if err != nil {
				log.Fatal(err)
			}
			if err := sw.Install(p); err != nil {
				log.Fatal(err)
			}
			plan, err := controlplane.PlanPortChange(g, rep, 0, 9999)
			if err != nil {
				log.Fatal(err)
			}
			row[rep] = sw.ReactiveThroughput(rate, plan.EntriesTouched, len(p.Stages[0].Table.Entries))
		}
		fmt.Printf("%-8.0f %-16.2f %-16.2f\n", rate, row[usecases.RepUniversal], row[usecases.RepGoto])
	}
}

// driveSwitch starts a switch agent on a TCP listener, connects a
// controller, and runs an update burst.
func driveSwitch(rep usecases.Representation) error {
	g := usecases.Generate(services, backends, 42)
	p, err := g.Build(rep)
	if err != nil {
		return err
	}
	sw := switches.NewNoviFlow()
	agent, err := openflow.NewAgent(sw, p)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer ln.Close()
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		_ = agent.Serve(openflow.NewConn(c))
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		return err
	}
	client, err := openflow.NewClient(openflow.NewConn(conn))
	if err != nil {
		return err
	}
	defer client.Close()

	ctl := &controlplane.Controller{Client: client, Rep: rep, Config: g}

	// Burst: move every service to a fresh port, one barrier per update
	// (the per-update commit the reactiveness experiment assumes).
	totalTouched := 0
	for i := 0; i < services; i++ {
		touched, err := ctl.ChangeServicePort(i, uint16(20000+i))
		if err != nil {
			return err
		}
		totalTouched += touched
	}
	fmt.Printf("%-10s: %2d updates -> %3d entries rewritten, %3d flow-mods on the wire\n",
		rep, services, totalTouched, client.ModsSent)
	return nil
}
