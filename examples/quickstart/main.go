// Quickstart: normalize the paper's Fig. 1 cloud gateway & load-balancer
// table end to end.
//
// It builds the universal table, mines/declares its dependencies, checks
// the normal form, normalizes to 3NF, converts to goto chaining, verifies
// semantic equivalence, and prints the footprints — the whole §2–§4 story
// in one run.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"manorm/internal/core"
	"manorm/internal/usecases"
)

func main() {
	g := usecases.Fig1()
	uni, err := g.Universal()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== The universal table (Fig. 1a) ===")
	fmt.Print(uni.String())
	fmt.Printf("footprint: %d match-action fields\n\n", uni.FieldCount())

	// Analyze under the use case's declared semantic dependencies: a VIP
	// exposes one port; (client half, VIP) picks the backend.
	a, err := core.AnalyzeDeclared(uni, g.Declared())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== Dependency analysis ===")
	for _, f := range a.FDs {
		fmt.Printf("  %s\n", f.Format(uni.Schema))
	}
	for _, k := range a.Keys {
		fmt.Printf("  key: %s\n", k.Format(uni.Schema))
	}
	form, violations := core.Check(a)
	fmt.Printf("  normal form: %s\n", form)
	for _, v := range violations {
		fmt.Printf("  violation: %s\n", v.Format(uni.Schema))
	}
	fmt.Println()

	// Normalize to 3NF (metadata joins — Fig. 1c), with built-in
	// semantic verification.
	res, err := core.Normalize(uni, core.Options{
		Target:   core.NF3,
		Declared: g.Declared(),
		Verify:   true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== Normalized pipeline (metadata join, Fig. 1c) ===")
	fmt.Print(res.Pipeline.String())
	fmt.Printf("footprint: %d fields (verified equivalent: %v)\n\n", res.Pipeline.FieldCount(), res.Verified)

	// Convert the metadata chain to goto_table chaining (Fig. 1b).
	gp, err := core.ToGoto(res.Pipeline)
	if err != nil {
		log.Fatal(err)
	}
	if err := core.VerifyEquivalent(uni, gp); err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== Goto pipeline (Fig. 1b) ===")
	fmt.Print(gp.String())
	fmt.Printf("footprint: %d fields — the paper's 24 vs 21\n\n", gp.FieldCount())

	// And back: denormalization re-joins the pipeline into one table
	// (what OVS's flow cache does implicitly).
	back, err := core.Denormalize(gp)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== Denormalized back (round trip) ===")
	fmt.Printf("entries: %d (original %d)\n", len(back.Entries), len(uni.Entries))
	if err := core.VerifyEquivalent(back, res.Pipeline); err != nil {
		log.Fatal(err)
	}
	fmt.Println("round trip verified equivalent")
}
