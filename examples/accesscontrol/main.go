// accesscontrol: beyond the third normal form — the extension the paper's
// conclusion calls for.
//
// A cloud access-control table lists, for every subscriber prefix, every
// allowed (destination, port) combination. Destinations and ports are
// independent per subscriber, so the table stores a cross product — a
// redundancy no *functional* dependency captures (knowing the subscriber
// does not determine one destination). It is a *multivalued* dependency:
// ip_src ↠ ip_dst. Decomposing along it with a set-valued tag (the SDX
// "all" trick from the paper's appendix) removes the cross product.
//
//	go run ./examples/accesscontrol
package main

import (
	"fmt"
	"log"

	"manorm/internal/core"
	"manorm/internal/mat"
	"manorm/internal/packet"
)

func main() {
	// 3 subscribers; each may reach its own destinations on its own
	// ports, every combination allowed.
	t := mat.New("acl", mat.Schema{
		mat.F(packet.FieldIPSrc, 32), mat.F(packet.FieldIPDst, 32),
		mat.F(packet.FieldTCPDst, 16), mat.A("out", 16),
	})
	type sub struct {
		pfx   mat.Cell
		dsts  []string
		ports []uint64
		out   uint64
	}
	subs := []sub{
		{mat.IPv4Prefix("10.1.0.0", 16), []string{"192.0.2.1", "192.0.2.2"}, []uint64{80, 443}, 1},
		{mat.IPv4Prefix("10.2.0.0", 16), []string{"192.0.2.3"}, []uint64{22, 80, 8080}, 2},
		{mat.IPv4Prefix("10.3.0.0", 16), []string{"192.0.2.4", "192.0.2.5", "192.0.2.6"}, []uint64{443}, 3},
	}
	for _, s := range subs {
		for _, d := range s.dsts {
			for _, p := range s.ports {
				t.Add(s.pfx, mat.IPv4(d), mat.Exact(p, 16), mat.Exact(s.out, 16))
			}
		}
	}

	fmt.Println("=== Universal access-control table (cross product per subscriber) ===")
	fmt.Print(t.String())
	fmt.Printf("footprint: %d fields\n\n", t.FieldCount())

	// Functional-dependency normalization alone cannot remove the cross
	// product: check the table's plain normal form first.
	a := core.Analyze(t)
	form, _ := core.Check(a)
	fmt.Printf("functional normal form: %s\n", form)

	// The redundancy is multivalued: find what blocks 4NF.
	blocking := core.Check4NF(a)
	fmt.Println("multivalued dependencies blocking 4NF:")
	for _, m := range blocking {
		fmt.Printf("  %s\n", m.Format(t.Schema))
	}

	// Decompose along the subscriber ↠ destinations dependency.
	var picked = blocking[0]
	for _, m := range blocking {
		if m.From == mat.SetOf(t.Schema, packet.FieldIPSrc) {
			picked = m
			break
		}
	}
	p, err := core.DecomposeMVD(a, picked)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n=== Decomposed along %s (set-valued tag) ===\n", picked.Format(t.Schema))
	fmt.Print(p.String())
	fmt.Printf("footprint: %d fields (was %d)\n", p.FieldCount(), t.FieldCount())

	if err := core.VerifyEquivalent(t, p); err != nil {
		log.Fatal(err)
	}
	fmt.Println("verified equivalent on the complete probe domain")

	// Operational payoff, as in §2: granting subscriber 1 a new port
	// touches ONE entry in the decomposed pipeline versus one per
	// destination in the universal table.
	fmt.Printf("\ngranting subscriber 1 a new port: universal rewrites %d entries, decomposed adds 1\n",
		len(subs[0].dsts))
}
