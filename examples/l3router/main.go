// l3router: the paper's Fig. 2 walk-through at router scale.
//
// A 256-prefix L3 forwarding table (16 next-hops over 4 ports) is
// normalized step by step: the constant (eth_type, mod_ttl) factor splits
// off as a Cartesian-product stage, the next-hop dependency produces the
// OpenFlow-style group table, and the port dependency produces the
// source-MAC table — the T0 × T1 ≫ T2 ≫ T3 pipeline of Fig. 2c. The
// example then runs packets through both representations on the ESwitch
// model and compares classifier templates and service times.
//
//	go run ./examples/l3router
package main

import (
	"fmt"
	"log"
	"time"

	"manorm/internal/core"
	"manorm/internal/mat"
	"manorm/internal/switches"
	"manorm/internal/trafficgen"
	"manorm/internal/usecases"
)

func main() {
	const prefixes, nexthops, ports = 256, 16, 4
	l3 := usecases.GenerateL3(prefixes, nexthops, ports, 7)

	fmt.Printf("universal L3 table: %d routes, %d fields\n",
		len(l3.Table.Entries), l3.Table.FieldCount())

	a, err := core.AnalyzeDeclared(l3.Table, l3.Declared())
	if err != nil {
		log.Fatal(err)
	}
	form, violations := core.Check(a)
	fmt.Printf("normal form: %s (%d violations)\n", form, len(violations))
	for _, v := range violations {
		fmt.Printf("  %s\n", v.Format(l3.Table.Schema))
	}

	res, err := core.Normalize(l3.Table, core.Options{
		Target:   core.NF3,
		Declared: l3.Declared(),
		Verify:   true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nnormalization steps:")
	for _, s := range res.Steps {
		fmt.Printf("  %-12s along %s (%s violation)\n", s.TableName, s.FD, s.Level)
	}
	fmt.Printf("\nnormalized: %d stages, %d fields (was %d) — verified: %v\n",
		res.Pipeline.Depth(), res.Pipeline.FieldCount(), l3.Table.FieldCount(), res.Verified)
	for i, st := range res.Pipeline.Stages {
		fmt.Printf("  stage %d: %-16s %4d entries  (%s)\n",
			i, st.Table.Name, len(st.Table.Entries), st.Table.Schema)
	}

	// Run both representations on the template-specializing switch.
	stream := trafficgen.L3(prefixes, 4096, 11)
	for name, p := range map[string]*mat.Pipeline{
		"universal ": mat.SingleTable(l3.Table),
		"normalized": res.Pipeline,
	} {
		sw := switches.NewESwitch()
		if err := sw.Install(p); err != nil {
			log.Fatal(err)
		}
		// Warm-up, then measure.
		for i := 0; i < stream.Len(); i++ {
			if _, err := sw.Process(stream.Next()); err != nil {
				log.Fatal(err)
			}
		}
		const n = 200000
		start := time.Now()
		for i := 0; i < n; i++ {
			if _, err := sw.Process(stream.Next()); err != nil {
				log.Fatal(err)
			}
		}
		perPkt := time.Since(start) / n
		fmt.Printf("\n%s on eswitch: %v/packet, templates %v\n", name, perPkt, sw.Templates())
	}
}
