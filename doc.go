// Package manorm reproduces "Normal Forms for Match-Action Programs"
// (Németh, Chiesa, Rétvári — CoNEXT 2019): a relational-theory framework
// for analyzing and transforming packet-processing programs between
// single-table (universal) and multi-table (normalized) representations.
//
// The implementation lives under internal/ (see DESIGN.md for the module
// map); cmd/ holds the CLI tools, examples/ runnable walk-throughs, and
// the *_test.go files in this directory the benchmarks that regenerate the
// paper's tables and figures (see EXPERIMENTS.md for recorded results).
package manorm
