GO ?= go

.PHONY: build test lint race check fuzz-smoke fuzz-replay confluence-smoke \
	fabric-smoke soak-smoke benchguard benchguard-update bench parallel \
	profile quickstart

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# lint is the static tier: formatting drift fails the build the same way
# a vet diagnostic does.
lint:
	@unformatted="$$(gofmt -l cmd internal examples *.go)"; \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) vet ./...

# race runs the packages with a concurrency contract (the sharded
# switch workers, the control channel) under the race detector.
race:
	$(GO) test -race ./internal/...

# fuzz-smoke is the CI slice of the differential fuzzer: a fixed-seed,
# time-boxed run that must finish with zero divergences (the executor
# matrix includes the fused twins, so fusion is smoke-checked here too),
# followed by the same budget in schema mode — every seed invents a
# fresh header schema and parse graph and replays raw frames through the
# programmable decoder. fuzz-replay re-executes every committed
# reproducer (schema-mode ones carry their parse graph in the JSON);
# each must still diverge with its recorded kind, so known caveats —
# including the fused-path rematch hazard and its schema-mode twin —
# stay detected.
fuzz-smoke:
	$(GO) run ./cmd/mafuzz -seed 1 -duration 30s
	$(GO) run ./cmd/mafuzz -seed 1 -duration 30s -schema-fuzz

fuzz-replay:
	$(GO) run ./cmd/mafuzz -replay -corpus internal/difftest/testdata/corpus

# confluence-smoke difftests the semantic confluence verifier
# (internal/confluence): 250 seeded concurrent flow-mod batch pairs,
# each checked by the verifier AND by brute-force interleaving against
# the relational/NetKAT oracle — any disagreement (a false-commute
# verdict either way) fails the run and writes a shrunk reproducer.
# Committed confluence counterexamples replay through the ordinary
# fuzz-replay stage above: the corpus loader routes files carrying
# "batches" into the confluence executor, and each must still diverge
# with its recorded kind.
confluence-smoke:
	$(GO) run ./cmd/mafuzz -confluence-fuzz -seed 1 -iters 250

# fabric-smoke drives the multi-switch fabric through the headline fault
# schedule (1% loss, a forced mid-frame cut, a partition every third
# update) under both placement modes and fails unless the convergence
# checker proves full convergence: identical normal forms on every
# replica, exact desired state (zero lost or duplicated flow-mods), and
# packet-for-packet forwarding agreement with the single-switch oracle.
fabric-smoke:
	$(GO) run ./cmd/mabench -experiment fabricchurn -quick

# soak-smoke is the CI slice of the sustained soak (E10): 60 seconds of
# forwarding (including malformed frames through the typed-drop decoder
# paths) concurrent with control-plane churn over a fault-injected TCP
# channel, gated on per-window throughput drift and p99 processing
# latency from the telemetry registry.
soak-smoke:
	$(GO) run ./cmd/mabench -experiment soak -duration 60s

# benchguard re-measures the multi-core scaling workload and compares
# its shape against the checked-in BENCH_parallel.json baseline (±20%
# per (switch, rep) aggregate, host-normalized); -require-rep asserts
# the fused row family was actually measured rather than dropping out
# of the intersection the comparison scores, and -require-wire that the
# struct-path rows of the wire dimension (frames vs structs ingest) were
# measured too. benchguard-update refreshes the baseline after an
# intentional performance change.
# -measured-out persists the fresh rows before the comparison, so a
# failing CI gate still uploads what was actually measured as an
# artifact (see .github/workflows/ci.yml).
benchguard:
	$(GO) run ./cmd/benchguard -require-rep fused -require-wire structs -measured-out benchguard-measured.json

benchguard-update:
	$(GO) run ./cmd/benchguard -update -current BENCH_parallel.json -runs 5 -require-rep fused -require-wire structs

# check is the single gate CI runs — .github/workflows/ci.yml calls
# exactly this target, so a green `make check` locally is a green build.
check: lint build test race fuzz-smoke fuzz-replay confluence-smoke fabric-smoke soak-smoke benchguard

bench:
	$(GO) test -p 1 -bench=. -benchmem ./...

# parallel runs the multi-core scaling experiment and writes
# BENCH_parallel.json.
parallel:
	$(GO) run ./cmd/mabench -workers 8 -json

# profile captures a CPU profile of a short instrumented benchmark run.
# Inspect it with `go tool pprof cpu.prof`.
profile:
	$(GO) run ./cmd/mabench -experiment static -quick -metrics -cpuprofile cpu.prof
	@echo "wrote cpu.prof (go tool pprof cpu.prof)"

quickstart:
	$(GO) run ./examples/quickstart
