GO ?= go

.PHONY: build test check bench parallel quickstart

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the concurrency tier: static analysis plus the full test suite
# under the race detector. The switch models advertise a concurrency
# contract (see internal/switches); this target is what enforces it.
check:
	$(GO) vet ./...
	$(GO) test -race ./...

bench:
	$(GO) test -p 1 -bench=. -benchmem ./...

# parallel runs the multi-core scaling experiment and writes
# BENCH_parallel.json.
parallel:
	$(GO) run ./cmd/mabench -workers 8 -json

quickstart:
	$(GO) run ./examples/quickstart
