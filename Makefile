GO ?= go

.PHONY: build test check bench parallel profile quickstart

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the concurrency tier: static analysis plus the full test suite
# under the race detector. The switch models advertise a concurrency
# contract (see internal/switches); this target is what enforces it.
check:
	$(GO) vet ./...
	$(GO) test -race ./...

bench:
	$(GO) test -p 1 -bench=. -benchmem ./...

# parallel runs the multi-core scaling experiment and writes
# BENCH_parallel.json.
parallel:
	$(GO) run ./cmd/mabench -workers 8 -json

# profile captures a CPU profile of a short instrumented benchmark run.
# Inspect it with `go tool pprof cpu.prof`.
profile:
	$(GO) run ./cmd/mabench -experiment static -quick -metrics -cpuprofile cpu.prof
	@echo "wrote cpu.prof (go tool pprof cpu.prof)"

quickstart:
	$(GO) run ./examples/quickstart
