module manorm

go 1.22
