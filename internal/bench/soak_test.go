package bench

import (
	"strings"
	"testing"
	"time"
)

// TestSoakSmoke runs a sharply shortened soak — real TCP channel, fault
// dialer, churn and malformed frames included — and checks the harness
// completes, counts work in every dimension, and evaluates its gates.
func TestSoakSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("soak needs wall-clock time")
	}
	cfg := QuickConfig()
	spec := DefaultSoakSpec()
	spec.Duration = 1500 * time.Millisecond
	spec.Windows = 3
	spec.Workers = 2
	r, err := Soak(cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Windows) != spec.Windows {
		t.Fatalf("%d windows, want %d", len(r.Windows), spec.Windows)
	}
	if r.Packets == 0 {
		t.Fatal("no packets forwarded")
	}
	if r.Updates == 0 {
		t.Fatal("no control-plane updates applied")
	}
	if r.DropsTruncated+r.DropsBadHeader == 0 {
		t.Fatal("malformed injection produced no typed decoder drops")
	}
	// Gates may or may not flag drift over so few short windows; the
	// render must work either way and name E10.
	var sb strings.Builder
	RenderSoak(&sb, r)
	if !strings.Contains(sb.String(), "E10") {
		t.Fatalf("render lacks experiment tag:\n%s", sb.String())
	}
}

// TestSoakGateViolations checks the gate logic itself on a synthetic
// result: a collapsed window and a p99 blow-up must both be flagged, and
// the warm-up window must be exempt.
func TestSoakGateViolations(t *testing.T) {
	spec := DefaultSoakSpec()
	spec.Windows = 5
	r := &SoakResult{Spec: spec, Updates: 10}
	r.DropsTruncated = 1
	r.Spec.Malformed = 0.01
	r.Windows = []SoakWindow{
		{Mpps: 0.01, P99Ns: 9e9}, // warm-up: exempt however bad
		{Mpps: 4.0, P99Ns: 1000},
		{Mpps: 4.1, P99Ns: 1100},
		{Mpps: 0.5, P99Ns: 1000}, // throughput collapse
		{Mpps: 4.0, P99Ns: 1e8},  // p99 blow-up
	}
	r.Violations = soakGates(r, nil)
	if r.OK() {
		t.Fatal("degenerate windows passed the gates")
	}
	var drift, p99 bool
	for _, v := range r.Violations {
		if strings.Contains(v, "window 3") {
			drift = true
		}
		if strings.Contains(v, "window 4") {
			p99 = true
		}
		if strings.Contains(v, "window 0") {
			t.Fatalf("warm-up window gated: %q", v)
		}
	}
	if !drift || !p99 {
		t.Fatalf("missing expected violations (drift=%v p99=%v): %v", drift, p99, r.Violations)
	}

	clean := &SoakResult{Spec: spec, Updates: 10, DropsBadHeader: 2}
	clean.Spec.Malformed = 0.01
	for i := 0; i < spec.Windows; i++ {
		clean.Windows = append(clean.Windows, SoakWindow{Mpps: 4.0, P99Ns: 1000})
	}
	clean.Violations = soakGates(clean, nil)
	if !clean.OK() {
		t.Fatalf("steady windows flagged: %v", clean.Violations)
	}
}
