package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
)

// This file is the bench-regression guard behind `make benchguard`: it
// re-measures the multi-core scaling workload and compares the result
// against a checked-in BENCH_parallel.json baseline.
//
// Raw Mpps numbers are useless as a cross-host gate — CI runners differ
// by integer factors — so the guard compares *shape*, not magnitude:
// every row is normalized by the report's median Mpps over the shared
// rows, then rows are aggregated per (switch, representation) by
// averaging over worker counts. The aggregate says "on this host, ovs
// running the goto pipeline is 1.2× the median configuration"; that
// ratio is what the paper's overhead claims are about, it is stable
// across hosts, and a decomposition that suddenly costs 2× shifts it
// no matter how fast the runner is. A uniform slowdown of everything
// (compiler regression, runner downgrade) is invisible by construction
// — that is the price of a gate that does not flake on shared CI.
//
// Because the normalizer is the report's own median, a large regression
// in one group also inflates the others' normalized values; the gate
// still fails, but the per-group attribution in the output is
// approximate when more than one row moved.

// GuardKey identifies one aggregated guard metric. Schema is empty for
// the canonical default-schema rows and Wire is empty for frame-path rows
// — the only rows older baselines contain — so their JSON form and
// display strings are unchanged.
type GuardKey struct {
	Switch string `json:"switch"`
	Rep    string `json:"rep"`
	Schema string `json:"schema,omitempty"`
	Wire   string `json:"wire,omitempty"`
}

func (k GuardKey) String() string {
	s := k.Switch + "/" + k.Rep
	if k.Schema != "" {
		s += "@" + k.Schema
	}
	if k.Wire != "" {
		s += ":" + k.Wire
	}
	return s
}

// GuardDelta is the comparison of one (switch, rep) aggregate between
// baseline and current.
type GuardDelta struct {
	Key GuardKey `json:"key"`
	// Base and Cur are median-normalized Mpps aggregates (dimensionless).
	Base float64 `json:"base"`
	Cur  float64 `json:"cur"`
	// Delta is (Cur-Base)/Base.
	Delta float64 `json:"delta"`
	// OK reports whether |Delta| is within the tolerance.
	OK bool `json:"ok"`
}

// ReadParallelReport loads a BENCH_parallel.json-format file.
func ReadParallelReport(path string) (*ParallelReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep ParallelReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(rep.Results) == 0 {
		return nil, fmt.Errorf("%s: no results", path)
	}
	return &rep, nil
}

// rowKey identifies one measured row. The schema dimension is "" for
// default-schema rows and the wire dimension "" for frame-path rows, so
// reports written before those experiments existed keep keying (and
// gating) identically.
type rowKey struct {
	sw, rep, schema, wire string
	workers               int
}

func reportRows(r *ParallelReport) map[rowKey]float64 {
	out := make(map[rowKey]float64, len(r.Results))
	for _, row := range r.Results {
		out[rowKey{row.Switch, string(row.Rep), row.Schema, row.Wire, row.Workers}] = row.RateMpps
	}
	return out
}

// CompareParallel compares two scaling reports over their shared rows
// and returns one GuardDelta per (switch, rep) pair, sorted by key. It
// errors when the reports share no rows — a silently empty comparison
// would pass vacuously.
func CompareParallel(base, cur *ParallelReport, tol float64) ([]GuardDelta, error) {
	brows, crows := reportRows(base), reportRows(cur)
	var shared []rowKey
	for k := range brows {
		if _, ok := crows[k]; ok {
			shared = append(shared, k)
		}
	}
	if len(shared) == 0 {
		return nil, fmt.Errorf("baseline and current share no (switch, rep, workers) rows")
	}
	bmed, cmed := medianOver(brows, shared), medianOver(crows, shared)
	if bmed <= 0 || cmed <= 0 {
		return nil, fmt.Errorf("non-positive median rate (baseline %g, current %g)", bmed, cmed)
	}

	type agg struct {
		sum float64
		n   int
	}
	bagg := make(map[GuardKey]*agg)
	cagg := make(map[GuardKey]*agg)
	for _, k := range shared {
		gk := GuardKey{Switch: k.sw, Rep: k.rep, Schema: k.schema, Wire: k.wire}
		if bagg[gk] == nil {
			bagg[gk], cagg[gk] = &agg{}, &agg{}
		}
		bagg[gk].sum += brows[k] / bmed
		bagg[gk].n++
		cagg[gk].sum += crows[k] / cmed
		cagg[gk].n++
	}

	deltas := make([]GuardDelta, 0, len(bagg))
	for gk, b := range bagg {
		c := cagg[gk]
		d := GuardDelta{Key: gk, Base: b.sum / float64(b.n), Cur: c.sum / float64(c.n)}
		d.Delta = (d.Cur - d.Base) / d.Base
		d.OK = d.Delta >= -tol && d.Delta <= tol
		deltas = append(deltas, d)
	}
	sort.Slice(deltas, func(i, j int) bool {
		return deltas[i].Key.String() < deltas[j].Key.String()
	})
	return deltas, nil
}

// RowDiff lists the measurement rows present in only one of two reports.
// CompareParallel deliberately scores just the shared rows; without this
// diff a baseline that silently lost (or never gained) a row family would
// still pass the gate.
type RowDiff struct {
	// Added are rows only in the current report, "switch/rep/wN" formatted.
	Added []string `json:"added,omitempty"`
	// Removed are rows only in the baseline.
	Removed []string `json:"removed,omitempty"`
}

// Empty reports whether the two reports covered identical rows.
func (d RowDiff) Empty() bool { return len(d.Added) == 0 && len(d.Removed) == 0 }

func (k rowKey) String() string {
	s := k.sw + "/" + k.rep
	if k.schema != "" {
		s += "@" + k.schema
	}
	if k.wire != "" {
		s += ":" + k.wire
	}
	return fmt.Sprintf("%s/w%d", s, k.workers)
}

// DiffParallelRows reports the (switch, rep, workers) rows that baseline
// and current do not share, so the guard output can surface coverage
// drift alongside the shape comparison.
func DiffParallelRows(base, cur *ParallelReport) RowDiff {
	brows, crows := reportRows(base), reportRows(cur)
	var d RowDiff
	for k := range crows {
		if _, ok := brows[k]; !ok {
			d.Added = append(d.Added, k.String())
		}
	}
	for k := range brows {
		if _, ok := crows[k]; !ok {
			d.Removed = append(d.Removed, k.String())
		}
	}
	sort.Strings(d.Added)
	sort.Strings(d.Removed)
	return d
}

// RequireReps checks that every switch appearing in the report has at
// least one row for each required representation. It is the CI assertion
// that a new row family (e.g. "fused") actually got measured instead of
// dropping out of the intersection CompareParallel scores.
func RequireReps(r *ParallelReport, reps []string) error {
	switches := make(map[string]map[string]bool)
	for _, row := range r.Results {
		if switches[row.Switch] == nil {
			switches[row.Switch] = make(map[string]bool)
		}
		switches[row.Switch][string(row.Rep)] = true
	}
	var missing []string
	for sw, have := range switches {
		for _, rep := range reps {
			if !have[rep] {
				missing = append(missing, sw+"/"+rep)
			}
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		return fmt.Errorf("report lacks required rows: %v", missing)
	}
	return nil
}

// RequireWires checks that every switch appearing in the report has at
// least one row per required ingest path ("frames" and/or "structs") —
// the CI assertion that the wire-dimension rows actually got measured.
// Rows with an empty Wire count as "frames".
func RequireWires(r *ParallelReport, wires []string) error {
	switches := make(map[string]map[string]bool)
	for _, row := range r.Results {
		if switches[row.Switch] == nil {
			switches[row.Switch] = make(map[string]bool)
		}
		wire := row.Wire
		if wire == "" {
			wire = "frames"
		}
		switches[row.Switch][wire] = true
	}
	var missing []string
	for sw, have := range switches {
		for _, wire := range wires {
			if !have[wire] {
				missing = append(missing, sw+":"+wire)
			}
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		return fmt.Errorf("report lacks required wire rows: %v", missing)
	}
	return nil
}

func medianOver(rows map[rowKey]float64, keys []rowKey) float64 {
	vs := make([]float64, 0, len(keys))
	for _, k := range keys {
		vs = append(vs, rows[k])
	}
	sort.Float64s(vs)
	n := len(vs)
	if n%2 == 1 {
		return vs[n/2]
	}
	return (vs[n/2-1] + vs[n/2]) / 2
}

// MeasureGuard runs the scaling workload `runs` times and keeps, per
// row, the best observed rate. Max-of-N is the standard throughput
// stabilizer: scheduling hiccups only ever push a run's rate down, so
// the maximum converges on the machine's real capability while a mean
// drags the noise in.
func MeasureGuard(cfg Config, maxWorkers, runs int) (*ParallelReport, error) {
	best := make(map[rowKey]*ParallelResult)
	var order []rowKey
	for i := 0; i < runs; i++ {
		rows, err := ParallelTable(cfg, maxWorkers)
		if err != nil {
			return nil, err
		}
		for _, row := range rows {
			k := rowKey{row.Switch, string(row.Rep), row.Schema, row.Wire, row.Workers}
			if prev, ok := best[k]; !ok {
				best[k] = row
				order = append(order, k)
			} else if row.RateMpps > prev.RateMpps {
				best[k] = row
			}
		}
	}
	out := make([]*ParallelResult, 0, len(order))
	for _, k := range order {
		out = append(out, best[k])
	}
	return &ParallelReport{
		HostCPUs:   runtime.NumCPU(),
		MaxWorkers: maxWorkers,
		Services:   cfg.Services,
		Backends:   cfg.Backends,
		Packets:    cfg.Packets,
		Results:    out,
	}, nil
}
