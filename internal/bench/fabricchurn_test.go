package bench

import (
	"testing"

	"manorm/internal/fabric"
)

func fabricSpec(mode fabric.PlacementMode) FabricSpec {
	return FabricSpec{
		Members: 3, Quorum: 2, Mode: mode,
		Loss: 0.01, Cut: true, PartitionEvery: 3, Seed: 42,
	}
}

func TestFabricChurnConvergesUnderHeadlineFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("dials TCP with injected faults")
	}
	cfg := Config{Services: 4, Backends: 3, Seed: 5}
	for _, mode := range []fabric.PlacementMode{fabric.Replicate, fabric.Partition} {
		row, err := FabricChurnOne(cfg, 9, fabricSpec(mode))
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if !row.Report.OK() {
			t.Errorf("%s: fabric diverged: %s\n%s", mode, row.Report, row.Report.Witness)
		}
		// The fault schedule actually ran: the forced cut reconnected and
		// the partitions black-holed frames.
		if row.Reconnects == 0 {
			t.Errorf("%s: forced cut produced no reconnect", mode)
		}
		if row.NetDrops == 0 {
			t.Errorf("%s: partitions black-holed no frames", mode)
		}
		// Every issued epoch (churn + the concurrent rounds) committed.
		if row.Committed != row.Epochs || row.Epochs == 0 {
			t.Errorf("%s: committed %d of %d epochs", mode, row.Committed, row.Epochs)
		}
		// The false-conflict round's syntactic conflict was refuted by the
		// semantic oracle — the pair ran in one epoch and the run still
		// proved identical normal forms above.
		if row.FalseConflicts == 0 {
			t.Errorf("%s: semantic oracle refuted no false conflicts", mode)
		}
	}
}

func TestFabricChurnCleanRunIsQuiet(t *testing.T) {
	if testing.Short() {
		t.Skip("dials TCP")
	}
	cfg := Config{Services: 4, Backends: 3, Seed: 5}
	row, err := FabricChurnOne(cfg, 6, FabricSpec{Members: 2, Mode: fabric.Replicate, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if !row.Report.OK() {
		t.Fatalf("clean fabric run diverged: %s", row.Report)
	}
	if row.Degraded != 0 || row.Freezes != 0 || row.Resyncs != 0 || row.Reconnects != 0 {
		t.Errorf("clean run produced recovery work: degraded=%d freezes=%d resyncs=%d reconnects=%d",
			row.Degraded, row.Freezes, row.Resyncs, row.Reconnects)
	}
	if row.MaxLag != 0 {
		t.Errorf("clean run observed epoch lag %d", row.MaxLag)
	}
}

func TestFabricChurnTelemetrySnapshot(t *testing.T) {
	if testing.Short() {
		t.Skip("dials TCP")
	}
	cfg := Config{Services: 4, Backends: 3, Seed: 5, Telemetry: true}
	row, err := FabricChurnOne(cfg, 3, FabricSpec{Members: 2, Mode: fabric.Replicate, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if row.Telemetry == nil {
		t.Fatal("telemetry snapshot missing with cfg.Telemetry set")
	}
	if _, ok := row.Telemetry.Gauges["epoch_lag"]; !ok {
		t.Error("epoch_lag gauge missing")
	}
	conv, ok := row.Telemetry.Providers["convergence"]
	if !ok {
		t.Fatal("convergence sub-registry missing")
	}
	for _, g := range []string{"sw0_divergence", "sw1_divergence", "packets_diverged"} {
		v, ok := conv.Gauges[g]
		if !ok {
			t.Errorf("gauge %s missing", g)
		} else if v != 0 {
			t.Errorf("gauge %s = %v on a converged run", g, v)
		}
	}
}
