package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"manorm/internal/controlplane"
	"manorm/internal/faultconn"
	"manorm/internal/mat"
	"manorm/internal/openflow"
	"manorm/internal/switches"
	"manorm/internal/telemetry"
	"manorm/internal/usecases"
)

// FaultSpec selects the channel faults for one churn-under-faults run.
// All randomness derives from Seed, so a fixed spec reproduces the same
// drop/cut schedule and therefore the same retry/resend/reconnect
// counters.
type FaultSpec struct {
	// Loss is the probability that a controller→switch frame is silently
	// dropped.
	Loss float64
	// Latency delays every delivered frame; Jitter adds a uniform draw
	// from [0, Jitter) on top.
	Latency time.Duration
	Jitter  time.Duration
	// Cut forces one mid-churn disconnect (the client reconnects and
	// resynchronizes through its resend queue).
	Cut  bool
	Seed int64
	// RPCTimeout is the client's per-attempt deadline; it bounds how long
	// a dropped barrier request stalls the run. Defaults to 250ms.
	RPCTimeout time.Duration
}

func (fs FaultSpec) String() string {
	s := fmt.Sprintf("loss=%.1f%% jitter=%s", fs.Loss*100, fs.Jitter)
	if fs.Cut {
		s += " +cut"
	}
	return s
}

// FaultChurnRow is the outcome of one (representation, fault spec) churn
// run: the client's resilience counters and whether the switch converged
// to exactly the fault-free state.
type FaultChurnRow struct {
	Rep     usecases.Representation
	Spec    FaultSpec
	Updates int

	// Client is the control channel's telemetry snapshot (counters
	// mods_sent, mods_resent, retries, timeouts, reconnects; histogram
	// rpc_latency_ns).
	Client telemetry.Snapshot
	// DupsSkipped counts resends the agent absorbed by xid dedup;
	// Sessions counts control sessions (1 + reconnects).
	DupsSkipped int64
	Sessions    int64

	WallMs float64
	// StateOK reports that the final switch state equals the fault-free
	// run's — i.e. zero flow-mods were lost despite the faults.
	StateOK bool
}

// DefaultFaultGrid is the published sweep: loss {0, 0.5, 2}% crossed with
// jitter {0, 25ms}, plus the headline scenario — 1% loss, 25ms jitter and
// one forced mid-churn disconnect.
func DefaultFaultGrid() []FaultSpec {
	var specs []FaultSpec
	for _, jitter := range []time.Duration{0, 25 * time.Millisecond} {
		for _, loss := range []float64{0, 0.005, 0.02} {
			specs = append(specs, FaultSpec{Loss: loss, Jitter: jitter, Seed: 1})
		}
	}
	specs = append(specs, FaultSpec{Loss: 0.01, Jitter: 25 * time.Millisecond, Cut: true, Seed: 1})
	return specs
}

// FaultChurn sweeps the service-update burst over the fault grid for the
// universal and normalized (goto) representations.
func FaultChurn(cfg Config, updates int, specs []FaultSpec) ([]*FaultChurnRow, error) {
	var out []*FaultChurnRow
	for _, rep := range []usecases.Representation{usecases.RepUniversal, usecases.RepGoto} {
		for _, fs := range specs {
			row, err := FaultChurnOne(cfg, rep, updates, fs)
			if err != nil {
				return nil, fmt.Errorf("%s (%s): %w", rep, fs, err)
			}
			out = append(out, row)
		}
	}
	return out, nil
}

// FaultChurnOne runs the update burst twice — once over a clean pipe to
// obtain the reference state, once over a fault-injected TCP channel —
// and compares the final switch states.
func FaultChurnOne(cfg Config, rep usecases.Representation, updates int, fs FaultSpec) (*FaultChurnRow, error) {
	if fs.RPCTimeout <= 0 {
		fs.RPCTimeout = 250 * time.Millisecond
	}
	refState, refFrames, err := faultFreeReference(cfg, rep, updates)
	if err != nil {
		return nil, fmt.Errorf("reference run: %w", err)
	}

	g := usecases.Generate(cfg.Services, cfg.Backends, cfg.Seed)
	p, err := g.Build(rep)
	if err != nil {
		return nil, err
	}
	agent, err := openflow.NewAgent(switches.NewESwitch(), p)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer ln.Close()
	go func() {
		// Serve sessions sequentially: after a cut the client redials and
		// the next accept picks the fresh transport up.
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			_ = agent.Serve(context.Background(), c)
		}
	}()

	// The fault schedule is keyed off the dial count so every connection
	// (initial and post-cut) has a reproducible schedule; only the first
	// carries the forced cut, placed mid-burst using the fault-free frame
	// count.
	dials := 0
	dialer := func() (net.Conn, error) {
		raw, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			return nil, err
		}
		fc := faultconn.Config{
			Seed:         fs.Seed + int64(dials)*1009,
			DropRate:     fs.Loss,
			Latency:      fs.Latency,
			Jitter:       fs.Jitter,
			MaxReadChunk: 9,
		}
		if fs.Cut && dials == 0 {
			fc.CutAfterWrites = refFrames / 2
			if fc.CutAfterWrites < 2 {
				fc.CutAfterWrites = 2
			}
			fc.CutMidFrame = true
		}
		dials++
		return faultconn.Wrap(raw, fc), nil
	}

	client, err := openflow.NewClient(nil,
		openflow.WithDialer(dialer),
		openflow.WithRPCTimeout(fs.RPCTimeout),
		openflow.WithRetryPolicy(openflow.RetryPolicy{
			Base: 2 * time.Millisecond, Max: 100 * time.Millisecond,
			Multiplier: 2, Jitter: 0.25, MaxRetries: 8, Seed: fs.Seed,
		}),
	)
	if err != nil {
		return nil, err
	}
	defer client.Close()

	ctx := context.Background()
	ctl := &controlplane.Controller{Client: client, Rep: rep, Config: g}
	start := time.Now()
	if err := runChurn(ctx, ctl, g, updates); err != nil {
		return nil, err
	}
	wall := time.Since(start)

	gotState, err := canonicalState(agent.Pipeline())
	if err != nil {
		return nil, err
	}
	return &FaultChurnRow{
		Rep:         rep,
		Spec:        fs,
		Updates:     updates,
		Client:      client.Stats(),
		DupsSkipped: atomic.LoadInt64(&agent.DupsSkipped),
		Sessions:    atomic.LoadInt64(&agent.Sessions),
		WallMs:      float64(wall.Microseconds()) / 1000,
		StateOK:     gotState == refState,
	}, nil
}

// runChurn performs the standard update burst: each update moves one
// service (round-robin) to a fresh port and commits with a barrier.
func runChurn(ctx context.Context, ctl *controlplane.Controller, g *usecases.GwLB, updates int) error {
	for i := 0; i < updates; i++ {
		svc := i % len(g.Services)
		if _, err := ctl.ChangeServicePort(ctx, svc, uint16(20000+i)); err != nil {
			return err
		}
	}
	return nil
}

// faultFreeReference runs the identical burst over a clean in-process
// pipe and returns the canonical final state plus the number of frames
// the client wrote (used to place the forced cut mid-burst).
func faultFreeReference(cfg Config, rep usecases.Representation, updates int) (string, int, error) {
	g := usecases.Generate(cfg.Services, cfg.Backends, cfg.Seed)
	p, err := g.Build(rep)
	if err != nil {
		return "", 0, err
	}
	agent, err := openflow.NewAgent(switches.NewESwitch(), p)
	if err != nil {
		return "", 0, err
	}
	a, b := net.Pipe()
	go agent.Serve(context.Background(), a) //nolint:errcheck — ends with the pipe
	client, err := openflow.NewClient(b)
	if err != nil {
		return "", 0, err
	}
	defer client.Close()
	ctl := &controlplane.Controller{Client: client, Rep: rep, Config: g}
	if err := runChurn(context.Background(), ctl, g, updates); err != nil {
		return "", 0, err
	}
	state, err := canonicalState(agent.Pipeline())
	if err != nil {
		return "", 0, err
	}
	m := client.Stats()
	// Frames written: hello reply + every flow-mod + one barrier per
	// update.
	frames := 1 + int(m.Counters["mods_sent"]) + updates
	return state, frames, nil
}

// canonicalState serializes a pipeline with each table's entries sorted,
// so runs that applied the same mods in different orders (resends after
// drops arrive late) compare equal — matching semantics are order-free.
func canonicalState(p *mat.Pipeline) (string, error) {
	raw, err := json.Marshal(p)
	if err != nil {
		return "", err
	}
	var jp struct {
		Name   string `json:"name"`
		Start  int    `json:"start"`
		Stages []struct {
			Table struct {
				Name    string          `json:"name"`
				Attrs   json.RawMessage `json:"attrs"`
				Entries [][]string      `json:"entries"`
			} `json:"table"`
			Next     int  `json:"next"`
			MissDrop bool `json:"miss_drop"`
		} `json:"stages"`
	}
	if err := json.Unmarshal(raw, &jp); err != nil {
		return "", err
	}
	for si := range jp.Stages {
		e := jp.Stages[si].Table.Entries
		sort.Slice(e, func(i, j int) bool {
			return strings.Join(e[i], "|") < strings.Join(e[j], "|")
		})
	}
	out, err := json.Marshal(jp)
	return string(out), err
}

// RenderFaultChurn prints the churn-under-faults comparison.
func RenderFaultChurn(w io.Writer, rows []*FaultChurnRow) {
	fmt.Fprintln(w, "E2c: service-update burst under control-channel faults (ESwitch agent, TCP)")
	fmt.Fprintf(w, "%-11s %-27s %-9s %-8s %-8s %-8s %-6s %-6s %-8s\n",
		"rep", "faults", "flow-mods", "resent", "retries", "timeouts", "reconn", "dups", "state")
	for _, r := range rows {
		state := "OK"
		if !r.StateOK {
			state = "DIVERGED"
		}
		fmt.Fprintf(w, "%-11s %-27s %-9d %-8d %-8d %-8d %-6d %-6d %-8s\n",
			r.Rep, r.Spec, r.Client.Counters["mods_sent"], r.Client.Counters["mods_resent"],
			r.Client.Counters["retries"], r.Client.Counters["timeouts"],
			r.Client.Counters["reconnects"], r.DupsSkipped, state)
	}
}
