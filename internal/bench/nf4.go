package bench

import (
	"fmt"
	"io"

	"manorm/internal/core"
	"manorm/internal/fd"
	"manorm/internal/mat"
	"manorm/internal/netkat"
	"manorm/internal/packet"
)

// NF4Row is one data point of the beyond-3NF extension experiment: an
// access-control table with cross-product structure (subscribers ×
// destinations × ports) split along its multivalued dependency.
type NF4Row struct {
	Subscribers, Dests, Ports int
	UniversalEntries          int
	UniversalFields           int
	MVD                       string
	SplitFields               int
	Stages                    int
	Equivalent                bool
}

// aclTable builds the cross-product access-control workload: each
// subscriber prefix may reach each of its destinations on each of its
// ports — the classic 4NF redundancy (every combination stored
// explicitly).
func aclTable(subs, dests, ports int) *mat.Table {
	t := mat.New("acl", mat.Schema{
		mat.F(packet.FieldIPSrc, 32),
		mat.F(packet.FieldIPDst, 32),
		mat.F(packet.FieldTCPDst, 16),
		mat.A("out", 16),
	})
	for s := 0; s < subs; s++ {
		sub := mat.Prefix(uint64(10<<24|s<<16), 16, 32)
		for d := 0; d < dests; d++ {
			for p := 0; p < ports; p++ {
				t.Add(sub,
					mat.Exact(uint64(0xC0000200+s*dests+d), 32),
					mat.Exact(uint64(1000+p), 16),
					mat.Exact(uint64(s+1), 16))
			}
		}
	}
	return t
}

// NF4 runs the beyond-3NF experiment: detect the blocking MVD, decompose
// along it with the set-valued ('all'-style) tag, verify equivalence and
// report the footprint change.
func NF4(sizes [][3]int) ([]*NF4Row, error) {
	var out []*NF4Row
	for _, sz := range sizes {
		tab := aclTable(sz[0], sz[1], sz[2])
		a := core.Analyze(tab)
		blocking := core.Check4NF(a)
		if len(blocking) == 0 {
			return nil, fmt.Errorf("bench: ACL table %v reports 4NF; expected a blocking MVD", sz)
		}
		// Prefer the subscriber ↠ destinations dependency.
		var m fd.MVD
		found := false
		want := mat.SetOf(tab.Schema, packet.FieldIPSrc)
		for _, cand := range blocking {
			if cand.From == want {
				m = cand
				found = true
				break
			}
		}
		if !found {
			m = blocking[0]
		}
		p, err := core.DecomposeMVD(a, m)
		if err != nil {
			return nil, err
		}
		cex, _, err := netkat.EquivalentPipelines(mat.SingleTable(tab), p, 0)
		if err != nil {
			return nil, err
		}
		out = append(out, &NF4Row{
			Subscribers: sz[0], Dests: sz[1], Ports: sz[2],
			UniversalEntries: len(tab.Entries),
			UniversalFields:  tab.FieldCount(),
			MVD:              m.Format(tab.Schema),
			SplitFields:      p.FieldCount(),
			Stages:           p.Depth(),
			Equivalent:       cex == nil,
		})
	}
	return out, nil
}

// RenderNF4 prints the beyond-3NF experiment.
func RenderNF4(w io.Writer, rows []*NF4Row) {
	fmt.Fprintln(w, "NF4 (extension): beyond-3NF — multivalued-dependency decomposition on cross-product ACLs")
	fmt.Fprintf(w, "%-5s %-6s %-6s %-10s %-10s %-7s %-26s %-6s\n",
		"subs", "dests", "ports", "uni fields", "mvd fields", "stages", "mvd", "equiv")
	for _, r := range rows {
		fmt.Fprintf(w, "%-5d %-6d %-6d %-10d %-10d %-7d %-26s %-6v\n",
			r.Subscribers, r.Dests, r.Ports, r.UniversalFields, r.SplitFields, r.Stages, r.MVD, r.Equivalent)
	}
}
