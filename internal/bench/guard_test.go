package bench

import (
	"path/filepath"
	"testing"

	"manorm/internal/usecases"
)

// guardReport builds a synthetic scaling report from (switch, rep,
// workers, mpps) tuples.
func guardReport(rows ...[4]float64) *ParallelReport {
	names := []string{"ovs", "eswitch"}
	reps := []usecases.Representation{"universal", "goto"}
	out := &ParallelReport{}
	for _, r := range rows {
		out.Results = append(out.Results, &ParallelResult{
			Switch:   names[int(r[0])],
			Rep:      reps[int(r[1])],
			Workers:  int(r[2]),
			RateMpps: r[3],
		})
	}
	return out
}

// fullGrid is 2 switches x 2 reps x 2 worker counts with distinct rates.
func fullGrid() *ParallelReport {
	return guardReport(
		[4]float64{0, 0, 1, 10}, [4]float64{0, 0, 2, 12},
		[4]float64{0, 1, 1, 8}, [4]float64{0, 1, 2, 11},
		[4]float64{1, 0, 1, 4}, [4]float64{1, 0, 2, 5},
		[4]float64{1, 1, 1, 9}, [4]float64{1, 1, 2, 13},
	)
}

// TestCompareParallelIdentical: a report compared against itself is
// clean with zero deltas.
func TestCompareParallelIdentical(t *testing.T) {
	base := fullGrid()
	deltas, err := CompareParallel(base, fullGrid(), 0.20)
	if err != nil {
		t.Fatal(err)
	}
	if len(deltas) != 4 {
		t.Fatalf("want 4 aggregates, got %d", len(deltas))
	}
	for _, d := range deltas {
		if !d.OK || d.Delta != 0 {
			t.Fatalf("self-comparison not clean: %+v", d)
		}
	}
}

// TestCompareParallelScaleInvariant: a uniformly k-times-faster host
// must pass — the guard compares shape, not absolute rates.
func TestCompareParallelScaleInvariant(t *testing.T) {
	base := fullGrid()
	cur := fullGrid()
	for _, r := range cur.Results {
		r.RateMpps *= 7.5
	}
	deltas, err := CompareParallel(base, cur, 0.20)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range deltas {
		if !d.OK {
			t.Fatalf("uniform speedup flagged as regression: %+v", d)
		}
	}
}

// TestCompareParallelDetectsRegression: halving one (switch, rep)
// group's rate must flag exactly that group.
func TestCompareParallelDetectsRegression(t *testing.T) {
	base := fullGrid()
	cur := fullGrid()
	for _, r := range cur.Results {
		if r.Switch == "eswitch" && r.Rep == "goto" {
			r.RateMpps /= 2
		}
	}
	deltas, err := CompareParallel(base, cur, 0.20)
	if err != nil {
		t.Fatal(err)
	}
	flagged := 0
	for _, d := range deltas {
		if d.Key == (GuardKey{Switch: "eswitch", Rep: "goto"}) {
			if d.OK || d.Delta > -0.20 {
				t.Fatalf("halved group not flagged: %+v", d)
			}
			flagged++
		} else if !d.OK && d.Delta < 0 {
			// A large regression drags the current median down, so the
			// healthy groups inflate — they may trip the +tol side (the
			// gate fails either way, attribution is approximate), but
			// they must never read as slower.
			t.Fatalf("healthy group flagged as regressed: %+v", d)
		}
	}
	if flagged != 1 {
		t.Fatalf("want the regressed aggregate flagged, got %d", flagged)
	}
}

// TestCompareParallelIntersection: rows only one side has are ignored;
// fully disjoint reports are an error, not a vacuous pass.
func TestCompareParallelIntersection(t *testing.T) {
	base := fullGrid()
	extra := guardReport([4]float64{0, 0, 4, 999}) // workers=4 only in current
	cur := fullGrid()
	cur.Results = append(cur.Results, extra.Results...)
	deltas, err := CompareParallel(base, cur, 0.20)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range deltas {
		if !d.OK {
			t.Fatalf("extra non-shared row leaked into the comparison: %+v", d)
		}
	}

	disjoint := guardReport([4]float64{0, 0, 16, 10})
	if _, err := CompareParallel(base, disjoint, 0.20); err == nil {
		t.Fatal("disjoint reports must not compare cleanly")
	}
}

// TestDiffParallelRows: rows the comparison would silently drop are
// reported on the right side of the diff.
func TestDiffParallelRows(t *testing.T) {
	base := fullGrid()
	cur := fullGrid()
	if d := DiffParallelRows(base, cur); !d.Empty() {
		t.Fatalf("identical reports diff non-empty: %+v", d)
	}
	cur.Results = append(cur.Results, guardReport([4]float64{0, 0, 4, 20}).Results...)
	base.Results = base.Results[1:] // drop ovs/universal/w1 from the baseline
	d := DiffParallelRows(base, cur)
	if len(d.Added) != 2 || d.Added[0] != "ovs/universal/w1" || d.Added[1] != "ovs/universal/w4" {
		t.Fatalf("added rows wrong: %v", d.Added)
	}
	if len(d.Removed) != 0 {
		t.Fatalf("removed rows wrong: %v", d.Removed)
	}
	if d2 := DiffParallelRows(cur, base); len(d2.Removed) != 2 || len(d2.Added) != 0 {
		t.Fatalf("reverse diff wrong: %+v", d2)
	}
}

// TestRequireReps: every switch present in the report must cover every
// required representation.
func TestRequireReps(t *testing.T) {
	rep := fullGrid()
	if err := RequireReps(rep, nil); err != nil {
		t.Fatalf("no requirements must pass: %v", err)
	}
	if err := RequireReps(rep, []string{"universal", "goto"}); err != nil {
		t.Fatalf("covered reps must pass: %v", err)
	}
	err := RequireReps(rep, []string{"fused"})
	if err == nil {
		t.Fatal("missing rep must fail")
	}
	// Adding fused rows for only one switch must still fail for the other.
	rep.Results = append(rep.Results, &ParallelResult{Switch: "ovs", Rep: usecases.RepFused, Workers: 1, RateMpps: 30})
	if err := RequireReps(rep, []string{"fused"}); err == nil {
		t.Fatal("partially covered rep must fail")
	}
	rep.Results = append(rep.Results, &ParallelResult{Switch: "eswitch", Rep: usecases.RepFused, Workers: 1, RateMpps: 30})
	if err := RequireReps(rep, []string{"fused"}); err != nil {
		t.Fatalf("fully covered rep must pass: %v", err)
	}
}

// TestReadParallelReport: WriteParallelJSON output round-trips; garbage
// and empty reports are rejected.
func TestReadParallelReport(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "base.json")
	base := fullGrid()
	if err := WriteParallelJSON(path, DefaultConfig(), 2, base.Results); err != nil {
		t.Fatal(err)
	}
	got, err := ReadParallelReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Results) != len(base.Results) {
		t.Fatalf("round trip lost rows: %d != %d", len(got.Results), len(base.Results))
	}
	if _, err := ReadParallelReport(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file must error")
	}
	empty := filepath.Join(dir, "empty.json")
	if err := WriteParallelJSON(empty, DefaultConfig(), 2, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadParallelReport(empty); err == nil {
		t.Fatal("report with no results must error")
	}
}

// TestMeasureGuard: a tiny real measurement produces positive rates for
// every (switch, rep, workers) row and honors the runs>1 contract.
func TestMeasureGuard(t *testing.T) {
	cfg := QuickConfig()
	cfg.Packets = 2_000
	rep, err := MeasureGuard(cfg, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) == 0 {
		t.Fatal("no rows measured")
	}
	for _, r := range rep.Results {
		if r.RateMpps <= 0 {
			t.Fatalf("non-positive rate: %+v", r)
		}
	}
	if deltas, err := CompareParallel(rep, rep, 0.20); err != nil || len(deltas) == 0 {
		t.Fatalf("self-comparison of measured report failed: %v", err)
	}
}
