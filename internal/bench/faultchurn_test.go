package bench

import (
	"testing"
	"time"

	"manorm/internal/usecases"
)

func faultCfg() Config {
	return Config{Services: 4, Backends: 3, Seed: 5}
}

func TestFaultChurnCleanChannelHasNoRetries(t *testing.T) {
	if testing.Short() {
		t.Skip("dials TCP")
	}
	row, err := FaultChurnOne(faultCfg(), usecases.RepGoto, 6, FaultSpec{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !row.StateOK {
		t.Errorf("clean run diverged from reference")
	}
	m := row.Client.Counters
	if m["mods_resent"] != 0 || m["retries"] != 0 || m["reconnects"] != 0 || m["timeouts"] != 0 {
		t.Errorf("clean channel produced recovery work: %+v", m)
	}
	if row.DupsSkipped != 0 {
		t.Errorf("clean channel produced duplicates: %d", row.DupsSkipped)
	}
	if m["mods_sent"] != 12 {
		t.Errorf("mods_sent = %d, want 12 (6 updates x delete+add on goto)", m["mods_sent"])
	}
}

func TestFaultChurnSurvivesLossAndCut(t *testing.T) {
	if testing.Short() {
		t.Skip("dials TCP with injected faults")
	}
	// The acceptance scenario: seeded loss, jitter, and one forced
	// disconnect — the run must complete with zero lost flow-mods and the
	// exact fault-free final state.
	fs := FaultSpec{
		Loss:       0.05,
		Jitter:     500 * time.Microsecond,
		Cut:        true,
		Seed:       9,
		RPCTimeout: 200 * time.Millisecond,
	}
	for _, rep := range []usecases.Representation{usecases.RepUniversal, usecases.RepGoto} {
		row, err := FaultChurnOne(faultCfg(), rep, 8, fs)
		if err != nil {
			t.Fatalf("%s: %v", rep, err)
		}
		if !row.StateOK {
			t.Errorf("%s: state diverged from fault-free run", rep)
		}
		if n := row.Client.Counters["reconnects"]; n != 1 {
			t.Errorf("%s: reconnects = %d, want 1 (one forced cut)", rep, n)
		}
		if row.Sessions != 2 {
			t.Errorf("%s: sessions = %d, want 2", rep, row.Sessions)
		}
	}
}

func TestFaultChurnCountersAreSeedDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("dials TCP with injected faults")
	}
	fs := FaultSpec{Loss: 0.08, Cut: true, Seed: 31, RPCTimeout: 200 * time.Millisecond}
	a, err := FaultChurnOne(faultCfg(), usecases.RepGoto, 8, fs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FaultChurnOne(faultCfg(), usecases.RepGoto, 8, fs)
	if err != nil {
		t.Fatal(err)
	}
	am, bm := a.Client.Counters, b.Client.Counters
	for _, k := range []string{"mods_sent", "mods_resent", "retries", "timeouts", "reconnects"} {
		if am[k] != bm[k] {
			t.Errorf("same seed produced different counters:\n%+v\n%+v", am, bm)
			break
		}
	}
	if a.DupsSkipped != b.DupsSkipped {
		t.Errorf("DupsSkipped diverged: %d vs %d", a.DupsSkipped, b.DupsSkipped)
	}
	if !a.StateOK || !b.StateOK {
		t.Errorf("state diverged under faults: %v %v", a.StateOK, b.StateOK)
	}
}
