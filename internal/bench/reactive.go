package bench

import (
	"manorm/internal/controlplane"
	"manorm/internal/switches"
	"manorm/internal/usecases"
)

// ReactiveResult is one point of Fig. 4: throughput and latency at a given
// control-plane update rate, for one representation on the NoviFlow model.
type ReactiveResult struct {
	Rep           usecases.Representation
	UpdatesPerSec float64
	// ModsPerUpdate is the flow-mod churn one service update causes —
	// the paper's "8× greater control plane churn" driver.
	ModsPerUpdate int
	// StageEntries is the size of the table those mods rewrite.
	StageEntries int
	// RateMpps / DelayUs come from the closed-form model.
	RateMpps float64
	DelayUs  float64
	// SimRateMpps / SimDelayUs are the emergent values from the
	// discrete-time simulation (switches.SimulateReactive).
	SimRateMpps float64
	SimDelayUs  float64
}

// Fig4 regenerates the reactiveness experiment: a random service's port is
// changed updRate times per second; the universal representation rewrites
// M entries in the big table per update, the normalized (goto) one rewrites
// a single service-table entry.
func Fig4(updRates []float64, cfg Config) ([]*ReactiveResult, error) {
	g := usecases.Generate(cfg.Services, cfg.Backends, cfg.Seed)
	var out []*ReactiveResult
	for _, rep := range []usecases.Representation{usecases.RepUniversal, usecases.RepGoto} {
		sw := switches.NewNoviFlow()
		p, err := g.Build(rep)
		if err != nil {
			return nil, err
		}
		if err := sw.Install(p); err != nil {
			return nil, err
		}
		// Churn per update from the real update planner.
		plan, err := controlplane.PlanPortChange(g, rep, 0, 9999)
		if err != nil {
			return nil, err
		}
		mods := plan.EntriesTouched
		// The table those mods rewrite: stage 0 in both representations.
		stageEntries := len(p.Stages[0].Table.Entries)

		tables := 1.0
		if rep == usecases.RepGoto {
			tables = 2.0
		}
		for _, u := range updRates {
			sim := sw.SimulateReactive(switches.DefaultReactiveSim(u, mods, stageEntries, tables))
			out = append(out, &ReactiveResult{
				Rep:           rep,
				UpdatesPerSec: u,
				ModsPerUpdate: mods,
				StageEntries:  stageEntries,
				RateMpps:      sw.ReactiveThroughput(u, mods, stageEntries),
				DelayUs:       sw.ReactiveLatency(tables) / 1000,
				SimRateMpps:   sim.RateMpps,
				SimDelayUs:    sim.DelayP75Us,
			})
		}
	}
	return out, nil
}

// DefaultUpdateRates is the sweep of Fig. 4 (updates per second).
func DefaultUpdateRates() []float64 { return []float64{0, 10, 25, 50, 100, 200} }
