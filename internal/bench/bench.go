// Package bench is the measurement harness behind cmd/mabench and the
// top-level Go benchmarks: it regenerates every table and figure of the
// paper's evaluation (§2 claims, Table 1, Fig. 4) plus the ablations
// called out in DESIGN.md, on the switch models of internal/switches.
//
// Absolute Mpps numbers depend on the host; what the harness is built to
// reproduce are the paper's shapes: who wins, by what factor, and where
// the behavior flips (see EXPERIMENTS.md).
package bench

import (
	"fmt"
	"time"

	"manorm/internal/stats"
	"manorm/internal/switches"
	"manorm/internal/telemetry"
	"manorm/internal/trafficgen"
	"manorm/internal/usecases"
)

// Config controls measurement effort.
type Config struct {
	// Services (N) and Backends (M): the paper uses 20 and 8.
	Services, Backends int
	// Packets per measurement loop.
	Packets int
	// LatencySamples bounds the per-packet timing samples.
	LatencySamples int
	// Seed drives workload generation.
	Seed int64
	// Telemetry instruments the measured switch with a fresh metrics
	// registry and attaches a per-phase snapshot (per-stage lookup counts,
	// processing-latency percentiles, cache-layer breakdowns) to the
	// result. It perturbs the hot path — a few atomic ops per packet — so
	// headline numbers are normally measured with it off.
	Telemetry bool
}

// DefaultConfig mirrors the paper's setup: 20 random services, 8 backends,
// 64-byte packets.
func DefaultConfig() Config {
	return Config{Services: 20, Backends: 8, Packets: 400_000, LatencySamples: 40_000, Seed: 42}
}

// QuickConfig is a fast variant for tests.
func QuickConfig() Config {
	return Config{Services: 20, Backends: 8, Packets: 30_000, LatencySamples: 4_000, Seed: 42}
}

// StaticResult is one (switch, representation) cell pair of Table 1.
type StaticResult struct {
	Switch string
	Rep    usecases.Representation
	// RateMpps is the forwarding rate.
	RateMpps float64
	// DelayUs is the modeled 3rd-quartile latency in microseconds.
	DelayUs float64
	// ServiceNsP75 is the measured 3rd-quartile per-packet service time.
	ServiceNsP75 float64
	// Templates lists the per-stage classifier templates (ESwitch's
	// explanatory variable).
	Templates []string
	// Stats is the end-of-measurement telemetry snapshot (registry
	// instruments plus the model's Stats view); nil unless
	// Config.Telemetry was set.
	Stats *telemetry.Snapshot `json:"telemetry,omitempty"`
}

// NewSwitch constructs a switch model by name. Options (e.g.
// switches.WithTelemetry) pass through to the model constructor.
func NewSwitch(name string, opts ...switches.Option) (switches.Switch, error) {
	sw, err := switches.New(name, opts...)
	if err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	return sw, nil
}

// instrumented builds a switch by name, attaching a fresh registry (with
// the model registered as its "switch" sub-provider) when cfg.Telemetry
// is set. snapshot() captures the phase snapshot, or returns nil with
// telemetry off.
func instrumented(name string, cfg Config, extra ...switches.Option) (switches.Switch, func() *telemetry.Snapshot, error) {
	if !cfg.Telemetry {
		sw, err := NewSwitch(name, extra...)
		return sw, func() *telemetry.Snapshot { return nil }, err
	}
	reg := telemetry.NewRegistry()
	sw, err := NewSwitch(name, append([]switches.Option{switches.WithTelemetry(reg)}, extra...)...)
	if err != nil {
		return nil, nil, err
	}
	reg.Register("switch", sw)
	return sw, func() *telemetry.Snapshot {
		snap := reg.Snapshot()
		return &snap
	}, nil
}

// SwitchNames lists the evaluated switches in the paper's column order.
func SwitchNames() []string { return switches.ModelNames() }

// MeasureStatic runs the static-performance measurement of Table 1 for one
// switch and representation.
func MeasureStatic(swName string, rep usecases.Representation, cfg Config) (*StaticResult, error) {
	sw, snapshot, err := instrumented(swName, cfg)
	if err != nil {
		return nil, err
	}
	g := usecases.Generate(cfg.Services, cfg.Backends, cfg.Seed)
	p, err := g.Build(rep)
	if err != nil {
		return nil, err
	}
	if err := sw.Install(p); err != nil {
		return nil, err
	}
	stream := trafficgen.GwLB(g, 4096, 1.0, cfg.Seed+1)
	// Measurements run on 64-byte wire frames: each processed packet pays
	// for header parsing (with checksum verification) plus
	// classification, as a real software datapath does.
	frames, _ := trafficgen.Wire(stream)

	// Warm-up cycle (fills the OVS cache, faults in everything).
	for _, f := range frames {
		if _, err := sw.ProcessFrame(f); err != nil {
			return nil, err
		}
	}

	res := &StaticResult{Switch: swName, Rep: rep}
	if es, ok := sw.(*switches.ESwitch); ok {
		res.Templates = es.Templates()
	}
	pm := sw.Perf()

	// Throughput: tight loop, no per-packet timers.
	var tablesSum int64
	start := time.Now()
	for i := 0; i < cfg.Packets; i++ {
		v, err := sw.ProcessFrame(frames[i%len(frames)])
		if err != nil {
			return nil, err
		}
		tablesSum += int64(v.Tables)
	}
	elapsed := time.Since(start)
	serviceNs := float64(elapsed.Nanoseconds()) / float64(cfg.Packets)
	avgTables := float64(tablesSum) / float64(cfg.Packets)

	// Latency: sampled per-packet service times through the switch's
	// latency calibration.
	res75 := stats.NewReservoir(8192, cfg.Seed)
	for i := 0; i < cfg.LatencySamples; i++ {
		f := frames[i%len(frames)]
		t0 := time.Now()
		if _, err := sw.ProcessFrame(f); err != nil {
			return nil, err
		}
		res75.Add(float64(time.Since(t0).Nanoseconds()))
	}
	p75 := res75.Quantile(0.75)
	res.ServiceNsP75 = p75
	res.Stats = snapshot()

	if pm.HWLineRateMpps > 0 {
		// Hardware: line rate; latency from the pipeline-depth model.
		res.RateMpps = pm.HWLineRateMpps
		lat := pm.BaseLatencyNs
		if avgTables > 1 {
			lat += pm.PerTableLatencyNs * (avgTables - 1)
		}
		res.DelayUs = lat / 1000
		return res, nil
	}
	res.RateMpps = 1000 / serviceNs // packets per microsecond = Mpps
	res.DelayUs = (pm.BaseLatencyNs + pm.QueueFactor*p75) / 1000
	return res, nil
}

// Table1 regenerates the paper's Table 1: static performance of the
// universal and goto representations on all four switches, plus the
// compiler-fused form as the zero-join reference point.
func Table1(cfg Config) ([]*StaticResult, error) {
	var out []*StaticResult
	for _, sw := range SwitchNames() {
		for _, rep := range []usecases.Representation{usecases.RepUniversal, usecases.RepGoto, usecases.RepFused} {
			r, err := MeasureStatic(sw, rep, cfg)
			if err != nil {
				return nil, err
			}
			out = append(out, r)
		}
	}
	return out, nil
}
