package bench

import (
	"fmt"
	"io"
	"strings"

	"manorm/internal/usecases"
)

// RenderTable1 prints Table 1 in the paper's layout: switches as column
// groups, representations as rows.
func RenderTable1(w io.Writer, rows []*StaticResult) {
	byKey := make(map[string]*StaticResult)
	for _, r := range rows {
		byKey[r.Switch+"/"+string(r.Rep)] = r
	}
	fmt.Fprintln(w, "Table 1: static performance, gateway & load-balancer (rate [Mpps], 3rd-quartile delay [us])")
	fmt.Fprintf(w, "%-11s", "")
	for _, sw := range SwitchNames() {
		fmt.Fprintf(w, "  %-18s", sw)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-11s", "")
	for range SwitchNames() {
		fmt.Fprintf(w, "  %-8s %-9s", "rate", "delay")
	}
	fmt.Fprintln(w)
	for _, rep := range []usecases.Representation{usecases.RepUniversal, usecases.RepGoto, usecases.RepFused} {
		fmt.Fprintf(w, "%-11s", rep)
		for _, sw := range SwitchNames() {
			r := byKey[sw+"/"+string(rep)]
			if r == nil {
				fmt.Fprintf(w, "  %-8s %-9s", "-", "-")
				continue
			}
			fmt.Fprintf(w, "  %-8.2f %-9.0f", r.RateMpps, r.DelayUs)
		}
		fmt.Fprintln(w)
	}
}

// RenderFig4 prints the reactiveness series as aligned columns (one line
// per update rate, both representations).
func RenderFig4(w io.Writer, rows []*ReactiveResult) {
	fmt.Fprintln(w, "Fig. 4: reactiveness on the NoviFlow model (gateway & load-balancer)")
	fmt.Fprintln(w, "(model = closed form; sim = emergent from the discrete-time stall simulation)")
	fmt.Fprintf(w, "%-8s %-11s %-10s %-13s %-11s %-10s %-14s %-10s\n",
		"upd/s", "uni model", "uni sim", "uni delay", "goto model", "goto sim", "goto delay", "churn u:g")
	byRate := map[float64][2]*ReactiveResult{}
	var order []float64
	for _, r := range rows {
		pair := byRate[r.UpdatesPerSec]
		if r.Rep == usecases.RepUniversal {
			pair[0] = r
		} else {
			pair[1] = r
		}
		if _, seen := byRate[r.UpdatesPerSec]; !seen {
			order = append(order, r.UpdatesPerSec)
		}
		byRate[r.UpdatesPerSec] = pair
	}
	for _, rate := range order {
		pair := byRate[rate]
		u, g := pair[0], pair[1]
		if u == nil || g == nil {
			continue
		}
		fmt.Fprintf(w, "%-8.0f %-11.2f %-10.2f %-13.1f %-11.2f %-10.2f %-14.1f %d:%d\n",
			rate, u.RateMpps, u.SimRateMpps, u.DelayUs, g.RateMpps, g.SimRateMpps, g.DelayUs, u.ModsPerUpdate, g.ModsPerUpdate)
	}
}

// RenderFootprint prints the E1 sweep.
func RenderFootprint(w io.Writer, rows []*FootprintRow) {
	fmt.Fprintln(w, "E1: data-plane footprint [match-action fields] (paper: universal=4MN, goto=N(3+2M))")
	fmt.Fprintf(w, "%-5s %-5s %-10s %-10s %-10s %-10s %-8s\n", "N", "M", "universal", "goto", "metadata", "rematch", "uni/goto")
	for _, r := range rows {
		fmt.Fprintf(w, "%-5d %-5d %-10d %-10d %-10d %-10d %-8.2f\n",
			r.N, r.M, r.Universal, r.Goto, r.Metadata, r.Rematch, r.Ratio)
	}
}

// RenderControl prints the E2 table.
func RenderControl(w io.Writer, rows []*ControlRow) {
	fmt.Fprintln(w, "E2: controllability — table entries touched per service update")
	fmt.Fprintf(w, "%-11s %-12s %-12s\n", "rep", "port change", "VIP change")
	for _, r := range rows {
		fmt.Fprintf(w, "%-11s %-12d %-12d\n", r.Rep, r.PortChange, r.VIPChange)
	}
}

// RenderMonitor prints the E3 table.
func RenderMonitor(w io.Writer, rows []*MonitorRow) {
	fmt.Fprintln(w, "E3: monitorability — counters needed for one tenant aggregate")
	fmt.Fprintf(w, "%-11s %-9s\n", "rep", "counters")
	for _, r := range rows {
		fmt.Fprintf(w, "%-11s %-9d\n", r.Rep, r.Counters)
	}
}

// RenderL3 prints the E6 table.
func RenderL3(w io.Writer, rows []*L3Row) {
	fmt.Fprintln(w, "E6: L3 pipeline normalization (Fig. 2 at scale)")
	fmt.Fprintf(w, "%-9s %-9s %-6s %-10s %-11s %-7s %-14s %-9s\n",
		"prefixes", "nexthops", "ports", "uni fields", "norm fields", "stages", "stage sizes", "verified")
	for _, r := range rows {
		sizes := strings.Trim(strings.Join(strings.Fields(fmt.Sprint(r.StageSizes)), ","), "[]")
		fmt.Fprintf(w, "%-9d %-9d %-6d %-10d %-11d %-7d %-14s %-9v\n",
			r.Prefixes, r.NextHops, r.Ports, r.UniversalFields, r.NormalizedFields, r.Stages, sizes, r.Verified)
	}
}

// RenderCaveat prints the E7 demonstration.
func RenderCaveat(w io.Writer, r *CaveatResult) {
	fmt.Fprintln(w, "E7: the Fig. 3 caveat — decomposition along an action-to-match dependency")
	fmt.Fprintf(w, "dependency:  %s\n", r.FD)
	fmt.Fprintf(w, "rejected:    %v\n", r.Rejected)
	fmt.Fprintf(w, "reason:      %s\n", r.Err)
}

// RenderSDX prints the E8 demonstration.
func RenderSDX(w io.Writer, r *SDXResult) {
	fmt.Fprintln(w, "E8: SDX (appendix, Fig. 5) — beyond-3NF decomposition")
	fmt.Fprintf(w, "universal entries:              %d\n", r.UniversalEntries)
	fmt.Fprintf(w, "metadata pipeline stages:       %d\n", r.PipelineStages)
	fmt.Fprintf(w, "naive inbound table in 1NF:     %v (must be false — needs the 'all' tag)\n", r.NaiveInbound1NF)
	fmt.Fprintf(w, "pipeline ≡ universal:           %v (exhaustive probe: %v)\n", r.Equivalent, r.Exhaustive)
}

// RenderJoins prints the A1 ablation.
func RenderJoins(w io.Writer, rows []*JoinRow) {
	fmt.Fprintln(w, "A1: join-abstraction ablation on the ESwitch model")
	fmt.Fprintf(w, "%-11s %-8s %-8s %-10s %-10s %s\n", "rep", "fields", "entries", "rate[Mpps]", "delay[us]", "templates")
	for _, r := range rows {
		fmt.Fprintf(w, "%-11s %-8d %-8d %-10.2f %-10.0f %s\n",
			r.Rep, r.Fields, r.Entries, r.RateMpps, r.DelayUs, strings.Join(r.Templates, ","))
	}
}

// RenderDepth prints the A2 ablation.
func RenderDepth(w io.Writer, rows []*DepthRow) {
	fmt.Fprintln(w, "A2: normalization-depth ablation (L3 use case)")
	fmt.Fprintf(w, "%-18s %-7s %-8s %-22s\n", "target", "stages", "fields", "remaining violations")
	for _, r := range rows {
		fmt.Fprintf(w, "%-18s %-7d %-8d %-22d\n", r.Target, r.Stages, r.Fields, r.Violations)
	}
}
