package bench

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"time"

	"manorm/internal/controlplane"
	"manorm/internal/fabric"
	"manorm/internal/faultconn"
	"manorm/internal/openflow"
	"manorm/internal/switches"
	"manorm/internal/telemetry"
	"manorm/internal/trafficgen"
	"manorm/internal/usecases"
)

// FabricSpec selects one fabric-churn run: a quorum-committing fabric of
// Members agent-backed switches driven through a seeded fault schedule.
// All randomness derives from Seed, so a fixed spec reproduces the same
// partition/cut/loss schedule.
type FabricSpec struct {
	// Members and Quorum size the fabric; Quorum 0 means all members.
	Members int
	Quorum  int
	// Mode places the pipeline: every rule everywhere (replicate) or
	// entry-stage rules sharded by match key (partition).
	Mode fabric.PlacementMode
	// Loss is the per-frame probability that a controller→switch frame is
	// silently dropped.
	Loss float64
	// Cut forces one mid-frame disconnect on member 0's first connection.
	Cut bool
	// PartitionEvery severs a seeded victim's control link for every k-th
	// update (healed after the epoch); 0 disables partitions. The severed
	// direction alternates between a full split and the asymmetric fault
	// where only the switch's replies vanish.
	PartitionEvery int
	Seed           int64
}

func (fs FabricSpec) String() string {
	s := fmt.Sprintf("%s %d/%d loss=%.1f%%", fs.Mode, fs.quorum(), fs.Members, fs.Loss*100)
	if fs.Cut {
		s += " +cut"
	}
	if fs.PartitionEvery > 0 {
		s += fmt.Sprintf(" +part/%d", fs.PartitionEvery)
	}
	return s
}

func (fs FabricSpec) quorum() int {
	if fs.Quorum <= 0 {
		return fs.Members
	}
	return fs.Quorum
}

// FabricChurnRow is the outcome of one fabric-churn run: the epoch
// protocol's commit/degrade/resync counters, the aggregated client
// resilience counters, and the convergence verdict.
type FabricChurnRow struct {
	Spec    FabricSpec
	Updates int

	// Epochs issued and committed; an epoch that missed quorum is issued
	// but only committed once reconciliation restores quorum.
	Epochs    uint64
	Committed uint64
	// Degraded counts epochs that missed quorum; Freezes counts the
	// resulting read-only transitions; Resyncs counts full dump-and-diff
	// state transfers.
	Degraded int64
	Freezes  int64
	Resyncs  int64
	// Conflicts counts non-commuting concurrent flow-mod pairs flagged by
	// the commutation pre-check; FalseConflicts counts syntactic conflicts
	// the semantic confluence oracle refuted (the pairs ran in one epoch
	// after all).
	Conflicts      int64
	FalseConflicts int64
	// Aggregated openflow client counters across all members.
	Reconnects int64
	ModsResent int64
	Retries    int64
	// NetDrops counts frames black-holed by the partition map.
	NetDrops int64
	// MaxLag is the largest observed gap between the issued epoch and the
	// slowest member's acknowledged epoch.
	MaxLag uint64

	Report *fabric.Report
	// Telemetry carries the fabric's metrics registry snapshot (epoch lag,
	// per-member resyncs and divergence gauges) when cfg.Telemetry is set.
	Telemetry *telemetry.Snapshot
	WallMs    float64
}

// DefaultFabricGrid is the published sweep: the headline fault schedule —
// 1% frame loss, one forced mid-frame cut, a partition on every third
// update, quorum n-1 — under both placement modes.
func DefaultFabricGrid(members int) []FabricSpec {
	var specs []FabricSpec
	for _, mode := range []fabric.PlacementMode{fabric.Replicate, fabric.Partition} {
		specs = append(specs, FabricSpec{
			Members: members, Quorum: members - 1, Mode: mode,
			Loss: 0.01, Cut: true, PartitionEvery: 3, Seed: 42,
		})
	}
	return specs
}

// FabricChurn runs the update burst over the fabric fault grid.
func FabricChurn(cfg Config, updates int, specs []FabricSpec) ([]*FabricChurnRow, error) {
	var out []*FabricChurnRow
	for _, fs := range specs {
		row, err := FabricChurnOne(cfg, updates, fs)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", fs, err)
		}
		out = append(out, row)
	}
	return out, nil
}

// FabricChurnOne drives one fabric of agent-backed switches over TCP
// through a seeded schedule of partitions, an optional mid-frame cut and
// frame loss while churning service ports, then heals everything,
// reconciles, and proves (or refutes) convergence: identical normal
// forms on every replica (or the shard union), exact desired state —
// zero lost or duplicated flow-mods — and packet-for-packet forwarding
// agreement with a fault-free single-switch oracle.
func FabricChurnOne(cfg Config, updates int, fs FabricSpec) (*FabricChurnRow, error) {
	if fs.Members < 2 {
		return nil, fmt.Errorf("fabric churn needs >= 2 members, got %d", fs.Members)
	}
	g := usecases.Generate(cfg.Services, cfg.Backends, cfg.Seed)
	src, err := g.Build(usecases.RepGoto)
	if err != nil {
		return nil, err
	}
	placed, err := fabric.Place(src, fs.Members, fs.Mode)
	if err != nil {
		return nil, err
	}
	nf := faultconn.NewNet(fs.Seed)

	specs := make([]fabric.MemberSpec, fs.Members)
	listeners := make([]net.Listener, fs.Members)
	for i := 0; i < fs.Members; i++ {
		agent, err := openflow.NewAgent(switches.NewESwitch(), placed[i])
		if err != nil {
			return nil, err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		listeners[i] = ln
		name := fmt.Sprintf("sw%d", i)
		go func() {
			// Sequential sessions: after a cut the client redials and the
			// next accept picks up the fresh transport. The agent side is
			// fault-wrapped too, so switch→controller replies obey the same
			// partition map.
			for {
				c, err := ln.Accept()
				if err != nil {
					return
				}
				fc := faultconn.Wrap(c, faultconn.Config{
					Seed: fs.Seed + 13, Net: nf, From: name, To: "ctl",
				})
				_ = agent.Serve(context.Background(), fc)
			}
		}()

		addr := ln.Addr().String()
		idx := i
		dials := 0
		specs[i] = fabric.MemberSpec{Name: name, Dial: func() (net.Conn, error) {
			raw, err := net.Dial("tcp", addr)
			if err != nil {
				return nil, err
			}
			fc := faultconn.Config{
				Seed:     fs.Seed + int64(idx)*101 + int64(dials)*1009,
				DropRate: fs.Loss,
				Net:      nf, From: "ctl", To: name,
			}
			if fs.Cut && idx == 0 && dials == 0 {
				fc.CutAfterWrites = 25
				fc.CutMidFrame = true
			}
			dials++
			return faultconn.Wrap(raw, fc), nil
		}}
	}
	defer func() {
		for _, ln := range listeners {
			ln.Close()
		}
	}()

	f, err := fabric.New(src, specs, fabric.Config{
		Mode:         fs.Mode,
		Quorum:       fs.Quorum,
		EpochTimeout: 2 * time.Second,
		RPCTimeout:   60 * time.Millisecond,
		Retry: openflow.RetryPolicy{
			Base: time.Millisecond, Max: 20 * time.Millisecond,
			Multiplier: 2, Jitter: 0.25, MaxRetries: 3, Seed: fs.Seed,
		},
		Seed:            fs.Seed,
		SemanticCommute: true,
	})
	if err != nil {
		return nil, err
	}
	defer f.Close()

	var reg *telemetry.Registry
	if cfg.Telemetry {
		reg = telemetry.NewRegistry()
		f.RegisterTelemetry(reg)
	}

	ctx := context.Background()
	row := &FabricChurnRow{Spec: fs, Updates: updates}
	vrng := rand.New(rand.NewSource(fs.Seed + 7))
	start := time.Now()
	for i := 0; i < updates; i++ {
		severed := ""
		if fs.PartitionEvery > 0 && i%fs.PartitionEvery == 1 {
			severed = fmt.Sprintf("sw%d", vrng.Intn(fs.Members))
			if i%2 == 0 {
				nf.SeverDirection(severed, "ctl")
			} else {
				nf.Split([]string{"ctl"}, []string{severed})
			}
		}
		svc := i % len(g.Services)
		port := uint16(20000 + i)
		plan, err := controlplane.PlanPortChange(g, usecases.RepGoto, svc, port)
		if err != nil {
			return nil, err
		}
		g.Services[svc].Port = port
		_, applyErr := f.Apply(ctx, plan.Mods)
		if lag := f.EpochLag(); lag > row.MaxLag {
			row.MaxLag = lag
		}
		if severed != "" {
			nf.Heal()
		}
		if applyErr != nil {
			var qe *fabric.QuorumError
			if !errors.As(applyErr, &qe) {
				return nil, fmt.Errorf("update %d: %v", i, applyErr)
			}
			// The epoch was issued but missed quorum and froze the fabric;
			// the partition is healed, so reconciliation resynchronizes the
			// failed members, commits the epoch and unfreezes.
			if err := f.Reconcile(ctx); err != nil {
				return nil, fmt.Errorf("update %d reconcile: %v", i, err)
			}
			if f.Frozen() {
				return nil, fmt.Errorf("update %d: fabric still frozen after heal+reconcile", i)
			}
		}
	}

	// One concurrent round: two independently-planned updates on distinct
	// services, checked for commutation and (being disjoint) delivered in
	// a single epoch with per-member interleaving.
	if len(g.Services) >= 2 {
		var batches [][]openflow.FlowMod
		for k := 0; k < 2; k++ {
			svc := (updates + k) % len(g.Services)
			port := uint16(21000 + k)
			plan, err := controlplane.PlanPortChange(g, usecases.RepGoto, svc, port)
			if err != nil {
				return nil, err
			}
			g.Services[svc].Port = port
			batches = append(batches, plan.Mods)
		}
		if _, _, err := f.ApplyConcurrent(ctx, batches); err != nil {
			return nil, fmt.Errorf("concurrent round: %v", err)
		}
	}

	// One false-conflict round: a port change on service 0 raced with a
	// wildcard-port catch-all for the same VIP. The catch-all's match
	// overlaps the exact-port rows, so the syntactic pre-check flags a
	// conflict — but the rows differ in specificity and most-specific-wins
	// keeps every ordering semantically identical, so the confluence
	// oracle refutes it and the pair still commits in a single epoch.
	{
		port := uint16(22000)
		plan, err := controlplane.PlanPortChange(g, usecases.RepGoto, 0, port)
		if err != nil {
			return nil, err
		}
		g.Services[0].Port = port
		catch, err := controlplane.PlanCatchAll(g, usecases.RepGoto, 0)
		if err != nil {
			return nil, err
		}
		if _, _, err := f.ApplyConcurrent(ctx, [][]openflow.FlowMod{plan.Mods, catch.Mods}); err != nil {
			return nil, fmt.Errorf("false-conflict round: %v", err)
		}
		// Retract the catch-all rows so the fault-free oracle below — built
		// from the service graph alone — stays the exact desired state.
		var drop []openflow.FlowMod
		for _, m := range catch.Mods {
			d := m
			d.Command = openflow.FlowDelete
			d.Actions = nil
			drop = append(drop, d)
		}
		if _, err := f.Apply(ctx, drop); err != nil {
			return nil, fmt.Errorf("false-conflict cleanup: %v", err)
		}
	}

	if err := f.Reconcile(ctx); err != nil {
		return nil, fmt.Errorf("final reconcile: %v", err)
	}
	row.WallMs = float64(time.Since(start).Microseconds()) / 1000

	// The oracle is the pipeline a fault-free single switch would hold
	// after every applied intent; the fabric must match it packet for
	// packet on a fresh traffic sample.
	oracle, err := g.Build(usecases.RepGoto)
	if err != nil {
		return nil, err
	}
	pkts := trafficgen.GwLB(g, 256, 0.9, fs.Seed+5).Packets()
	rep, err := f.CheckConvergence(ctx, oracle, pkts)
	if err != nil {
		return nil, err
	}
	row.Report = rep

	snap := f.Stats()
	row.Epochs = f.Epoch()
	row.Committed = f.CommittedEpoch()
	row.Degraded = int64(snap.Counters["epochs_degraded"])
	row.Freezes = int64(snap.Counters["freezes"])
	row.Conflicts = int64(snap.Counters["commute_conflicts"])
	row.FalseConflicts = int64(snap.Counters["commute_false_conflicts"])
	for _, m := range f.Members() {
		row.Resyncs += m.Resyncs()
		cm := m.Client().Stats()
		row.Reconnects += int64(cm.Counters["reconnects"])
		row.ModsResent += int64(cm.Counters["mods_resent"])
		row.Retries += int64(cm.Counters["retries"])
	}
	row.NetDrops = nf.Drops()

	if reg != nil {
		// Per-switch divergence gauges: 1 when the member's dumped state
		// (or, under replication, its renormalized fingerprint) disagrees
		// with the fabric's view.
		conv := telemetry.NewRegistry()
		for _, mr := range rep.Members {
			div := 0.0
			if !mr.StateOK || (fs.Mode == fabric.Replicate && mr.Fingerprint != rep.Oracle) {
				div = 1
			}
			conv.Gauge(mr.Name + "_divergence").Set(div)
		}
		conv.Gauge("packets_diverged").Set(float64(rep.Divergences))
		reg.Register("convergence", conv)
		s := reg.Snapshot()
		row.Telemetry = &s
	}
	return row, nil
}

// RenderFabricChurn prints the fabric-churn verdicts.
func RenderFabricChurn(w io.Writer, rows []*FabricChurnRow) {
	fmt.Fprintln(w, "E9: multi-switch fabric churn under partitions, cuts and loss (ESwitch agents, TCP)")
	fmt.Fprintf(w, "%-37s %-4s %-7s %-7s %-5s %-7s %-7s %-7s %-6s %-7s %-6s %-10s\n",
		"faults", "upd", "epochs", "commit", "degr", "resync", "reconn", "resent", "drops", "maxlag", "falsec", "verdict")
	for _, r := range rows {
		verdict := "CONVERGED"
		if !r.Report.OK() {
			verdict = fmt.Sprintf("DIVERGED(%d)", r.Report.Divergences)
		}
		fmt.Fprintf(w, "%-37s %-4d %-7d %-7d %-5d %-7d %-7d %-7d %-6d %-7d %-6d %-10s\n",
			r.Spec, r.Updates, r.Epochs, r.Committed, r.Degraded, r.Resyncs,
			r.Reconnects, r.ModsResent, r.NetDrops, r.MaxLag, r.FalseConflicts, verdict)
	}
}
