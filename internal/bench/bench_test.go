package bench

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"manorm/internal/usecases"
)

func TestFootprintMatchesClosedForms(t *testing.T) {
	rows, err := Footprint([]int{3, 10, 20}, []int{2, 8, 16}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Universal != 4*r.M*r.N {
			t.Errorf("N=%d M=%d: universal = %d, want 4MN = %d", r.N, r.M, r.Universal, 4*r.M*r.N)
		}
		if want := r.N * (3 + 2*r.M); r.Goto != want {
			t.Errorf("N=%d M=%d: goto = %d, want N(3+2M) = %d", r.N, r.M, r.Goto, want)
		}
		// 4MN / N(3+2M) = 4M/(3+2M): 1.68 at M=8, 1.83 at M=16, → 2.
		if r.M >= 8 && r.Ratio < 1.6 {
			t.Errorf("N=%d M=%d: ratio %.2f, want approaching 2", r.N, r.M, r.Ratio)
		}
	}
}

func TestControlAndMonitorShapes(t *testing.T) {
	cfg := QuickConfig()
	ctl, err := Control(cfg)
	if err != nil {
		t.Fatal(err)
	}
	byRep := map[usecases.Representation]*ControlRow{}
	for _, r := range ctl {
		byRep[r.Rep] = r
	}
	if byRep[usecases.RepUniversal].PortChange != cfg.Backends {
		t.Errorf("universal port change = %d, want M=%d", byRep[usecases.RepUniversal].PortChange, cfg.Backends)
	}
	if byRep[usecases.RepGoto].PortChange != 1 || byRep[usecases.RepMetadata].VIPChange != 1 {
		t.Errorf("normalized updates not 1: %+v", byRep)
	}

	mon, err := Monitor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range mon {
		want := 1
		if r.Rep == usecases.RepUniversal {
			want = cfg.Backends
		}
		if r.Counters != want {
			t.Errorf("%s counters = %d, want %d", r.Rep, r.Counters, want)
		}
	}
}

func TestFig4Shape(t *testing.T) {
	rows, err := Fig4(DefaultUpdateRates(), QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	var uni0, uni100, goto0, goto100 float64
	for _, r := range rows {
		switch {
		case r.Rep == usecases.RepUniversal && r.UpdatesPerSec == 0:
			uni0 = r.RateMpps
		case r.Rep == usecases.RepUniversal && r.UpdatesPerSec == 100:
			uni100 = r.RateMpps
		case r.Rep == usecases.RepGoto && r.UpdatesPerSec == 0:
			goto0 = r.RateMpps
		case r.Rep == usecases.RepGoto && r.UpdatesPerSec == 100:
			goto100 = r.RateMpps
		}
	}
	// Paper: ~20× loss for universal at 100 upd/s, none for normalized.
	if ratio := uni0 / uni100; ratio < 10 {
		t.Errorf("universal loss at 100 upd/s = %.1fx, want >= 10x", ratio)
	}
	if goto100 < 0.9*goto0 {
		t.Errorf("normalized rate dropped: %.2f -> %.2f", goto0, goto100)
	}
	// Latency: normalized ~25%+ above universal, flat across rates.
	for _, r := range rows {
		if r.Rep == usecases.RepUniversal && r.DelayUs != 6.4 {
			t.Errorf("universal delay = %.1f, want 6.4", r.DelayUs)
		}
		if r.Rep == usecases.RepGoto && r.DelayUs != 8.4 {
			t.Errorf("goto delay = %.1f, want 8.4", r.DelayUs)
		}
	}
	// Churn ratio is the paper's 8×.
	for _, r := range rows {
		want := 1
		if r.Rep == usecases.RepUniversal {
			want = 8
		}
		if r.ModsPerUpdate != want {
			t.Errorf("%s mods/update = %d, want %d", r.Rep, r.ModsPerUpdate, want)
		}
	}
}

// retryShape reruns a load-sensitive timing assertion a few times before
// declaring failure: the shapes are robust, but a parallel test load can
// perturb any single measurement.
func retryShape(t *testing.T, attempts int, check func() error) {
	t.Helper()
	var err error
	for i := 0; i < attempts; i++ {
		if err = check(); err == nil {
			return
		}
	}
	t.Error(err)
}

func TestMeasureStaticESwitchShape(t *testing.T) {
	// The Table 1 headline: ESwitch gains >= 1.3x throughput and loses
	// >= 25% latency when the pipeline is normalized (paper: 1.56x and
	// ~0.58x). Quick config keeps this test affordable; the full run
	// lives in the root benchmarks.
	cfg := QuickConfig()
	retryShape(t, 3, func() error {
		uni, err := MeasureStatic("eswitch", usecases.RepUniversal, cfg)
		if err != nil {
			return err
		}
		gt, err := MeasureStatic("eswitch", usecases.RepGoto, cfg)
		if err != nil {
			return err
		}
		if gt.RateMpps < 1.3*uni.RateMpps {
			return fmt.Errorf("eswitch goto/universal rate = %.2f/%.2f = %.2fx, want >= 1.3x",
				gt.RateMpps, uni.RateMpps, gt.RateMpps/uni.RateMpps)
		}
		if gt.DelayUs >= uni.DelayUs {
			return fmt.Errorf("eswitch goto delay %.0f >= universal %.0f", gt.DelayUs, uni.DelayUs)
		}
		if uni.Templates[0] != "ternary" || gt.Templates[0] != "exact" {
			return fmt.Errorf("templates: universal=%v goto=%v", uni.Templates, gt.Templates)
		}
		return nil
	})
}

func TestMeasureStaticAgnosticSwitches(t *testing.T) {
	cfg := QuickConfig()
	for _, sw := range []string{"ovs", "lagopus", "noviflow"} {
		sw := sw
		retryShape(t, 3, func() error {
			uni, err := MeasureStatic(sw, usecases.RepUniversal, cfg)
			if err != nil {
				return err
			}
			gt, err := MeasureStatic(sw, usecases.RepGoto, cfg)
			if err != nil {
				return err
			}
			ratio := gt.RateMpps / uni.RateMpps
			if ratio < 0.6 || ratio > 1.6 {
				return fmt.Errorf("%s: goto/universal rate ratio = %.2f, want ~1 (agnostic)", sw, ratio)
			}
			return nil
		})
	}
	// NoviFlow: line rate and the small latency penalty for goto.
	uni, _ := MeasureStatic("noviflow", usecases.RepUniversal, cfg)
	gt, _ := MeasureStatic("noviflow", usecases.RepGoto, cfg)
	if uni.RateMpps != 10.73 || gt.RateMpps != 10.73 {
		t.Errorf("noviflow rates = %.2f/%.2f, want 10.73", uni.RateMpps, gt.RateMpps)
	}
	if gt.DelayUs <= uni.DelayUs {
		t.Errorf("noviflow goto delay %.1f <= universal %.1f", gt.DelayUs, uni.DelayUs)
	}
}

func TestL3ExperimentShrinks(t *testing.T) {
	rows, err := L3Experiment([][3]int{{32, 8, 3}, {128, 16, 4}}, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.NormalizedFields >= r.UniversalFields {
			t.Errorf("%d prefixes: no shrinkage (%d -> %d)", r.Prefixes, r.UniversalFields, r.NormalizedFields)
		}
		if r.Stages != 4 {
			t.Errorf("%d prefixes: %d stages, want 4 (Fig. 2c shape)", r.Prefixes, r.Stages)
		}
		if !r.Verified {
			t.Errorf("%d prefixes: equivalence not verified", r.Prefixes)
		}
	}
}

func TestCaveatAndSDX(t *testing.T) {
	c, err := Caveat()
	if err != nil {
		t.Fatal(err)
	}
	if !c.Rejected {
		t.Errorf("Fig. 3 decomposition not rejected")
	}
	s, err := SDX()
	if err != nil {
		t.Fatal(err)
	}
	if !s.Equivalent || s.NaiveInbound1NF || s.PipelineStages != 3 {
		t.Errorf("SDX result wrong: %+v", s)
	}
}

func TestJoinsAblation(t *testing.T) {
	rows, err := Joins(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	var uni, gt *JoinRow
	for _, r := range rows {
		switch r.Rep {
		case usecases.RepUniversal:
			uni = r
		case usecases.RepGoto:
			gt = r
		}
	}
	if gt.Fields >= uni.Fields {
		t.Errorf("goto fields %d >= universal %d", gt.Fields, uni.Fields)
	}
	if gt.RateMpps <= uni.RateMpps {
		t.Errorf("goto rate %.2f <= universal %.2f on eswitch", gt.RateMpps, uni.RateMpps)
	}
}

func TestDepthAblation(t *testing.T) {
	rows, err := Depth(64, 8, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Footprint decreases with depth; stages increase.
	if !(rows[0].Fields > rows[1].Fields && rows[1].Fields > rows[2].Fields) {
		t.Errorf("fields not decreasing: %d, %d, %d", rows[0].Fields, rows[1].Fields, rows[2].Fields)
	}
	if !(rows[0].Stages < rows[1].Stages && rows[1].Stages <= rows[2].Stages) {
		t.Errorf("stages not increasing: %d, %d, %d", rows[0].Stages, rows[1].Stages, rows[2].Stages)
	}
	if rows[2].Violations != 0 {
		t.Errorf("3NF leaves %d violations", rows[2].Violations)
	}
}

func TestRenderers(t *testing.T) {
	var buf bytes.Buffer
	cfg := QuickConfig()

	fp, _ := Footprint([]int{3}, []int{8}, 1)
	RenderFootprint(&buf, fp)
	ctl, _ := Control(cfg)
	RenderControl(&buf, ctl)
	mon, _ := Monitor(cfg)
	RenderMonitor(&buf, mon)
	fig4, _ := Fig4([]float64{0, 100}, cfg)
	RenderFig4(&buf, fig4)
	l3, _ := L3Experiment([][3]int{{16, 4, 2}}, 3)
	RenderL3(&buf, l3)
	cv, _ := Caveat()
	RenderCaveat(&buf, cv)
	sdx, _ := SDX()
	RenderSDX(&buf, sdx)
	dep, _ := Depth(16, 4, 2, 3)
	RenderDepth(&buf, dep)

	out := buf.String()
	for _, want := range []string{"E1", "E2", "E3", "Fig. 4", "E6", "E7", "E8", "A2", "universal", "goto"} {
		if !strings.Contains(out, want) {
			t.Errorf("render output missing %q", want)
		}
	}
}

func TestNewSwitchUnknown(t *testing.T) {
	if _, err := NewSwitch("cisco"); err == nil {
		t.Errorf("unknown switch accepted")
	}
	if _, err := MeasureStatic("cisco", usecases.RepGoto, QuickConfig()); err == nil {
		t.Errorf("unknown switch measured")
	}
}

func TestNF4Experiment(t *testing.T) {
	rows, err := NF4([][3]int{{4, 4, 4}, {8, 8, 4}})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if !r.Equivalent {
			t.Errorf("%dx%dx%d: MVD split not equivalent", r.Subscribers, r.Dests, r.Ports)
		}
		if r.SplitFields >= r.UniversalFields {
			t.Errorf("%dx%dx%d: no shrinkage (%d -> %d)",
				r.Subscribers, r.Dests, r.Ports, r.UniversalFields, r.SplitFields)
		}
		if r.Stages != 3 {
			t.Errorf("stages = %d, want 3", r.Stages)
		}
		if r.UniversalEntries != r.Subscribers*r.Dests*r.Ports {
			t.Errorf("universal entries = %d, want the full cross product %d",
				r.UniversalEntries, r.Subscribers*r.Dests*r.Ports)
		}
	}
	var buf bytes.Buffer
	RenderNF4(&buf, rows)
	if !strings.Contains(buf.String(), "->>") {
		t.Errorf("NF4 render missing MVD arrow: %s", buf.String())
	}
}

func TestCacheLayers(t *testing.T) {
	cfg := QuickConfig()
	rows, err := CacheLayers(cfg, []int{100, 5000})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.SlowPct > 5 {
			t.Errorf("%s/%d flows: %.1f%% slow-path; caches not absorbing", r.Rep, r.Flows, r.SlowPct)
		}
		// Megaflow count tracks pipeline paths (≤ N×M), not traffic.
		if r.Megaflows > cfg.Services*cfg.Backends+1 {
			t.Errorf("%s/%d flows: %d megaflows > N*M paths", r.Rep, r.Flows, r.Megaflows)
		}
	}
	// Small populations live in the EMC; large ones lean on megaflows.
	small, large := rows[0], rows[1]
	if small.EMCHitPct < large.EMCHitPct {
		t.Errorf("EMC share did not shrink with population: %.1f -> %.1f", small.EMCHitPct, large.EMCHitPct)
	}
	var buf bytes.Buffer
	RenderCache(&buf, rows)
	if !strings.Contains(buf.String(), "megaflows") {
		t.Errorf("render missing header")
	}
}
