package bench

import (
	"context"
	"fmt"
	"io"
	"net"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"manorm/internal/controlplane"
	"manorm/internal/dataplane"
	"manorm/internal/faultconn"
	"manorm/internal/openflow"
	"manorm/internal/switches"
	"manorm/internal/telemetry"
	"manorm/internal/trafficgen"
	"manorm/internal/usecases"
)

// SoakSpec configures the sustained soak (E10): forwarding, control-plane
// churn and control-channel faults run concurrently for Duration while
// per-window throughput and latency gates watch for drift.
type SoakSpec struct {
	// Duration is the total soak time (default 60s).
	Duration time.Duration
	// Workers is the number of forwarding goroutines (default 2).
	Workers int
	// Rep is the installed pipeline representation (default goto — the
	// normalized form, so churn exercises multi-stage reinstalls).
	Rep usecases.Representation
	// Malformed is the corrupted fraction of the wire trace (default 2%),
	// keeping the decoder's typed drop paths hot for the whole run.
	Malformed float64
	// Fault shapes the control channel; every control connection is
	// additionally cut periodically so the client's reconnect path runs
	// throughout the soak, not once.
	Fault FaultSpec
	// Windows is the number of measurement windows (default 12). Window 0
	// is warm-up and exempt from the gates.
	Windows int
	// DriftTol gates throughput: every post-warm-up window must forward at
	// least (1-DriftTol) × the median window rate (default 0.5).
	DriftTol float64
	// P99Factor gates tail latency: every post-warm-up window's p99
	// processing time must stay within P99Factor × the median window p99
	// (default 16 — processing histograms under concurrent churn are
	// noisy; the gate catches collapse, not jitter).
	P99Factor float64
}

// DefaultSoakSpec is the CI soak: one minute of forwarding on the goto
// pipeline under 1% control-frame loss, 25ms jitter, periodic connection
// cuts and 2% malformed traffic.
func DefaultSoakSpec() SoakSpec {
	return SoakSpec{
		Duration:  60 * time.Second,
		Workers:   2,
		Rep:       usecases.RepGoto,
		Malformed: 0.02,
		Fault: FaultSpec{
			Loss: 0.01, Jitter: 25 * time.Millisecond,
			Seed: 1, RPCTimeout: 250 * time.Millisecond,
		},
		Windows:   12,
		DriftTol:  0.5,
		P99Factor: 16,
	}
}

// SoakWindow is one measurement window's view of the run.
type SoakWindow struct {
	// Mpps is the aggregate forwarding rate during the window.
	Mpps float64
	// P99Ns is the 99th-percentile per-packet processing time of the
	// observations made during this window (histogram bucket delta).
	P99Ns float64
	// Packets is the number of frames forwarded during the window.
	Packets uint64
}

// SoakResult is the outcome of one soak run.
type SoakResult struct {
	Spec    SoakSpec
	Windows []SoakWindow
	// Packets is the total frames forwarded; Updates the control-plane
	// updates committed under faults.
	Packets uint64
	Updates int64
	// DropsTruncated/DropsBadHeader are the ingest layer's typed decode
	// drops, read from the telemetry registry.
	DropsTruncated uint64
	DropsBadHeader uint64
	// Violations lists every gate the run failed; empty means the soak
	// passed.
	Violations []string
}

// OK reports whether every gate held.
func (r *SoakResult) OK() bool { return len(r.Violations) == 0 }

// Soak runs the sustained-load experiment: W forwarding workers cycle a
// replayable wire trace (including malformed frames) through an
// instrumented ESwitch while a controller churns service ports over a
// fault-injected TCP control channel, and a sampler snapshots throughput
// and the processing-latency histogram per window. Worker and harness
// errors abort the run; gate failures are reported in the result.
func Soak(cfg Config, spec SoakSpec) (*SoakResult, error) {
	def := DefaultSoakSpec()
	if spec.Duration <= 0 {
		spec.Duration = def.Duration
	}
	if spec.Workers <= 0 {
		spec.Workers = def.Workers
	}
	if spec.Rep == "" {
		spec.Rep = def.Rep
	}
	if spec.Windows < 3 {
		spec.Windows = def.Windows
	}
	if spec.DriftTol <= 0 {
		spec.DriftTol = def.DriftTol
	}
	if spec.P99Factor <= 0 {
		spec.P99Factor = def.P99Factor
	}
	if spec.Fault.RPCTimeout <= 0 {
		spec.Fault.RPCTimeout = def.Fault.RPCTimeout
	}

	reg := telemetry.NewRegistry()
	g := usecases.Generate(cfg.Services, cfg.Backends, cfg.Seed)
	p, err := g.Build(spec.Rep)
	if err != nil {
		return nil, err
	}
	sw := switches.NewESwitch(switches.WithTelemetry(reg))
	agent, err := openflow.NewAgent(sw, p)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			_ = agent.Serve(context.Background(), c)
		}
	}()

	// Every control connection is faulty, and every other one is cut after
	// a few dozen frames — the soak keeps the reconnect/resync machinery
	// running for its whole duration instead of exercising it once.
	dials := 0
	dialer := func() (net.Conn, error) {
		raw, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			return nil, err
		}
		fc := faultconn.Config{
			Seed:         spec.Fault.Seed + int64(dials)*1009,
			DropRate:     spec.Fault.Loss,
			Latency:      spec.Fault.Latency,
			Jitter:       spec.Fault.Jitter,
			MaxReadChunk: 9,
		}
		if dials%2 == 1 {
			fc.CutAfterWrites = 64
			fc.CutMidFrame = true
		}
		dials++
		return faultconn.Wrap(raw, fc), nil
	}
	client, err := openflow.NewClient(nil,
		openflow.WithDialer(dialer),
		openflow.WithRPCTimeout(spec.Fault.RPCTimeout),
		openflow.WithRetryPolicy(openflow.RetryPolicy{
			Base: 2 * time.Millisecond, Max: 100 * time.Millisecond,
			Multiplier: 2, Jitter: 0.25, MaxRetries: 8, Seed: spec.Fault.Seed,
		}),
	)
	if err != nil {
		return nil, err
	}
	defer client.Close()
	ctl := &controlplane.Controller{Client: client, Rep: spec.Rep, Config: g}

	fs, err := trafficgen.WireStream(trafficgen.WireSpec{
		Malformed: spec.Malformed, Seed: cfg.Seed,
		Services: cfg.Services, Backends: cfg.Backends,
	})
	if err != nil {
		return nil, err
	}
	shards := trafficgen.Shards(fs.Frames(), spec.Workers)

	var stop atomic.Bool
	var forwarded atomic.Uint64
	workerErrs := make([]error, spec.Workers)
	var wg sync.WaitGroup
	for wi := 0; wi < spec.Workers; wi++ {
		var batches [][][]byte
		shard := shards[wi%len(shards)]
		for off := 0; off < len(shard); off += parallelBatch {
			end := off + parallelBatch
			if end > len(shard) {
				end = len(shard)
			}
			batches = append(batches, shard[off:end])
		}
		worker := sw.NewWorker()
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			out := make([]dataplane.Verdict, parallelBatch)
			for i := 0; !stop.Load(); i++ {
				b := batches[i%len(batches)]
				if err := worker.ProcessBatch(b, out); err != nil {
					workerErrs[wi] = err
					return
				}
				forwarded.Add(uint64(len(b)))
			}
		}(wi)
	}

	var updates atomic.Int64
	var churnErr error
	churnDone := make(chan struct{})
	go func() {
		defer close(churnDone)
		ctx := context.Background()
		for i := 0; !stop.Load(); i++ {
			svc := i % len(g.Services)
			if _, err := ctl.ChangeServicePort(ctx, svc, uint16(20000+i%40000)); err != nil {
				churnErr = err
				return
			}
			updates.Add(1)
		}
	}()

	// Sampler: per window, diff the forwarded count and the processing
	// histogram's bucket counts (the histogram survives churn reinstalls —
	// the registry hands back the same instrument by name).
	winDur := spec.Duration / time.Duration(spec.Windows)
	windows := make([]SoakWindow, 0, spec.Windows)
	var prevPkts uint64
	prevHist := soakHist(reg)
	for wi := 0; wi < spec.Windows; wi++ {
		time.Sleep(winDur)
		cur := forwarded.Load()
		curHist := soakHist(reg)
		windows = append(windows, SoakWindow{
			Mpps:    float64(cur-prevPkts) / winDur.Seconds() / 1e6,
			P99Ns:   histDelta(prevHist, curHist).Quantile(0.99),
			Packets: cur - prevPkts,
		})
		prevPkts, prevHist = cur, curHist
	}

	stop.Store(true)
	wg.Wait()
	<-churnDone
	for _, err := range workerErrs {
		if err != nil {
			return nil, fmt.Errorf("soak forwarding worker: %w", err)
		}
	}

	snap := reg.Snapshot()
	res := &SoakResult{
		Spec:           spec,
		Windows:        windows,
		Packets:        forwarded.Load(),
		Updates:        updates.Load(),
		DropsTruncated: snap.Counters["ingest.drops.truncated"],
		DropsBadHeader: snap.Counters["ingest.drops.bad_header"],
	}
	res.Violations = soakGates(res, churnErr)
	return res, nil
}

// soakGates evaluates the run against the spec's gates, returning one
// message per violated gate. Window 0 is warm-up and exempt.
func soakGates(r *SoakResult, churnErr error) []string {
	var v []string
	spec := r.Spec
	steady := r.Windows[1:]
	var rates, p99s []float64
	for _, w := range steady {
		rates = append(rates, w.Mpps)
		if w.P99Ns > 0 {
			p99s = append(p99s, w.P99Ns)
		}
	}
	medRate := soakMedian(rates)
	floor := (1 - spec.DriftTol) * medRate
	for i, w := range steady {
		if w.Mpps < floor {
			v = append(v, fmt.Sprintf("throughput drift: window %d at %.3f Mpps, below %.3f (%.0f%% of median %.3f)",
				i+1, w.Mpps, floor, (1-spec.DriftTol)*100, medRate))
		}
	}
	if medP99 := soakMedian(p99s); medP99 > 0 {
		ceil := spec.P99Factor * medP99
		for i, w := range steady {
			if w.P99Ns > ceil {
				v = append(v, fmt.Sprintf("p99 blowup: window %d at %.0fns, above %.0fns (%.0f× median %.0fns)",
					i+1, w.P99Ns, ceil, spec.P99Factor, medP99))
			}
		}
	}
	if churnErr != nil {
		v = append(v, fmt.Sprintf("control-plane churn failed: %v", churnErr))
	}
	if r.Updates == 0 {
		v = append(v, "control-plane churn committed zero updates")
	}
	if spec.Malformed > 0 && r.DropsTruncated+r.DropsBadHeader == 0 {
		v = append(v, "malformed traffic injected but ingest drop counters stayed zero")
	}
	return v
}

// soakHist finds the pipeline processing-latency histogram in the
// registry (there is exactly one instrumented pipeline in the soak).
func soakHist(reg *telemetry.Registry) telemetry.HistogramSnapshot {
	snap := reg.Snapshot()
	for name, h := range snap.Histograms {
		if strings.HasSuffix(name, ".process_ns") {
			return h
		}
	}
	return telemetry.HistogramSnapshot{}
}

// histDelta subtracts two snapshots of one histogram bucket-wise, giving
// the distribution of only the observations made between them. The
// current max stands in for the window max (the instrument does not track
// per-window maxima); it only matters for quantiles landing in the
// overflow bucket.
func histDelta(prev, cur telemetry.HistogramSnapshot) telemetry.HistogramSnapshot {
	prevByLE := make(map[float64]uint64, len(prev.Buckets))
	for _, b := range prev.Buckets {
		prevByLE[b.LE] = b.Count
	}
	d := telemetry.HistogramSnapshot{Max: cur.Max}
	for _, b := range cur.Buckets {
		if n := b.Count - prevByLE[b.LE]; n > 0 {
			d.Buckets = append(d.Buckets, telemetry.Bucket{LE: b.LE, Count: n})
			d.Count += n
		}
	}
	return d
}

// soakMedian returns the median of xs (0 for an empty slice).
func soakMedian(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if n := len(s); n%2 == 1 {
		return s[n/2]
	} else {
		return (s[n/2-1] + s[n/2]) / 2
	}
}

// RenderSoak prints the soak run: the per-window table and the gate
// outcome.
func RenderSoak(w io.Writer, r *SoakResult) {
	fmt.Fprintf(w, "E10: sustained soak — %s forwarding (%d workers, rep %s) + churn under faults (%s, %.0f%% malformed)\n",
		r.Spec.Duration, r.Spec.Workers, r.Spec.Rep, r.Spec.Fault, r.Spec.Malformed*100)
	fmt.Fprintf(w, "%-8s %-12s %-12s %-10s\n", "window", "rate[Mpps]", "p99[µs]", "packets")
	for i, win := range r.Windows {
		note := ""
		if i == 0 {
			note = "  (warm-up)"
		}
		fmt.Fprintf(w, "%-8d %-12.3f %-12.2f %-10d%s\n", i, win.Mpps, win.P99Ns/1000, win.Packets, note)
	}
	fmt.Fprintf(w, "totals: %d packets, %d control updates, drops: %d truncated / %d bad-header\n",
		r.Packets, r.Updates, r.DropsTruncated, r.DropsBadHeader)
	if r.OK() {
		fmt.Fprintf(w, "gates: PASS (drift ≤ %.0f%%, p99 ≤ %.0f× median, churn live, typed drops observed)\n",
			r.Spec.DriftTol*100, r.Spec.P99Factor)
		return
	}
	fmt.Fprintln(w, "gates: FAIL")
	for _, v := range r.Violations {
		fmt.Fprintf(w, "  - %s\n", v)
	}
}
