package bench

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync/atomic"
	"time"

	"manorm/internal/controlplane"
	"manorm/internal/openflow"
	"manorm/internal/switches"
	"manorm/internal/usecases"
)

// WireChurnRow quantifies the control-channel cost of a service-update
// burst on one representation: flow-mods, bytes on the wire, and wall
// time, end to end over a real TCP connection. This extends E2 from
// counting planned entries to measuring the actual control-plane work the
// paper's reactiveness argument is about.
type WireChurnRow struct {
	Rep      usecases.Representation
	Updates  int
	FlowMods int64
	// TxBytes counts controller→switch bytes (flow-mods + barriers).
	TxBytes int64
	WallMs  float64
}

// countingConn wraps a net.Conn and counts written bytes.
type countingConn struct {
	net.Conn
	tx *atomic.Int64
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.tx.Add(int64(n))
	return n, err
}

// WireChurn runs `updates` service port changes over TCP against an
// ESwitch model for each representation and reports the churn cost.
func WireChurn(cfg Config, updates int) ([]*WireChurnRow, error) {
	var out []*WireChurnRow
	for _, rep := range []usecases.Representation{
		usecases.RepUniversal, usecases.RepGoto, usecases.RepMetadata,
	} {
		row, err := wireChurnOne(cfg, rep, updates)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", rep, err)
		}
		out = append(out, row)
	}
	return out, nil
}

func wireChurnOne(cfg Config, rep usecases.Representation, updates int) (*WireChurnRow, error) {
	g := usecases.Generate(cfg.Services, cfg.Backends, cfg.Seed)
	p, err := g.Build(rep)
	if err != nil {
		return nil, err
	}
	agent, err := openflow.NewAgent(switches.NewESwitch(), p)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer ln.Close()
	serveErr := make(chan error, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			serveErr <- err
			return
		}
		err = agent.Serve(context.Background(), c)
		if errors.Is(err, io.EOF) {
			err = nil
		}
		serveErr <- err
	}()

	raw, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		return nil, err
	}
	var tx atomic.Int64
	client, err := openflow.NewClient(&countingConn{Conn: raw, tx: &tx})
	if err != nil {
		return nil, err
	}
	defer client.Close()

	ctx := context.Background()
	ctl := &controlplane.Controller{Client: client, Rep: rep, Config: g}
	start := time.Now()
	for i := 0; i < updates; i++ {
		svc := i % len(g.Services)
		if _, err := ctl.ChangeServicePort(ctx, svc, uint16(20000+i)); err != nil {
			return nil, err
		}
	}
	wall := time.Since(start)

	return &WireChurnRow{
		Rep:      rep,
		Updates:  updates,
		FlowMods: client.ModsSent,
		TxBytes:  tx.Load(),
		WallMs:   float64(wall.Microseconds()) / 1000,
	}, nil
}

// RenderWireChurn prints the wire-churn comparison.
func RenderWireChurn(w io.Writer, rows []*WireChurnRow) {
	fmt.Fprintln(w, "E2b (extension): control-channel cost of a service-update burst over TCP (ESwitch agent)")
	fmt.Fprintf(w, "%-11s %-8s %-10s %-10s %-9s\n", "rep", "updates", "flow-mods", "tx bytes", "wall[ms]")
	for _, r := range rows {
		fmt.Fprintf(w, "%-11s %-8d %-10d %-10d %-9.1f\n", r.Rep, r.Updates, r.FlowMods, r.TxBytes, r.WallMs)
	}
}
