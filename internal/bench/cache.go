package bench

import (
	"fmt"
	"io"

	"manorm/internal/switches"
	"manorm/internal/trafficgen"
	"manorm/internal/usecases"
)

// CacheRow reports the OVS cache hierarchy's behavior under Zipf traffic:
// per-layer hit fractions and the resulting state sizes, for one flow
// population and representation.
type CacheRow struct {
	Rep        usecases.Representation
	Flows      int
	EMCHitPct  float64
	MegaHitPct float64
	SlowPct    float64
	EMCSize    int
	Megaflows  int
}

// CacheLayers measures the OVS model's EMC/megaflow/slow-path split under
// Zipf-distributed flows. The takeaway mirrors the paper's OVS story from
// another angle: whatever the installed representation, steady-state
// packets are served from the caches, and the megaflow count tracks the
// number of distinct pipeline *paths*, not the representation's table
// count.
func CacheLayers(cfg Config, populations []int) ([]*CacheRow, error) {
	var out []*CacheRow
	for _, rep := range []usecases.Representation{usecases.RepUniversal, usecases.RepGoto} {
		for _, pop := range populations {
			g := usecases.Generate(cfg.Services, cfg.Backends, cfg.Seed)
			sw := switches.NewOVS()
			p, err := g.Build(rep)
			if err != nil {
				return nil, err
			}
			if err := sw.Install(p); err != nil {
				return nil, err
			}
			stream := trafficgen.GwLBZipf(g, cfg.Packets, pop, 1.2, cfg.Seed+7)
			for i := 0; i < stream.Len(); i++ {
				if _, err := sw.Process(stream.Next()); err != nil {
					return nil, err
				}
			}
			snap := sw.Stats()
			hits := snap.Counters["emc_hits"]
			megaHits := snap.Counters["megaflow_hits"]
			misses := snap.Counters["slow_misses"]
			total := float64(hits + megaHits + misses)
			out = append(out, &CacheRow{
				Rep:        rep,
				Flows:      pop,
				EMCHitPct:  100 * float64(hits) / total,
				MegaHitPct: 100 * float64(megaHits) / total,
				SlowPct:    100 * float64(misses) / total,
				EMCSize:    int(snap.Gauges["emc_entries"]),
				Megaflows:  int(snap.Gauges["megaflow_entries"]),
			})
		}
	}
	return out, nil
}

// RenderCache prints the cache-hierarchy experiment.
func RenderCache(w io.Writer, rows []*CacheRow) {
	fmt.Fprintln(w, "OVS cache hierarchy under Zipf traffic (extension): per-layer hit rates")
	fmt.Fprintf(w, "%-11s %-8s %-9s %-10s %-9s %-9s %-10s\n",
		"rep", "flows", "emc[%]", "mega[%]", "slow[%]", "emc sz", "megaflows")
	for _, r := range rows {
		fmt.Fprintf(w, "%-11s %-8d %-9.2f %-10.2f %-9.3f %-9d %-10d\n",
			r.Rep, r.Flows, r.EMCHitPct, r.MegaHitPct, r.SlowPct, r.EMCSize, r.Megaflows)
	}
}
