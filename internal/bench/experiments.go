package bench

import (
	"errors"
	"fmt"

	"manorm/internal/controlplane"
	"manorm/internal/core"
	"manorm/internal/fd"
	"manorm/internal/mat"
	"manorm/internal/netkat"
	"manorm/internal/usecases"
)

// FootprintRow is one point of the E1 redundancy experiment: data-plane
// footprint (match-action fields) of each representation for N services ×
// M backends. The paper's closed forms: universal = 4MN, goto = N(3+2M).
type FootprintRow struct {
	N, M      int
	Universal int
	Goto      int
	Metadata  int
	Rematch   int
	// Ratio is universal/goto — approaches 2 for large M (§2).
	Ratio float64
}

// Footprint sweeps representation footprints over N×M grids.
func Footprint(ns, ms []int, seed int64) ([]*FootprintRow, error) {
	var out []*FootprintRow
	for _, n := range ns {
		for _, m := range ms {
			g := usecases.Generate(n, m, seed)
			row := &FootprintRow{N: n, M: m}
			for rep, dst := range map[usecases.Representation]*int{
				usecases.RepUniversal: &row.Universal,
				usecases.RepGoto:      &row.Goto,
				usecases.RepMetadata:  &row.Metadata,
				usecases.RepRematch:   &row.Rematch,
			} {
				p, err := g.Build(rep)
				if err != nil {
					return nil, err
				}
				*dst = p.FieldCount()
			}
			row.Ratio = float64(row.Universal) / float64(row.Goto)
			out = append(out, row)
		}
	}
	return out, nil
}

// ControlRow is one E2 controllability data point: entries touched per
// update intent.
type ControlRow struct {
	Rep        usecases.Representation
	PortChange int
	VIPChange  int
}

// Control regenerates the §2 controllability comparison.
func Control(cfg Config) ([]*ControlRow, error) {
	g := usecases.Generate(cfg.Services, cfg.Backends, cfg.Seed)
	var out []*ControlRow
	for _, rep := range []usecases.Representation{
		usecases.RepUniversal, usecases.RepGoto, usecases.RepMetadata, usecases.RepRematch,
	} {
		pp, err := controlplane.PlanPortChange(g, rep, 0, 9999)
		if err != nil {
			return nil, err
		}
		pv, err := controlplane.PlanVIPChange(g, rep, 0, 0xC00002FE)
		if err != nil {
			return nil, err
		}
		out = append(out, &ControlRow{Rep: rep, PortChange: pp.EntriesTouched, VIPChange: pv.EntriesTouched})
	}
	return out, nil
}

// MonitorRow is one E3 monitorability data point: counters needed for a
// tenant aggregate.
type MonitorRow struct {
	Rep      usecases.Representation
	Counters int
}

// Monitor regenerates the §2 monitorability comparison.
func Monitor(cfg Config) ([]*MonitorRow, error) {
	g := usecases.Generate(cfg.Services, cfg.Backends, cfg.Seed)
	var out []*MonitorRow
	for _, rep := range []usecases.Representation{
		usecases.RepUniversal, usecases.RepGoto, usecases.RepMetadata, usecases.RepRematch,
	} {
		_, entries, err := controlplane.CounterPlacement(g, rep, 0)
		if err != nil {
			return nil, err
		}
		out = append(out, &MonitorRow{Rep: rep, Counters: len(entries)})
	}
	return out, nil
}

// L3Row is one E6 data point: the Fig. 2 normalization chain at scale.
type L3Row struct {
	Prefixes, NextHops, Ports int
	UniversalFields           int
	NormalizedFields          int
	Stages                    int
	StageSizes                []int
	Verified                  bool
}

// L3Experiment normalizes generated L3 tables and reports the shrinkage
// and the emerging pipeline shape (prefix table ≫ group table ≫ port
// table, with the constant factor split off — Fig. 2c).
func L3Experiment(sizes [][3]int, seed int64) ([]*L3Row, error) {
	var out []*L3Row
	for _, s := range sizes {
		l3 := usecases.GenerateL3(s[0], s[1], s[2], seed)
		res, err := core.Normalize(l3.Table, core.Options{
			Target:   core.NF3,
			Declared: l3.Declared(),
			Verify:   true,
		})
		if err != nil {
			return nil, err
		}
		row := &L3Row{
			Prefixes: s[0], NextHops: s[1], Ports: s[2],
			UniversalFields:  l3.Table.FieldCount(),
			NormalizedFields: res.Pipeline.FieldCount(),
			Stages:           res.Pipeline.Depth(),
			Verified:         res.Verified,
		}
		for _, st := range res.Pipeline.Stages {
			row.StageSizes = append(row.StageSizes, len(st.Table.Entries))
		}
		out = append(out, row)
	}
	return out, nil
}

// CaveatResult records the E7 (Fig. 3) demonstration.
type CaveatResult struct {
	FD       string
	Rejected bool
	Err      string
}

// Caveat demonstrates the action-to-match rejection rule on Fig. 3a.
func Caveat() (*CaveatResult, error) {
	tab := usecases.Fig3()
	a := core.Analyze(tab)
	f := fd.FD{From: mat.SetOf(tab.Schema, "out"), To: mat.SetOf(tab.Schema, "vlan")}
	if !f.HoldsIn(tab) {
		return nil, fmt.Errorf("bench: out → vlan does not hold in Fig. 3a")
	}
	_, err := core.Decompose(a, f, core.JoinMetadata)
	res := &CaveatResult{FD: f.Format(tab.Schema), Rejected: err != nil}
	if err != nil {
		res.Err = err.Error()
	}
	if !errors.Is(err, core.ErrActionToMatch) {
		return nil, fmt.Errorf("bench: expected ErrActionToMatch, got %v", err)
	}
	return res, nil
}

// SDXResult records the E8 (appendix) demonstration.
type SDXResult struct {
	UniversalEntries int
	PipelineStages   int
	NaiveInbound1NF  bool
	Equivalent       bool
	Exhaustive       bool
}

// SDX verifies the appendix use case: the `all`-tag pipeline is
// semantically equal to the collapsed table, while the naive FD-free
// decomposition's inbound table is order-dependent.
func SDX() (*SDXResult, error) {
	s := usecases.NewSDX()
	cex, exhaustive, err := netkat.EquivalentPipelines(mat.SingleTable(s.Universal), s.Pipeline, 0)
	if err != nil {
		return nil, err
	}
	return &SDXResult{
		UniversalEntries: len(s.Universal.Entries),
		PipelineStages:   s.Pipeline.Depth(),
		NaiveInbound1NF:  usecases.NaiveInboundTable().IsOrderIndependent(),
		Equivalent:       cex == nil,
		Exhaustive:       exhaustive,
	}, nil
}

// JoinRow is one A1 data point: the three join abstractions compared on
// footprint and ESwitch throughput.
type JoinRow struct {
	Rep       usecases.Representation
	Fields    int
	Entries   int
	RateMpps  float64
	DelayUs   float64
	Templates []string
}

// Joins runs the join-abstraction ablation on the ESwitch model.
func Joins(cfg Config) ([]*JoinRow, error) {
	g := usecases.Generate(cfg.Services, cfg.Backends, cfg.Seed)
	var out []*JoinRow
	for _, rep := range []usecases.Representation{
		usecases.RepUniversal, usecases.RepGoto, usecases.RepMetadata, usecases.RepRematch,
	} {
		p, err := g.Build(rep)
		if err != nil {
			return nil, err
		}
		r, err := MeasureStatic("eswitch", rep, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, &JoinRow{
			Rep:       rep,
			Fields:    p.FieldCount(),
			Entries:   p.EntryCount(),
			RateMpps:  r.RateMpps,
			DelayUs:   r.DelayUs,
			Templates: r.Templates,
		})
	}
	return out, nil
}

// DepthRow is one A2 data point: normalization depth versus footprint on
// the L3 use case.
type DepthRow struct {
	Target     string
	Stages     int
	Fields     int
	Violations int
}

// Depth runs the normalization-depth ablation: the same L3 table left in
// 1NF, normalized to 2NF, and to 3NF.
func Depth(prefixes, nexthops, ports int, seed int64) ([]*DepthRow, error) {
	l3 := usecases.GenerateL3(prefixes, nexthops, ports, seed)
	decl := l3.Declared()

	var out []*DepthRow
	a, err := core.AnalyzeDeclared(l3.Table, decl)
	if err != nil {
		return nil, err
	}
	_, violations := core.Check(a)
	out = append(out, &DepthRow{
		Target: "1NF (universal)", Stages: 1,
		Fields: l3.Table.FieldCount(), Violations: len(violations),
	})
	for _, target := range []core.Form{core.NF2, core.NF3} {
		res, err := core.Normalize(l3.Table, core.Options{Target: target, Declared: decl, Verify: true})
		if err != nil {
			return nil, err
		}
		remaining := 0
		for _, st := range res.Pipeline.Stages {
			sa := core.Analyze(st.Table)
			_, v := core.Check(sa)
			for _, viol := range v {
				if viol.Level <= core.NF3 {
					remaining++
				}
			}
		}
		out = append(out, &DepthRow{
			Target: target.String(), Stages: res.Pipeline.Depth(),
			Fields: res.Pipeline.FieldCount(), Violations: remaining,
		})
	}
	return out, nil
}
