package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"time"

	"manorm/internal/dataplane"
	"manorm/internal/packet"
	"manorm/internal/switches"
	"manorm/internal/telemetry"
	"manorm/internal/trafficgen"
	"manorm/internal/usecases"
)

// parallelBatch is the frame-batch size of the parallel hot loop: large
// enough to amortize the per-batch revalidation check and loop overhead,
// small enough to keep the verdict buffer in cache.
const parallelBatch = 64

// ParallelResult is one point of the multi-core scaling curve: a switch
// and representation driven by W workers over disjoint traffic shards.
type ParallelResult struct {
	Switch string                  `json:"switch"`
	Rep    usecases.Representation `json:"rep"`
	// Workers is the number of forwarding goroutines.
	Workers int `json:"workers"`
	// Schema names the header schema the workload ran under; empty for
	// the canonical (default) schema, so pre-schema baselines parse
	// unchanged.
	Schema string `json:"schema,omitempty"`
	// Wire names the ingest path: empty for the frame path (wire bytes
	// through ProcessBatch — the default, and the only path pre-wire
	// baselines contain) or "structs" for the legacy struct handoff
	// (pre-parsed Packets through Process).
	Wire string `json:"wire,omitempty"`
	// RateMpps is the aggregate forwarding rate over all workers
	// (wall-clock: total packets / elapsed time).
	RateMpps float64 `json:"mpps"`
	// Speedup is RateMpps relative to the 1-worker rate of the same
	// switch and representation (1.0 for the 1-worker row itself; 0 when
	// no 1-worker baseline was measured).
	Speedup float64 `json:"speedup"`
	// Packets is the total packet count forwarded during the timed run.
	Packets int `json:"packets"`
	// Stats is the end-of-run telemetry snapshot; nil unless
	// Config.Telemetry was set.
	Stats *telemetry.Snapshot `json:"telemetry,omitempty"`
}

// MeasureParallel measures the aggregate forwarding rate of one switch and
// representation with `workers` forwarding goroutines. Each goroutine owns
// a dedicated switch Worker (its own scratch packet, metadata registers
// and — for OVS — flow-cache shard) and a disjoint round-robin shard of
// the traffic, the model's equivalent of per-core NIC queues under RSS.
// The hot loop runs ProcessBatch over fixed-size frame batches; the rate
// is wall-clock aggregate across all workers.
//
// The hardware model (NoviFlow) forwards at line rate regardless of how
// many harness cores feed it, so its curve is flat at HWLineRateMpps; the
// batches still execute for functional verification.
func MeasureParallel(swName string, rep usecases.Representation, cfg Config, workers int) (*ParallelResult, error) {
	if workers < 1 {
		return nil, fmt.Errorf("bench: workers must be >= 1, got %d", workers)
	}
	sw, snapshot, err := instrumented(swName, cfg)
	if err != nil {
		return nil, err
	}
	g := usecases.Generate(cfg.Services, cfg.Backends, cfg.Seed)
	p, err := g.Build(rep)
	if err != nil {
		return nil, err
	}
	if err := sw.Install(p); err != nil {
		return nil, err
	}
	stream := trafficgen.GwLB(g, 4096, 1.0, cfg.Seed+1)
	frames, _ := trafficgen.Wire(stream)

	total, elapsed, err := runParallelFrames(sw, frames, cfg.Packets, workers)
	if err != nil {
		return nil, err
	}
	res := &ParallelResult{Switch: swName, Rep: rep, Workers: workers, Packets: total, Stats: snapshot()}
	if pm := sw.Perf(); pm.HWLineRateMpps > 0 {
		res.RateMpps = pm.HWLineRateMpps
		return res, nil
	}
	res.RateMpps = float64(total) * 1000 / float64(elapsed.Nanoseconds()) // pkts/µs = Mpps
	return res, nil
}

// runParallelFrames is the shared timed core of the parallel experiments:
// shard the frames across `workers` dedicated switch workers, warm every
// lane once, then forward `packets` total and report (count, wall time).
func runParallelFrames(sw switches.Switch, frames [][]byte, packets, workers int) (int, time.Duration, error) {
	shards := trafficgen.Shards(frames, workers)

	// Per-goroutine state: a dedicated worker and its shard pre-cut into
	// batches. Cutting outside the timed region keeps the hot loop to
	// ProcessBatch calls only.
	type lane struct {
		w       switches.Worker
		batches [][][]byte
	}
	lanes := make([]*lane, workers)
	perWorker := packets / workers
	if perWorker < 1 {
		perWorker = 1
	}
	for i, shard := range shards {
		l := &lane{w: sw.NewWorker()}
		for off := 0; off < len(shard); off += parallelBatch {
			end := off + parallelBatch
			if end > len(shard) {
				end = len(shard)
			}
			l.batches = append(l.batches, shard[off:end])
		}
		lanes[i] = l
	}

	// Warm-up: one pass per worker over its shard (fills cache shards,
	// faults in the datapath snapshot).
	out := make([]dataplane.Verdict, parallelBatch)
	for _, l := range lanes {
		for _, b := range l.batches {
			if err := l.w.ProcessBatch(b, out); err != nil {
				return 0, 0, err
			}
		}
	}

	// Timed run: every worker forwards perWorker packets, cycling over its
	// batches. First error wins; the others finish their quota.
	var wg sync.WaitGroup
	errs := make([]error, workers)
	counts := make([]int, workers)
	start := time.Now()
	for i, l := range lanes {
		wg.Add(1)
		go func(i int, l *lane) {
			defer wg.Done()
			verdicts := make([]dataplane.Verdict, parallelBatch)
			done := 0
			for b := 0; done < perWorker; b++ {
				batch := l.batches[b%len(l.batches)]
				if err := l.w.ProcessBatch(batch, verdicts); err != nil {
					errs[i] = err
					return
				}
				done += len(batch)
			}
			counts[i] = done
		}(i, l)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return 0, 0, err
		}
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	return total, elapsed, nil
}

// ScalingWorkerCounts returns the worker counts of the scaling curve:
// doubling from 1 and capped at max, with max itself included (so
// -workers 6 measures 1, 2, 4, 6).
func ScalingWorkerCounts(max int) []int {
	if max < 1 {
		max = 1
	}
	var counts []int
	for w := 1; w < max; w *= 2 {
		counts = append(counts, w)
	}
	return append(counts, max)
}

// ParallelScaling measures the multi-core scaling curve of one switch and
// representation: worker counts doubling from 1 up to maxWorkers. Speedup
// is reported relative to the 1-worker rate.
func ParallelScaling(swName string, rep usecases.Representation, cfg Config, maxWorkers int) ([]*ParallelResult, error) {
	var out []*ParallelResult
	base := 0.0
	for _, w := range ScalingWorkerCounts(maxWorkers) {
		r, err := MeasureParallel(swName, rep, cfg, w)
		if err != nil {
			return nil, err
		}
		if w == 1 {
			base = r.RateMpps
		}
		if base > 0 {
			r.Speedup = r.RateMpps / base
		}
		out = append(out, r)
	}
	return out, nil
}

// MeasureParallelStructs measures the legacy struct-handoff path of one
// switch and representation: pre-parsed Packets through the
// single-threaded Process API, one struct copy per call (the honest cost
// of handing a mutable Packet to a datapath that rewrites headers). Paired
// with the 1-worker frame-path row, the ratio isolates what wire decode
// plus the batch surface cost — the benchguard "wire" dimension.
func MeasureParallelStructs(swName string, rep usecases.Representation, cfg Config) (*ParallelResult, error) {
	sw, snapshot, err := instrumented(swName, cfg)
	if err != nil {
		return nil, err
	}
	g := usecases.Generate(cfg.Services, cfg.Backends, cfg.Seed)
	p, err := g.Build(rep)
	if err != nil {
		return nil, err
	}
	if err := sw.Install(p); err != nil {
		return nil, err
	}
	pkts := trafficgen.GwLB(g, 4096, 1.0, cfg.Seed+1).Packets()

	var scratch packet.Packet
	for _, src := range pkts {
		scratch = *src
		if _, err := sw.Process(&scratch); err != nil {
			return nil, err
		}
	}
	start := time.Now()
	for i := 0; i < cfg.Packets; i++ {
		scratch = *pkts[i%len(pkts)]
		if _, err := sw.Process(&scratch); err != nil {
			return nil, err
		}
	}
	elapsed := time.Since(start)

	res := &ParallelResult{Switch: swName, Rep: rep, Workers: 1, Wire: "structs",
		Packets: cfg.Packets, Stats: snapshot()}
	if pm := sw.Perf(); pm.HWLineRateMpps > 0 {
		res.RateMpps = pm.HWLineRateMpps
		return res, nil
	}
	res.RateMpps = float64(cfg.Packets) * 1000 / float64(elapsed.Nanoseconds())
	return res, nil
}

// ParallelTable runs the scaling curve for every switch and the headline
// representations (the Table 1 pair plus the compiler-fused form) — the
// full multi-core experiment — plus one struct-path row per (switch, rep)
// so the guard watches both ingest surfaces. The struct row's Speedup is
// its rate relative to the 1-worker frame-path rate: the frame path's
// decode overhead factor.
func ParallelTable(cfg Config, maxWorkers int) ([]*ParallelResult, error) {
	var out []*ParallelResult
	for _, sw := range SwitchNames() {
		for _, rep := range []usecases.Representation{usecases.RepUniversal, usecases.RepGoto, usecases.RepFused} {
			rows, err := ParallelScaling(sw, rep, cfg, maxWorkers)
			if err != nil {
				return nil, err
			}
			out = append(out, rows...)
			srow, err := MeasureParallelStructs(sw, rep, cfg)
			if err != nil {
				return nil, err
			}
			if base := rows[0].RateMpps; base > 0 {
				srow.Speedup = srow.RateMpps / base
			}
			out = append(out, srow)
		}
	}
	return out, nil
}

// RenderParallel prints the scaling experiment.
func RenderParallel(w io.Writer, rows []*ParallelResult) {
	fmt.Fprintf(w, "Multi-core scaling (extension): aggregate Mpps over sharded workers (host: %d CPUs)\n",
		runtime.NumCPU())
	fmt.Fprintf(w, "%-10s %-11s %-8s %-9s %-12s %-8s\n", "switch", "rep", "wire", "workers", "rate[Mpps]", "speedup")
	for _, r := range rows {
		wire := r.Wire
		if wire == "" {
			wire = "frames"
		}
		fmt.Fprintf(w, "%-10s %-11s %-8s %-9d %-12.3f %-8.2f\n", r.Switch, r.Rep, wire, r.Workers, r.RateMpps, r.Speedup)
	}
}

// ParallelReport is the machine-readable envelope of the scaling
// experiment (what -json writes to BENCH_parallel.json).
type ParallelReport struct {
	HostCPUs   int               `json:"host_cpus"`
	MaxWorkers int               `json:"max_workers"`
	Services   int               `json:"services"`
	Backends   int               `json:"backends"`
	Packets    int               `json:"packets"`
	Results    []*ParallelResult `json:"results"`
}

// WriteParallelJSON writes the scaling results as indented JSON to path.
func WriteParallelJSON(path string, cfg Config, maxWorkers int, rows []*ParallelResult) error {
	rep := &ParallelReport{
		HostCPUs:   runtime.NumCPU(),
		MaxWorkers: maxWorkers,
		Services:   cfg.Services,
		Backends:   cfg.Backends,
		Packets:    cfg.Packets,
		Results:    rows,
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
