package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"

	"manorm/internal/usecases"
)

func parallelQuickConfig() Config {
	cfg := QuickConfig()
	cfg.Packets = 20_000
	return cfg
}

func TestScalingWorkerCounts(t *testing.T) {
	for _, tc := range []struct {
		max  int
		want []int
	}{
		{1, []int{1}},
		{2, []int{1, 2}},
		{6, []int{1, 2, 4, 6}},
		{8, []int{1, 2, 4, 8}},
		{0, []int{1}},
	} {
		if got := ScalingWorkerCounts(tc.max); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("ScalingWorkerCounts(%d) = %v, want %v", tc.max, got, tc.want)
		}
	}
}

func TestMeasureParallelAllSwitches(t *testing.T) {
	cfg := parallelQuickConfig()
	for _, sw := range SwitchNames() {
		r, err := MeasureParallel(sw, usecases.RepGoto, cfg, 2)
		if err != nil {
			t.Fatalf("%s: %v", sw, err)
		}
		if r.Workers != 2 || r.RateMpps <= 0 {
			t.Errorf("%s: workers=%d rate=%f", sw, r.Workers, r.RateMpps)
		}
		if r.Packets < cfg.Packets/2 {
			t.Errorf("%s: only %d packets forwarded", sw, r.Packets)
		}
	}
}

func TestMeasureParallelNoviFlowFlat(t *testing.T) {
	cfg := parallelQuickConfig()
	rows, err := ParallelScaling("noviflow", usecases.RepUniversal, cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.RateMpps != 10.73 {
			t.Errorf("noviflow at %d workers: %f Mpps, want flat line rate", r.Workers, r.RateMpps)
		}
		if r.Speedup != 1.0 {
			t.Errorf("noviflow speedup at %d workers = %f, want 1.0", r.Workers, r.Speedup)
		}
	}
}

// TestParallelScalingMultiCore asserts the acceptance-criterion speedup —
// ESwitch at 8 workers at least 3× the 1-worker rate — but only where the
// host can express it: sharded goroutines cannot scale past the physical
// core count.
func TestParallelScalingMultiCore(t *testing.T) {
	if runtime.NumCPU() < 8 {
		t.Skipf("host has %d CPUs; scaling assertion needs >= 8", runtime.NumCPU())
	}
	cfg := QuickConfig()
	cfg.Packets = 200_000
	rows, err := ParallelScaling("eswitch", usecases.RepGoto, cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	last := rows[len(rows)-1]
	if last.Workers != 8 {
		t.Fatalf("last row has %d workers", last.Workers)
	}
	if last.Speedup < 3 {
		t.Errorf("eswitch 8-worker speedup = %.2f, want >= 3", last.Speedup)
	}
}

func TestWriteParallelJSON(t *testing.T) {
	cfg := parallelQuickConfig()
	rows, err := ParallelScaling("eswitch", usecases.RepGoto, cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_parallel.json")
	if err := WriteParallelJSON(path, cfg, 2, rows); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep ParallelReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if rep.MaxWorkers != 2 || len(rep.Results) != 2 {
		t.Errorf("report: max=%d results=%d", rep.MaxWorkers, len(rep.Results))
	}
	for _, r := range rep.Results {
		if r.Switch != "eswitch" || r.RateMpps <= 0 {
			t.Errorf("bad row: %+v", r)
		}
	}
}
