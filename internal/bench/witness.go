package bench

import (
	"fmt"

	"manorm/internal/dataplane"
	"manorm/internal/telemetry"
	"manorm/internal/trafficgen"
	"manorm/internal/usecases"
)

// WitnessPair couples the per-packet pipeline witnesses of one sampled
// packet run through the universal table and the goto-decomposed pipeline
// of the same workload — the runtime face of Theorem 1: the stage lists
// differ, the verdicts must not.
type WitnessPair struct {
	Universal  telemetry.Trace `json:"universal"`
	Decomposed telemetry.Trace `json:"decomposed"`
	// Agree reports verdict equality (the equivalence check).
	Agree bool `json:"agree"`
}

// TraceWitnesses samples every Nth packet of the standard gateway &
// load-balancer traffic, explains it through both the universal and the
// goto-decomposed datapath, and returns up to keep witness pairs. A
// disagreeing pair is returned too (Agree=false) — callers decide whether
// that is fatal.
func TraceWitnesses(cfg Config, every, keep int) ([]WitnessPair, error) {
	if every < 1 {
		every = 1
	}
	if keep < 1 {
		keep = 4
	}
	g := usecases.Generate(cfg.Services, cfg.Backends, cfg.Seed)
	up, err := g.Build(usecases.RepUniversal)
	if err != nil {
		return nil, err
	}
	gp, err := g.Build(usecases.RepGoto)
	if err != nil {
		return nil, err
	}
	udp, err := dataplane.Compile(up, dataplane.AutoTemplates)
	if err != nil {
		return nil, fmt.Errorf("bench: compile universal: %w", err)
	}
	gdp, err := dataplane.Compile(gp, dataplane.AutoTemplates)
	if err != nil {
		return nil, fmt.Errorf("bench: compile goto: %w", err)
	}
	uctx, gctx := udp.NewCtx(), gdp.NewCtx()
	stream := trafficgen.GwLB(g, 4096, 1.0, cfg.Seed+1)

	var out []WitnessPair
	for i := 0; i < stream.Len() && len(out) < keep; i++ {
		pkt := stream.Next()
		if (i+1)%every != 0 {
			continue
		}
		// Explain mutates the packet (TTL, rewrites), so each run gets its
		// own copy.
		cu, cg := *pkt, *pkt
		uv, utr, err := udp.ProcessExplain(&cu, uctx)
		if err != nil {
			return nil, err
		}
		gv, gtr, err := gdp.ProcessExplain(&cg, gctx)
		if err != nil {
			return nil, err
		}
		agree := uv.Drop == gv.Drop && (uv.Drop || uv.Port == gv.Port)
		out = append(out, WitnessPair{Universal: *utr, Decomposed: *gtr, Agree: agree})
	}
	return out, nil
}
