package bench

import (
	"fmt"
	"io"

	"manorm/internal/mat"
	"manorm/internal/packet"
	"manorm/internal/switches"
	"manorm/internal/trafficgen"
	"manorm/internal/usecases"
)

// This file is the protocol-independent forwarding experiment: the three
// shipped non-default schemas (VXLAN, MPLS, GTP-U), each with its own use
// case, driven through the switch models in schema mode. It answers two
// questions the canonical experiments cannot: what the programmable
// parser costs relative to the hand-written default path, and whether the
// paper's representation trade-offs survive a change of header schema.
//
// OVS is the interesting column — in schema mode its EMC and megaflow
// layers are bypassed (they key on canonical fields), so every frame pays
// the slow-path traversal and OVS degrades toward the interpreted models.

// SchemaWorkload builds the pipeline and frame batch of one shipped
// schema's use case: VXLAN tenant gateway, MPLS label-switching router, or
// GTP-U mobile gateway. maswitch -schema drives the same workload.
func SchemaWorkload(schema string, rep usecases.Representation, cfg Config) (*mat.Pipeline, [][]byte, error) {
	var (
		p   *mat.Pipeline
		fs  *trafficgen.FrameStream
		err error
	)
	switch schema {
	case packet.SchemaVXLAN:
		g := usecases.GenerateVXLAN(cfg.Services, cfg.Backends, cfg.Seed)
		if p, err = g.Build(rep); err == nil {
			fs, err = trafficgen.VXLANFrames(g, 4096, 1.0, cfg.Seed+1)
		}
	case packet.SchemaMPLS:
		g := usecases.GenerateMPLS(cfg.Services, 4, cfg.Seed)
		if p, err = g.Build(rep); err == nil {
			fs, err = trafficgen.MPLSFrames(g, 4096, 1.0, cfg.Seed+1)
		}
	case packet.SchemaGTPU:
		g := usecases.GenerateGTPU(cfg.Services, cfg.Backends, cfg.Seed)
		if p, err = g.Build(rep); err == nil {
			fs, err = trafficgen.GTPUFrames(g, 4096, 1.0, cfg.Seed+1)
		}
	default:
		return nil, nil, fmt.Errorf("bench: no schema workload for %q", schema)
	}
	if err != nil {
		return nil, nil, err
	}
	return p, fs.Frames(), nil
}

// MeasureSchemaParallel is MeasureParallel under a shipped non-default
// schema: the switch runs in schema mode (frames decode through the
// compiled parse graph) and the workload is the schema's use case.
func MeasureSchemaParallel(swName, schema string, rep usecases.Representation, cfg Config, workers int) (*ParallelResult, error) {
	if workers < 1 {
		return nil, fmt.Errorf("bench: workers must be >= 1, got %d", workers)
	}
	dec, err := packet.BuiltinDecoder(schema)
	if err != nil {
		return nil, err
	}
	sw, snapshot, err := instrumented(swName, cfg, switches.WithSchema(dec))
	if err != nil {
		return nil, err
	}
	p, frames, err := SchemaWorkload(schema, rep, cfg)
	if err != nil {
		return nil, err
	}
	if err := sw.Install(p); err != nil {
		return nil, err
	}
	total, elapsed, err := runParallelFrames(sw, frames, cfg.Packets, workers)
	if err != nil {
		return nil, err
	}
	res := &ParallelResult{
		Switch: swName, Rep: rep, Workers: workers, Schema: schema,
		Packets: total, Stats: snapshot(),
	}
	if pm := sw.Perf(); pm.HWLineRateMpps > 0 {
		res.RateMpps = pm.HWLineRateMpps
		return res, nil
	}
	res.RateMpps = float64(total) * 1000 / float64(elapsed.Nanoseconds())
	return res, nil
}

// SchemaNames lists the shipped non-default schemas the experiment
// sweeps.
func SchemaNames() []string {
	return []string{packet.SchemaVXLAN, packet.SchemaMPLS, packet.SchemaGTPU}
}

// SchemaTable sweeps every shipped non-default schema over every switch
// model for the universal and goto representations, single-worker plus
// the ceiling — enough to see both the parser's base cost and whether it
// scales.
func SchemaTable(cfg Config, maxWorkers int) ([]*ParallelResult, error) {
	counts := []int{1}
	if maxWorkers > 1 {
		counts = append(counts, maxWorkers)
	}
	var out []*ParallelResult
	for _, schema := range SchemaNames() {
		for _, sw := range SwitchNames() {
			for _, rep := range []usecases.Representation{usecases.RepUniversal, usecases.RepGoto} {
				base := 0.0
				for _, w := range counts {
					r, err := MeasureSchemaParallel(sw, schema, rep, cfg, w)
					if err != nil {
						return nil, fmt.Errorf("%s/%s/%s: %w", schema, sw, rep, err)
					}
					if w == 1 {
						base = r.RateMpps
					}
					if base > 0 {
						r.Speedup = r.RateMpps / base
					}
					out = append(out, r)
				}
			}
		}
	}
	return out, nil
}

// RenderSchemas prints the protocol-independent forwarding experiment.
func RenderSchemas(w io.Writer, rows []*ParallelResult) {
	fmt.Fprintln(w, "Schemas (extension): shipped non-default schemas through the programmable parser")
	fmt.Fprintf(w, "%-8s %-10s %-11s %-9s %-12s %-8s\n",
		"schema", "switch", "rep", "workers", "rate[Mpps]", "speedup")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %-10s %-11s %-9d %-12.3f %-8.2f\n",
			r.Schema, r.Switch, r.Rep, r.Workers, r.RateMpps, r.Speedup)
	}
}
