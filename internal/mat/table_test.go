package mat

import (
	"strings"
	"testing"
)

// fig1a builds the paper's Fig. 1a universal cloud gateway & load-balancer
// table: attributes (ip_src, ip_dst, tcp_dst, out).
func fig1a() *Table {
	t := New("T0", Schema{F("ip_src", 32), F("ip_dst", 32), F("tcp_dst", 16), A("out", 16)})
	t.Add(Prefix(0, 1, 32), IPv4("192.0.2.1"), Exact(80, 16), Exact(1, 16))
	t.Add(Prefix(0x80000000, 1, 32), IPv4("192.0.2.1"), Exact(80, 16), Exact(2, 16))
	t.Add(Prefix(0, 2, 32), IPv4("192.0.2.2"), Exact(443, 16), Exact(3, 16))
	t.Add(Prefix(0x40000000, 2, 32), IPv4("192.0.2.2"), Exact(443, 16), Exact(4, 16))
	t.Add(Prefix(0x80000000, 1, 32), IPv4("192.0.2.2"), Exact(443, 16), Exact(5, 16))
	t.Add(Any(), IPv4("192.0.2.3"), Exact(22, 16), Exact(6, 16))
	return t
}

func TestSchemaValidate(t *testing.T) {
	tests := []struct {
		name string
		s    Schema
		ok   bool
	}{
		{"valid", Schema{F("a", 8), A("b", 16)}, true},
		{"empty", Schema{}, false},
		{"dup", Schema{F("a", 8), A("a", 16)}, false},
		{"zero width", Schema{F("a", 0)}, false},
		{"wide", Schema{F("a", 65)}, false},
		{"empty name", Schema{F("", 8)}, false},
	}
	for _, tc := range tests {
		if err := tc.s.Validate(); (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

func TestSchemaAccessors(t *testing.T) {
	s := Schema{F("ip_src", 32), F("ip_dst", 32), A("out", 16)}
	if got := s.Index("ip_dst"); got != 1 {
		t.Errorf("Index(ip_dst) = %d, want 1", got)
	}
	if got := s.Index("nope"); got != -1 {
		t.Errorf("Index(nope) = %d, want -1", got)
	}
	if f := s.Fields(); len(f) != 2 || f[0] != 0 || f[1] != 1 {
		t.Errorf("Fields() = %v", f)
	}
	if a := s.Actions(); len(a) != 1 || a[0] != 2 {
		t.Errorf("Actions() = %v", a)
	}
	names := s.Project([]int{2, 0}).Names()
	if names[0] != "out" || names[1] != "ip_src" {
		t.Errorf("Project order wrong: %v", names)
	}
}

func TestFieldCountFig1a(t *testing.T) {
	// The paper: "the universal table in Fig. 1a contains 24 match-action
	// fields".
	if got := fig1a().FieldCount(); got != 24 {
		t.Errorf("Fig. 1a field count = %d, want 24", got)
	}
}

func TestDetermineFnFig1a(t *testing.T) {
	tab := fig1a()
	s := tab.Schema
	ipDst := SetOf(s, "ip_dst")
	tcpDst := SetOf(s, "tcp_dst")
	out := SetOf(s, "out")
	ipSrc := SetOf(s, "ip_src")

	// Paper §3: ip_dst → tcp_dst and out → ip_dst hold in Fig. 1a.
	if !tab.DetermineFn(ipDst, tcpDst) {
		t.Errorf("ip_dst → tcp_dst should hold")
	}
	if !tab.DetermineFn(out, ipDst) {
		t.Errorf("out → ip_dst should hold")
	}
	// ip_dst does not determine out (load balancing splits it).
	if tab.DetermineFn(ipDst, out) {
		t.Errorf("ip_dst → out should not hold")
	}
	// ip_src alone determines nothing interesting.
	if tab.DetermineFn(ipSrc, out) {
		t.Errorf("ip_src → out should not hold")
	}
	// (ip_src, ip_dst) is a key: it determines everything.
	key := ipSrc.Union(ipDst)
	if !tab.DetermineFn(key, FullSet(len(s))) {
		t.Errorf("(ip_src, ip_dst) should determine all attributes")
	}
}

func TestDistinctAndGroupBy(t *testing.T) {
	tab := fig1a()
	ipDst := SetOf(tab.Schema, "ip_dst")
	if got := tab.Distinct(ipDst); got != 3 {
		t.Errorf("Distinct(ip_dst) = %d, want 3 services", got)
	}
	groups := tab.GroupBy(ipDst)
	if len(groups) != 3 {
		t.Fatalf("GroupBy(ip_dst) = %d groups, want 3", len(groups))
	}
	sizes := []int{len(groups[0]), len(groups[1]), len(groups[2])}
	if sizes[0] != 2 || sizes[1] != 3 || sizes[2] != 1 {
		t.Errorf("group sizes = %v, want [2 3 1]", sizes)
	}
}

func TestProjectDeduplicates(t *testing.T) {
	tab := fig1a()
	p := tab.Project("svc", SetOf(tab.Schema, "ip_dst", "tcp_dst"))
	if len(p.Entries) != 3 {
		t.Errorf("projection onto (ip_dst, tcp_dst) has %d rows, want 3", len(p.Entries))
	}
	if len(p.Schema) != 2 {
		t.Errorf("projected schema has %d attrs, want 2", len(p.Schema))
	}
}

func TestIsOrderIndependent(t *testing.T) {
	tab := fig1a()
	if !tab.IsOrderIndependent() {
		t.Errorf("Fig. 1a should be order independent")
	}
	// Duplicate a match projection: two entries with identical matches.
	dup := tab.Clone()
	e := dup.Entries[0].Clone()
	e[3] = Exact(99, 16) // different action, same match
	dup.Entries = append(dup.Entries, e)
	if dup.IsOrderIndependent() {
		t.Errorf("duplicated match row should break order independence")
	}
}

func TestConstantAttrs(t *testing.T) {
	tab := New("L3", Schema{F("eth_type", 16), F("ip_dst", 32), A("mod_ttl", 8), A("out", 16)})
	tab.Add(Exact(0x800, 16), IPv4Prefix("10.0.0.0", 8), Exact(1, 8), Exact(1, 16))
	tab.Add(Exact(0x800, 16), IPv4Prefix("10.1.0.0", 16), Exact(1, 8), Exact(2, 16))
	c := tab.ConstantAttrs()
	want := SetOf(tab.Schema, "eth_type", "mod_ttl")
	if c != want {
		t.Errorf("ConstantAttrs = %s, want %s", c.Format(tab.Schema), want.Format(tab.Schema))
	}
	if New("empty", tab.Schema).ConstantAttrs() != 0 {
		t.Errorf("empty table should have no constant attrs")
	}
}

func TestCloneIsDeep(t *testing.T) {
	tab := fig1a()
	c := tab.Clone()
	c.Entries[0][0] = Exact(42, 32)
	if tab.Entries[0][0] == c.Entries[0][0] {
		t.Errorf("Clone shares entry storage")
	}
}

func TestEqualOrderInsensitive(t *testing.T) {
	a := fig1a()
	b := fig1a()
	b.Entries[0], b.Entries[5] = b.Entries[5], b.Entries[0]
	if !a.Equal(b) {
		t.Errorf("reordered tables should be Equal")
	}
	b.Entries[0][3] = Exact(9, 16)
	if a.Equal(b) {
		t.Errorf("modified table should not be Equal")
	}
	if a.Equal(New("x", a.Schema)) {
		t.Errorf("tables with different entry counts should not be Equal")
	}
}

func TestTableValidate(t *testing.T) {
	tab := fig1a()
	if err := tab.Validate(); err != nil {
		t.Fatalf("valid table: %v", err)
	}
	tab.Entries[0] = tab.Entries[0][:2]
	if err := tab.Validate(); err == nil {
		t.Errorf("short entry not caught")
	}
}

func TestAddPanicsOnArity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("Add with wrong arity did not panic")
		}
	}()
	New("t", Schema{F("a", 8)}).Add(Exact(1, 8), Exact(2, 8))
}

func TestStringRendering(t *testing.T) {
	s := fig1a().String()
	for _, want := range []string{"table T0", "ip_src", "ip_dst", "tcp_dst", "out", "80", "443", "22"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

func TestSortEntriesDeterministic(t *testing.T) {
	a := fig1a()
	b := fig1a()
	b.Entries[1], b.Entries[4] = b.Entries[4], b.Entries[1]
	a.SortEntries()
	b.SortEntries()
	for i := range a.Entries {
		for j := range a.Entries[i] {
			if a.Entries[i][j] != b.Entries[i][j] {
				t.Fatalf("SortEntries not canonical at %d/%d", i, j)
			}
		}
	}
}

func TestAmbiguousPairs(t *testing.T) {
	// Fig. 1a: backend prefixes are disjoint per service and services
	// have distinct VIPs — no ambiguity.
	if got := fig1a().AmbiguousPairs(); len(got) != 0 {
		t.Fatalf("Fig. 1a reported ambiguous: %v", got)
	}
	// Identical match rows are ambiguous (and order-dependent).
	dup := New("D", Schema{F("a", 8), A("o", 8)})
	dup.Add(Exact(1, 8), Exact(1, 8))
	dup.Add(Exact(1, 8), Exact(2, 8))
	if got := dup.AmbiguousPairs(); len(got) != 1 || got[0] != [2]int{0, 1} {
		t.Fatalf("duplicate rows not flagged: %v", got)
	}
	// Equal-specificity overlap across different columns: (10/8, *) vs
	// (*, 80-as-/16 ... need equal totals: /8+/0 = 8 vs /0+/16 = 16 — not
	// equal. Use (10/16, *) vs (*, 80): 16 vs 16 — ambiguous on packets
	// to 10.x with port 80.
	amb := New("A", Schema{F("ip", 32), F("port", 16), A("o", 8)})
	amb.Add(IPv4Prefix("10.0.0.0", 16), Any(), Exact(1, 8))
	amb.Add(Any(), Exact(80, 16), Exact(2, 8))
	if got := amb.AmbiguousPairs(); len(got) != 1 {
		t.Fatalf("cross-column ambiguity not flagged: %v", got)
	}
	// And the runtime evaluator indeed errors on the ambiguous input.
	pl := SingleTable(amb)
	if _, err := pl.Eval(Record{"ip": 0x0A000001, "port": 80}); err == nil {
		t.Fatalf("ambiguous packet evaluated without error")
	}
	// Nested prefixes (different specificity) are fine.
	nested := New("N", Schema{F("ip", 32), A("o", 8)})
	nested.Add(IPv4Prefix("10.0.0.0", 8), Exact(1, 8))
	nested.Add(IPv4Prefix("10.1.0.0", 16), Exact(2, 8))
	if got := nested.AmbiguousPairs(); len(got) != 0 {
		t.Fatalf("nested prefixes misreported: %v", got)
	}
}
