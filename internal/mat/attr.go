// Package mat implements the relational model of match-action tables that
// the normalization framework operates on.
//
// A match-action table is viewed as a relation: a schema of named attributes
// and a set of entries (rows) assigning a cell to every attribute. Following
// the paper, attributes come in two kinds — match fields and action
// attributes — and both participate uniformly in functional dependencies and
// candidate keys. Cells are bit patterns with an optional prefix length, so a
// wildcard match such as "0.0.0.0/1" is a single opaque value of its
// attribute, exactly as the paper treats it.
package mat

import (
	"fmt"
	"strings"
)

// Kind distinguishes the two classes of attributes a match-action table may
// carry. Both kinds take part in functional dependencies and keys; only the
// decomposition rules treat them differently (see internal/core).
type Kind uint8

const (
	// Field is a match attribute: the table matches packets on it.
	Field Kind = iota
	// Action is an action attribute: the table writes or emits it.
	Action
)

// String returns "field" or "action".
func (k Kind) String() string {
	switch k {
	case Field:
		return "field"
	case Action:
		return "action"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Attr describes one attribute (column) of a match-action table.
type Attr struct {
	// Name identifies the attribute, e.g. "ip_dst" or "out".
	Name string
	// Kind says whether the attribute is matched on or acted upon.
	Kind Kind
	// Width is the attribute's size in bits (1..64). Concrete values and
	// prefixes are interpreted against this width.
	Width uint8
}

// F constructs a match-field attribute of the given width.
func F(name string, width uint8) Attr { return Attr{Name: name, Kind: Field, Width: width} }

// A constructs an action attribute of the given width.
func A(name string, width uint8) Attr { return Attr{Name: name, Kind: Action, Width: width} }

// String renders the attribute as name:kind/width.
func (a Attr) String() string {
	return fmt.Sprintf("%s:%s/%d", a.Name, a.Kind, a.Width)
}

// Schema is an ordered list of attributes. Order matters only for rendering;
// the relational semantics are order-independent.
type Schema []Attr

// Names returns the attribute names in schema order.
func (s Schema) Names() []string {
	out := make([]string, len(s))
	for i, a := range s {
		out[i] = a.Name
	}
	return out
}

// Index returns the position of the attribute with the given name, or -1.
func (s Schema) Index(name string) int {
	for i, a := range s {
		if a.Name == name {
			return i
		}
	}
	return -1
}

// Fields returns the indices of all match-field attributes.
func (s Schema) Fields() []int {
	var out []int
	for i, a := range s {
		if a.Kind == Field {
			out = append(out, i)
		}
	}
	return out
}

// Actions returns the indices of all action attributes.
func (s Schema) Actions() []int {
	var out []int
	for i, a := range s {
		if a.Kind == Action {
			out = append(out, i)
		}
	}
	return out
}

// Project returns the sub-schema containing the attributes at the given
// indices, in the order given.
func (s Schema) Project(idx []int) Schema {
	out := make(Schema, len(idx))
	for i, j := range idx {
		out[i] = s[j]
	}
	return out
}

// Validate checks that the schema is well formed: nonempty, unique names and
// widths in 1..64.
func (s Schema) Validate() error {
	if len(s) == 0 {
		return fmt.Errorf("mat: empty schema")
	}
	seen := make(map[string]bool, len(s))
	for _, a := range s {
		if a.Name == "" {
			return fmt.Errorf("mat: attribute with empty name")
		}
		if seen[a.Name] {
			return fmt.Errorf("mat: duplicate attribute %q", a.Name)
		}
		seen[a.Name] = true
		if a.Width == 0 || a.Width > 64 {
			return fmt.Errorf("mat: attribute %q has invalid width %d", a.Name, a.Width)
		}
	}
	return nil
}

// String renders the schema as a comma-separated attribute list.
func (s Schema) String() string {
	parts := make([]string, len(s))
	for i, a := range s {
		parts[i] = a.String()
	}
	return strings.Join(parts, ", ")
}
