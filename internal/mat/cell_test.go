package mat

import (
	"testing"
	"testing/quick"
)

func TestExactCell(t *testing.T) {
	c := Exact(0xC0000201, 32) // 192.0.2.1
	if !c.IsExact(32) {
		t.Fatalf("Exact cell not exact")
	}
	if c.IsAny() {
		t.Fatalf("Exact cell reported as any")
	}
	if !c.Matches(0xC0000201, 32) {
		t.Errorf("exact cell does not match its own value")
	}
	if c.Matches(0xC0000202, 32) {
		t.Errorf("exact cell matches a different value")
	}
}

func TestExactCellTruncates(t *testing.T) {
	c := Exact(0x1FF, 8)
	if c.Bits != 0xFF {
		t.Errorf("Exact(0x1FF, 8).Bits = %#x, want 0xFF", c.Bits)
	}
}

func TestPrefixCell(t *testing.T) {
	// The paper's load-balancing split: ip_src in 0.0.0.0/1 vs 128.0.0.0/1.
	lo := Prefix(0, 1, 32)
	hi := Prefix(0x80000000, 1, 32)
	if lo.Matches(0x80000000, 32) {
		t.Errorf("0/1 matches 128.0.0.0")
	}
	if !lo.Matches(0x7FFFFFFF, 32) {
		t.Errorf("0/1 does not match 127.255.255.255")
	}
	if !hi.Matches(0xFFFFFFFF, 32) {
		t.Errorf("128/1 does not match 255.255.255.255")
	}
	if lo.Overlaps(hi, 32) {
		t.Errorf("disjoint /1 prefixes report overlap")
	}
}

func TestPrefixInsignificantBitsCleared(t *testing.T) {
	c := Prefix(0xC0000201, 24, 32)
	if c.Bits != 0xC0000200 {
		t.Errorf("Prefix did not clear host bits: got %#x", c.Bits)
	}
}

func TestAnyCell(t *testing.T) {
	c := Any()
	if !c.IsAny() {
		t.Fatalf("Any() not any")
	}
	for _, v := range []uint64{0, 1, 0xFFFF, ^uint64(0)} {
		if !c.Matches(v, 16) {
			t.Errorf("Any does not match %d", v)
		}
	}
}

func TestCovers(t *testing.T) {
	tests := []struct {
		a, b  Cell
		width uint8
		want  bool
	}{
		{Any(), Exact(5, 16), 16, true},
		{Exact(5, 16), Any(), 16, false},
		{Prefix(0xC0000000, 8, 32), Prefix(0xC0000200, 24, 32), 32, true},
		{Prefix(0xC0000200, 24, 32), Prefix(0xC0000000, 8, 32), 32, false},
		{Prefix(0x40000000, 8, 32), Prefix(0xC0000200, 24, 32), 32, false},
		{Exact(5, 16), Exact(5, 16), 16, true},
		{Exact(5, 16), Exact(6, 16), 16, false},
	}
	for i, tc := range tests {
		if got := tc.a.Covers(tc.b, tc.width); got != tc.want {
			t.Errorf("case %d: Covers = %v, want %v", i, got, tc.want)
		}
	}
}

func TestCoversImpliesOverlaps(t *testing.T) {
	f := func(bits1, bits2 uint64, p1, p2 uint8) bool {
		a := Prefix(bits1, p1%33, 32)
		b := Prefix(bits2, p2%33, 32)
		if a.Covers(b, 32) && !a.Overlaps(b, 32) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOverlapsSymmetric(t *testing.T) {
	f := func(bits1, bits2 uint64, p1, p2 uint8) bool {
		a := Prefix(bits1, p1%33, 32)
		b := Prefix(bits2, p2%33, 32)
		return a.Overlaps(b, 32) == b.Overlaps(a, 32)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMatchesConsistentWithOverlapExact(t *testing.T) {
	// For an exact cell b, a.Overlaps(b) iff a.Matches(b.Bits).
	f := func(bits1, v uint64, p1 uint8) bool {
		a := Prefix(bits1, p1%33, 32)
		b := Exact(v, 32)
		return a.Overlaps(b, 32) == a.Matches(b.Bits, 32)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCanonicalIdempotent(t *testing.T) {
	f := func(bits uint64, p uint8) bool {
		c := Cell{Bits: bits, PLen: p % 40}
		c1 := c.Canonical(32)
		return c1 == c1.Canonical(32)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseCellRoundTrip(t *testing.T) {
	tests := []struct {
		in    string
		width uint8
		want  Cell
	}{
		{"*", 32, Any()},
		{"80", 16, Exact(80, 16)},
		{"0x50", 16, Exact(80, 16)},
		{"192.0.2.1", 32, IPv4("192.0.2.1")},
		{"192.0.2.0/24", 32, IPv4Prefix("192.0.2.0", 24)},
		{"0/1", 32, Prefix(0, 1, 32)},
		{"128.0.0.0/1", 32, Prefix(0x80000000, 1, 32)},
	}
	for _, tc := range tests {
		got, err := ParseCell(tc.in, tc.width)
		if err != nil {
			t.Errorf("ParseCell(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseCell(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
		// Format then re-parse must be the identity.
		back, err := ParseCell(got.Format(tc.width), tc.width)
		if err != nil || back != got {
			t.Errorf("ParseCell(Format(%q)) = %+v, %v; want %+v", tc.in, back, err, got)
		}
	}
}

func TestParseCellErrors(t *testing.T) {
	bad := []struct {
		in    string
		width uint8
	}{
		{"zzz", 32},
		{"1/99", 32},
		{"300", 8},
		{"1.2.3", 32},
		{"1.2.3.999", 32},
		{"5/x", 32},
	}
	for _, tc := range bad {
		if _, err := ParseCell(tc.in, tc.width); err == nil {
			t.Errorf("ParseCell(%q, %d) succeeded, want error", tc.in, tc.width)
		}
	}
}

func TestFormat(t *testing.T) {
	tests := []struct {
		c     Cell
		width uint8
		want  string
	}{
		{Any(), 32, "*"},
		{Exact(80, 16), 16, "80"},
		{Prefix(0x80000000, 1, 32), 32, "2147483648/1"},
	}
	for _, tc := range tests {
		if got := tc.c.Format(tc.width); got != tc.want {
			t.Errorf("Format(%+v, %d) = %q, want %q", tc.c, tc.width, got, tc.want)
		}
	}
}

func TestIPv4Panics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("IPv4 on malformed input did not panic")
		}
	}()
	IPv4("not.an.ip.addr")
}
