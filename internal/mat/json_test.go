package mat

import (
	"encoding/json"
	"testing"
)

func TestTableJSONRoundTrip(t *testing.T) {
	orig := fig1a()
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Table
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !orig.Equal(&back) {
		t.Errorf("round trip changed table:\n%s\nvs\n%s", orig, &back)
	}
}

func TestPipelineJSONRoundTrip(t *testing.T) {
	orig := fig1b()
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Pipeline
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.Depth() != orig.Depth() || back.FieldCount() != orig.FieldCount() {
		t.Errorf("round trip changed pipeline shape")
	}
	for i := range orig.Stages {
		if !orig.Stages[i].Table.Equal(back.Stages[i].Table) {
			t.Errorf("stage %d table changed", i)
		}
		if orig.Stages[i].Next != back.Stages[i].Next || orig.Stages[i].MissDrop != back.Stages[i].MissDrop {
			t.Errorf("stage %d links changed", i)
		}
	}
}

func TestTableJSONErrors(t *testing.T) {
	cases := []string{
		`{"name":"t","attrs":[{"name":"a","kind":"bogus","width":8}],"entries":[]}`,
		`{"name":"t","attrs":[{"name":"a","kind":"field","width":8}],"entries":[["1","2"]]}`,
		`{"name":"t","attrs":[{"name":"a","kind":"field","width":8}],"entries":[["zzz"]]}`,
		`{"name":"t","attrs":[],"entries":[]}`,
		`not json`,
	}
	for i, c := range cases {
		var tab Table
		if err := json.Unmarshal([]byte(c), &tab); err == nil {
			t.Errorf("case %d: bad JSON accepted", i)
		}
	}
}

func TestTableJSONDefaultKind(t *testing.T) {
	// Kind defaults to "field" when omitted, and "match" is an alias.
	src := `{"name":"t","attrs":[{"name":"a","width":8},{"name":"b","kind":"match","width":8}],"entries":[["1","*"]]}`
	var tab Table
	if err := json.Unmarshal([]byte(src), &tab); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if tab.Schema[0].Kind != Field || tab.Schema[1].Kind != Field {
		t.Errorf("kind defaulting wrong: %s", tab.Schema)
	}
}

func TestPipelineJSONValidates(t *testing.T) {
	src := `{"name":"p","start":5,"stages":[{"table":{"name":"t","attrs":[{"name":"a","width":8}],"entries":[]},"next":-1}]}`
	var p Pipeline
	if err := json.Unmarshal([]byte(src), &p); err == nil {
		t.Errorf("invalid pipeline accepted")
	}
}
