package mat

import (
	"encoding/json"
	"fmt"
)

// jsonTable is the on-disk form of a Table: attribute descriptors plus rows
// of textual cells ("*", "42", "192.0.2.0/24").
type jsonTable struct {
	Name       string     `json:"name"`
	Provenance string     `json:"provenance,omitempty"`
	Attrs      []jsonAttr `json:"attrs"`
	Entries    [][]string `json:"entries"`
}

type jsonAttr struct {
	Name  string `json:"name"`
	Kind  string `json:"kind"` // "field" or "action"
	Width uint8  `json:"width"`
}

type jsonStage struct {
	Table    jsonTable `json:"table"`
	Next     int       `json:"next"`
	MissDrop bool      `json:"miss_drop"`
}

type jsonPipeline struct {
	Name   string      `json:"name"`
	Start  int         `json:"start"`
	Stages []jsonStage `json:"stages"`
}

func toJSONTable(t *Table) jsonTable {
	jt := jsonTable{Name: t.Name, Provenance: t.Provenance}
	for _, a := range t.Schema {
		jt.Attrs = append(jt.Attrs, jsonAttr{Name: a.Name, Kind: a.Kind.String(), Width: a.Width})
	}
	for _, e := range t.Entries {
		row := make([]string, len(e))
		for i, c := range e {
			row[i] = c.Format(t.Schema[i].Width)
		}
		jt.Entries = append(jt.Entries, row)
	}
	return jt
}

func fromJSONTable(jt jsonTable) (*Table, error) {
	sch := make(Schema, len(jt.Attrs))
	for i, a := range jt.Attrs {
		var k Kind
		switch a.Kind {
		case "field", "match", "":
			k = Field
		case "action":
			k = Action
		default:
			return nil, fmt.Errorf("mat: attribute %q: unknown kind %q", a.Name, a.Kind)
		}
		sch[i] = Attr{Name: a.Name, Kind: k, Width: a.Width}
	}
	t := New(jt.Name, sch)
	t.Provenance = jt.Provenance
	if err := sch.Validate(); err != nil {
		return nil, err
	}
	for ri, row := range jt.Entries {
		if len(row) != len(sch) {
			return nil, fmt.Errorf("mat: table %s: entry %d has %d cells, want %d", jt.Name, ri, len(row), len(sch))
		}
		e := make(Entry, len(row))
		for i, s := range row {
			c, err := ParseCell(s, sch[i].Width)
			if err != nil {
				return nil, fmt.Errorf("mat: table %s: entry %d, attr %s: %w", jt.Name, ri, sch[i].Name, err)
			}
			e[i] = c
		}
		t.Entries = append(t.Entries, e)
	}
	return t, nil
}

// MarshalJSON encodes the table in the textual-cell JSON form.
func (t *Table) MarshalJSON() ([]byte, error) { return json.Marshal(toJSONTable(t)) }

// UnmarshalJSON decodes the textual-cell JSON form.
func (t *Table) UnmarshalJSON(data []byte) error {
	var jt jsonTable
	if err := json.Unmarshal(data, &jt); err != nil {
		return err
	}
	nt, err := fromJSONTable(jt)
	if err != nil {
		return err
	}
	*t = *nt
	return nil
}

// MarshalJSON encodes the pipeline, embedding each stage's table.
func (p *Pipeline) MarshalJSON() ([]byte, error) {
	jp := jsonPipeline{Name: p.Name, Start: p.Start}
	for _, s := range p.Stages {
		jp.Stages = append(jp.Stages, jsonStage{Table: toJSONTable(s.Table), Next: s.Next, MissDrop: s.MissDrop})
	}
	return json.Marshal(jp)
}

// UnmarshalJSON decodes a pipeline and validates it.
func (p *Pipeline) UnmarshalJSON(data []byte) error {
	var jp jsonPipeline
	if err := json.Unmarshal(data, &jp); err != nil {
		return err
	}
	np := &Pipeline{Name: jp.Name, Start: jp.Start}
	for _, s := range jp.Stages {
		t, err := fromJSONTable(s.Table)
		if err != nil {
			return err
		}
		np.Stages = append(np.Stages, Stage{Table: t, Next: s.Next, MissDrop: s.MissDrop})
	}
	if err := np.Validate(); err != nil {
		return err
	}
	*p = *np
	return nil
}
