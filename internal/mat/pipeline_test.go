package mat

import (
	"strings"
	"testing"
)

// fig1b builds the paper's Fig. 1b: the gateway & load-balancer decomposed
// with goto_table joins. Stage 0 matches (ip_dst, tcp_dst) and jumps to a
// per-tenant stage that load-balances on ip_src.
func fig1b() *Pipeline {
	t0 := New("T0", Schema{F("ip_dst", 32), F("tcp_dst", 16), A(GotoAttr, 8)})
	t0.Add(IPv4("192.0.2.1"), Exact(80, 16), Exact(1, 8))
	t0.Add(IPv4("192.0.2.2"), Exact(443, 16), Exact(2, 8))
	t0.Add(IPv4("192.0.2.3"), Exact(22, 16), Exact(3, 8))

	lb1 := New("T1", Schema{F("ip_src", 32), A("out", 16)})
	lb1.Add(Prefix(0, 1, 32), Exact(1, 16))
	lb1.Add(Prefix(0x80000000, 1, 32), Exact(2, 16))

	lb2 := New("T2", Schema{F("ip_src", 32), A("out", 16)})
	lb2.Add(Prefix(0, 2, 32), Exact(3, 16))
	lb2.Add(Prefix(0x40000000, 2, 32), Exact(4, 16))
	lb2.Add(Prefix(0x80000000, 1, 32), Exact(5, 16))

	lb3 := New("T3", Schema{F("ip_src", 32), A("out", 16)})
	lb3.Add(Any(), Exact(6, 16))

	return &Pipeline{
		Name:  "gwlb-goto",
		Start: 0,
		Stages: []Stage{
			{Table: t0, Next: -1, MissDrop: true},
			{Table: lb1, Next: -1, MissDrop: true},
			{Table: lb2, Next: -1, MissDrop: true},
			{Table: lb3, Next: -1, MissDrop: true},
		},
	}
}

func pkt(ipSrc, ipDst uint64, tcpDst uint64) Record {
	return Record{"ip_src": ipSrc, "ip_dst": ipDst, "tcp_dst": tcpDst}
}

func TestSingleTableEval(t *testing.T) {
	p := SingleTable(fig1a())
	tests := []struct {
		name    string
		in      Record
		wantOut uint64
		drop    bool
	}{
		{"tenant1 low half", pkt(0x01000000, 0xC0000201, 80), 1, false},
		{"tenant1 high half", pkt(0x81000000, 0xC0000201, 80), 2, false},
		{"tenant2 first quarter", pkt(0x00000001, 0xC0000202, 443), 3, false},
		{"tenant2 second quarter", pkt(0x40000001, 0xC0000202, 443), 4, false},
		{"tenant2 high half", pkt(0xF0000000, 0xC0000202, 443), 5, false},
		{"tenant3 ssh", pkt(0x12345678, 0xC0000203, 22), 6, false},
		{"miss: wrong port", pkt(0x12345678, 0xC0000201, 443), 0, true},
		{"miss: unknown vip", pkt(0x12345678, 0xC0000299, 80), 0, true},
	}
	for _, tc := range tests {
		got, err := p.Eval(tc.in)
		if err != nil {
			t.Errorf("%s: %v", tc.name, err)
			continue
		}
		if tc.drop {
			if got[DropAttr] != 1 {
				t.Errorf("%s: expected drop, got %v", tc.name, got)
			}
			continue
		}
		if got["out"] != tc.wantOut {
			t.Errorf("%s: out = %d, want %d", tc.name, got["out"], tc.wantOut)
		}
	}
}

func TestGotoPipelineEquivalentToUniversal(t *testing.T) {
	uni := SingleTable(fig1a())
	dec := fig1b()
	if err := dec.Validate(); err != nil {
		t.Fatalf("fig1b invalid: %v", err)
	}
	// Probe with the cross product of interesting values per field.
	srcs := []uint64{0, 0x3FFFFFFF, 0x40000001, 0x7FFFFFFF, 0x80000000, 0xFFFFFFFF}
	dsts := []uint64{0xC0000201, 0xC0000202, 0xC0000203, 0xC0000299}
	ports := []uint64{80, 443, 22, 8080}
	n := 0
	for _, s := range srcs {
		for _, d := range dsts {
			for _, pt := range ports {
				in := pkt(s, d, pt)
				a, err := uni.Eval(in)
				if err != nil {
					t.Fatalf("universal eval: %v", err)
				}
				b, err := dec.Eval(in)
				if err != nil {
					t.Fatalf("decomposed eval: %v", err)
				}
				if !a.Observable().Equal(b.Observable()) {
					t.Fatalf("divergence on %v:\nuniversal:  %v\ndecomposed: %v", in, a.Observable(), b.Observable())
				}
				n++
			}
		}
	}
	if n != len(srcs)*len(dsts)*len(ports) {
		t.Fatalf("probe count wrong")
	}
}

func TestFieldCountsFig1(t *testing.T) {
	// Paper §2: universal = 24 fields, goto-normalized (Fig. 1b) = 21.
	if got := SingleTable(fig1a()).FieldCount(); got != 24 {
		t.Errorf("universal field count = %d, want 24", got)
	}
	if got := fig1b().FieldCount(); got != 21 {
		t.Errorf("normalized field count = %d, want 21", got)
	}
}

func TestPipelineValidate(t *testing.T) {
	p := fig1b()
	if err := p.Validate(); err != nil {
		t.Fatalf("valid pipeline: %v", err)
	}
	bad := fig1b()
	bad.Start = 9
	if err := bad.Validate(); err == nil {
		t.Errorf("out-of-range start not caught")
	}
	bad = fig1b()
	bad.Stages[0].Next = 17
	if err := bad.Validate(); err == nil {
		t.Errorf("out-of-range next not caught")
	}
	bad = fig1b()
	bad.Stages[0].Table.Entries[0][2] = Exact(200, 8)
	if err := bad.Validate(); err == nil {
		t.Errorf("out-of-range goto not caught")
	}
	empty := &Pipeline{Name: "e"}
	if err := empty.Validate(); err == nil {
		t.Errorf("empty pipeline not caught")
	}
}

func TestGotoCycleDetected(t *testing.T) {
	t0 := New("T0", Schema{F("a", 8), A(GotoAttr, 8)})
	t0.Add(Any(), Exact(0, 8)) // goto self forever
	p := &Pipeline{Stages: []Stage{{Table: t0, Next: -1}}}
	if _, err := p.Eval(Record{"a": 1}); err == nil {
		t.Errorf("goto cycle not detected")
	}
}

func TestAmbiguousMatchDetected(t *testing.T) {
	tab := New("T", Schema{F("a", 8), A("o", 8)})
	tab.Add(Exact(1, 8), Exact(10, 8))
	tab.Add(Exact(1, 8), Exact(20, 8))
	p := SingleTable(tab)
	if _, err := p.Eval(Record{"a": 1}); err == nil {
		t.Errorf("ambiguous match not detected")
	}
}

func TestMostSpecificWins(t *testing.T) {
	// Overlapping prefixes resolve by longest prefix, the LPM convention.
	tab := New("T", Schema{F("ip", 32), A("o", 8)})
	tab.Add(IPv4Prefix("10.0.0.0", 8), Exact(1, 8))
	tab.Add(IPv4Prefix("10.1.0.0", 16), Exact(2, 8))
	p := SingleTable(tab)
	r, err := p.Eval(Record{"ip": 0x0A010001})
	if err != nil {
		t.Fatal(err)
	}
	if r["o"] != 2 {
		t.Errorf("LPM priority: got out=%d, want 2", r["o"])
	}
	r, err = p.Eval(Record{"ip": 0x0A020001})
	if err != nil {
		t.Fatal(err)
	}
	if r["o"] != 1 {
		t.Errorf("fallback to /8: got out=%d, want 1", r["o"])
	}
}

func TestMissFallthrough(t *testing.T) {
	// A stage with MissDrop=false passes packets through untouched.
	t0 := New("T0", Schema{F("a", 8), A("x", 8)})
	t0.Add(Exact(1, 8), Exact(42, 8))
	t1 := New("T1", Schema{F("a", 8), A("o", 8)})
	t1.Add(Any(), Exact(7, 8))
	p := &Pipeline{Stages: []Stage{{Table: t0, Next: 1}, {Table: t1, Next: -1, MissDrop: true}}}
	r, err := p.Eval(Record{"a": 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, set := r["x"]; set {
		t.Errorf("missed stage wrote actions: %v", r)
	}
	if r["o"] != 7 {
		t.Errorf("fallthrough did not reach stage 1: %v", r)
	}
}

func TestAbsentFieldOnlyWildcardMatches(t *testing.T) {
	tab := New("T", Schema{F("vlan", 12), A("o", 8)})
	tab.Add(Exact(5, 12), Exact(1, 8))
	tab.Add(Any(), Exact(2, 8))
	p := SingleTable(tab)
	r, err := p.Eval(Record{}) // packet without a vlan attribute
	if err != nil {
		t.Fatal(err)
	}
	if r["o"] != 2 {
		t.Errorf("absent field matched a concrete cell: %v", r)
	}
}

func TestRecordHelpers(t *testing.T) {
	r := Record{"a": 1, MetaPrefix + "_x": 2, GotoAttr: 3}
	o := r.Observable()
	if len(o) != 1 || o["a"] != 1 {
		t.Errorf("Observable = %v", o)
	}
	c := r.Clone()
	c["a"] = 9
	if r["a"] != 1 {
		t.Errorf("Clone shares storage")
	}
	if !r.Equal(r.Clone()) || r.Equal(o) {
		t.Errorf("Equal wrong")
	}
}

func TestPipelineAccessors(t *testing.T) {
	p := fig1b()
	if p.Depth() != 4 {
		t.Errorf("Depth = %d", p.Depth())
	}
	if p.EntryCount() != 9 {
		t.Errorf("EntryCount = %d, want 9", p.EntryCount())
	}
	s := p.String()
	if !strings.Contains(s, "pipeline gwlb-goto") || !strings.Contains(s, "stage 3") {
		t.Errorf("String missing parts:\n%s", s)
	}
}

func TestIsLinkAttr(t *testing.T) {
	if !IsLinkAttr(GotoAttr) || !IsLinkAttr(MetaPrefix+"_svc") {
		t.Errorf("link attrs not recognized")
	}
	if IsLinkAttr("ip_dst") || IsLinkAttr("metadata") {
		t.Errorf("non-link attr recognized as link")
	}
}
