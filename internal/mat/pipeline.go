package mat

import (
	"fmt"
	"strings"
)

// Reserved attribute-name prefixes used by decomposition to link stages.
const (
	// GotoAttr is the action attribute carrying a goto_table target: its
	// cell value is the index of the next stage in the pipeline.
	GotoAttr = "_goto"
	// MetaPrefix prefixes metadata attributes introduced by the
	// metadata-based join abstraction ("write-metadata" in stage i,
	// metadata match in stage i+1 share the same name).
	MetaPrefix = "_meta"
	// DropAttr is the virtual record attribute marking a dropped packet
	// (table miss with a drop default).
	DropAttr = "_drop"
)

// IsLinkAttr reports whether an attribute name is pipeline plumbing
// (goto target or metadata tag) rather than program-visible state.
func IsLinkAttr(name string) bool {
	return name == GotoAttr || strings.HasPrefix(name, MetaPrefix)
}

// Stage is one table in a pipeline plus its default control flow.
type Stage struct {
	Table *Table
	// Next is the stage index control falls through to after this table
	// (when the matched entry carries no goto action); -1 terminates the
	// pipeline. A goto action in a matched entry overrides Next.
	Next int
	// MissDrop selects the table-miss policy: true drops the packet
	// (sets DropAttr), false falls through to Next untouched.
	MissDrop bool
}

// Pipeline is a chain of match-action tables — the multi-table
// representation of a program. A single-stage pipeline is the universal
// (single-table) representation.
type Pipeline struct {
	Name   string
	Stages []Stage
	Start  int
	// Fused asks compiling datapaths to fuse the whole pipeline into a
	// single first-match decision structure (internal/fdd) instead of
	// interpreting the stage joins per packet. It is a compilation hint:
	// the relational semantics, validation and footprint metrics ignore it.
	Fused bool
}

// SingleTable wraps one table as a one-stage pipeline (the universal
// representation), with drop-on-miss semantics.
func SingleTable(t *Table) *Pipeline {
	return &Pipeline{Name: t.Name, Stages: []Stage{{Table: t, Next: -1, MissDrop: true}}}
}

// Validate checks the pipeline: valid tables, in-range Next links and goto
// targets.
func (p *Pipeline) Validate() error {
	if len(p.Stages) == 0 {
		return fmt.Errorf("pipeline %s: no stages", p.Name)
	}
	if p.Start < 0 || p.Start >= len(p.Stages) {
		return fmt.Errorf("pipeline %s: start stage %d out of range", p.Name, p.Start)
	}
	for si, st := range p.Stages {
		if err := st.Table.Validate(); err != nil {
			return fmt.Errorf("pipeline %s: stage %d: %w", p.Name, si, err)
		}
		if st.Next < -1 || st.Next >= len(p.Stages) {
			return fmt.Errorf("pipeline %s: stage %d: next %d out of range", p.Name, si, st.Next)
		}
		if g := st.Table.Schema.Index(GotoAttr); g >= 0 {
			for ei, e := range st.Table.Entries {
				tgt := int(e[g].Bits)
				if tgt < 0 || tgt >= len(p.Stages) {
					return fmt.Errorf("pipeline %s: stage %d entry %d: goto %d out of range", p.Name, si, ei, tgt)
				}
			}
		}
	}
	return nil
}

// FieldCount sums the footprint metric over all stages: the total number of
// match-action fields stored in the data plane. Link attributes count — they
// occupy real table space — matching how the paper counts (Fig. 1b holds 21
// fields including the goto column).
func (p *Pipeline) FieldCount() int {
	n := 0
	for _, s := range p.Stages {
		n += s.Table.FieldCount()
	}
	return n
}

// EntryCount sums entries over all stages.
func (p *Pipeline) EntryCount() int {
	n := 0
	for _, s := range p.Stages {
		n += len(s.Table.Entries)
	}
	return n
}

// Depth returns the number of stages.
func (p *Pipeline) Depth() int { return len(p.Stages) }

// String renders every stage.
func (p *Pipeline) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "pipeline %s (start=%d):\n", p.Name, p.Start)
	for i, s := range p.Stages {
		fmt.Fprintf(&b, "[stage %d, next=%d] %s", i, s.Next, s.Table.String())
	}
	return b.String()
}

// Record is a packet in the relational semantics: a total assignment of
// concrete values to attribute names. Evaluating a program reads match
// fields from the record and writes action attributes back into it.
type Record map[string]uint64

// Clone copies the record.
func (r Record) Clone() Record {
	out := make(Record, len(r))
	for k, v := range r {
		out[k] = v
	}
	return out
}

// Equal reports whether two records agree on every key of both.
func (r Record) Equal(o Record) bool {
	if len(r) != len(o) {
		return false
	}
	for k, v := range r {
		if ov, ok := o[k]; !ok || ov != v {
			return false
		}
	}
	return true
}

// matchEntry finds the entry of t matching record r, using most-specific
// (longest total prefix) priority among matching entries. It returns the
// entry index or -1 on miss, and an error if two distinct entries match at
// the same specificity (ambiguous table — a 1NF order-independence
// violation observable at runtime).
func matchEntry(t *Table, r Record) (int, error) {
	best, bestLen := -1, -1
	ambiguous := false
	for ei, e := range t.Entries {
		total := 0
		ok := true
		for i, a := range t.Schema {
			if a.Kind != Field {
				continue
			}
			v, present := r[a.Name]
			if !present {
				// Absent attribute: only a wildcard matches.
				if !e[i].IsAny() {
					ok = false
					break
				}
				continue
			}
			if !e[i].Matches(v, a.Width) {
				ok = false
				break
			}
			total += int(e[i].PLen)
		}
		if !ok {
			continue
		}
		if total > bestLen {
			best, bestLen, ambiguous = ei, total, false
		} else if total == bestLen {
			ambiguous = true
		}
	}
	if ambiguous {
		return -1, fmt.Errorf("mat: table %s: ambiguous match (order-independence violated)", t.Name)
	}
	return best, nil
}

// EvalTable applies one table to the record: looks up the matching entry and
// writes its action cells into the record. It returns the goto target
// (-1 if none), whether an entry matched, and an error on ambiguity.
func EvalTable(t *Table, r Record) (gotoTarget int, hit bool, err error) {
	ei, err := matchEntry(t, r)
	if err != nil {
		return -1, false, err
	}
	if ei < 0 {
		return -1, false, nil
	}
	gotoTarget = -1
	e := t.Entries[ei]
	for i, a := range t.Schema {
		if a.Kind != Action {
			continue
		}
		if a.Name == GotoAttr {
			gotoTarget = int(e[i].Bits)
			continue
		}
		r[a.Name] = e[i].Bits
	}
	return gotoTarget, true, nil
}

// Eval runs the pipeline on a copy of the input record and returns the final
// record. Dropped packets carry DropAttr=1. The stage budget guards against
// accidental goto cycles.
func (p *Pipeline) Eval(in Record) (Record, error) {
	r := in.Clone()
	cur := p.Start
	for steps := 0; cur >= 0; steps++ {
		if steps > len(p.Stages)+1 {
			return nil, fmt.Errorf("mat: pipeline %s: stage budget exceeded (goto cycle?)", p.Name)
		}
		st := p.Stages[cur]
		g, hit, err := EvalTable(st.Table, r)
		if err != nil {
			return nil, err
		}
		switch {
		case !hit && st.MissDrop:
			r[DropAttr] = 1
			return r, nil
		case g >= 0:
			cur = g
		default:
			cur = st.Next
		}
	}
	return r, nil
}

// Observable projects the record onto program-visible state: everything
// except link attributes. A dropped packet is observationally just
// "dropped" — modifications applied before the drop never reach the wire —
// so the projection of a dropped record is {DropAttr: 1} alone, matching
// NetKAT's empty output set for drop. Equivalence of two representations
// means equal observable projections on every input.
func (r Record) Observable() Record {
	if r[DropAttr] == 1 {
		return Record{DropAttr: 1}
	}
	out := make(Record, len(r))
	for k, v := range r {
		if !IsLinkAttr(k) {
			out[k] = v
		}
	}
	return out
}
