package mat

import (
	"fmt"
	"sort"
	"strings"
)

// Entry is one row of a match-action table: one cell per schema attribute.
// Cells at match-field positions are the entry's match patterns; cells at
// action positions are the action parameters the entry applies.
type Entry []Cell

// Clone returns a deep copy of the entry.
func (e Entry) Clone() Entry {
	out := make(Entry, len(e))
	copy(out, e)
	return out
}

// Table is a match-action table in the relational view: a schema plus a set
// of entries. Name is used for rendering and for goto targets in pipelines.
type Table struct {
	Name    string
	Schema  Schema
	Entries []Entry
	// Provenance records which header schema the table's attribute names
	// were minted against ("" = unspecified, treated as the default
	// stack). The dataplane compiler cross-checks it against the schema a
	// pipeline is compiled with, so a VXLAN program cannot silently bind
	// to the default parser.
	Provenance string
}

// New constructs an empty table over the given schema.
func New(name string, schema Schema) *Table {
	return &Table{Name: name, Schema: schema}
}

// Add appends an entry built from cells in schema order. It panics if the
// cell count does not match the schema; tables are built by trusted code
// (compilers and generators), not from untrusted input.
func (t *Table) Add(cells ...Cell) *Table {
	if len(cells) != len(t.Schema) {
		panic(fmt.Sprintf("mat: entry with %d cells for schema of %d attributes", len(cells), len(t.Schema)))
	}
	e := make(Entry, len(cells))
	for i, c := range cells {
		e[i] = c.Canonical(t.Schema[i].Width)
	}
	t.Entries = append(t.Entries, e)
	return t
}

// Validate checks schema validity and entry arity.
func (t *Table) Validate() error {
	if err := t.Schema.Validate(); err != nil {
		return fmt.Errorf("table %s: %w", t.Name, err)
	}
	for i, e := range t.Entries {
		if len(e) != len(t.Schema) {
			return fmt.Errorf("table %s: entry %d has %d cells, want %d", t.Name, i, len(e), len(t.Schema))
		}
	}
	return nil
}

// Clone returns a deep copy of the table.
func (t *Table) Clone() *Table {
	out := &Table{Name: t.Name, Schema: append(Schema(nil), t.Schema...), Provenance: t.Provenance}
	out.Entries = make([]Entry, len(t.Entries))
	for i, e := range t.Entries {
		out.Entries[i] = e.Clone()
	}
	return out
}

// MatchSet returns the set of match-field attribute positions.
func (t *Table) MatchSet() AttrSet { return NewAttrSet(t.Schema.Fields()...) }

// ActionSet returns the set of action attribute positions.
func (t *Table) ActionSet() AttrSet { return NewAttrSet(t.Schema.Actions()...) }

// key returns a comparable projection of entry e onto the attribute set s.
func (t *Table) key(e Entry, s AttrSet) string {
	var b strings.Builder
	for _, i := range s.Members() {
		fmt.Fprintf(&b, "%d/%d;", e[i].Bits, e[i].PLen)
	}
	return b.String()
}

// Distinct returns the number of distinct projections of the entries onto
// the attribute set s.
func (t *Table) Distinct(s AttrSet) int {
	seen := make(map[string]struct{}, len(t.Entries))
	for _, e := range t.Entries {
		seen[t.key(e, s)] = struct{}{}
	}
	return len(seen)
}

// GroupBy partitions entry indices by their projection onto s. Groups are
// returned in first-occurrence order, so output is deterministic.
func (t *Table) GroupBy(s AttrSet) [][]int {
	order := make(map[string]int)
	var groups [][]int
	for i, e := range t.Entries {
		k := t.key(e, s)
		gi, ok := order[k]
		if !ok {
			gi = len(groups)
			order[k] = gi
			groups = append(groups, nil)
		}
		groups[gi] = append(groups[gi], i)
	}
	return groups
}

// DetermineFn reports whether the projection onto x functionally determines
// the projection onto y in this table (every distinct x-value co-occurs with
// exactly one y-value). This is the definition of an FD checked directly;
// the miner in internal/fd finds all of them efficiently.
func (t *Table) DetermineFn(x, y AttrSet) bool {
	seen := make(map[string]string, len(t.Entries))
	for _, e := range t.Entries {
		kx, ky := t.key(e, x), t.key(e, y)
		if prev, ok := seen[kx]; ok {
			if prev != ky {
				return false
			}
		} else {
			seen[kx] = ky
		}
	}
	return true
}

// Project returns a new table with the schema restricted to the attribute
// set s (in schema order), with duplicate rows removed. This is relational
// projection, the building block of decomposition.
func (t *Table) Project(name string, s AttrSet) *Table {
	idx := s.Members()
	out := New(name, t.Schema.Project(idx))
	seen := make(map[string]struct{}, len(t.Entries))
	for _, e := range t.Entries {
		k := t.key(e, s)
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		row := make(Entry, len(idx))
		for i, j := range idx {
			row[i] = e[j]
		}
		out.Entries = append(out.Entries, row)
	}
	return out
}

// IsOrderIndependent reports whether the match-field cells alone uniquely
// identify every entry — the paper's 1NF requirement. A table whose match
// projection has duplicates cannot be given priority-free semantics.
func (t *Table) IsOrderIndependent() bool {
	return t.Distinct(t.MatchSet()) == len(t.Entries)
}

// ConstantAttrs returns the set of attributes that take the same cell value
// in every entry. These are the attributes the paper factors into a
// Cartesian-product table (Fig. 2c, eth_type and mod_ttl).
func (t *Table) ConstantAttrs() AttrSet {
	if len(t.Entries) == 0 {
		return 0
	}
	var s AttrSet
	first := t.Entries[0]
	for i := range t.Schema {
		c := first[i]
		same := true
		for _, e := range t.Entries[1:] {
			if e[i] != c {
				same = false
				break
			}
		}
		if same {
			s = s.Add(i)
		}
	}
	return s
}

// FieldCount returns the total number of populated match-action fields in
// the table: the paper's data-plane footprint metric ("the universal table
// in Fig. 1a contains 24 match-action fields"). Wildcard cells count too
// when counted as stored fields; the paper counts every cell of every entry,
// so footprint = entries × attributes.
func (t *Table) FieldCount() int { return len(t.Entries) * len(t.Schema) }

// String renders the table as an aligned text grid, one line per entry.
func (t *Table) String() string {
	var b strings.Builder
	widths := make([]int, len(t.Schema))
	header := make([]string, len(t.Schema))
	for i, a := range t.Schema {
		header[i] = a.Name
		widths[i] = len(a.Name)
	}
	rows := make([][]string, len(t.Entries))
	for r, e := range t.Entries {
		rows[r] = make([]string, len(e))
		for i, c := range e {
			s := c.Format(t.Schema[i].Width)
			rows[r][i] = s
			if len(s) > widths[i] {
				widths[i] = len(s)
			}
		}
	}
	fmt.Fprintf(&b, "table %s:\n", t.Name)
	writeRow := func(cells []string) {
		for i, s := range cells {
			fmt.Fprintf(&b, "  %-*s", widths[i], s)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}

// SortEntries orders entries lexicographically by their cells, for
// deterministic comparison and printing of derived tables.
func (t *Table) SortEntries() {
	sort.Slice(t.Entries, func(i, j int) bool {
		a, b := t.Entries[i], t.Entries[j]
		for k := range a {
			if a[k].Bits != b[k].Bits {
				return a[k].Bits < b[k].Bits
			}
			if a[k].PLen != b[k].PLen {
				return a[k].PLen < b[k].PLen
			}
		}
		return false
	})
}

// Equal reports whether two tables have identical schemas and identical
// entry sets (order-insensitive).
func (t *Table) Equal(o *Table) bool {
	if len(t.Schema) != len(o.Schema) || len(t.Entries) != len(o.Entries) {
		return false
	}
	for i := range t.Schema {
		if t.Schema[i] != o.Schema[i] {
			return false
		}
	}
	a, b := t.Clone(), o.Clone()
	a.SortEntries()
	b.SortEntries()
	for i := range a.Entries {
		for j := range a.Entries[i] {
			if a.Entries[i][j] != b.Entries[i][j] {
				return false
			}
		}
	}
	return true
}

// AmbiguousPairs returns pairs of entry indices whose match regions
// overlap at equal total specificity: packets in the intersection have no
// most-specific winner, so the table cannot be given priority-free
// semantics on those inputs (the runtime evaluator errors when such a
// packet arrives). A clean 1NF table for the most-specific-wins convention
// has none; the check is the static, install-time companion of
// IsOrderIndependent, which only catches *identical* match rows.
func (t *Table) AmbiguousPairs() [][2]int {
	fields := t.Schema.Fields()
	total := func(e Entry) int {
		n := 0
		for _, fi := range fields {
			n += int(e[fi].PLen)
		}
		return n
	}
	var out [][2]int
	for i := 0; i < len(t.Entries); i++ {
		for j := i + 1; j < len(t.Entries); j++ {
			ei, ej := t.Entries[i], t.Entries[j]
			if total(ei) != total(ej) {
				continue
			}
			overlap := true
			for _, fi := range fields {
				if !ei[fi].Overlaps(ej[fi], t.Schema[fi].Width) {
					overlap = false
					break
				}
			}
			if overlap {
				out = append(out, [2]int{i, j})
			}
		}
	}
	return out
}
