package mat

import (
	"fmt"
	"strconv"
	"strings"
)

// Cell is one value of one attribute in one entry: a bit pattern with a
// prefix length, interpreted against the attribute's width.
//
//   - PLen == width: an exact value (exact match, or a concrete action
//     parameter).
//   - 0 < PLen < width: a prefix pattern, e.g. the paper's "0*"
//     (0.0.0.0/1) source-address split.
//   - PLen == 0: a full wildcard ("any").
//
// For the relational machinery (functional dependencies, keys) cells are
// opaque: two cells are the same value iff Bits and PLen are both equal.
// The prefix structure only matters when a table is lowered to a concrete
// classifier (internal/classifier) or evaluated on packets.
type Cell struct {
	// Bits holds the pattern, right-aligned in the attribute width. Bits
	// outside the prefix must be zero (see Canonical).
	Bits uint64
	// PLen is the number of significant leading bits.
	PLen uint8
}

// Exact constructs an exact-valued cell for an attribute of the given width.
func Exact(bits uint64, width uint8) Cell { return Cell{Bits: bits & mask(width), PLen: width} }

// Prefix constructs a prefix cell: the top plen bits of a width-bit pattern
// are significant. Insignificant bits of bits are cleared.
func Prefix(bits uint64, plen, width uint8) Cell {
	if plen > width {
		plen = width
	}
	return Cell{Bits: bits & prefixMask(plen, width), PLen: plen}
}

// Any is the full-wildcard cell.
func Any() Cell { return Cell{} }

// mask returns a mask of the low width bits.
func mask(width uint8) uint64 {
	if width >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << width) - 1
}

// prefixMask returns the mask selecting the top plen bits of a width-bit
// value.
func prefixMask(plen, width uint8) uint64 {
	if plen == 0 {
		return 0
	}
	if plen > width {
		plen = width
	}
	return mask(width) &^ mask(width-plen)
}

// IsExact reports whether the cell is an exact value for the given width.
func (c Cell) IsExact(width uint8) bool { return c.PLen >= width }

// IsAny reports whether the cell is a full wildcard.
func (c Cell) IsAny() bool { return c.PLen == 0 }

// Matches reports whether a concrete width-bit value v falls inside the
// cell's pattern.
func (c Cell) Matches(v uint64, width uint8) bool {
	m := prefixMask(c.PLen, width)
	return v&m == c.Bits&m
}

// Covers reports whether every value matched by o is also matched by c
// (c is at least as general as o), for attributes of the given width.
func (c Cell) Covers(o Cell, width uint8) bool {
	if c.PLen > o.PLen {
		return false
	}
	m := prefixMask(c.PLen, width)
	return c.Bits&m == o.Bits&m
}

// Overlaps reports whether some concrete value is matched by both cells.
func (c Cell) Overlaps(o Cell, width uint8) bool {
	p := c.PLen
	if o.PLen < p {
		p = o.PLen
	}
	m := prefixMask(p, width)
	return c.Bits&m == o.Bits&m
}

// Canonical returns the cell with bits outside the prefix cleared, so that
// equal patterns compare equal with ==.
func (c Cell) Canonical(width uint8) Cell {
	if c.PLen > width {
		c.PLen = width
	}
	c.Bits &= prefixMask(c.PLen, width)
	return c
}

// String renders the cell: "*" for a wildcard, the decimal value for an
// exact cell (width unknown here, so exactness is approximated by PLen>=64
// being impossible: callers wanting width-aware rendering use Format).
func (c Cell) String() string { return c.Format(64) }

// Format renders the cell against a known attribute width: "*" for any,
// plain decimal for exact values, "value/plen" for prefixes.
func (c Cell) Format(width uint8) string {
	switch {
	case c.PLen == 0:
		return "*"
	case c.PLen >= width:
		return strconv.FormatUint(c.Bits, 10)
	default:
		return fmt.Sprintf("%d/%d", c.Bits, c.PLen)
	}
}

// ParseCell parses the textual cell syntax produced by Format: "*", a
// decimal or 0x-hex value, or "value/plen". Dotted-quad IPv4 notation
// ("192.0.2.1", optionally with "/plen") is also accepted for convenience.
func ParseCell(s string, width uint8) (Cell, error) {
	s = strings.TrimSpace(s)
	if s == "*" || s == "" {
		return Any(), nil
	}
	plen := width
	if i := strings.LastIndexByte(s, '/'); i >= 0 {
		p, err := strconv.ParseUint(s[i+1:], 10, 8)
		if err != nil {
			return Cell{}, fmt.Errorf("mat: bad prefix length in %q: %v", s, err)
		}
		if p > uint64(width) {
			return Cell{}, fmt.Errorf("mat: prefix length %d exceeds width %d in %q", p, width, s)
		}
		plen = uint8(p)
		s = s[:i]
	}
	var bits uint64
	if strings.Count(s, ".") == 3 {
		v, err := parseDottedQuad(s)
		if err != nil {
			return Cell{}, err
		}
		bits = v
	} else {
		v, err := strconv.ParseUint(s, 0, 64)
		if err != nil {
			return Cell{}, fmt.Errorf("mat: bad cell value %q: %v", s, err)
		}
		bits = v
	}
	if width < 64 && bits > mask(width) {
		return Cell{}, fmt.Errorf("mat: value %d does not fit in %d bits", bits, width)
	}
	return Prefix(bits, plen, width), nil
}

// parseDottedQuad converts "a.b.c.d" into its 32-bit value.
func parseDottedQuad(s string) (uint64, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("mat: bad IPv4 literal %q", s)
	}
	var v uint64
	for _, p := range parts {
		b, err := strconv.ParseUint(p, 10, 8)
		if err != nil {
			return 0, fmt.Errorf("mat: bad IPv4 literal %q: %v", s, err)
		}
		v = v<<8 | b
	}
	return v, nil
}

// IPv4 is a convenience constructor turning a dotted quad into an exact
// 32-bit cell. It panics on malformed input; use ParseCell for untrusted
// data.
func IPv4(s string) Cell {
	v, err := parseDottedQuad(s)
	if err != nil {
		panic(err)
	}
	return Exact(v, 32)
}

// IPv4Prefix is like IPv4 but produces a prefix cell.
func IPv4Prefix(s string, plen uint8) Cell {
	v, err := parseDottedQuad(s)
	if err != nil {
		panic(err)
	}
	return Prefix(v, plen, 32)
}
