package mat

import (
	"math/bits"
	"sort"
	"strings"
)

// AttrSet is a set of attribute positions in a schema, represented as a
// 64-bit mask. Tables are limited to 64 attributes, far beyond any real
// match-action program.
type AttrSet uint64

// NewAttrSet builds a set from attribute indices.
func NewAttrSet(idx ...int) AttrSet {
	var s AttrSet
	for _, i := range idx {
		s = s.Add(i)
	}
	return s
}

// SetOf builds a set from attribute names resolved against a schema;
// unknown names are ignored.
func SetOf(sch Schema, names ...string) AttrSet {
	var s AttrSet
	for _, n := range names {
		if i := sch.Index(n); i >= 0 {
			s = s.Add(i)
		}
	}
	return s
}

// FullSet returns the set of all n attributes.
func FullSet(n int) AttrSet {
	if n >= 64 {
		return ^AttrSet(0)
	}
	return AttrSet(1)<<n - 1
}

// Add returns the set with attribute i included.
func (s AttrSet) Add(i int) AttrSet { return s | 1<<uint(i) }

// Remove returns the set with attribute i excluded.
func (s AttrSet) Remove(i int) AttrSet { return s &^ (1 << uint(i)) }

// Has reports whether attribute i is in the set.
func (s AttrSet) Has(i int) bool { return s&(1<<uint(i)) != 0 }

// Union returns s ∪ o.
func (s AttrSet) Union(o AttrSet) AttrSet { return s | o }

// Intersect returns s ∩ o.
func (s AttrSet) Intersect(o AttrSet) AttrSet { return s & o }

// Minus returns s \ o.
func (s AttrSet) Minus(o AttrSet) AttrSet { return s &^ o }

// SubsetOf reports whether s ⊆ o.
func (s AttrSet) SubsetOf(o AttrSet) bool { return s&^o == 0 }

// ProperSubsetOf reports whether s ⊊ o.
func (s AttrSet) ProperSubsetOf(o AttrSet) bool { return s != o && s.SubsetOf(o) }

// Empty reports whether the set has no members.
func (s AttrSet) Empty() bool { return s == 0 }

// Len returns the number of members.
func (s AttrSet) Len() int { return bits.OnesCount64(uint64(s)) }

// Members returns the attribute indices in ascending order.
func (s AttrSet) Members() []int {
	out := make([]int, 0, s.Len())
	for v := uint64(s); v != 0; {
		i := bits.TrailingZeros64(v)
		out = append(out, i)
		v &^= 1 << uint(i)
	}
	return out
}

// Names renders the member attribute names against a schema, sorted by
// schema position.
func (s AttrSet) Names(sch Schema) []string {
	m := s.Members()
	out := make([]string, len(m))
	for i, j := range m {
		out[i] = sch[j].Name
	}
	return out
}

// Format renders the set as "{a, b}" against a schema.
func (s AttrSet) Format(sch Schema) string {
	return "{" + strings.Join(s.Names(sch), ", ") + "}"
}

// SortAttrSets orders sets by size then numeric value, for deterministic
// output.
func SortAttrSets(sets []AttrSet) {
	sort.Slice(sets, func(i, j int) bool {
		if li, lj := sets[i].Len(), sets[j].Len(); li != lj {
			return li < lj
		}
		return sets[i] < sets[j]
	})
}
