package mat

import (
	"testing"
	"testing/quick"
)

func TestAttrSetBasics(t *testing.T) {
	s := NewAttrSet(0, 2, 5)
	if s.Len() != 3 {
		t.Errorf("Len = %d, want 3", s.Len())
	}
	if !s.Has(2) || s.Has(1) {
		t.Errorf("membership wrong: %v", s.Members())
	}
	s2 := s.Remove(2)
	if s2.Has(2) || s2.Len() != 2 {
		t.Errorf("Remove failed: %v", s2.Members())
	}
	if got := s.Members(); len(got) != 3 || got[0] != 0 || got[1] != 2 || got[2] != 5 {
		t.Errorf("Members = %v", got)
	}
}

func TestAttrSetAlgebra(t *testing.T) {
	a := NewAttrSet(0, 1)
	b := NewAttrSet(1, 2)
	if got := a.Union(b); got != NewAttrSet(0, 1, 2) {
		t.Errorf("Union = %v", got.Members())
	}
	if got := a.Intersect(b); got != NewAttrSet(1) {
		t.Errorf("Intersect = %v", got.Members())
	}
	if got := a.Minus(b); got != NewAttrSet(0) {
		t.Errorf("Minus = %v", got.Members())
	}
	if !NewAttrSet(1).SubsetOf(a) || a.SubsetOf(b) {
		t.Errorf("SubsetOf wrong")
	}
	if !NewAttrSet(1).ProperSubsetOf(a) || a.ProperSubsetOf(a) {
		t.Errorf("ProperSubsetOf wrong")
	}
	if !AttrSet(0).Empty() || a.Empty() {
		t.Errorf("Empty wrong")
	}
}

func TestFullSet(t *testing.T) {
	if FullSet(3) != NewAttrSet(0, 1, 2) {
		t.Errorf("FullSet(3) = %v", FullSet(3).Members())
	}
	if FullSet(64).Len() != 64 {
		t.Errorf("FullSet(64) has %d members", FullSet(64).Len())
	}
	if FullSet(0) != 0 {
		t.Errorf("FullSet(0) nonempty")
	}
}

func TestSetOf(t *testing.T) {
	sch := Schema{F("a", 8), F("b", 8), A("c", 8)}
	if got := SetOf(sch, "a", "c"); got != NewAttrSet(0, 2) {
		t.Errorf("SetOf = %v", got.Members())
	}
	if got := SetOf(sch, "missing"); got != 0 {
		t.Errorf("SetOf with unknown name = %v", got.Members())
	}
	if got := NewAttrSet(0, 2).Format(sch); got != "{a, c}" {
		t.Errorf("Format = %q", got)
	}
}

func TestAttrSetProperties(t *testing.T) {
	// Union is the least upper bound; Minus then Union restores subsets.
	f := func(a, b AttrSet) bool {
		u := a.Union(b)
		return a.SubsetOf(u) && b.SubsetOf(u) &&
			a.Minus(b).Union(a.Intersect(b)) == a &&
			u.Len() == a.Len()+b.Len()-a.Intersect(b).Len()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSortAttrSets(t *testing.T) {
	sets := []AttrSet{NewAttrSet(0, 1, 2), NewAttrSet(3), NewAttrSet(0, 1), NewAttrSet(1)}
	SortAttrSets(sets)
	if sets[0] != NewAttrSet(1) && sets[0] != NewAttrSet(3) {
		// size-1 sets first, ordered by value
	}
	if sets[0].Len() != 1 || sets[1].Len() != 1 || sets[2].Len() != 2 || sets[3].Len() != 3 {
		t.Errorf("SortAttrSets order wrong: %v", sets)
	}
	if sets[0] > sets[1] {
		t.Errorf("equal-size sets not value ordered")
	}
}
