package fd

import (
	"math/rand"
	"reflect"
	"testing"

	"manorm/internal/mat"
)

// fig1a rebuilds the paper's Fig. 1a universal gateway & load-balancer
// table (ip_src, ip_dst, tcp_dst | out).
func fig1a() *mat.Table {
	t := mat.New("T0", mat.Schema{
		mat.F("ip_src", 32), mat.F("ip_dst", 32), mat.F("tcp_dst", 16), mat.A("out", 16),
	})
	t.Add(mat.Prefix(0, 1, 32), mat.IPv4("192.0.2.1"), mat.Exact(80, 16), mat.Exact(1, 16))
	t.Add(mat.Prefix(0x80000000, 1, 32), mat.IPv4("192.0.2.1"), mat.Exact(80, 16), mat.Exact(2, 16))
	t.Add(mat.Prefix(0, 2, 32), mat.IPv4("192.0.2.2"), mat.Exact(443, 16), mat.Exact(3, 16))
	t.Add(mat.Prefix(0x40000000, 2, 32), mat.IPv4("192.0.2.2"), mat.Exact(443, 16), mat.Exact(4, 16))
	t.Add(mat.Prefix(0x80000000, 1, 32), mat.IPv4("192.0.2.2"), mat.Exact(443, 16), mat.Exact(5, 16))
	t.Add(mat.Any(), mat.IPv4("192.0.2.3"), mat.Exact(22, 16), mat.Exact(6, 16))
	return t
}

func TestMineFig1a(t *testing.T) {
	tab := fig1a()
	s := tab.Schema
	got := Mine(tab)

	set := func(names ...string) mat.AttrSet { return mat.SetOf(s, names...) }
	want := []FD{
		// The paper's headline dependency (§3): ip_dst → tcp_dst. In this
		// six-row instance the converse also holds (each port maps to one
		// VIP), and out is unique per row so it determines everything.
		{From: set("ip_dst"), To: set("tcp_dst")},
		{From: set("tcp_dst"), To: set("ip_dst")},
		{From: set("out"), To: set("ip_src")},
		{From: set("out"), To: set("ip_dst")},
		{From: set("out"), To: set("tcp_dst")},
		{From: set("ip_src", "ip_dst"), To: set("out")},
		{From: set("ip_src", "tcp_dst"), To: set("out")},
	}
	Sort(want)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Mine(fig1a):\ngot:")
		for _, f := range got {
			t.Errorf("  %s", f.Format(s))
		}
		t.Errorf("want:")
		for _, f := range want {
			t.Errorf("  %s", f.Format(s))
		}
	}
}

func TestKeysOfFig1a(t *testing.T) {
	tab := fig1a()
	s := tab.Schema
	keys := KeysOf(tab)
	// The paper names (ip_src, ip_dst) and (out) as minimal keys. Because
	// tcp_dst ↔ ip_dst are mutually determining in this instance,
	// (ip_src, tcp_dst) is a key of the instance as well.
	want := []mat.AttrSet{
		mat.SetOf(s, "out"),
		mat.SetOf(s, "ip_src", "ip_dst"),
		mat.SetOf(s, "ip_src", "tcp_dst"),
	}
	mat.SortAttrSets(want)
	if !reflect.DeepEqual(keys, want) {
		t.Errorf("keys = %v, want %v", formatSets(keys, s), formatSets(want, s))
	}
	// Every attribute ends up prime in the instance; with the *declared*
	// semantic FDs of the use case (no tcp_dst → ip_dst), tcp_dst is
	// non-prime — covered in internal/core tests.
	if p := PrimeAttrs(keys); p != mat.FullSet(len(s)) {
		t.Errorf("prime attrs = %s", p.Format(s))
	}
}

func formatSets(sets []mat.AttrSet, s mat.Schema) []string {
	out := make([]string, len(sets))
	for i, x := range sets {
		out[i] = x.Format(s)
	}
	return out
}

func TestMineConstantAttribute(t *testing.T) {
	tab := mat.New("T", mat.Schema{mat.F("eth_type", 16), mat.F("ip", 32), mat.A("out", 8)})
	tab.Add(mat.Exact(0x800, 16), mat.Exact(1, 32), mat.Exact(1, 8))
	tab.Add(mat.Exact(0x800, 16), mat.Exact(2, 32), mat.Exact(2, 8))
	got := Mine(tab)
	// ∅ → eth_type must be found (constant attribute).
	want := FD{From: 0, To: mat.SetOf(tab.Schema, "eth_type")}
	found := false
	for _, f := range got {
		if f == want {
			found = true
		}
	}
	if !found {
		t.Errorf("∅ → eth_type not mined; got %d FDs", len(got))
	}
}

func TestMineEmptyAndSingleRow(t *testing.T) {
	sch := mat.Schema{mat.F("a", 8), mat.A("b", 8)}
	empty := mat.New("e", sch)
	// In an empty table every FD holds vacuously; the miner reports the
	// minimal ones: ∅ → A for every attribute.
	fds := Mine(empty)
	if len(fds) != 2 {
		t.Errorf("empty table: %d FDs, want 2 (∅→a, ∅→b)", len(fds))
	}
	one := mat.New("o", sch)
	one.Add(mat.Exact(1, 8), mat.Exact(2, 8))
	fds = Mine(one)
	if len(fds) != 2 {
		t.Errorf("single-row table: %d FDs, want 2", len(fds))
	}
	for _, f := range fds {
		if !f.From.Empty() {
			t.Errorf("single-row table: non-minimal FD %v", f)
		}
	}
}

// randomTable builds a table with planted structure: attribute count in
// 3..6, some attributes derived from others so FDs exist to find.
func randomTable(rng *rand.Rand) *mat.Table {
	nAttr := 3 + rng.Intn(4)
	sch := make(mat.Schema, nAttr)
	for i := range sch {
		if rng.Intn(2) == 0 {
			sch[i] = mat.F(string(rune('a'+i)), 8)
		} else {
			sch[i] = mat.A(string(rune('a'+i)), 8)
		}
	}
	t := mat.New("rnd", sch)
	nRows := 1 + rng.Intn(12)
	// Derivation plan: each attribute is either random (domain 0..2) or a
	// function of an earlier attribute.
	derivedFrom := make([]int, nAttr)
	for i := range derivedFrom {
		if i > 0 && rng.Intn(2) == 0 {
			derivedFrom[i] = rng.Intn(i)
		} else {
			derivedFrom[i] = -1
		}
	}
	for r := 0; r < nRows; r++ {
		row := make([]mat.Cell, nAttr)
		for i := 0; i < nAttr; i++ {
			if src := derivedFrom[i]; src >= 0 {
				row[i] = mat.Exact(row[src].Bits*7%5, 8)
			} else {
				row[i] = mat.Exact(uint64(rng.Intn(3)), 8)
			}
		}
		t.Entries = append(t.Entries, row)
	}
	return t
}

func TestMineMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		tab := randomTable(rng)
		fast := Mine(tab)
		slow := MineNaive(tab)
		if !reflect.DeepEqual(fast, slow) {
			t.Fatalf("trial %d: TANE and naive disagree on\n%s\nTANE:  %v\nnaive: %v",
				trial, tab, formatFDs(fast, tab.Schema), formatFDs(slow, tab.Schema))
		}
	}
}

func formatFDs(fds []FD, s mat.Schema) []string {
	out := make([]string, len(fds))
	for i, f := range fds {
		out[i] = f.Format(s)
	}
	return out
}

func TestMinedFDsHoldAndAreMinimal(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		tab := randomTable(rng)
		for _, f := range Mine(tab) {
			if !f.HoldsIn(tab) {
				t.Fatalf("trial %d: mined FD %s does not hold in\n%s", trial, f.Format(tab.Schema), tab)
			}
			for _, b := range f.From.Members() {
				if (FD{From: f.From.Remove(b), To: f.To}).HoldsIn(tab) {
					t.Fatalf("trial %d: mined FD %s is not minimal (drop %s)",
						trial, f.Format(tab.Schema), tab.Schema[b].Name)
				}
			}
		}
	}
}

func TestClosureProperties(t *testing.T) {
	tab := fig1a()
	fds := Mine(tab)
	n := len(tab.Schema)
	// Extensive, monotone, idempotent.
	for bits := mat.AttrSet(0); bits < mat.FullSet(n)+1 && bits <= mat.FullSet(n); bits++ {
		c := Closure(bits, fds)
		if !bits.SubsetOf(c) {
			t.Fatalf("closure not extensive for %v", bits)
		}
		if Closure(c, fds) != c {
			t.Fatalf("closure not idempotent for %v", bits)
		}
		for _, b := range c.Members() {
			sup := bits.Add(b)
			if !c.SubsetOf(Closure(sup, fds)) {
				t.Fatalf("closure not monotone for %v", bits)
			}
		}
	}
}

func TestClosureFig1a(t *testing.T) {
	tab := fig1a()
	s := tab.Schema
	fds := Mine(tab)
	// out determines everything: {out}⁺ = R.
	if got := Closure(mat.SetOf(s, "out"), fds); got != mat.FullSet(len(s)) {
		t.Errorf("{out}+ = %s, want all", got.Format(s))
	}
	// {ip_dst}⁺ = {ip_dst, tcp_dst} (mutually determining pair).
	if got := Closure(mat.SetOf(s, "ip_dst"), fds); got != mat.SetOf(s, "ip_dst", "tcp_dst") {
		t.Errorf("{ip_dst}+ = %s", got.Format(s))
	}
	// {ip_src}⁺ = {ip_src}.
	if got := Closure(mat.SetOf(s, "ip_src"), fds); got != mat.SetOf(s, "ip_src") {
		t.Errorf("{ip_src}+ = %s", got.Format(s))
	}
}

func TestMinimalCover(t *testing.T) {
	tab := fig1a()
	fds := Mine(tab)
	cover := MinimalCover(fds)
	if !Equivalent(fds, cover) {
		t.Fatalf("cover not equivalent to original")
	}
	// Canonical form: singleton RHS, no extraneous LHS attrs, no
	// redundant FDs.
	for i, f := range cover {
		if f.To.Len() != 1 {
			t.Errorf("cover FD %d has non-singleton RHS", i)
		}
		for _, b := range f.From.Members() {
			reduced := FD{From: f.From.Remove(b), To: f.To}
			if Implies(cover, reduced) {
				t.Errorf("cover FD %s has extraneous attr %s", f.Format(tab.Schema), tab.Schema[b].Name)
			}
		}
		rest := append(append([]FD{}, cover[:i]...), cover[i+1:]...)
		if Implies(rest, f) {
			t.Errorf("cover FD %s is redundant", f.Format(tab.Schema))
		}
	}
}

func TestMinimalCoverRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 100; trial++ {
		tab := randomTable(rng)
		fds := Mine(tab)
		cover := MinimalCover(fds)
		if !Equivalent(fds, cover) {
			t.Fatalf("trial %d: cover not equivalent", trial)
		}
		if len(cover) > len(SplitRHS(fds)) {
			t.Fatalf("trial %d: cover larger than split input", trial)
		}
	}
}

func TestCandidateKeysProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 100; trial++ {
		tab := randomTable(rng)
		if len(tab.Entries) == 0 {
			continue
		}
		fds := Mine(tab)
		n := len(tab.Schema)
		keys := CandidateKeys(n, fds)
		if len(keys) == 0 {
			t.Fatalf("trial %d: no candidate keys", trial)
		}
		for _, k := range keys {
			if Closure(k, fds) != mat.FullSet(n) {
				t.Fatalf("trial %d: key %v does not determine all", trial, k.Members())
			}
			// Minimality.
			for _, b := range k.Members() {
				if Closure(k.Remove(b), fds) == mat.FullSet(n) {
					t.Fatalf("trial %d: key %v not minimal", trial, k.Members())
				}
			}
			// A key's projection must be unique per row (it determines
			// the whole row including itself).
			if tab.Distinct(k) != len(tab.Entries) {
				// Duplicate full rows make this legitimately fail; the
				// relational model treats entries as a set.
				dedup := tab.Project("d", mat.FullSet(n))
				if dedup.Distinct(k) != len(dedup.Entries) {
					t.Fatalf("trial %d: key %v not unique per row", trial, k.Members())
				}
			}
		}
	}
}

func TestNoFDsMeansFullKey(t *testing.T) {
	keys := CandidateKeys(3, nil)
	if len(keys) != 1 || keys[0] != mat.FullSet(3) {
		t.Errorf("keys with no FDs = %v, want the full set", keys)
	}
}

func TestIsSuperkey(t *testing.T) {
	fds := []FD{{From: mat.NewAttrSet(0), To: mat.NewAttrSet(1, 2)}}
	if !IsSuperkey(mat.NewAttrSet(0), 3, fds) {
		t.Errorf("a should be a superkey")
	}
	if IsSuperkey(mat.NewAttrSet(1), 3, fds) {
		t.Errorf("b should not be a superkey")
	}
	if !IsSuperkey(mat.NewAttrSet(0, 1), 3, fds) {
		t.Errorf("supersets of keys are superkeys")
	}
}

func TestSplitAndMergeRHS(t *testing.T) {
	f := FD{From: mat.NewAttrSet(0), To: mat.NewAttrSet(1, 2)}
	split := SplitRHS([]FD{f})
	if len(split) != 2 {
		t.Fatalf("SplitRHS produced %d FDs", len(split))
	}
	merged := MergeRHS(split)
	if len(merged) != 1 || merged[0] != f {
		t.Errorf("MergeRHS(SplitRHS(f)) = %v, want %v", merged, f)
	}
	// Trivial parts are dropped.
	triv := SplitRHS([]FD{{From: mat.NewAttrSet(0), To: mat.NewAttrSet(0, 1)}})
	if len(triv) != 1 || triv[0].To != mat.NewAttrSet(1) {
		t.Errorf("SplitRHS kept trivial component: %v", triv)
	}
}

func TestTrivial(t *testing.T) {
	if !(FD{From: mat.NewAttrSet(0, 1), To: mat.NewAttrSet(1)}).Trivial() {
		t.Errorf("contained RHS should be trivial")
	}
	if (FD{From: mat.NewAttrSet(0), To: mat.NewAttrSet(1)}).Trivial() {
		t.Errorf("disjoint RHS should not be trivial")
	}
}

func TestPartitionProduct(t *testing.T) {
	tab := fig1a()
	n := len(tab.Schema)
	mult := newMultiplier(len(tab.Entries))
	// π_X · π_Y must equal π_{X∪Y} computed directly, for all pairs.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			pi := singletonPartition(tab, i)
			pj := singletonPartition(tab, j)
			prod := mult.product(pi, pj)
			direct := partitionOf(tab, mat.NewAttrSet(i, j))
			if prod.errMeasure() != direct.errMeasure() || prod.size != direct.size {
				t.Errorf("product(%d,%d): e=%d size=%d, direct e=%d size=%d",
					i, j, prod.errMeasure(), prod.size, direct.errMeasure(), direct.size)
			}
		}
	}
}

func TestPartitionProductRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 100; trial++ {
		tab := randomTable(rng)
		if len(tab.Schema) < 3 {
			continue
		}
		mult := newMultiplier(len(tab.Entries))
		x := mat.NewAttrSet(0)
		y := mat.NewAttrSet(1, 2)
		px := partitionOf(tab, x)
		py := partitionOf(tab, y)
		prod := mult.product(px, py)
		direct := partitionOf(tab, x.Union(y))
		if prod.errMeasure() != direct.errMeasure() {
			t.Fatalf("trial %d: product err %d != direct %d", trial, prod.errMeasure(), direct.errMeasure())
		}
	}
}

func TestFDFormat(t *testing.T) {
	s := mat.Schema{mat.F("a", 8), mat.F("b", 8)}
	got := FD{From: mat.NewAttrSet(0), To: mat.NewAttrSet(1)}.Format(s)
	if got != "{a} -> {b}" {
		t.Errorf("Format = %q", got)
	}
}
