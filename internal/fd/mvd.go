package fd

import (
	"manorm/internal/mat"
)

// MVD is a multivalued dependency X ↠ Y: for every X value, the set of Y
// values co-occurring with it is independent of the remaining attributes.
// Equivalently (Fagin), the table decomposes losslessly into its
// projections onto X∪Y and X∪Z even when no functional dependency X→Y
// holds. These are the dependencies behind the normal forms beyond 3NF the
// paper's conclusion points at.
type MVD struct {
	From mat.AttrSet
	To   mat.AttrSet
}

// Format renders the MVD against a schema.
func (m MVD) Format(sch mat.Schema) string {
	return m.From.Format(sch) + " ->> " + m.To.Format(sch)
}

// Trivial reports whether the MVD is trivial: Y ⊆ X, or X∪Y covers the
// whole schema (Z = ∅).
func (m MVD) Trivial(n int) bool {
	y := m.To.Minus(m.From)
	return y.Empty() || m.From.Union(m.To) == mat.FullSet(n)
}

// HoldsIn checks the MVD against a table instance by the definition:
// T = π_{X∪Y}(T) ⋈ π_{X∪Z}(T). Because both projections come from T, the
// join can only add rows; the MVD holds iff it adds none.
func (m MVD) HoldsIn(t *mat.Table) bool {
	n := len(t.Schema)
	x := m.From
	y := m.To.Minus(x)
	z := mat.FullSet(n).Minus(x).Minus(y)

	// Group rows by X; within each group the MVD requires the Y- and
	// Z-projections to be independent: |group| == |Y-proj| × |Z-proj|
	// AND every (y, z) combination present. Since the group's rows are a
	// subset of the product, the count equality is exact.
	type groupSets struct {
		ys, zs map[string]struct{}
		rows   int
	}
	groups := make(map[string]*groupSets)
	for _, e := range t.Entries {
		kx := projKey(e, x)
		g := groups[kx]
		if g == nil {
			g = &groupSets{ys: map[string]struct{}{}, zs: map[string]struct{}{}}
			groups[kx] = g
		}
		g.ys[projKey(e, y)] = struct{}{}
		g.zs[projKey(e, z)] = struct{}{}
		g.rows++
	}
	// Duplicate rows must not inflate counts: count distinct (y, z)
	// pairs per group instead of raw rows.
	pairs := make(map[string]map[string]struct{})
	for _, e := range t.Entries {
		kx := projKey(e, x)
		if pairs[kx] == nil {
			pairs[kx] = map[string]struct{}{}
		}
		pairs[kx][projKey(e, y)+"|"+projKey(e, z)] = struct{}{}
	}
	for kx, g := range groups {
		if len(pairs[kx]) != len(g.ys)*len(g.zs) {
			return false
		}
	}
	return true
}

// MineMVDs finds all minimal nontrivial multivalued dependencies X ↠ Y
// that hold in the table and are not already implied by a functional
// dependency X → Y (every FD is an MVD; the interesting ones are the
// proper MVDs). Brute force over the subset lattice — match-action
// schemas are small. Results are deterministic.
//
// Minimality here means: no X' ⊊ X with X' ↠ Y, and no nonempty Y' ⊊ Y
// (disjoint from X) with X ↠ Y' — the RHS cannot be split further.
func MineMVDs(t *mat.Table, fds []FD) []MVD {
	n := len(t.Schema)
	if n == 0 || n > 16 {
		return nil
	}
	full := mat.FullSet(n)
	var out []MVD
	for _, x := range allSubsets(full) {
		rest := full.Minus(x)
		if rest.Len() < 2 {
			continue // Z would be empty for any nonempty Y
		}
		xClosure := Closure(x, fds)
		for _, y := range allSubsets(rest) {
			if y.Empty() || y == rest {
				continue
			}
			m := MVD{From: x, To: y}
			if y.SubsetOf(xClosure) {
				continue // implied by an FD: not a proper MVD
			}
			if !m.HoldsIn(t) {
				continue
			}
			// LHS minimality.
			minimal := true
			for _, b := range x.Members() {
				if (MVD{From: x.Remove(b), To: y}).HoldsIn(t) {
					minimal = false
					break
				}
			}
			if !minimal {
				continue
			}
			// RHS minimality: no proper nonempty sub-RHS also holds.
			for _, sub := range allSubsets(y) {
				if sub.Empty() || sub == y {
					continue
				}
				if (MVD{From: x, To: sub}).HoldsIn(t) {
					minimal = false
					break
				}
			}
			if minimal {
				out = append(out, m)
			}
		}
	}
	sortMVDs(out)
	return out
}

func sortMVDs(ms []MVD) {
	for i := 1; i < len(ms); i++ {
		for j := i; j > 0; j-- {
			a, b := ms[j-1], ms[j]
			if a.From.Len() > b.From.Len() ||
				(a.From.Len() == b.From.Len() && a.From > b.From) ||
				(a.From == b.From && a.To > b.To) {
				ms[j-1], ms[j] = ms[j], ms[j-1]
			} else {
				break
			}
		}
	}
}
