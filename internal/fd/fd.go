// Package fd implements the functional-dependency machinery the
// normalization framework is built on: FD discovery in match-action tables
// (a TANE-style levelwise miner over stripped partitions, plus a naive
// reference implementation), attribute-set closure, minimal covers, and
// candidate-key enumeration.
//
// The paper's central observation is that a nontrivial functional dependency
// in a match-action table is a telltale sign of redundancy (§3); everything
// in internal/core starts from the dependencies this package finds.
package fd

import (
	"fmt"
	"sort"

	"manorm/internal/mat"
)

// FD is a functional dependency From → To over a table schema. Both sides
// are attribute sets; the miner emits dependencies with singleton To, and
// helpers below can merge them.
type FD struct {
	From mat.AttrSet
	To   mat.AttrSet
}

// String renders the FD against a schema, e.g. "{ip_dst} -> {tcp_dst}".
func (f FD) Format(sch mat.Schema) string {
	return fmt.Sprintf("%s -> %s", f.From.Format(sch), f.To.Format(sch))
}

// Trivial reports whether the FD is trivial (To ⊆ From).
func (f FD) Trivial() bool { return f.To.SubsetOf(f.From) }

// HoldsIn verifies the dependency against a table by direct scanning. This
// is the definition, used in tests and as a safety net after mining.
func (f FD) HoldsIn(t *mat.Table) bool { return t.DetermineFn(f.From, f.To) }

// Sort orders FDs deterministically: by LHS size, then LHS value, then RHS
// value.
func Sort(fds []FD) {
	sort.Slice(fds, func(i, j int) bool {
		a, b := fds[i], fds[j]
		if la, lb := a.From.Len(), b.From.Len(); la != lb {
			return la < lb
		}
		if a.From != b.From {
			return a.From < b.From
		}
		return a.To < b.To
	})
}

// SplitRHS rewrites every FD into singleton-RHS form X→A, dropping trivial
// results.
func SplitRHS(fds []FD) []FD {
	var out []FD
	for _, f := range fds {
		for _, a := range f.To.Members() {
			if f.From.Has(a) {
				continue
			}
			out = append(out, FD{From: f.From, To: mat.NewAttrSet(a)})
		}
	}
	return out
}

// ActionToMatch filters dependencies down to the paper's Fig. 3 shape: a
// left-hand side containing at least one action attribute and an effective
// right-hand side containing at least one match field. Decomposing along
// such a dependency cannot yield 1NF sub-tables (core.ErrActionToMatch);
// the differential fuzzing harness uses this filter to locate the
// dependencies worth planting as deliberate caveat traps.
func ActionToMatch(sch mat.Schema, fds []FD) []FD {
	actions := mat.NewAttrSet(sch.Actions()...)
	fields := mat.NewAttrSet(sch.Fields()...)
	var out []FD
	for _, f := range fds {
		if !f.From.Intersect(actions).Empty() &&
			!f.To.Minus(f.From).Intersect(fields).Empty() {
			out = append(out, f)
		}
	}
	return out
}

// MergeRHS groups FDs with identical LHS into one FD with the union RHS.
// Output is deterministic.
func MergeRHS(fds []FD) []FD {
	byLHS := make(map[mat.AttrSet]mat.AttrSet)
	for _, f := range fds {
		byLHS[f.From] = byLHS[f.From].Union(f.To)
	}
	out := make([]FD, 0, len(byLHS))
	for from, to := range byLHS {
		out = append(out, FD{From: from, To: to})
	}
	Sort(out)
	return out
}
