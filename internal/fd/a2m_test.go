package fd

import (
	"testing"

	"manorm/internal/mat"
)

// TestActionToMatch filters a mixed dependency set down to the Fig. 3
// shape: action attributes on the left, match fields on the right.
func TestActionToMatch(t *testing.T) {
	sch := mat.Schema{
		mat.F("in_port", 8), mat.F("vlan", 12), mat.A("out", 8),
	}
	fds := []FD{
		{From: mat.SetOf(sch, "in_port"), To: mat.SetOf(sch, "vlan")},        // field → field
		{From: mat.SetOf(sch, "out"), To: mat.SetOf(sch, "vlan")},            // Fig. 3
		{From: mat.SetOf(sch, "in_port", "vlan"), To: mat.SetOf(sch, "out")}, // key → action
		{From: mat.SetOf(sch, "out"), To: mat.SetOf(sch, "out")},             // trivial
		{From: mat.SetOf(sch, "out", "vlan"), To: mat.SetOf(sch, "in_port")}, // Fig. 3 (mixed LHS)
	}
	got := ActionToMatch(sch, fds)
	if len(got) != 2 {
		t.Fatalf("want 2 action-to-match FDs, got %d: %v", len(got), got)
	}
	for _, f := range got {
		if f.From.Intersect(mat.SetOf(sch, "out")).Empty() {
			t.Fatalf("filtered FD %v has no action on the LHS", f)
		}
	}
}
