package fd

import (
	"fmt"
	"strings"

	"manorm/internal/mat"
)

// Parse reads the textual dependency syntax "a,b -> c,d" against a schema.
// Attribute names must exist in the schema. An empty LHS ("-> c") declares
// a constant attribute (∅ → c).
func Parse(s string, sch mat.Schema) (FD, error) {
	parts := strings.SplitN(s, "->", 2)
	if len(parts) != 2 {
		return FD{}, fmt.Errorf("fd: dependency %q lacks '->'", s)
	}
	parse := func(side string, allowEmpty bool) (mat.AttrSet, error) {
		var set mat.AttrSet
		side = strings.TrimSpace(side)
		if side == "" {
			if allowEmpty {
				return 0, nil
			}
			return 0, fmt.Errorf("fd: empty attribute list in %q", s)
		}
		for _, name := range strings.Split(side, ",") {
			name = strings.TrimSpace(name)
			i := sch.Index(name)
			if i < 0 {
				return 0, fmt.Errorf("fd: unknown attribute %q in %q", name, s)
			}
			set = set.Add(i)
		}
		return set, nil
	}
	from, err := parse(parts[0], true)
	if err != nil {
		return FD{}, err
	}
	to, err := parse(parts[1], false)
	if err != nil {
		return FD{}, err
	}
	return FD{From: from, To: to}, nil
}
