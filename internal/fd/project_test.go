package fd

import (
	"math/rand"
	"testing"

	"manorm/internal/mat"
)

func TestProjectKeepsImpliedFDs(t *testing.T) {
	// FDs over (a, b, c, d): a→b, b→c, c→d. Projected onto {a, c, d},
	// the transitive a→c and c→d must survive, b-dependencies vanish.
	fds := []FD{
		{From: mat.NewAttrSet(0), To: mat.NewAttrSet(1)},
		{From: mat.NewAttrSet(1), To: mat.NewAttrSet(2)},
		{From: mat.NewAttrSet(2), To: mat.NewAttrSet(3)},
	}
	keep := mat.NewAttrSet(0, 2, 3)
	proj := Project(fds, keep)
	mustImply := []FD{
		{From: mat.NewAttrSet(0), To: mat.NewAttrSet(2)},
		{From: mat.NewAttrSet(2), To: mat.NewAttrSet(3)},
		{From: mat.NewAttrSet(0), To: mat.NewAttrSet(3)},
	}
	for _, f := range mustImply {
		if !Implies(proj, f) {
			t.Errorf("projection lost %v", f)
		}
	}
	// Nothing about attribute 1 may appear.
	for _, f := range proj {
		if f.From.Has(1) || f.To.Has(1) {
			t.Errorf("projection leaked attribute 1: %v", f)
		}
	}
}

func TestProjectSoundness(t *testing.T) {
	// Every projected FD must be implied by the original set.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		var fds []FD
		n := 5
		for i := 0; i < 4; i++ {
			from := mat.AttrSet(rng.Intn(1 << n))
			to := mat.AttrSet(rng.Intn(1 << n))
			if from == 0 || to.Minus(from) == 0 {
				continue
			}
			fds = append(fds, FD{From: from, To: to.Minus(from)})
		}
		keep := mat.AttrSet(rng.Intn(1<<n-1) + 1)
		for _, f := range Project(fds, keep) {
			if !Implies(fds, f) {
				t.Fatalf("trial %d: projected FD %v not implied by original", trial, f)
			}
			if !f.From.SubsetOf(keep) || !f.To.SubsetOf(keep) {
				t.Fatalf("trial %d: projected FD %v escapes the kept set", trial, f)
			}
		}
	}
}

func TestRename(t *testing.T) {
	// Keep attrs {1, 3}: old index 1 -> 0, old 3 -> 1.
	fds := []FD{
		{From: mat.NewAttrSet(1), To: mat.NewAttrSet(3)},
		{From: mat.NewAttrSet(0), To: mat.NewAttrSet(1)}, // dropped: touches 0
	}
	got := Rename(fds, mat.NewAttrSet(1, 3))
	if len(got) != 1 {
		t.Fatalf("Rename kept %d FDs, want 1", len(got))
	}
	if got[0].From != mat.NewAttrSet(0) || got[0].To != mat.NewAttrSet(1) {
		t.Errorf("Rename produced %v", got[0])
	}
}

func TestParse(t *testing.T) {
	sch := mat.Schema{mat.F("ip_src", 32), mat.F("ip_dst", 32), mat.A("out", 16)}
	f, err := Parse("ip_src, ip_dst -> out", sch)
	if err != nil {
		t.Fatal(err)
	}
	if f.From != mat.NewAttrSet(0, 1) || f.To != mat.NewAttrSet(2) {
		t.Errorf("Parse = %+v", f)
	}
	// Constant declaration: empty LHS.
	f, err = Parse(" -> ip_dst", sch)
	if err != nil {
		t.Fatal(err)
	}
	if !f.From.Empty() || f.To != mat.NewAttrSet(1) {
		t.Errorf("constant Parse = %+v", f)
	}
	for _, bad := range []string{"", "ip_src", "-> ", "zz -> out", "ip_src -> zz", "ip_src ->"} {
		if _, err := Parse(bad, sch); err == nil {
			t.Errorf("Parse(%q) succeeded", bad)
		}
	}
}

func TestEquivalentFDSets(t *testing.T) {
	a := []FD{{From: mat.NewAttrSet(0), To: mat.NewAttrSet(1, 2)}}
	b := []FD{
		{From: mat.NewAttrSet(0), To: mat.NewAttrSet(1)},
		{From: mat.NewAttrSet(0), To: mat.NewAttrSet(2)},
	}
	if !Equivalent(a, b) {
		t.Errorf("split RHS not equivalent")
	}
	c := []FD{{From: mat.NewAttrSet(0), To: mat.NewAttrSet(1)}}
	if Equivalent(a, c) {
		t.Errorf("weaker set reported equivalent")
	}
	if Equivalent(c, a) {
		t.Errorf("stronger set reported equivalent")
	}
}
