package fd

import (
	"math/rand"
	"testing"

	"manorm/internal/mat"
)

// crossTable plants an MVD: for each a-value, the sets of b- and c-values
// are independent (full cross product per group).
func crossTable(rng *rand.Rand) *mat.Table {
	t := mat.New("x", mat.Schema{mat.F("a", 8), mat.F("b", 8), mat.F("c", 8)})
	nGroups := 1 + rng.Intn(3)
	for g := 0; g < nGroups; g++ {
		nb := 1 + rng.Intn(3)
		nc := 1 + rng.Intn(3)
		for b := 0; b < nb; b++ {
			for c := 0; c < nc; c++ {
				t.Add(mat.Exact(uint64(g), 8), mat.Exact(uint64(g*10+b), 8), mat.Exact(uint64(g*100+c), 8))
			}
		}
	}
	return t
}

func TestMVDHoldsOnPlantedCrossProducts(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 100; trial++ {
		tab := crossTable(rng)
		m := MVD{From: mat.NewAttrSet(0), To: mat.NewAttrSet(1)}
		if !m.HoldsIn(tab) {
			t.Fatalf("trial %d: planted MVD fails on\n%s", trial, tab)
		}
		// The symmetric complement MVD also holds (a ↠ c).
		mc := MVD{From: mat.NewAttrSet(0), To: mat.NewAttrSet(2)}
		if !mc.HoldsIn(tab) {
			t.Fatalf("trial %d: complement MVD fails", trial)
		}
	}
}

func TestMVDComplementRule(t *testing.T) {
	// X ↠ Y iff X ↠ Z (complementation): check on random tables.
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 200; trial++ {
		tab := mat.New("r", mat.Schema{mat.F("a", 4), mat.F("b", 4), mat.F("c", 4)})
		rows := 1 + rng.Intn(10)
		seen := map[[3]uint64]bool{}
		for i := 0; i < rows; i++ {
			k := [3]uint64{uint64(rng.Intn(3)), uint64(rng.Intn(3)), uint64(rng.Intn(3))}
			if seen[k] {
				continue
			}
			seen[k] = true
			tab.Add(mat.Exact(k[0], 4), mat.Exact(k[1], 4), mat.Exact(k[2], 4))
		}
		my := MVD{From: mat.NewAttrSet(0), To: mat.NewAttrSet(1)}
		mz := MVD{From: mat.NewAttrSet(0), To: mat.NewAttrSet(2)}
		if my.HoldsIn(tab) != mz.HoldsIn(tab) {
			t.Fatalf("trial %d: complementation violated on\n%s", trial, tab)
		}
	}
}

func TestMVDJoinDefinition(t *testing.T) {
	// Direct check of Fagin's definition: X ↠ Y iff joining the two
	// projections on X reproduces exactly the original row set.
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 200; trial++ {
		tab := mat.New("r", mat.Schema{mat.F("a", 4), mat.F("b", 4), mat.F("c", 4)})
		seen := map[[3]uint64]bool{}
		for i := 0; i < 1+rng.Intn(12); i++ {
			k := [3]uint64{uint64(rng.Intn(3)), uint64(rng.Intn(3)), uint64(rng.Intn(3))}
			if seen[k] {
				continue
			}
			seen[k] = true
			tab.Add(mat.Exact(k[0], 4), mat.Exact(k[1], 4), mat.Exact(k[2], 4))
		}
		m := MVD{From: mat.NewAttrSet(0), To: mat.NewAttrSet(1)}
		got := m.HoldsIn(tab)
		want := joinReproduces(tab)
		if got != want {
			t.Fatalf("trial %d: HoldsIn=%v, join definition=%v on\n%s", trial, got, want, tab)
		}
	}
}

// joinReproduces computes π_{a,b} ⋈ π_{a,c} and compares to the table.
func joinReproduces(t *mat.Table) bool {
	type pair struct{ x, v uint64 }
	ab := map[pair]bool{}
	ac := map[pair]bool{}
	orig := map[[3]uint64]bool{}
	for _, e := range t.Entries {
		ab[pair{e[0].Bits, e[1].Bits}] = true
		ac[pair{e[0].Bits, e[2].Bits}] = true
		orig[[3]uint64{e[0].Bits, e[1].Bits, e[2].Bits}] = true
	}
	count := 0
	for p1 := range ab {
		for p2 := range ac {
			if p1.x != p2.x {
				continue
			}
			count++
			if !orig[[3]uint64{p1.x, p1.v, p2.v}] {
				return false
			}
		}
	}
	return count == len(orig)
}

func TestMineMVDsMinimality(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 30; trial++ {
		tab := crossTable(rng)
		fds := Mine(tab)
		for _, m := range MineMVDs(tab, fds) {
			if !m.HoldsIn(tab) {
				t.Fatalf("trial %d: mined MVD does not hold", trial)
			}
			for _, b := range m.From.Members() {
				if (MVD{From: m.From.Remove(b), To: m.To}).HoldsIn(tab) {
					t.Fatalf("trial %d: MVD %v LHS not minimal", trial, m)
				}
			}
		}
	}
}

func TestMVDFormat(t *testing.T) {
	sch := mat.Schema{mat.F("a", 8), mat.F("b", 8)}
	if got := (MVD{From: mat.NewAttrSet(0), To: mat.NewAttrSet(1)}).Format(sch); got != "{a} ->> {b}" {
		t.Errorf("Format = %q", got)
	}
}
