package fd

import (
	"manorm/internal/mat"
)

// Closure computes the attribute-set closure X⁺ under the given FDs: the
// largest set of attributes functionally determined by X.
func Closure(x mat.AttrSet, fds []FD) mat.AttrSet {
	closure := x
	for changed := true; changed; {
		changed = false
		for _, f := range fds {
			if f.From.SubsetOf(closure) && !f.To.SubsetOf(closure) {
				closure = closure.Union(f.To)
				changed = true
			}
		}
	}
	return closure
}

// Implies reports whether the FD set logically implies f (by the closure
// test: f.To ⊆ Closure(f.From)).
func Implies(fds []FD, f FD) bool {
	return f.To.SubsetOf(Closure(f.From, fds))
}

// Equivalent reports whether two FD sets imply each other.
func Equivalent(a, b []FD) bool {
	for _, f := range a {
		if !Implies(b, f) {
			return false
		}
	}
	for _, f := range b {
		if !Implies(a, f) {
			return false
		}
	}
	return true
}

// MinimalCover computes a canonical (minimal) cover of the FD set:
// singleton right-hand sides, no extraneous LHS attributes, no redundant
// dependencies. The result is deterministic.
func MinimalCover(fds []FD) []FD {
	// 1. Singleton RHS.
	work := SplitRHS(fds)
	Sort(work)

	// 2. Remove extraneous LHS attributes: B ∈ X is extraneous in X→A if
	//    (X\{B})⁺ under the full set still contains A.
	for i := range work {
		f := work[i]
		for _, b := range f.From.Members() {
			reduced := f.From.Remove(b)
			if f.To.SubsetOf(Closure(reduced, work)) {
				f = FD{From: reduced, To: f.To}
				work[i] = f
			}
		}
	}

	// 3. Remove redundant FDs: f is redundant if the rest implies it.
	var out []FD
	for i := range work {
		rest := make([]FD, 0, len(work)-1)
		rest = append(rest, out...)
		rest = append(rest, work[i+1:]...)
		if !Implies(rest, work[i]) {
			out = append(out, work[i])
		}
	}

	// Deduplicate (step 2 may create duplicates that step 3 removes, but
	// keep the output canonical regardless).
	Sort(out)
	dedup := out[:0]
	for i, f := range out {
		if i > 0 && out[i-1] == f {
			continue
		}
		dedup = append(dedup, f)
	}
	return dedup
}

// CandidateKeys enumerates all candidate keys (minimal superkeys) of a
// relation over n attributes with the given FDs: the minimal sets X with
// X⁺ = all attributes. Brute force over the subset lattice by increasing
// size; match-action schemas are small, so this is exact and fast enough.
func CandidateKeys(n int, fds []FD) []mat.AttrSet {
	full := mat.FullSet(n)

	// Every key must contain the attributes that appear in no RHS.
	var inRHS mat.AttrSet
	for _, f := range fds {
		inRHS = inRHS.Union(f.To)
	}
	core := full.Minus(inRHS)

	// If the core alone is a key, it is the only one.
	if Closure(core, fds) == full {
		return []mat.AttrSet{core}
	}

	// Candidates extend the core with subsets of the remaining attributes.
	extra := full.Minus(core).Members()
	subsets := make([]mat.AttrSet, 0, 1<<len(extra))
	for bits := 1; bits < 1<<len(extra); bits++ {
		var s mat.AttrSet
		for i, m := range extra {
			if bits&(1<<i) != 0 {
				s = s.Add(m)
			}
		}
		subsets = append(subsets, s)
	}
	mat.SortAttrSets(subsets)

	var keys []mat.AttrSet
	for _, s := range subsets {
		cand := core.Union(s)
		dominated := false
		for _, k := range keys {
			if k.SubsetOf(cand) {
				dominated = true
				break
			}
		}
		if dominated {
			continue
		}
		if Closure(cand, fds) == full {
			keys = append(keys, cand)
		}
	}
	mat.SortAttrSets(keys)
	return keys
}

// KeysOf mines the table's FDs and returns its candidate keys.
func KeysOf(t *mat.Table) []mat.AttrSet {
	return CandidateKeys(len(t.Schema), Mine(t))
}

// PrimeAttrs returns the set of prime attributes: members of at least one
// candidate key.
func PrimeAttrs(keys []mat.AttrSet) mat.AttrSet {
	var p mat.AttrSet
	for _, k := range keys {
		p = p.Union(k)
	}
	return p
}

// IsSuperkey reports whether x determines every attribute.
func IsSuperkey(x mat.AttrSet, n int, fds []FD) bool {
	return Closure(x, fds) == mat.FullSet(n)
}
