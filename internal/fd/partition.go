package fd

import (
	"fmt"

	"manorm/internal/mat"
)

// partition is a stripped partition of table rows: the equivalence classes
// of rows under equality of some attribute set's projection, with singleton
// classes removed (they carry no FD information). This is the TANE
// representation.
type partition struct {
	// classes holds the non-singleton equivalence classes as row indices.
	classes [][]int
	// size is the total number of rows in the stripped classes (‖π‖).
	size int
}

// errMeasure is TANE's e(π) = ‖π‖ − |π|. Because π_{X∪A} always refines
// π_X, the dependency X→A holds iff e(π_X) == e(π_{X∪A}).
func (p *partition) errMeasure() int { return p.size - len(p.classes) }

// singletonPartition builds the stripped partition of one attribute.
func singletonPartition(t *mat.Table, attr int) *partition {
	groups := make(map[mat.Cell][]int)
	for ri, e := range t.Entries {
		groups[e[attr]] = append(groups[e[attr]], ri)
	}
	p := &partition{}
	// Iterate rows again so class order is deterministic.
	emitted := make(map[mat.Cell]bool)
	for _, e := range t.Entries {
		c := e[attr]
		if emitted[c] {
			continue
		}
		emitted[c] = true
		g := groups[c]
		if len(g) > 1 {
			p.classes = append(p.classes, g)
			p.size += len(g)
		}
	}
	return p
}

// emptyPartition is π_∅: all rows in one class (if more than one row).
func emptyPartition(n int) *partition {
	if n <= 1 {
		return &partition{}
	}
	rows := make([]int, n)
	for i := range rows {
		rows[i] = i
	}
	return &partition{classes: [][]int{rows}, size: n}
}

// product computes the stripped partition π_{X∪Y} from π_X and π_Y using
// the standard linear-time probe-table algorithm.
//
// nRows is the table's row count; the scratch slices are reused across
// calls via the multiplier.
type multiplier struct {
	probe []int // row -> class id in p1 (+1), 0 = unassigned
	tag   []int // row -> class id in result accumulation
}

func newMultiplier(nRows int) *multiplier {
	return &multiplier{probe: make([]int, nRows), tag: make([]int, nRows)}
}

func (m *multiplier) product(p1, p2 *partition) *partition {
	// Mark rows with their class in p1.
	for ci, cls := range p1.classes {
		for _, r := range cls {
			m.probe[r] = ci + 1
		}
	}
	// Intersect every class of p2 against the marking.
	out := &partition{}
	buckets := make(map[int][]int)
	for _, cls := range p2.classes {
		for k := range buckets {
			delete(buckets, k)
		}
		for _, r := range cls {
			if c1 := m.probe[r]; c1 != 0 {
				buckets[c1] = append(buckets[c1], r)
			}
		}
		// Emit non-singleton intersections deterministically by scanning
		// the class rows in order.
		seen := make(map[int]bool)
		for _, r := range cls {
			c1 := m.probe[r]
			if c1 == 0 || seen[c1] {
				continue
			}
			seen[c1] = true
			if g := buckets[c1]; len(g) > 1 {
				cp := make([]int, len(g))
				copy(cp, g)
				out.classes = append(out.classes, cp)
				out.size += len(g)
			}
		}
	}
	// Clear marks.
	for _, cls := range p1.classes {
		for _, r := range cls {
			m.probe[r] = 0
		}
	}
	return out
}

// partitionOf computes π_X directly from the table (used by tests and the
// naive miner; the TANE miner builds partitions incrementally instead).
func partitionOf(t *mat.Table, x mat.AttrSet) *partition {
	if x.Empty() {
		return emptyPartition(len(t.Entries))
	}
	groups := make(map[string][]int)
	order := make([]string, 0)
	for ri, e := range t.Entries {
		k := projKey(e, x)
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], ri)
	}
	p := &partition{}
	for _, k := range order {
		if g := groups[k]; len(g) > 1 {
			p.classes = append(p.classes, g)
			p.size += len(g)
		}
	}
	return p
}

// projKey is the comparable projection of an entry onto an attribute set.
func projKey(e mat.Entry, x mat.AttrSet) string {
	b := make([]byte, 0, 16*x.Len())
	for _, i := range x.Members() {
		b = append(b, fmt.Sprintf("%d/%d;", e[i].Bits, e[i].PLen)...)
	}
	return string(b)
}
