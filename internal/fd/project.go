package fd

import (
	"manorm/internal/mat"
)

// Project computes the projection of an FD set onto an attribute subset S:
// the minimal cover of every dependency X→A with X, A ⊆ S implied by fds.
// This is what a decomposed sub-table inherits from the original table's
// declared dependencies.
//
// The classic algorithm enumerates subsets of S and takes closures; S is a
// sub-schema of a match-action table, so this stays small.
func Project(fds []FD, s mat.AttrSet) []FD {
	var out []FD
	for _, x := range allSubsets(s) {
		cl := Closure(x, fds).Intersect(s).Minus(x)
		if cl.Empty() {
			continue
		}
		out = append(out, FD{From: x, To: cl})
	}
	return MinimalCover(out)
}

// Rename translates an FD set between schemas: attribute index oldIdx in
// the source schema becomes position i in the projected schema, as produced
// by mat.Table.Project (members in ascending order). Dependencies touching
// attributes outside the kept set are dropped.
func Rename(fds []FD, kept mat.AttrSet) []FD {
	members := kept.Members()
	pos := make(map[int]int, len(members))
	for i, m := range members {
		pos[m] = i
	}
	var out []FD
	for _, f := range fds {
		if !f.From.SubsetOf(kept) || !f.To.SubsetOf(kept) {
			continue
		}
		var from, to mat.AttrSet
		for _, m := range f.From.Members() {
			from = from.Add(pos[m])
		}
		for _, m := range f.To.Members() {
			to = to.Add(pos[m])
		}
		out = append(out, FD{From: from, To: to})
	}
	Sort(out)
	return out
}
