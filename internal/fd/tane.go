package fd

import (
	"manorm/internal/mat"
)

// Mine finds all minimal nontrivial functional dependencies X→A that hold
// in the table, using the TANE levelwise algorithm over stripped partitions
// (Huhtala et al.). Minimal means no proper subset of X determines A. The
// result is deterministic (sorted).
//
// Both match fields and action attributes participate, matching the paper's
// treatment of attributes (§3: keys may contain the out action).
func Mine(t *mat.Table) []FD {
	n := len(t.Schema)
	if n == 0 || n > 64 {
		return nil
	}
	mult := newMultiplier(len(t.Entries))

	// Level state: candidate rhs+ sets and partitions per attribute set.
	type node struct {
		parts *partition
		cplus mat.AttrSet
	}
	full := mat.FullSet(n)
	var fds []FD

	// π_∅ and C+(∅) = R.
	prevCplus := map[mat.AttrSet]mat.AttrSet{0: full}
	prevErr := map[mat.AttrSet]int{0: emptyPartition(len(t.Entries)).errMeasure()}

	// Level 1: singletons. A level is the list of its attr sets plus a map
	// for subset lookups.
	level := make([]mat.AttrSet, 0, n)
	nodes := make(map[mat.AttrSet]*node, n)
	for a := 0; a < n; a++ {
		x := mat.NewAttrSet(a)
		level = append(level, x)
		nodes[x] = &node{parts: singletonPartition(t, a)}
	}

	for len(level) > 0 {
		// Compute C+(X) = ∩_{B∈X} C+(X\{B}).
		for _, x := range level {
			c := full
			for _, b := range x.Members() {
				// Pruned subsets inherit an empty candidate set.
				c = c.Intersect(prevCplus[x.Remove(b)])
			}
			nodes[x].cplus = c
		}

		// Compute dependencies: for A ∈ X ∩ C+(X), test X\{A} → A via
		// e(π_{X\{A}}) == e(π_X).
		for _, x := range level {
			nd := nodes[x]
			for _, a := range x.Intersect(nd.cplus).Members() {
				lhs := x.Remove(a)
				lerr, ok := prevErr[lhs]
				if !ok {
					lerr = partitionOf(t, lhs).errMeasure()
				}
				if lerr == nd.parts.errMeasure() {
					fds = append(fds, FD{From: lhs, To: mat.NewAttrSet(a)})
					nd.cplus = nd.cplus.Remove(a)
					// Remove all B ∈ R\X from C+(X): any FD X'→B with
					// X ⊆ X' is non-minimal because lhs→A makes X
					// redundant context for B.
					for _, b := range full.Minus(x).Members() {
						nd.cplus = nd.cplus.Remove(b)
					}
				}
			}
		}

		// Prune nodes with empty C+ and generate the next level by
		// prefix join: X∪Y for X, Y sharing all but the last attribute,
		// keeping only sets whose every l-subset survived.
		survivors := level[:0]
		for _, x := range level {
			if !nodes[x].cplus.Empty() {
				survivors = append(survivors, x)
			}
		}
		inLevel := make(map[mat.AttrSet]bool, len(survivors))
		for _, x := range survivors {
			inLevel[x] = true
		}

		nextCplus := make(map[mat.AttrSet]mat.AttrSet, len(survivors))
		nextErr := make(map[mat.AttrSet]int, len(survivors))
		for _, x := range survivors {
			nextCplus[x] = nodes[x].cplus
			nextErr[x] = nodes[x].parts.errMeasure()
		}

		var nextLevel []mat.AttrSet
		nextNodes := make(map[mat.AttrSet]*node)
		for i := 0; i < len(survivors); i++ {
			for j := i + 1; j < len(survivors); j++ {
				x, y := survivors[i], survivors[j]
				// Prefix join: differ in exactly one attribute each.
				u := x.Union(y)
				if u.Len() != x.Len()+1 {
					continue
				}
				if _, dup := nextNodes[u]; dup {
					continue
				}
				// All l-subsets must be in the surviving level.
				ok := true
				for _, b := range u.Members() {
					if !inLevel[u.Remove(b)] {
						ok = false
						break
					}
				}
				if !ok {
					continue
				}
				nextNodes[u] = &node{parts: mult.product(nodes[x].parts, nodes[y].parts)}
				nextLevel = append(nextLevel, u)
			}
		}

		prevCplus = nextCplus
		prevErr = nextErr
		level = nextLevel
		nodes = nextNodes
	}

	Sort(fds)
	return fds
}

// MineNaive is the reference miner: brute-force minimal-FD search by
// definition. Exponential in the attribute count; used to validate Mine in
// tests and acceptable for the small schemas of real match-action programs.
func MineNaive(t *mat.Table) []FD {
	n := len(t.Schema)
	if n == 0 || n > 20 {
		return nil
	}
	var fds []FD
	full := mat.FullSet(n)
	for a := 0; a < n; a++ {
		rest := full.Remove(a)
		target := mat.NewAttrSet(a)
		// Minimal LHS sets found so far for this attribute.
		var minimal []mat.AttrSet
		// Enumerate subsets of rest by increasing size.
		subsets := allSubsets(rest)
		mat.SortAttrSets(subsets)
		for _, x := range subsets {
			dominated := false
			for _, m := range minimal {
				if m.SubsetOf(x) {
					dominated = true
					break
				}
			}
			if dominated {
				continue
			}
			if t.DetermineFn(x, target) {
				minimal = append(minimal, x)
				fds = append(fds, FD{From: x, To: target})
			}
		}
	}
	Sort(fds)
	return fds
}

// allSubsets enumerates every subset of s (including ∅).
func allSubsets(s mat.AttrSet) []mat.AttrSet {
	members := s.Members()
	out := make([]mat.AttrSet, 0, 1<<len(members))
	for bits := 0; bits < 1<<len(members); bits++ {
		var sub mat.AttrSet
		for i, m := range members {
			if bits&(1<<i) != 0 {
				sub = sub.Add(m)
			}
		}
		out = append(out, sub)
	}
	return out
}
