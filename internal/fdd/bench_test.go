package fdd

import (
	"testing"

	"manorm/internal/usecases"
)

// Fusion cost for the paper's evaluation-scale gateway/load-balancer
// (20 services × 8 backends) across the join abstractions: run with
// `go test -bench . ./internal/fdd` to see rules-per-compile and
// compile latency per representation.
func BenchmarkFuse(b *testing.B) {
	g := usecases.Generate(20, 8, 42)
	for _, rep := range []usecases.Representation{
		usecases.RepUniversal, usecases.RepGoto, usecases.RepMetadata, usecases.RepRematch,
	} {
		p, err := g.Build(rep)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(string(rep), func(b *testing.B) {
			var rules int
			for i := 0; i < b.N; i++ {
				prog, err := Fuse(p)
				if err != nil {
					b.Fatal(err)
				}
				rules = len(prog.Rules)
			}
			b.ReportMetric(float64(rules), "rules")
		})
	}
}

// Lowering cost of the fused match side into a table (the classifier
// build happens in dataplane; this isolates path enumeration + lowering).
func BenchmarkMatchTable(b *testing.B) {
	g := usecases.Generate(20, 8, 42)
	p, err := g.Goto()
	if err != nil {
		b.Fatal(err)
	}
	prog, err := Fuse(p)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if t := prog.MatchTable(); len(t.Entries) != len(prog.Rules) {
			b.Fatal("lowering dropped rules")
		}
	}
}
