// Package fdd fuses a multi-table match-action pipeline into a single
// first-match rule list — the compile-time counterpart of the paper's
// join abstractions, in the style of the NetKAT compiler's forwarding
// decision diagrams (with MatchKAT supplying the algebraic footing that
// the transformation is semantics-preserving).
//
// Fusion symbolically executes every root-to-exit path of the pipeline:
// table-to-table joins become path constraints, metadata plumbing is
// resolved statically (register values along a path are compile-time
// constants), and rematch joins on rewritten fields are resolved against
// the written constant — deliberately reproducing *datapath* semantics,
// including the paper's Fig. 3 set-field/rematch caveat, so a fused
// program is equivalent to interpreting the pipeline, not to the
// relational reading the caveat diverges from.
//
// The output is ordered: rule r matches only packets matched by no rule
// before it. Lowering therefore requires a first-match classifier
// (classifier.ForceFDD); re-sorting the rules by specificity is unsound.
package fdd

import (
	"errors"
	"fmt"
	"sort"

	"manorm/internal/mat"
	"manorm/internal/packet"
)

// ErrUnfusable marks pipelines fusion declines: goto cycles, inconsistent
// field widths across stages, matches on a TTL made unknown by dec_ttl,
// or path explosion past MaxRules. Callers treat it as "interpret
// instead", not as a program error.
var ErrUnfusable = errors.New("fdd: pipeline not fusable")

// MaxRules bounds the fused rule count (path explosion guard).
const MaxRules = 1 << 16

// IsUnfusable reports whether an error means "this pipeline cannot be
// fused" (as opposed to an invalid pipeline).
func IsUnfusable(err error) bool { return errors.Is(err, ErrUnfusable) }

// Col is one match column of the fused program: a packet field consulted
// by at least one stage.
type Col struct {
	Name  string
	Width uint8
}

// Act is one logical action along a fused path, by source attribute name
// ("out", "mod_ttl", metadata names, field rewrites).
type Act struct {
	Attr  string
	Value uint64
}

// Step is one logical stage visit on a fused path — enough to
// reconstruct the interpreted pipeline's per-packet witness from the
// single fused lookup.
type Step struct {
	Stage int
	Table string
	Entry int // matched entry, -1 on a miss visit
	Join  string
	Acts  []Act
}

// Rule is one fused path: the accumulated header constraint, the
// concatenated actions, the verdict, and the logical trace.
type Rule struct {
	Match []mat.Cell // one cell per Program.Cols
	Acts  []Act
	Drop  bool
	Steps []Step
}

// Tables returns the logical pipeline depth of the path (stage visits,
// misses included) — what the interpreted Verdict.Tables reports.
func (r *Rule) Tables() int { return len(r.Steps) }

// Program is a fused pipeline: ordered rules over shared match columns.
type Program struct {
	Name  string
	Cols  []Col
	Rules []Rule
}

// MatchTable lowers the match side into a mat.Table (entry order = rule
// order) for the first-match classifier template.
func (p *Program) MatchTable() *mat.Table {
	schema := make(mat.Schema, 0, len(p.Cols)+1)
	for _, c := range p.Cols {
		schema = append(schema, mat.F(c.Name, c.Width))
	}
	schema = append(schema, mat.A("out", 16)) // placeholder; actions live in Rules
	t := mat.New(p.Name+"+fdd", schema)
	for _, r := range p.Rules {
		cells := make([]mat.Cell, 0, len(schema))
		cells = append(cells, r.Match...)
		cells = append(cells, mat.Exact(0, 16))
		t.Add(cells...)
	}
	return t
}

// fuser carries fusion state across the path enumeration.
type fuser struct {
	p      *mat.Pipeline
	cols   []Col
	colIdx map[string]int
	rules  []Rule
}

// pathState is the symbolic machine state along one path. Cloned on every
// branch; maps hold only names actually written.
type pathState struct {
	match    []mat.Cell        // per fused column, constraint on the ORIGINAL header
	written  map[string]uint64 // packet fields rewritten on the path (current value)
	ttlDirty bool              // dec_ttl applied with unknown TTL
	meta     map[string]uint64 // metadata registers (absent = 0)
	acts     []Act
	steps    []Step
}

func (st *pathState) clone() *pathState {
	n := &pathState{
		match:    append([]mat.Cell(nil), st.match...),
		ttlDirty: st.ttlDirty,
		acts:     st.acts[:len(st.acts):len(st.acts)],
		steps:    st.steps[:len(st.steps):len(st.steps)],
	}
	if len(st.written) > 0 {
		n.written = make(map[string]uint64, len(st.written))
		for k, v := range st.written {
			n.written[k] = v
		}
	}
	if len(st.meta) > 0 {
		n.meta = make(map[string]uint64, len(st.meta))
		for k, v := range st.meta {
			n.meta[k] = v
		}
	}
	return n
}

// Fuse compiles the pipeline into a fused program by enumerating its
// paths. The pipeline itself is not modified; its Fused hint is ignored
// here (the caller already decided to fuse).
func Fuse(p *mat.Pipeline) (*Program, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	f := &fuser{p: p, colIdx: make(map[string]int)}
	for _, stg := range p.Stages {
		sch := stg.Table.Schema
		for _, fi := range sch.Fields() {
			at := sch[fi]
			if mat.IsLinkAttr(at.Name) {
				continue
			}
			if ci, ok := f.colIdx[at.Name]; ok {
				if f.cols[ci].Width != at.Width {
					return nil, fmt.Errorf("%w: field %s has widths %d and %d across stages",
						ErrUnfusable, at.Name, f.cols[ci].Width, at.Width)
				}
				continue
			}
			f.colIdx[at.Name] = len(f.cols)
			f.cols = append(f.cols, Col{Name: at.Name, Width: at.Width})
		}
	}
	st := &pathState{match: make([]mat.Cell, len(f.cols))}
	if err := f.fuse(p.Start, st, 0); err != nil {
		return nil, err
	}
	return &Program{Name: p.Name, Cols: f.cols, Rules: f.rules}, nil
}

// emit appends one finished path as a rule.
func (f *fuser) emit(st *pathState, drop bool) error {
	if len(f.rules) >= MaxRules {
		return fmt.Errorf("%w: more than %d fused rules", ErrUnfusable, MaxRules)
	}
	f.rules = append(f.rules, Rule{
		Match: append([]mat.Cell(nil), st.match...),
		Acts:  st.acts,
		Drop:  drop,
		Steps: st.steps,
	})
	return nil
}

// fuse enumerates the paths of the sub-pipeline rooted at stage under the
// symbolic state st, emitting one rule per path in first-match order:
// per stage, entry paths most-specific-first (the classifiers' resolution
// order), then the miss continuation. Every packet satisfying st's
// constraint is covered by exactly the first emitted rule it matches,
// which is the rule of the path the interpreter would take.
func (f *fuser) fuse(stage int, st *pathState, visits int) error {
	if stage < 0 {
		return f.emit(st, false)
	}
	if visits > len(f.p.Stages) {
		return fmt.Errorf("%w: goto cycle through stage %d", ErrUnfusable, stage)
	}
	stg := f.p.Stages[stage]
	t := stg.Table
	sch := t.Schema
	fields := sch.Fields()
	gotoIdx := sch.Index(mat.GotoAttr)

	// Entry resolution order: total significant bits descending, entry
	// index ascending — the shared convention of every classifier template
	// and the relational evaluator.
	order := make([]int, len(t.Entries))
	for i := range order {
		order[i] = i
	}
	prio := func(e mat.Entry) int {
		n := 0
		for _, fi := range fields {
			n += int(e[fi].PLen)
		}
		return n
	}
	sort.SliceStable(order, func(a, b int) bool { return prio(t.Entries[order[a]]) > prio(t.Entries[order[b]]) })

	covered := false // some feasible entry matches st's whole region
	for _, ei := range order {
		e := t.Entries[ei]
		st2, full, feasible, err := f.intersect(st, sch, fields, e)
		if err != nil {
			return err
		}
		if !feasible {
			continue
		}
		covered = covered || full

		// Apply the entry's actions to the symbolic state.
		g := -1
		setsMeta := false
		var stepActs []Act
		for i, at := range sch {
			if at.Kind != mat.Action {
				continue
			}
			v := e[i].Bits
			switch {
			case i == gotoIdx:
				g = int(v)
			case at.Name == "out":
				stepActs = append(stepActs, Act{Attr: "out", Value: v})
			case at.Name == "mod_ttl":
				stepActs = append(stepActs, Act{Attr: "mod_ttl"})
				if w, ok := st2.written[packet.FieldTTL]; ok {
					if w > 0 {
						st2.written[packet.FieldTTL] = w - 1
					}
				} else {
					st2.ttlDirty = true
				}
			case mat.IsLinkAttr(at.Name):
				if st2.meta == nil {
					st2.meta = make(map[string]uint64, 2)
				}
				st2.meta[at.Name] = v
				setsMeta = true
				stepActs = append(stepActs, Act{Attr: at.Name, Value: v})
			default:
				fld := packet.ActionField(at.Name)
				if w := packet.FieldWidth(fld); w > 0 {
					if st2.written == nil {
						st2.written = make(map[string]uint64, 2)
					}
					st2.written[fld] = v & ((uint64(1) << w) - 1)
					if fld == packet.FieldTTL {
						st2.ttlDirty = false
					}
				}
				stepActs = append(stepActs, Act{Attr: at.Name, Value: v})
			}
		}
		next := stg.Next
		if g >= 0 {
			next = g
		}
		st2.acts = append(st2.acts, stepActs...)
		st2.steps = append(st2.steps, Step{
			Stage: stage, Table: t.Name, Entry: ei,
			Join: joinName(g, setsMeta, stg.Next), Acts: stepActs,
		})
		if err := f.fuse(next, st2, visits+1); err != nil {
			return err
		}
	}

	// Miss continuation, unless a feasible entry already covers the whole
	// region (then the miss path is statically unreachable).
	if covered {
		return nil
	}
	st2 := st.clone()
	if stg.MissDrop {
		st2.steps = append(st2.steps, Step{Stage: stage, Table: t.Name, Entry: -1, Join: "drop"})
		return f.emit(st2, true)
	}
	st2.steps = append(st2.steps, Step{
		Stage: stage, Table: t.Name, Entry: -1, Join: joinName(-1, false, stg.Next),
	})
	return f.fuse(stg.Next, st2, visits+1)
}

// intersect refines st's constraint with one entry's match row. Metadata
// columns and columns over fields rewritten on the path resolve
// statically — the latter against the written constant, which is exactly
// what a datapath re-matching rewritten headers does (the Fig. 3 caveat).
// Returns the refined state (nil when infeasible), whether the entry
// covers st's entire region, and feasibility.
func (f *fuser) intersect(st *pathState, sch mat.Schema, fields []int, e mat.Entry) (*pathState, bool, bool, error) {
	full := true
	// First pass: feasibility without allocating.
	for _, fi := range fields {
		at := sch[fi]
		cell := e[fi]
		if mat.IsLinkAttr(at.Name) {
			if !cell.Matches(st.meta[at.Name], at.Width) {
				return nil, false, false, nil
			}
			continue
		}
		if wv, ok := st.written[at.Name]; ok {
			if !cell.Matches(wv, at.Width) {
				return nil, false, false, nil
			}
			continue
		}
		if at.Name == packet.FieldTTL && st.ttlDirty && !cell.IsAny() {
			return nil, false, false, fmt.Errorf("%w: match on %s after dec_ttl", ErrUnfusable, at.Name)
		}
		prev := st.match[f.colIdx[at.Name]]
		if !prev.Overlaps(cell, at.Width) {
			return nil, false, false, nil
		}
		if !cell.Covers(prev, at.Width) {
			full = false
		}
	}
	st2 := st.clone()
	for _, fi := range fields {
		at := sch[fi]
		if mat.IsLinkAttr(at.Name) {
			continue
		}
		if _, ok := st.written[at.Name]; ok {
			continue
		}
		ci := f.colIdx[at.Name]
		cell := e[fi].Canonical(at.Width)
		if cell.PLen > st2.match[ci].PLen {
			st2.match[ci] = cell
		}
	}
	return st2, full, true, nil
}

// joinName mirrors the interpreted witness classification of the
// mechanism carrying execution onward (dataplane.joinName).
func joinName(gotoTarget int, setsMeta bool, next int) string {
	switch {
	case gotoTarget >= 0:
		return "goto"
	case next < 0:
		return "terminal"
	case setsMeta:
		return "metadata"
	default:
		return "rematch"
	}
}
