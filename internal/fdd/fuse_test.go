package fdd

import (
	"math/rand"
	"testing"

	"manorm/internal/mat"
	"manorm/internal/packet"
	"manorm/internal/usecases"
)

// refOutcome is the reference interpreter's result on one packet record.
type refOutcome struct {
	drop   bool
	port   uint64
	hasOut bool
	tables int
}

// refInterpret executes the pipeline over a header record with *datapath*
// semantics: per table, the most-specific matching entry (entry order on
// ties) wins; rewrites update the record so later stages re-match the
// rewritten values; metadata registers start at zero.
func refInterpret(t *testing.T, p *mat.Pipeline, rec map[string]uint64) refOutcome {
	t.Helper()
	meta := map[string]uint64{}
	var out refOutcome
	cur := p.Start
	for steps := 0; cur >= 0; steps++ {
		if steps > len(p.Stages) {
			t.Fatalf("reference interpreter: goto cycle")
		}
		stg := p.Stages[cur]
		sch := stg.Table.Schema
		out.tables++
		best, bestPrio := -1, -1
		for ei, e := range stg.Table.Entries {
			hit, prio := true, 0
			for _, fi := range sch.Fields() {
				at := sch[fi]
				v := rec[at.Name]
				if mat.IsLinkAttr(at.Name) {
					v = meta[at.Name]
				}
				if !e[fi].Matches(v, at.Width) {
					hit = false
					break
				}
				prio += int(e[fi].PLen)
			}
			if hit && prio > bestPrio {
				best, bestPrio = ei, prio
			}
		}
		if best < 0 {
			if stg.MissDrop {
				out.drop = true
				return out
			}
			cur = stg.Next
			continue
		}
		e := stg.Table.Entries[best]
		g := -1
		for i, at := range sch {
			if at.Kind != mat.Action {
				continue
			}
			switch {
			case at.Name == mat.GotoAttr:
				g = int(e[i].Bits)
			case at.Name == "out":
				out.port, out.hasOut = e[i].Bits, true
			case at.Name == "mod_ttl":
				if v := rec[packet.FieldTTL]; v > 0 {
					rec[packet.FieldTTL] = v - 1
				}
			case mat.IsLinkAttr(at.Name):
				meta[at.Name] = e[i].Bits
			default:
				fld := packet.ActionField(at.Name)
				w := packet.FieldWidth(fld)
				if w == 0 {
					w = 64
				}
				rec[fld] = e[i].Bits & ((uint64(1) << w) - 1)
			}
		}
		if g >= 0 {
			cur = g
		} else {
			cur = stg.Next
		}
	}
	return out
}

// evalFused finds the first fused rule matching the ORIGINAL header record
// and replays its action list.
func evalFused(prog *Program, rec map[string]uint64) refOutcome {
	scratch := map[string]uint64{}
	for k, v := range rec {
		scratch[k] = v
	}
	for _, r := range prog.Rules {
		hit := true
		for i, c := range prog.Cols {
			if !r.Match[i].Matches(rec[c.Name], c.Width) {
				hit = false
				break
			}
		}
		if !hit {
			continue
		}
		out := refOutcome{drop: r.Drop, tables: r.Tables()}
		for _, a := range r.Acts {
			switch a.Attr {
			case "out":
				out.port, out.hasOut = a.Value, true
			case "mod_ttl":
				if v := scratch[packet.FieldTTL]; v > 0 {
					scratch[packet.FieldTTL] = v - 1
				}
			}
		}
		return out
	}
	return refOutcome{drop: true, tables: -1} // total rule lists never miss
}

// gwlbRecord draws a random header record biased toward the configured
// VIP/port space so both hit and miss paths are exercised.
func gwlbRecord(rng *rand.Rand, g *usecases.GwLB) map[string]uint64 {
	rec := map[string]uint64{
		packet.FieldIPSrc:  rng.Uint64() & 0xFFFFFFFF,
		packet.FieldIPDst:  rng.Uint64() & 0xFFFFFFFF,
		packet.FieldTCPDst: rng.Uint64() & 0xFFFF,
		packet.FieldTTL:    64,
	}
	if rng.Intn(4) != 0 {
		svc := g.Services[rng.Intn(len(g.Services))]
		rec[packet.FieldIPDst] = uint64(svc.VIP)
		if rng.Intn(8) != 0 {
			rec[packet.FieldTCPDst] = uint64(svc.Port)
		}
	}
	return rec
}

// Fusing the gateway/load-balancer decompositions must preserve verdicts
// and the logical table count against the interpreted pipeline, for every
// join abstraction.
func TestFuseGwLBEquivalence(t *testing.T) {
	g := usecases.Generate(8, 4, 11)
	rng := rand.New(rand.NewSource(5))
	for _, rep := range []usecases.Representation{
		usecases.RepUniversal, usecases.RepGoto, usecases.RepMetadata, usecases.RepRematch,
	} {
		p, err := g.Build(rep)
		if err != nil {
			t.Fatalf("%s: %v", rep, err)
		}
		prog, err := Fuse(p)
		if err != nil {
			t.Fatalf("%s: Fuse: %v", rep, err)
		}
		if len(prog.Rules) == 0 {
			t.Fatalf("%s: no fused rules", rep)
		}
		for trial := 0; trial < 500; trial++ {
			rec := gwlbRecord(rng, g)
			want := refInterpret(t, p, cloneRec(rec))
			got := evalFused(prog, rec)
			if got.drop != want.drop || (!want.drop && got.port != want.port) {
				t.Fatalf("%s trial %d: fused=%+v interpreted=%+v rec=%v", rep, trial, got, want, rec)
			}
			if got.tables != want.tables {
				t.Fatalf("%s trial %d: fused depth %d, interpreted %d", rep, trial, got.tables, want.tables)
			}
		}
	}
}

func cloneRec(rec map[string]uint64) map[string]uint64 {
	out := make(map[string]uint64, len(rec))
	for k, v := range rec {
		out[k] = v
	}
	return out
}

// A metadata join must be resolved statically: the fused program may not
// keep any metadata column.
func TestFuseResolvesMetadataStatically(t *testing.T) {
	g := usecases.Generate(4, 2, 3)
	p, err := g.Metadata()
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Fuse(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range prog.Cols {
		if mat.IsLinkAttr(c.Name) {
			t.Fatalf("metadata column %q survived fusion", c.Name)
		}
	}
}

// The set-field/rematch interaction must take datapath semantics: a
// downstream match on a rewritten field is resolved against the written
// constant. Stage 0 rewrites vlan to 5; stage 1 matches vlan=7. No packet
// may reach stage 1's entry, whatever its original vlan.
func TestFuseRematchUsesWrittenValue(t *testing.T) {
	t0 := mat.New("rewrite", mat.Schema{mat.F(packet.FieldVLAN, 12), mat.A("mod_vlan", 12)})
	t0.Add(mat.Any(), mat.Exact(5, 12))
	t1 := mat.New("rematch", mat.Schema{mat.F(packet.FieldVLAN, 12), mat.A("out", 16)})
	t1.Add(mat.Exact(7, 12), mat.Exact(1, 16))
	p := &mat.Pipeline{Name: "hazard", Stages: []mat.Stage{
		{Table: t0, Next: 1, MissDrop: true},
		{Table: t1, Next: -1, MissDrop: true},
	}}
	prog, err := Fuse(p)
	if err != nil {
		t.Fatal(err)
	}
	for vlan := uint64(0); vlan < 16; vlan++ {
		got := evalFused(prog, map[string]uint64{packet.FieldVLAN: vlan})
		if !got.drop {
			t.Fatalf("vlan=%d: fused must drop (stage 1 re-matches the rewritten value 5), got %+v", vlan, got)
		}
	}
	// The written value 5 itself reaching a vlan=5 matcher must pass.
	t1.Entries = nil
	t1.Add(mat.Exact(5, 12), mat.Exact(9, 16))
	prog, err = Fuse(p)
	if err != nil {
		t.Fatal(err)
	}
	got := evalFused(prog, map[string]uint64{packet.FieldVLAN: 0})
	if got.drop || got.port != 9 {
		t.Fatalf("rewritten vlan=5 must match the vlan=5 entry: %+v", got)
	}
}

// dec_ttl followed by a downstream TTL match is unfusable (the decremented
// value is not a compile-time constant) and must be declined, not fused
// wrongly.
func TestFuseDeclinesTTLMatchAfterDec(t *testing.T) {
	t0 := mat.New("dec", mat.Schema{mat.F(packet.FieldIPDst, 32), mat.A("mod_ttl", 8)})
	t0.Add(mat.Any(), mat.Exact(0, 8))
	t1 := mat.New("ttl", mat.Schema{mat.F(packet.FieldTTL, 8), mat.A("out", 16)})
	t1.Add(mat.Exact(63, 8), mat.Exact(1, 16))
	p := &mat.Pipeline{Name: "ttl-hazard", Stages: []mat.Stage{
		{Table: t0, Next: 1, MissDrop: true},
		{Table: t1, Next: -1, MissDrop: true},
	}}
	if _, err := Fuse(p); err == nil {
		t.Fatal("expected ErrUnfusable")
	} else if !IsUnfusable(err) {
		t.Fatalf("want ErrUnfusable, got %v", err)
	}
}

// Goto cycles must be declined rather than enumerated forever.
func TestFuseDeclinesCycle(t *testing.T) {
	t0 := mat.New("loop", mat.Schema{mat.F(packet.FieldVLAN, 12), mat.A(mat.GotoAttr, 16)})
	t0.Add(mat.Any(), mat.Exact(0, 16))
	p := &mat.Pipeline{Name: "cycle", Stages: []mat.Stage{{Table: t0, Next: -1, MissDrop: true}}}
	if _, err := Fuse(p); err == nil || !IsUnfusable(err) {
		t.Fatalf("want ErrUnfusable, got %v", err)
	}
}

// Fused rule lists are total: every record matches some rule.
func TestFuseTotality(t *testing.T) {
	g := usecases.Generate(6, 3, 9)
	rng := rand.New(rand.NewSource(13))
	for _, rep := range []usecases.Representation{usecases.RepGoto, usecases.RepMetadata, usecases.RepRematch} {
		p, err := g.Build(rep)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := Fuse(p)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 300; trial++ {
			rec := map[string]uint64{
				packet.FieldIPSrc:  rng.Uint64() & 0xFFFFFFFF,
				packet.FieldIPDst:  rng.Uint64() & 0xFFFFFFFF,
				packet.FieldTCPDst: rng.Uint64() & 0xFFFF,
			}
			if got := evalFused(prog, rec); got.tables < 0 {
				t.Fatalf("%s: record %v matched no fused rule", rep, rec)
			}
		}
	}
}
