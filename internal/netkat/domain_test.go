package netkat

import (
	"testing"

	"manorm/internal/mat"
)

// TestDomainOfPipelines checks that the exported domain constructor
// covers every field of every stage of every pipeline, matching what
// EquivalentPipelines enumerates internally.
func TestDomainOfPipelines(t *testing.T) {
	a := mat.New("a", mat.Schema{mat.F("ip_dst", 8), mat.A("out", 8)})
	a.Add(mat.Exact(1, 8), mat.Exact(1, 8))
	b := mat.New("b", mat.Schema{mat.F("tcp_dst", 8), mat.A("out", 8)})
	b.Add(mat.Exact(2, 8), mat.Exact(2, 8))

	dom := DomainOfPipelines(mat.SingleTable(a), mat.SingleTable(b))
	if len(dom["ip_dst"]) == 0 || len(dom["tcp_dst"]) == 0 {
		t.Fatalf("domain missing fields: %v", dom)
	}
	if dom.Size() != len(dom["ip_dst"])*len(dom["tcp_dst"]) {
		t.Fatalf("size %d inconsistent with per-field counts %v", dom.Size(), dom)
	}
}
