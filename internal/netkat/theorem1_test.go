package netkat

import (
	"math/rand"
	"strings"
	"testing"

	"manorm/internal/mat"
)

// exactGwlb is an exact-match variant of the gateway table (the theorem's
// setting): client group matched exactly instead of by prefix.
func exactGwlb() *mat.Table {
	t := mat.New("T0", mat.Schema{
		mat.F("grp", 8), mat.F("ip_dst", 32), mat.F("tcp_dst", 16), mat.A("out", 16),
	})
	t.Add(mat.Exact(0, 8), mat.IPv4("192.0.2.1"), mat.Exact(80, 16), mat.Exact(1, 16))
	t.Add(mat.Exact(1, 8), mat.IPv4("192.0.2.1"), mat.Exact(80, 16), mat.Exact(2, 16))
	t.Add(mat.Exact(0, 8), mat.IPv4("192.0.2.2"), mat.Exact(443, 16), mat.Exact(3, 16))
	t.Add(mat.Exact(1, 8), mat.IPv4("192.0.2.2"), mat.Exact(443, 16), mat.Exact(4, 16))
	t.Add(mat.Exact(2, 8), mat.IPv4("192.0.2.2"), mat.Exact(443, 16), mat.Exact(5, 16))
	t.Add(mat.Exact(0, 8), mat.IPv4("192.0.2.3"), mat.Exact(22, 16), mat.Exact(6, 16))
	return t
}

func TestProveDecompositionGwlb(t *testing.T) {
	tab := exactGwlb()
	s := tab.Schema
	steps, err := ProveDecomposition(tab, mat.SetOf(s, "ip_dst"), mat.SetOf(s, "tcp_dst"))
	if err != nil {
		t.Fatal(err)
	}
	// The paper's chain: start + 6 rewrites.
	if len(steps) != 7 {
		t.Fatalf("steps = %d, want 7", len(steps))
	}
	wantAxioms := []string{
		"start", "X -> Y", "BA-Seq-Idem", "BA-Seq-Comm",
		"KA-Plus-Idem", "BA-Contra + KA-Plus-Zero", "KA-Seq-Dist-R",
	}
	for i, want := range wantAxioms {
		if !strings.Contains(steps[i].Axiom, want) {
			t.Errorf("step %d axiom = %q, want ~%q", i, steps[i].Axiom, want)
		}
	}
	// The end of the chain must also equal the start directly, and be a
	// Seq of two sums — the decomposed T_XY ≫ T_XZ shape.
	dom := DomainOf(tab)
	cex, _, err := EquivalentPolicies(steps[0].Policy, steps[len(steps)-1].Policy, dom, 0)
	if err != nil || cex != nil {
		t.Fatalf("chain ends diverge: %v %v", err, cex)
	}
	final, ok := steps[len(steps)-1].Policy.(Seq)
	if !ok || len(final) != 2 {
		t.Fatalf("final policy is not a two-stage sequence: %T", steps[len(steps)-1].Policy)
	}
}

func TestProveDecompositionRandomTables(t *testing.T) {
	// Random exact tables with a planted X→Y: the proof must go through
	// every time.
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 25; trial++ {
		tab := mat.New("r", mat.Schema{
			mat.F("x", 8), mat.F("y", 8), mat.F("z", 8), mat.A("o", 8),
		})
		seen := map[[2]uint64]bool{}
		for i := 0; i < 2+rng.Intn(10); i++ {
			xv := uint64(rng.Intn(4))
			zv := uint64(rng.Intn(4))
			if seen[[2]uint64{xv, zv}] {
				continue
			}
			seen[[2]uint64{xv, zv}] = true
			yv := xv * 7 % 3 // X -> Y
			tab.Add(mat.Exact(xv, 8), mat.Exact(yv, 8), mat.Exact(zv, 8), mat.Exact(uint64(i), 8))
		}
		if len(tab.Entries) < 2 {
			continue
		}
		steps, err := ProveDecomposition(tab, mat.SetOf(tab.Schema, "x"), mat.SetOf(tab.Schema, "y"))
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, tab)
		}
		if len(steps) != 7 {
			t.Fatalf("trial %d: %d steps", trial, len(steps))
		}
	}
}

func TestProveDecompositionRejectsBadInputs(t *testing.T) {
	tab := exactGwlb()
	s := tab.Schema

	// Action attribute in Y.
	if _, err := ProveDecomposition(tab, mat.SetOf(s, "ip_dst"), mat.SetOf(s, "out")); err == nil {
		t.Errorf("action-side dependency accepted")
	}
	// Overlapping X and Y.
	if _, err := ProveDecomposition(tab, mat.SetOf(s, "ip_dst"), mat.SetOf(s, "ip_dst")); err == nil {
		t.Errorf("overlapping X/Y accepted")
	}
	// FD that does not hold.
	if _, err := ProveDecomposition(tab, mat.SetOf(s, "tcp_dst"), mat.SetOf(s, "grp")); err == nil {
		t.Errorf("non-holding dependency accepted")
	}
	// Non-exact predicates.
	pref := mat.New("p", mat.Schema{mat.F("a", 8), mat.F("b", 8), mat.A("o", 8)})
	pref.Add(mat.Prefix(0, 4, 8), mat.Exact(1, 8), mat.Exact(1, 8))
	pref.Add(mat.Prefix(0x10, 4, 8), mat.Exact(1, 8), mat.Exact(2, 8))
	if _, err := ProveDecomposition(pref, mat.SetOf(pref.Schema, "a"), mat.SetOf(pref.Schema, "b")); err == nil {
		t.Errorf("prefix predicates accepted")
	}
	// Order-dependent table.
	dup := exactGwlb()
	e := dup.Entries[0].Clone()
	e[3] = mat.Exact(9, 16)
	dup.Entries = append(dup.Entries, e)
	if _, err := ProveDecomposition(dup, mat.SetOf(s, "ip_dst"), mat.SetOf(s, "tcp_dst")); err == nil {
		t.Errorf("order-dependent table accepted")
	}
}
