// Package netkat implements a restricted NetKAT-style policy language — the
// formalism the paper adopts (§3) — together with a packet-record evaluator
// and a finite-domain equivalence checker.
//
// A policy denotes a function from a packet record to a *set* of packet
// records (NetKAT's semantics): Drop produces the empty set, Id the
// singleton input, a test filters, an assignment rewrites a field, p;q is
// Kleisli sequencing, and p+q is union. Match-action tables compile into
// sums of (tests; assignments) entries; multi-table pipelines compile by
// inlining each goto target (see compile.go).
//
// The paper restricts predicates to exact matches and notes the relaxation
// to wildcards; we support prefix tests directly since the worked examples
// (Fig. 1, Fig. 2) use them.
package netkat

import (
	"fmt"
	"sort"
	"strings"

	"manorm/internal/mat"
)

// Policy is a NetKAT-lite packet-processing policy.
type Policy interface {
	// Eval applies the policy to one input record and returns the set of
	// output records (deduplicated, deterministic order).
	Eval(in mat.Record) []mat.Record
	// String renders the policy in NetKAT-ish concrete syntax.
	String() string
}

// Drop is the 0 policy: it produces no packets.
type Drop struct{}

// Eval returns the empty set.
func (Drop) Eval(mat.Record) []mat.Record { return nil }

// String returns "0".
func (Drop) String() string { return "0" }

// Id is the 1 (skip) policy: it passes the packet through unchanged.
type Id struct{}

// Eval returns the singleton input.
func (Id) Eval(in mat.Record) []mat.Record { return []mat.Record{in.Clone()} }

// String returns "1".
func (Id) String() string { return "1" }

// Test is the predicate f = pattern. With an exact cell this is NetKAT's
// f = n test; a prefix cell generalizes it to a wildcard test. A record
// lacking the field passes only the full-wildcard test.
type Test struct {
	Field string
	Cell  mat.Cell
	Width uint8
}

// Eval filters the packet.
func (t Test) Eval(in mat.Record) []mat.Record {
	v, ok := in[t.Field]
	if !ok {
		if t.Cell.IsAny() {
			return []mat.Record{in.Clone()}
		}
		return nil
	}
	if t.Cell.Matches(v, t.Width) {
		return []mat.Record{in.Clone()}
	}
	return nil
}

// String renders "f=pattern".
func (t Test) String() string { return fmt.Sprintf("%s=%s", t.Field, t.Cell.Format(t.Width)) }

// Assign is the modification f ← n.
type Assign struct {
	Field string
	Value uint64
}

// Eval writes the field.
func (a Assign) Eval(in mat.Record) []mat.Record {
	out := in.Clone()
	out[a.Field] = a.Value
	return []mat.Record{out}
}

// String renders "f<-n".
func (a Assign) String() string { return fmt.Sprintf("%s<-%d", a.Field, a.Value) }

// Seq is sequential composition p1; p2; ...; pn (Id when empty).
type Seq []Policy

// Eval threads the record through each component, flat-mapping over the
// intermediate sets.
func (s Seq) Eval(in mat.Record) []mat.Record {
	cur := []mat.Record{in.Clone()}
	for _, p := range s {
		var next []mat.Record
		for _, r := range cur {
			next = append(next, p.Eval(r)...)
		}
		if len(next) == 0 {
			return nil
		}
		cur = next
	}
	return dedup(cur)
}

// String renders "(p1; p2; ...)".
func (s Seq) String() string {
	if len(s) == 0 {
		return "1"
	}
	parts := make([]string, len(s))
	for i, p := range s {
		parts[i] = p.String()
	}
	return "(" + strings.Join(parts, "; ") + ")"
}

// Plus is parallel composition p1 + p2 + ... + pn (Drop when empty).
type Plus []Policy

// Eval unions the component outputs.
func (p Plus) Eval(in mat.Record) []mat.Record {
	var out []mat.Record
	for _, q := range p {
		out = append(out, q.Eval(in)...)
	}
	return dedup(out)
}

// String renders "(p1 + p2 + ...)".
func (p Plus) String() string {
	if len(p) == 0 {
		return "0"
	}
	parts := make([]string, len(p))
	for i, q := range p {
		parts[i] = q.String()
	}
	return "(" + strings.Join(parts, " + ") + ")"
}

// recordKey produces a canonical comparable rendering of a record.
func recordKey(r mat.Record) string {
	keys := make([]string, 0, len(r))
	for k := range r {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%d;", k, r[k])
	}
	return b.String()
}

// dedup removes duplicate records, keeping a deterministic order.
func dedup(rs []mat.Record) []mat.Record {
	if len(rs) <= 1 {
		return rs
	}
	keyed := make([]struct {
		k string
		r mat.Record
	}, len(rs))
	for i, r := range rs {
		keyed[i] = struct {
			k string
			r mat.Record
		}{recordKey(r), r}
	}
	sort.Slice(keyed, func(i, j int) bool { return keyed[i].k < keyed[j].k })
	out := rs[:0]
	for i, kr := range keyed {
		if i > 0 && keyed[i-1].k == kr.k {
			continue
		}
		out = append(out, kr.r)
	}
	return out
}

// OutputSetEqual reports whether two policy output sets contain exactly the
// same records (order-insensitive; inputs are assumed deduplicated as
// produced by Eval).
func OutputSetEqual(a, b []mat.Record) bool {
	if len(a) != len(b) {
		return false
	}
	ka := make([]string, len(a))
	kb := make([]string, len(b))
	for i := range a {
		ka[i] = recordKey(a[i])
		kb[i] = recordKey(b[i])
	}
	sort.Strings(ka)
	sort.Strings(kb)
	for i := range ka {
		if ka[i] != kb[i] {
			return false
		}
	}
	return true
}

// ObservableOutputs projects each output record onto program-visible
// attributes (dropping pipeline link metadata), then deduplicates.
func ObservableOutputs(rs []mat.Record) []mat.Record {
	out := make([]mat.Record, len(rs))
	for i, r := range rs {
		out[i] = r.Observable()
	}
	return dedup(out)
}
