package netkat

import (
	"fmt"

	"manorm/internal/mat"
)

// This file makes the paper's Theorem 1 proof *executable*: given a 1NF
// exact-match table T over attributes X ∪ Y ∪ Z with a functional
// dependency X → Y (X, Y header fields), it constructs the chain of
// NetKAT policies the proof walks through —
//
//	T = Σᵢ xᵢ; yᵢ; zᵢ
//	  = Σᵢ xᵢ; D(xᵢ); zᵢ                      (by X → Y)
//	  = Σᵢ xᵢ; xᵢ; D(xᵢ); zᵢ                  (BA-Seq-Idem)
//	  = Σᵢ (Σ_{j: xⱼ=xᵢ} xⱼ; D(xⱼ)); xᵢ; zᵢ   (KA-Plus-Idem)
//	  = Σᵢ (Σ_j xⱼ; D(xⱼ)); xᵢ; zᵢ            (BA-Contra + KA-Plus-Zero)
//	  = (Σ_j xⱼ; D(xⱼ)); (Σᵢ xᵢ; zᵢ)          (KA-Seq-Dist-R)
//	  = T_XY ≫ T_XZ
//
// — and checks every consecutive pair for semantic equality over the
// complete finite probe domain. The result is a machine-checked instance
// of the theorem for the given table.

// ProofStep is one policy in the rewrite chain with the axiom that
// justifies the step from its predecessor.
type ProofStep struct {
	// Axiom names the NetKAT axiom (or "start").
	Axiom string
	// Policy is the rewritten program.
	Policy Policy
}

// ProveDecomposition builds and checks the Theorem 1 rewrite chain for a
// table and a field-only dependency X → Y. It returns the verified steps,
// or an error naming the first step that fails (which would disprove the
// theorem instance — it cannot happen for valid inputs).
//
// The proof's setting is the paper's: exact-match predicates only, X and Y
// header fields, and order-independent entries.
func ProveDecomposition(t *mat.Table, x, y mat.AttrSet) ([]ProofStep, error) {
	sch := t.Schema
	n := len(sch)
	if !x.Union(y).SubsetOf(mat.FullSet(n)) || x.Intersect(y) != 0 {
		return nil, fmt.Errorf("netkat: X and Y must be disjoint schema attribute sets")
	}
	for _, i := range x.Union(y).Members() {
		if sch[i].Kind != mat.Field {
			return nil, fmt.Errorf("netkat: theorem 1 requires X and Y to be header fields; %s is an action", sch[i].Name)
		}
	}
	for _, e := range t.Entries {
		for _, fi := range sch.Fields() {
			if !e[fi].IsExact(sch[fi].Width) {
				return nil, fmt.Errorf("netkat: theorem 1's proof assumes exact-match predicates; entry has %s=%s",
					sch[fi].Name, e[fi].Format(sch[fi].Width))
			}
		}
	}
	if !t.IsOrderIndependent() {
		return nil, fmt.Errorf("netkat: table is not in 1NF")
	}
	if !t.DetermineFn(x, y) {
		return nil, fmt.Errorf("netkat: X → Y does not hold")
	}
	z := mat.FullSet(n).Minus(x).Minus(y)

	// Policy fragments per entry: tests for the X, Y parts; tests+actions
	// for the Z part (z also carries the table's actions — the proof's
	// "policies zᵢ").
	testsOf := func(e mat.Entry, set mat.AttrSet) Seq {
		var s Seq
		for _, i := range set.Members() {
			if sch[i].Kind == mat.Field {
				s = append(s, Test{Field: sch[i].Name, Cell: e[i], Width: sch[i].Width})
			}
		}
		return s
	}
	policyOf := func(e mat.Entry, set mat.AttrSet) Seq {
		s := testsOf(e, set)
		for _, i := range set.Members() {
			if sch[i].Kind == mat.Action {
				s = append(s, Assign{Field: sch[i].Name, Value: e[i].Bits})
			}
		}
		return s
	}
	// D maps an entry's X value to its Y tests (the dependency function).
	dOf := func(e mat.Entry) Seq { return testsOf(e, y) }

	entries := t.Entries
	sameX := func(a, b mat.Entry) bool {
		for _, i := range x.Members() {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}

	var steps []ProofStep
	add := func(axiom string, p Policy) {
		steps = append(steps, ProofStep{Axiom: axiom, Policy: p})
	}

	// Step 0: T = Σᵢ xᵢ; yᵢ; zᵢ (BA-Seq-Comm regroups Eq. (1)).
	var t0 Plus
	for _, e := range entries {
		t0 = append(t0, Seq{testsOf(e, x), testsOf(e, y), policyOf(e, z)})
	}
	add("start (Eq. 1, regrouped by BA-Seq-Comm)", t0)

	// Step 1: replace yᵢ by D(xᵢ) — justified by X → Y.
	var t1 Plus
	for _, e := range entries {
		t1 = append(t1, Seq{testsOf(e, x), dOf(e), policyOf(e, z)})
	}
	add("X -> Y (yᵢ = D(xᵢ))", t1)

	// Step 2: duplicate the X test — BA-Seq-Idem (a; a = a).
	var t2 Plus
	for _, e := range entries {
		t2 = append(t2, Seq{testsOf(e, x), testsOf(e, x), dOf(e), policyOf(e, z)})
	}
	add("BA-Seq-Idem", t2)

	// Step 3: commute the middle tests — BA-Seq-Comm.
	var t3 Plus
	for _, e := range entries {
		t3 = append(t3, Seq{testsOf(e, x), dOf(e), testsOf(e, x), policyOf(e, z)})
	}
	add("BA-Seq-Comm", t3)

	// Step 4: fold the leading xᵢ; D(xᵢ) into a sum over the entries with
	// the same X value — KA-Plus-Idem (p + p = p).
	var t4 Plus
	for _, e := range entries {
		var grp Plus
		for _, e2 := range entries {
			if sameX(e, e2) {
				grp = append(grp, Seq{testsOf(e2, x), dOf(e2)})
			}
		}
		t4 = append(t4, Seq{grp, testsOf(e, x), policyOf(e, z)})
	}
	add("KA-Plus-Idem", t4)

	// Step 5: extend each group sum to ALL entries — the extra terms are
	// contradictory (xⱼ; ...; xᵢ = 0 for xⱼ ≠ xᵢ): BA-Contra +
	// KA-Plus-Zero.
	depSum := make(Plus, 0, len(entries))
	for _, e := range entries {
		depSum = append(depSum, Seq{testsOf(e, x), dOf(e)})
	}
	var t5 Plus
	for _, e := range entries {
		t5 = append(t5, Seq{depSum, testsOf(e, x), policyOf(e, z)})
	}
	add("BA-Contra + KA-Plus-Zero", t5)

	// Step 6: factor the common left factor out of the sum —
	// KA-Seq-Dist-R: Σᵢ (p; qᵢ) = p; Σᵢ qᵢ.
	restSum := make(Plus, 0, len(entries))
	for _, e := range entries {
		restSum = append(restSum, Seq{testsOf(e, x), policyOf(e, z)})
	}
	t6 := Seq{depSum, restSum}
	add("KA-Seq-Dist-R (= T_XY ≫ T_XZ)", t6)

	// Machine-check every consecutive pair over the complete domain.
	dom := DomainOf(t)
	for i := 1; i < len(steps); i++ {
		cex, _, err := EquivalentPolicies(steps[i-1].Policy, steps[i].Policy, dom, 0)
		if err != nil {
			return nil, err
		}
		if cex != nil {
			return nil, fmt.Errorf("netkat: proof step %d (%s) is not semantics-preserving: %v",
				i, steps[i].Axiom, cex)
		}
	}
	return steps, nil
}
