package netkat

import (
	"math/rand"
	"testing"

	"manorm/internal/mat"
)

// randPolicy builds a random policy over fields a,b,c with small domains,
// for law checking.
func randPolicy(rng *rand.Rand, depth int) Policy {
	fields := []string{"a", "b", "c"}
	if depth <= 0 {
		switch rng.Intn(4) {
		case 0:
			return Drop{}
		case 1:
			return Id{}
		case 2:
			return Test{Field: fields[rng.Intn(3)], Cell: mat.Exact(uint64(rng.Intn(3)), 8), Width: 8}
		default:
			return Assign{Field: fields[rng.Intn(3)], Value: uint64(rng.Intn(3))}
		}
	}
	switch rng.Intn(2) {
	case 0:
		return Seq{randPolicy(rng, depth-1), randPolicy(rng, depth-1)}
	default:
		return Plus{randPolicy(rng, depth-1), randPolicy(rng, depth-1)}
	}
}

// semEqual checks p ≡ q over all records with fields a,b,c in 0..3.
func semEqual(t *testing.T, p, q Policy) bool {
	t.Helper()
	rec := mat.Record{}
	for a := uint64(0); a < 4; a++ {
		for b := uint64(0); b < 4; b++ {
			for c := uint64(0); c < 4; c++ {
				rec["a"], rec["b"], rec["c"] = a, b, c
				if !OutputSetEqual(p.Eval(rec), q.Eval(rec)) {
					return false
				}
			}
		}
	}
	return true
}

// The NetKAT axioms used in the paper's Theorem 1 proof, checked as
// semantic laws of the evaluator.

func TestKAPlusIdem(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		p := randPolicy(rng, 2)
		if !semEqual(t, Plus{p, p}, p) {
			t.Fatalf("p+p ≠ p for %s", p)
		}
	}
}

func TestKAPlusComm(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 50; i++ {
		p, q := randPolicy(rng, 2), randPolicy(rng, 2)
		if !semEqual(t, Plus{p, q}, Plus{q, p}) {
			t.Fatalf("p+q ≠ q+p for %s, %s", p, q)
		}
	}
}

func TestKAPlusZero(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50; i++ {
		p := randPolicy(rng, 2)
		if !semEqual(t, Plus{p, Drop{}}, p) {
			t.Fatalf("p+0 ≠ p for %s", p)
		}
	}
}

func TestKASeqAssoc(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 50; i++ {
		p, q, r := randPolicy(rng, 1), randPolicy(rng, 1), randPolicy(rng, 1)
		if !semEqual(t, Seq{Seq{p, q}, r}, Seq{p, Seq{q, r}}) {
			t.Fatalf("(p;q);r ≠ p;(q;r)")
		}
	}
}

func TestKASeqDistL(t *testing.T) {
	// p;(q+r) = p;q + p;r — used twice in the Theorem 1 proof.
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 50; i++ {
		p, q, r := randPolicy(rng, 1), randPolicy(rng, 1), randPolicy(rng, 1)
		if !semEqual(t, Seq{p, Plus{q, r}}, Plus{Seq{p, q}, Seq{p, r}}) {
			t.Fatalf("left distributivity fails")
		}
	}
}

func TestKASeqDistR(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 50; i++ {
		p, q, r := randPolicy(rng, 1), randPolicy(rng, 1), randPolicy(rng, 1)
		if !semEqual(t, Seq{Plus{p, q}, r}, Plus{Seq{p, r}, Seq{q, r}}) {
			t.Fatalf("right distributivity fails")
		}
	}
}

func TestKASeqIdentities(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		p := randPolicy(rng, 2)
		if !semEqual(t, Seq{Id{}, p}, p) || !semEqual(t, Seq{p, Id{}}, p) {
			t.Fatalf("1;p ≠ p or p;1 ≠ p for %s", p)
		}
		if !semEqual(t, Seq{Drop{}, p}, Drop{}) || !semEqual(t, Seq{p, Drop{}}, Drop{}) {
			t.Fatalf("0 not annihilating for %s", p)
		}
	}
}

func TestBASeqIdem(t *testing.T) {
	// a;a = a for tests — the proof's BA-Seq-Idem step.
	for v := uint64(0); v < 3; v++ {
		a := Test{Field: "a", Cell: mat.Exact(v, 8), Width: 8}
		if !semEqual(t, Seq{a, a}, a) {
			t.Fatalf("a;a ≠ a for %s", a)
		}
	}
}

func TestBASeqComm(t *testing.T) {
	// Tests on (possibly different) fields commute: a;b = b;a.
	cases := []struct{ f1, f2 string }{{"a", "b"}, {"a", "c"}, {"a", "a"}}
	for _, c := range cases {
		for v1 := uint64(0); v1 < 3; v1++ {
			for v2 := uint64(0); v2 < 3; v2++ {
				t1 := Test{Field: c.f1, Cell: mat.Exact(v1, 8), Width: 8}
				t2 := Test{Field: c.f2, Cell: mat.Exact(v2, 8), Width: 8}
				if !semEqual(t, Seq{t1, t2}, Seq{t2, t1}) {
					t.Fatalf("tests do not commute: %s, %s", t1, t2)
				}
			}
		}
	}
}

func TestTestAssignCommuteDifferentFields(t *testing.T) {
	// f=n; g<-m = g<-m; f=n when f ≠ g (PA-Mod-Comm analogue).
	test := Test{Field: "a", Cell: mat.Exact(1, 8), Width: 8}
	asn := Assign{Field: "b", Value: 2}
	if !semEqual(t, Seq{test, asn}, Seq{asn, test}) {
		t.Fatalf("test/assign on different fields do not commute")
	}
}

func TestAssignThenTestSameField(t *testing.T) {
	// f<-n; f=n = f<-n (PA-Mod-Filter).
	asn := Assign{Field: "a", Value: 2}
	test := Test{Field: "a", Cell: mat.Exact(2, 8), Width: 8}
	if !semEqual(t, Seq{asn, test}, asn) {
		t.Fatalf("f<-n; f=n ≠ f<-n")
	}
	// And with a different value it drops: f<-n; f=m = 0 (n≠m).
	bad := Test{Field: "a", Cell: mat.Exact(3, 8), Width: 8}
	if !semEqual(t, Seq{asn, bad}, Drop{}) {
		t.Fatalf("f<-2; f=3 ≠ 0")
	}
}

func TestContradictoryTestsDrop(t *testing.T) {
	// f=n; f=m = 0 when n ≠ m (BA-Contra).
	t1 := Test{Field: "a", Cell: mat.Exact(1, 8), Width: 8}
	t2 := Test{Field: "a", Cell: mat.Exact(2, 8), Width: 8}
	if !semEqual(t, Seq{t1, t2}, Drop{}) {
		t.Fatalf("contradictory tests do not drop")
	}
}

func TestStringRendering(t *testing.T) {
	p := Plus{Seq{Test{Field: "a", Cell: mat.Exact(1, 8), Width: 8}, Assign{Field: "b", Value: 2}}, Drop{}}
	got := p.String()
	want := "((a=1; b<-2) + 0)"
	if got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
	if (Seq{}).String() != "1" || (Plus{}).String() != "0" {
		t.Errorf("empty Seq/Plus rendering wrong")
	}
	if (Id{}).String() != "1" || (Drop{}).String() != "0" {
		t.Errorf("Id/Drop rendering wrong")
	}
}

func TestEvalDeduplicates(t *testing.T) {
	// (a<-1 + a<-1) produces one output record, not two.
	p := Plus{Assign{Field: "a", Value: 1}, Assign{Field: "a", Value: 1}}
	out := p.Eval(mat.Record{"a": 0})
	if len(out) != 1 {
		t.Errorf("duplicate outputs not merged: %d records", len(out))
	}
}

func TestTestOnAbsentField(t *testing.T) {
	exact := Test{Field: "vlan", Cell: mat.Exact(5, 12), Width: 12}
	if got := exact.Eval(mat.Record{"a": 1}); len(got) != 0 {
		t.Errorf("exact test passed on absent field")
	}
	wild := Test{Field: "vlan", Cell: mat.Any(), Width: 12}
	if got := wild.Eval(mat.Record{"a": 1}); len(got) != 1 {
		t.Errorf("wildcard test failed on absent field")
	}
}
