package netkat

import (
	"strings"
	"testing"

	"manorm/internal/mat"
)

// fig1a and fig1b rebuild the paper's running example (shared with the mat
// tests; duplicated here because internal test fixtures do not cross
// package boundaries).
func fig1a() *mat.Table {
	t := mat.New("T0", mat.Schema{
		mat.F("ip_src", 32), mat.F("ip_dst", 32), mat.F("tcp_dst", 16), mat.A("out", 16),
	})
	t.Add(mat.Prefix(0, 1, 32), mat.IPv4("192.0.2.1"), mat.Exact(80, 16), mat.Exact(1, 16))
	t.Add(mat.Prefix(0x80000000, 1, 32), mat.IPv4("192.0.2.1"), mat.Exact(80, 16), mat.Exact(2, 16))
	t.Add(mat.Prefix(0, 2, 32), mat.IPv4("192.0.2.2"), mat.Exact(443, 16), mat.Exact(3, 16))
	t.Add(mat.Prefix(0x40000000, 2, 32), mat.IPv4("192.0.2.2"), mat.Exact(443, 16), mat.Exact(4, 16))
	t.Add(mat.Prefix(0x80000000, 1, 32), mat.IPv4("192.0.2.2"), mat.Exact(443, 16), mat.Exact(5, 16))
	t.Add(mat.Any(), mat.IPv4("192.0.2.3"), mat.Exact(22, 16), mat.Exact(6, 16))
	return t
}

func fig1b() *mat.Pipeline {
	t0 := mat.New("T0", mat.Schema{mat.F("ip_dst", 32), mat.F("tcp_dst", 16), mat.A(mat.GotoAttr, 8)})
	t0.Add(mat.IPv4("192.0.2.1"), mat.Exact(80, 16), mat.Exact(1, 8))
	t0.Add(mat.IPv4("192.0.2.2"), mat.Exact(443, 16), mat.Exact(2, 8))
	t0.Add(mat.IPv4("192.0.2.3"), mat.Exact(22, 16), mat.Exact(3, 8))
	lb1 := mat.New("T1", mat.Schema{mat.F("ip_src", 32), mat.A("out", 16)})
	lb1.Add(mat.Prefix(0, 1, 32), mat.Exact(1, 16))
	lb1.Add(mat.Prefix(0x80000000, 1, 32), mat.Exact(2, 16))
	lb2 := mat.New("T2", mat.Schema{mat.F("ip_src", 32), mat.A("out", 16)})
	lb2.Add(mat.Prefix(0, 2, 32), mat.Exact(3, 16))
	lb2.Add(mat.Prefix(0x40000000, 2, 32), mat.Exact(4, 16))
	lb2.Add(mat.Prefix(0x80000000, 1, 32), mat.Exact(5, 16))
	lb3 := mat.New("T3", mat.Schema{mat.F("ip_src", 32), mat.A("out", 16)})
	lb3.Add(mat.Any(), mat.Exact(6, 16))
	return &mat.Pipeline{
		Name:  "gwlb-goto",
		Start: 0,
		Stages: []mat.Stage{
			{Table: t0, Next: -1, MissDrop: true},
			{Table: lb1, Next: -1, MissDrop: true},
			{Table: lb2, Next: -1, MissDrop: true},
			{Table: lb3, Next: -1, MissDrop: true},
		},
	}
}

func TestCompileTableEvalMatchesPipelineEval(t *testing.T) {
	tab := fig1a()
	pol := CompileTable(tab)
	pipe := mat.SingleTable(tab)
	dom := DomainOf(tab)
	_, err := dom.Each(DefaultProbeLimit, func(in mat.Record) error {
		outs := ObservableOutputs(pol.Eval(in))
		r, err := pipe.Eval(in)
		if err != nil {
			return err
		}
		if r[mat.DropAttr] == 1 {
			if len(outs) != 0 {
				t.Fatalf("policy emits but dataplane drops on %v", in)
			}
			return nil
		}
		if len(outs) != 1 {
			t.Fatalf("policy emitted %d records on %v, dataplane hit", len(outs), in)
		}
		if !outs[0].Equal(r.Observable()) {
			t.Fatalf("policy %v vs dataplane %v on %v", outs[0], r.Observable(), in)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCompilePipelineGoto(t *testing.T) {
	pipe := fig1b()
	pol, err := CompilePipeline(pipe)
	if err != nil {
		t.Fatal(err)
	}
	uniPol := CompileTable(fig1a())
	dom := DomainOf(fig1a())
	cex, exhaustive, err := EquivalentPolicies(uniPol, pol, dom, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !exhaustive {
		t.Fatalf("probe set unexpectedly sampled (domain size %d)", dom.Size())
	}
	if cex != nil {
		t.Fatalf("universal and goto-decomposed policies diverge: %v", cex)
	}
}

func TestCompilePipelineDetectsCycle(t *testing.T) {
	t0 := mat.New("T0", mat.Schema{mat.F("a", 8), mat.A(mat.GotoAttr, 8)})
	t0.Add(mat.Any(), mat.Exact(0, 8))
	p := &mat.Pipeline{Stages: []mat.Stage{{Table: t0, Next: -1, MissDrop: true}}}
	if _, err := CompilePipeline(p); err == nil {
		t.Fatalf("goto cycle not detected")
	}
}

func TestCompilePipelineMissFallthrough(t *testing.T) {
	// Stage 0 (MissDrop=false) tags some packets; stage 1 outputs.
	t0 := mat.New("T0", mat.Schema{mat.F("a", 8), mat.A("tag", 8)})
	t0.Add(mat.Exact(1, 8), mat.Exact(7, 8))
	t1 := mat.New("T1", mat.Schema{mat.F("a", 8), mat.A("out", 8)})
	t1.Add(mat.Any(), mat.Exact(9, 8))
	pipe := &mat.Pipeline{Stages: []mat.Stage{
		{Table: t0, Next: 1, MissDrop: false},
		{Table: t1, Next: -1, MissDrop: true},
	}}
	pol, err := CompilePipeline(pipe)
	if err != nil {
		t.Fatal(err)
	}
	// Hit path: tagged and output.
	out := pol.Eval(mat.Record{"a": 1})
	if len(out) != 1 || out[0]["tag"] != 7 || out[0]["out"] != 9 {
		t.Fatalf("hit path wrong: %v", out)
	}
	// Miss path: untagged but still output.
	out = pol.Eval(mat.Record{"a": 2})
	if len(out) != 1 || out[0]["out"] != 9 {
		t.Fatalf("miss path wrong: %v", out)
	}
	if _, tagged := out[0]["tag"]; tagged {
		t.Fatalf("missed stage applied actions: %v", out[0])
	}
	if !strings.Contains(pol.String(), "miss(T0)") {
		t.Errorf("miss branch not rendered: %s", pol.String())
	}
}

func TestEntryPolicyShape(t *testing.T) {
	tab := fig1a()
	p := EntryPolicy(tab, tab.Entries[0])
	s := p.String()
	// Matches first, then actions — Eq. (1) of the paper.
	if !strings.Contains(s, "ip_src=") || !strings.Contains(s, "out<-1") {
		t.Errorf("entry policy malformed: %s", s)
	}
	if strings.Index(s, "out<-") < strings.Index(s, "tcp_dst=") {
		t.Errorf("actions precede matches: %s", s)
	}
}

func TestOrderDependenceVisibleInPolicySemantics(t *testing.T) {
	// The Fig. 3 pathology: a table with two entries sharing a match
	// pattern. The policy sum emits two records — the ambiguity the join
	// abstractions cannot express.
	tab := mat.New("T1", mat.Schema{mat.F("in_port", 8), mat.A("m_out", 8)})
	tab.Add(mat.Exact(1, 8), mat.Exact(1, 8))
	tab.Add(mat.Exact(1, 8), mat.Exact(2, 8))
	pol := CompileTable(tab)
	out := pol.Eval(mat.Record{"in_port": 1})
	if len(out) != 2 {
		t.Fatalf("expected 2 parallel outputs for the non-1NF table, got %d", len(out))
	}
}
