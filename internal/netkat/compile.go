package netkat

import (
	"fmt"

	"manorm/internal/mat"
)

// EntryPolicy compiles one table entry into the sequential policy
// (f1=x1; ...; fk=xk; a1<-v1; ...; an<-vn) — Eq. (1) of the paper. Goto
// actions are not representable here; use CompilePipeline for pipelines.
func EntryPolicy(t *mat.Table, e mat.Entry) Policy {
	var s Seq
	for i, a := range t.Schema {
		if a.Kind == mat.Field {
			s = append(s, Test{Field: a.Name, Cell: e[i], Width: a.Width})
		}
	}
	for i, a := range t.Schema {
		if a.Kind == mat.Action {
			s = append(s, Assign{Field: a.Name, Value: e[i].Bits})
		}
	}
	return s
}

// CompileTable compiles a table into its 1NF policy: the parallel
// composition of its entry policies. A packet matching no entry produces
// the empty output set (drop), matching the universal representation's
// drop-on-miss default.
func CompileTable(t *mat.Table) Policy {
	p := make(Plus, 0, len(t.Entries))
	for _, e := range t.Entries {
		p = append(p, EntryPolicy(t, e))
	}
	return p
}

// CompilePipeline compiles a multi-table pipeline into a single NetKAT
// policy by inlining control flow: each entry becomes
// (tests; assigns; K(next)) where K(next) is the compiled continuation of
// the stage the entry transfers to. Goto actions select the continuation
// per entry; stage miss becomes either Drop or the fall-through
// continuation. The pipeline must be acyclic (guaranteed by construction
// for decomposition outputs; enforced here with a depth guard).
func CompilePipeline(p *mat.Pipeline) (Policy, error) {
	memo := make(map[int]Policy)
	var build func(stage, depth int) (Policy, error)
	build = func(stage, depth int) (Policy, error) {
		if stage < 0 {
			return Id{}, nil
		}
		if depth > len(p.Stages) {
			return nil, fmt.Errorf("netkat: pipeline %s has a goto cycle", p.Name)
		}
		if q, ok := memo[stage]; ok {
			return q, nil
		}
		st := p.Stages[stage]
		t := st.Table
		gotoIdx := t.Schema.Index(mat.GotoAttr)

		fallthroughK, err := build(st.Next, depth+1)
		if err != nil {
			return nil, err
		}

		sum := make(Plus, 0, len(t.Entries)+1)
		for _, e := range t.Entries {
			var s Seq
			for i, a := range t.Schema {
				if a.Kind == mat.Field {
					s = append(s, Test{Field: a.Name, Cell: e[i], Width: a.Width})
				}
			}
			for i, a := range t.Schema {
				if a.Kind != mat.Action || i == gotoIdx {
					continue
				}
				s = append(s, Assign{Field: a.Name, Value: e[i].Bits})
			}
			k := fallthroughK
			if gotoIdx >= 0 {
				k, err = build(int(e[gotoIdx].Bits), depth+1)
				if err != nil {
					return nil, err
				}
			}
			s = append(s, k)
			sum = append(sum, s)
		}
		if !st.MissDrop {
			// Miss falls through: add the negation of all entry matches
			// followed by the continuation. NetKAT-lite has no negation
			// term, so the miss branch is expressed semantically by the
			// wrapper below instead.
			sum = append(sum, missBranch{table: t, k: fallthroughK})
		}
		q := Policy(sum)
		memo[stage] = q
		return q, nil
	}
	return build(p.Start, 0)
}

// missBranch applies k only to packets that match no entry of the table —
// the semantic encoding of ¬(e1 + e2 + ...); k, avoiding an explicit
// negation operator in the policy syntax.
type missBranch struct {
	table *mat.Table
	k     Policy
}

// Eval passes the record to the continuation only on table miss.
func (m missBranch) Eval(in mat.Record) []mat.Record {
	for _, e := range m.table.Entries {
		hit := true
		for i, a := range m.table.Schema {
			if a.Kind != mat.Field {
				continue
			}
			v, ok := in[a.Name]
			if !ok {
				if !e[i].IsAny() {
					hit = false
					break
				}
				continue
			}
			if !e[i].Matches(v, a.Width) {
				hit = false
				break
			}
		}
		if hit {
			return nil
		}
	}
	return m.k.Eval(in)
}

// String renders the miss branch.
func (m missBranch) String() string {
	return fmt.Sprintf("(miss(%s); %s)", m.table.Name, m.k.String())
}

// Note on priorities: CompileTable encodes the pure 1NF sum of Eq. (1),
// which is order-independent only when at most one entry can match any
// packet. Tables with longest-prefix semantics (overlapping prefixes at
// different lengths) are not in 1NF under the paper's definition; the
// dataplane evaluator (mat.Pipeline.Eval) resolves them by specificity,
// while this compiler preserves the ambiguity — the equivalence checker
// uses that to detect order-dependence introduced by bad decompositions
// (the paper's Fig. 3 discussion).
