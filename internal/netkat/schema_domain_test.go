package netkat_test

import (
	"testing"

	"manorm/internal/mat"
	"manorm/internal/netkat"
	"manorm/internal/usecases"
)

// The oracle is record-based: nothing in it knows the canonical packet
// layout, so it must work unchanged over programs matching arbitrary
// schema fields. These tests pin that property down on the VXLAN use
// case, whose fields (vxlan_vni, inner_eth_dst) exist only in a shipped
// non-default header schema.

// TestDomainOverSchemaFields: DomainOf must enumerate probe values for
// arbitrary-width schema fields exactly as it does for canonical ones —
// every distinct matched value plus an off-value per field.
func TestDomainOverSchemaFields(t *testing.T) {
	g := usecases.GenerateVXLAN(4, 3, 7)
	p, err := g.Build(usecases.RepUniversal)
	if err != nil {
		t.Fatal(err)
	}
	dom := netkat.DomainOfPipelines(p)
	if len(dom["vxlan_vni"]) < 4 {
		t.Fatalf("vxlan_vni domain too small: %v", dom["vxlan_vni"])
	}
	if len(dom["inner_eth_dst"]) < 4*3 {
		t.Fatalf("inner_eth_dst domain too small: %d values", len(dom["inner_eth_dst"]))
	}
	if dom.Size() != len(dom["vxlan_vni"])*len(dom["inner_eth_dst"]) {
		t.Fatalf("size %d inconsistent with per-field counts", dom.Size())
	}
}

// TestEquivalenceOverSchemaFields: the universal and goto builds of the
// VXLAN gateway must be oracle-equivalent over the arbitrary-field
// domain, and a single perturbed output must produce a counterexample
// whose record carries the schema fields.
func TestEquivalenceOverSchemaFields(t *testing.T) {
	g := usecases.GenerateVXLAN(4, 3, 7)
	u, err := g.Build(usecases.RepUniversal)
	if err != nil {
		t.Fatal(err)
	}
	gt, err := g.Build(usecases.RepGoto)
	if err != nil {
		t.Fatal(err)
	}
	cex, exhaustive, err := netkat.EquivalentPipelines(u, gt, 8192)
	if err != nil {
		t.Fatal(err)
	}
	if !exhaustive {
		t.Fatal("domain not exhausted; raise the limit")
	}
	if cex != nil {
		t.Fatalf("universal and goto VXLAN builds diverge: %v", cex)
	}

	// Perturb one forwarding decision in a fresh goto build: the oracle
	// must find it and the counterexample must mention the schema field.
	bad, err := g.Build(usecases.RepGoto)
	if err != nil {
		t.Fatal(err)
	}
	last := bad.Stages[len(bad.Stages)-1].Table
	out := -1
	for i, a := range last.Schema {
		if a.Kind == mat.Action && a.Name == "out" {
			out = i
		}
	}
	if out < 0 {
		t.Fatalf("no out action in %s", last.Name)
	}
	last.Entries[0][out] = mat.Exact(last.Entries[0][out].Bits+1, last.Schema[out].Width)
	cex, _, err = netkat.EquivalentPipelines(u, bad, 8192)
	if err != nil {
		t.Fatal(err)
	}
	if cex == nil {
		t.Fatal("oracle missed a perturbed forwarding decision over schema fields")
	}
	if _, ok := cex.Input["vxlan_vni"]; !ok {
		t.Fatalf("counterexample input lacks the schema field: %v", cex.Input)
	}
}
