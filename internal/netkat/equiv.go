package netkat

import (
	"fmt"
	"math/rand"
	"sort"

	"manorm/internal/mat"
)

// Domain maps attribute names to the concrete values a semantic-equivalence
// probe should exercise.
type Domain map[string][]uint64

// DomainOf builds a complete test domain for programs over the given
// tables' match fields.
//
// Completeness: a match-action program built from exact and prefix patterns
// partitions each field's value space into maximal intervals whose
// endpoints are pattern boundaries. Two packets whose fields fall into the
// same interval on every field are indistinguishable by every test in the
// program, so probing one representative per interval per field — and the
// cross product across fields — decides equivalence exactly. For each
// pattern we include its low end, high end, and the successor of its high
// end; together with a fresh value these cover a representative of every
// maximal interval.
func DomainOf(tables ...*mat.Table) Domain {
	d := make(Domain)
	widths := make(map[string]uint8)
	seen := make(map[string]map[uint64]bool)
	add := func(name string, w uint8, v uint64) {
		if seen[name] == nil {
			seen[name] = make(map[uint64]bool)
		}
		v &= widthMask(w)
		if !seen[name][v] {
			seen[name][v] = true
			d[name] = append(d[name], v)
		}
	}
	for _, t := range tables {
		for i, a := range t.Schema {
			if a.Kind != mat.Field || mat.IsLinkAttr(a.Name) {
				continue
			}
			widths[a.Name] = a.Width
			for _, e := range t.Entries {
				c := e[i]
				lo := c.Bits
				hi := c.Bits | hostMask(c.PLen, a.Width)
				add(a.Name, a.Width, lo)
				add(a.Name, a.Width, hi)
				add(a.Name, a.Width, hi+1)
			}
		}
	}
	// One fresh value per field, outside every observed value if possible.
	for name, w := range widths {
		fresh := uint64(0)
		for seen[name][fresh] && fresh < widthMask(w) {
			fresh++
		}
		add(name, w, fresh)
		sort.Slice(d[name], func(i, j int) bool { return d[name][i] < d[name][j] })
	}
	return d
}

func widthMask(w uint8) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << w) - 1
}

func hostMask(plen, width uint8) uint64 {
	if plen >= width {
		return 0
	}
	return widthMask(width - plen)
}

// Size returns the number of records in the domain's cross product.
func (d Domain) Size() int {
	n := 1
	for _, vs := range d {
		n *= len(vs)
		if n > 1<<30 {
			return 1 << 30
		}
	}
	return n
}

// fields returns the attribute names in sorted order for determinism.
func (d Domain) fields() []string {
	out := make([]string, 0, len(d))
	for k := range d {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Each enumerates the cross product of the domain, calling fn with a reused
// record; fn must not retain it. If the product exceeds limit, a seeded
// random sample of limit records is probed instead and Each reports
// exhaustive=false.
func (d Domain) Each(limit int, fn func(mat.Record) error) (exhaustive bool, err error) {
	names := d.fields()
	if len(names) == 0 {
		return true, fn(mat.Record{})
	}
	if d.Size() <= limit {
		rec := make(mat.Record, len(names))
		var walk func(i int) error
		walk = func(i int) error {
			if i == len(names) {
				return fn(rec)
			}
			for _, v := range d[names[i]] {
				rec[names[i]] = v
				if err := walk(i + 1); err != nil {
					return err
				}
			}
			return nil
		}
		return true, walk(0)
	}
	rng := rand.New(rand.NewSource(1))
	rec := make(mat.Record, len(names))
	for n := 0; n < limit; n++ {
		for _, name := range names {
			vs := d[name]
			rec[name] = vs[rng.Intn(len(vs))]
		}
		if err := fn(rec); err != nil {
			return false, err
		}
	}
	return false, nil
}

// Counterexample describes a probe on which two programs diverged.
type Counterexample struct {
	Input mat.Record
	A, B  mat.Record
}

// Error renders the divergence.
func (c *Counterexample) Error() string {
	return fmt.Sprintf("netkat: programs diverge on %v: %v vs %v", c.Input, c.A, c.B)
}

// DefaultProbeLimit bounds exhaustive probing before sampling kicks in.
const DefaultProbeLimit = 200000

// DomainOfPipelines builds the complete probe domain induced by the
// tables of all given pipelines — the inputs a finite-domain equivalence
// check between them must enumerate. Exposed so callers (e.g. the
// differential fuzzing harness) can inspect Size() first and decide
// whether an exhaustive check is affordable before running it.
func DomainOfPipelines(ps ...*mat.Pipeline) Domain {
	var tabs []*mat.Table
	for _, p := range ps {
		for _, s := range p.Stages {
			tabs = append(tabs, s.Table)
		}
	}
	return DomainOf(tabs...)
}

// EquivalentPipelines checks semantic equivalence of two pipelines over the
// test domain induced by both programs' tables: for every probe packet the
// observable results (action attributes written, drop status) must agree.
// It returns nil if no divergence was found, or a *Counterexample.
// The second return value reports whether the probe set was exhaustive
// (and therefore the equivalence exact rather than sampled).
func EquivalentPipelines(a, b *mat.Pipeline, limit int) (*Counterexample, bool, error) {
	if limit <= 0 {
		limit = DefaultProbeLimit
	}
	dom := DomainOfPipelines(a, b)

	var cex *Counterexample
	exhaustive, err := dom.Each(limit, func(in mat.Record) error {
		ra, errA := a.Eval(in)
		rb, errB := b.Eval(in)
		if errA != nil {
			return fmt.Errorf("pipeline %s: %w", a.Name, errA)
		}
		if errB != nil {
			return fmt.Errorf("pipeline %s: %w", b.Name, errB)
		}
		oa, ob := ra.Observable(), rb.Observable()
		if !oa.Equal(ob) {
			cex = &Counterexample{Input: in.Clone(), A: oa, B: ob}
			return errStop
		}
		return nil
	})
	if err == errStop {
		return cex, exhaustive, nil
	}
	return nil, exhaustive, err
}

// errStop terminates domain enumeration early.
var errStop = fmt.Errorf("stop")

// EquivalentPolicies checks denotational equivalence of two compiled
// policies over a domain: equal output sets on every probe.
func EquivalentPolicies(p, q Policy, dom Domain, limit int) (*Counterexample, bool, error) {
	if limit <= 0 {
		limit = DefaultProbeLimit
	}
	var cex *Counterexample
	exhaustive, err := dom.Each(limit, func(in mat.Record) error {
		op := ObservableOutputs(p.Eval(in))
		oq := ObservableOutputs(q.Eval(in))
		if !OutputSetEqual(op, oq) {
			cex = &Counterexample{Input: in.Clone()}
			if len(op) > 0 {
				cex.A = op[0]
			}
			if len(oq) > 0 {
				cex.B = oq[0]
			}
			return errStop
		}
		return nil
	})
	if err == errStop {
		return cex, exhaustive, nil
	}
	return nil, exhaustive, err
}
