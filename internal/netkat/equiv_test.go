package netkat

import (
	"testing"

	"manorm/internal/mat"
)

func TestDomainOfCoversBoundaries(t *testing.T) {
	tab := fig1a()
	dom := DomainOf(tab)
	// ip_src prefixes 0/1, 128/1, 0/2, 64/2, * must contribute interval
	// boundaries: 0, 0x3FFFFFFF, 0x40000000, 0x7FFFFFFF, 0x80000000,
	// 0xFFFFFFFF.
	wantSrc := []uint64{0, 0x3FFFFFFF, 0x40000000, 0x7FFFFFFF, 0x80000000, 0xFFFFFFFF}
	have := make(map[uint64]bool)
	for _, v := range dom["ip_src"] {
		have[v] = true
	}
	for _, v := range wantSrc {
		if !have[v] {
			t.Errorf("ip_src domain missing boundary %#x; got %#x", v, dom["ip_src"])
		}
	}
	// tcp_dst must include the three service ports and a fresh value.
	havePorts := make(map[uint64]bool)
	for _, v := range dom["tcp_dst"] {
		havePorts[v] = true
	}
	for _, p := range []uint64{80, 443, 22} {
		if !havePorts[p] {
			t.Errorf("tcp_dst domain missing %d", p)
		}
	}
	if len(dom["tcp_dst"]) < 4 {
		t.Errorf("tcp_dst domain has no fresh value: %v", dom["tcp_dst"])
	}
	// Action attributes do not get domains.
	if _, ok := dom["out"]; ok {
		t.Errorf("action attribute in domain")
	}
}

func TestDomainSkipsLinkAttrs(t *testing.T) {
	tab := mat.New("T", mat.Schema{mat.F(mat.MetaPrefix+"_svc", 16), mat.F("a", 8), mat.A("out", 8)})
	tab.Add(mat.Exact(1, 16), mat.Exact(2, 8), mat.Exact(3, 8))
	dom := DomainOf(tab)
	if _, ok := dom[mat.MetaPrefix+"_svc"]; ok {
		t.Errorf("link attribute in domain")
	}
	if _, ok := dom["a"]; !ok {
		t.Errorf("regular field missing from domain")
	}
}

func TestDomainEachExhaustive(t *testing.T) {
	dom := Domain{"a": {1, 2}, "b": {10, 20, 30}}
	if dom.Size() != 6 {
		t.Fatalf("Size = %d, want 6", dom.Size())
	}
	var n int
	exhaustive, err := dom.Each(100, func(r mat.Record) error {
		n++
		if r["a"] == 0 || r["b"] == 0 {
			t.Fatalf("incomplete record %v", r)
		}
		return nil
	})
	if err != nil || !exhaustive || n != 6 {
		t.Fatalf("Each: exhaustive=%v n=%d err=%v", exhaustive, n, err)
	}
}

func TestDomainEachSampled(t *testing.T) {
	dom := Domain{}
	for _, f := range []string{"a", "b", "c", "d", "e", "f"} {
		vals := make([]uint64, 10)
		for i := range vals {
			vals[i] = uint64(i)
		}
		dom[f] = vals
	}
	// 10^6 product, limit 1000 → sampling.
	var n int
	exhaustive, err := dom.Each(1000, func(r mat.Record) error {
		n++
		return nil
	})
	if err != nil || exhaustive || n != 1000 {
		t.Fatalf("sampled Each: exhaustive=%v n=%d err=%v", exhaustive, n, err)
	}
}

func TestDomainEachEmpty(t *testing.T) {
	var n int
	exhaustive, err := Domain{}.Each(10, func(r mat.Record) error {
		n++
		return nil
	})
	if err != nil || !exhaustive || n != 1 {
		t.Fatalf("empty domain: exhaustive=%v n=%d err=%v", exhaustive, n, err)
	}
}

func TestEquivalentPipelinesAgree(t *testing.T) {
	uni := mat.SingleTable(fig1a())
	dec := fig1b()
	cex, exhaustive, err := EquivalentPipelines(uni, dec, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cex != nil {
		t.Fatalf("unexpected divergence: %v", cex)
	}
	if !exhaustive {
		t.Errorf("expected exhaustive probing")
	}
}

func TestEquivalentPipelinesFindsDivergence(t *testing.T) {
	uni := mat.SingleTable(fig1a())
	bad := fig1b()
	// Corrupt one backend assignment.
	bad.Stages[2].Table.Entries[1][1] = mat.Exact(42, 16)
	cex, _, err := EquivalentPipelines(uni, bad, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cex == nil {
		t.Fatalf("corrupted pipeline reported equivalent")
	}
	// The counterexample must actually diverge.
	ra, _ := uni.Eval(cex.Input)
	rb, _ := bad.Eval(cex.Input)
	if ra.Observable().Equal(rb.Observable()) {
		t.Fatalf("reported counterexample does not diverge")
	}
	if cex.Error() == "" {
		t.Errorf("empty error rendering")
	}
}

func TestEquivalentPipelinesDetectsDropDifference(t *testing.T) {
	uni := mat.SingleTable(fig1a())
	// Remove the SSH service: packets to 192.0.2.3:22 now drop.
	smaller := fig1a()
	smaller.Entries = smaller.Entries[:5]
	cex, _, err := EquivalentPipelines(uni, mat.SingleTable(smaller), 0)
	if err != nil {
		t.Fatal(err)
	}
	if cex == nil {
		t.Fatalf("missing-entry pipeline reported equivalent")
	}
}

func TestEquivalentPoliciesDivergence(t *testing.T) {
	p := Assign{Field: "out", Value: 1}
	q := Assign{Field: "out", Value: 2}
	dom := Domain{"a": {0}}
	cex, _, err := EquivalentPolicies(p, q, dom, 0)
	if err != nil || cex == nil {
		t.Fatalf("divergent policies reported equivalent (err=%v)", err)
	}
	cex2, _, err := EquivalentPolicies(p, p, dom, 0)
	if err != nil || cex2 != nil {
		t.Fatalf("identical policies reported divergent (err=%v)", err)
	}
}

func TestOutputSetEqual(t *testing.T) {
	a := []mat.Record{{"x": 1}, {"x": 2}}
	b := []mat.Record{{"x": 2}, {"x": 1}}
	if !OutputSetEqual(a, b) {
		t.Errorf("order-insensitive equality failed")
	}
	if OutputSetEqual(a, b[:1]) {
		t.Errorf("different sizes reported equal")
	}
	if OutputSetEqual(a, []mat.Record{{"x": 1}, {"x": 3}}) {
		t.Errorf("different contents reported equal")
	}
}

func TestObservableOutputs(t *testing.T) {
	rs := []mat.Record{
		{"out": 1, mat.GotoAttr: 3},
		{"out": 1, mat.MetaPrefix + "_t": 9},
	}
	obs := ObservableOutputs(rs)
	if len(obs) != 1 {
		t.Fatalf("link-attr-only differences not merged: %v", obs)
	}
	if _, ok := obs[0][mat.GotoAttr]; ok {
		t.Errorf("link attr survived projection")
	}
}
