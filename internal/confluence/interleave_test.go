package confluence

import (
	"fmt"
	"testing"
)

func TestInterleavingsExhaustive(t *testing.T) {
	cases := []struct {
		sizes []int
		want  int
	}{
		{[]int{}, 1},
		{[]int{0, 0}, 1},
		{[]int{3}, 1},
		{[]int{1, 1}, 2},
		{[]int{2, 2}, 6},
		{[]int{3, 3}, 20},
		{[]int{2, 1, 1}, 12},
	}
	for _, c := range cases {
		orders, exhaustive := Interleavings(c.sizes, 64, 16, 1)
		if !exhaustive {
			t.Fatalf("Interleavings(%v) not exhaustive under budget 64", c.sizes)
		}
		if len(orders) != c.want {
			t.Fatalf("Interleavings(%v) = %d orderings, want %d", c.sizes, len(orders), c.want)
		}
		seen := make(map[string]bool)
		for _, o := range orders {
			k := fmt.Sprint(o)
			if seen[k] {
				t.Fatalf("Interleavings(%v) repeated ordering %v", c.sizes, o)
			}
			seen[k] = true
			counts := make([]int, len(c.sizes))
			for _, bi := range o {
				counts[bi]++
			}
			for i, n := range counts {
				if n != c.sizes[i] {
					t.Fatalf("ordering %v places %d mods of batch %d, want %d", o, n, i, c.sizes[i])
				}
			}
		}
	}
}

func TestInterleavingsSampled(t *testing.T) {
	sizes := []int{5, 5, 5} // 756756 interleavings — far over budget
	orders, exhaustive := Interleavings(sizes, 64, 16, 7)
	if exhaustive {
		t.Fatal("Interleavings(5,5,5) claimed exhaustive under budget 64")
	}
	if len(orders) < 2 || len(orders) > 16 {
		t.Fatalf("sampled Interleavings returned %d orderings, want 2..16", len(orders))
	}
	// The sample always contains the identity and fully-reversed orders.
	identity := fmt.Sprint([]int{0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 2, 2, 2, 2, 2})
	reversed := fmt.Sprint([]int{2, 2, 2, 2, 2, 1, 1, 1, 1, 1, 0, 0, 0, 0, 0})
	seen := make(map[string]bool)
	for _, o := range orders {
		k := fmt.Sprint(o)
		if seen[k] {
			t.Fatalf("sampled orderings repeated %v", o)
		}
		seen[k] = true
	}
	if !seen[identity] || !seen[reversed] {
		t.Fatal("sampled orderings missing identity or reversed order")
	}

	// Same seed, same sample; different seed, (almost surely) different.
	again, _ := Interleavings(sizes, 64, 16, 7)
	if fmt.Sprint(orders) != fmt.Sprint(again) {
		t.Fatal("Interleavings not deterministic for a fixed seed")
	}
	other, _ := Interleavings(sizes, 64, 16, 8)
	if fmt.Sprint(orders) == fmt.Sprint(other) {
		t.Fatal("Interleavings identical across different seeds")
	}
}

func TestMultinomialCapped(t *testing.T) {
	cases := []struct {
		sizes []int
		limit int
		want  int
	}{
		{[]int{2, 2}, 100, 6},
		{[]int{3, 3}, 100, 20},
		{[]int{2, 1, 1}, 100, 12},
		{[]int{5, 5, 5}, 100, 100}, // capped at the limit
		{[]int{}, 100, 1},
	}
	for _, c := range cases {
		if got := multinomialCapped(c.sizes, c.limit); got != c.want {
			t.Fatalf("multinomialCapped(%v, %d) = %d, want %d", c.sizes, c.limit, got, c.want)
		}
	}
}
