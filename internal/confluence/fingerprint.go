package confluence

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"manorm/internal/core"
	"manorm/internal/fdd"
	"manorm/internal/mat"
)

// Fingerprint reduces a pipeline to the canonical identity of the program
// it implements: the installed rule set is denormalized to its universal
// table (Theorem 1 makes this lossless), the table's entries are sorted
// into a canonical order (matching is order-free; resends and shuffled
// deliveries may install entries in any order), the sorted table is
// renormalized, and the resulting pipeline is hashed in canonical JSON.
// When the renormalized pipeline fuses, the fused first-match rule list
// (the canonical FDD in internal/fdd's sense) is layered into the hash
// too, so the fingerprint pins the decision structure as well as the
// relational content; unfusable pipelines fall back to the relational
// layer alone. Two switches hold semantically identical programs iff
// their fingerprints agree — regardless of the order their flow-mods
// arrived in or the multi-table shape they were installed as.
func Fingerprint(p *mat.Pipeline) (string, error) {
	u, err := core.Denormalize(p)
	if err != nil {
		return "", fmt.Errorf("confluence: fingerprint: %w", err)
	}
	u.SortEntries()
	res, err := core.Normalize(u, core.Options{})
	if err != nil {
		return "", fmt.Errorf("confluence: fingerprint: %w", err)
	}
	s, err := CanonicalState(res.Pipeline)
	if err != nil {
		return "", err
	}
	h := sha256.New()
	h.Write([]byte(s))
	if prog, err := fdd.Fuse(res.Pipeline); err == nil {
		raw, err := json.Marshal(prog.MatchTable())
		if err != nil {
			return "", fmt.Errorf("confluence: fingerprint: %w", err)
		}
		h.Write(raw)
	} else if !fdd.IsUnfusable(err) {
		return "", fmt.Errorf("confluence: fingerprint: %w", err)
	}
	return hex.EncodeToString(h.Sum(nil)[:8]), nil
}

// CanonicalState serializes a pipeline with every table's entries
// sorted, so pipelines differing only in entry order render identically.
// It is the syntactic state-equality relation the verifier groups
// interleaving outcomes by (finer than fingerprint equality: two
// canonically distinct states may still normalize to the same program).
func CanonicalState(p *mat.Pipeline) (string, error) {
	cp := clonePipeline(p)
	for _, st := range cp.Stages {
		st.Table.SortEntries()
	}
	raw, err := json.Marshal(cp)
	if err != nil {
		return "", err
	}
	return string(raw), nil
}

// clonePipeline deep-copies a pipeline (tables, schemas and entries).
func clonePipeline(p *mat.Pipeline) *mat.Pipeline {
	out := &mat.Pipeline{Name: p.Name, Start: p.Start, Fused: p.Fused}
	for _, st := range p.Stages {
		out.Stages = append(out.Stages, mat.Stage{
			Table:    st.Table.Clone(),
			Next:     st.Next,
			MissDrop: st.MissDrop,
		})
	}
	return out
}
