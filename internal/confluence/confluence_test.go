// The table-driven suite lives in an external test package so it can
// plant cases through internal/difftest (which itself imports confluence
// for the fuzz cross-check) without an import cycle.
package confluence_test

import (
	"strings"
	"testing"

	"manorm/internal/confluence"
	"manorm/internal/difftest"
	"manorm/internal/mat"
	"manorm/internal/openflow"
)

// newBase is the shared two-entry base state: exact (ip, port) keys
// selecting an output port.
func newBase() *mat.Pipeline {
	t := mat.New("base", mat.Schema{mat.F("ip", 8), mat.F("port", 8), mat.A("out", 16)}).
		Add(mat.Exact(1, 8), mat.Exact(1, 8), mat.Exact(10, 16)).
		Add(mat.Exact(2, 8), mat.Exact(2, 8), mat.Exact(20, 16))
	return mat.SingleTable(t)
}

func mkMod(cmd openflow.FlowModCommand, ip, port uint64, actions []openflow.ActionField) openflow.FlowMod {
	return openflow.FlowMod{
		Command: cmd, TableID: 0,
		Match: []openflow.MatchField{
			{Name: "ip", Width: 8, Cell: mat.Exact(ip, 8)},
			{Name: "port", Width: 8, Cell: mat.Exact(port, 8)},
		},
		Actions: actions,
	}
}

func out(v uint64) []openflow.ActionField {
	return []openflow.ActionField{{Name: "out", Width: 16, Value: v}}
}

func add(ip, port, o uint64) openflow.FlowMod {
	return mkMod(openflow.FlowAdd, ip, port, out(o))
}

func del(ip, port uint64) openflow.FlowMod {
	return mkMod(openflow.FlowDelete, ip, port, nil)
}

func modify(ip, port, o uint64) openflow.FlowMod {
	return mkMod(openflow.FlowModify, ip, port, out(o))
}

func TestCheckKnownPairs(t *testing.T) {
	opts := confluence.Options{Seed: 1, Compensation: true}
	cases := []struct {
		name       string
		batches    [][]openflow.FlowMod
		confluent  bool
		rejections bool // expect at least one rejected mod in some ordering
	}{
		{
			name:      "disjoint adds",
			batches:   [][]openflow.FlowMod{{add(5, 5, 50)}, {add(6, 6, 60)}},
			confluent: true,
		},
		{
			name:      "delete vs add of distinct keys",
			batches:   [][]openflow.FlowMod{{del(1, 1)}, {add(6, 6, 60)}},
			confluent: true,
		},
		{
			name:      "modify vs add elsewhere",
			batches:   [][]openflow.FlowMod{{modify(1, 1, 11)}, {add(6, 6, 60)}},
			confluent: true,
		},
		{
			name:      "multi-mod disjoint batches",
			batches:   [][]openflow.FlowMod{{add(5, 5, 50), del(1, 1)}, {add(6, 6, 60), modify(2, 2, 22)}},
			confluent: true,
		},
		{
			// Whichever add lands first wins; the loser is rejected as a
			// duplicate. Identical actions make that race harmless.
			name:       "identical racing adds",
			batches:    [][]openflow.FlowMod{{add(7, 7, 70)}, {add(7, 7, 70)}},
			confluent:  true,
			rejections: true,
		},
		{
			name:       "racing adds with different actions",
			batches:    [][]openflow.FlowMod{{add(7, 7, 70)}, {add(7, 7, 71)}},
			confluent:  false,
			rejections: true,
		},
		{
			// delete-then-add installs the key; add-then-delete removes it.
			name:       "add vs delete of the same absent key",
			batches:    [][]openflow.FlowMod{{add(9, 9, 90)}, {del(9, 9)}},
			confluent:  false,
			rejections: true,
		},
		{
			name:      "last-writer-wins modifies",
			batches:   [][]openflow.FlowMod{{modify(1, 1, 11)}, {modify(1, 1, 12)}},
			confluent: false,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			v, err := confluence.Check(newBase(), c.batches, opts)
			if err != nil {
				t.Fatalf("Check: %v", err)
			}
			if v.Confluent != c.confluent {
				t.Fatalf("Confluent = %v, want %v (verdict %+v)", v.Confluent, c.confluent, v)
			}
			if !v.Exhaustive {
				t.Fatalf("small batches must enumerate exhaustively, got sampled %d orderings", v.Orderings)
			}
			if c.rejections && len(v.Rejections) == 0 {
				t.Fatal("expected rejected mods in some ordering, saw none")
			}
			if !c.rejections && len(v.Rejections) > 0 {
				t.Fatalf("unexpected rejections: %+v", v.Rejections)
			}
			if v.Compensation == nil || !v.Compensation.OK {
				t.Fatalf("compensation must be well-founded here, got %+v", v.Compensation)
			}
			if v.Compensation.Prefixes == 0 {
				t.Fatal("compensation checked no prefixes")
			}
			if c.confluent {
				if v.NormalForms != 1 || v.Fingerprint == "" || v.Counterexample != nil {
					t.Fatalf("confluent verdict inconsistent: %+v", v)
				}
			} else {
				if v.Counterexample == nil {
					t.Fatal("non-confluent verdict without a counterexample")
				}
				r := v.Counterexample.Render(c.batches)
				if !strings.Contains(r, "non-confluent") || !strings.Contains(r, "batch 0") {
					t.Fatalf("render missing expected sections:\n%s", r)
				}
			}
		})
	}
}

// TestCheckOrderingCounts pins the enumeration accounting for a 2×2 pair.
func TestCheckOrderingCounts(t *testing.T) {
	batches := [][]openflow.FlowMod{{add(5, 5, 50), add(6, 6, 60)}, {del(1, 1), del(2, 2)}}
	v, err := confluence.Check(newBase(), batches, confluence.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if v.Orderings != 6 || !v.Exhaustive {
		t.Fatalf("got %d orderings (exhaustive=%v), want 6 exhaustive", v.Orderings, v.Exhaustive)
	}
	if !v.Confluent || v.PacketsChecked == 0 {
		t.Fatalf("disjoint batches must commute with a witnessed forwarding check: %+v", v)
	}
}

// TestCheckEquivalentInsertionOrders exercises the fingerprint layer:
// two orderings that install the same rows in different sequences reach
// the same canonical state and fingerprint.
func TestCheckEquivalentInsertionOrders(t *testing.T) {
	batches := [][]openflow.FlowMod{{add(5, 5, 50)}, {add(6, 6, 60)}}
	v, err := confluence.Check(newBase(), batches, confluence.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !v.Confluent || v.FinalStates != 1 {
		t.Fatalf("insertion order must not matter: %+v", v)
	}
}

// TestPlantedRematchHazardPair: the Fig. 3 rematch-hazard construction
// carrying two racing adds of the same key must be flagged non-confluent.
func TestPlantedRematchHazardPair(t *testing.T) {
	p := difftest.PlantConfluencePair(3)
	v, err := confluence.Check(mat.SingleTable(p.Table), p.Batches, confluence.Options{Seed: 1, Compensation: true})
	if err != nil {
		t.Fatal(err)
	}
	if v.Confluent {
		t.Fatal("planted racing pair on the rematch-hazard table must be non-confluent")
	}
	if v.Counterexample == nil || len(v.Rejections) == 0 {
		t.Fatalf("expected counterexample and duplicate-add rejections: %+v", v)
	}
	if v.Compensation == nil || !v.Compensation.OK {
		t.Fatalf("compensation must still be well-founded: %+v", v.Compensation)
	}
}

// TestFingerprintIgnoresEntryOrder: same rows, shuffled install order,
// identical fingerprints — and a semantic change flips the fingerprint.
func TestFingerprintIgnoresEntryOrder(t *testing.T) {
	a := mat.New("t", mat.Schema{mat.F("ip", 8), mat.A("out", 16)}).
		Add(mat.Exact(1, 8), mat.Exact(10, 16)).
		Add(mat.Exact(2, 8), mat.Exact(20, 16))
	b := mat.New("t", mat.Schema{mat.F("ip", 8), mat.A("out", 16)}).
		Add(mat.Exact(2, 8), mat.Exact(20, 16)).
		Add(mat.Exact(1, 8), mat.Exact(10, 16))
	fa, err := confluence.Fingerprint(mat.SingleTable(a))
	if err != nil {
		t.Fatal(err)
	}
	fb, err := confluence.Fingerprint(mat.SingleTable(b))
	if err != nil {
		t.Fatal(err)
	}
	if fa != fb {
		t.Fatalf("entry order changed the fingerprint: %s vs %s", fa, fb)
	}
	c := mat.New("t", mat.Schema{mat.F("ip", 8), mat.A("out", 16)}).
		Add(mat.Exact(1, 8), mat.Exact(10, 16)).
		Add(mat.Exact(2, 8), mat.Exact(21, 16))
	fc, err := confluence.Fingerprint(mat.SingleTable(c))
	if err != nil {
		t.Fatal(err)
	}
	if fc == fa {
		t.Fatal("semantically different programs share a fingerprint")
	}
}
