package confluence

import (
	"fmt"
	"math/rand"
)

// Interleavings enumerates orders in which the batches' mods may be
// delivered, each order a sequence of batch indices (batch i appears
// sizes[i] times; intra-batch order is always preserved, matching the
// fabric's per-member delivery shuffle). When the number of distinct
// interleavings is at most maxExhaustive all of them are returned with
// exhaustive=true; otherwise a deduplicated sample is returned — the
// identity order, the reversed order, and seeded uniform draws over the
// remaining interleavings — with exhaustive=false.
func Interleavings(sizes []int, maxExhaustive, sample int, seed int64) ([][]int, bool) {
	total := 0
	active := 0
	for _, s := range sizes {
		total += s
		if s > 0 {
			active++
		}
	}
	if total == 0 {
		return [][]int{{}}, true
	}
	if active <= 1 || multinomialCapped(sizes, maxExhaustive+1) <= maxExhaustive {
		var orders [][]int
		prefix := make([]int, 0, total)
		remaining := append([]int(nil), sizes...)
		var walk func()
		walk = func() {
			if len(prefix) == total {
				orders = append(orders, append([]int(nil), prefix...))
				return
			}
			for bi := range remaining {
				if remaining[bi] == 0 {
					continue
				}
				remaining[bi]--
				prefix = append(prefix, bi)
				walk()
				prefix = prefix[:len(prefix)-1]
				remaining[bi]++
			}
		}
		walk()
		return orders, true
	}

	// Sampled mode: always include the two extreme orders, then draw
	// uniformly over distinct interleavings — picking the next batch with
	// probability proportional to its remaining mods makes every
	// completion equally likely.
	seen := make(map[string]bool)
	var orders [][]int
	add := func(o []int) {
		k := fmt.Sprint(o)
		if !seen[k] {
			seen[k] = true
			orders = append(orders, o)
		}
	}
	identity := make([]int, 0, total)
	for bi, s := range sizes {
		for k := 0; k < s; k++ {
			identity = append(identity, bi)
		}
	}
	add(identity)
	reversed := make([]int, 0, total)
	for bi := len(sizes) - 1; bi >= 0; bi-- {
		for k := 0; k < sizes[bi]; k++ {
			reversed = append(reversed, bi)
		}
	}
	add(reversed)

	rng := rand.New(rand.NewSource(seed))
	for tries := 0; len(orders) < sample && tries < 8*sample; tries++ {
		remaining := append([]int(nil), sizes...)
		left := total
		o := make([]int, 0, total)
		for left > 0 {
			pick := rng.Intn(left)
			for bi, r := range remaining {
				if pick < r {
					o = append(o, bi)
					remaining[bi]--
					left--
					break
				}
				pick -= r
			}
		}
		add(o)
	}
	return orders, false
}

// multinomialCapped computes the number of distinct interleavings —
// (sum sizes)! / prod(sizes[i]!) — capped at limit to avoid overflow.
func multinomialCapped(sizes []int, limit int) int {
	count := 1
	placed := 0
	for _, s := range sizes {
		for k := 1; k <= s; k++ {
			placed++
			count = count * placed / k // exact: C(placed, k) builds incrementally
			if count >= limit {
				return limit
			}
		}
	}
	return count
}
