package confluence

import (
	"fmt"

	"manorm/internal/mat"
	"manorm/internal/openflow"
)

// CompensationReport is the well-founded-compensation verdict: for every
// prefix of every batch, applying the prefix and then the inverses of
// its applied mods in reverse order must restore the base state exactly.
type CompensationReport struct {
	OK bool `json:"ok"`
	// Prefixes counts the (batch, prefix-length) rollbacks checked.
	Prefixes int `json:"prefixes"`
	// Batch/Prefix locate the first failing rollback; Detail explains it.
	Batch  int    `json:"batch,omitempty"`
	Prefix int    `json:"prefix,omitempty"`
	Detail string `json:"detail,omitempty"`
}

// checkCompensation verifies WFC against the base state. Each mod's
// inverse is computed against the state it executes on (a delete's
// inverse must restore the row's prior actions); mods the pipeline
// rejects have no effect and need no compensation.
func checkCompensation(base *mat.Pipeline, batches [][]openflow.FlowMod) (*CompensationReport, error) {
	want, err := CanonicalState(base)
	if err != nil {
		return nil, err
	}
	rep := &CompensationReport{OK: true}
	for bi, batch := range batches {
		for k := 1; k <= len(batch); k++ {
			p := clonePipeline(base)
			var undo []openflow.FlowMod
			for i := 0; i < k; i++ {
				inv, invErr := inverse(p, &batch[i])
				if err := openflow.ApplyToPipeline(p, &batch[i]); err != nil {
					continue // rejected: no state change to compensate
				}
				if invErr != nil {
					return nil, fmt.Errorf("confluence: no inverse for applied mod %d of batch %d: %w", i, bi, invErr)
				}
				undo = append(undo, inv)
			}
			fail := func(format string, args ...any) {
				rep.OK = false
				rep.Batch = bi
				rep.Prefix = k
				rep.Detail = fmt.Sprintf(format, args...)
			}
			rolledBack := true
			for i := len(undo) - 1; i >= 0; i-- {
				if err := openflow.ApplyToPipeline(p, &undo[i]); err != nil {
					fail("rollback of batch %d prefix %d rejected its own inverse: %v", bi, k, err)
					rolledBack = false
					break
				}
			}
			if !rolledBack {
				return rep, nil
			}
			got, err := CanonicalState(p)
			if err != nil {
				return nil, err
			}
			if got != want {
				fail("rollback of batch %d prefix %d did not restore the base state", bi, k)
				return rep, nil
			}
			rep.Prefixes++
		}
	}
	return rep, nil
}

// inverse computes the flow-mod undoing f relative to the current state
// of p (before f is applied): an add inverts to a delete of the same
// match, a delete to an add restoring the displaced row's actions, a
// modify to a modify writing the prior actions back.
func inverse(p *mat.Pipeline, f *openflow.FlowMod) (openflow.FlowMod, error) {
	if int(f.TableID) >= len(p.Stages) {
		return openflow.FlowMod{}, fmt.Errorf("table %d out of range", f.TableID)
	}
	switch f.Command {
	case openflow.FlowAdd:
		return openflow.FlowMod{
			Command: openflow.FlowDelete, TableID: f.TableID,
			Match: append([]openflow.MatchField(nil), f.Match...),
		}, nil
	case openflow.FlowDelete, openflow.FlowModify:
		t := p.Stages[f.TableID].Table
		e, err := findRow(t, f.Match)
		if err != nil {
			return openflow.FlowMod{}, err
		}
		cmd := openflow.FlowAdd
		if f.Command == openflow.FlowModify {
			cmd = openflow.FlowModify
		}
		inv := openflow.FlowMod{
			Command: cmd, TableID: f.TableID,
			Match: append([]openflow.MatchField(nil), f.Match...),
		}
		for _, ai := range t.Schema.Actions() {
			inv.Actions = append(inv.Actions, openflow.ActionField{
				Name: t.Schema[ai].Name, Width: t.Schema[ai].Width, Value: e[ai].Bits,
			})
		}
		return inv, nil
	default:
		return openflow.FlowMod{}, fmt.Errorf("unknown flow-mod command %d", f.Command)
	}
}

// findRow locates the entry addressed by the match fields, mirroring the
// agent's key semantics: unnamed fields default to Any, named cells are
// canonicalized to the schema width, and the entry must match exactly.
func findRow(t *mat.Table, fields []openflow.MatchField) (mat.Entry, error) {
	cells := make([]mat.Cell, len(t.Schema))
	for i := range cells {
		cells[i] = mat.Any()
	}
	for _, f := range fields {
		i := t.Schema.Index(f.Name)
		if i < 0 {
			return nil, fmt.Errorf("table %s has no match field %q", t.Name, f.Name)
		}
		if t.Schema[i].Kind != mat.Field {
			return nil, fmt.Errorf("attribute %q is not a match field", f.Name)
		}
		cells[i] = f.Cell.Canonical(t.Schema[i].Width)
	}
	for _, e := range t.Entries {
		same := true
		for _, fi := range t.Schema.Fields() {
			if e[fi] != cells[fi] {
				same = false
				break
			}
		}
		if same {
			return e, nil
		}
	}
	return nil, fmt.Errorf("no entry for match in table %s", t.Name)
}
