package confluence

import (
	"fmt"
	"sort"
	"strings"

	"manorm/internal/mat"
	"manorm/internal/openflow"
)

// Counterexample renders the minimal evidence of non-confluence: the two
// divergent delivery orderings and either the differing normal forms or
// a witness record the final states forward differently.
type Counterexample struct {
	// OrderA/OrderB are the two interleavings (sequences of batch
	// indices) whose outcomes differ.
	OrderA []int `json:"order_a,omitempty"`
	OrderB []int `json:"order_b,omitempty"`
	// FingerprintA/FingerprintB are the orderings' normal-form
	// fingerprints (equal for forwarding divergences).
	FingerprintA string `json:"fingerprint_a,omitempty"`
	FingerprintB string `json:"fingerprint_b,omitempty"`
	// NormalFormA/NormalFormB render the divergent final states as
	// universal-style canonical JSON when the fingerprints differ.
	NormalFormA string `json:"normal_form_a,omitempty"`
	NormalFormB string `json:"normal_form_b,omitempty"`
	// Probe is the witness record on which forwarding diverged, with
	// ObservedA/ObservedB the two observables.
	Probe     map[string]uint64 `json:"probe,omitempty"`
	ObservedA string            `json:"observed_a,omitempty"`
	ObservedB string            `json:"observed_b,omitempty"`
	// Detail is the one-line human summary.
	Detail string `json:"detail"`
}

// divergentForms builds the counterexample for two orderings reaching
// different normal forms.
func divergentForms(a, b *final) *Counterexample {
	return &Counterexample{
		OrderA:       a.order,
		OrderB:       b.order,
		FingerprintA: a.fp,
		FingerprintB: b.fp,
		NormalFormA:  a.state,
		NormalFormB:  b.state,
		Detail: fmt.Sprintf("orderings %v and %v renormalize to distinct forms %s vs %s",
			a.order, b.order, a.fp, b.fp),
	}
}

// divergentWitness builds the counterexample for two state-distinct
// orderings that fingerprint equal but forward a probe differently.
func divergentWitness(a, b *final, in mat.Record, oa, ob mat.Record) *Counterexample {
	probe := make(map[string]uint64, len(in))
	for k, v := range in {
		probe[k] = v
	}
	return &Counterexample{
		OrderA:       a.order,
		OrderB:       b.order,
		FingerprintA: a.fp,
		FingerprintB: b.fp,
		Probe:        probe,
		ObservedA:    renderRecord(oa),
		ObservedB:    renderRecord(ob),
		Detail: fmt.Sprintf("orderings %v and %v forward %s differently: %s vs %s",
			a.order, b.order, renderRecord(mat.Record(probe)), renderRecord(oa), renderRecord(ob)),
	}
}

// renderRecord formats a record deterministically (sorted attributes).
func renderRecord(r mat.Record) string {
	keys := make([]string, 0, len(r))
	for k := range r {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%d", k, r[k]))
	}
	return "{" + strings.Join(parts, " ") + "}"
}

// Render prints the counterexample with the updates it concerns: the
// batches, the two divergent orderings, and the differing outcomes —
// the human-readable form manorm -confluence emits.
func (c *Counterexample) Render(batches [][]openflow.FlowMod) string {
	var b strings.Builder
	fmt.Fprintf(&b, "non-confluent: %s\n", c.Detail)
	for bi, batch := range batches {
		fmt.Fprintf(&b, "batch %d:\n", bi)
		for i := range batch {
			fmt.Fprintf(&b, "  [%d] %s\n", i, renderMod(&batch[i]))
		}
	}
	if len(c.OrderA) > 0 || len(c.OrderB) > 0 {
		fmt.Fprintf(&b, "ordering A %v -> %s\nordering B %v -> %s\n",
			c.OrderA, c.FingerprintA, c.OrderB, c.FingerprintB)
	}
	if c.NormalFormA != "" && c.NormalFormA != c.NormalFormB {
		fmt.Fprintf(&b, "normal form A: %s\nnormal form B: %s\n", c.NormalFormA, c.NormalFormB)
	}
	if c.Probe != nil {
		fmt.Fprintf(&b, "witness %s: A observes %s, B observes %s\n",
			renderRecord(mat.Record(c.Probe)), c.ObservedA, c.ObservedB)
	}
	return b.String()
}

// renderMod formats one flow-mod on a single line.
func renderMod(f *openflow.FlowMod) string {
	cmd := map[openflow.FlowModCommand]string{
		openflow.FlowAdd: "add", openflow.FlowModify: "modify", openflow.FlowDelete: "delete",
	}[f.Command]
	if cmd == "" {
		cmd = fmt.Sprintf("cmd%d", f.Command)
	}
	var parts []string
	for _, m := range f.Match {
		if m.Cell.IsAny() {
			parts = append(parts, m.Name+"=*")
			continue
		}
		parts = append(parts, fmt.Sprintf("%s=%d/%d", m.Name, m.Cell.Bits, m.Cell.PLen))
	}
	s := fmt.Sprintf("%s t%d {%s}", cmd, f.TableID, strings.Join(parts, " "))
	if len(f.Actions) > 0 {
		var acts []string
		for _, a := range f.Actions {
			acts = append(acts, fmt.Sprintf("%s=%d", a.Name, a.Value))
		}
		s += " -> {" + strings.Join(acts, " ") + "}"
	}
	return s
}
