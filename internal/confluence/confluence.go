// Package confluence is the semantic commutation verifier for concurrent
// control-plane updates — the nccheck idea applied to match-action
// programs. Given a pipeline state and a set of concurrently-planned
// flow-mod batches, it enumerates the interleavings of the batches
// (exhaustively while the multinomial count fits a budget, by seeded
// sampling beyond it) and decides whether the batches *semantically*
// commute:
//
//   - CC (convergent commutation): every interleaving must renormalize to
//     the identical canonical normal-form fingerprint (Theorem 1 makes
//     the fingerprint a sound program identity; the fused-FDD layer of
//     the hash pins the first-match decision structure too), and the
//     distinct final states must forward packet-for-packet equal on a
//     witness batch drawn from the pipelines' joint match domain.
//   - WFC (well-founded compensation): rolling back any applied prefix of
//     any batch — inverting each mod against the state it executed on —
//     must restore the base state exactly.
//
// A flow-mod rejected mid-interleaving (duplicate add, delete of a
// missing key) does not abort the check: the agent's ApplyToPipeline
// rejects before mutating, so the verifier skips the mod, records the
// rejection, and continues — first-writer-wins races surface as
// divergent finals, exactly as they would on a real switch. Callers that
// need every ordering to apply cleanly (the fabric's epoch protocol
// pre-validates whole batches) must additionally require Rejections == 0.
//
// The fabric uses Check as the semantic oracle behind its syntactic
// Commutes fast path; mafuzz -confluence-fuzz cross-checks Check against
// brute-force interleaving on the NetKAT oracle; manorm -confluence
// exposes it as a JSON verdict with a rendered counterexample.
package confluence

import (
	"fmt"

	"manorm/internal/mat"
	"manorm/internal/netkat"
	"manorm/internal/openflow"
)

// Options bounds one Check.
type Options struct {
	// MaxOrderings is the exhaustive-enumeration budget: when the number
	// of distinct interleavings is at most this, all of them are checked.
	// Default 64.
	MaxOrderings int
	// SampleOrderings is the number of orderings checked beyond the
	// budget: the identity and reversed orders plus seeded uniform draws,
	// deduplicated. Default 16.
	SampleOrderings int
	// WitnessPackets bounds the forwarding witness: the joint match
	// domain of the final states is enumerated exhaustively up to this
	// many records, sampled at this budget beyond. Default 256.
	WitnessPackets int
	// Seed drives the ordering sampler and (transitively) the witness
	// sampler, making verdicts reproducible.
	Seed int64
	// Compensation additionally checks well-founded compensation for
	// every prefix of every batch.
	Compensation bool
}

func (o Options) withDefaults() Options {
	if o.MaxOrderings <= 0 {
		o.MaxOrderings = 64
	}
	if o.SampleOrderings <= 0 {
		o.SampleOrderings = 16
	}
	if o.WitnessPackets <= 0 {
		o.WitnessPackets = 256
	}
	return o
}

// Rejection records one flow-mod an interleaving could not apply (the
// state was left untouched by it).
type Rejection struct {
	// Ordering indexes the interleaving, Batch/Index the offending mod.
	Ordering int    `json:"ordering"`
	Batch    int    `json:"batch"`
	Index    int    `json:"index"`
	Err      string `json:"err"`
}

// Verdict is the outcome of one Check.
type Verdict struct {
	// Confluent reports semantic commutation: every checked interleaving
	// reached the same normal form and witness-equal forwarding, and (if
	// requested) compensation is well-founded.
	Confluent bool `json:"confluent"`
	// Orderings counts the interleavings checked; Exhaustive reports
	// whether that was all of them.
	Orderings  int  `json:"orderings"`
	Exhaustive bool `json:"exhaustive"`
	// NormalForms and FinalStates count the distinct canonical
	// fingerprints and distinct canonical final states observed across
	// the orderings. Confluence requires NormalForms == 1; FinalStates
	// may legitimately exceed 1 when syntactically different rule sets
	// normalize to the same program.
	NormalForms int `json:"normal_forms"`
	FinalStates int `json:"final_states"`
	// Fingerprint is the common normal form when Confluent.
	Fingerprint string `json:"fingerprint,omitempty"`
	// Rejections lists every mod some ordering rejected.
	Rejections []Rejection `json:"rejections,omitempty"`
	// PacketsChecked counts the witness records compared;
	// WitnessExhaustive whether the joint domain was fully enumerated.
	PacketsChecked    int  `json:"packets_checked"`
	WitnessExhaustive bool `json:"witness_exhaustive"`
	// Compensation is the WFC report when Options.Compensation was set.
	Compensation *CompensationReport `json:"compensation,omitempty"`
	// Counterexample renders the first divergence when not Confluent.
	Counterexample *Counterexample `json:"counterexample,omitempty"`
}

// final is one interleaving's outcome.
type final struct {
	order []int
	pipe  *mat.Pipeline
	state string
	fp    string
}

// Check verifies semantic commutation of the batches against base. The
// base pipeline is not mutated. An error reports a harness-level failure
// (unevaluable state, malformed pipeline) — never a non-confluence
// verdict, which is reported in the Verdict.
func Check(base *mat.Pipeline, batches [][]openflow.FlowMod, opts Options) (*Verdict, error) {
	opts = opts.withDefaults()
	sizes := make([]int, len(batches))
	for i, b := range batches {
		sizes[i] = len(b)
	}
	orders, exhaustive := Interleavings(sizes, opts.MaxOrderings, opts.SampleOrderings, opts.Seed)
	v := &Verdict{Orderings: len(orders), Exhaustive: exhaustive}

	finals := make([]*final, 0, len(orders))
	for oi, order := range orders {
		p := clonePipeline(base)
		pos := make([]int, len(batches))
		for _, bi := range order {
			mod := batches[bi][pos[bi]]
			if err := openflow.ApplyToPipeline(p, &mod); err != nil {
				v.Rejections = append(v.Rejections, Rejection{
					Ordering: oi, Batch: bi, Index: pos[bi], Err: err.Error(),
				})
			}
			pos[bi]++
		}
		state, err := CanonicalState(p)
		if err != nil {
			return nil, fmt.Errorf("confluence: ordering %d: %w", oi, err)
		}
		finals = append(finals, &final{order: order, pipe: p, state: state})
	}

	// Group the finals by canonical state: state-equal orderings are
	// trivially fingerprint- and forwarding-equal, so only one
	// representative per distinct state pays for renormalization and
	// witness evaluation.
	repOf := make(map[string]*final)
	var reps []*final
	for _, f := range finals {
		if repOf[f.state] == nil {
			repOf[f.state] = f
			reps = append(reps, f)
		}
	}
	v.FinalStates = len(reps)

	fps := make(map[string]*final) // fingerprint -> first rep with it
	for _, f := range reps {
		fp, err := Fingerprint(f.pipe)
		if err != nil {
			return nil, fmt.Errorf("confluence: fingerprint: %w", err)
		}
		f.fp = fp
		if fps[fp] == nil {
			fps[fp] = f
		}
	}
	v.NormalForms = len(fps)

	if v.NormalForms > 1 {
		var a, b *final
		for _, f := range reps {
			if a == nil {
				a = f
				continue
			}
			if f.fp != a.fp {
				b = f
				break
			}
		}
		v.Counterexample = divergentForms(a, b)
	} else {
		v.Fingerprint = reps[0].fp
		// All normal forms agree; witness-check the distinct final states
		// (and the base's domain, so deleted traffic is probed too) for
		// packet-for-packet agreement — the runtime complement of the
		// symbolic fingerprint.
		cex, err := witnessCheck(base, reps, opts, v)
		if err != nil {
			return nil, err
		}
		v.Counterexample = cex
	}

	if opts.Compensation {
		rep, err := checkCompensation(base, batches)
		if err != nil {
			return nil, err
		}
		v.Compensation = rep
		if !rep.OK && v.Counterexample == nil {
			v.Counterexample = &Counterexample{
				Detail: fmt.Sprintf("compensation not well-founded: %s", rep.Detail),
			}
		}
	}

	v.Confluent = v.NormalForms == 1 && v.Counterexample == nil
	return v, nil
}

// witnessCheck evaluates every distinct final state on records drawn
// from the joint match domain, comparing observables pairwise against
// the first representative.
func witnessCheck(base *mat.Pipeline, reps []*final, opts Options, v *Verdict) (*Counterexample, error) {
	pipes := make([]*mat.Pipeline, 0, len(reps)+1)
	pipes = append(pipes, base)
	for _, f := range reps {
		pipes = append(pipes, f.pipe)
	}
	dom := netkat.DomainOfPipelines(pipes...)

	var cex *Counterexample
	exhaustive, err := dom.Each(opts.WitnessPackets, func(in mat.Record) error {
		r0, err := reps[0].pipe.Eval(in.Clone())
		if err != nil {
			return fmt.Errorf("confluence: witness eval: %w", err)
		}
		o0 := r0.Observable()
		for _, f := range reps[1:] {
			rk, err := f.pipe.Eval(in.Clone())
			if err != nil {
				return fmt.Errorf("confluence: witness eval: %w", err)
			}
			if !o0.Equal(rk.Observable()) {
				cex = divergentWitness(reps[0], f, in, o0, rk.Observable())
				return errStopWitness
			}
		}
		v.PacketsChecked++
		return nil
	})
	if err != nil && err != errStopWitness {
		return nil, err
	}
	v.WitnessExhaustive = exhaustive && cex == nil
	return cex, nil
}

var errStopWitness = fmt.Errorf("confluence: witness divergence")
