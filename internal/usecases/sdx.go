package usecases

import (
	"manorm/internal/mat"
	"manorm/internal/packet"
)

// Fig3 builds the paper's Fig. 3a VLAN table over (in_port, vlan | out):
// the fixture for the action-to-match caveat. Its dependency out → vlan
// holds, but decomposing along it cannot produce 1NF sub-tables.
func Fig3() *mat.Table {
	t := mat.New("vlan", mat.Schema{
		mat.F("in_port", 8), mat.F(packet.FieldVLAN, 12), mat.A("out", 8),
	})
	t.Add(mat.Exact(1, 8), mat.Exact(1, 12), mat.Exact(1, 8))
	t.Add(mat.Exact(1, 8), mat.Exact(2, 12), mat.Exact(2, 8))
	t.Add(mat.Exact(2, 8), mat.Exact(1, 12), mat.Exact(1, 8))
	t.Add(mat.Exact(3, 8), mat.Exact(1, 12), mat.Exact(3, 8))
	return t
}

// SDX is the appendix use case (Fig. 5): a software-defined IXP where
// member A's outbound policy (prefer C over D for HTTP where C announced
// the prefix), C's inbound load balancing, and the BGP announcements
// combine into one program. The decomposition into announcement, outbound
// and inbound tables cannot be driven by functional dependencies alone
// (it needs join dependencies, i.e. beyond-3NF machinery), and the naive
// pipeline is order-dependent; the published fix encodes the candidate
// set into an "all" metadata field.
type SDX struct {
	// Universal is the collapsed single-table program (Fig. 5a).
	Universal *mat.Table
	// Pipeline is the correct metadata-encoded pipeline (Fig. 5c).
	Pipeline *mat.Pipeline
}

// SDX concrete encoding:
//
//	prefixes: P1 = 203.0.113.0/25 (announced by C and D),
//	          P2 = 203.0.113.128/25 (announced by D only)
//	next hops (out): C1 = 1, C2 = 2, D = 3
//	ip_src splits C's inbound load 50/50 between C1 and C2.
//
// Member A's outbound policy: HTTP (tcp_dst=80) to a prefix announced by C
// goes to C; everything else follows BGP ranking (D preferred).
func NewSDX() *SDX {
	const (
		outC1 = 1
		outC2 = 2
		outD  = 3
	)
	p1 := mat.IPv4Prefix("203.0.113.0", 25)
	p2 := mat.IPv4Prefix("203.0.113.128", 25)
	loHalf := mat.Prefix(0, 1, 32)
	hiHalf := mat.Prefix(0x80000000, 1, 32)

	// Fig. 5a — the collapsed universal table: (ip_src, ip_dst, tcp_dst |
	// out).
	uni := mat.New("sdx", mat.Schema{
		mat.F(packet.FieldIPSrc, 32), mat.F(packet.FieldIPDst, 32), mat.F(packet.FieldTCPDst, 16), mat.A("out", 16),
	})
	// HTTP to P1 (announced by C): outbound policy sends it to C, whose
	// inbound policy balances across C1/C2 by source.
	uni.Add(loHalf, p1, mat.Exact(80, 16), mat.Exact(outC1, 16))
	uni.Add(hiHalf, p1, mat.Exact(80, 16), mat.Exact(outC2, 16))
	// Everything else to P1 and all of P2 follows BGP ranking: D.
	uni.Add(mat.Any(), p1, mat.Exact(443, 16), mat.Exact(outD, 16))
	uni.Add(mat.Any(), p2, mat.Exact(80, 16), mat.Exact(outD, 16))
	uni.Add(mat.Any(), p2, mat.Exact(443, 16), mat.Exact(outD, 16))

	// Fig. 5c — the metadata-encoded pipeline. Stage 1 (announcement
	// table) computes the candidate-set tag "all": which members announce
	// the destination prefix. Stage 2 (outbound) picks the egress member
	// from (all, tcp_dst): C for HTTP when C is a candidate, else D.
	// Stage 3 (inbound) expands C into C1/C2 by source.
	const (
		candCD = 1 // P1: both C and D announce
		candD  = 2 // P2: D only
		memC   = 1
		memD   = 2
	)
	an := mat.New("announce", mat.Schema{
		mat.F(packet.FieldIPDst, 32), mat.A(mat.MetaPrefix+"_all", 8),
	})
	an.Add(p1, mat.Exact(candCD, 8))
	an.Add(p2, mat.Exact(candD, 8))

	outT := mat.New("outbound", mat.Schema{
		mat.F(mat.MetaPrefix+"_all", 8), mat.F(packet.FieldTCPDst, 16), mat.A(mat.MetaPrefix+"_mem", 8),
	})
	outT.Add(mat.Exact(candCD, 8), mat.Exact(80, 16), mat.Exact(memC, 8))
	outT.Add(mat.Exact(candCD, 8), mat.Exact(443, 16), mat.Exact(memD, 8))
	outT.Add(mat.Exact(candD, 8), mat.Exact(80, 16), mat.Exact(memD, 8))
	outT.Add(mat.Exact(candD, 8), mat.Exact(443, 16), mat.Exact(memD, 8))

	in := mat.New("inbound", mat.Schema{
		mat.F(mat.MetaPrefix+"_mem", 8), mat.F(packet.FieldIPSrc, 32), mat.A("out", 16),
	})
	in.Add(mat.Exact(memC, 8), loHalf, mat.Exact(outC1, 16))
	in.Add(mat.Exact(memC, 8), hiHalf, mat.Exact(outC2, 16))
	in.Add(mat.Exact(memD, 8), mat.Any(), mat.Exact(outD, 16))

	pipe := &mat.Pipeline{
		Name:  "sdx-meta",
		Start: 0,
		Stages: []mat.Stage{
			{Table: an, Next: 1, MissDrop: true},
			{Table: outT, Next: 2, MissDrop: true},
			{Table: in, Next: -1, MissDrop: true},
		},
	}
	return &SDX{Universal: uni, Pipeline: pipe}
}

// NaiveInboundTable demonstrates why the FD-free decomposition of Fig. 5b
// fails: the inbound table without the membership tag holds two entries
// for the same (ip_src half) with different outputs — order-dependent.
func NaiveInboundTable() *mat.Table {
	t := mat.New("inbound-naive", mat.Schema{
		mat.F(packet.FieldIPSrc, 32), mat.A("out", 16),
	})
	t.Add(mat.Prefix(0, 1, 32), mat.Exact(1, 16))          // to C1
	t.Add(mat.Prefix(0, 1, 32), mat.Exact(3, 16))          // or to D — ambiguous!
	t.Add(mat.Prefix(0x80000000, 1, 32), mat.Exact(2, 16)) // to C2
	t.Add(mat.Prefix(0x80000000, 1, 32), mat.Exact(3, 16)) // or to D
	return t
}
