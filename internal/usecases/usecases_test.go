package usecases

import (
	"testing"

	"manorm/internal/core"
	"manorm/internal/mat"
	"manorm/internal/netkat"
	"manorm/internal/packet"
)

func TestFig1MatchesPaperCounts(t *testing.T) {
	g := Fig1()
	uni, err := g.Universal()
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 1a: 6 entries, 24 match-action fields.
	if len(uni.Entries) != 6 {
		t.Fatalf("universal entries = %d, want 6\n%s", len(uni.Entries), uni)
	}
	if uni.FieldCount() != 24 {
		t.Errorf("universal fields = %d, want 24", uni.FieldCount())
	}
	gp, err := g.Goto()
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 1b: 21 fields.
	if gp.FieldCount() != 21 {
		t.Errorf("goto fields = %d, want 21\n%s", gp.FieldCount(), gp)
	}
}

func TestFig1WeightedSplit(t *testing.T) {
	// Tenant 2 splits 1:1:2 → prefixes /2, /2, /1 (the paper's entries
	// 3-5).
	g := Fig1()
	uni, err := g.Universal()
	if err != nil {
		t.Fatal(err)
	}
	var plens []uint8
	for _, e := range uni.Entries {
		if e[1] == mat.IPv4("192.0.2.2") {
			plens = append(plens, e[0].PLen)
		}
	}
	if len(plens) != 3 || plens[0] != 2 || plens[1] != 2 || plens[2] != 1 {
		t.Errorf("tenant-2 source prefixes = %v, want [2 2 1]", plens)
	}
}

func TestAllRepresentationsEquivalent(t *testing.T) {
	for _, g := range []*GwLB{Fig1(), Generate(6, 4, 1), Generate(5, 3, 2)} {
		uni, err := g.Build(RepUniversal)
		if err != nil {
			t.Fatal(err)
		}
		for _, rep := range []Representation{RepGoto, RepMetadata, RepRematch} {
			p, err := g.Build(rep)
			if err != nil {
				t.Fatalf("%s: %v", rep, err)
			}
			if err := p.Validate(); err != nil {
				t.Fatalf("%s: %v", rep, err)
			}
			cex, _, err := netkat.EquivalentPipelines(uni, p, 0)
			if err != nil {
				t.Fatalf("%s: %v", rep, err)
			}
			if cex != nil {
				t.Fatalf("%s diverges from universal: %v", rep, cex)
			}
		}
	}
	if _, err := Fig1().Build(Representation("bogus")); err == nil {
		t.Errorf("unknown representation accepted")
	}
}

func TestGenerateShape(t *testing.T) {
	g := Generate(20, 8, 7)
	if len(g.Services) != 20 {
		t.Fatalf("services = %d", len(g.Services))
	}
	uni, err := g.Universal()
	if err != nil {
		t.Fatal(err)
	}
	// Equal power-of-two weights: exactly N×M entries and 4MN fields (the
	// paper's footprint formula).
	if len(uni.Entries) != 160 {
		t.Errorf("entries = %d, want 160", len(uni.Entries))
	}
	if uni.FieldCount() != 4*20*8 {
		t.Errorf("fields = %d, want %d", uni.FieldCount(), 4*20*8)
	}
	gp, err := g.Goto()
	if err != nil {
		t.Fatal(err)
	}
	// N(3+2M) for the goto decomposition.
	if want := 20 * (3 + 2*8); gp.FieldCount() != want {
		t.Errorf("goto fields = %d, want %d", gp.FieldCount(), want)
	}
	// Deterministic for a seed.
	g2 := Generate(20, 8, 7)
	u2, _ := g2.Universal()
	if !uni.Equal(u2) {
		t.Errorf("Generate not deterministic")
	}
}

func TestDeclaredDependenciesHold(t *testing.T) {
	for _, g := range []*GwLB{Fig1(), Generate(10, 8, 3)} {
		uni, err := g.Universal()
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range g.Declared() {
			if !f.HoldsIn(uni) {
				t.Errorf("declared FD %s does not hold", f.Format(uni.Schema))
			}
		}
	}
}

func TestGwlbNormalizesAlongDeclaredFDs(t *testing.T) {
	g := Generate(8, 4, 11)
	uni, err := g.Universal()
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Normalize(uni, core.Options{
		Target:   core.NF3,
		Declared: g.Declared(),
		Verify:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Pipeline.Depth() != 2 {
		t.Errorf("normalized depth = %d, want 2", res.Pipeline.Depth())
	}
	// The framework-derived pipeline must agree with the hand-built
	// metadata representation.
	handmade, err := g.Metadata()
	if err != nil {
		t.Fatal(err)
	}
	cex, _, err := netkat.EquivalentPipelines(res.Pipeline, handmade, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cex != nil {
		t.Errorf("framework and hand-built pipelines diverge: %v", cex)
	}
}

func TestFig2Properties(t *testing.T) {
	l3 := Fig2()
	if len(l3.Table.Entries) != 4 {
		t.Fatalf("entries = %d", len(l3.Table.Entries))
	}
	for _, f := range l3.Declared() {
		if !f.HoldsIn(l3.Table) {
			t.Errorf("declared FD %s does not hold", f.Format(l3.Table.Schema))
		}
	}
	res, err := core.Normalize(l3.Table, core.Options{Target: core.NF3, Declared: l3.Declared(), Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Pipeline.Depth() != 4 {
		t.Errorf("normalized depth = %d, want 4", res.Pipeline.Depth())
	}
}

func TestGenerateL3(t *testing.T) {
	l3 := GenerateL3(64, 8, 3, 5)
	if len(l3.Table.Entries) != 64 {
		t.Fatalf("entries = %d", len(l3.Table.Entries))
	}
	for _, f := range l3.Declared() {
		if !f.HoldsIn(l3.Table) {
			t.Errorf("declared FD %s does not hold in generated L3", f.Format(l3.Table.Schema))
		}
	}
	// Prefixes must be pairwise disjoint.
	for i, a := range l3.Table.Entries {
		for j, b := range l3.Table.Entries {
			if i < j && a[1].Overlaps(b[1], 32) {
				t.Fatalf("prefixes %d and %d overlap", i, j)
			}
		}
	}
	// Normalization shrinks the footprint substantially: 64 routes share
	// 8 next-hops over 3 ports.
	res, err := core.Normalize(l3.Table, core.Options{Target: core.NF3, Declared: l3.Declared(), Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Pipeline.FieldCount() >= l3.Table.FieldCount() {
		t.Errorf("normalization did not shrink: %d -> %d", l3.Table.FieldCount(), res.Pipeline.FieldCount())
	}
}

func TestFig3Caveat(t *testing.T) {
	tab := Fig3()
	a := core.Analyze(tab)
	// out → vlan holds and is the paper's action-to-match example.
	found := false
	for _, f := range a.FDs {
		if f.From == mat.SetOf(tab.Schema, "out") && f.To.Has(tab.Schema.Index(packet.FieldVLAN)) {
			found = true
		}
	}
	if !found {
		t.Errorf("out → vlan not mined from Fig. 3a")
	}
}

func TestSDXPipelineEquivalent(t *testing.T) {
	sdx := NewSDX()
	cex, exhaustive, err := netkat.EquivalentPipelines(mat.SingleTable(sdx.Universal), sdx.Pipeline, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !exhaustive {
		t.Errorf("SDX probe not exhaustive")
	}
	if cex != nil {
		t.Fatalf("SDX metadata pipeline diverges: %v", cex)
	}
}

func TestSDXNaiveInboundOrderDependent(t *testing.T) {
	// The appendix's point: without the membership tag the inbound table
	// is not order-independent — 1NF fails, so FD-based normalization
	// cannot produce it.
	if NaiveInboundTable().IsOrderIndependent() {
		t.Fatalf("naive inbound table unexpectedly order-independent")
	}
}

func TestSDXBeyondFDs(t *testing.T) {
	// No mined FD of the universal SDX table yields the 3-way
	// announcement/outbound/inbound split: the decomposition is a join
	// dependency, beyond 3NF. Sanity-check that the universal table is
	// already in 3NF under mined dependencies (nothing for the FD
	// framework to do).
	sdx := NewSDX()
	form, _ := core.Check(core.Analyze(sdx.Universal))
	if form < core.NF3 {
		t.Errorf("SDX universal table is %s; expected >= 3NF (FDs cannot split it)", form)
	}
}

func TestSplitErrors(t *testing.T) {
	if _, _, err := split([]Backend{{Out: 1, Weight: 0}}); err == nil {
		t.Errorf("zero weight accepted")
	}
}

func TestSplitCoversSpace(t *testing.T) {
	// Any weight vector must tile the space: every address matches
	// exactly one prefix.
	cases := [][]Backend{
		{{1, 1}},
		{{1, 1}, {2, 1}},
		{{1, 1}, {2, 1}, {3, 2}},
		{{1, 3}, {2, 5}},
		{{1, 1}, {2, 1}, {3, 1}, {4, 1}, {5, 1}, {6, 1}, {7, 1}, {8, 1}},
	}
	for ci, bs := range cases {
		cells, owner, err := split(bs)
		if err != nil {
			t.Fatalf("case %d: %v", ci, err)
		}
		if len(cells) != len(owner) {
			t.Fatalf("case %d: cells/owner length mismatch", ci)
		}
		probes := []uint64{0, 1, 1 << 28, 1 << 30, 1<<31 - 1, 1 << 31, 3 << 30, 1<<32 - 1}
		for _, v := range probes {
			hits := 0
			for _, c := range cells {
				if c.Matches(v, 32) {
					hits++
				}
			}
			if hits != 1 {
				t.Errorf("case %d: address %#x matched %d prefixes", ci, v, hits)
			}
		}
	}
}
