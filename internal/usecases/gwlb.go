// Package usecases builds the concrete match-action programs the paper
// evaluates: the cloud gateway & load-balancer pipeline of Fig. 1
// (parametric in services and backends), the L3 router of Fig. 2, the VLAN
// caveat table of Fig. 3, and the SDX program of the appendix (Fig. 5).
//
// Each generator produces the universal table, the decomposed
// representations for the join abstractions under study, and the declared
// semantic dependency set the normalization framework consumes.
package usecases

import (
	"fmt"
	"math/bits"
	"math/rand"

	"manorm/internal/fd"
	"manorm/internal/mat"
	"manorm/internal/packet"
)

// Backend is one load-balancer target: the switch port leading to the VM
// and its relative traffic weight.
type Backend struct {
	Out    uint16
	Weight int
}

// Service is one tenant service: a public VIP:port routed to weighted
// backends by client-address load balancing.
type Service struct {
	VIP      uint32
	Port     uint16
	Backends []Backend
}

// GwLB is the cloud access-gateway & load-balancer program of the paper's
// §2, parametric in N services × M backends (the evaluation uses N=20,
// M=8).
type GwLB struct {
	Services []Service
}

// Generate builds a random gateway & load-balancer configuration with n
// services of m equally weighted backends each, deterministically from the
// seed. VIPs are unique; ports are drawn from a small realistic pool so
// that distinct services may share a port (which is why tcp_dst does not
// determine ip_dst semantically).
func Generate(n, m int, seed int64) *GwLB {
	rng := rand.New(rand.NewSource(seed))
	ports := []uint16{80, 443, 22, 8080, 8443, 25, 53, 993}
	g := &GwLB{}
	nextOut := uint16(1)
	for s := 0; s < n; s++ {
		svc := Service{
			VIP:  0xC0000200 + uint32(s), // 192.0.2.0/24 block and beyond
			Port: ports[rng.Intn(len(ports))],
		}
		for b := 0; b < m; b++ {
			svc.Backends = append(svc.Backends, Backend{Out: nextOut, Weight: 1})
			nextOut++
		}
		g.Services = append(g.Services, svc)
	}
	return g
}

// Fig1 builds the exact 3-service example of the paper's Fig. 1: tenant 1
// (192.0.2.1:80, two backends 1:1), tenant 2 (192.0.2.2:443, three
// backends 1:1:2), tenant 3 (192.0.2.3:22, one backend).
func Fig1() *GwLB {
	return &GwLB{Services: []Service{
		{VIP: 0xC0000201, Port: 80, Backends: []Backend{{Out: 1, Weight: 1}, {Out: 2, Weight: 1}}},
		{VIP: 0xC0000202, Port: 443, Backends: []Backend{{Out: 3, Weight: 1}, {Out: 4, Weight: 1}, {Out: 5, Weight: 2}}},
		{VIP: 0xC0000203, Port: 22, Backends: []Backend{{Out: 6, Weight: 1}}},
	}}
}

// split divides the 32-bit client address space into aligned prefix blocks
// proportional to the backends' weights, returning one or more (prefix,
// backend) pairs per backend — the paper's ip_src-based splitting.
func split(backends []Backend) ([]mat.Cell, []int, error) {
	total := 0
	for _, b := range backends {
		if b.Weight <= 0 {
			return nil, nil, fmt.Errorf("usecases: non-positive backend weight")
		}
		total += b.Weight
	}
	// Round the denominator up to a power of two; distribute remainder
	// blocks round-robin so every backend keeps at least its share.
	denom := 1
	for denom < total {
		denom <<= 1
	}
	blocks := make([]int, len(backends))
	assigned := 0
	for i, b := range backends {
		blocks[i] = b.Weight * denom / total
		if blocks[i] == 0 {
			blocks[i] = 1
		}
		assigned += blocks[i]
	}
	for i := 0; assigned < denom; i = (i + 1) % len(backends) {
		blocks[i]++
		assigned++
	}
	for i := 0; assigned > denom; i = (i + 1) % len(backends) {
		if blocks[i] > 1 {
			blocks[i]--
			assigned--
		}
	}
	// Carve each backend's run of blocks into aligned prefixes.
	depth := uint8(bits.Len(uint(denom - 1)))
	var cells []mat.Cell
	var owner []int
	pos := 0
	for i := range backends {
		run := blocks[i]
		for run > 0 {
			// Largest aligned power-of-two chunk that fits.
			size := 1 << uint(bits.TrailingZeros(uint(pos)|uint(1<<30)))
			for size > run {
				size >>= 1
			}
			plen := depth - uint8(bits.Len(uint(size-1)))
			if size == 1 {
				plen = depth
			}
			base := uint64(pos) << (32 - depth)
			if depth == 0 {
				cells = append(cells, mat.Any())
			} else {
				cells = append(cells, mat.Prefix(base, plen, 32))
			}
			owner = append(owner, i)
			pos += size
			run -= size
		}
	}
	return cells, owner, nil
}

// Schema returns the universal table schema of the use case.
func (g *GwLB) Schema() mat.Schema {
	return mat.Schema{
		mat.F(packet.FieldIPSrc, 32),
		mat.F(packet.FieldIPDst, 32),
		mat.F(packet.FieldTCPDst, 16),
		mat.A("out", 16),
	}
}

// Declared returns the semantic dependency set of the use case: a VIP
// exposes one port, and (client half, VIP) picks the backend.
func (g *GwLB) Declared() []fd.FD {
	s := g.Schema()
	return []fd.FD{
		{From: mat.SetOf(s, packet.FieldIPDst), To: mat.SetOf(s, packet.FieldTCPDst)},
		{From: mat.SetOf(s, packet.FieldIPSrc, packet.FieldIPDst), To: mat.SetOf(s, "out")},
	}
}

// Universal builds the single-table representation (Fig. 1a).
func (g *GwLB) Universal() (*mat.Table, error) {
	t := mat.New("gwlb", g.Schema())
	for _, svc := range g.Services {
		cells, owner, err := split(svc.Backends)
		if err != nil {
			return nil, err
		}
		for i, c := range cells {
			t.Add(c, mat.Exact(uint64(svc.VIP), 32), mat.Exact(uint64(svc.Port), 16),
				mat.Exact(uint64(svc.Backends[owner[i]].Out), 16))
		}
	}
	return t, nil
}

// Goto builds the goto_table decomposition (Fig. 1b): a service classifier
// jumping into per-service load-balancer tables.
func (g *GwLB) Goto() (*mat.Pipeline, error) {
	first := mat.New("services", mat.Schema{
		mat.F(packet.FieldIPDst, 32), mat.F(packet.FieldTCPDst, 16), mat.A(mat.GotoAttr, 16),
	})
	p := &mat.Pipeline{Name: "gwlb-goto", Start: 0}
	p.Stages = append(p.Stages, mat.Stage{Table: first, Next: -1, MissDrop: true})
	for si, svc := range g.Services {
		first.Add(mat.Exact(uint64(svc.VIP), 32), mat.Exact(uint64(svc.Port), 16), mat.Exact(uint64(si+1), 16))
		lb := mat.New(fmt.Sprintf("lb%d", si), mat.Schema{mat.F(packet.FieldIPSrc, 32), mat.A("out", 16)})
		cells, owner, err := split(svc.Backends)
		if err != nil {
			return nil, err
		}
		for i, c := range cells {
			lb.Add(c, mat.Exact(uint64(svc.Backends[owner[i]].Out), 16))
		}
		p.Stages = append(p.Stages, mat.Stage{Table: lb, Next: -1, MissDrop: true})
	}
	return p, nil
}

// Metadata builds the metadata-tag decomposition (Fig. 1c): the service
// classifier writes a tenant tag matched by a single second-stage
// load-balancer table.
func (g *GwLB) Metadata() (*mat.Pipeline, error) {
	mn := mat.MetaPrefix + "_svc"
	first := mat.New("services", mat.Schema{
		mat.F(packet.FieldIPDst, 32), mat.F(packet.FieldTCPDst, 16), mat.A(mn, 16),
	})
	second := mat.New("lb", mat.Schema{
		mat.F(mn, 16), mat.F(packet.FieldIPSrc, 32), mat.A("out", 16),
	})
	for si, svc := range g.Services {
		first.Add(mat.Exact(uint64(svc.VIP), 32), mat.Exact(uint64(svc.Port), 16), mat.Exact(uint64(si), 16))
		cells, owner, err := split(svc.Backends)
		if err != nil {
			return nil, err
		}
		for i, c := range cells {
			second.Add(mat.Exact(uint64(si), 16), c, mat.Exact(uint64(svc.Backends[owner[i]].Out), 16))
		}
	}
	return &mat.Pipeline{
		Name:  "gwlb-meta",
		Start: 0,
		Stages: []mat.Stage{
			{Table: first, Next: 1, MissDrop: true},
			{Table: second, Next: -1, MissDrop: true},
		},
	}, nil
}

// Rematch builds the re-matching decomposition (Fig. 1d): the second stage
// re-matches ip_dst instead of carrying a tag.
func (g *GwLB) Rematch() (*mat.Pipeline, error) {
	first := mat.New("services", mat.Schema{
		mat.F(packet.FieldIPDst, 32), mat.F(packet.FieldTCPDst, 16),
	})
	second := mat.New("lb", mat.Schema{
		mat.F(packet.FieldIPDst, 32), mat.F(packet.FieldIPSrc, 32), mat.A("out", 16),
	})
	for _, svc := range g.Services {
		first.Add(mat.Exact(uint64(svc.VIP), 32), mat.Exact(uint64(svc.Port), 16))
		cells, owner, err := split(svc.Backends)
		if err != nil {
			return nil, err
		}
		for i, c := range cells {
			second.Add(mat.Exact(uint64(svc.VIP), 32), c, mat.Exact(uint64(svc.Backends[owner[i]].Out), 16))
		}
	}
	return &mat.Pipeline{
		Name:  "gwlb-rematch",
		Start: 0,
		Stages: []mat.Stage{
			{Table: first, Next: 1, MissDrop: true},
			{Table: second, Next: -1, MissDrop: true},
		},
	}, nil
}

// Representation names a gwlb pipeline flavor.
type Representation string

// The four representations under study, plus the compiler-fused form.
const (
	RepUniversal Representation = "universal"
	RepGoto      Representation = "goto"
	RepMetadata  Representation = "metadata"
	RepRematch   Representation = "rematch"
	// RepFused is the goto decomposition with the fusion hint set: the
	// datapath compiles the whole pipeline into one first-match decision
	// structure (internal/fdd), making the join free at forwarding time.
	RepFused Representation = "fused"
)

// Build returns the requested representation as a pipeline.
func (g *GwLB) Build(rep Representation) (*mat.Pipeline, error) {
	switch rep {
	case RepUniversal:
		t, err := g.Universal()
		if err != nil {
			return nil, err
		}
		return mat.SingleTable(t), nil
	case RepGoto:
		return g.Goto()
	case RepFused:
		p, err := g.Goto()
		if err != nil {
			return nil, err
		}
		p.Name = "gwlb-fused"
		p.Fused = true
		return p, nil
	case RepMetadata:
		return g.Metadata()
	case RepRematch:
		return g.Rematch()
	default:
		return nil, fmt.Errorf("usecases: unknown representation %q", rep)
	}
}
