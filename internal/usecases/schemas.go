package usecases

import (
	"fmt"
	"math/rand"

	"manorm/internal/fd"
	"manorm/internal/mat"
	"manorm/internal/packet"
)

// This file carries the protocol-independent example programs: the same
// gateway-style decomposition study as GwLB, but over header schemas the
// fixed Packet struct cannot express (VXLAN, MPLS, GTP-U). Every table is
// stamped with the schema's name as provenance, so a datapath compiled
// for a different schema rejects it at Install time.

// vxlanBinder & friends mint match/action columns from the shipped
// schemas, so widths always agree with the parse graph.
func schemaBinder(name string) *packet.Binder {
	dec, err := packet.BuiltinDecoder(name)
	if err != nil {
		panic(err) // shipped schemas compile; a failure is a programming error
	}
	return packet.NewBinder(dec.Schema())
}

// ---------------------------------------------------------------------------
// VXLAN tenant gateway

// VXLANHost is one tenant VM: inner Ethernet destination → egress port.
type VXLANHost struct {
	MAC uint64
	Out uint16
}

// VXLANTenant is one overlay segment: a VNI and its host table.
type VXLANTenant struct {
	VNI   uint32
	Hosts []VXLANHost
}

// VXLANGW is a VXLAN tenant gateway: classify the 24-bit VNI, then
// forward on the inner Ethernet destination — the overlay analogue of the
// paper's service classifier + per-service load balancer.
type VXLANGW struct {
	Tenants []VXLANTenant
}

// GenerateVXLAN builds a deterministic random gateway with n tenants of m
// hosts each. VNIs start at 1000; ports are globally unique.
func GenerateVXLAN(n, m int, seed int64) *VXLANGW {
	rng := rand.New(rand.NewSource(seed))
	g := &VXLANGW{}
	nextOut := uint16(1)
	for t := 0; t < n; t++ {
		ten := VXLANTenant{VNI: 1000 + uint32(t)}
		for h := 0; h < m; h++ {
			ten.Hosts = append(ten.Hosts, VXLANHost{
				MAC: 0x020000000000 | uint64(rng.Intn(1<<24))<<8 | uint64(h),
				Out: nextOut,
			})
			nextOut++
		}
		g.Tenants = append(g.Tenants, ten)
	}
	return g
}

// SchemaName returns the header schema the programs are written against.
func (g *VXLANGW) SchemaName() string { return packet.SchemaVXLAN }

// Schema returns the universal table schema.
func (g *VXLANGW) Schema() mat.Schema {
	b := schemaBinder(packet.SchemaVXLAN)
	return append(b.Columns(packet.FieldVXLANVNI, packet.FieldInnerEthDst), mat.A("out", 16))
}

// Declared returns the semantic dependencies: (VNI, inner MAC) is the
// key; the VNI alone determines nothing (hosts are per-tenant).
func (g *VXLANGW) Declared() []fd.FD {
	s := g.Schema()
	return []fd.FD{
		{From: mat.SetOf(s, packet.FieldVXLANVNI, packet.FieldInnerEthDst), To: mat.SetOf(s, "out")},
	}
}

// Universal builds the single-table representation.
func (g *VXLANGW) Universal() (*mat.Table, error) {
	t := mat.New("vxlan_gw", g.Schema())
	t.Provenance = packet.SchemaVXLAN
	for _, ten := range g.Tenants {
		for _, h := range ten.Hosts {
			t.Add(mat.Exact(uint64(ten.VNI), 24), mat.Exact(h.MAC, 48), mat.Exact(uint64(h.Out), 16))
		}
	}
	return t, nil
}

// Goto builds the goto_table decomposition: VNI classifier jumping into
// per-tenant host tables.
func (g *VXLANGW) Goto() (*mat.Pipeline, error) {
	b := schemaBinder(packet.SchemaVXLAN)
	first := mat.New("tenants", append(b.Columns(packet.FieldVXLANVNI), mat.A(mat.GotoAttr, 16)))
	first.Provenance = packet.SchemaVXLAN
	p := &mat.Pipeline{Name: "vxlan-goto", Start: 0}
	p.Stages = append(p.Stages, mat.Stage{Table: first, Next: -1, MissDrop: true})
	for ti, ten := range g.Tenants {
		first.Add(mat.Exact(uint64(ten.VNI), 24), mat.Exact(uint64(ti+1), 16))
		hosts := mat.New(fmt.Sprintf("hosts%d", ti), append(b.Columns(packet.FieldInnerEthDst), mat.A("out", 16)))
		hosts.Provenance = packet.SchemaVXLAN
		for _, h := range ten.Hosts {
			hosts.Add(mat.Exact(h.MAC, 48), mat.Exact(uint64(h.Out), 16))
		}
		p.Stages = append(p.Stages, mat.Stage{Table: hosts, Next: -1, MissDrop: true})
	}
	return p, nil
}

// Metadata builds the metadata-tag decomposition: the VNI classifier
// writes a tenant tag matched by one second-stage host table.
func (g *VXLANGW) Metadata() (*mat.Pipeline, error) {
	b := schemaBinder(packet.SchemaVXLAN)
	mn := mat.MetaPrefix + "_tenant"
	first := mat.New("tenants", append(b.Columns(packet.FieldVXLANVNI), mat.A(mn, 16)))
	first.Provenance = packet.SchemaVXLAN
	second := mat.New("hosts", append(mat.Schema{mat.F(mn, 16)}, append(b.Columns(packet.FieldInnerEthDst), mat.A("out", 16))...))
	second.Provenance = packet.SchemaVXLAN
	for ti, ten := range g.Tenants {
		first.Add(mat.Exact(uint64(ten.VNI), 24), mat.Exact(uint64(ti), 16))
		for _, h := range ten.Hosts {
			second.Add(mat.Exact(uint64(ti), 16), mat.Exact(h.MAC, 48), mat.Exact(uint64(h.Out), 16))
		}
	}
	return &mat.Pipeline{
		Name:  "vxlan-meta",
		Start: 0,
		Stages: []mat.Stage{
			{Table: first, Next: 1, MissDrop: true},
			{Table: second, Next: -1, MissDrop: true},
		},
	}, nil
}

// Rematch builds the re-matching decomposition: the host table re-matches
// the VNI instead of carrying a tag.
func (g *VXLANGW) Rematch() (*mat.Pipeline, error) {
	b := schemaBinder(packet.SchemaVXLAN)
	first := mat.New("tenants", b.Columns(packet.FieldVXLANVNI))
	first.Provenance = packet.SchemaVXLAN
	second := mat.New("hosts", append(b.Columns(packet.FieldVXLANVNI, packet.FieldInnerEthDst), mat.A("out", 16)))
	second.Provenance = packet.SchemaVXLAN
	for _, ten := range g.Tenants {
		first.Add(mat.Exact(uint64(ten.VNI), 24))
		for _, h := range ten.Hosts {
			second.Add(mat.Exact(uint64(ten.VNI), 24), mat.Exact(h.MAC, 48), mat.Exact(uint64(h.Out), 16))
		}
	}
	return &mat.Pipeline{
		Name:  "vxlan-rematch",
		Start: 0,
		Stages: []mat.Stage{
			{Table: first, Next: 1, MissDrop: true},
			{Table: second, Next: -1, MissDrop: true},
		},
	}, nil
}

// Build returns the requested representation as a pipeline.
func (g *VXLANGW) Build(rep Representation) (*mat.Pipeline, error) {
	return buildReps(rep, "vxlan", g.Universal, g.Goto, g.Metadata, g.Rematch)
}

// ---------------------------------------------------------------------------
// MPLS label-switched router

// MPLSFec is one forwarding-equivalence class: incoming label, outgoing
// (swapped) label, and a per-traffic-class egress port (QoS steering on
// the 3-bit TC field).
type MPLSFec struct {
	Label uint32
	Swap  uint32
	Outs  []uint16 // indexed by traffic class, len 1..8
}

// MPLSLSR is a label-switched router: stage 1 resolves the FEC from the
// top label, stage 2 picks the egress by (FEC, traffic class) and swaps
// the label.
type MPLSLSR struct {
	Fecs []MPLSFec
}

// GenerateMPLS builds a deterministic random LSR with n FECs, each
// steering tcs traffic classes (1..8) to distinct ports.
func GenerateMPLS(n, tcs int, seed int64) *MPLSLSR {
	if tcs < 1 {
		tcs = 1
	}
	if tcs > 8 {
		tcs = 8
	}
	rng := rand.New(rand.NewSource(seed))
	g := &MPLSLSR{}
	nextOut := uint16(1)
	for i := 0; i < n; i++ {
		f := MPLSFec{
			Label: 100 + uint32(i),
			Swap:  uint32(16 + rng.Intn(1<<19)),
		}
		for tc := 0; tc < tcs; tc++ {
			f.Outs = append(f.Outs, nextOut)
			nextOut++
		}
		g.Fecs = append(g.Fecs, f)
	}
	return g
}

// SchemaName returns the header schema the programs are written against.
func (g *MPLSLSR) SchemaName() string { return packet.SchemaMPLS }

// Schema returns the universal table schema: match (label, tc), swap the
// label and output.
func (g *MPLSLSR) Schema() mat.Schema {
	b := schemaBinder(packet.SchemaMPLS)
	return append(b.Columns(packet.FieldMPLSLabel, packet.FieldMPLSTC),
		b.Mod(packet.FieldMPLSLabel), mat.A("out", 16))
}

// Declared returns the semantic dependencies: the label determines the
// swap; (label, tc) determines the egress.
func (g *MPLSLSR) Declared() []fd.FD {
	s := g.Schema()
	return []fd.FD{
		{From: mat.SetOf(s, packet.FieldMPLSLabel), To: mat.SetOf(s, "mod_"+packet.FieldMPLSLabel)},
		{From: mat.SetOf(s, packet.FieldMPLSLabel, packet.FieldMPLSTC), To: mat.SetOf(s, "out")},
	}
}

// Universal builds the single-table representation.
func (g *MPLSLSR) Universal() (*mat.Table, error) {
	t := mat.New("mpls_lsr", g.Schema())
	t.Provenance = packet.SchemaMPLS
	for _, f := range g.Fecs {
		for tc, out := range f.Outs {
			t.Add(mat.Exact(uint64(f.Label), 20), mat.Exact(uint64(tc), 3),
				mat.Exact(uint64(f.Swap), 20), mat.Exact(uint64(out), 16))
		}
	}
	return t, nil
}

// Goto builds the goto_table decomposition: the FEC classifier swaps the
// label and jumps into a per-FEC QoS table.
func (g *MPLSLSR) Goto() (*mat.Pipeline, error) {
	b := schemaBinder(packet.SchemaMPLS)
	first := mat.New("fecs", append(b.Columns(packet.FieldMPLSLabel),
		b.Mod(packet.FieldMPLSLabel), mat.A(mat.GotoAttr, 16)))
	first.Provenance = packet.SchemaMPLS
	p := &mat.Pipeline{Name: "mpls-goto", Start: 0}
	p.Stages = append(p.Stages, mat.Stage{Table: first, Next: -1, MissDrop: true})
	for fi, f := range g.Fecs {
		first.Add(mat.Exact(uint64(f.Label), 20), mat.Exact(uint64(f.Swap), 20), mat.Exact(uint64(fi+1), 16))
		qos := mat.New(fmt.Sprintf("qos%d", fi), append(b.Columns(packet.FieldMPLSTC), mat.A("out", 16)))
		qos.Provenance = packet.SchemaMPLS
		for tc, out := range f.Outs {
			qos.Add(mat.Exact(uint64(tc), 3), mat.Exact(uint64(out), 16))
		}
		p.Stages = append(p.Stages, mat.Stage{Table: qos, Next: -1, MissDrop: true})
	}
	return p, nil
}

// Metadata builds the metadata-tag decomposition.
func (g *MPLSLSR) Metadata() (*mat.Pipeline, error) {
	b := schemaBinder(packet.SchemaMPLS)
	mn := mat.MetaPrefix + "_fec"
	first := mat.New("fecs", append(b.Columns(packet.FieldMPLSLabel),
		b.Mod(packet.FieldMPLSLabel), mat.A(mn, 16)))
	first.Provenance = packet.SchemaMPLS
	second := mat.New("qos", append(mat.Schema{mat.F(mn, 16)}, append(b.Columns(packet.FieldMPLSTC), mat.A("out", 16))...))
	second.Provenance = packet.SchemaMPLS
	for fi, f := range g.Fecs {
		first.Add(mat.Exact(uint64(f.Label), 20), mat.Exact(uint64(f.Swap), 20), mat.Exact(uint64(fi), 16))
		for tc, out := range f.Outs {
			second.Add(mat.Exact(uint64(fi), 16), mat.Exact(uint64(tc), 3), mat.Exact(uint64(out), 16))
		}
	}
	return &mat.Pipeline{
		Name:  "mpls-meta",
		Start: 0,
		Stages: []mat.Stage{
			{Table: first, Next: 1, MissDrop: true},
			{Table: second, Next: -1, MissDrop: true},
		},
	}, nil
}

// Rematch builds the re-matching decomposition: the QoS stage re-matches
// the *incoming* label. Note the subtlety this representation carries on
// a rewriting pipeline: stage 1 already swapped the label, so a naive
// re-match of mpls_label would look up the *new* label — the Fig. 3
// action-dependency caveat. The program therefore defers the swap to
// stage 2, keeping the representations semantically equivalent.
func (g *MPLSLSR) Rematch() (*mat.Pipeline, error) {
	b := schemaBinder(packet.SchemaMPLS)
	first := mat.New("fecs", b.Columns(packet.FieldMPLSLabel))
	first.Provenance = packet.SchemaMPLS
	second := mat.New("qos", append(b.Columns(packet.FieldMPLSLabel, packet.FieldMPLSTC),
		b.Mod(packet.FieldMPLSLabel), mat.A("out", 16)))
	second.Provenance = packet.SchemaMPLS
	for _, f := range g.Fecs {
		first.Add(mat.Exact(uint64(f.Label), 20))
		for tc, out := range f.Outs {
			second.Add(mat.Exact(uint64(f.Label), 20), mat.Exact(uint64(tc), 3),
				mat.Exact(uint64(f.Swap), 20), mat.Exact(uint64(out), 16))
		}
	}
	return &mat.Pipeline{
		Name:  "mpls-rematch",
		Start: 0,
		Stages: []mat.Stage{
			{Table: first, Next: 1, MissDrop: true},
			{Table: second, Next: -1, MissDrop: true},
		},
	}, nil
}

// Build returns the requested representation as a pipeline.
func (g *MPLSLSR) Build(rep Representation) (*mat.Pipeline, error) {
	return buildReps(rep, "mpls", g.Universal, g.Goto, g.Metadata, g.Rematch)
}

// ---------------------------------------------------------------------------
// GTP-U mobile gateway

// GTPUBearer is one tunnel: the 32-bit TEID and the inner destinations it
// may reach.
type GTPUBearer struct {
	TEID  uint32
	Dests []GTPUDest
}

// GTPUDest routes one inner IPv4 destination to an egress port.
type GTPUDest struct {
	InnerDst uint32
	Out      uint16
}

// GTPUGW is a mobile-core user-plane gateway: classify the bearer by
// TEID, then route the inner IPv4 destination.
type GTPUGW struct {
	Bearers []GTPUBearer
}

// GenerateGTPU builds a deterministic random gateway with n bearers of m
// inner destinations each.
func GenerateGTPU(n, m int, seed int64) *GTPUGW {
	rng := rand.New(rand.NewSource(seed))
	g := &GTPUGW{}
	nextOut := uint16(1)
	for b := 0; b < n; b++ {
		br := GTPUBearer{TEID: 0x10000 + uint32(b)}
		for d := 0; d < m; d++ {
			br.Dests = append(br.Dests, GTPUDest{
				InnerDst: 0x0A000000 | uint32(rng.Intn(1<<24)), // 10.0.0.0/8 block
				Out:      nextOut,
			})
			nextOut++
		}
		g.Bearers = append(g.Bearers, br)
	}
	return g
}

// SchemaName returns the header schema the programs are written against.
func (g *GTPUGW) SchemaName() string { return packet.SchemaGTPU }

// Schema returns the universal table schema.
func (g *GTPUGW) Schema() mat.Schema {
	b := schemaBinder(packet.SchemaGTPU)
	return append(b.Columns(packet.FieldGTPUTEID, packet.FieldInnerIPDst), mat.A("out", 16))
}

// Declared returns the semantic dependencies.
func (g *GTPUGW) Declared() []fd.FD {
	s := g.Schema()
	return []fd.FD{
		{From: mat.SetOf(s, packet.FieldGTPUTEID, packet.FieldInnerIPDst), To: mat.SetOf(s, "out")},
	}
}

// Universal builds the single-table representation.
func (g *GTPUGW) Universal() (*mat.Table, error) {
	t := mat.New("gtpu_gw", g.Schema())
	t.Provenance = packet.SchemaGTPU
	for _, br := range g.Bearers {
		for _, d := range br.Dests {
			t.Add(mat.Exact(uint64(br.TEID), 32), mat.Exact(uint64(d.InnerDst), 32), mat.Exact(uint64(d.Out), 16))
		}
	}
	return t, nil
}

// Goto builds the goto_table decomposition: bearer classifier jumping
// into per-bearer inner routing tables.
func (g *GTPUGW) Goto() (*mat.Pipeline, error) {
	b := schemaBinder(packet.SchemaGTPU)
	first := mat.New("bearers", append(b.Columns(packet.FieldGTPUTEID), mat.A(mat.GotoAttr, 16)))
	first.Provenance = packet.SchemaGTPU
	p := &mat.Pipeline{Name: "gtpu-goto", Start: 0}
	p.Stages = append(p.Stages, mat.Stage{Table: first, Next: -1, MissDrop: true})
	for bi, br := range g.Bearers {
		first.Add(mat.Exact(uint64(br.TEID), 32), mat.Exact(uint64(bi+1), 16))
		route := mat.New(fmt.Sprintf("route%d", bi), append(b.Columns(packet.FieldInnerIPDst), mat.A("out", 16)))
		route.Provenance = packet.SchemaGTPU
		for _, d := range br.Dests {
			route.Add(mat.Exact(uint64(d.InnerDst), 32), mat.Exact(uint64(d.Out), 16))
		}
		p.Stages = append(p.Stages, mat.Stage{Table: route, Next: -1, MissDrop: true})
	}
	return p, nil
}

// Metadata builds the metadata-tag decomposition.
func (g *GTPUGW) Metadata() (*mat.Pipeline, error) {
	b := schemaBinder(packet.SchemaGTPU)
	mn := mat.MetaPrefix + "_bearer"
	first := mat.New("bearers", append(b.Columns(packet.FieldGTPUTEID), mat.A(mn, 16)))
	first.Provenance = packet.SchemaGTPU
	second := mat.New("routes", append(mat.Schema{mat.F(mn, 16)}, append(b.Columns(packet.FieldInnerIPDst), mat.A("out", 16))...))
	second.Provenance = packet.SchemaGTPU
	for bi, br := range g.Bearers {
		first.Add(mat.Exact(uint64(br.TEID), 32), mat.Exact(uint64(bi), 16))
		for _, d := range br.Dests {
			second.Add(mat.Exact(uint64(bi), 16), mat.Exact(uint64(d.InnerDst), 32), mat.Exact(uint64(d.Out), 16))
		}
	}
	return &mat.Pipeline{
		Name:  "gtpu-meta",
		Start: 0,
		Stages: []mat.Stage{
			{Table: first, Next: 1, MissDrop: true},
			{Table: second, Next: -1, MissDrop: true},
		},
	}, nil
}

// Rematch builds the re-matching decomposition.
func (g *GTPUGW) Rematch() (*mat.Pipeline, error) {
	b := schemaBinder(packet.SchemaGTPU)
	first := mat.New("bearers", b.Columns(packet.FieldGTPUTEID))
	first.Provenance = packet.SchemaGTPU
	second := mat.New("routes", append(b.Columns(packet.FieldGTPUTEID, packet.FieldInnerIPDst), mat.A("out", 16)))
	second.Provenance = packet.SchemaGTPU
	for _, br := range g.Bearers {
		first.Add(mat.Exact(uint64(br.TEID), 32))
		for _, d := range br.Dests {
			second.Add(mat.Exact(uint64(br.TEID), 32), mat.Exact(uint64(d.InnerDst), 32), mat.Exact(uint64(d.Out), 16))
		}
	}
	return &mat.Pipeline{
		Name:  "gtpu-rematch",
		Start: 0,
		Stages: []mat.Stage{
			{Table: first, Next: 1, MissDrop: true},
			{Table: second, Next: -1, MissDrop: true},
		},
	}, nil
}

// Build returns the requested representation as a pipeline.
func (g *GTPUGW) Build(rep Representation) (*mat.Pipeline, error) {
	return buildReps(rep, "gtpu", g.Universal, g.Goto, g.Metadata, g.Rematch)
}

// buildReps is the shared Build dispatcher for the schema use cases.
func buildReps(rep Representation, name string,
	universal func() (*mat.Table, error),
	gotoRep, meta, rematch func() (*mat.Pipeline, error)) (*mat.Pipeline, error) {
	switch rep {
	case RepUniversal:
		t, err := universal()
		if err != nil {
			return nil, err
		}
		return mat.SingleTable(t), nil
	case RepGoto:
		return gotoRep()
	case RepFused:
		p, err := gotoRep()
		if err != nil {
			return nil, err
		}
		p.Name = name + "-fused"
		p.Fused = true
		return p, nil
	case RepMetadata:
		return meta()
	case RepRematch:
		return rematch()
	default:
		return nil, fmt.Errorf("usecases: unknown representation %q", rep)
	}
}
