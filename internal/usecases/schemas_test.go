package usecases_test

import (
	"testing"

	"manorm/internal/dataplane"
	"manorm/internal/mat"
	"manorm/internal/packet"
	"manorm/internal/trafficgen"
	"manorm/internal/usecases"
)

func TestSchemaUseCasesRepsAgree(t *testing.T) {
	reps := []usecases.Representation{
		usecases.RepUniversal, usecases.RepGoto, usecases.RepMetadata,
		usecases.RepRematch, usecases.RepFused,
	}
	vx := usecases.GenerateVXLAN(5, 4, 1)
	lsr := usecases.GenerateMPLS(6, 4, 2)
	gtpu := usecases.GenerateGTPU(5, 3, 3)
	vxFrames, err := trafficgen.VXLANFrames(vx, 256, 0.85, 11)
	if err != nil {
		t.Fatal(err)
	}
	mplsFrames, err := trafficgen.MPLSFrames(lsr, 256, 0.85, 12)
	if err != nil {
		t.Fatal(err)
	}
	gtpuFrames, err := trafficgen.GTPUFrames(gtpu, 256, 0.85, 13)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		schema string
		build  func(usecases.Representation) (*mat.Pipeline, error)
		frames [][]byte
	}{
		{"vxlan", packet.SchemaVXLAN, vx.Build, vxFrames.Frames()},
		{"mpls", packet.SchemaMPLS, lsr.Build, mplsFrames.Frames()},
		{"gtpu", packet.SchemaGTPU, gtpu.Build, gtpuFrames.Frames()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dec, err := packet.BuiltinDecoder(tc.schema)
			if err != nil {
				t.Fatal(err)
			}
			var want []dataplane.Verdict
			for ri, rep := range reps {
				p, err := tc.build(rep)
				if err != nil {
					t.Fatalf("%s: %v", rep, err)
				}
				dp, err := dataplane.Compile(p, dataplane.AutoTemplates, dataplane.WithSchema(dec.Schema()))
				if err != nil {
					t.Fatalf("%s: %v", rep, err)
				}
				ctx := dp.NewCtx()
				view := dec.NewView()
				got := make([]dataplane.Verdict, len(tc.frames))
				for i, f := range tc.frames {
					if err := dec.ParseInto(view, f); err != nil {
						t.Fatalf("%s: frame %d: %v", rep, i, err)
					}
					v, err := dp.ProcessView(view, ctx)
					if err != nil {
						t.Fatalf("%s: frame %d: %v", rep, i, err)
					}
					got[i] = v
				}
				if ri == 0 {
					want = got
					continue
				}
				for i := range got {
					if got[i].Drop != want[i].Drop || (!got[i].Drop && got[i].Port != want[i].Port) {
						t.Fatalf("%s: frame %d verdict (%v,%d) != universal (%v,%d)",
							rep, i, got[i].Drop, got[i].Port, want[i].Drop, want[i].Port)
					}
				}
			}
			// Sanity: the trace must exercise both forward and drop paths.
			fwd, drop := 0, 0
			for _, v := range want {
				if v.Drop {
					drop++
				} else {
					fwd++
				}
			}
			if fwd == 0 || drop == 0 {
				t.Fatalf("degenerate trace: %d forwarded, %d dropped", fwd, drop)
			}
		})
	}
}

// mplsFrame builds one single-label frame for the given (label, tc).
func mplsFrame(t *testing.T, dec *packet.Decoder, label, tc uint64) []byte {
	t.Helper()
	v := dec.NewView()
	for _, h := range []string{"eth", "mpls", "ipv4"} {
		if !v.MarkPresentName(h) {
			t.Fatalf("unknown header %q", h)
		}
	}
	v.SetName(packet.FieldEthType, packet.EtherTypeMPLS)
	v.SetName(packet.FieldMPLSLabel, label)
	v.SetName(packet.FieldMPLSTC, tc)
	v.SetName(packet.FieldMPLSBoS, 1)
	v.SetName(packet.FieldMPLSTTL, 64)
	v.SetName("ip_verihl", 0x45)
	v.SetName("ip_ttl", 64)
	return v.Marshal(nil)
}

// TestMPLSRematchSwapsLabel pins the action-dependency caveat handling:
// every representation — including rematch, which defers the swap to
// stage 2 so the re-match still sees the incoming label — must leave the
// swapped label on the view.
func TestMPLSRematchSwapsLabel(t *testing.T) {
	g := usecases.GenerateMPLS(3, 2, 7)
	dec, err := packet.BuiltinDecoder(packet.SchemaMPLS)
	if err != nil {
		t.Fatal(err)
	}
	for _, rep := range []usecases.Representation{
		usecases.RepUniversal, usecases.RepMetadata, usecases.RepRematch,
	} {
		p, err := g.Build(rep)
		if err != nil {
			t.Fatal(err)
		}
		dp, err := dataplane.Compile(p, dataplane.AutoTemplates, dataplane.WithSchema(dec.Schema()))
		if err != nil {
			t.Fatal(err)
		}
		ctx := dp.NewCtx()
		view := dec.NewView()
		f := g.Fecs[1]
		frame := mplsFrame(t, dec, uint64(f.Label), 0)
		if err := dec.ParseInto(view, frame); err != nil {
			t.Fatal(err)
		}
		v, err := dp.ProcessView(view, ctx)
		if err != nil {
			t.Fatal(err)
		}
		if v.Drop || v.Port != f.Outs[0] {
			t.Fatalf("%s: verdict (%v,%d), want port %d", rep, v.Drop, v.Port, f.Outs[0])
		}
		if got, _ := view.GetName(packet.FieldMPLSLabel); got != uint64(f.Swap) {
			t.Fatalf("%s: label after processing = %#x, want swapped %#x", rep, got, f.Swap)
		}
	}
}
