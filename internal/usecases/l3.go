package usecases

import (
	"math/rand"

	"manorm/internal/fd"
	"manorm/internal/mat"
	"manorm/internal/packet"
)

// L3 is the IP forwarding use case of the paper's Fig. 2: disjoint
// prefixes mapping to next-hops (destination MACs), next-hops sharing
// output ports, ports sharing source MACs.
type L3 struct {
	Table *mat.Table
}

// L3Schema is the universal L3 table layout: (eth_type, ip_dst | mod_ttl,
// mod_smac, mod_dmac, out).
func L3Schema() mat.Schema {
	return mat.Schema{
		mat.F(packet.FieldEthType, 16),
		mat.F(packet.FieldIPDst, 32),
		mat.A("mod_ttl", 8),
		mat.A("mod_smac", 48),
		mat.A("mod_dmac", 48),
		mat.A("out", 16),
	}
}

// Fig2 builds the exact example of the paper's Fig. 2: four prefixes, with
// P1 and P4 sharing next-hop D1, and D1/D2 sharing the outgoing port.
func Fig2() *L3 {
	t := mat.New("l3", L3Schema())
	const (
		s1, s2 = 0xAA0000000001, 0xAA0000000002
		d1, d2 = 0xBB0000000001, 0xBB0000000002
		d3     = 0xBB0000000003
	)
	t.Add(mat.Exact(0x800, 16), mat.IPv4Prefix("10.0.0.0", 16), mat.Exact(1, 8), mat.Exact(s1, 48), mat.Exact(d1, 48), mat.Exact(1, 16))
	t.Add(mat.Exact(0x800, 16), mat.IPv4Prefix("10.1.0.0", 16), mat.Exact(1, 8), mat.Exact(s1, 48), mat.Exact(d2, 48), mat.Exact(1, 16))
	t.Add(mat.Exact(0x800, 16), mat.IPv4Prefix("10.2.0.0", 16), mat.Exact(1, 8), mat.Exact(s2, 48), mat.Exact(d3, 48), mat.Exact(2, 16))
	t.Add(mat.Exact(0x800, 16), mat.IPv4Prefix("10.3.0.0", 16), mat.Exact(1, 8), mat.Exact(s1, 48), mat.Exact(d1, 48), mat.Exact(1, 16))
	return &L3{Table: t}
}

// GenerateL3 builds a random L3 table: nPrefixes disjoint /16 routes
// mapped onto nNextHops next-hop MACs spread over nPorts ports. The
// skew — many prefixes per next-hop, several next-hops per port — is what
// gives normalization something to remove.
func GenerateL3(nPrefixes, nNextHops, nPorts int, seed int64) *L3 {
	rng := rand.New(rand.NewSource(seed))
	if nNextHops < 1 {
		nNextHops = 1
	}
	if nPorts < 1 {
		nPorts = 1
	}
	portOf := make([]uint16, nNextHops)
	for i := range portOf {
		portOf[i] = uint16(1 + i%nPorts)
	}
	smacOf := func(port uint16) uint64 { return 0xAA0000000000 | uint64(port) }
	dmacOf := func(nh int) uint64 { return 0xBB0000000000 | uint64(nh+1) }
	t := mat.New("l3", L3Schema())
	for i := 0; i < nPrefixes; i++ {
		// Disjoint /16 routes covering the whole space: i.j.0.0/16.
		pfx := mat.Prefix(uint64(i)<<16, 16, 32)
		nh := rng.Intn(nNextHops)
		port := portOf[nh]
		t.Add(mat.Exact(0x800, 16), pfx, mat.Exact(1, 8),
			mat.Exact(smacOf(port), 48), mat.Exact(dmacOf(nh), 48), mat.Exact(uint64(port), 16))
	}
	return &L3{Table: t}
}

// Declared returns the semantic dependencies of the L3 use case (§3): the
// route determines the next hop, the next hop the port, the port the
// source MAC; eth_type and TTL handling are pipeline constants.
func (l *L3) Declared() []fd.FD {
	s := l.Table.Schema
	return []fd.FD{
		{From: mat.SetOf(s, packet.FieldIPDst), To: mat.SetOf(s, "mod_dmac")},
		{From: mat.SetOf(s, "mod_dmac"), To: mat.SetOf(s, "out")},
		{From: mat.SetOf(s, "out"), To: mat.SetOf(s, "mod_smac")},
		{From: 0, To: mat.SetOf(s, packet.FieldEthType, "mod_ttl")},
	}
}
