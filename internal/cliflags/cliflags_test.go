package cliflags

import (
	"flag"
	"net/http"
	"testing"

	"manorm/internal/telemetry"
)

func TestRegisterDefaults(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := Register(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if f.MetricsAddr != "" || f.TraceSample != 0 || f.JSON {
		t.Errorf("defaults = %+v", *f)
	}
	if f.Sink(8) != nil {
		t.Error("disabled sampling produced a sink")
	}
	if srv, err := f.Serve(telemetry.NewRegistry()); srv != nil || err != nil {
		t.Errorf("unset -metrics-addr served: %v, %v", srv, err)
	}
}

func TestRegisterParses(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := Register(fs)
	args := []string{"-metrics-addr", "127.0.0.1:0", "-trace-sample", "100", "-json"}
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	if f.MetricsAddr != "127.0.0.1:0" || f.TraceSample != 100 || !f.JSON {
		t.Errorf("parsed = %+v", *f)
	}
	sink := f.Sink(4)
	if sink == nil {
		t.Fatal("no sink with -trace-sample 100")
	}
	for i := 0; i < 99; i++ {
		if sink.Tick() {
			t.Fatalf("sampled early at tick %d", i)
		}
	}
	if !sink.Tick() {
		t.Error("tick 100 not sampled")
	}
}

func TestServeStartsEndpoint(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := Register(fs)
	if err := fs.Parse([]string{"-metrics-addr", "127.0.0.1:0"}); err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	reg.Counter("up").Inc()
	srv, err := f.Serve(reg)
	if err != nil {
		t.Fatal(err)
	}
	if srv == nil {
		t.Fatal("no server with -metrics-addr set")
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status = %d", resp.StatusCode)
	}
}
