// Package cliflags defines the flag set shared by the repository's
// commands (maswitch, mabench, manorm): the metrics/pprof endpoint
// address, the per-packet witness sampling rate, the machine-readable
// output toggle, and the header-schema selector for the programmable
// parser. Registering them through one package keeps the flag names and
// help text identical across binaries.
package cliflags

import (
	"flag"
	"fmt"
	"strings"

	"manorm/internal/packet"
	"manorm/internal/telemetry"
)

// Flags carries the parsed shared options.
type Flags struct {
	// MetricsAddr, when non-empty, is the address the command serves its
	// telemetry registry (JSON) and net/http/pprof on.
	MetricsAddr string
	// TraceSample > 0 records a per-packet pipeline witness for every Nth
	// packet (the trace/explain facility); 0 disables sampling.
	TraceSample int
	// JSON selects machine-readable output where the command supports it.
	JSON bool
	// Schema names a shipped header schema (packet.BuiltinSchemaNames)
	// to run the command under; empty means the canonical default parser.
	Schema string
}

// Register adds the shared flags to fs (use flag.CommandLine in main) and
// returns the struct they parse into.
func Register(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.MetricsAddr, "metrics-addr", "",
		"serve telemetry JSON and pprof on this address (e.g. 127.0.0.1:9090)")
	fs.IntVar(&f.TraceSample, "trace-sample", 0,
		"record a per-packet pipeline witness every Nth packet (0 disables)")
	fs.BoolVar(&f.JSON, "json", false, "machine-readable JSON output")
	fs.StringVar(&f.Schema, "schema", "",
		fmt.Sprintf("header schema for the programmable parser: %s (empty: canonical default)",
			strings.Join(packet.BuiltinSchemaNames(), ", ")))
	return f
}

// Decoder resolves -schema into its compiled decoder. With the flag unset
// (or naming the default schema) it returns (nil, nil): commands treat a
// nil decoder as "run the canonical fixed-struct path".
func (f *Flags) Decoder() (*packet.Decoder, error) {
	if f.Schema == "" || f.Schema == packet.SchemaDefault {
		return nil, nil
	}
	return packet.BuiltinDecoder(f.Schema)
}

// Serve starts the metrics endpoint when -metrics-addr is set. With the
// flag unset it returns (nil, nil), and the nil *telemetry.Server is safe
// to ignore.
func (f *Flags) Serve(reg *telemetry.Registry) (*telemetry.Server, error) {
	if f.MetricsAddr == "" {
		return nil, nil
	}
	return telemetry.Serve(f.MetricsAddr, reg)
}

// Sink builds the witness sampler selected by -trace-sample, retaining
// the most recent keep witnesses; it returns nil (which TraceSink treats
// as "never sample") when sampling is disabled.
func (f *Flags) Sink(keep int) *telemetry.TraceSink {
	if f.TraceSample <= 0 {
		return nil
	}
	return telemetry.NewTraceSink(f.TraceSample, keep)
}
