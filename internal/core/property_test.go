package core

import (
	"errors"
	"math/rand"
	"testing"

	"manorm/internal/fd"
	"manorm/internal/mat"
	"manorm/internal/netkat"
)

// TestDecomposeEveryMinedFDAllJoins: for random exact-match tables, take
// every mined minimal dependency and decompose along it with every join
// abstraction. Every accepted decomposition must be semantically
// equivalent; rejections must carry one of the typed reasons.
func TestDecomposeEveryMinedFDAllJoins(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	joins := []JoinKind{JoinMetadata, JoinGoto, JoinRematch}
	checked, rejected := 0, 0
	for trial := 0; trial < 25; trial++ {
		tab := randomPlantedTable(rng)
		if len(tab.Entries) < 2 || !tab.IsOrderIndependent() {
			continue
		}
		a := Analyze(tab)
		for _, f := range a.FDs {
			y := f.To.Minus(f.From)
			if y.Empty() || mat.FullSet(len(tab.Schema)).Minus(f.From).Minus(y).Empty() {
				continue
			}
			for _, j := range joins {
				p, err := Decompose(a, f, j)
				if err != nil {
					rejected++
					if !errors.Is(err, ErrActionToMatch) &&
						!errors.Is(err, ErrRematchNeedsFields) &&
						!errors.Is(err, ErrOverlappingGroups) &&
						!errors.Is(err, ErrNotOrderIndependent) {
						t.Fatalf("trial %d: untyped rejection for %s/%s: %v",
							trial, f.Format(tab.Schema), j, err)
					}
					continue
				}
				checked++
				cex, _, err := netkat.EquivalentPipelines(mat.SingleTable(tab), p, 0)
				if err != nil {
					t.Fatalf("trial %d: %v", trial, err)
				}
				if cex != nil {
					t.Fatalf("trial %d: %s with %s join changed semantics: %v\n%s\n%s",
						trial, f.Format(tab.Schema), j, cex, tab, p)
				}
			}
		}
	}
	if checked < 50 {
		t.Fatalf("property exercised only %d decompositions (rejected %d); fixture too weak", checked, rejected)
	}
}

// TestToGotoRandomPipelines: ToGoto on the normalization of random tables
// must preserve semantics and eliminate all adjacent metadata links.
func TestToGotoRandomPipelines(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	converted := 0
	for trial := 0; trial < 30; trial++ {
		tab := randomPlantedTable(rng)
		if len(tab.Entries) < 2 {
			continue
		}
		res, err := Normalize(tab, Options{Target: NF3})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.Pipeline.Depth() < 2 {
			continue
		}
		g, err := ToGoto(res.Pipeline)
		if err != nil {
			t.Fatalf("trial %d: ToGoto: %v", trial, err)
		}
		converted++
		cex, _, err := netkat.EquivalentPipelines(mat.SingleTable(tab), g, 0)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if cex != nil {
			t.Fatalf("trial %d: ToGoto changed semantics: %v\nmeta:\n%s\ngoto:\n%s",
				trial, cex, res.Pipeline, g)
		}
		// Footprint must not grow: goto drops the metadata match column.
		if g.FieldCount() > res.Pipeline.FieldCount() {
			t.Errorf("trial %d: goto footprint %d > metadata %d",
				trial, g.FieldCount(), res.Pipeline.FieldCount())
		}
	}
	if converted < 10 {
		t.Fatalf("only %d pipelines converted; fixture too weak", converted)
	}
}

// TestNormalizeThenDenormalizeEntryCount: the round trip must restore
// exactly the deduplicated original entries (no join blowup, no loss).
func TestNormalizeThenDenormalizeEntryCount(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	for trial := 0; trial < 25; trial++ {
		tab := randomPlantedTable(rng)
		if len(tab.Entries) < 2 {
			continue
		}
		res, err := Normalize(tab, Options{Target: NF3})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		back, err := Denormalize(res.Pipeline)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(back.Entries) != len(tab.Entries) {
			t.Fatalf("trial %d: round trip %d entries, want %d\n%s\n%s",
				trial, len(back.Entries), len(tab.Entries), tab, back)
		}
	}
}

// TestInheritedDeclaredFDsSurviveDeepNormalization: declared-mode
// normalization on the L3 shape at scale must keep every stage's inherited
// dependencies true of the stage instances (the projection/renaming
// machinery is the subtle part).
func TestInheritedDeclaredFDsSurviveDeepNormalization(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		tab := l3At(seed)
		decl := []fd.FD{
			{From: mat.SetOf(tab.Schema, "ip_dst"), To: mat.SetOf(tab.Schema, "mod_dmac")},
			{From: mat.SetOf(tab.Schema, "mod_dmac"), To: mat.SetOf(tab.Schema, "out")},
			{From: mat.SetOf(tab.Schema, "out"), To: mat.SetOf(tab.Schema, "mod_smac")},
			{From: 0, To: mat.SetOf(tab.Schema, "eth_type", "mod_ttl")},
		}
		res, err := Normalize(tab, Options{Target: NF3, Declared: decl, Verify: true})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Pipeline.Depth() != 4 {
			t.Errorf("seed %d: depth %d, want 4", seed, res.Pipeline.Depth())
		}
	}
}

// l3At builds a randomized L3 table without importing usecases (avoiding
// an import cycle: usecases imports core).
func l3At(seed int64) *mat.Table {
	rng := rand.New(rand.NewSource(seed))
	t := mat.New("l3", mat.Schema{
		mat.F("eth_type", 16), mat.F("ip_dst", 32),
		mat.A("mod_ttl", 8), mat.A("mod_smac", 48), mat.A("mod_dmac", 48), mat.A("out", 16),
	})
	nh := 4 + rng.Intn(8)
	ports := 2 + rng.Intn(3)
	portOf := make([]uint64, nh)
	for i := range portOf {
		portOf[i] = uint64(1 + i%ports)
	}
	for i := 0; i < 16+rng.Intn(48); i++ {
		h := rng.Intn(nh)
		p := portOf[h]
		t.Add(mat.Exact(0x800, 16), mat.Prefix(uint64(i)<<16, 16, 32), mat.Exact(1, 8),
			mat.Exact(0xAA0000000000|p, 48), mat.Exact(0xBB0000000000|uint64(h+1), 48), mat.Exact(p, 16))
	}
	return t
}
