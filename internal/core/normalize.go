package core

import (
	"fmt"

	"manorm/internal/fd"
	"manorm/internal/mat"
	"manorm/internal/netkat"
)

// Options configures Normalize.
type Options struct {
	// Target is the normal form to reach: NF2 or NF3 (default NF3).
	Target Form
	// Declared supplies programmer-declared semantic dependencies for the
	// input table. When nil, dependencies are mined from the instance
	// ("transient data-level dependencies").
	Declared []fd.FD
	// Verify runs the finite-domain equivalence checker on the result
	// against the original table and fails if they diverge.
	Verify bool
	// MaxSteps bounds the number of decomposition steps (default 64).
	MaxSteps int
}

// Step records one decomposition performed during normalization.
type Step struct {
	// TableName is the table that was decomposed.
	TableName string
	// FD is the dependency used, rendered against that table's schema.
	FD string
	// Level is the normal form the violation blocked.
	Level Form
}

// Result is the outcome of Normalize.
type Result struct {
	// Pipeline is the normalized multi-table program: a chain of
	// metadata-joined stages (plus Cartesian-product stages for constant
	// attribute groups).
	Pipeline *mat.Pipeline
	// Steps lists the decompositions applied, in order.
	Steps []Step
	// Residual lists violations that could not be eliminated because the
	// only applicable dependencies were action-to-match (Fig. 3) ones.
	Residual []Violation
	// Verified reports whether an equivalence check ran and was
	// exhaustive.
	Verified bool
}

// Normalize transforms a universal match-action table into an equivalent
// multi-table pipeline in the target normal form, decomposing repeatedly
// along violating functional dependencies (§3–§4 of the paper). Stages are
// chained with the metadata join abstraction; use ToGoto to convert the
// result to goto_table chaining where supported.
func Normalize(t *mat.Table, opts Options) (*Result, error) {
	if opts.Target == 0 {
		opts.Target = NF3
	}
	if opts.Target < NF2 || opts.Target > BCNF {
		return nil, fmt.Errorf("core: unsupported normalization target %s", opts.Target)
	}
	if opts.MaxSteps == 0 {
		opts.MaxSteps = 64
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}

	var a *Analysis
	var err error
	if opts.Declared != nil {
		a, err = AnalyzeDeclared(t, opts.Declared)
		if err != nil {
			return nil, err
		}
	} else {
		a = Analyze(t)
	}

	res := &Result{}
	tables, err := normalizeRec(a, opts, res)
	if err != nil {
		return nil, err
	}
	p := Chain(t.Name+"-normalized", tables)
	if err := p.Validate(); err != nil {
		return nil, err
	}
	res.Pipeline = p

	if opts.Verify {
		cex, exhaustive, err := netkat.EquivalentPipelines(mat.SingleTable(t), p, 0)
		if err != nil {
			return nil, err
		}
		if cex != nil {
			return nil, fmt.Errorf("core: normalization changed semantics: %v", cex)
		}
		res.Verified = exhaustive
	}
	return res, nil
}

// Chain composes tables into a sequential pipeline, every stage
// drop-on-miss.
func Chain(name string, tables []*mat.Table) *mat.Pipeline {
	p := &mat.Pipeline{Name: name, Start: 0}
	for i, t := range tables {
		next := i + 1
		if i == len(tables)-1 {
			next = -1
		}
		p.Stages = append(p.Stages, mat.Stage{Table: t, Next: next, MissDrop: true})
	}
	return p
}

// normalizeRec recursively decomposes until the target form is reached,
// returning the ordered chain of stage tables.
func normalizeRec(a *Analysis, opts Options, res *Result) ([]*mat.Table, error) {
	if len(res.Steps) >= opts.MaxSteps {
		return nil, fmt.Errorf("core: normalization exceeded %d steps", opts.MaxSteps)
	}
	form, violations := Check(a)
	if form == NF0 {
		return nil, fmt.Errorf("core: table %s is not order-independent; cannot normalize", a.Table.Name)
	}
	v, ok := pickViolation(a, violations, opts.Target)
	if !ok {
		// Target reached, or only action-to-match violations remain.
		for _, rv := range violations {
			if rv.Level <= opts.Target {
				res.Residual = append(res.Residual, rv)
			}
		}
		return []*mat.Table{a.Table}, nil
	}

	f := fd.FD{From: v.FD.From, To: v.FD.To.Minus(v.FD.From)}
	dec, err := Decompose(a, f, JoinMetadata)
	if err != nil {
		return nil, fmt.Errorf("core: normalizing %s along %s: %w", a.Table.Name, f.Format(a.Table.Schema), err)
	}
	res.Steps = append(res.Steps, Step{TableName: a.Table.Name, FD: f.Format(a.Table.Schema), Level: v.Level})

	var out []*mat.Table
	for _, st := range dec.Stages {
		sub := st.Table
		subA, err := inheritAnalysis(a, f, sub)
		if err != nil {
			return nil, err
		}
		chain, err := normalizeRec(subA, opts, res)
		if err != nil {
			return nil, err
		}
		out = append(out, chain...)
	}
	return out, nil
}

// pickViolation selects the dependency to decompose along: lowest level
// first (2NF partial dependencies before 3NF transitive ones), field-only
// LHS preferred (action LHS requires the group-table form), then larger
// RHS (more redundancy removed per step), then smaller LHS. Violations
// whose decomposition would be action-to-match (Fig. 3) are skipped.
func pickViolation(a *Analysis, violations []Violation, target Form) (Violation, bool) {
	fields := a.Table.MatchSet()
	actions := a.Table.ActionSet()
	zAttrs := func(v Violation) mat.AttrSet {
		return mat.FullSet(len(a.Table.Schema)).Minus(v.FD.From).Minus(v.FD.To)
	}
	best := -1
	var bestScore [4]int
	for i, v := range violations {
		if v.Level > target {
			continue
		}
		xHasActions := !v.FD.From.Intersect(actions).Empty()
		yHasFields := !v.FD.To.Minus(v.FD.From).Intersect(fields).Empty()
		if xHasActions && yHasFields {
			continue // Fig. 3: not decomposable.
		}
		if zAttrs(v).Empty() {
			continue // degenerate split.
		}
		if !xHasActions && !v.FD.From.Empty() &&
			!groupsDisjoint(a.Table, v.FD.From, a.Table.GroupBy(v.FD.From)) {
			continue // overlapping LHS patterns: not decomposable.
		}
		score := [4]int{
			-int(v.Level),                  // lower level first
			boolToInt(!xHasActions),        // field-only LHS first
			v.FD.To.Minus(v.FD.From).Len(), // larger RHS
			-v.FD.From.Len(),               // smaller LHS
		}
		if best < 0 || scoreLess(bestScore, score) {
			best, bestScore = i, score
		}
	}
	if best < 0 {
		return Violation{}, false
	}
	return violations[best], true
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// scoreLess reports whether a < b lexicographically.
func scoreLess(a, b [4]int) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// inheritAnalysis derives the dependency structure for a decomposition
// output table. In mined mode the sub-table is re-mined. In declared mode
// the parent's dependencies are projected onto the surviving attributes and
// renamed, with the link attribute standing in for the dependency LHS (the
// link is in bijection with the LHS value).
func inheritAnalysis(parent *Analysis, f fd.FD, sub *mat.Table) (*Analysis, error) {
	if !parent.Declared {
		return Analyze(sub), nil
	}
	psch := parent.Table.Schema
	// Map parent attribute name -> sub schema index.
	subIdx := make(map[string]int, len(sub.Schema))
	for i, at := range sub.Schema {
		subIdx[at.Name] = i
	}
	linkIdx := -1
	for i, at := range sub.Schema {
		if mat.IsLinkAttr(at.Name) {
			linkIdx = i
			break
		}
	}
	// Parent attrs present in sub (by name).
	var kept mat.AttrSet
	for i, at := range psch {
		if _, ok := subIdx[at.Name]; ok {
			kept = kept.Add(i)
		}
	}
	// Project parent FDs onto kept ∪ X (X may be represented by the link).
	scope := kept.Union(f.From)
	projected := fd.Project(parent.FDs, scope)

	var out []fd.FD
	translate := func(s mat.AttrSet) (mat.AttrSet, bool) {
		var r mat.AttrSet
		rest := s
		if f.From.SubsetOf(s) && linkIdx >= 0 {
			// The whole LHS is representable by the link attribute.
			r = r.Add(linkIdx)
			rest = s.Minus(f.From)
		}
		for _, m := range rest.Members() {
			j, ok := subIdx[psch[m].Name]
			if !ok {
				return 0, false
			}
			r = r.Add(j)
		}
		return r, true
	}
	for _, pf := range projected {
		from, ok1 := translate(pf.From)
		to, ok2 := translate(pf.To)
		if !ok1 || !ok2 {
			continue
		}
		to = to.Minus(from)
		if to.Empty() {
			continue
		}
		out = append(out, fd.FD{From: from, To: to})
	}
	// The link is in bijection with the LHS: link ↔ X for the X attrs
	// present in the sub-table.
	if linkIdx >= 0 {
		var xIn mat.AttrSet
		for _, m := range f.From.Members() {
			if j, ok := subIdx[psch[m].Name]; ok {
				xIn = xIn.Add(j)
			}
		}
		if !xIn.Empty() {
			out = append(out,
				fd.FD{From: mat.NewAttrSet(linkIdx), To: xIn},
				fd.FD{From: xIn, To: mat.NewAttrSet(linkIdx)})
		}
	}
	cover := fd.MinimalCover(out)
	// Declared dependencies must hold in the sub-instance; prune any that
	// do not survive projection mechanics (defensive).
	var valid []fd.FD
	for _, g := range cover {
		if g.HoldsIn(sub) {
			valid = append(valid, g)
		}
	}
	return AnalyzeDeclared(sub, valid)
}

// VerifyEquivalent checks that a pipeline is semantically equivalent to a
// universal table over the complete finite probe domain, returning an
// error describing the first divergence.
func VerifyEquivalent(t *mat.Table, p *mat.Pipeline) error {
	cex, _, err := netkat.EquivalentPipelines(mat.SingleTable(t), p, 0)
	if err != nil {
		return err
	}
	if cex != nil {
		return fmt.Errorf("core: not equivalent: %v", cex)
	}
	return nil
}
