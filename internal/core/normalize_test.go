package core

import (
	"math/rand"
	"strings"
	"testing"

	"manorm/internal/fd"
	"manorm/internal/mat"
	"manorm/internal/netkat"
)

func TestNormalizeGwlbDeclared(t *testing.T) {
	tab := fig1a()
	res, err := Normalize(tab, Options{
		Target:   NF3,
		Declared: gwlbDeclared(tab.Schema),
		Verify:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Errorf("verification not exhaustive")
	}
	// One decomposition (along ip_dst -> tcp_dst) suffices: the result is
	// the two-stage Fig. 1c pipeline.
	if len(res.Steps) != 1 {
		t.Fatalf("steps = %+v, want 1", res.Steps)
	}
	if !strings.Contains(res.Steps[0].FD, "ip_dst") || !strings.Contains(res.Steps[0].FD, "tcp_dst") {
		t.Errorf("step FD = %q", res.Steps[0].FD)
	}
	if res.Pipeline.Depth() != 2 {
		t.Fatalf("depth = %d, want 2\n%s", res.Pipeline.Depth(), res.Pipeline)
	}
	if len(res.Residual) != 0 {
		t.Errorf("residual violations: %+v", res.Residual)
	}
	// Every stage must now satisfy 3NF under its inherited dependencies.
	for _, st := range res.Pipeline.Stages {
		form, _ := Check(Analyze(st.Table))
		if form < NF3 {
			t.Errorf("stage %s is only %s", st.Table.Name, form)
		}
	}
}

func TestNormalizeL3ReproducesFig2c(t *testing.T) {
	// The paper's L3 pipeline normalizes to T0 × T1 ≫ T2 ≫ T3 (Fig. 2c):
	// a constant product table (eth_type | mod_ttl), the prefix table, the
	// group table, and the port table.
	tab := fig2a()
	res, err := Normalize(tab, Options{
		Target:   NF3,
		Declared: l3Declared(tab.Schema),
		Verify:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := res.Pipeline
	if p.Depth() != 4 {
		t.Fatalf("depth = %d, want 4 (T0 × T1 ≫ T2 ≫ T3)\n%s", p.Depth(), p)
	}
	// Stage shapes: product table with 1 entry; prefix table with 4
	// entries; group table with 3 (D1, D2, D3); port table with 2.
	sizes := make([]int, 4)
	for i, st := range p.Stages {
		sizes[i] = len(st.Table.Entries)
	}
	if sizes[0] != 1 || sizes[1] != 4 || sizes[2] != 3 || sizes[3] != 2 {
		t.Errorf("stage sizes = %v, want [1 4 3 2]\n%s", sizes, p)
	}
	// The group table holds mod_dmac; the port table holds out and
	// mod_smac.
	if p.Stages[2].Table.Schema.Index("mod_dmac") < 0 {
		t.Errorf("stage 2 is not the group table: %s", p.Stages[2].Table.Schema)
	}
	if p.Stages[3].Table.Schema.Index("mod_smac") < 0 || p.Stages[3].Table.Schema.Index("out") < 0 {
		t.Errorf("stage 3 is not the port table: %s", p.Stages[3].Table.Schema)
	}
}

func TestNormalizeMinedGwlbIsNoOp(t *testing.T) {
	// Under mined instance dependencies the 6-row Fig. 1a is already 3NF
	// (every attribute is prime), so normalization to 3NF does nothing.
	res, err := Normalize(fig1a(), Options{Target: NF3, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Pipeline.Depth() != 1 || len(res.Steps) != 0 {
		t.Fatalf("expected no-op; got %d stages, steps %+v", res.Pipeline.Depth(), res.Steps)
	}
}

func TestNormalizeFig3LeavesResidual(t *testing.T) {
	// Fig. 3a's only removable redundancy is the action-to-match
	// dependency out -> vlan; normalization must leave it as a residual
	// violation rather than produce a broken pipeline.
	tab := fig3a()
	res, err := Normalize(tab, Options{Target: BCNF, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Pipeline.Depth() != 1 {
		t.Fatalf("Fig. 3a was decomposed: %s", res.Pipeline)
	}
	if len(res.Residual) == 0 {
		t.Fatalf("no residual violation recorded for the Fig. 3 caveat")
	}
}

func TestNormalizeTargets(t *testing.T) {
	tab := fig2a()
	decl := l3Declared(tab.Schema)
	// NF2 stops after repairing partial dependencies; NF3 goes further.
	res2, err := Normalize(tab, Options{Target: NF2, Declared: decl, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	res3, err := Normalize(tab, Options{Target: NF3, Declared: decl, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Pipeline.Depth() >= res3.Pipeline.Depth() {
		t.Errorf("NF2 depth %d, NF3 depth %d; expected NF2 < NF3",
			res2.Pipeline.Depth(), res3.Pipeline.Depth())
	}
	// Invalid targets rejected.
	if _, err := Normalize(tab, Options{Target: NF1}); err == nil {
		t.Errorf("target NF1 accepted")
	}
}

func TestNormalizeRejectsOrderDependentInput(t *testing.T) {
	tab := mat.New("T", mat.Schema{mat.F("a", 8), mat.A("o", 8)})
	tab.Add(mat.Exact(1, 8), mat.Exact(1, 8))
	tab.Add(mat.Exact(1, 8), mat.Exact(2, 8))
	if _, err := Normalize(tab, Options{}); err == nil {
		t.Fatalf("order-dependent table normalized")
	}
}

func TestNormalizeIdempotent(t *testing.T) {
	// Normalizing each stage of a normalized pipeline changes nothing.
	tab := fig2a()
	res, err := Normalize(tab, Options{Target: NF3, Declared: l3Declared(tab.Schema)})
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range res.Pipeline.Stages {
		again, err := Normalize(st.Table, Options{Target: NF3})
		if err != nil {
			t.Fatalf("stage %s: %v", st.Table.Name, err)
		}
		if again.Pipeline.Depth() != 1 {
			t.Errorf("stage %s re-decomposed into %d stages", st.Table.Name, again.Pipeline.Depth())
		}
	}
}

// randomPlantedTable builds a random table with planted dependencies so
// normalization has real work to do: attribute a0 is a key-ish field,
// derived attributes hang off it and off each other.
func randomPlantedTable(rng *rand.Rand) *mat.Table {
	nRows := 4 + rng.Intn(12)
	sch := mat.Schema{
		mat.F("k1", 16), mat.F("k2", 16),
		mat.F("d1", 16), mat.A("d2", 16), mat.A("o", 16),
	}
	t := mat.New("rnd", sch)
	seen := make(map[[2]uint64]bool)
	for r := 0; r < nRows; r++ {
		k1 := uint64(rng.Intn(4))
		k2 := uint64(rng.Intn(4))
		if seen[[2]uint64{k1, k2}] {
			continue
		}
		seen[[2]uint64{k1, k2}] = true
		d1 := k1 * 3 % 5 // k1 -> d1
		d2 := d1 * 7 % 3 // d1 -> d2 (transitive)
		o := k1*10 + k2  // key -> o
		t.Add(mat.Exact(k1, 16), mat.Exact(k2, 16), mat.Exact(d1, 16), mat.Exact(d2, 16), mat.Exact(o, 16))
	}
	return t
}

func TestNormalizeRandomTablesEquivalent(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	for trial := 0; trial < 40; trial++ {
		tab := randomPlantedTable(rng)
		if len(tab.Entries) < 2 {
			continue
		}
		res, err := Normalize(tab, Options{Target: NF3})
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, tab)
		}
		cex, _, err := netkat.EquivalentPipelines(mat.SingleTable(tab), res.Pipeline, 0)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if cex != nil {
			t.Fatalf("trial %d: normalization changed semantics: %v\noriginal:\n%s\nresult:\n%s",
				trial, cex, tab, res.Pipeline)
		}
		// Result must be in 3NF stage-wise (under mined dependencies).
		for _, st := range res.Pipeline.Stages {
			form, viol := Check(Analyze(st.Table))
			if form < NF3 {
				t.Fatalf("trial %d: stage %s only %s: %+v\n%s", trial, st.Table.Name, form, viol, res.Pipeline)
			}
		}
	}
}

func TestNormalizeReducesFootprintAtScale(t *testing.T) {
	// The paper's headline redundancy claim: for N services and M
	// backends the universal table stores ~4MN fields while the
	// normalized form stores ~N(3+2M) — about half for large M. Verified
	// here on a synthetic gwlb with N=6, M=8 via declared dependencies.
	const N, M = 6, 8
	sch := mat.Schema{mat.F("ip_src", 32), mat.F("ip_dst", 32), mat.F("tcp_dst", 16), mat.A("out", 16)}
	tab := mat.New("gwlb", sch)
	for s := 0; s < N; s++ {
		vip := uint64(0xC0000200 + s)
		port := uint64(1000 + s)
		for b := 0; b < M; b++ {
			// M disjoint /3 source prefixes.
			src := mat.Prefix(uint64(b)<<61>>32<<32>>32, 3, 32)
			// Recompute properly: place b in the top 3 bits.
			src = mat.Prefix(uint64(b)<<29, 3, 32)
			tab.Add(src, mat.Exact(vip, 32), mat.Exact(port, 16), mat.Exact(uint64(s*M+b+1), 16))
		}
	}
	decl := []fd.FD{
		{From: mat.SetOf(sch, "ip_dst"), To: mat.SetOf(sch, "tcp_dst")},
		{From: mat.SetOf(sch, "ip_src", "ip_dst"), To: mat.SetOf(sch, "out")},
	}
	res, err := Normalize(tab, Options{Target: NF3, Declared: decl, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	uni := tab.FieldCount()
	norm := res.Pipeline.FieldCount()
	if uni != 4*M*N {
		t.Fatalf("universal footprint = %d, want %d", uni, 4*M*N)
	}
	if norm >= uni {
		t.Errorf("normalization did not shrink footprint: %d -> %d", uni, norm)
	}
}

func TestNormalizeToBCNF(t *testing.T) {
	// The classic 3NF-but-not-BCNF shape: overlapping composite keys.
	// Keys are {a, b}, {a, c} and {o} (b and c are mutually determining,
	// o is unique per row), so every attribute is prime and 3NF holds —
	// but c -> b has a non-superkey LHS, which the BCNF target must
	// remove.
	tab := mat.New("B", mat.Schema{mat.F("a", 8), mat.F("b", 8), mat.F("c", 8), mat.A("o", 8)})
	tab.Add(mat.Exact(1, 8), mat.Exact(1, 8), mat.Exact(1, 8), mat.Exact(1, 8))
	tab.Add(mat.Exact(2, 8), mat.Exact(1, 8), mat.Exact(1, 8), mat.Exact(2, 8))
	tab.Add(mat.Exact(1, 8), mat.Exact(2, 8), mat.Exact(2, 8), mat.Exact(3, 8))
	tab.Add(mat.Exact(2, 8), mat.Exact(2, 8), mat.Exact(2, 8), mat.Exact(4, 8))

	// Precondition: 3NF holds, BCNF does not.
	form, _ := Check(Analyze(tab))
	if form != NF3 {
		t.Fatalf("fixture form = %s, want exactly 3NF", form)
	}

	res, err := Normalize(tab, Options{Target: BCNF, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Pipeline.Depth() < 2 {
		t.Fatalf("BCNF target did not decompose:\n%s", res.Pipeline)
	}
	for _, st := range res.Pipeline.Stages {
		form, _ := Check(Analyze(st.Table))
		if form < BCNF {
			t.Errorf("stage %s is only %s after BCNF normalization:\n%s", st.Table.Name, form, st.Table)
		}
	}
}
