package core

import (
	"testing"

	"manorm/internal/mat"
	"manorm/internal/netkat"
)

func TestToGotoGwlbMatchesFig1b(t *testing.T) {
	// Normalize Fig. 1a with metadata joins (Fig. 1c), then convert to
	// goto chaining: the result must have the Fig. 1b shape and its
	// 21-field footprint.
	tab := fig1a()
	res, err := Normalize(tab, Options{Target: NF3, Declared: gwlbDeclared(tab.Schema)})
	if err != nil {
		t.Fatal(err)
	}
	g, err := ToGoto(res.Pipeline)
	if err != nil {
		t.Fatal(err)
	}
	if g.Depth() != 4 {
		t.Fatalf("depth = %d, want 4\n%s", g.Depth(), g)
	}
	if got := g.FieldCount(); got != 21 {
		t.Errorf("field count = %d, want 21\n%s", got, g)
	}
	cex, _, err := netkat.EquivalentPipelines(mat.SingleTable(tab), g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cex != nil {
		t.Fatalf("ToGoto changed semantics: %v", cex)
	}
	// No metadata attributes may remain.
	for _, st := range g.Stages {
		for _, at := range st.Table.Schema {
			if at.Name != mat.GotoAttr && mat.IsLinkAttr(at.Name) {
				t.Errorf("metadata attr %s survives in stage %s", at.Name, st.Table.Name)
			}
		}
	}
}

func TestToGotoL3Chain(t *testing.T) {
	// The four-stage L3 metadata chain converts tag by tag from the tail:
	// both metadata joins become gotos and semantics are preserved.
	tab := fig2a()
	res, err := Normalize(tab, Options{Target: NF3, Declared: l3Declared(tab.Schema)})
	if err != nil {
		t.Fatal(err)
	}
	g, err := ToGoto(res.Pipeline)
	if err != nil {
		t.Fatal(err)
	}
	cex, _, err := netkat.EquivalentPipelines(mat.SingleTable(tab), g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cex != nil {
		t.Fatalf("ToGoto changed semantics: %v\n%s", cex, g)
	}
	for _, st := range g.Stages {
		for _, at := range st.Table.Schema {
			if at.Name != mat.GotoAttr && mat.IsLinkAttr(at.Name) {
				t.Errorf("metadata attr %s survives in stage %s\n%s", at.Name, st.Table.Name, g)
			}
		}
	}
	// Deeper than the metadata chain: consumers were split per group.
	if g.Depth() <= res.Pipeline.Depth() {
		t.Errorf("goto pipeline depth %d not deeper than metadata chain %d", g.Depth(), res.Pipeline.Depth())
	}
}

func TestToGotoNoMetadataIsIdentity(t *testing.T) {
	p := mat.SingleTable(fig1a())
	g, err := ToGoto(p)
	if err != nil {
		t.Fatal(err)
	}
	if g.Depth() != 1 || !g.Stages[0].Table.Equal(p.Stages[0].Table) {
		t.Errorf("no-metadata pipeline changed by ToGoto")
	}
}

func TestToGotoUnmatchedTagDrops(t *testing.T) {
	// Writer emits tag 9 that the consumer never matches: the packet must
	// drop, matching the metadata pipeline's consumer miss.
	w := mat.New("W", mat.Schema{mat.F("a", 8), mat.A(mat.MetaPrefix+"_t", 8)})
	w.Add(mat.Exact(1, 8), mat.Exact(0, 8))
	w.Add(mat.Exact(2, 8), mat.Exact(9, 8))
	c := mat.New("C", mat.Schema{mat.F(mat.MetaPrefix+"_t", 8), mat.A("o", 8)})
	c.Add(mat.Exact(0, 8), mat.Exact(7, 8))
	p := &mat.Pipeline{Stages: []mat.Stage{
		{Table: w, Next: 1, MissDrop: true},
		{Table: c, Next: -1, MissDrop: true},
	}}
	g, err := ToGoto(p)
	if err != nil {
		t.Fatal(err)
	}
	cex, _, err := netkat.EquivalentPipelines(p, g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cex != nil {
		t.Fatalf("unmatched-tag conversion changed semantics: %v\n%s", cex, g)
	}
	r, err := g.Eval(mat.Record{"a": 2})
	if err != nil {
		t.Fatal(err)
	}
	if r[mat.DropAttr] != 1 {
		t.Errorf("tag-9 packet not dropped: %v", r)
	}
}
