package core

import (
	"errors"
	"fmt"
	"math/bits"
	"strings"

	"manorm/internal/fd"
	"manorm/internal/mat"
)

// JoinKind selects the "join" abstraction realizing the abstract pipeline
// composition T ≫ S on the data plane (§4 of the paper).
type JoinKind int

const (
	// JoinMetadata communicates the first stage's match result through an
	// opaque metadata tag: a write-metadata action in the first table and
	// a metadata match field in the second (Fig. 1c).
	JoinMetadata JoinKind = iota
	// JoinGoto chains tables with goto_table instructions, one
	// second-stage table per dependency group (Fig. 1b). This join yields
	// the smallest aggregate footprint.
	JoinGoto
	// JoinRematch re-matches the dependency's left-hand-side fields in
	// the second table (Fig. 1d). Larger footprint; only applicable when
	// the LHS consists of header fields.
	JoinRematch
)

// String names the join abstraction.
func (j JoinKind) String() string {
	switch j {
	case JoinMetadata:
		return "metadata"
	case JoinGoto:
		return "goto"
	case JoinRematch:
		return "rematch"
	default:
		return fmt.Sprintf("JoinKind(%d)", int(j))
	}
}

// ErrActionToMatch is returned when decomposing along a dependency X→Y
// where X contains action attributes and Y contains match fields: the
// paper's Fig. 3 caveat. The first-stage table of such a decomposition
// cannot be order-independent, so no join abstraction can express it.
var ErrActionToMatch = errors.New("core: decomposition along an action-to-match dependency would violate 1NF (paper Fig. 3)")

// ErrNotOrderIndependent is returned when a constructed sub-table fails the
// 1NF order-independence check (defense in depth behind ErrActionToMatch).
var ErrNotOrderIndependent = errors.New("core: decomposition produced an order-dependent sub-table")

// ErrRematchNeedsFields is returned for JoinRematch on a dependency whose
// LHS includes action attributes: actions cannot be re-matched.
var ErrRematchNeedsFields = errors.New("core: rematch join requires a field-only dependency LHS")

// Decompose splits the analyzed table along the functional dependency f
// into a two-level pipeline T_dep ≫ T_rest (Heath's theorem carried to
// match-action programs, the paper's Theorem 1), realized with the chosen
// join abstraction.
//
// When f's LHS X consists of header fields, the dependency table goes
// first: it matches X (and Y's fields), applies Y's actions and transfers
// control. When X contains action attributes (and Y is action-only — the
// Fig. 3 rule forbids field RHS), the rest table goes first and the
// dependency table becomes a second-stage "group table", reproducing the
// OpenFlow group-table pattern the paper points out for the L3 use case.
func Decompose(a *Analysis, f fd.FD, join JoinKind) (*mat.Pipeline, error) {
	t := a.Table
	sch := t.Schema
	n := len(sch)
	x := f.From
	y := f.To.Minus(x)
	if !x.Union(y).SubsetOf(mat.FullSet(n)) {
		return nil, fmt.Errorf("core: dependency %v -> %v references attributes outside the %d-attribute schema",
			x.Members(), f.To.Members(), n)
	}
	if y.Empty() {
		return nil, fmt.Errorf("core: dependency %s is trivial", f.Format(sch))
	}
	if !t.IsOrderIndependent() {
		return nil, fmt.Errorf("core: table %s is not in 1NF", t.Name)
	}
	if !t.DetermineFn(x, y) {
		return nil, fmt.Errorf("core: dependency %s does not hold in table %s", f.Format(sch), t.Name)
	}
	z := mat.FullSet(n).Minus(x).Minus(y)

	actions := t.ActionSet()
	fields := t.MatchSet()
	xHasActions := !x.Intersect(actions).Empty()
	yHasFields := !y.Intersect(fields).Empty()
	if xHasActions && yHasFields {
		return nil, fmt.Errorf("%w: %s", ErrActionToMatch, f.Format(sch))
	}

	groups := t.GroupBy(x)
	var p *mat.Pipeline
	var err error
	if !xHasActions {
		// Dep-first grouping moves the X match into its own stage: the
		// group patterns must be non-overlapping for entry selection to
		// be preserved.
		if !x.Empty() && !groupsDisjoint(t, x, groups) {
			return nil, fmt.Errorf("%w: %s", ErrOverlappingGroups, f.Format(sch))
		}
		p, err = decomposeDepFirst(t, x, y, z, groups, join)
	} else {
		if join == JoinRematch {
			return nil, fmt.Errorf("%w: %s", ErrRematchNeedsFields, f.Format(sch))
		}
		p, err = decomposeRestFirst(t, x, y, z, groups, join)
	}
	if err != nil {
		return nil, err
	}
	for _, st := range p.Stages {
		if !st.Table.IsOrderIndependent() {
			return nil, fmt.Errorf("%w: table %s (dependency %s)", ErrNotOrderIndependent, st.Table.Name, f.Format(sch))
		}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// metaName derives the metadata attribute name for a dependency LHS.
func metaName(sch mat.Schema, x mat.AttrSet) string {
	if x.Empty() {
		return mat.MetaPrefix + "_const"
	}
	return mat.MetaPrefix + "_" + strings.Join(x.Names(sch), "_")
}

// bitsFor returns the width needed to store values 0..n-1 (at least 1).
func bitsFor(n int) uint8 {
	if n <= 1 {
		return 1
	}
	return uint8(bits.Len(uint(n - 1)))
}

// decomposeDepFirst handles a field-only LHS: the dependency table matches
// X (and Y's fields), applies Y's actions and links to the rest table that
// resolves Z.
func decomposeDepFirst(t *mat.Table, x, y, z mat.AttrSet, groups [][]int, join JoinKind) (*mat.Pipeline, error) {
	sch := t.Schema

	// The constant factor X = ∅ has a single group: the dependency table
	// degenerates into the paper's Cartesian-product table (Fig. 2c, T0)
	// and no link is needed — plain sequential chaining.
	if x.Empty() {
		dep := buildTable(t.Name+"_const", sch, x.Union(y), nil, groups, t)
		rest := buildTable(t.Name+"_rest", sch, z, nil, nil, t)
		return &mat.Pipeline{
			Name:  t.Name + "-const",
			Start: 0,
			Stages: []mat.Stage{
				{Table: dep, Next: 1, MissDrop: true},
				{Table: rest, Next: -1, MissDrop: true},
			},
		}, nil
	}

	switch join {
	case JoinMetadata:
		mn := metaName(sch, x)
		mw := bitsFor(len(groups))
		dep := buildTable(t.Name+"_dep", sch, x.Union(y), &linkSpec{name: mn, width: mw, kind: mat.Action}, groups, t)
		rest := buildRest(t.Name+"_rest", sch, x, z, groups, t, &linkSpec{name: mn, width: mw, kind: mat.Field}, false)
		return &mat.Pipeline{
			Name:  t.Name + "-meta",
			Start: 0,
			Stages: []mat.Stage{
				{Table: dep, Next: 1, MissDrop: true},
				{Table: rest, Next: -1, MissDrop: true},
			},
		}, nil

	case JoinGoto:
		dep := buildTable(t.Name+"_dep", sch, x.Union(y), &linkSpec{name: mat.GotoAttr, width: 16, kind: mat.Action, gotoBase: 1}, groups, t)
		stages := []mat.Stage{{Table: dep, Next: -1, MissDrop: true}}
		for gi, rows := range groups {
			sub := buildSubTable(fmt.Sprintf("%s_g%d", t.Name, gi), sch, z, rows, t)
			stages = append(stages, mat.Stage{Table: sub, Next: -1, MissDrop: true})
		}
		return &mat.Pipeline{Name: t.Name + "-goto", Start: 0, Stages: stages}, nil

	case JoinRematch:
		dep := buildTable(t.Name+"_dep", sch, x.Union(y), nil, groups, t)
		rest := buildRest(t.Name+"_rest", sch, x, z, groups, t, nil, true)
		return &mat.Pipeline{
			Name:  t.Name + "-rematch",
			Start: 0,
			Stages: []mat.Stage{
				{Table: dep, Next: 1, MissDrop: true},
				{Table: rest, Next: -1, MissDrop: true},
			},
		}, nil
	}
	return nil, fmt.Errorf("core: unknown join kind %d", int(join))
}

// decomposeRestFirst handles an action-bearing LHS with action-only RHS:
// the rest table matches all original fields, applies Z's actions and links
// into a per-group dependency table carrying X's and Y's actions — the
// group-table pattern.
func decomposeRestFirst(t *mat.Table, x, y, z mat.AttrSet, groups [][]int, join JoinKind) (*mat.Pipeline, error) {
	sch := t.Schema
	xActions := x.Intersect(t.ActionSet())
	xFields := x.Minus(xActions)
	depAttrs := xActions.Union(y)

	// Row → group index.
	gidOf := make([]int, len(t.Entries))
	for gi, rows := range groups {
		for _, r := range rows {
			gidOf[r] = gi
		}
	}

	switch join {
	case JoinMetadata:
		mn := metaName(sch, x)
		mw := bitsFor(len(groups))
		rest := buildRestFirst(t.Name+"_rest", sch, xFields, z, gidOf, t, &linkSpec{name: mn, width: mw, kind: mat.Action})
		dep := buildTable(t.Name+"_grp", sch, depAttrs, &linkSpec{name: mn, width: mw, kind: mat.Field}, groups, t)
		return &mat.Pipeline{
			Name:  t.Name + "-meta",
			Start: 0,
			Stages: []mat.Stage{
				{Table: rest, Next: 1, MissDrop: true},
				{Table: dep, Next: -1, MissDrop: true},
			},
		}, nil

	case JoinGoto:
		rest := buildRestFirst(t.Name+"_rest", sch, xFields, z, gidOf, t, &linkSpec{name: mat.GotoAttr, width: 16, kind: mat.Action, gotoBase: 1})
		stages := []mat.Stage{{Table: rest, Next: -1, MissDrop: true}}
		for gi, rows := range groups {
			sub := buildSubTable(fmt.Sprintf("%s_g%d", t.Name, gi), sch, depAttrs, rows[:1], t)
			stages = append(stages, mat.Stage{Table: sub, Next: -1, MissDrop: true})
		}
		return &mat.Pipeline{Name: t.Name + "-goto", Start: 0, Stages: stages}, nil
	}
	return nil, fmt.Errorf("core: unknown join kind %d", int(join))
}

// linkSpec describes the link column a decomposition adds to a table.
type linkSpec struct {
	name  string
	width uint8
	kind  mat.Kind
	// gotoBase offsets group indices into pipeline stage indices for goto
	// links.
	gotoBase int
}

// buildTable projects t onto keep (one row per group when groups are
// given), appending a link column valued by group index.
func buildTable(name string, sch mat.Schema, keep mat.AttrSet, link *linkSpec, groups [][]int, t *mat.Table) *mat.Table {
	idx := keep.Members()
	outSch := sch.Project(idx)
	if link != nil {
		outSch = append(outSch, mat.Attr{Name: link.name, Kind: link.kind, Width: link.width})
	}
	out := mat.New(name, outSch)
	out.Provenance = t.Provenance
	if groups == nil {
		// One row per distinct projection.
		proj := t.Project(name, keep)
		for _, e := range proj.Entries {
			row := append(mat.Entry(nil), e...)
			out.Entries = append(out.Entries, row)
		}
		return out
	}
	for gi, rows := range groups {
		rep := t.Entries[rows[0]]
		row := make(mat.Entry, 0, len(idx)+1)
		for _, i := range idx {
			row = append(row, rep[i])
		}
		if link != nil {
			row = append(row, mat.Exact(uint64(gi+link.gotoBase), link.width))
		}
		out.Entries = append(out.Entries, row)
	}
	return out
}

// buildRest builds the dep-first second stage: rows keyed by (link|X, Z),
// deduplicated. Conflicting duplicate match keys survive deduplication and
// are caught by the caller's order-independence post-check.
func buildRest(name string, sch mat.Schema, x, z mat.AttrSet, groups [][]int, t *mat.Table, link *linkSpec, rematch bool) *mat.Table {
	gidOf := make([]int, len(t.Entries))
	for gi, rows := range groups {
		for _, r := range rows {
			gidOf[r] = gi
		}
	}
	var outSch mat.Schema
	var zIdx []int
	if rematch {
		outSch = append(outSch, sch.Project(x.Members())...)
	} else if link != nil {
		outSch = append(outSch, mat.Attr{Name: link.name, Kind: link.kind, Width: link.width})
	}
	zIdx = z.Members()
	outSch = append(outSch, sch.Project(zIdx)...)
	out := mat.New(name, outSch)
	out.Provenance = t.Provenance
	seen := make(map[string]bool)
	for ri, e := range t.Entries {
		row := make(mat.Entry, 0, len(outSch))
		if rematch {
			for _, i := range x.Members() {
				row = append(row, e[i])
			}
		} else if link != nil {
			row = append(row, mat.Exact(uint64(gidOf[ri]), link.width))
		}
		for _, i := range zIdx {
			row = append(row, e[i])
		}
		k := rowKey(row)
		if seen[k] {
			continue
		}
		seen[k] = true
		out.Entries = append(out.Entries, row)
	}
	return out
}

// buildRestFirst builds the rest-first first stage: one row per original
// entry over (fields(X) ∪ Z) plus the group link.
func buildRestFirst(name string, sch mat.Schema, xFields, z mat.AttrSet, gidOf []int, t *mat.Table, link *linkSpec) *mat.Table {
	keep := xFields.Union(z)
	idx := keep.Members()
	outSch := sch.Project(idx)
	outSch = append(outSch, mat.Attr{Name: link.name, Kind: link.kind, Width: link.width})
	out := mat.New(name, outSch)
	out.Provenance = t.Provenance
	seen := make(map[string]bool)
	for ri, e := range t.Entries {
		row := make(mat.Entry, 0, len(idx)+1)
		for _, i := range idx {
			row = append(row, e[i])
		}
		row = append(row, mat.Exact(uint64(gidOf[ri]+link.gotoBase), link.width))
		k := rowKey(row)
		if seen[k] {
			continue
		}
		seen[k] = true
		out.Entries = append(out.Entries, row)
	}
	return out
}

// buildSubTable extracts the Z-projection of the given rows into a
// standalone goto target table.
func buildSubTable(name string, sch mat.Schema, keep mat.AttrSet, rows []int, t *mat.Table) *mat.Table {
	idx := keep.Members()
	out := mat.New(name, sch.Project(idx))
	out.Provenance = t.Provenance
	seen := make(map[string]bool)
	for _, ri := range rows {
		e := t.Entries[ri]
		row := make(mat.Entry, 0, len(idx))
		for _, i := range idx {
			row = append(row, e[i])
		}
		k := rowKey(row)
		if seen[k] {
			continue
		}
		seen[k] = true
		out.Entries = append(out.Entries, row)
	}
	return out
}

// rowKey renders an entry for deduplication.
func rowKey(e mat.Entry) string {
	var b strings.Builder
	for _, c := range e {
		fmt.Fprintf(&b, "%d/%d;", c.Bits, c.PLen)
	}
	return b.String()
}

// ErrOverlappingGroups is returned when the decomposition LHS's match
// patterns overlap across groups: the relational view treats a wildcard
// pattern as one opaque value, but on the wire a packet can match several
// overlapping patterns, and moving the group selection into its own stage
// would then change which entry wins. (The paper's formal development
// assumes exact matches for exactly this reason.)
var ErrOverlappingGroups = errors.New(
	"core: dependency LHS patterns overlap across groups; decomposition would change match semantics")

// groupsDisjoint reports whether distinct X-group pattern tuples are
// pairwise non-overlapping, i.e. no packet can match two groups.
func groupsDisjoint(t *mat.Table, x mat.AttrSet, groups [][]int) bool {
	xs := x.Members()
	for i := 0; i < len(groups); i++ {
		for j := i + 1; j < len(groups); j++ {
			a := t.Entries[groups[i][0]]
			b := t.Entries[groups[j][0]]
			overlapAll := true
			for _, col := range xs {
				if !a[col].Overlaps(b[col], t.Schema[col].Width) {
					overlapAll = false
					break
				}
			}
			if overlapAll {
				return false
			}
		}
	}
	return true
}
