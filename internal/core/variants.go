package core

import (
	"errors"
	"fmt"

	"manorm/internal/mat"
)

// Variant is one data-plane representation of a universal match-action
// table: the table itself, the fully normalized pipeline under one of the
// join abstractions, or a single decomposition step along one dependency.
// The differential harness (internal/difftest) executes all variants of a
// program side by side and cross-checks their outputs.
type Variant struct {
	// Name identifies the representation, e.g. "universal",
	// "nf3-metadata", "dec({ip_dst} -> {out})/goto".
	Name string
	// Pipeline is the executable representation.
	Pipeline *mat.Pipeline
}

// maxVariantFDs caps how many mined dependencies Variants expands into
// one-step decompositions; beyond it the full normalization variants still
// cover the interesting structure without blowing up the work per program.
const maxVariantFDs = 8

// Variants enumerates the representations the normalization machinery can
// emit for a universal table: the table as a one-stage pipeline, the full
// normalization to target under the metadata join, its goto_table
// conversion (Fig. 1c → 1b), and a one-step decomposition along every
// mined dependency under each applicable join abstraction (metadata, goto,
// rematch). Dependencies a join cannot express — the Fig. 3 action-to-match
// shape, overlapping LHS groups, rematch over action attributes — are
// skipped silently: they are the normal "not decomposable here" cases.
// Any other construction failure is returned as an error, because for a
// valid 1NF input it indicates a bug in the transformation machinery.
//
// Every returned pipeline is validated; by the paper's Theorem 1 all of
// them must be semantically equivalent to the input table.
func Variants(t *mat.Table, target Form) ([]Variant, error) {
	if target == 0 {
		target = NF3
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	out := []Variant{{Name: "universal", Pipeline: mat.SingleTable(t)}}

	res, err := Normalize(t, Options{Target: target})
	if err != nil {
		return nil, fmt.Errorf("core: variants of %s: normalize: %w", t.Name, err)
	}
	if res.Pipeline.Depth() > 1 {
		out = append(out, Variant{Name: fmt.Sprintf("%s-metadata", target), Pipeline: res.Pipeline})
		g, err := ToGoto(res.Pipeline)
		if err != nil {
			return nil, fmt.Errorf("core: variants of %s: togoto: %w", t.Name, err)
		}
		if g.Depth() > res.Pipeline.Depth() || !samePipelineShape(g, res.Pipeline) {
			out = append(out, Variant{Name: fmt.Sprintf("%s-goto", target), Pipeline: g})
		}
	}

	a := Analyze(t)
	n := len(t.Schema)
	joins := []JoinKind{JoinMetadata, JoinGoto, JoinRematch}
	fds := a.FDs
	if len(fds) > maxVariantFDs {
		fds = fds[:maxVariantFDs]
	}
	for _, f := range fds {
		y := f.To.Minus(f.From)
		z := mat.FullSet(n).Minus(f.From).Minus(y)
		if y.Empty() || z.Empty() {
			continue
		}
		for _, j := range joins {
			p, err := Decompose(a, f, j)
			if err != nil {
				if errors.Is(err, ErrActionToMatch) ||
					errors.Is(err, ErrOverlappingGroups) ||
					errors.Is(err, ErrRematchNeedsFields) {
					continue
				}
				return nil, fmt.Errorf("core: variants of %s: decompose %s via %s: %w",
					t.Name, f.Format(t.Schema), j, err)
			}
			out = append(out, Variant{
				Name:     fmt.Sprintf("dec(%s)/%s", f.Format(t.Schema), j),
				Pipeline: p,
			})
		}
	}
	return out, nil
}

// samePipelineShape reports whether two pipelines have identical stage
// tables and links — used to drop a goto conversion that changed nothing.
func samePipelineShape(a, b *mat.Pipeline) bool {
	if len(a.Stages) != len(b.Stages) || a.Start != b.Start {
		return false
	}
	for i := range a.Stages {
		if a.Stages[i].Next != b.Stages[i].Next ||
			a.Stages[i].MissDrop != b.Stages[i].MissDrop ||
			!a.Stages[i].Table.Equal(b.Stages[i].Table) {
			return false
		}
	}
	return true
}
