package core

import (
	"errors"
	"testing"

	"manorm/internal/fd"
	"manorm/internal/mat"
	"manorm/internal/netkat"
)

// mustEquiv fails the test unless the pipeline is semantically equivalent
// to the universal table.
func mustEquiv(t *testing.T, tab *mat.Table, p *mat.Pipeline) {
	t.Helper()
	cex, _, err := netkat.EquivalentPipelines(mat.SingleTable(tab), p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cex != nil {
		t.Fatalf("decomposition changed semantics: %v\n%s", cex, p)
	}
}

func gwlbAnalysis(t *testing.T) *Analysis {
	t.Helper()
	tab := fig1a()
	a, err := AnalyzeDeclared(tab, gwlbDeclared(tab.Schema))
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func ipDstToTCPDst(s mat.Schema) fd.FD {
	return fd.FD{From: mat.SetOf(s, "ip_dst"), To: mat.SetOf(s, "tcp_dst")}
}

func TestDecomposeGotoMatchesFig1b(t *testing.T) {
	a := gwlbAnalysis(t)
	p, err := Decompose(a, ipDstToTCPDst(a.Table.Schema), JoinGoto)
	if err != nil {
		t.Fatal(err)
	}
	// Shape of Fig. 1b: a 3-entry first stage plus one per-tenant
	// load-balancer table (2 + 3 + 1 entries).
	if p.Depth() != 4 {
		t.Fatalf("depth = %d, want 4\n%s", p.Depth(), p)
	}
	if got := len(p.Stages[0].Table.Entries); got != 3 {
		t.Errorf("first stage entries = %d, want 3", got)
	}
	sizes := []int{len(p.Stages[1].Table.Entries), len(p.Stages[2].Table.Entries), len(p.Stages[3].Table.Entries)}
	if sizes[0] != 2 || sizes[1] != 3 || sizes[2] != 1 {
		t.Errorf("subtable sizes = %v, want [2 3 1]", sizes)
	}
	// The paper's footprint count: 21 match-action fields (vs 24).
	if got := p.FieldCount(); got != 21 {
		t.Errorf("field count = %d, want 21", got)
	}
	mustEquiv(t, a.Table, p)
}

func TestDecomposeMetadataMatchesFig1c(t *testing.T) {
	a := gwlbAnalysis(t)
	p, err := Decompose(a, ipDstToTCPDst(a.Table.Schema), JoinMetadata)
	if err != nil {
		t.Fatal(err)
	}
	if p.Depth() != 2 {
		t.Fatalf("depth = %d, want 2\n%s", p.Depth(), p)
	}
	// Stage 1: one entry per service; stage 2: one per backend with a
	// metadata match.
	if got := len(p.Stages[0].Table.Entries); got != 3 {
		t.Errorf("dep entries = %d, want 3", got)
	}
	if got := len(p.Stages[1].Table.Entries); got != 6 {
		t.Errorf("rest entries = %d, want 6", got)
	}
	if idx := p.Stages[1].Table.Schema.Index(mat.MetaPrefix + "_ip_dst"); idx < 0 {
		t.Errorf("rest stage lacks metadata match field: %s", p.Stages[1].Table.Schema)
	}
	mustEquiv(t, a.Table, p)
}

func TestDecomposeRematchMatchesFig1d(t *testing.T) {
	a := gwlbAnalysis(t)
	p, err := Decompose(a, ipDstToTCPDst(a.Table.Schema), JoinRematch)
	if err != nil {
		t.Fatal(err)
	}
	if p.Depth() != 2 {
		t.Fatalf("depth = %d, want 2", p.Depth())
	}
	// The second stage re-matches ip_dst: largest footprint of the three
	// joins.
	if idx := p.Stages[1].Table.Schema.Index("ip_dst"); idx < 0 {
		t.Errorf("rest stage does not re-match ip_dst: %s", p.Stages[1].Table.Schema)
	}
	mustEquiv(t, a.Table, p)
}

func TestJoinFootprintOrdering(t *testing.T) {
	// §4: goto "results the smallest aggregate space in general"; rematch
	// may be larger than metadata "since X may involve matching on
	// multiple header fields". With a single-field LHS rematch can tie or
	// beat metadata, so only goto-minimality is asserted here.
	a := gwlbAnalysis(t)
	f := ipDstToTCPDst(a.Table.Schema)
	sizes := map[JoinKind]int{}
	for _, j := range []JoinKind{JoinGoto, JoinMetadata, JoinRematch} {
		p, err := Decompose(a, f, j)
		if err != nil {
			t.Fatal(err)
		}
		sizes[j] = p.FieldCount()
	}
	if sizes[JoinGoto] > sizes[JoinMetadata] || sizes[JoinGoto] > sizes[JoinRematch] {
		t.Errorf("goto not smallest: goto=%d meta=%d rematch=%d",
			sizes[JoinGoto], sizes[JoinMetadata], sizes[JoinRematch])
	}
}

func TestRematchLargerThanMetadataForWideLHS(t *testing.T) {
	// With a two-field LHS, re-matching states both fields per rest row
	// while metadata states one tag: rematch must be strictly larger.
	tab := mat.New("W", mat.Schema{
		mat.F("a", 16), mat.F("b", 16), mat.F("c", 16), mat.A("y", 16), mat.A("o", 16),
	})
	// (a, b) -> y; c splits each (a, b) group into several entries.
	for i := uint64(0); i < 4; i++ {
		for j := uint64(0); j < 3; j++ {
			tab.Add(mat.Exact(i, 16), mat.Exact(i+1, 16), mat.Exact(j, 16),
				mat.Exact(i*10, 16), mat.Exact(i*100+j, 16))
		}
	}
	a, err := AnalyzeDeclared(tab, []fd.FD{
		{From: mat.SetOf(tab.Schema, "a", "b"), To: mat.SetOf(tab.Schema, "y")},
	})
	if err != nil {
		t.Fatal(err)
	}
	f := fd.FD{From: mat.SetOf(tab.Schema, "a", "b"), To: mat.SetOf(tab.Schema, "y")}
	pm, err := Decompose(a, f, JoinMetadata)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := Decompose(a, f, JoinRematch)
	if err != nil {
		t.Fatal(err)
	}
	if pr.FieldCount() <= pm.FieldCount() {
		t.Errorf("rematch (%d fields) not larger than metadata (%d fields) for 2-field LHS",
			pr.FieldCount(), pm.FieldCount())
	}
	mustEquiv(t, tab, pm)
	mustEquiv(t, tab, pr)
}

func TestDecomposeGroupTable(t *testing.T) {
	// L3 use case, dependency mod_dmac -> (out, mod_smac): action LHS,
	// action RHS. The rest table goes first and the dependency table
	// becomes the OpenFlow-style group table (Fig. 2b).
	tab := fig2a()
	a, err := AnalyzeDeclared(tab, l3Declared(tab.Schema))
	if err != nil {
		t.Fatal(err)
	}
	f := fd.FD{From: mat.SetOf(tab.Schema, "mod_dmac"), To: mat.SetOf(tab.Schema, "out", "mod_smac")}
	p, err := Decompose(a, f, JoinMetadata)
	if err != nil {
		t.Fatal(err)
	}
	if p.Depth() != 2 {
		t.Fatalf("depth = %d, want 2\n%s", p.Depth(), p)
	}
	// Stage 0 matches the prefixes; stage 1 is the group table with one
	// row per distinct next-hop MAC (3 groups: D1, D2, D3).
	if got := len(p.Stages[1].Table.Entries); got != 3 {
		t.Errorf("group table entries = %d, want 3\n%s", got, p.Stages[1].Table)
	}
	// The group table carries mod_dmac itself plus the dependent actions.
	for _, name := range []string{"mod_dmac", "out", "mod_smac"} {
		if p.Stages[1].Table.Schema.Index(name) < 0 {
			t.Errorf("group table missing %s", name)
		}
	}
	mustEquiv(t, tab, p)

	// Goto flavor: per-group action-only tables.
	pg, err := Decompose(a, f, JoinGoto)
	if err != nil {
		t.Fatal(err)
	}
	if pg.Depth() != 4 {
		t.Fatalf("goto depth = %d, want 1+3", pg.Depth())
	}
	for i := 1; i < 4; i++ {
		if got := len(pg.Stages[i].Table.Entries); got != 1 {
			t.Errorf("action table %d entries = %d, want 1", i, got)
		}
	}
	mustEquiv(t, tab, pg)
}

func TestDecomposeActionToMatchRejected(t *testing.T) {
	// The paper's Fig. 3: decomposing along out -> vlan (action LHS,
	// field RHS) must be rejected — the first stage cannot be 1NF.
	tab := fig3a()
	a := Analyze(tab)
	f := fd.FD{From: mat.SetOf(tab.Schema, "out"), To: mat.SetOf(tab.Schema, "vlan")}
	if !f.HoldsIn(tab) {
		t.Fatalf("out -> vlan does not hold in Fig. 3a")
	}
	for _, j := range []JoinKind{JoinMetadata, JoinGoto, JoinRematch} {
		_, err := Decompose(a, f, j)
		if err == nil {
			t.Fatalf("join %s: action-to-match decomposition accepted", j)
		}
		if j != JoinRematch && !errors.Is(err, ErrActionToMatch) {
			t.Errorf("join %s: error = %v, want ErrActionToMatch", j, err)
		}
	}
}

func TestDecomposeRematchRequiresFieldLHS(t *testing.T) {
	tab := fig2a()
	a, err := AnalyzeDeclared(tab, l3Declared(tab.Schema))
	if err != nil {
		t.Fatal(err)
	}
	f := fd.FD{From: mat.SetOf(tab.Schema, "mod_dmac"), To: mat.SetOf(tab.Schema, "out")}
	_, err = Decompose(a, f, JoinRematch)
	if !errors.Is(err, ErrRematchNeedsFields) {
		t.Fatalf("err = %v, want ErrRematchNeedsFields", err)
	}
}

func TestDecomposeConstantFactor(t *testing.T) {
	// X = ∅ (constant attributes) degenerates into the Cartesian-product
	// table of Fig. 2c.
	tab := fig2a()
	a, err := AnalyzeDeclared(tab, l3Declared(tab.Schema))
	if err != nil {
		t.Fatal(err)
	}
	f := fd.FD{From: 0, To: mat.SetOf(tab.Schema, "eth_type", "mod_ttl")}
	p, err := Decompose(a, f, JoinMetadata)
	if err != nil {
		t.Fatal(err)
	}
	if p.Depth() != 2 {
		t.Fatalf("depth = %d, want 2", p.Depth())
	}
	if got := len(p.Stages[0].Table.Entries); got != 1 {
		t.Errorf("product table entries = %d, want 1", got)
	}
	// No link column needed: the product table is position-independent.
	for _, at := range p.Stages[0].Table.Schema {
		if mat.IsLinkAttr(at.Name) {
			t.Errorf("product table has link attr %s", at.Name)
		}
	}
	mustEquiv(t, tab, p)
}

func TestDecomposeErrors(t *testing.T) {
	a := gwlbAnalysis(t)
	s := a.Table.Schema
	// Trivial dependency.
	if _, err := Decompose(a, fd.FD{From: mat.SetOf(s, "ip_dst"), To: mat.SetOf(s, "ip_dst")}, JoinGoto); err == nil {
		t.Errorf("trivial dependency accepted")
	}
	// Dependency that does not hold.
	if _, err := Decompose(a, fd.FD{From: mat.SetOf(s, "ip_dst"), To: mat.SetOf(s, "out")}, JoinGoto); err == nil {
		t.Errorf("non-holding dependency accepted")
	}
	// Out-of-schema attribute.
	if _, err := Decompose(a, fd.FD{From: mat.NewAttrSet(60), To: mat.SetOf(s, "out")}, JoinGoto); err == nil {
		t.Errorf("out-of-schema dependency accepted")
	}
	// Non-1NF input.
	bad := fig3a()
	e := bad.Entries[0].Clone()
	e[2] = mat.Exact(9, 8)
	bad.Entries = append(bad.Entries, e)
	if _, err := Decompose(Analyze(bad), fd.FD{From: mat.SetOf(bad.Schema, "in_port"), To: mat.SetOf(bad.Schema, "vlan")}, JoinGoto); err == nil {
		t.Errorf("order-dependent input accepted")
	}
}

func TestDecomposeAllJoinsEquivalentOnL3FieldFD(t *testing.T) {
	// Field-only dependency on the L3 table: ip_dst -> mod_dmac
	// (dep-first with an action RHS).
	tab := fig2a()
	a, err := AnalyzeDeclared(tab, l3Declared(tab.Schema))
	if err != nil {
		t.Fatal(err)
	}
	f := fd.FD{From: mat.SetOf(tab.Schema, "ip_dst"), To: mat.SetOf(tab.Schema, "mod_dmac")}
	for _, j := range []JoinKind{JoinMetadata, JoinGoto, JoinRematch} {
		p, err := Decompose(a, f, j)
		if err != nil {
			t.Fatalf("join %s: %v", j, err)
		}
		mustEquiv(t, tab, p)
	}
}

func TestJoinKindString(t *testing.T) {
	if JoinMetadata.String() != "metadata" || JoinGoto.String() != "goto" || JoinRematch.String() != "rematch" {
		t.Errorf("JoinKind names wrong")
	}
}
