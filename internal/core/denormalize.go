package core

import (
	"fmt"

	"manorm/internal/mat"
)

// Denormalize is the inverse transformation (§4: "decomposing a
// match-action table into multiple tables and vice versa"): it re-joins a
// multi-table pipeline into its universal single-table representation by
// enumerating the pipeline's control-flow paths and joining the entries
// along each path. Link attributes (metadata tags, goto targets) are
// consumed by the join and do not appear in the output.
//
// This is what a data plane like Open vSwitch does implicitly when it
// collapses a multi-table pipeline into a single flow cache (§5); the
// explicit construction also powers the round-trip property tests
// (Denormalize(Normalize(T)) ≡ T).
//
// Every stage must be drop-on-miss: a fall-through miss would require
// negated matches in the universal table, which the match-action
// abstraction cannot express in a single row.
func Denormalize(p *mat.Pipeline) (*mat.Table, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	for i, st := range p.Stages {
		if !st.MissDrop {
			return nil, fmt.Errorf("core: denormalize: stage %d (%s) falls through on miss; not expressible in one table", i, st.Table.Name)
		}
	}

	// Collect the output schema: non-link fields first, then non-link
	// actions, in stage order of first appearance. An attribute may not
	// be both matched and written.
	var schema mat.Schema
	seen := make(map[string]mat.Kind)
	for _, st := range p.Stages {
		for _, at := range st.Table.Schema {
			if mat.IsLinkAttr(at.Name) {
				continue
			}
			if prev, ok := seen[at.Name]; ok {
				if prev != at.Kind {
					return nil, fmt.Errorf("core: denormalize: attribute %s is both matched and written", at.Name)
				}
				continue
			}
			seen[at.Name] = at.Kind
			schema = append(schema, at)
		}
	}
	// Stable order: fields then actions, preserving relative order.
	var ordered mat.Schema
	for _, at := range schema {
		if at.Kind == mat.Field {
			ordered = append(ordered, at)
		}
	}
	for _, at := range schema {
		if at.Kind == mat.Action {
			ordered = append(ordered, at)
		}
	}

	out := mat.New(p.Name+"-denorm", ordered)
	if len(p.Stages) > 0 {
		out.Provenance = p.Stages[0].Table.Provenance
	}

	// path state: accumulated match constraints and action assignments.
	type state struct {
		match    map[string]mat.Cell
		assigned map[string]uint64
	}
	cloneState := func(s state) state {
		m := make(map[string]mat.Cell, len(s.match))
		for k, v := range s.match {
			m[k] = v
		}
		a := make(map[string]uint64, len(s.assigned))
		for k, v := range s.assigned {
			a[k] = v
		}
		return state{match: m, assigned: a}
	}

	seenRows := make(map[string]bool)
	var emit func(s state) error
	emit = func(s state) error {
		row := make(mat.Entry, len(ordered))
		for i, at := range ordered {
			if at.Kind == mat.Field {
				if c, ok := s.match[at.Name]; ok {
					row[i] = c
				} else {
					row[i] = mat.Any()
				}
				continue
			}
			v, ok := s.assigned[at.Name]
			if !ok {
				return fmt.Errorf("core: denormalize: action %s not assigned on some path", at.Name)
			}
			row[i] = mat.Exact(v, at.Width)
		}
		k := rowKey(row)
		if !seenRows[k] {
			seenRows[k] = true
			out.Entries = append(out.Entries, row)
		}
		return nil
	}

	var walk func(stage int, s state, depth int) error
	walk = func(stage int, s state, depth int) error {
		if stage < 0 {
			return emit(s)
		}
		if depth > len(p.Stages) {
			return fmt.Errorf("core: denormalize: goto cycle in pipeline %s", p.Name)
		}
		st := p.Stages[stage]
		t := st.Table
		gotoIdx := t.Schema.Index(mat.GotoAttr)
	entries:
		for _, e := range t.Entries {
			ns := cloneState(s)
			for i, at := range t.Schema {
				c := e[i]
				switch {
				case at.Kind == mat.Field:
					// A field already assigned upstream (a metadata
					// tag) is a concrete value: the entry joins only
					// if its pattern matches that value.
					if v, ok := ns.assigned[at.Name]; ok {
						if !c.Matches(v, at.Width) {
							continue entries
						}
						continue
					}
					prev, constrained := ns.match[at.Name]
					switch {
					case !constrained:
						if !mat.IsLinkAttr(at.Name) {
							ns.match[at.Name] = c
						}
					case prev.Covers(c, at.Width):
						ns.match[at.Name] = c
					case c.Covers(prev, at.Width):
						// Keep the tighter upstream constraint.
					default:
						// Prefix patterns are nested or disjoint:
						// non-nested means no packet can take this
						// path.
						continue entries
					}
				case i == gotoIdx:
					// Control transfer handled below.
				default: // action
					ns.assigned[at.Name] = c.Bits
				}
			}
			next := st.Next
			if gotoIdx >= 0 {
				next = int(e[gotoIdx].Bits)
			}
			if err := walk(next, ns, depth+1); err != nil {
				return err
			}
		}
		return nil
	}

	err := walk(p.Start, state{match: map[string]mat.Cell{}, assigned: map[string]uint64{}}, 0)
	if err != nil {
		return nil, err
	}
	return out, nil
}
