package core

import (
	"strings"
	"testing"

	"manorm/internal/fd"
	"manorm/internal/mat"
)

func TestCheckFig1aMined(t *testing.T) {
	// Under the mined instance dependencies every attribute of Fig. 1a is
	// prime (tcp_dst ↔ ip_dst are mutually determining in the six-row
	// instance), so the table already satisfies 3NF — but not BCNF
	// (ip_dst → tcp_dst has a non-superkey LHS).
	a := Analyze(fig1a())
	form, violations := Check(a)
	if form != NF3 {
		t.Fatalf("form = %s, want 3NF; violations: %v", form, violations)
	}
	for _, v := range violations {
		if v.Level != BCNF {
			t.Errorf("unexpected violation level %s: %s", v.Level, v.Reason)
		}
	}
	if len(violations) == 0 {
		t.Errorf("expected BCNF violations for ip_dst <-> tcp_dst")
	}
}

func TestCheckFig1aDeclared(t *testing.T) {
	// Under the declared semantic dependencies, Fig. 1a shows the paper's
	// §3 2NF violation: ip_dst (a proper subset of the key
	// (ip_src, ip_dst)) determines the non-prime tcp_dst.
	tab := fig1a()
	a, err := AnalyzeDeclared(tab, gwlbDeclared(tab.Schema))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Keys) != 1 || a.Keys[0] != mat.SetOf(tab.Schema, "ip_src", "ip_dst") {
		t.Fatalf("keys = %v, want [(ip_src, ip_dst)]", a.Keys)
	}
	if np := a.NonPrime(); np != mat.SetOf(tab.Schema, "tcp_dst", "out") {
		t.Fatalf("non-prime = %s", np.Format(tab.Schema))
	}
	form, violations := Check(a)
	if form != NF1 {
		t.Fatalf("form = %s, want 1NF", form)
	}
	found := false
	for _, v := range violations {
		if v.Level == NF2 &&
			v.FD.From == mat.SetOf(tab.Schema, "ip_dst") &&
			v.FD.To == mat.SetOf(tab.Schema, "tcp_dst") {
			found = true
			if !strings.Contains(v.Reason, "partial dependency") {
				t.Errorf("reason = %q", v.Reason)
			}
		}
	}
	if !found {
		t.Errorf("the paper's ip_dst -> tcp_dst 2NF violation not reported; got %+v", violations)
	}
}

func TestCheckFig2aDeclared(t *testing.T) {
	tab := fig2a()
	a, err := AnalyzeDeclared(tab, l3Declared(tab.Schema))
	if err != nil {
		t.Fatal(err)
	}
	s := tab.Schema
	// (ip_dst) is the single minimal key; everything else is non-prime
	// (§3, third-normal-form discussion).
	if len(a.Keys) != 1 || a.Keys[0] != mat.SetOf(s, "ip_dst") {
		t.Fatalf("keys = %v, want [(ip_dst)]", a.Keys)
	}
	form, violations := Check(a)
	// The constant attributes eth_type and mod_ttl depend on ∅ ⊊ key, a
	// partial dependency, so the table is in 1NF only.
	if form != NF1 {
		t.Fatalf("form = %s, want 1NF", form)
	}
	var sawConst, sawGroup bool
	for _, v := range violations {
		if v.Level == NF2 && v.FD.From.Empty() {
			sawConst = true
			if v.FD.To != mat.SetOf(s, "eth_type", "mod_ttl") {
				t.Errorf("constant violation RHS = %s", v.FD.To.Format(s))
			}
		}
		if v.FD.From == mat.SetOf(s, "mod_dmac") {
			sawGroup = true
		}
	}
	if !sawConst {
		t.Errorf("∅ -> {eth_type, mod_ttl} violation not reported")
	}
	_ = sawGroup // group violation appears only after 2NF is repaired
}

func TestCheckOrderDependent(t *testing.T) {
	tab := mat.New("T", mat.Schema{mat.F("a", 8), mat.A("o", 8)})
	tab.Add(mat.Exact(1, 8), mat.Exact(1, 8))
	tab.Add(mat.Exact(1, 8), mat.Exact(2, 8))
	form, violations := Check(Analyze(tab))
	if form != NF0 {
		t.Fatalf("form = %s, want not-1NF", form)
	}
	if len(violations) != 1 || violations[0].Level != NF1 {
		t.Fatalf("violations = %+v", violations)
	}
}

func TestCheckBCNFTable(t *testing.T) {
	// A plain L2 table: dst MAC -> port, nothing else. Key = {mac};
	// key = {out}? out repeats, so no. The only dependency is the key
	// dependency: BCNF.
	tab := mat.New("L2", mat.Schema{mat.F("mac", 48), mat.A("out", 8)})
	tab.Add(mat.Exact(1, 48), mat.Exact(1, 8))
	tab.Add(mat.Exact(2, 48), mat.Exact(2, 8))
	tab.Add(mat.Exact(3, 48), mat.Exact(1, 8))
	form, violations := Check(Analyze(tab))
	if form != BCNF || len(violations) != 0 {
		t.Fatalf("form = %s, violations = %+v; want BCNF, none", form, violations)
	}
}

func TestCheckSingleEntryTableIsBCNF(t *testing.T) {
	tab := mat.New("one", mat.Schema{mat.F("a", 8), mat.A("b", 8)})
	tab.Add(mat.Exact(1, 8), mat.Exact(2, 8))
	form, violations := Check(Analyze(tab))
	if form != BCNF || len(violations) != 0 {
		t.Fatalf("single-entry table: form = %s, violations = %+v", form, violations)
	}
}

func TestFormString(t *testing.T) {
	names := map[Form]string{NF0: "not-1NF", NF1: "1NF", NF2: "2NF", NF3: "3NF", BCNF: "BCNF"}
	for f, want := range names {
		if f.String() != want {
			t.Errorf("Form(%d).String() = %q, want %q", int(f), f.String(), want)
		}
	}
}

func TestAnalyzeDeclaredRejectsFalseFD(t *testing.T) {
	tab := fig1a()
	bad := []fd.FD{{From: mat.SetOf(tab.Schema, "ip_dst"), To: mat.SetOf(tab.Schema, "out")}}
	if _, err := AnalyzeDeclared(tab, bad); err == nil {
		t.Fatalf("false declared dependency accepted")
	}
}

func TestViolationFormat(t *testing.T) {
	tab := fig1a()
	a, _ := AnalyzeDeclared(tab, gwlbDeclared(tab.Schema))
	_, violations := Check(a)
	if len(violations) == 0 {
		t.Fatal("no violations")
	}
	s := violations[0].Format(tab.Schema)
	if !strings.Contains(s, "blocks") {
		t.Errorf("Format = %q", s)
	}
}
