package core

import (
	"testing"

	"manorm/internal/fd"
	"manorm/internal/mat"
	"manorm/internal/netkat"
)

// accessControl builds a table with a planted proper MVD and no FD between
// the sides: a subscriber (ip_src block) has a set of allowed destination
// services and a set of allowed ports, independently — every combination
// appears. This is the cross-product redundancy 4NF removes.
func accessControl() *mat.Table {
	t := mat.New("acl", mat.Schema{
		mat.F("ip_src", 32), mat.F("ip_dst", 32), mat.F("tcp_dst", 16), mat.A("out", 8),
	})
	sub1 := mat.IPv4Prefix("10.1.0.0", 16)
	sub2 := mat.IPv4Prefix("10.2.0.0", 16)
	// Subscriber 1: destinations {D1, D2} × ports {80, 443}.
	for _, dst := range []mat.Cell{mat.IPv4("192.0.2.1"), mat.IPv4("192.0.2.2")} {
		for _, port := range []uint64{80, 443} {
			t.Add(sub1, dst, mat.Exact(port, 16), mat.Exact(1, 8))
		}
	}
	// Subscriber 2: destinations {D3} × ports {22, 80, 8080}.
	for _, port := range []uint64{22, 80, 8080} {
		t.Add(sub2, mat.IPv4("192.0.2.3"), mat.Exact(port, 16), mat.Exact(2, 8))
	}
	return t
}

func TestMVDHolds(t *testing.T) {
	tab := accessControl()
	s := tab.Schema
	// ip_src ↠ ip_dst (and symmetrically ip_src ↠ tcp_dst... modulo the
	// out attribute, which is determined by ip_src).
	m := fd.MVD{From: mat.SetOf(s, "ip_src"), To: mat.SetOf(s, "ip_dst")}
	if !m.HoldsIn(tab) {
		t.Fatalf("planted MVD %s does not hold", m.Format(s))
	}
	// Breaking one combination breaks the MVD.
	broken := tab.Clone()
	broken.Entries = broken.Entries[1:] // remove (sub1, D1, 443)
	if m.HoldsIn(broken) {
		t.Fatalf("MVD survives a missing combination")
	}
	// An FD is always an MVD.
	fdAsMVD := fd.MVD{From: mat.SetOf(s, "ip_src"), To: mat.SetOf(s, "out")}
	if !fdAsMVD.HoldsIn(tab) {
		t.Fatalf("FD-backed MVD does not hold")
	}
}

func TestMVDTrivial(t *testing.T) {
	n := 4
	if !(fd.MVD{From: mat.NewAttrSet(0, 1), To: mat.NewAttrSet(1)}).Trivial(n) {
		t.Errorf("contained RHS should be trivial")
	}
	if !(fd.MVD{From: mat.NewAttrSet(0), To: mat.NewAttrSet(1, 2, 3)}).Trivial(n) {
		t.Errorf("complement RHS should be trivial")
	}
	if (fd.MVD{From: mat.NewAttrSet(0), To: mat.NewAttrSet(1)}).Trivial(n) {
		t.Errorf("proper MVD reported trivial")
	}
}

func TestMineMVDsFindsPlanted(t *testing.T) {
	tab := accessControl()
	s := tab.Schema
	a := Analyze(tab)
	mvds := fd.MineMVDs(tab, a.FDs)
	found := false
	for _, m := range mvds {
		if m.From == mat.SetOf(s, "ip_src") &&
			(m.To == mat.SetOf(s, "ip_dst") || m.To == mat.SetOf(s, "tcp_dst")) {
			found = true
		}
	}
	if !found {
		var got []string
		for _, m := range mvds {
			got = append(got, m.Format(s))
		}
		t.Fatalf("planted MVD not mined; got %v", got)
	}
	// Mined MVDs must hold and not be FD-implied.
	for _, m := range mvds {
		if !m.HoldsIn(tab) {
			t.Errorf("mined MVD %s does not hold", m.Format(s))
		}
		if m.To.SubsetOf(fd.Closure(m.From, a.FDs)) {
			t.Errorf("mined MVD %s is FD-implied", m.Format(s))
		}
	}
}

func TestCheck4NF(t *testing.T) {
	tab := accessControl()
	a := Analyze(tab)
	blocking := Check4NF(a)
	if len(blocking) == 0 {
		t.Fatalf("access-control table reported 4NF despite the planted MVD")
	}
	// A plain key-driven table is in 4NF.
	l2 := mat.New("L2", mat.Schema{mat.F("mac", 48), mat.A("out", 8)})
	l2.Add(mat.Exact(1, 48), mat.Exact(1, 8))
	l2.Add(mat.Exact(2, 48), mat.Exact(2, 8))
	if got := Check4NF(Analyze(l2)); len(got) != 0 {
		t.Errorf("L2 table blocked from 4NF by %v", got)
	}
}

func TestDecomposeMVDEquivalent(t *testing.T) {
	tab := accessControl()
	s := tab.Schema
	a := Analyze(tab)
	m := fd.MVD{From: mat.SetOf(s, "ip_src"), To: mat.SetOf(s, "ip_dst")}
	p, err := DecomposeMVD(a, m)
	if err != nil {
		t.Fatal(err)
	}
	if p.Depth() != 3 {
		t.Fatalf("depth = %d, want 3 (groups ≫ dep ≫ rest)\n%s", p.Depth(), p)
	}
	// The split removes the cross-product redundancy: fewer fields than
	// the universal table for this shape.
	if p.FieldCount() >= tab.FieldCount() {
		t.Errorf("MVD split did not shrink: %d -> %d", tab.FieldCount(), p.FieldCount())
	}
	cex, exhaustive, err := netkat.EquivalentPipelines(mat.SingleTable(tab), p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !exhaustive {
		t.Errorf("probe not exhaustive")
	}
	if cex != nil {
		t.Fatalf("MVD decomposition changed semantics: %v\n%s", cex, p)
	}
}

func TestDecomposeMVDErrors(t *testing.T) {
	tab := accessControl()
	s := tab.Schema
	a := Analyze(tab)
	// Trivial.
	if _, err := DecomposeMVD(a, fd.MVD{From: mat.SetOf(s, "ip_src"), To: mat.SetOf(s, "ip_src")}); err == nil {
		t.Errorf("trivial MVD accepted")
	}
	// Does not hold: the allowed destinations differ per port pattern.
	bad := fd.MVD{From: mat.SetOf(s, "tcp_dst"), To: mat.SetOf(s, "ip_dst")}
	if bad.HoldsIn(tab) {
		t.Fatalf("fixture: tcp_dst ->> ip_dst unexpectedly holds")
	}
	if _, err := DecomposeMVD(a, bad); err == nil {
		t.Errorf("non-holding MVD accepted")
	}
	// Action attribute on a side.
	if _, err := DecomposeMVD(a, fd.MVD{From: mat.SetOf(s, "ip_src"), To: mat.SetOf(s, "out")}); err == nil {
		t.Errorf("action-side MVD accepted")
	}
}

func TestDecomposeMVDActionConflictCaught(t *testing.T) {
	// Two rows sharing (group, Z fields) but with different Z actions:
	// the rest stage would be order-dependent; must be rejected, not
	// silently mis-compiled.
	tab := mat.New("c", mat.Schema{
		mat.F("a", 8), mat.F("b", 8), mat.F("c", 8), mat.A("o", 8),
	})
	// a=1: b×c complete cross product {1,2}×{1}, but out differs by b —
	// o depends on (a, b), which lives on the Y side.
	tab.Add(mat.Exact(1, 8), mat.Exact(1, 8), mat.Exact(1, 8), mat.Exact(10, 8))
	tab.Add(mat.Exact(1, 8), mat.Exact(2, 8), mat.Exact(1, 8), mat.Exact(20, 8))
	a := Analyze(tab)
	m := fd.MVD{From: mat.SetOf(tab.Schema, "a"), To: mat.SetOf(tab.Schema, "b")}
	if !m.HoldsIn(tab) {
		t.Skip("fixture MVD does not hold")
	}
	if _, err := DecomposeMVD(a, m); err == nil {
		t.Fatalf("action-conflicting MVD split accepted")
	}
}

func TestSDXHasNoBinaryMVDEscape(t *testing.T) {
	// The appendix's deeper point: the SDX decomposition is a three-way
	// join dependency; no binary field-only MVD of the collapsed table
	// produces it. MineMVDs on the SDX table must find no proper
	// field-only MVD with a non-superkey LHS that splits announcement
	// from policy.
	tab := sdxUniversal()
	a := Analyze(tab)
	for _, m := range Check4NF(a) {
		p, err := DecomposeMVD(a, m)
		if err != nil {
			continue // not realizable: consistent with the appendix
		}
		// If some binary MVD is realizable, it must at least be
		// equivalent (sanity) — but it cannot reproduce the 3-table
		// announcement/outbound/inbound structure, which needs the
		// hand-built 'all' pipeline of usecases.NewSDX.
		cex, _, err := netkat.EquivalentPipelines(mat.SingleTable(tab), p, 0)
		if err != nil || cex != nil {
			t.Fatalf("realizable MVD %s not equivalent: %v %v", m.Format(tab.Schema), err, cex)
		}
	}
}

// sdxUniversal rebuilds the collapsed SDX table locally (the usecases
// package depends on core's sibling packages only, so no import cycle —
// but keep the fixture local for clarity).
func sdxUniversal() *mat.Table {
	p1 := mat.IPv4Prefix("203.0.113.0", 25)
	p2 := mat.IPv4Prefix("203.0.113.128", 25)
	lo := mat.Prefix(0, 1, 32)
	hi := mat.Prefix(0x80000000, 1, 32)
	t := mat.New("sdx", mat.Schema{
		mat.F("ip_src", 32), mat.F("ip_dst", 32), mat.F("tcp_dst", 16), mat.A("out", 16),
	})
	t.Add(lo, p1, mat.Exact(80, 16), mat.Exact(1, 16))
	t.Add(hi, p1, mat.Exact(80, 16), mat.Exact(2, 16))
	t.Add(mat.Any(), p1, mat.Exact(443, 16), mat.Exact(3, 16))
	t.Add(mat.Any(), p2, mat.Exact(80, 16), mat.Exact(3, 16))
	t.Add(mat.Any(), p2, mat.Exact(443, 16), mat.Exact(3, 16))
	return t
}
