package core

import (
	"strings"
	"testing"
)

// TestVariantsFig1 enumerates the representations of the Fig. 1a gateway
// table and checks every one against the universal table with the
// finite-domain oracle — the static version of what the differential
// fuzzing harness does per generated program.
func TestVariantsFig1(t *testing.T) {
	tab := fig1a()
	vs, err := Variants(tab, NF3)
	if err != nil {
		t.Fatalf("Variants: %v", err)
	}
	names := make(map[string]bool, len(vs))
	for _, v := range vs {
		names[v.Name] = true
	}
	// Under mined instance dependencies fig1a is already 3NF (tcp_dst and
	// ip_dst are in bijection, so both are prime); the universal pipeline
	// and the one-step decompositions are the interesting variants here.
	if !names["universal"] {
		t.Fatalf("Variants missing %q; got %v", "universal", keys(names))
	}
	var decs int
	for _, v := range vs {
		if strings.HasPrefix(v.Name, "dec(") {
			decs++
		}
	}
	if decs == 0 {
		t.Fatalf("Variants produced no one-step decompositions: %v", keys(names))
	}
	for _, v := range vs {
		if err := v.Pipeline.Validate(); err != nil {
			t.Fatalf("variant %s invalid: %v", v.Name, err)
		}
		if err := VerifyEquivalent(tab, v.Pipeline); err != nil {
			t.Fatalf("variant %s not equivalent: %v", v.Name, err)
		}
	}
}

// TestVariantsFig2 covers the L3 table, whose normalization includes a
// constant-attribute Cartesian factor and a longer chain — here the full
// 3NF metadata pipeline and its goto conversion must both appear.
func TestVariantsFig2(t *testing.T) {
	tab := fig2a()
	vs, err := Variants(tab, NF3)
	if err != nil {
		t.Fatalf("Variants: %v", err)
	}
	names := make(map[string]bool, len(vs))
	for _, v := range vs {
		names[v.Name] = true
	}
	for _, want := range []string{"universal", "3NF-metadata", "3NF-goto"} {
		if !names[want] {
			t.Fatalf("Variants missing %q; got %v", want, keys(names))
		}
	}
	for _, v := range vs {
		if err := VerifyEquivalent(tab, v.Pipeline); err != nil {
			t.Fatalf("variant %s not equivalent: %v", v.Name, err)
		}
	}
}

// TestVariantsFig3 checks that the action-to-match dependency of the
// caveat table is skipped silently rather than failing enumeration: the
// Fig. 3 shape is "not decomposable", not an internal error.
func TestVariantsFig3(t *testing.T) {
	tab := fig3a()
	vs, err := Variants(tab, NF3)
	if err != nil {
		t.Fatalf("Variants: %v", err)
	}
	for _, v := range vs {
		if strings.Contains(v.Name, "out") && strings.Contains(v.Name, "vlan") &&
			strings.HasPrefix(v.Name, "dec({out}") {
			t.Fatalf("action-to-match decomposition %s should have been skipped", v.Name)
		}
		if err := VerifyEquivalent(tab, v.Pipeline); err != nil {
			t.Fatalf("variant %s not equivalent: %v", v.Name, err)
		}
	}
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
