package core

import (
	"math/rand"
	"testing"

	"manorm/internal/fd"
	"manorm/internal/mat"
	"manorm/internal/netkat"
)

func TestDenormalizeRoundTripGwlb(t *testing.T) {
	tab := fig1a()
	for _, join := range []JoinKind{JoinMetadata, JoinGoto, JoinRematch} {
		a, err := AnalyzeDeclared(tab, gwlbDeclared(tab.Schema))
		if err != nil {
			t.Fatal(err)
		}
		p, err := Decompose(a, ipDstToTCPDst(tab.Schema), join)
		if err != nil {
			t.Fatalf("join %s: %v", join, err)
		}
		back, err := Denormalize(p)
		if err != nil {
			t.Fatalf("join %s: denormalize: %v", join, err)
		}
		// The rejoined table must be semantically identical to the
		// original universal table.
		cex, _, err := netkat.EquivalentPipelines(mat.SingleTable(tab), mat.SingleTable(back), 0)
		if err != nil {
			t.Fatalf("join %s: %v", join, err)
		}
		if cex != nil {
			t.Fatalf("join %s: round trip changed semantics: %v\n%s", join, cex, back)
		}
		// And it must have exactly the original entry count (no lossy or
		// lossless-but-redundant join blowup).
		if len(back.Entries) != len(tab.Entries) {
			t.Errorf("join %s: round trip has %d entries, want %d\n%s", join, len(back.Entries), len(tab.Entries), back)
		}
	}
}

func TestDenormalizeRoundTripNormalizedL3(t *testing.T) {
	tab := fig2a()
	res, err := Normalize(tab, Options{Target: NF3, Declared: l3Declared(tab.Schema)})
	if err != nil {
		t.Fatal(err)
	}
	back, err := Denormalize(res.Pipeline)
	if err != nil {
		t.Fatal(err)
	}
	cex, _, err := netkat.EquivalentPipelines(mat.SingleTable(tab), mat.SingleTable(back), 0)
	if err != nil {
		t.Fatal(err)
	}
	if cex != nil {
		t.Fatalf("L3 round trip changed semantics: %v\n%s", cex, back)
	}
	if len(back.Entries) != len(tab.Entries) {
		t.Errorf("L3 round trip has %d entries, want %d", len(back.Entries), len(tab.Entries))
	}
}

func TestDenormalizeRandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	for trial := 0; trial < 30; trial++ {
		tab := randomPlantedTable(rng)
		if len(tab.Entries) < 2 {
			continue
		}
		res, err := Normalize(tab, Options{Target: NF3})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		back, err := Denormalize(res.Pipeline)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, res.Pipeline)
		}
		cex, _, err := netkat.EquivalentPipelines(mat.SingleTable(tab), mat.SingleTable(back), 0)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if cex != nil {
			t.Fatalf("trial %d: Denormalize(Normalize(T)) ≠ T: %v", trial, cex)
		}
	}
}

func TestDenormalizeRejectsFallthrough(t *testing.T) {
	t0 := mat.New("T0", mat.Schema{mat.F("a", 8), mat.A("x", 8)})
	t0.Add(mat.Exact(1, 8), mat.Exact(1, 8))
	t1 := mat.New("T1", mat.Schema{mat.F("a", 8), mat.A("o", 8)})
	t1.Add(mat.Any(), mat.Exact(2, 8))
	p := &mat.Pipeline{Stages: []mat.Stage{
		{Table: t0, Next: 1, MissDrop: false},
		{Table: t1, Next: -1, MissDrop: true},
	}}
	if _, err := Denormalize(p); err == nil {
		t.Fatalf("fall-through pipeline denormalized")
	}
}

func TestDenormalizeRejectsMatchedAndWritten(t *testing.T) {
	// An attribute matched in one stage and written in another cannot be
	// expressed in one universal row.
	t0 := mat.New("T0", mat.Schema{mat.F("a", 8), mat.A("b", 8)})
	t0.Add(mat.Exact(1, 8), mat.Exact(1, 8))
	t1 := mat.New("T1", mat.Schema{mat.F("b", 8), mat.A("o", 8)})
	t1.Add(mat.Exact(1, 8), mat.Exact(2, 8))
	p := &mat.Pipeline{Stages: []mat.Stage{
		{Table: t0, Next: 1, MissDrop: true},
		{Table: t1, Next: -1, MissDrop: true},
	}}
	if _, err := Denormalize(p); err == nil {
		t.Fatalf("matched-and-written attribute accepted")
	}
}

func TestDenormalizeDisjointPathsPruned(t *testing.T) {
	// A rematch-style pipeline where stage 2 constraints contradict
	// stage 1 for some entry pairs: contradictory paths must vanish, not
	// produce junk rows.
	t0 := mat.New("T0", mat.Schema{mat.F("ip", 32), mat.A("g", 8)})
	t0.Add(mat.IPv4Prefix("10.0.0.0", 8), mat.Exact(1, 8))
	t0.Add(mat.IPv4Prefix("11.0.0.0", 8), mat.Exact(2, 8))
	t1 := mat.New("T1", mat.Schema{mat.F("ip", 32), mat.A("o", 8)})
	t1.Add(mat.IPv4Prefix("10.0.0.0", 8), mat.Exact(1, 8))
	t1.Add(mat.IPv4Prefix("11.0.0.0", 8), mat.Exact(2, 8))
	p := &mat.Pipeline{Stages: []mat.Stage{
		{Table: t0, Next: 1, MissDrop: true},
		{Table: t1, Next: -1, MissDrop: true},
	}}
	back, err := Denormalize(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Entries) != 2 {
		t.Fatalf("expected 2 joined rows (disjoint cross terms pruned), got %d\n%s", len(back.Entries), back)
	}
}

func TestDenormalizeTightensNestedPrefixes(t *testing.T) {
	// Stage 1 matches 10/8, stage 2 rematches 10.1/16: the joined row
	// must carry the tighter /16.
	t0 := mat.New("T0", mat.Schema{mat.F("ip", 32), mat.A("g", 8)})
	t0.Add(mat.IPv4Prefix("10.0.0.0", 8), mat.Exact(1, 8))
	t1 := mat.New("T1", mat.Schema{mat.F("ip", 32), mat.A("o", 8)})
	t1.Add(mat.IPv4Prefix("10.1.0.0", 16), mat.Exact(7, 8))
	p := &mat.Pipeline{Stages: []mat.Stage{
		{Table: t0, Next: 1, MissDrop: true},
		{Table: t1, Next: -1, MissDrop: true},
	}}
	back, err := Denormalize(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Entries) != 1 {
		t.Fatalf("rows = %d, want 1", len(back.Entries))
	}
	ipIdx := back.Schema.Index("ip")
	if got := back.Entries[0][ipIdx]; got != mat.IPv4Prefix("10.1.0.0", 16) {
		t.Errorf("joined prefix = %v, want 10.1.0.0/16", got)
	}
}

func TestDenormalizeOVSStyleCollapse(t *testing.T) {
	// The OVS story from §5: denormalizing the normalized pipeline
	// restores the universal table's footprint (the flow-cache collapse).
	tab := fig1a()
	a, err := AnalyzeDeclared(tab, gwlbDeclared(tab.Schema))
	if err != nil {
		t.Fatal(err)
	}
	p, err := Decompose(a, ipDstToTCPDst(tab.Schema), JoinGoto)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Denormalize(p)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := back.FieldCount(), tab.FieldCount(); got != want {
		t.Errorf("collapsed footprint = %d, want %d", got, want)
	}
}

// Guard against regressions in the dependency machinery the denormalizer
// relies on: a declared FD projected through decomposition still holds.
func TestInheritedDependenciesHold(t *testing.T) {
	tab := fig2a()
	a, err := AnalyzeDeclared(tab, l3Declared(tab.Schema))
	if err != nil {
		t.Fatal(err)
	}
	f := fd.FD{From: mat.SetOf(tab.Schema, "mod_dmac"), To: mat.SetOf(tab.Schema, "out", "mod_smac")}
	p, err := Decompose(a, f, JoinMetadata)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range p.Stages {
		sub, err := inheritAnalysis(a, f, st.Table)
		if err != nil {
			t.Fatalf("stage %s: %v", st.Table.Name, err)
		}
		for _, g := range sub.FDs {
			if !g.HoldsIn(st.Table) {
				t.Errorf("stage %s: inherited FD %s does not hold", st.Table.Name, g.Format(st.Table.Schema))
			}
		}
	}
}
