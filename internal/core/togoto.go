package core

import (
	"fmt"
	"strings"

	"manorm/internal/mat"
)

// ToGoto converts a metadata-joined pipeline (as produced by Normalize)
// into goto_table chaining: wherever a stage writes a single metadata tag
// that the immediately following stage matches, the consumer is split into
// one sub-table per tag value and the writer's tag action becomes a goto.
// This is the Fig. 1c → Fig. 1b transformation; it removes the metadata
// match column from the data plane and generally yields the smallest
// footprint of the join abstractions (§4).
//
// Pairs that do not fit the pattern (no metadata link, multiple tags, or a
// non-adjacent consumer) are left as metadata joins; the result may mix
// both abstractions and remains semantically equivalent.
func ToGoto(p *mat.Pipeline) (*mat.Pipeline, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	out := &mat.Pipeline{Name: strings.TrimSuffix(p.Name, "-normalized") + "-goto", Start: p.Start}
	for _, st := range p.Stages {
		out.Stages = append(out.Stages, mat.Stage{Table: st.Table.Clone(), Next: st.Next, MissDrop: st.MissDrop})
	}

	// Process writer positions from the end so earlier conversions see a
	// stable suffix.
	for i := len(out.Stages) - 2; i >= 0; i-- {
		w := out.Stages[i]
		metaIdx := singleMetaAction(w.Table)
		if metaIdx < 0 || w.Next != i+1 {
			continue
		}
		metaName := w.Table.Schema[metaIdx].Name
		c := out.Stages[i+1]
		cMetaIdx := c.Table.Schema.Index(metaName)
		if cMetaIdx < 0 || c.Table.Schema[cMetaIdx].Kind != mat.Field {
			continue
		}
		// The tag must not be referenced anywhere else.
		if metaReferencedElsewhere(out, metaName, i, i+1) {
			continue
		}
		// Split the consumer by tag value, in tag order. Tags the writer
		// emits but the consumer never matches become empty sub-tables
		// (the packet drops there, as it would on the consumer miss).
		groups := make(map[uint64][]int)
		var order []uint64
		splitOK := true
		for ri, e := range c.Table.Entries {
			cell := e[cMetaIdx]
			if !cell.IsExact(c.Table.Schema[cMetaIdx].Width) {
				splitOK = false // wildcard tag match: cannot split
				break
			}
			if _, ok := groups[cell.Bits]; !ok {
				order = append(order, cell.Bits)
			}
			groups[cell.Bits] = append(groups[cell.Bits], ri)
		}
		if !splitOK {
			continue
		}
		for _, e := range w.Table.Entries {
			tag := e[metaIdx].Bits
			if _, ok := groups[tag]; !ok {
				groups[tag] = nil
				order = append(order, tag)
			}
		}

		// Sub-tables will occupy positions i+1 .. i+len(groups);
		// everything pointing past the old consumer shifts. Shift before
		// copying rows out of the consumer so its goto cells are final.
		delta := len(order) - 1
		shiftRefs(out, i+2, delta)

		// Build sub-tables (consumer schema minus the tag column).
		var subSchema mat.Schema
		for ai, at := range c.Table.Schema {
			if ai != cMetaIdx {
				subSchema = append(subSchema, at)
			}
		}
		subs := make([]*mat.Table, 0, len(order))
		subIdxByTag := make(map[uint64]int, len(order))
		for si, tag := range order {
			sub := mat.New(fmt.Sprintf("%s_g%d", c.Table.Name, si), subSchema)
			sub.Provenance = c.Table.Provenance
			for _, ri := range groups[tag] {
				e := c.Table.Entries[ri]
				row := make(mat.Entry, 0, len(subSchema))
				for ai := range c.Table.Schema {
					if ai != cMetaIdx {
						row = append(row, e[ai])
					}
				}
				sub.Entries = append(sub.Entries, row)
			}
			subIdxByTag[tag] = si
			subs = append(subs, sub)
		}

		// Rewrite the writer: tag action column becomes a goto column.
		wt := w.Table
		wt.Schema[metaIdx] = mat.Attr{Name: mat.GotoAttr, Kind: mat.Action, Width: 16}
		for _, e := range wt.Entries {
			e[metaIdx] = mat.Exact(uint64(i+1+subIdxByTag[e[metaIdx].Bits]), 16)
		}
		out.Stages[i].Next = -1

		// Splice: replace the consumer with the sub-tables.
		next := c.Next
		if next >= i+2 {
			next += delta
		}
		tail := append([]mat.Stage{}, out.Stages[i+2:]...)
		out.Stages = out.Stages[:i+1]
		for _, sub := range subs {
			out.Stages = append(out.Stages, mat.Stage{Table: sub, Next: next, MissDrop: c.MissDrop})
		}
		out.Stages = append(out.Stages, tail...)
	}

	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("core: ToGoto produced an invalid pipeline: %w", err)
	}
	return out, nil
}

// singleMetaAction returns the index of the table's only metadata action
// column, or -1 if there are zero or several.
func singleMetaAction(t *mat.Table) int {
	found := -1
	for i, at := range t.Schema {
		if at.Kind == mat.Action && strings.HasPrefix(at.Name, mat.MetaPrefix) {
			if found >= 0 {
				return -1
			}
			found = i
		}
	}
	return found
}

// metaReferencedElsewhere reports whether any stage other than writer/
// consumer uses the attribute name.
func metaReferencedElsewhere(p *mat.Pipeline, name string, writer, consumer int) bool {
	for si, st := range p.Stages {
		if si == writer || si == consumer {
			continue
		}
		if st.Table.Schema.Index(name) >= 0 {
			return true
		}
	}
	return false
}

// shiftRefs adds delta to every Next pointer and goto cell that references
// a stage index >= from.
func shiftRefs(p *mat.Pipeline, from, delta int) {
	for si := range p.Stages {
		st := &p.Stages[si]
		if st.Next >= from {
			st.Next += delta
		}
		if g := st.Table.Schema.Index(mat.GotoAttr); g >= 0 {
			for _, e := range st.Table.Entries {
				if int(e[g].Bits) >= from {
					e[g] = mat.Exact(e[g].Bits+uint64(delta), 16)
				}
			}
		}
	}
	if p.Start >= from {
		p.Start += delta
	}
}
