// Package core implements the paper's contribution: normal forms for
// match-action programs and the equivalent transformations between the
// universal (single-table) representation and multi-table pipelines.
//
// The workflow mirrors §3–§4 of the paper:
//
//  1. Analyze a table — obtain its functional dependencies (mined from the
//     instance, or declared by the programmer for semantic dependencies),
//     candidate keys and prime attributes.
//  2. Check which normal form it satisfies (1NF / 2NF / 3NF / BCNF) and
//     enumerate the violations.
//  3. Decompose along a violating dependency with one of the three join
//     abstractions (goto_table, metadata tags, re-matching), or run the
//     full normalization to 2NF/3NF.
//  4. Verify semantic equivalence of the result against the original with
//     the finite-domain checker from internal/netkat.
//
// The inverse transformation (Denormalize) re-joins a pipeline into its
// universal table.
package core

import (
	"fmt"

	"manorm/internal/fd"
	"manorm/internal/mat"
)

// Analysis bundles a table with its dependency structure.
type Analysis struct {
	Table *mat.Table
	// FDs are minimal, singleton-RHS dependencies — either mined from the
	// instance or the minimal cover of declared semantic dependencies.
	FDs []fd.FD
	// Declared records whether FDs came from the programmer (semantic
	// dependencies, stable across updates) or from instance mining
	// (transient data-level dependencies) — the paper's distinction at
	// the end of §3.
	Declared bool
	// Keys are the candidate keys (minimal superkeys).
	Keys []mat.AttrSet
	// Prime is the union of the candidate keys.
	Prime mat.AttrSet
}

// Analyze mines the table's functional dependencies and derives keys. The
// resulting dependencies are instance-level ("transient data-level
// dependencies" in the paper's terms).
func Analyze(t *mat.Table) *Analysis {
	fds := fd.Mine(t)
	keys := fd.CandidateKeys(len(t.Schema), fds)
	return &Analysis{Table: t, FDs: fds, Keys: keys, Prime: fd.PrimeAttrs(keys)}
}

// AnalyzeDeclared analyzes the table under programmer-declared semantic
// dependencies ("inherently encoded into the high-level data plane model").
// Every declared dependency must actually hold in the instance; a declared
// dependency the data violates is an error.
func AnalyzeDeclared(t *mat.Table, declared []fd.FD) (*Analysis, error) {
	for _, f := range declared {
		if f.Trivial() {
			continue
		}
		if !f.HoldsIn(t) {
			return nil, fmt.Errorf("core: declared dependency %s does not hold in table %s", f.Format(t.Schema), t.Name)
		}
	}
	cover := fd.MinimalCover(declared)
	keys := fd.CandidateKeys(len(t.Schema), cover)
	return &Analysis{Table: t, FDs: cover, Declared: true, Keys: keys, Prime: fd.PrimeAttrs(keys)}, nil
}

// NonPrime returns the set of non-prime attributes.
func (a *Analysis) NonPrime() mat.AttrSet {
	return mat.FullSet(len(a.Table.Schema)).Minus(a.Prime)
}

// IsSuperkey reports whether x is a superkey of the analyzed table.
func (a *Analysis) IsSuperkey(x mat.AttrSet) bool {
	return fd.IsSuperkey(x, len(a.Table.Schema), a.FDs)
}

// subAnalysis carries the dependency structure into a projected sub-table:
// declared FDs are projected and renamed; mined FDs are re-mined on the
// instance.
func (a *Analysis) subAnalysis(sub *mat.Table, kept mat.AttrSet) (*Analysis, error) {
	if !a.Declared {
		return Analyze(sub), nil
	}
	projected := fd.Rename(fd.Project(a.FDs, kept), kept)
	return AnalyzeDeclared(sub, projected)
}
