package core

import (
	"fmt"

	"manorm/internal/fd"
	"manorm/internal/mat"
)

// Form is a normal-form level of a match-action table.
type Form int

// Normal-form levels, ordered: a table satisfying a level satisfies all
// lower levels.
const (
	// NF0 marks a table that is not even in 1NF: its match fields do not
	// uniquely identify entries (order-dependence).
	NF0 Form = iota
	// NF1 is the paper's first normal form: a set of order-independent
	// (match; action) entries — the universal table representation.
	NF1
	// NF2 additionally forbids dependencies from proper subsets of
	// candidate keys to non-prime attributes.
	NF2
	// NF3 additionally forbids transitive dependencies: every nontrivial
	// X→A has X a superkey or A prime.
	NF3
	// BCNF requires every nontrivial X→A to have X a superkey.
	BCNF
)

// String names the form.
func (f Form) String() string {
	switch f {
	case NF0:
		return "not-1NF"
	case NF1:
		return "1NF"
	case NF2:
		return "2NF"
	case NF3:
		return "3NF"
	case BCNF:
		return "BCNF"
	default:
		return fmt.Sprintf("Form(%d)", int(f))
	}
}

// Violation explains why a table misses a normal-form level.
type Violation struct {
	// Level is the normal form the violation blocks.
	Level Form
	// FD is the offending dependency (zero-valued for 1NF violations).
	FD fd.FD
	// Key is the candidate key involved in a 2NF violation (the set whose
	// proper subset determines a non-prime attribute).
	Key mat.AttrSet
	// Reason is a human-readable explanation.
	Reason string
}

// Format renders the violation against a schema.
func (v Violation) Format(sch mat.Schema) string {
	return fmt.Sprintf("blocks %s: %s", v.Level, v.Reason)
}

// Check determines the highest normal form the analyzed table satisfies and
// returns all violations of the next levels. Violations are reported for
// every level above the achieved one, so the caller can see what
// normalization would have to eliminate.
func Check(a *Analysis) (Form, []Violation) {
	var violations []Violation
	sch := a.Table.Schema

	// 1NF: order independence.
	if !a.Table.IsOrderIndependent() {
		violations = append(violations, Violation{
			Level:  NF1,
			Reason: "match fields do not uniquely identify entries (order-dependent table)",
		})
		return NF0, violations
	}

	// 2NF: no proper subset of a candidate key determines a non-prime
	// attribute. Checked from the definition via closures, so implied
	// dependencies are covered, not only the mined/declared cover.
	nonPrime := a.NonPrime()
	for _, key := range a.Keys {
		for _, sub := range properSubsets(key) {
			det := fd.Closure(sub, a.FDs).Minus(sub).Intersect(nonPrime)
			if det.Empty() {
				continue
			}
			violations = append(violations, Violation{
				Level: NF2,
				FD:    fd.FD{From: sub, To: det},
				Key:   key,
				Reason: fmt.Sprintf("partial dependency %s -> %s: LHS is a proper subset of key %s, RHS is non-prime",
					sub.Format(sch), det.Format(sch), key.Format(sch)),
			})
		}
	}
	if len(violations) > 0 {
		return NF1, violations
	}

	// 3NF: every nontrivial X→A in the cover has X superkey or A prime.
	// Checking the minimal cover is sufficient: any implied violating
	// dependency yields a violating cover dependency.
	seenLHS := make(map[mat.AttrSet]bool)
	for _, f := range a.FDs {
		if f.Trivial() || a.IsSuperkey(f.From) || seenLHS[f.From] {
			continue
		}
		// Expand the RHS to everything the LHS transitively determines:
		// decomposing along the full closure pulls the entire dependent
		// attribute group into one stage (the paper's group-table shape,
		// Fig. 2b) instead of one attribute at a time.
		bad := fd.Closure(f.From, a.FDs).Minus(a.Prime).Minus(f.From)
		if bad.Empty() {
			continue
		}
		seenLHS[f.From] = true
		violations = append(violations, Violation{
			Level: NF3,
			FD:    fd.FD{From: f.From, To: bad},
			Reason: fmt.Sprintf("transitive dependency %s -> %s: LHS is not a superkey and RHS is non-prime",
				f.From.Format(sch), bad.Format(sch)),
		})
	}
	if len(violations) > 0 {
		return NF2, violations
	}

	// BCNF: every nontrivial LHS is a superkey.
	for _, f := range a.FDs {
		if f.Trivial() || a.IsSuperkey(f.From) {
			continue
		}
		violations = append(violations, Violation{
			Level: BCNF,
			FD:    f,
			Reason: fmt.Sprintf("dependency %s -> %s has a non-superkey LHS",
				f.From.Format(sch), f.To.Format(sch)),
		})
	}
	if len(violations) > 0 {
		return NF3, violations
	}
	return BCNF, nil
}

// properSubsets enumerates the nonempty proper subsets of s, plus the empty
// set (∅ ⊊ K matters: a constant non-prime attribute violates 2NF via
// ∅ → A). Sets are ordered by size for deterministic reports.
func properSubsets(s mat.AttrSet) []mat.AttrSet {
	members := s.Members()
	out := make([]mat.AttrSet, 0, 1<<len(members))
	for bits := 0; bits < 1<<len(members)-1; bits++ {
		var sub mat.AttrSet
		for i, m := range members {
			if bits&(1<<i) != 0 {
				sub = sub.Add(m)
			}
		}
		out = append(out, sub)
	}
	mat.SortAttrSets(out)
	return out
}
