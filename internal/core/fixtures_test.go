package core

import (
	"manorm/internal/fd"
	"manorm/internal/mat"
)

// fig1a is the paper's Fig. 1a universal cloud gateway & load-balancer
// table over (ip_src, ip_dst, tcp_dst | out).
func fig1a() *mat.Table {
	t := mat.New("T0", mat.Schema{
		mat.F("ip_src", 32), mat.F("ip_dst", 32), mat.F("tcp_dst", 16), mat.A("out", 16),
	})
	t.Add(mat.Prefix(0, 1, 32), mat.IPv4("192.0.2.1"), mat.Exact(80, 16), mat.Exact(1, 16))
	t.Add(mat.Prefix(0x80000000, 1, 32), mat.IPv4("192.0.2.1"), mat.Exact(80, 16), mat.Exact(2, 16))
	t.Add(mat.Prefix(0, 2, 32), mat.IPv4("192.0.2.2"), mat.Exact(443, 16), mat.Exact(3, 16))
	t.Add(mat.Prefix(0x40000000, 2, 32), mat.IPv4("192.0.2.2"), mat.Exact(443, 16), mat.Exact(4, 16))
	t.Add(mat.Prefix(0x80000000, 1, 32), mat.IPv4("192.0.2.2"), mat.Exact(443, 16), mat.Exact(5, 16))
	t.Add(mat.Any(), mat.IPv4("192.0.2.3"), mat.Exact(22, 16), mat.Exact(6, 16))
	return t
}

// gwlbDeclared is the semantic dependency set of the gateway use case: a
// service (VIP) exposes exactly one port, and a (client-half, VIP) pair
// picks one backend. Unlike the mined instance dependencies, the converse
// tcp_dst → ip_dst is NOT declared: two services may share a port.
func gwlbDeclared(s mat.Schema) []fd.FD {
	return []fd.FD{
		{From: mat.SetOf(s, "ip_dst"), To: mat.SetOf(s, "tcp_dst")},
		{From: mat.SetOf(s, "ip_src", "ip_dst"), To: mat.SetOf(s, "out")},
	}
}

// fig2a is the paper's Fig. 2a universal L3 forwarding table over
// (eth_type, ip_dst | mod_ttl, mod_smac, mod_dmac, out). Prefixes P1..P4
// are disjoint /16s; P1 and P4 share next-hop D1; groups D1 and D2 share
// the outgoing port (and hence the source MAC).
func fig2a() *mat.Table {
	t := mat.New("L3", mat.Schema{
		mat.F("eth_type", 16), mat.F("ip_dst", 32),
		mat.A("mod_ttl", 8), mat.A("mod_smac", 48), mat.A("mod_dmac", 48), mat.A("out", 16),
	})
	const (
		S1, S2 = 0xAA0000000001, 0xAA0000000002
		D1, D2 = 0xBB0000000001, 0xBB0000000002
		D3     = 0xBB0000000003
	)
	ip4 := func(s string, p uint8) mat.Cell { return mat.IPv4Prefix(s, p) }
	t.Add(mat.Exact(0x800, 16), ip4("10.0.0.0", 16), mat.Exact(1, 8), mat.Exact(S1, 48), mat.Exact(D1, 48), mat.Exact(1, 16))
	t.Add(mat.Exact(0x800, 16), ip4("10.1.0.0", 16), mat.Exact(1, 8), mat.Exact(S1, 48), mat.Exact(D2, 48), mat.Exact(1, 16))
	t.Add(mat.Exact(0x800, 16), ip4("10.2.0.0", 16), mat.Exact(1, 8), mat.Exact(S2, 48), mat.Exact(D3, 48), mat.Exact(2, 16))
	t.Add(mat.Exact(0x800, 16), ip4("10.3.0.0", 16), mat.Exact(1, 8), mat.Exact(S1, 48), mat.Exact(D1, 48), mat.Exact(1, 16))
	return t
}

// l3Declared is the semantic dependency set of the L3 use case (§3):
// the route determines the next hop, the next hop determines the port and
// TTL handling, the port determines the source MAC, and eth_type/mod_ttl
// are constants of the pipeline.
func l3Declared(s mat.Schema) []fd.FD {
	return []fd.FD{
		{From: mat.SetOf(s, "ip_dst"), To: mat.SetOf(s, "mod_dmac")},
		{From: mat.SetOf(s, "mod_dmac"), To: mat.SetOf(s, "out")},
		{From: mat.SetOf(s, "out"), To: mat.SetOf(s, "mod_smac")},
		{From: 0, To: mat.SetOf(s, "eth_type", "mod_ttl")},
	}
}

// fig3a is the paper's Fig. 3a table over (in_port, vlan | out), whose
// only interesting dependency is the action-to-match out → vlan.
func fig3a() *mat.Table {
	t := mat.New("T0", mat.Schema{mat.F("in_port", 8), mat.F("vlan", 12), mat.A("out", 8)})
	t.Add(mat.Exact(1, 8), mat.Exact(1, 12), mat.Exact(1, 8))
	t.Add(mat.Exact(1, 8), mat.Exact(2, 12), mat.Exact(2, 8))
	t.Add(mat.Exact(2, 8), mat.Exact(1, 12), mat.Exact(1, 8))
	t.Add(mat.Exact(3, 8), mat.Exact(1, 12), mat.Exact(3, 8))
	return t
}
