package core

import (
	"errors"
	"fmt"

	"manorm/internal/fd"
	"manorm/internal/mat"
)

// This file implements the framework the paper's conclusion calls for:
// "Database theory recognizes several normal forms that go beyond 3NF by
// removing so called multi-valued dependencies... understanding the
// landscape beyond 3NF in match-action programs is currently a compelling
// open research problem." We implement the first rung of that ladder —
// 4NF checking and decomposition along multivalued dependencies — together
// with the match-action-specific caveat the appendix (Fig. 5) uncovers:
// the dependency table of an MVD split holds *several* rows per LHS value,
// so it is order-dependent unless the co-occurring value set is encoded
// into the link tag ("all" in the SDX fix).

// ErrMVDNeedsSetEncoding is returned when an MVD decomposition would put
// several rows with identical match projections into one sub-table: the
// per-LHS value *set* must be communicated, which the scalar join
// abstractions cannot do (the appendix's Fig. 5b failure).
var ErrMVDNeedsSetEncoding = errors.New(
	"core: MVD decomposition needs a set-valued link (the SDX 'all' tag); scalar joins would violate 1NF")

// Check4NF reports the multivalued dependencies that block 4NF: a table in
// BCNF is in 4NF iff every nontrivial MVD has a superkey LHS. It returns
// the blocking MVDs (empty when the table is in 4NF w.r.t. its instance).
func Check4NF(a *Analysis) []fd.MVD {
	n := len(a.Table.Schema)
	var out []fd.MVD
	for _, m := range fd.MineMVDs(a.Table, a.FDs) {
		if m.Trivial(n) {
			continue
		}
		if a.IsSuperkey(m.From) {
			continue
		}
		out = append(out, m)
	}
	return out
}

// DecomposeMVD splits the table along a multivalued dependency X ↠ Y into
// the two lossless projections π_{X∪Y} and π_{X∪Z}, realized as a pipeline
// with a *set-valued* metadata link: the first stage matches fields(X) and
// writes a tag identifying the X-group; the second stage matches
// (tag, fields(Y)) — every (tag, y) combination of the group appears, so
// the table stays order-independent — and the third stage resolves Z.
//
// Preconditions: X and Y must be match fields only (action-bearing MVD
// splits inherit the Fig. 3 problem), and the MVD must hold.
func DecomposeMVD(a *Analysis, m fd.MVD) (*mat.Pipeline, error) {
	t := a.Table
	sch := t.Schema
	n := len(sch)
	x := m.From
	y := m.To.Minus(x)
	if m.Trivial(n) {
		return nil, fmt.Errorf("core: MVD %s is trivial", m.Format(sch))
	}
	if !m.HoldsIn(t) {
		return nil, fmt.Errorf("core: MVD %s does not hold in table %s", m.Format(sch), t.Name)
	}
	fields := t.MatchSet()
	if !x.SubsetOf(fields) || !y.SubsetOf(fields) {
		return nil, fmt.Errorf("%w: %s has action attributes on a side", ErrActionToMatch, m.Format(sch))
	}
	z := mat.FullSet(n).Minus(x).Minus(y)

	groups := t.GroupBy(x)
	if !groupsDisjoint(t, x, groups) {
		return nil, fmt.Errorf("%w: %s", ErrOverlappingGroups, m.Format(sch))
	}
	// Scalar-join feasibility: if any X-group carries more than one Y
	// value, a scalar per-X tag cannot disambiguate and a naive split
	// violates 1NF (Fig. 5b). The set encoding below handles it, but we
	// surface the caveat when the caller asked for a plain table split
	// by giving each (X, Y set) its own tag — i.e. the 'all' encoding.
	mn := mat.MetaPrefix + "_all"
	mw := bitsFor(len(groups))

	// Stage 1: the announcement-style table — matches fields(X), writes
	// the group tag (the encoded candidate set).
	first := mat.New(t.Name+"_groups", append(sch.Project(x.Members()), mat.Attr{Name: mn, Kind: mat.Action, Width: mw}))
	first.Provenance = t.Provenance
	for gi, rows := range groups {
		rep := t.Entries[rows[0]]
		row := make(mat.Entry, 0, x.Len()+1)
		for _, i := range x.Members() {
			row = append(row, rep[i])
		}
		row = append(row, mat.Exact(uint64(gi), mw))
		first.Entries = append(first.Entries, row)
	}

	// Stage 2: (tag, fields(Y)) — one row per (group, y) pair. Y-side
	// actions are excluded by precondition, so this stage only filters.
	second := mat.New(t.Name+"_dep", append(mat.Schema{{Name: mn, Kind: mat.Field, Width: mw}}, sch.Project(y.Members())...))
	second.Provenance = t.Provenance
	seen := map[string]bool{}
	gidOf := make([]int, len(t.Entries))
	for gi, rows := range groups {
		for _, r := range rows {
			gidOf[r] = gi
		}
	}
	for ri, e := range t.Entries {
		row := make(mat.Entry, 0, 1+y.Len())
		row = append(row, mat.Exact(uint64(gidOf[ri]), mw))
		for _, i := range y.Members() {
			row = append(row, e[i])
		}
		k := rowKey(row)
		if !seen[k] {
			seen[k] = true
			second.Entries = append(second.Entries, row)
		}
	}

	// Stage 3: (tag, fields(Z)) with actions(Z) — one row per (group, z)
	// pair.
	third := mat.New(t.Name+"_rest", append(mat.Schema{{Name: mn, Kind: mat.Field, Width: mw}}, sch.Project(z.Members())...))
	third.Provenance = t.Provenance
	seen = map[string]bool{}
	for ri, e := range t.Entries {
		row := make(mat.Entry, 0, 1+z.Len())
		row = append(row, mat.Exact(uint64(gidOf[ri]), mw))
		for _, i := range z.Members() {
			row = append(row, e[i])
		}
		k := rowKey(row)
		if !seen[k] {
			seen[k] = true
			third.Entries = append(third.Entries, row)
		}
	}

	p := &mat.Pipeline{
		Name:  t.Name + "-mvd",
		Start: 0,
		Stages: []mat.Stage{
			{Table: first, Next: 1, MissDrop: true},
			{Table: second, Next: 2, MissDrop: true},
			{Table: third, Next: -1, MissDrop: true},
		},
	}
	for _, st := range p.Stages {
		if !st.Table.IsOrderIndependent() {
			return nil, fmt.Errorf("%w: table %s", ErrMVDNeedsSetEncoding, st.Table.Name)
		}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}
