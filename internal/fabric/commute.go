package fabric

import (
	"manorm/internal/openflow"
)

// Commutation pre-check. Two flow-mods commute when applying them in
// either order yields the same table state. The fabric checks commutation
// conservatively and syntactically, in the spirit of the network-update
// literature's conflict tests: mods addressing different tables always
// commute (tables are independent relations), mods addressing the same
// table commute iff their canonical match keys differ (match-action
// lookup is order-free across distinct keys — the agent's ambiguity check
// and the canonical-state comparison both treat a table as a set keyed by
// match). Two mods on the same (table, match key) are flagged
// non-commuting regardless of command: add-vs-delete obviously race, and
// even two identical-looking adds differ in which one's error surfaces.

// Commutes reports whether the two flow-mods may be applied in either
// order with the same result.
func Commutes(a, b *openflow.FlowMod) bool {
	if a.TableID != b.TableID {
		return true
	}
	return MatchKey(a) != MatchKey(b)
}

// ConflictPair identifies one non-commuting pair between two batches:
// mod A[I] conflicts with mod B[J].
type ConflictPair struct {
	I, J int
}

// BatchConflicts returns every non-commuting (i, j) pair between two
// batches of flow-mods. An empty result means the batches commute: they
// may be delivered to the switches in either interleaving.
func BatchConflicts(a, b []openflow.FlowMod) []ConflictPair {
	var out []ConflictPair
	for i := range a {
		for j := range b {
			if !Commutes(&a[i], &b[j]) {
				out = append(out, ConflictPair{I: i, J: j})
			}
		}
	}
	return out
}

// planWaves greedily groups batches into waves of pairwise-commuting
// batches: each batch joins the earliest wave it conflicts with nothing
// in, so conflicting batches end up in distinct (serialized) waves while
// commuting ones share a wave and may be interleaved freely. The returned
// conflict count is the number of batch pairs that failed the pre-check.
func planWaves(batches [][]openflow.FlowMod) (waves [][]int, conflicts int) {
	for bi := range batches {
		placed := false
		for wi := range waves {
			ok := true
			for _, other := range waves[wi] {
				if len(BatchConflicts(batches[other], batches[bi])) > 0 {
					ok = false
					break
				}
			}
			if ok {
				waves[wi] = append(waves[wi], bi)
				placed = true
				break
			}
		}
		if !placed {
			waves = append(waves, []int{bi})
		}
	}
	// Count conflicting pairs across all batches for the report.
	for i := 0; i < len(batches); i++ {
		for j := i + 1; j < len(batches); j++ {
			if len(BatchConflicts(batches[i], batches[j])) > 0 {
				conflicts++
			}
		}
	}
	return waves, conflicts
}
