package fabric

import (
	"manorm/internal/openflow"
)

// Commutation pre-check. Two flow-mods commute when applying them in
// either order yields the same table state. The fabric checks commutation
// conservatively and syntactically, in the spirit of the network-update
// literature's conflict tests:
//
//   - mods addressing different tables always commute (tables are
//     independent relations);
//   - mods on the same (table, match key) are flagged non-commuting
//     regardless of command: add-vs-delete obviously race, and even two
//     identical-looking adds differ in which one's error surfaces;
//   - mods with distinct keys whose match regions are disjoint in some
//     column commute — no packet can see both rows, and the rows are
//     independent relation elements;
//   - two adds with distinct keys whose regions overlap commute iff their
//     total prefix lengths differ: most-specific-wins resolves the
//     overlap identically in either installation order, and the rows
//     never trip the agent's equal-specificity ambiguity check;
//   - any other overlapping distinct-key pair (deletes or modifies over a
//     region another mod touches, or equal-specificity adds that would
//     make matching ambiguous) is conservatively flagged non-commuting.
//
// The conservative verdicts are exactly the ones the semantic oracle
// (Config.SemanticCommute, backed by internal/confluence) is allowed to
// refute; refutations are counted as commute.false_conflicts.

// Commutes reports whether the two flow-mods may be applied in either
// order with the same result.
func Commutes(a, b *openflow.FlowMod) bool {
	if a.TableID != b.TableID {
		return true
	}
	if MatchKey(a) == MatchKey(b) {
		return false
	}
	if !matchesOverlap(a, b) {
		return true
	}
	if a.Command == openflow.FlowAdd && b.Command == openflow.FlowAdd &&
		totalPLen(a) != totalPLen(b) {
		return true
	}
	return false
}

// matchesOverlap reports whether the two mods' match regions intersect:
// every named column's cells overlap, with fields one mod omits treated
// as wildcards (the agent's default for unnamed fields).
func matchesOverlap(a, b *openflow.FlowMod) bool {
	bc := make(map[string]openflow.MatchField, len(b.Match))
	for _, f := range b.Match {
		bc[f.Name] = f
	}
	for _, f := range a.Match {
		g, ok := bc[f.Name]
		if !ok {
			continue // absent in b: Any, always overlaps
		}
		if !f.Cell.Canonical(f.Width).Overlaps(g.Cell.Canonical(g.Width), f.Width) {
			return false
		}
	}
	return true
}

// totalPLen is a mod's total match specificity: the summed canonical
// prefix lengths of its cells (the most-specific-wins tiebreak order).
func totalPLen(f *openflow.FlowMod) int {
	n := 0
	for _, m := range f.Match {
		n += int(m.Cell.Canonical(m.Width).PLen)
	}
	return n
}

// ConflictPair identifies one non-commuting pair between two batches:
// mod A[I] conflicts with mod B[J].
type ConflictPair struct {
	I, J int
}

// BatchConflicts returns every non-commuting (i, j) pair between two
// batches of flow-mods. An empty result means the batches commute
// syntactically: they may be delivered to the switches in either
// interleaving.
func BatchConflicts(a, b []openflow.FlowMod) []ConflictPair {
	var out []ConflictPair
	for i := range a {
		for j := range b {
			if !Commutes(&a[i], &b[j]) {
				out = append(out, ConflictPair{I: i, J: j})
			}
		}
	}
	return out
}

// planWaves greedily groups batches into waves of pairwise-commuting
// batches under the given predicate: each batch joins the earliest wave
// it conflicts with nothing in, so conflicting batches end up in distinct
// (serialized) waves while commuting ones share a wave and may be
// interleaved freely. The predicate is consulted at most once per batch
// pair (memoized — the semantic oracle behind it is expensive). The
// returned conflict count is the number of batch pairs the predicate
// rejected.
func planWaves(batches [][]openflow.FlowMod, commutes func(i, j int) bool) (waves [][]int, conflicts int) {
	memo := make(map[[2]int]bool)
	pair := func(i, j int) bool {
		if i > j {
			i, j = j, i
		}
		k := [2]int{i, j}
		if v, ok := memo[k]; ok {
			return v
		}
		v := commutes(i, j)
		memo[k] = v
		return v
	}
	for bi := range batches {
		placed := false
		for wi := range waves {
			ok := true
			for _, other := range waves[wi] {
				if !pair(other, bi) {
					ok = false
					break
				}
			}
			if ok {
				waves[wi] = append(waves[wi], bi)
				placed = true
				break
			}
		}
		if !placed {
			waves = append(waves, []int{bi})
		}
	}
	for i := 0; i < len(batches); i++ {
		for j := i + 1; j < len(batches); j++ {
			if !pair(i, j) {
				conflicts++
			}
		}
	}
	return waves, conflicts
}

// syntacticCommute is the fast-path batch predicate: the batches commute
// iff no mod pair conflicts under Commutes.
func syntacticCommute(a, b []openflow.FlowMod) bool {
	return len(BatchConflicts(a, b)) == 0
}
