package fabric

import (
	"context"
	"fmt"
	"strings"

	"manorm/internal/confluence"
	"manorm/internal/dataplane"
	"manorm/internal/mat"
	"manorm/internal/packet"
	"manorm/internal/telemetry"
)

// Fingerprint reduces a pipeline to the canonical identity of the program
// it implements. The canonicalization lives in internal/confluence (the
// semantic commutation verifier fingerprints interleaving outcomes with
// the exact same function, so fabric convergence and confluence verdicts
// can never disagree about what "the same program" means); see
// confluence.Fingerprint for the algorithm.
func Fingerprint(p *mat.Pipeline) (string, error) {
	return confluence.Fingerprint(p)
}

// canonicalPipeline serializes a pipeline with every table's entries
// sorted, so pipelines differing only in entry order render identically.
func canonicalPipeline(p *mat.Pipeline) (string, error) {
	return confluence.CanonicalState(p)
}

// unionPipeline merges shard dumps into the logical whole: entries are
// unioned per stage (deduplicated by full row, since stages past the
// entry stage are replicated on every shard).
func unionPipeline(shards []*mat.Pipeline) (*mat.Pipeline, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("fabric: union of no shards")
	}
	out := clonePipeline(shards[0])
	for si := range out.Stages {
		t := out.Stages[si].Table
		seen := make(map[string]bool, len(t.Entries))
		for _, e := range t.Entries {
			seen[entryRowKey(t, e)] = true
		}
		for _, p := range shards[1:] {
			if len(p.Stages) != len(out.Stages) {
				return nil, fmt.Errorf("fabric: shard has %d stages, expected %d", len(p.Stages), len(out.Stages))
			}
			st := p.Stages[si].Table
			for _, e := range st.Entries {
				k := entryRowKey(st, e)
				if !seen[k] {
					seen[k] = true
					t.Entries = append(t.Entries, e.Clone())
				}
			}
		}
	}
	return out, nil
}

// MemberReport is one member's convergence verdict.
type MemberReport struct {
	Name string
	// Fingerprint is the member's renormalized canonical form ("-" for
	// partition shards, whose identity only exists in union).
	Fingerprint string
	// StateOK reports that the dumped state equals the fabric's desired
	// state for this member exactly — zero lost, duplicated or spurious
	// flow-mods.
	StateOK bool
}

// Report is the outcome of a convergence check.
type Report struct {
	Mode    PlacementMode
	Members []MemberReport
	// Oracle is the single-switch oracle's fingerprint; Union the merged
	// shards' fingerprint under partitioning (equal to the replica
	// fingerprints under replication).
	Oracle string
	Union  string
	// NormalFormOK reports the headline property: every replica (or the
	// shard union) renormalizes to the identical normal form as the
	// oracle.
	NormalFormOK bool
	// StateOK is the conjunction of the members' exact-state checks.
	StateOK bool
	// PacketsChecked and Divergences summarize the packet-for-packet
	// forwarding comparison against the oracle; Witness renders the first
	// divergence (both execution traces).
	PacketsChecked int
	Divergences    int
	Witness        string
}

// OK reports full convergence: identical normal forms, exact state and
// divergence-free forwarding.
func (r *Report) OK() bool {
	return r.NormalFormOK && r.StateOK && r.Divergences == 0
}

// String renders a one-line verdict.
func (r *Report) String() string {
	verdict := "CONVERGED"
	if !r.OK() {
		verdict = "DIVERGED"
	}
	return fmt.Sprintf("%s mode=%s members=%d nf_ok=%v state_ok=%v pkts=%d div=%d",
		verdict, r.Mode, len(r.Members), r.NormalFormOK, r.StateOK, r.PacketsChecked, r.Divergences)
}

// CheckConvergence pulls every member's installed rule set over the wire,
// renormalizes each, and proves (or refutes) that the fabric converged:
//
//   - Normal form: under replication every member's fingerprint must equal
//     the oracle's; under partitioning the union of the shards must.
//   - Exact state: every dump must equal the fabric's desired state for
//     that member — zero lost and zero duplicated flow-mods.
//   - Forwarding: every packet must be forwarded by the fabric exactly as
//     the single-switch oracle forwards it — the same verdict on every
//     replica, or on exactly one owning shard (all others dropping).
//
// The oracle is the reference pipeline a fault-free single switch would
// hold (e.g. the final desired state, or an independently-churned
// reference agent's pipeline).
func (f *Fabric) CheckConvergence(ctx context.Context, oracle *mat.Pipeline, pkts []*packet.Packet) (*Report, error) {
	r := &Report{Mode: f.mode}

	oracleFP, err := Fingerprint(oracle)
	if err != nil {
		return nil, err
	}
	r.Oracle = oracleFP

	// Pull each member's installed state over its control channel, and
	// snapshot the desired states under the fabric lock.
	dumps := make([]*mat.Pipeline, len(f.members))
	desired := make([]*mat.Pipeline, len(f.members))
	f.mu.Lock()
	for i, m := range f.members {
		desired[i] = clonePipeline(m.desired)
	}
	f.mu.Unlock()
	for i, m := range f.members {
		dump, err := m.client.DumpFlows(ctx)
		if err != nil {
			return nil, fmt.Errorf("fabric: dump %s: %w", m.Name, err)
		}
		dumps[i] = dump
	}

	r.StateOK = true
	r.NormalFormOK = true
	for i, m := range f.members {
		mr := MemberReport{Name: m.Name, Fingerprint: "-"}
		gotState, err := canonicalPipeline(dumps[i])
		if err != nil {
			return nil, err
		}
		wantState, err := canonicalPipeline(desired[i])
		if err != nil {
			return nil, err
		}
		mr.StateOK = gotState == wantState
		if !mr.StateOK {
			r.StateOK = false
		}
		if f.mode == Replicate {
			fp, err := Fingerprint(dumps[i])
			if err != nil {
				return nil, fmt.Errorf("fabric: fingerprint %s: %w", m.Name, err)
			}
			mr.Fingerprint = fp
			if fp != oracleFP {
				r.NormalFormOK = false
			}
		}
		r.Members = append(r.Members, mr)
	}
	if f.mode == Partition {
		union, err := unionPipeline(dumps)
		if err != nil {
			return nil, err
		}
		r.Union, err = Fingerprint(union)
		if err != nil {
			return nil, fmt.Errorf("fabric: union fingerprint: %w", err)
		}
		r.NormalFormOK = r.Union == oracleFP
	} else if len(dumps) > 0 {
		r.Union = r.Members[0].Fingerprint
	}

	if len(pkts) > 0 {
		if err := f.checkForwarding(oracle, dumps, pkts, r); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// checkForwarding replays pkts through the compiled oracle and every
// compiled dump, comparing verdicts packet for packet.
func (f *Fabric) checkForwarding(oracle *mat.Pipeline, dumps []*mat.Pipeline, pkts []*packet.Packet, r *Report) error {
	op, err := dataplane.Compile(oracle, dataplane.AutoTemplates)
	if err != nil {
		return fmt.Errorf("fabric: compile oracle: %w", err)
	}
	octx := op.NewCtx()
	compiled := make([]*dataplane.Pipeline, len(dumps))
	ctxs := make([]*dataplane.Ctx, len(dumps))
	for i, d := range dumps {
		compiled[i], err = dataplane.Compile(d, dataplane.AutoTemplates)
		if err != nil {
			return fmt.Errorf("fabric: compile %s dump: %w", f.members[i].Name, err)
		}
		ctxs[i] = compiled[i].NewCtx()
	}

	for pi, pkt := range pkts {
		ocp := *pkt
		ov, owit, err := op.ProcessExplain(&ocp, octx)
		if err != nil {
			return fmt.Errorf("fabric: oracle packet %d: %w", pi, err)
		}
		forwarders := 0
		diverged := false
		var detail strings.Builder
		for i := range compiled {
			cp := *pkt
			mv, mwit, err := compiled[i].ProcessExplain(&cp, ctxs[i])
			if err != nil {
				return fmt.Errorf("fabric: %s packet %d: %w", f.members[i].Name, pi, err)
			}
			switch f.mode {
			case Replicate:
				if mv.Drop != ov.Drop || (!ov.Drop && mv.Port != ov.Port) {
					diverged = true
					fmt.Fprintf(&detail, "%s: got %s, oracle %s\n  member %s\n  oracle %s\n",
						f.members[i].Name, renderVerdict(mv.Drop, mv.Port), renderVerdict(ov.Drop, ov.Port),
						renderTrace(mwit), renderTrace(owit))
				}
			case Partition:
				if !mv.Drop {
					forwarders++
					if ov.Drop || mv.Port != ov.Port {
						diverged = true
						fmt.Fprintf(&detail, "%s forwarded %s, oracle %s\n",
							f.members[i].Name, renderVerdict(mv.Drop, mv.Port), renderVerdict(ov.Drop, ov.Port))
					}
				}
			}
		}
		if f.mode == Partition {
			if ov.Drop && forwarders != 0 {
				diverged = true
				fmt.Fprintf(&detail, "%d shards forwarded a packet the oracle drops", forwarders)
			}
			if !ov.Drop && forwarders != 1 {
				diverged = true
				fmt.Fprintf(&detail, "%d shards own a packet the oracle forwards to %d (want exactly 1)", forwarders, ov.Port)
			}
		}
		r.PacketsChecked++
		if diverged {
			r.Divergences++
			if r.Witness == "" {
				r.Witness = fmt.Sprintf("packet %d: %s", pi, detail.String())
			}
		}
	}
	return nil
}

func renderVerdict(drop bool, port uint16) string {
	if drop {
		return "drop"
	}
	return fmt.Sprintf("out=%d", port)
}

// renderTrace compacts a forwarding witness into one line:
// table[entry](actions)-join → … → verdict.
func renderTrace(wit *telemetry.Trace) string {
	var b strings.Builder
	for i, st := range wit.Stages {
		if i > 0 {
			b.WriteString(" -> ")
		}
		fmt.Fprintf(&b, "%s[%d]", st.Table, st.Entry)
		if len(st.Actions) > 0 {
			fmt.Fprintf(&b, "(%s)", strings.Join(st.Actions, ","))
		}
		fmt.Fprintf(&b, "-%s", st.Join)
	}
	fmt.Fprintf(&b, " => %s", renderVerdict(wit.Drop, wit.Port))
	return b.String()
}
