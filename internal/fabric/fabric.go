package fabric

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"manorm/internal/confluence"
	"manorm/internal/mat"
	"manorm/internal/openflow"
	"manorm/internal/telemetry"
)

// ErrFrozen reports a write attempted while the fabric is degraded to its
// read-only frozen epoch: a previous epoch failed to reach quorum and no
// reconcile has restored it yet. Reads (dumps, stats, convergence checks)
// remain available; Reconcile unfreezes once enough members resync.
var ErrFrozen = errors.New("fabric: frozen epoch (read-only until quorum restored)")

// QuorumError reports the epoch that failed to reach quorum and froze the
// fabric. It unwraps to ErrFrozen so callers can branch on a single
// sentinel for both "froze now" and "was already frozen".
type QuorumError struct {
	// Epoch is the epoch that failed to commit.
	Epoch uint64
	// Acked and Quorum are the acknowledgment count achieved and required.
	Acked, Quorum int
	// Failed names the members that did not acknowledge in time.
	Failed []string
}

func (e *QuorumError) Error() string {
	return fmt.Sprintf("fabric: epoch %d reached %d/%d acks (failed: %v): %v",
		e.Epoch, e.Acked, e.Quorum, e.Failed, ErrFrozen)
}

func (e *QuorumError) Unwrap() error { return ErrFrozen }

// MemberSpec describes one switch the fabric drives: a name (used as the
// telemetry key and in reports) and a dialer for its control channel. The
// dialer is handed to the openflow client, which redials through it on
// every reconnect — fault-injected dialers (faultconn) plug in here.
type MemberSpec struct {
	Name string
	Dial func() (net.Conn, error)
}

// Config tunes the fabric's update protocol.
type Config struct {
	// Mode selects the placement (default Replicate).
	Mode PlacementMode
	// Quorum is the number of members that must acknowledge an epoch's
	// barrier for the epoch to commit; 0 means all members. An epoch that
	// misses quorum freezes the fabric (ErrFrozen).
	Quorum int
	// EpochTimeout bounds one member's share of an epoch (sends plus
	// barrier, including the client's internal retries) and one member's
	// resync. Default 2s.
	EpochTimeout time.Duration
	// RPCTimeout is the per-attempt deadline of each member's client, and
	// the budget of the cheap liveness probe that gates automatic resync.
	// Default 250ms.
	RPCTimeout time.Duration
	// Retry is the clients' backoff schedule; the zero value selects a
	// fast fabric-oriented schedule (2ms doubling to 100ms, 4 retries).
	Retry openflow.RetryPolicy
	// Seed drives every random draw the fabric makes (per-member delivery
	// interleavings, per-member retry jitter streams), making runs
	// reproducible.
	Seed int64
	// SemanticCommute arms the confluence verifier as a second opinion on
	// the syntactic commutation pre-check: batch pairs the syntactic test
	// conservatively flags are re-judged semantically (every interleaving
	// renormalizes to one fingerprint, with well-founded compensation) and
	// refuted conflicts share an epoch after all. Refutations are counted
	// as commute.false_conflicts. The syntactic test stays the fast path —
	// the verifier only runs on pairs it rejects.
	SemanticCommute bool
	// ConfluenceOpts tunes the semantic oracle's enumeration budgets; the
	// zero value takes the verifier defaults with Seed as the sampling
	// seed.
	ConfluenceOpts confluence.Options
}

// Member is one fabric-managed switch: its control client, the fabric's
// desired pipeline for it, and its epoch progress.
type Member struct {
	Name string

	client  *openflow.Client
	desired *mat.Pipeline // guarded by the fabric mutex

	acked      atomic.Uint64 // last epoch this member acknowledged
	lagging    atomic.Bool   // missed an epoch; awaiting resync
	resyncs    atomic.Int64  // successful reconciles after lagging
	epochFails atomic.Int64  // epochs this member failed to ack in time
}

// Client exposes the member's control channel (stats, dumps, telemetry).
func (m *Member) Client() *openflow.Client { return m.client }

// AckedEpoch reports the last epoch the member acknowledged.
func (m *Member) AckedEpoch() uint64 { return m.acked.Load() }

// Lagging reports whether the member missed an epoch and has not been
// resynchronized yet.
func (m *Member) Lagging() bool { return m.lagging.Load() }

// Resyncs reports how many times the member was resynchronized.
func (m *Member) Resyncs() int64 { return m.resyncs.Load() }

// Fabric drives N agent-backed switches as one logical program under an
// epoch-stamped update protocol: every Apply is one epoch, delivered to
// each routed member through its resilient client (resend queue, bounded
// retries with backoff) and committed by a quorum of barrier
// acknowledgments. Members that miss an epoch are marked lagging and
// resynchronized — their client's resend queue redelivers queued mods on
// reconnect, and a dump-and-diff full state transfer repairs any residual
// divergence. If an epoch misses quorum the fabric freezes read-only at
// the last committed epoch until Reconcile restores quorum.
type Fabric struct {
	cfg     Config
	mode    PlacementMode
	start   uint8 // entry-stage index, for partition routing
	members []*Member

	mu  sync.Mutex // serializes epochs, reconciles and desired-state access
	rng *rand.Rand // delivery interleavings; guarded by mu

	epoch     atomic.Uint64 // last epoch issued
	committed atomic.Uint64 // last epoch that reached quorum
	frozen    atomic.Bool

	epochsCommitted atomic.Int64
	epochsDegraded  atomic.Int64
	freezes         atomic.Int64
	conflicts       atomic.Int64 // non-commuting batch pairs flagged
	falseConflicts  atomic.Int64 // syntactic conflicts the semantic oracle refuted
	waves           atomic.Int64 // serialized waves issued by ApplyConcurrent
}

// New connects a fabric to its members and records the desired placement
// of src on them. The switches must already be provisioned with the same
// placement — Place(src, len(specs), cfg.Mode) — which New recomputes; the
// usual harness calls Place, installs each returned pipeline into an
// agent, and then hands New the dialers.
func New(src *mat.Pipeline, specs []MemberSpec, cfg Config) (*Fabric, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("fabric: no members")
	}
	if cfg.Mode == "" {
		cfg.Mode = Replicate
	}
	if cfg.Quorum <= 0 || cfg.Quorum > len(specs) {
		cfg.Quorum = len(specs)
	}
	if cfg.EpochTimeout <= 0 {
		cfg.EpochTimeout = 2 * time.Second
	}
	if cfg.RPCTimeout <= 0 {
		cfg.RPCTimeout = 250 * time.Millisecond
	}
	if cfg.Retry == (openflow.RetryPolicy{}) {
		cfg.Retry = openflow.RetryPolicy{
			Base: 2 * time.Millisecond, Max: 100 * time.Millisecond,
			Multiplier: 2, Jitter: 0.25, MaxRetries: 4, Seed: cfg.Seed,
		}
	}
	placed, err := Place(src, len(specs), cfg.Mode)
	if err != nil {
		return nil, err
	}
	f := &Fabric{
		cfg:   cfg,
		mode:  cfg.Mode,
		start: uint8(src.Start),
		rng:   rand.New(rand.NewSource(cfg.Seed)),
	}
	for i, spec := range specs {
		retry := cfg.Retry
		retry.Seed = cfg.Seed + int64(i)*7919 // decorrelate member jitter
		client, err := openflow.NewClient(nil,
			openflow.WithDialer(spec.Dial),
			openflow.WithRPCTimeout(cfg.RPCTimeout),
			openflow.WithRetryPolicy(retry),
		)
		if err != nil {
			for _, m := range f.members {
				m.client.Close()
			}
			return nil, fmt.Errorf("fabric: connect %s: %w", spec.Name, err)
		}
		f.members = append(f.members, &Member{
			Name:    spec.Name,
			client:  client,
			desired: placed[i],
		})
	}
	return f, nil
}

// Close tears down every member's control channel.
func (f *Fabric) Close() error {
	var first error
	for _, m := range f.members {
		if err := m.client.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Members returns the fabric's members in placement order.
func (f *Fabric) Members() []*Member { return f.members }

// Epoch reports the last epoch issued; CommittedEpoch the last that
// reached quorum. They differ while the fabric is degraded.
func (f *Fabric) Epoch() uint64 { return f.epoch.Load() }

// CommittedEpoch reports the last epoch that reached quorum.
func (f *Fabric) CommittedEpoch() uint64 { return f.committed.Load() }

// Frozen reports whether the fabric is degraded to its read-only frozen
// epoch.
func (f *Fabric) Frozen() bool { return f.frozen.Load() }

// Desired returns a copy of the fabric's desired pipeline for member i —
// the state a resync drives the switch back to.
func (f *Fabric) Desired(i int) *mat.Pipeline {
	f.mu.Lock()
	defer f.mu.Unlock()
	return clonePipeline(f.members[i].desired)
}

// Apply pushes one batch of flow-mods as a single epoch: the mods are
// pre-validated against the desired state, routed per the placement,
// delivered to every routed member concurrently and committed when a
// quorum of barriers acknowledges. Lagging members are first given one
// bounded chance to resync (the automatic reconnect path). Returns the
// epoch number; on quorum loss the fabric freezes and the error unwraps
// to ErrFrozen.
func (f *Fabric) Apply(ctx context.Context, mods []openflow.FlowMod) (uint64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.resyncLaggingLocked(ctx)
	return f.applyLocked(ctx, [][]openflow.FlowMod{mods}, false)
}

// ApplyConcurrent pushes several independently-planned batches that are
// intended to run concurrently. A commutation pre-check flags every
// non-commuting batch pair — the fast syntactic test first, escalated to
// the semantic confluence verifier when Config.SemanticCommute is set;
// conflicting batches are serialized into separate epochs (in argument
// order) while pairwise-commuting batches share an epoch and are
// delivered to each member in an independently seeded interleaving —
// exercising the order-independence the pre-check promised. Returns the
// epochs issued and the number of conflicting pairs.
func (f *Fabric) ApplyConcurrent(ctx context.Context, batches [][]openflow.FlowMod) ([]uint64, int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.resyncLaggingLocked(ctx)
	waves, conflicts := planWaves(batches, f.commutePredicateLocked(batches))
	f.conflicts.Add(int64(conflicts))
	var epochs []uint64
	for _, wave := range waves {
		group := make([][]openflow.FlowMod, 0, len(wave))
		for _, bi := range wave {
			group = append(group, batches[bi])
		}
		f.waves.Add(1)
		seq, err := f.applyLocked(ctx, group, len(group) > 1)
		if seq != 0 {
			epochs = append(epochs, seq)
		}
		if err != nil {
			return epochs, conflicts, err
		}
	}
	return epochs, conflicts, nil
}

// commutePredicateLocked builds the pairwise batch-commutation predicate
// planWaves consults: the syntactic test is the fast path, and — when the
// semantic oracle is armed — a syntactic conflict is escalated to the
// confluence verifier against the fabric's current logical desired state.
// The oracle refutes the conflict only on a fully clean verdict (every
// interleaving confluent AND every mod applied — applyLocked rejects
// whole epochs on any mod failure, so a rejection-dependent confluence
// proof would not transfer); each refutation increments falseConflicts.
func (f *Fabric) commutePredicateLocked(batches [][]openflow.FlowMod) func(i, j int) bool {
	return func(i, j int) bool {
		if syntacticCommute(batches[i], batches[j]) {
			return true
		}
		if !f.cfg.SemanticCommute {
			return false
		}
		base, err := f.logicalDesiredLocked()
		if err != nil {
			return false
		}
		opts := f.cfg.ConfluenceOpts
		if opts.Seed == 0 {
			opts.Seed = f.cfg.Seed
		}
		v, err := confluence.Check(base, [][]openflow.FlowMod{batches[i], batches[j]}, opts)
		if err != nil || !v.Confluent || len(v.Rejections) > 0 {
			return false
		}
		f.falseConflicts.Add(1)
		return true
	}
}

// logicalDesiredLocked reconstructs the logical single-switch program the
// fabric currently intends: any replica's desired state under
// replication, the union of the shards' under partitioning. Batches are
// planned (and semantically judged) against the logical program, exactly
// as CheckConvergence fingerprints it.
func (f *Fabric) logicalDesiredLocked() (*mat.Pipeline, error) {
	if f.mode == Partition {
		desireds := make([]*mat.Pipeline, len(f.members))
		for i, m := range f.members {
			desireds[i] = m.desired
		}
		return unionPipeline(desireds)
	}
	return clonePipeline(f.members[0].desired), nil
}

// applyLocked issues one epoch carrying the given batches. When shuffle
// is set each member receives the batches in its own seeded order
// (batch-internal order is always preserved — a plan's delete must
// precede its add).
func (f *Fabric) applyLocked(ctx context.Context, batches [][]openflow.FlowMod, shuffle bool) (uint64, error) {
	if f.frozen.Load() {
		return 0, ErrFrozen
	}
	seq := f.epoch.Load() + 1

	// Route every batch, preserving batch identity for the interleaving.
	n := len(f.members)
	perMember := make([][][]openflow.FlowMod, n) // [member][batch][]mod
	for mi := range perMember {
		perMember[mi] = make([][]openflow.FlowMod, len(batches))
	}
	for bi, batch := range batches {
		routed := route(batch, f.mode, f.start, n)
		for mi := range routed {
			perMember[mi][bi] = routed[mi]
		}
	}

	// Pre-validate against the desired state: a batch that cannot apply
	// cleanly is rejected before anything reaches a wire.
	next := make([]*mat.Pipeline, n)
	for mi, m := range f.members {
		p := clonePipeline(m.desired)
		for bi := range perMember[mi] {
			for i := range perMember[mi][bi] {
				if err := openflow.ApplyToPipeline(p, &perMember[mi][bi][i]); err != nil {
					return 0, fmt.Errorf("fabric: epoch %d rejected on %s: %w", seq, m.Name, err)
				}
			}
		}
		next[mi] = p
	}
	for mi, m := range f.members {
		m.desired = next[mi]
	}
	f.epoch.Store(seq)

	// Per-member delivery order: an independent seeded permutation of the
	// batches when shuffling, identity otherwise.
	var wg sync.WaitGroup
	errs := make([]error, n)
	for mi, m := range f.members {
		order := make([]int, len(batches))
		for i := range order {
			order[i] = i
		}
		if shuffle {
			f.rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		}
		var mods []openflow.FlowMod
		for _, bi := range order {
			mods = append(mods, perMember[mi][bi]...)
		}
		wg.Add(1)
		go func(mi int, m *Member, mods []openflow.FlowMod) {
			defer wg.Done()
			errs[mi] = f.deliver(ctx, m, mods, seq)
		}(mi, m, mods)
	}
	wg.Wait()

	acked := 0
	var failed []string
	for mi, m := range f.members {
		if errs[mi] == nil {
			acked++
		} else {
			m.lagging.Store(true)
			m.epochFails.Add(1)
			failed = append(failed, m.Name)
		}
	}
	if acked >= f.cfg.Quorum {
		f.committed.Store(seq)
		f.epochsCommitted.Add(1)
		return seq, nil
	}
	f.frozen.Store(true)
	f.freezes.Add(1)
	f.epochsDegraded.Add(1)
	sort.Strings(failed)
	return seq, &QuorumError{Epoch: seq, Acked: acked, Quorum: f.cfg.Quorum, Failed: failed}
}

// deliver pushes one member's share of an epoch and waits on its barrier,
// all bounded by the epoch timeout. A member with no mods acknowledges
// trivially. Mods that fail to deliver stay in the client's resend queue
// and reach the switch exactly once on reconnect.
func (f *Fabric) deliver(ctx context.Context, m *Member, mods []openflow.FlowMod, seq uint64) error {
	if len(mods) == 0 && !m.lagging.Load() {
		m.acked.Store(seq)
		return nil
	}
	dctx, cancel := context.WithTimeout(ctx, f.cfg.EpochTimeout)
	defer cancel()
	for i := range mods {
		if err := m.client.SendFlowMod(dctx, &mods[i]); err != nil {
			return err
		}
	}
	if err := m.client.Barrier(dctx); err != nil {
		return err
	}
	m.acked.Store(seq)
	m.lagging.Store(false)
	return nil
}

// Reconcile resynchronizes every lagging member (full state transfer:
// flush the resend queue, dump the switch, diff against desired, repair)
// and unfreezes the fabric if quorum is restored. It is the explicit
// recovery entry point; Apply also attempts it opportunistically with a
// cheap liveness probe first.
func (f *Fabric) Reconcile(ctx context.Context) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	var firstErr error
	for _, m := range f.members {
		if !m.lagging.Load() {
			continue
		}
		if err := f.resyncMemberLocked(ctx, m); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("fabric: reconcile %s: %w", m.Name, err)
		}
	}
	f.maybeUnfreezeLocked()
	return firstErr
}

// resyncLaggingLocked gives each lagging member one bounded chance to
// resync, gated by a cheap echo probe so unreachable members cost one
// RPC timeout, not a full epoch timeout.
func (f *Fabric) resyncLaggingLocked(ctx context.Context) {
	for _, m := range f.members {
		if !m.lagging.Load() {
			continue
		}
		pctx, cancel := context.WithTimeout(ctx, f.cfg.RPCTimeout)
		err := m.client.Echo(pctx, []byte("fabric-probe"))
		cancel()
		if err != nil {
			continue // still unreachable
		}
		_ = f.resyncMemberLocked(ctx, m)
	}
	f.maybeUnfreezeLocked()
}

// resyncMemberLocked performs the full state transfer for one member:
// flush the client's resend queue (exactly-once redelivery of everything
// queued during the outage), pull the switch's installed pipeline, diff
// it against the desired state, and push the repair under a barrier.
func (f *Fabric) resyncMemberLocked(ctx context.Context, m *Member) error {
	rctx, cancel := context.WithTimeout(ctx, f.cfg.EpochTimeout)
	defer cancel()
	if err := m.client.Barrier(rctx); err != nil {
		// A switch-side rejection of a stale queued mod is survivable:
		// the dump-and-diff below repairs whatever state resulted.
		var se *openflow.SwitchError
		if !errors.As(err, &se) {
			return err
		}
	}
	got, err := m.client.DumpFlows(rctx)
	if err != nil {
		return err
	}
	mods, err := diffMods(got, m.desired)
	if err != nil {
		return err
	}
	for i := range mods {
		if err := m.client.SendFlowMod(rctx, &mods[i]); err != nil {
			return err
		}
	}
	if len(mods) > 0 {
		if err := m.client.Barrier(rctx); err != nil {
			return err
		}
	}
	m.acked.Store(f.epoch.Load())
	m.lagging.Store(false)
	m.resyncs.Add(1)
	return nil
}

// maybeUnfreezeLocked lifts the frozen epoch once quorum is healthy
// again; the epochs issued while degraded become committed (their state
// is durable on a quorum by construction of the resync).
func (f *Fabric) maybeUnfreezeLocked() {
	if !f.frozen.Load() {
		return
	}
	healthy := 0
	for _, m := range f.members {
		if !m.lagging.Load() {
			healthy++
		}
	}
	if healthy >= f.cfg.Quorum {
		f.frozen.Store(false)
		f.committed.Store(f.epoch.Load())
	}
}

// EpochLag reports how far the slowest member trails the issued epoch.
func (f *Fabric) EpochLag() uint64 {
	cur := f.epoch.Load()
	var lag uint64
	for _, m := range f.members {
		if d := cur - m.acked.Load(); d > lag {
			lag = d
		}
	}
	return lag
}

// diffMods computes the flow-mods that transform the actual pipeline into
// the desired one: per stage, entries keyed by canonical match — extra
// keys are deleted, missing keys added, and keys whose actions differ are
// modified.
func diffMods(actual, desired *mat.Pipeline) ([]openflow.FlowMod, error) {
	if len(actual.Stages) != len(desired.Stages) {
		return nil, fmt.Errorf("fabric: dump has %d stages, desired %d", len(actual.Stages), len(desired.Stages))
	}
	var out []openflow.FlowMod
	for si := range desired.Stages {
		at, dt := actual.Stages[si].Table, desired.Stages[si].Table
		have := make(map[string]mat.Entry, len(at.Entries))
		for _, e := range at.Entries {
			have[entryMatchKey(at, e)] = e
		}
		for _, e := range dt.Entries {
			key := entryMatchKey(dt, e)
			got, ok := have[key]
			if ok {
				delete(have, key)
				if entryRowKey(dt, e) == entryRowKey(at, got) {
					continue
				}
				out = append(out, entryToMod(openflow.FlowModify, uint8(si), dt, e))
				continue
			}
			out = append(out, entryToMod(openflow.FlowAdd, uint8(si), dt, e))
		}
		for _, e := range have {
			mod := entryToMod(openflow.FlowDelete, uint8(si), at, e)
			mod.Actions = nil
			out = append(out, mod)
		}
	}
	return out, nil
}

// entryToMod renders a table entry as a flow-mod against its stage.
func entryToMod(cmd openflow.FlowModCommand, table uint8, t *mat.Table, e mat.Entry) openflow.FlowMod {
	f := openflow.FlowMod{Command: cmd, TableID: table}
	for _, i := range t.Schema.Fields() {
		f.Match = append(f.Match, openflow.MatchField{
			Name: t.Schema[i].Name, Width: t.Schema[i].Width, Cell: e[i],
		})
	}
	for _, i := range t.Schema.Actions() {
		f.Actions = append(f.Actions, openflow.ActionField{
			Name: t.Schema[i].Name, Width: t.Schema[i].Width, Value: e[i].Bits,
		})
	}
	return f
}

// entryRowKey renders a full row (match and actions) canonically.
func entryRowKey(t *mat.Table, e mat.Entry) string {
	key := entryMatchKey(t, e)
	for _, i := range t.Schema.Actions() {
		key += fmt.Sprintf(";%s=%d", t.Schema[i].Name, e[i].Bits)
	}
	return key
}

// RegisterTelemetry exposes the fabric's live protocol state on the
// registry: epoch progress, degradation and resync counters at the top
// level, and per-member sub-registries ("sw0", "sw1", …) carrying each
// control channel's resilience gauges plus the member's epoch position.
func (f *Fabric) RegisterTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	reg.GaugeFunc("epoch", func() float64 { return float64(f.epoch.Load()) })
	reg.GaugeFunc("committed_epoch", func() float64 { return float64(f.committed.Load()) })
	reg.GaugeFunc("epoch_lag", func() float64 { return float64(f.EpochLag()) })
	reg.GaugeFunc("frozen", func() float64 {
		if f.frozen.Load() {
			return 1
		}
		return 0
	})
	reg.GaugeFunc("lagging_members", func() float64 {
		n := 0
		for _, m := range f.members {
			if m.lagging.Load() {
				n++
			}
		}
		return float64(n)
	})
	reg.GaugeFunc("resyncs", func() float64 {
		var n int64
		for _, m := range f.members {
			n += m.resyncs.Load()
		}
		return float64(n)
	})
	reg.GaugeFunc("commute.false_conflicts", func() float64 { return float64(f.falseConflicts.Load()) })
	reg.GaugeFunc("commute.false_conflict_rate", func() float64 {
		fc := float64(f.falseConflicts.Load())
		total := fc + float64(f.conflicts.Load())
		if total == 0 {
			return 0
		}
		return fc / total
	})
	for _, m := range f.members {
		sub := telemetry.NewRegistry()
		m.client.RegisterTelemetry(sub)
		mm := m
		sub.GaugeFunc("acked_epoch", func() float64 { return float64(mm.acked.Load()) })
		sub.GaugeFunc("member_resyncs", func() float64 { return float64(mm.resyncs.Load()) })
		sub.GaugeFunc("epoch_fails", func() float64 { return float64(mm.epochFails.Load()) })
		reg.Register(m.Name, sub)
	}
}

// Stats reports the fabric's protocol counters (telemetry.Provider).
func (f *Fabric) Stats() telemetry.Snapshot {
	snap := telemetry.Snapshot{
		Name: "fabric",
		Counters: map[string]uint64{
			"epochs_committed":        uint64(f.epochsCommitted.Load()),
			"epochs_degraded":         uint64(f.epochsDegraded.Load()),
			"freezes":                 uint64(f.freezes.Load()),
			"commute_conflicts":       uint64(f.conflicts.Load()),
			"commute_false_conflicts": uint64(f.falseConflicts.Load()),
			"waves":                   uint64(f.waves.Load()),
		},
		Gauges: map[string]float64{
			"epoch":           float64(f.epoch.Load()),
			"committed_epoch": float64(f.committed.Load()),
			"epoch_lag":       float64(f.EpochLag()),
		},
		Providers: map[string]telemetry.Snapshot{},
	}
	for _, m := range f.members {
		ms := m.client.Stats()
		ms.Name = m.Name
		if ms.Gauges == nil {
			ms.Gauges = map[string]float64{}
		}
		ms.Gauges["acked_epoch"] = float64(m.acked.Load())
		ms.Gauges["member_resyncs"] = float64(m.resyncs.Load())
		snap.Providers[m.Name] = ms
	}
	return snap
}
