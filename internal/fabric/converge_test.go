package fabric

import (
	"testing"

	"manorm/internal/mat"
	"manorm/internal/openflow"
	"manorm/internal/usecases"
)

func gotoPipeline(t *testing.T) *mat.Pipeline {
	t.Helper()
	g := usecases.Generate(3, 3, 1)
	p, err := g.Build(usecases.RepGoto)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestFingerprintIsEntryOrderInvariant(t *testing.T) {
	src := gotoPipeline(t)
	shuffled := clonePipeline(src)
	for _, st := range shuffled.Stages {
		e := st.Table.Entries
		for i, j := 0, len(e)-1; i < j; i, j = i+1, j-1 {
			e[i], e[j] = e[j], e[i]
		}
	}
	fa, err := Fingerprint(src)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := Fingerprint(shuffled)
	if err != nil {
		t.Fatal(err)
	}
	if fa != fb {
		t.Fatalf("fingerprint depends on entry order: %s vs %s", fa, fb)
	}
}

func TestFingerprintDetectsSemanticDivergence(t *testing.T) {
	src := gotoPipeline(t)
	mutated := clonePipeline(src)
	// Flip one load-balancing output: same shape, different program.
	lb := mutated.Stages[1].Table
	out := lb.Schema.Index("out")
	lb.Entries[0][out].Bits++
	fa, err := Fingerprint(src)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := Fingerprint(mutated)
	if err != nil {
		t.Fatal(err)
	}
	if fa == fb {
		t.Fatal("fingerprint failed to distinguish semantically different programs")
	}
}

func TestUnionOfShardsFingerprintsLikeOracle(t *testing.T) {
	src := gotoPipeline(t)
	for _, n := range []int{2, 3, 4} {
		shards, err := Place(src, n, Partition)
		if err != nil {
			t.Fatal(err)
		}
		union, err := unionPipeline(shards)
		if err != nil {
			t.Fatal(err)
		}
		fu, err := Fingerprint(union)
		if err != nil {
			t.Fatal(err)
		}
		fo, err := Fingerprint(src)
		if err != nil {
			t.Fatal(err)
		}
		if fu != fo {
			t.Fatalf("n=%d: union fingerprint %s != oracle %s", n, fu, fo)
		}
	}
}

func TestDiffModsRepairsDrift(t *testing.T) {
	src := gotoPipeline(t)
	desired := clonePipeline(src)
	actual := clonePipeline(src)

	// Drift three ways: a lost entry, a corrupted action, and a spurious
	// leftover entry.
	t0 := actual.Stages[0].Table
	t0.Entries = t0.Entries[1:] // lost
	lb := actual.Stages[1].Table
	out := lb.Schema.Index("out")
	lb.Entries[0][out].Bits ^= 1 // corrupted
	spurious := desired.Stages[0].Table.Entries[0].Clone()
	spurious[0].Bits ^= 0xFFFF // distinct match key
	actual.Stages[0].Table.Entries = append(actual.Stages[0].Table.Entries, spurious)

	mods, err := diffMods(actual, desired)
	if err != nil {
		t.Fatal(err)
	}
	if len(mods) != 3 {
		t.Fatalf("diff produced %d mods, want 3 (add, modify, delete)", len(mods))
	}
	for i := range mods {
		if err := openflow.ApplyToPipeline(actual, &mods[i]); err != nil {
			t.Fatalf("repair mod %d (%v): %v", i, mods[i].Command, err)
		}
	}
	got, err := canonicalPipeline(actual)
	if err != nil {
		t.Fatal(err)
	}
	want, err := canonicalPipeline(desired)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatal("diff+apply did not restore the desired state")
	}
}

func TestDiffModsEmptyOnIdenticalState(t *testing.T) {
	src := gotoPipeline(t)
	mods, err := diffMods(clonePipeline(src), clonePipeline(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(mods) != 0 {
		t.Fatalf("diff of identical states produced %d mods", len(mods))
	}
}
