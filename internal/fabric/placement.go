// Package fabric coordinates a set of agent-backed switches as one
// logical match-action program: a normalized pipeline is placed across N
// members (replicated, or with its first stage partitioned), updates are
// pushed under an epoch-stamped protocol with quorum barriers, members
// that fall behind are resynchronized by full state transfer, and a
// convergence checker proves — by renormalizing each member's installed
// rule set — that every replica reached the identical normal form and
// forwards packet-for-packet like the single-switch oracle.
//
// The fabric is the operational payoff of the paper's Theorem 1: because
// normalization and denormalization preserve semantics, "all replicas
// hold the same program" is decidable by pulling each switch's rules,
// renormalizing, and comparing canonical forms — no per-update bookkeeping
// of what should have arrived is needed.
package fabric

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"

	"manorm/internal/mat"
	"manorm/internal/openflow"
)

// PlacementMode selects how a pipeline is spread across fabric members.
type PlacementMode string

const (
	// Replicate installs the full pipeline on every member; every flow-mod
	// goes to every member and all replicas must converge to the identical
	// normal form.
	Replicate PlacementMode = "replicate"
	// Partition shards the first stage's entries across members by a hash
	// of their match key; later stages are replicated (they are the shared
	// per-service tables every shard may reach). Flow-mods addressing the
	// first stage route to the owning member; the union of all shards must
	// equal the oracle.
	Partition PlacementMode = "partition"
)

// Place computes the per-member pipelines for installing src on n members.
// The placement is a pure function of (src, n, mode): the fabric and the
// switch-provisioning harness call it independently and agree.
func Place(src *mat.Pipeline, n int, mode PlacementMode) ([]*mat.Pipeline, error) {
	if n < 1 {
		return nil, fmt.Errorf("fabric: need at least 1 member, got %d", n)
	}
	if err := src.Validate(); err != nil {
		return nil, fmt.Errorf("fabric: place: %w", err)
	}
	out := make([]*mat.Pipeline, n)
	switch mode {
	case Replicate:
		for i := range out {
			out[i] = clonePipeline(src)
		}
	case Partition:
		for i := range out {
			p := clonePipeline(src)
			t := p.Stages[p.Start].Table
			var kept []mat.Entry
			for _, e := range t.Entries {
				if Owner(entryMatchKey(t, e), n) == i {
					kept = append(kept, e)
				}
			}
			t.Entries = kept
			out[i] = p
		}
	default:
		return nil, fmt.Errorf("fabric: unknown placement mode %q", mode)
	}
	return out, nil
}

// Owner maps a canonical match key to the member index owning it.
func Owner(key string, n int) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(n))
}

// MatchKey renders a flow-mod's match as the canonical key used for
// shard ownership and commutation checking: name=plen/bits pairs, sorted
// by name so field order on the wire does not matter.
func MatchKey(f *openflow.FlowMod) string {
	parts := make([]string, 0, len(f.Match))
	for _, m := range f.Match {
		parts = append(parts, fmt.Sprintf("%s=%d/%d", m.Name, m.Cell.PLen, m.Cell.Bits))
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

// entryMatchKey renders a table entry's match cells in the same canonical
// form as MatchKey, so initial placement and flow-mod routing agree on
// ownership.
func entryMatchKey(t *mat.Table, e mat.Entry) string {
	var parts []string
	for _, i := range t.Schema.Fields() {
		parts = append(parts, fmt.Sprintf("%s=%d/%d", t.Schema[i].Name, e[i].PLen, e[i].Bits))
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

// route assigns each flow-mod to its target members. Under replication
// every mod goes everywhere. Under partitioning, mods addressing the
// entry stage go to the owner of their match key (a delete and the add
// replacing it may land on different owners — the entry migrates); mods
// addressing later stages are replicated.
func route(mods []openflow.FlowMod, mode PlacementMode, start uint8, n int) [][]openflow.FlowMod {
	out := make([][]openflow.FlowMod, n)
	for i := range mods {
		f := mods[i]
		if mode == Partition && f.TableID == start {
			m := Owner(MatchKey(&f), n)
			out[m] = append(out[m], f)
			continue
		}
		for m := 0; m < n; m++ {
			out[m] = append(out[m], f)
		}
	}
	return out
}

// clonePipeline deep-copies a pipeline (tables, schemas and entries).
func clonePipeline(p *mat.Pipeline) *mat.Pipeline {
	out := &mat.Pipeline{Name: p.Name, Start: p.Start, Fused: p.Fused}
	for _, st := range p.Stages {
		out.Stages = append(out.Stages, mat.Stage{
			Table:    st.Table.Clone(),
			Next:     st.Next,
			MissDrop: st.MissDrop,
		})
	}
	return out
}
