package fabric

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"manorm/internal/confluence"
	"manorm/internal/controlplane"
	"manorm/internal/faultconn"
	"manorm/internal/mat"
	"manorm/internal/openflow"
	"manorm/internal/switches"
	"manorm/internal/telemetry"
	"manorm/internal/trafficgen"
	"manorm/internal/usecases"
)

// testHarness is one fabric over real TCP with agent-backed switches and
// an optional fault-injected network.
type testHarness struct {
	f      *Fabric
	g      *usecases.GwLB
	src    *mat.Pipeline
	agents []*openflow.Agent
	net    *faultconn.Net
}

type harnessOpts struct {
	members int
	mode    PlacementMode
	quorum  int
	// loss is the ctl→switch silent frame-drop probability.
	loss float64
	// cutMember, when >= 0, forces one mid-frame cut on that member's
	// first connection after cutAfter frames.
	cutMember int
	cutAfter  int
	seed      int64
	// semantic arms the confluence verifier as the second opinion on the
	// syntactic commutation pre-check.
	semantic bool
}

func memberName(i int) string { return fmt.Sprintf("sw%d", i) }

// newHarness provisions n agents with the placement of a gwlb goto
// pipeline, serves them over TCP through fault-injected channels in both
// directions, and connects a fabric.
func newHarness(t *testing.T, o harnessOpts) *testHarness {
	t.Helper()
	if o.seed == 0 {
		o.seed = 1
	}
	if o.mode == "" {
		o.mode = Replicate
	}
	g := usecases.Generate(3, 3, o.seed)
	src, err := g.Build(usecases.RepGoto)
	if err != nil {
		t.Fatal(err)
	}
	placed, err := Place(src, o.members, o.mode)
	if err != nil {
		t.Fatal(err)
	}
	nf := faultconn.NewNet(o.seed)

	h := &testHarness{g: g, src: src, net: nf}
	specs := make([]MemberSpec, o.members)
	for i := 0; i < o.members; i++ {
		agent, err := openflow.NewAgent(switches.NewESwitch(), placed[i])
		if err != nil {
			t.Fatal(err)
		}
		h.agents = append(h.agents, agent)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ln.Close() })
		name := memberName(i)
		go func() {
			// Sequential sessions: after a cut the client redials and the
			// next accept picks up the fresh transport. The agent side is
			// fault-wrapped too so the switch→controller direction obeys
			// the same partition map.
			for {
				c, err := ln.Accept()
				if err != nil {
					return
				}
				fc := faultconn.Wrap(c, faultconn.Config{
					Seed: o.seed + 13, Net: nf, From: name, To: "ctl",
				})
				_ = agent.Serve(context.Background(), fc)
			}
		}()

		addr := ln.Addr().String()
		idx := i
		dials := 0
		specs[i] = MemberSpec{Name: name, Dial: func() (net.Conn, error) {
			raw, err := net.Dial("tcp", addr)
			if err != nil {
				return nil, err
			}
			fc := faultconn.Config{
				Seed:     o.seed + int64(idx)*101 + int64(dials)*1009,
				DropRate: o.loss,
				Net:      nf, From: "ctl", To: name,
			}
			if idx == o.cutMember && dials == 0 && o.cutAfter > 0 {
				fc.CutAfterWrites = o.cutAfter
				fc.CutMidFrame = true
			}
			dials++
			return faultconn.Wrap(raw, fc), nil
		}}
	}

	f, err := New(src, specs, Config{
		Mode:         o.mode,
		Quorum:       o.quorum,
		EpochTimeout: 2 * time.Second,
		RPCTimeout:   60 * time.Millisecond,
		Retry: openflow.RetryPolicy{
			Base: time.Millisecond, Max: 20 * time.Millisecond,
			Multiplier: 2, Jitter: 0.25, MaxRetries: 3, Seed: o.seed,
		},
		Seed:            o.seed,
		SemanticCommute: o.semantic,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	h.f = f
	return h
}

// plan builds the port-change plan for svc and records the new port in
// the harness's service config (so subsequent plans see current state).
func (h *testHarness) plan(t *testing.T, svc int, port uint16) []openflow.FlowMod {
	t.Helper()
	p, err := controlplane.PlanPortChange(h.g, usecases.RepGoto, svc, port)
	if err != nil {
		t.Fatal(err)
	}
	h.g.Services[svc].Port = port
	return p.Mods
}

// oracle returns the single-switch reference: the source pipeline with
// every mod in mods applied fault-free.
func oracle(t *testing.T, src *mat.Pipeline, mods []openflow.FlowMod) *mat.Pipeline {
	t.Helper()
	p := clonePipeline(src)
	for i := range mods {
		if err := openflow.ApplyToPipeline(p, &mods[i]); err != nil {
			t.Fatalf("oracle apply mod %d: %v", i, err)
		}
	}
	return p
}

func mustCanonical(t *testing.T, p *mat.Pipeline) string {
	t.Helper()
	s, err := canonicalPipeline(p)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestReplicateApplyReachesAllMembers(t *testing.T) {
	h := newHarness(t, harnessOpts{members: 3})
	ctx := context.Background()

	mods := h.plan(t, 0, 8080)
	seq, err := h.f.Apply(ctx, mods)
	if err != nil {
		t.Fatalf("apply: %v", err)
	}
	if seq != 1 || h.f.CommittedEpoch() != 1 {
		t.Fatalf("epoch = %d, committed = %d, want 1, 1", seq, h.f.CommittedEpoch())
	}
	want := mustCanonical(t, oracle(t, h.src, mods))
	for i, a := range h.agents {
		if got := mustCanonical(t, a.Pipeline()); got != want {
			t.Errorf("member %d state diverged from oracle", i)
		}
		if got := mustCanonical(t, h.f.Desired(i)); got != want {
			t.Errorf("member %d desired state diverged from oracle", i)
		}
	}
	if lag := h.f.EpochLag(); lag != 0 {
		t.Errorf("epoch lag = %d after clean commit", lag)
	}
}

func TestPartitionRoutesToOwners(t *testing.T) {
	h := newHarness(t, harnessOpts{members: 3, mode: Partition})
	ctx := context.Background()

	// The shards cover the entry stage exactly: entry counts sum to the
	// source's and every later stage is fully replicated.
	srcEntries := len(h.src.Stages[h.src.Start].Table.Entries)
	sum := 0
	for i := range h.agents {
		d := h.f.Desired(i)
		sum += len(d.Stages[d.Start].Table.Entries)
		for si := range d.Stages {
			if si == d.Start {
				continue
			}
			if got, want := len(d.Stages[si].Table.Entries), len(h.src.Stages[si].Table.Entries); got != want {
				t.Fatalf("member %d stage %d: %d entries, want %d (replicated)", i, si, got, want)
			}
		}
	}
	if sum != srcEntries {
		t.Fatalf("shard entry counts sum to %d, want %d", sum, srcEntries)
	}

	mods := h.plan(t, 1, 9443)
	if _, err := h.f.Apply(ctx, mods); err != nil {
		t.Fatalf("apply: %v", err)
	}
	pkts := trafficgen.GwLB(h.g, 128, 0.9, 7).Packets()
	rep, err := h.f.CheckConvergence(ctx, oracle(t, h.src, mods), pkts)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("partition fabric did not converge: %s\n%s", rep, rep.Witness)
	}
}

func TestQuorumLossFreezesAndReconcileHeals(t *testing.T) {
	h := newHarness(t, harnessOpts{members: 3}) // quorum = all 3
	ctx := context.Background()

	// Black-hole sw2 in both directions and push an epoch: it must
	// degrade, freeze the fabric and report the failed member.
	h.net.Split([]string{"ctl", "sw0", "sw1"}, []string{"sw2"})
	mods1 := h.plan(t, 0, 8080)
	if _, err := h.f.Apply(ctx, mods1); !errors.Is(err, ErrFrozen) {
		t.Fatalf("apply under quorum loss: err = %v, want QuorumError (ErrFrozen)", err)
	}
	// While frozen, writes are rejected outright — no fresh epoch, no
	// QuorumError, and the desired state is untouched.
	rejected, err := controlplane.PlanPortChange(h.g, usecases.RepGoto, 1, 8081)
	if err != nil {
		t.Fatal(err)
	}
	var qe *QuorumError
	if _, err := h.f.Apply(ctx, rejected.Mods); !errors.Is(err, ErrFrozen) {
		t.Fatalf("apply while frozen: err = %v, want ErrFrozen", err)
	} else if errors.As(err, &qe) {
		t.Fatal("second apply produced a fresh QuorumError; want bare frozen rejection")
	}
	if !h.f.Frozen() {
		t.Fatal("fabric not frozen after quorum loss")
	}
	if h.f.CommittedEpoch() != 0 {
		t.Fatalf("committed epoch = %d while degraded, want 0", h.f.CommittedEpoch())
	}

	// Heal the partition: reconcile resynchronizes sw2 (resend-queue
	// flush plus dump-and-diff) and unfreezes.
	h.net.Heal()
	if err := h.f.Reconcile(ctx); err != nil {
		t.Fatalf("reconcile: %v", err)
	}
	if h.f.Frozen() {
		t.Fatal("fabric still frozen after reconcile")
	}
	m2 := h.f.Members()[2]
	if m2.Lagging() || m2.Resyncs() == 0 {
		t.Fatalf("sw2 lagging=%v resyncs=%d after reconcile", m2.Lagging(), m2.Resyncs())
	}

	// Writes work again and the fabric converges to the oracle that saw
	// the frozen-epoch mods exactly once.
	mods3 := h.plan(t, 2, 8082)
	if _, err := h.f.Apply(ctx, mods3); err != nil {
		t.Fatalf("apply after heal: %v", err)
	}
	pkts := trafficgen.GwLB(h.g, 128, 0.9, 11).Packets()
	rep, err := h.f.CheckConvergence(ctx, oracleFromServices(t, h), pkts)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("fabric did not converge after heal: %s\n%s", rep, rep.Witness)
	}
}

// oracleFromServices rebuilds the reference pipeline from the harness's
// current service configuration — the state a fault-free single switch
// would hold after all applied intents.
func oracleFromServices(t *testing.T, h *testHarness) *mat.Pipeline {
	t.Helper()
	p, err := h.g.Build(usecases.RepGoto)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestFabricChurnUnderPartitionedChurn is the headline robustness run:
// seeded frame loss, one forced mid-frame cut and repeated single-member
// partitions during a port-change churn, with quorum 2 of 3 so the
// fabric keeps committing while the victim lags. After healing, every
// member must hold the identical normal form, exact desired state, and
// forward packet-for-packet like the fault-free oracle.
func TestFabricChurnUnderPartitionedChurn(t *testing.T) {
	h := newHarness(t, harnessOpts{
		members: 3, quorum: 2,
		loss:      0.01,
		cutMember: 0, cutAfter: 25,
		seed: 42,
	})
	ctx := context.Background()

	const updates = 9
	vrng := rand.New(rand.NewSource(43))
	for i := 0; i < updates; i++ {
		severed := ""
		if i%3 == 1 {
			// Partition a seeded victim's control link for this epoch —
			// alternately a full two-way split and the asymmetric fault
			// where the switch's replies vanish but the controller's
			// flow-mods still arrive (xid dedup absorbs the redelivery).
			severed = memberName(vrng.Intn(3))
			if i%2 == 0 {
				h.net.SeverDirection(severed, "ctl")
			} else {
				h.net.Split([]string{"ctl"}, []string{severed})
			}
		}
		mods := h.plan(t, i%len(h.g.Services), uint16(20000+i))
		if _, err := h.f.Apply(ctx, mods); err != nil {
			t.Fatalf("update %d (severed %q): %v", i, severed, err)
		}
		if severed != "" {
			h.net.Heal()
		}
	}
	if err := h.f.Reconcile(ctx); err != nil {
		t.Fatalf("final reconcile: %v", err)
	}

	pkts := trafficgen.GwLB(h.g, 256, 0.9, 5).Packets()
	rep, err := h.f.CheckConvergence(ctx, oracleFromServices(t, h), pkts)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("fabric did not converge: %s\n%s", rep, rep.Witness)
	}
	for _, mr := range rep.Members {
		if mr.Fingerprint != rep.Oracle {
			t.Errorf("%s fingerprint %s != oracle %s", mr.Name, mr.Fingerprint, rep.Oracle)
		}
	}

	// The faults actually happened: the cut forced a reconnect on sw0 and
	// the partitions forced at least one resync.
	if rc := h.f.Members()[0].Client().Stats().Counters["reconnects"]; rc == 0 {
		t.Error("forced cut produced no reconnect")
	}
	var resyncs int64
	for _, m := range h.f.Members() {
		resyncs += m.Resyncs()
	}
	if resyncs == 0 {
		t.Error("partitioned churn produced no resyncs")
	}
	if h.net.Drops() == 0 {
		t.Error("partition blackholed no frames")
	}
}

func TestApplyConcurrentCommutingSharesOneEpoch(t *testing.T) {
	h := newHarness(t, harnessOpts{members: 2})
	ctx := context.Background()

	// Three independently-planned updates on three distinct services:
	// pairwise commuting, so one epoch carries all three with per-member
	// interleaving.
	batches := [][]openflow.FlowMod{
		h.plan(t, 0, 7000),
		h.plan(t, 1, 7001),
		h.plan(t, 2, 7002),
	}
	epochs, conflicts, err := h.f.ApplyConcurrent(ctx, batches)
	if err != nil {
		t.Fatal(err)
	}
	if len(epochs) != 1 || conflicts != 0 {
		t.Fatalf("epochs = %v, conflicts = %d; want one epoch, zero conflicts", epochs, conflicts)
	}
	rep, err := h.f.CheckConvergence(ctx, oracleFromServices(t, h), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("commuting concurrent batches diverged: %s", rep)
	}
}

func TestApplyConcurrentSerializesConflicts(t *testing.T) {
	h := newHarness(t, harnessOpts{members: 2})
	ctx := context.Background()

	// An add and a delete of the same (table, match) pair do not commute:
	// the pre-check must flag them and serialize into two epochs, in
	// argument order, leaving the state unchanged.
	match := []openflow.MatchField{
		{Name: "ip_dst", Width: 32, Cell: mat.Exact(0x0A000001, 32)},
		{Name: "tcp_dst", Width: 16, Cell: mat.Exact(7777, 16)},
	}
	add := openflow.FlowMod{Command: openflow.FlowAdd, TableID: 0, Match: match,
		Actions: []openflow.ActionField{{Name: mat.GotoAttr, Width: 16, Value: 1}}}
	del := openflow.FlowMod{Command: openflow.FlowDelete, TableID: 0, Match: match}

	epochs, conflicts, err := h.f.ApplyConcurrent(ctx, [][]openflow.FlowMod{{add}, {del}})
	if err != nil {
		t.Fatal(err)
	}
	if len(epochs) != 2 || conflicts != 1 {
		t.Fatalf("epochs = %v, conflicts = %d; want two epochs, one conflict", epochs, conflicts)
	}
	want := mustCanonical(t, h.src)
	for i, a := range h.agents {
		if got := mustCanonical(t, a.Pipeline()); got != want {
			t.Errorf("member %d state changed by add+delete round trip", i)
		}
	}
}

// falseConflictBatches builds the canonical false-conflict pair on the
// harness pipeline: a port change on service 0 (delete exact + add exact)
// racing a wildcard-port catch-all add on the same VIP. The delete and
// the catch-all overlap under distinct keys, so the syntactic pre-check
// conservatively flags them — but every interleaving applies cleanly and
// renormalizes identically, so the semantic oracle refutes the conflict.
func falseConflictBatches(t *testing.T, h *testHarness, port uint16) [][]openflow.FlowMod {
	t.Helper()
	ca, err := controlplane.PlanCatchAll(h.g, usecases.RepGoto, 0)
	if err != nil {
		t.Fatal(err)
	}
	return [][]openflow.FlowMod{h.plan(t, 0, port), ca.Mods}
}

func TestApplyConcurrentSemanticOracleRefutesFalseConflict(t *testing.T) {
	h := newHarness(t, harnessOpts{members: 2, semantic: true})
	ctx := context.Background()

	batches := falseConflictBatches(t, h, 7100)
	epochs, conflicts, err := h.f.ApplyConcurrent(ctx, batches)
	if err != nil {
		t.Fatal(err)
	}
	if len(epochs) != 1 || conflicts != 0 {
		t.Fatalf("epochs = %v, conflicts = %d; want the refuted pair to share one conflict-free epoch", epochs, conflicts)
	}
	snap := h.f.Stats()
	if snap.Counters["commute_false_conflicts"] != 1 {
		t.Fatalf("commute_false_conflicts = %d, want 1", snap.Counters["commute_false_conflicts"])
	}
	if snap.Counters["commute_conflicts"] != 0 {
		t.Fatalf("commute_conflicts = %d, want 0 (the only conflict was refuted)", snap.Counters["commute_conflicts"])
	}

	want := oracle(t, h.src, append(append([]openflow.FlowMod{}, batches[0]...), batches[1]...))
	rep, err := h.f.CheckConvergence(ctx, want, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("refuted-conflict epoch diverged: %s", rep)
	}

	reg := telemetry.NewRegistry()
	h.f.RegisterTelemetry(reg)
	top := reg.Snapshot()
	if top.Gauges["commute.false_conflicts"] != 1 {
		t.Errorf("commute.false_conflicts gauge = %v, want 1", top.Gauges["commute.false_conflicts"])
	}
	if top.Gauges["commute.false_conflict_rate"] != 1 {
		t.Errorf("commute.false_conflict_rate gauge = %v, want 1", top.Gauges["commute.false_conflict_rate"])
	}
}

func TestApplyConcurrentSyntacticOnlySerializesFalseConflict(t *testing.T) {
	// Control run: without the semantic oracle the same pair is
	// conservatively serialized into two epochs and counted as a conflict.
	h := newHarness(t, harnessOpts{members: 2})
	ctx := context.Background()

	epochs, conflicts, err := h.f.ApplyConcurrent(ctx, falseConflictBatches(t, h, 7100))
	if err != nil {
		t.Fatal(err)
	}
	if len(epochs) != 2 || conflicts != 1 {
		t.Fatalf("epochs = %v, conflicts = %d; want two epochs, one conflict", epochs, conflicts)
	}
	if fc := h.f.Stats().Counters["commute_false_conflicts"]; fc != 0 {
		t.Fatalf("commute_false_conflicts = %d without the oracle, want 0", fc)
	}
}

// TestConfluenceVerifierConcurrentWithChurn drives the confluence
// verifier from several goroutines against snapshots of the fabric's
// desired state while the fabric itself churns port changes (with the
// semantic oracle armed, so the verifier also runs inside the epoch
// path). Run under -race this pins the verifier's freedom from shared
// mutable state.
func TestConfluenceVerifierConcurrentWithChurn(t *testing.T) {
	h := newHarness(t, harnessOpts{members: 2, semantic: true})
	ctx := context.Background()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				base := h.f.Desired(0)
				match := []openflow.MatchField{
					{Name: "ip_dst", Width: 32, Cell: mat.Exact(uint64(0x0B000000+w*256+i%8), 32)},
					{Name: "tcp_dst", Width: 16, Cell: mat.Exact(uint64(8000+w), 16)},
				}
				add := openflow.FlowMod{Command: openflow.FlowAdd, TableID: 0, Match: match,
					Actions: []openflow.ActionField{{Name: mat.GotoAttr, Width: 16, Value: 1}}}
				del := openflow.FlowMod{Command: openflow.FlowDelete, TableID: 0, Match: match}
				v, err := confluence.Check(base, [][]openflow.FlowMod{{add}, {del}}, confluence.Options{Seed: int64(w + 1), Compensation: true})
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				if v.Confluent {
					t.Errorf("worker %d: add/delete race of one key judged confluent", w)
					return
				}
			}
		}(w)
	}
	for round := 0; round < 6; round++ {
		port := uint16(9100 + round)
		svc := round % len(h.g.Services)
		if _, err := h.f.Apply(ctx, h.plan(t, svc, port)); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := h.f.ApplyConcurrent(ctx, falseConflictBatches(t, h, 9900)); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	rep, err := h.f.CheckConvergence(ctx, h.f.Desired(0), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("fabric diverged under concurrent verification: %s", rep)
	}
}

func TestFabricTelemetry(t *testing.T) {
	h := newHarness(t, harnessOpts{members: 2})
	ctx := context.Background()
	if _, err := h.f.Apply(ctx, h.plan(t, 0, 6000)); err != nil {
		t.Fatal(err)
	}

	snap := h.f.Stats()
	if snap.Counters["epochs_committed"] != 1 {
		t.Errorf("epochs_committed = %d, want 1", snap.Counters["epochs_committed"])
	}
	if _, ok := snap.Providers["sw0"]; !ok {
		t.Error("per-member snapshot missing")
	}

	reg := telemetry.NewRegistry()
	h.f.RegisterTelemetry(reg)
	top := reg.Snapshot()
	for _, g := range []string{"epoch", "committed_epoch", "epoch_lag", "frozen", "lagging_members", "resyncs"} {
		if _, ok := top.Gauges[g]; !ok {
			t.Errorf("gauge %s not registered", g)
		}
	}
	sub, ok := top.Providers["sw1"]
	if !ok {
		t.Fatal("member sub-registry missing")
	}
	for _, g := range []string{"resend_queue_depth", "reconnects", "backoff_attempts", "acked_epoch"} {
		if _, ok := sub.Gauges[g]; !ok {
			t.Errorf("member gauge %s not registered", g)
		}
	}
	if got := top.Gauges["epoch"]; got != 1 {
		t.Errorf("epoch gauge = %v, want 1", got)
	}
}
