package fabric

import (
	"testing"

	"manorm/internal/mat"
	"manorm/internal/openflow"
)

func fm(cmd openflow.FlowModCommand, table uint8, ipDst uint64, port uint64) openflow.FlowMod {
	return openflow.FlowMod{
		Command: cmd,
		TableID: table,
		Match: []openflow.MatchField{
			{Name: "ip_dst", Width: 32, Cell: mat.Exact(ipDst, 32)},
			{Name: "tcp_dst", Width: 16, Cell: mat.Exact(port, 16)},
		},
	}
}

func TestCommutes(t *testing.T) {
	a := fm(openflow.FlowAdd, 0, 1, 80)
	cases := []struct {
		name string
		b    openflow.FlowMod
		want bool
	}{
		{"different tables", fm(openflow.FlowAdd, 1, 1, 80), true},
		{"same table different key", fm(openflow.FlowAdd, 0, 2, 80), true},
		{"same key add/delete", fm(openflow.FlowDelete, 0, 1, 80), false},
		{"same key add/add", fm(openflow.FlowAdd, 0, 1, 80), false},
	}
	for _, tc := range cases {
		if got := Commutes(&a, &tc.b); got != tc.want {
			t.Errorf("%s: Commutes = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// fmp builds a mod whose ip_dst is a prefix region, for overlap cases.
func fmp(cmd openflow.FlowModCommand, ipBits uint64, plen uint8, port mat.Cell) openflow.FlowMod {
	return openflow.FlowMod{
		Command: cmd,
		TableID: 0,
		Match: []openflow.MatchField{
			{Name: "ip_dst", Width: 32, Cell: mat.Cell{Bits: ipBits, PLen: plen}},
			{Name: "tcp_dst", Width: 16, Cell: port},
		},
	}
}

func TestCommutesOverlap(t *testing.T) {
	exactAdd := fm(openflow.FlowAdd, 0, 1, 80)
	cases := []struct {
		name string
		a, b openflow.FlowMod
		want bool
	}{
		{
			// A delete whose wildcard port region covers the add's key: the
			// rows are distinct, but a packet can see both — conservative
			// conflict (semantically refutable).
			"add vs overlapping wildcard delete",
			exactAdd, fmp(openflow.FlowDelete, 1, 32, mat.Any()),
			false,
		},
		{
			// Two adds in the same overlapping region at different total
			// specificity: most-specific-wins orders them deterministically.
			"overlapping adds, different specificity",
			exactAdd, fmp(openflow.FlowAdd, 1, 32, mat.Any()),
			true,
		},
		{
			// Equal-specificity overlapping adds make matching ambiguous —
			// never allowed to share an interleaved epoch.
			"overlapping adds, equal specificity",
			fmp(openflow.FlowAdd, 1, 32, mat.Any()),
			fmp(openflow.FlowAdd, 0, 16, mat.Exact(80, 16)),
			false,
		},
		{
			"disjoint prefixes",
			fmp(openflow.FlowAdd, 1<<31, 1, mat.Any()),
			fmp(openflow.FlowDelete, 0, 1, mat.Any()),
			true,
		},
		{
			// A mod naming only ip_dst leaves tcp_dst as Any — it overlaps
			// the exact add's region.
			"omitted field is a wildcard",
			exactAdd,
			openflow.FlowMod{Command: openflow.FlowModify, TableID: 0, Match: []openflow.MatchField{
				{Name: "ip_dst", Width: 32, Cell: mat.Exact(1, 32)},
			}},
			false,
		},
	}
	for _, tc := range cases {
		if got := Commutes(&tc.a, &tc.b); got != tc.want {
			t.Errorf("%s: Commutes = %v, want %v", tc.name, got, tc.want)
		}
		if got := Commutes(&tc.b, &tc.a); got != tc.want {
			t.Errorf("%s (swapped): Commutes = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestMatchKeyIsFieldOrderFree(t *testing.T) {
	a := fm(openflow.FlowAdd, 0, 1, 80)
	b := a
	b.Match = []openflow.MatchField{a.Match[1], a.Match[0]}
	if MatchKey(&a) != MatchKey(&b) {
		t.Fatalf("match key depends on wire field order: %q vs %q", MatchKey(&a), MatchKey(&b))
	}
}

func TestBatchConflictsLocatesPairs(t *testing.T) {
	batchA := []openflow.FlowMod{fm(openflow.FlowDelete, 0, 1, 80), fm(openflow.FlowAdd, 0, 1, 8080)}
	batchB := []openflow.FlowMod{fm(openflow.FlowDelete, 0, 1, 8080), fm(openflow.FlowAdd, 0, 1, 9090)}
	got := BatchConflicts(batchA, batchB)
	// batchA's add of (1, 8080) collides with batchB's delete of it.
	if len(got) != 1 || got[0] != (ConflictPair{I: 1, J: 0}) {
		t.Fatalf("conflicts = %+v, want [{1 0}]", got)
	}
}

func TestPlanWavesGroupsCommutingBatches(t *testing.T) {
	batches := [][]openflow.FlowMod{
		{fm(openflow.FlowAdd, 0, 1, 80)},    // conflicts with batch 2
		{fm(openflow.FlowAdd, 0, 2, 80)},    // commutes with everything else
		{fm(openflow.FlowDelete, 0, 1, 80)}, // conflicts with batch 0
		{fm(openflow.FlowAdd, 1, 1, 80)},    // different table: commutes
	}
	waves, conflicts := planWaves(batches, func(i, j int) bool {
		return syntacticCommute(batches[i], batches[j])
	})
	if conflicts != 1 {
		t.Fatalf("conflicts = %d, want 1", conflicts)
	}
	if len(waves) != 2 {
		t.Fatalf("waves = %v, want 2 waves", waves)
	}
	// Greedy placement: batches 0, 1, 3 share the first wave; the
	// conflicting batch 2 is serialized after.
	if len(waves[0]) != 3 || len(waves[1]) != 1 || waves[1][0] != 2 {
		t.Fatalf("waves = %v, want [[0 1 3] [2]]", waves)
	}
}
