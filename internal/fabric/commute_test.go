package fabric

import (
	"testing"

	"manorm/internal/mat"
	"manorm/internal/openflow"
)

func fm(cmd openflow.FlowModCommand, table uint8, ipDst uint64, port uint64) openflow.FlowMod {
	return openflow.FlowMod{
		Command: cmd,
		TableID: table,
		Match: []openflow.MatchField{
			{Name: "ip_dst", Width: 32, Cell: mat.Exact(ipDst, 32)},
			{Name: "tcp_dst", Width: 16, Cell: mat.Exact(port, 16)},
		},
	}
}

func TestCommutes(t *testing.T) {
	a := fm(openflow.FlowAdd, 0, 1, 80)
	cases := []struct {
		name string
		b    openflow.FlowMod
		want bool
	}{
		{"different tables", fm(openflow.FlowAdd, 1, 1, 80), true},
		{"same table different key", fm(openflow.FlowAdd, 0, 2, 80), true},
		{"same key add/delete", fm(openflow.FlowDelete, 0, 1, 80), false},
		{"same key add/add", fm(openflow.FlowAdd, 0, 1, 80), false},
	}
	for _, tc := range cases {
		if got := Commutes(&a, &tc.b); got != tc.want {
			t.Errorf("%s: Commutes = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestMatchKeyIsFieldOrderFree(t *testing.T) {
	a := fm(openflow.FlowAdd, 0, 1, 80)
	b := a
	b.Match = []openflow.MatchField{a.Match[1], a.Match[0]}
	if MatchKey(&a) != MatchKey(&b) {
		t.Fatalf("match key depends on wire field order: %q vs %q", MatchKey(&a), MatchKey(&b))
	}
}

func TestBatchConflictsLocatesPairs(t *testing.T) {
	batchA := []openflow.FlowMod{fm(openflow.FlowDelete, 0, 1, 80), fm(openflow.FlowAdd, 0, 1, 8080)}
	batchB := []openflow.FlowMod{fm(openflow.FlowDelete, 0, 1, 8080), fm(openflow.FlowAdd, 0, 1, 9090)}
	got := BatchConflicts(batchA, batchB)
	// batchA's add of (1, 8080) collides with batchB's delete of it.
	if len(got) != 1 || got[0] != (ConflictPair{I: 1, J: 0}) {
		t.Fatalf("conflicts = %+v, want [{1 0}]", got)
	}
}

func TestPlanWavesGroupsCommutingBatches(t *testing.T) {
	batches := [][]openflow.FlowMod{
		{fm(openflow.FlowAdd, 0, 1, 80)},    // conflicts with batch 2
		{fm(openflow.FlowAdd, 0, 2, 80)},    // commutes with everything else
		{fm(openflow.FlowDelete, 0, 1, 80)}, // conflicts with batch 0
		{fm(openflow.FlowAdd, 1, 1, 80)},    // different table: commutes
	}
	waves, conflicts := planWaves(batches)
	if conflicts != 1 {
		t.Fatalf("conflicts = %d, want 1", conflicts)
	}
	if len(waves) != 2 {
		t.Fatalf("waves = %v, want 2 waves", waves)
	}
	// Greedy placement: batches 0, 1, 3 share the first wave; the
	// conflicting batch 2 is serialized after.
	if len(waves[0]) != 3 || len(waves[1]) != 1 || waves[1][0] != 2 {
		t.Fatalf("waves = %v, want [[0 1 3] [2]]", waves)
	}
}
