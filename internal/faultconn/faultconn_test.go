package faultconn

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// sinkConn is a minimal net.Conn that records delivered writes.
type sinkConn struct {
	net.Conn
	wrote  [][]byte
	closed bool
}

func (s *sinkConn) Write(p []byte) (int, error) {
	s.wrote = append(s.wrote, append([]byte(nil), p...))
	return len(p), nil
}
func (s *sinkConn) Close() error { s.closed = true; return nil }

// srcConn is a minimal net.Conn serving a fixed byte stream.
type srcConn struct {
	net.Conn
	buf []byte
}

func (s *srcConn) Read(p []byte) (int, error) {
	if len(s.buf) == 0 {
		return 0, io.EOF
	}
	n := copy(p, s.buf)
	s.buf = s.buf[n:]
	return n, nil
}

func dropSchedule(seed int64, rate float64, frames int) []bool {
	sink := &sinkConn{}
	c := Wrap(sink, Config{Seed: seed, DropRate: rate})
	out := make([]bool, frames)
	for i := 0; i < frames; i++ {
		before := len(sink.wrote)
		if _, err := c.Write([]byte{byte(i)}); err != nil {
			panic(err)
		}
		out[i] = len(sink.wrote) == before
	}
	return out
}

func TestDropScheduleIsSeedDeterministic(t *testing.T) {
	a := dropSchedule(42, 0.3, 500)
	b := dropSchedule(42, 0.3, 500)
	dropped := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("frame %d: schedules diverged", i)
		}
		if a[i] {
			dropped++
		}
	}
	if dropped < 100 || dropped > 200 {
		t.Errorf("dropped %d/500 at rate 0.3, far from expectation", dropped)
	}
	c := dropSchedule(43, 0.3, 500)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Errorf("different seeds produced identical schedules")
	}
}

func TestReadChunkingReassembles(t *testing.T) {
	payload := make([]byte, 300)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	c := Wrap(&srcConn{buf: append([]byte(nil), payload...)}, Config{Seed: 9, MaxReadChunk: 5})
	var got []byte
	buf := make([]byte, 64)
	for {
		n, err := c.Read(buf)
		if n > 5 {
			t.Fatalf("read returned %d bytes, cap is 5", n)
		}
		got = append(got, buf[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("chunked reads corrupted the stream")
	}
	if c.Stats().Reads() == 0 {
		t.Errorf("read counter not advanced")
	}
}

func TestCutAfterWrites(t *testing.T) {
	sink := &sinkConn{}
	c := Wrap(sink, Config{Seed: 1, CutAfterWrites: 3})
	for i := 0; i < 2; i++ {
		if _, err := c.Write([]byte("frame")); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if _, err := c.Write([]byte("frame")); !errors.Is(err, ErrInjectedCut) {
		t.Fatalf("3rd write err = %v, want ErrInjectedCut", err)
	}
	if !sink.closed {
		t.Errorf("cut did not close the transport")
	}
	// Every later write fails too.
	if _, err := c.Write([]byte("after")); !errors.Is(err, ErrInjectedCut) {
		t.Fatalf("post-cut write err = %v, want ErrInjectedCut", err)
	}
	if got := c.Stats().Cuts(); got != 1 {
		t.Errorf("cuts = %d, want 1", got)
	}
	if got := len(sink.wrote); got != 2 {
		t.Errorf("delivered %d frames before the cut, want 2", got)
	}
}

func TestCutMidFrameDeliversPrefix(t *testing.T) {
	sink := &sinkConn{}
	c := Wrap(sink, Config{Seed: 5, CutAfterWrites: 1, CutMidFrame: true})
	frame := []byte("0123456789")
	if _, err := c.Write(frame); !errors.Is(err, ErrInjectedCut) {
		t.Fatalf("err = %v, want ErrInjectedCut", err)
	}
	if len(sink.wrote) != 1 {
		t.Fatalf("mid-frame cut delivered %d writes, want 1 prefix", len(sink.wrote))
	}
	prefix := sink.wrote[0]
	if len(prefix) == 0 || len(prefix) >= len(frame) {
		t.Fatalf("prefix length %d, want in [1, %d)", len(prefix), len(frame))
	}
	if !bytes.Equal(prefix, frame[:len(prefix)]) {
		t.Fatalf("prefix content mismatch")
	}
}

func TestLatencyAndJitterDelayWrites(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	sink := &sinkConn{}
	c := Wrap(sink, Config{Seed: 2, Latency: 10 * time.Millisecond, Jitter: 5 * time.Millisecond})
	start := time.Now()
	const frames = 5
	for i := 0; i < frames; i++ {
		if _, err := c.Write([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	if elapsed < frames*10*time.Millisecond {
		t.Errorf("%d delayed writes took %v, want >= %v", frames, elapsed, frames*10*time.Millisecond)
	}
	if got := c.Stats().Writes(); got != frames {
		t.Errorf("writes = %d, want %d", got, frames)
	}
}

// TestFullDuplexOverPipe exercises the wrapper on a real bidirectional
// transport: reader chunking on one side must not perturb the write-side
// fault schedule (independent RNG streams).
func TestFullDuplexOverPipe(t *testing.T) {
	a, b := net.Pipe()
	fa := Wrap(a, Config{Seed: 77, MaxReadChunk: 3})
	done := make(chan []byte, 1)
	go func() {
		var got []byte
		buf := make([]byte, 16)
		for len(got) < 40 {
			n, err := fa.Read(buf)
			if err != nil {
				break
			}
			got = append(got, buf[:n]...)
		}
		done <- got
	}()
	want := make([]byte, 40)
	for i := range want {
		want[i] = byte(i)
	}
	for i := 0; i < len(want); i += 8 {
		if _, err := b.Write(want[i : i+8]); err != nil {
			t.Fatal(err)
		}
	}
	got := <-done
	if !bytes.Equal(got, want) {
		t.Fatalf("duplex stream corrupted: got %v", got)
	}
	a.Close()
	b.Close()
}
