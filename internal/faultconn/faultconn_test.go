package faultconn

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// sinkConn is a minimal net.Conn that records delivered writes.
type sinkConn struct {
	net.Conn
	wrote  [][]byte
	closed bool
}

func (s *sinkConn) Write(p []byte) (int, error) {
	s.wrote = append(s.wrote, append([]byte(nil), p...))
	return len(p), nil
}
func (s *sinkConn) Close() error { s.closed = true; return nil }

// srcConn is a minimal net.Conn serving a fixed byte stream.
type srcConn struct {
	net.Conn
	buf []byte
}

func (s *srcConn) Read(p []byte) (int, error) {
	if len(s.buf) == 0 {
		return 0, io.EOF
	}
	n := copy(p, s.buf)
	s.buf = s.buf[n:]
	return n, nil
}

func dropSchedule(seed int64, rate float64, frames int) []bool {
	sink := &sinkConn{}
	c := Wrap(sink, Config{Seed: seed, DropRate: rate})
	out := make([]bool, frames)
	for i := 0; i < frames; i++ {
		before := len(sink.wrote)
		if _, err := c.Write([]byte{byte(i)}); err != nil {
			panic(err)
		}
		out[i] = len(sink.wrote) == before
	}
	return out
}

func TestDropScheduleIsSeedDeterministic(t *testing.T) {
	a := dropSchedule(42, 0.3, 500)
	b := dropSchedule(42, 0.3, 500)
	dropped := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("frame %d: schedules diverged", i)
		}
		if a[i] {
			dropped++
		}
	}
	if dropped < 100 || dropped > 200 {
		t.Errorf("dropped %d/500 at rate 0.3, far from expectation", dropped)
	}
	c := dropSchedule(43, 0.3, 500)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Errorf("different seeds produced identical schedules")
	}
}

func TestReadChunkingReassembles(t *testing.T) {
	payload := make([]byte, 300)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	c := Wrap(&srcConn{buf: append([]byte(nil), payload...)}, Config{Seed: 9, MaxReadChunk: 5})
	var got []byte
	buf := make([]byte, 64)
	for {
		n, err := c.Read(buf)
		if n > 5 {
			t.Fatalf("read returned %d bytes, cap is 5", n)
		}
		got = append(got, buf[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("chunked reads corrupted the stream")
	}
	if c.Stats().Reads() == 0 {
		t.Errorf("read counter not advanced")
	}
}

func TestCutAfterWrites(t *testing.T) {
	sink := &sinkConn{}
	c := Wrap(sink, Config{Seed: 1, CutAfterWrites: 3})
	for i := 0; i < 2; i++ {
		if _, err := c.Write([]byte("frame")); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if _, err := c.Write([]byte("frame")); !errors.Is(err, ErrInjectedCut) {
		t.Fatalf("3rd write err = %v, want ErrInjectedCut", err)
	}
	if !sink.closed {
		t.Errorf("cut did not close the transport")
	}
	// Every later write fails too.
	if _, err := c.Write([]byte("after")); !errors.Is(err, ErrInjectedCut) {
		t.Fatalf("post-cut write err = %v, want ErrInjectedCut", err)
	}
	if got := c.Stats().Cuts(); got != 1 {
		t.Errorf("cuts = %d, want 1", got)
	}
	if got := len(sink.wrote); got != 2 {
		t.Errorf("delivered %d frames before the cut, want 2", got)
	}
}

func TestCutMidFrameDeliversPrefix(t *testing.T) {
	sink := &sinkConn{}
	c := Wrap(sink, Config{Seed: 5, CutAfterWrites: 1, CutMidFrame: true})
	frame := []byte("0123456789")
	if _, err := c.Write(frame); !errors.Is(err, ErrInjectedCut) {
		t.Fatalf("err = %v, want ErrInjectedCut", err)
	}
	if len(sink.wrote) != 1 {
		t.Fatalf("mid-frame cut delivered %d writes, want 1 prefix", len(sink.wrote))
	}
	prefix := sink.wrote[0]
	if len(prefix) == 0 || len(prefix) >= len(frame) {
		t.Fatalf("prefix length %d, want in [1, %d)", len(prefix), len(frame))
	}
	if !bytes.Equal(prefix, frame[:len(prefix)]) {
		t.Fatalf("prefix content mismatch")
	}
}

func TestLatencyAndJitterDelayWrites(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	sink := &sinkConn{}
	c := Wrap(sink, Config{Seed: 2, Latency: 10 * time.Millisecond, Jitter: 5 * time.Millisecond})
	start := time.Now()
	const frames = 5
	for i := 0; i < frames; i++ {
		if _, err := c.Write([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	if elapsed < frames*10*time.Millisecond {
		t.Errorf("%d delayed writes took %v, want >= %v", frames, elapsed, frames*10*time.Millisecond)
	}
	if got := c.Stats().Writes(); got != frames {
		t.Errorf("writes = %d, want %d", got, frames)
	}
}

// TestFullDuplexOverPipe exercises the wrapper on a real bidirectional
// transport: reader chunking on one side must not perturb the write-side
// fault schedule (independent RNG streams).
func TestFullDuplexOverPipe(t *testing.T) {
	a, b := net.Pipe()
	fa := Wrap(a, Config{Seed: 77, MaxReadChunk: 3})
	done := make(chan []byte, 1)
	go func() {
		var got []byte
		buf := make([]byte, 16)
		for len(got) < 40 {
			n, err := fa.Read(buf)
			if err != nil {
				break
			}
			got = append(got, buf[:n]...)
		}
		done <- got
	}()
	want := make([]byte, 40)
	for i := range want {
		want[i] = byte(i)
	}
	for i := 0; i < len(want); i += 8 {
		if _, err := b.Write(want[i : i+8]); err != nil {
			t.Fatal(err)
		}
	}
	got := <-done
	if !bytes.Equal(got, want) {
		t.Fatalf("duplex stream corrupted: got %v", got)
	}
	a.Close()
	b.Close()
}

func TestCutMidFrameSurfacesPartialWrite(t *testing.T) {
	sink := &sinkConn{}
	c := Wrap(sink, Config{Seed: 5, CutAfterWrites: 1, CutMidFrame: true})
	frame := []byte("0123456789")
	n, err := c.Write(frame)
	if !errors.Is(err, ErrInjectedCut) {
		t.Fatalf("err = %v, want ErrInjectedCut", err)
	}
	// The torn frame is visible three ways: the Write result reports the
	// delivered prefix, and the stats carry both the event and the byte
	// count — a mid-frame cut can never look like a clean boundary cut.
	if n == 0 || n >= len(frame) {
		t.Fatalf("partial write returned n = %d, want in [1, %d)", n, len(frame))
	}
	if got := c.Stats().PartialWrites(); got != 1 {
		t.Errorf("partial writes = %d, want 1", got)
	}
	if got := c.Stats().PartialWriteBytes(); got != int64(n) {
		t.Errorf("partial write bytes = %d, want %d", got, n)
	}
	if len(sink.wrote) != 1 || len(sink.wrote[0]) != n {
		t.Fatalf("wire saw %d bytes, Write reported %d", len(sink.wrote[0]), n)
	}
}

func TestFrameBoundaryCutLeavesNoPartialBytes(t *testing.T) {
	sink := &sinkConn{}
	c := Wrap(sink, Config{Seed: 5, CutAfterWrites: 2})
	if _, err := c.Write([]byte("first")); err != nil {
		t.Fatal(err)
	}
	n, err := c.Write([]byte("second"))
	if !errors.Is(err, ErrInjectedCut) || n != 0 {
		t.Fatalf("boundary cut: n = %d, err = %v, want 0, ErrInjectedCut", n, err)
	}
	if got := c.Stats().PartialWrites(); got != 0 {
		t.Errorf("boundary cut recorded %d partial writes, want 0", got)
	}
	if len(sink.wrote) != 1 {
		t.Fatalf("wire saw %d frames, want only the pre-cut frame", len(sink.wrote))
	}
}

func TestNetPartitionBlackholesDirectionally(t *testing.T) {
	net := NewNet(1)
	sinkAB := &sinkConn{}
	sinkBA := &sinkConn{}
	ab := Wrap(sinkAB, Config{Net: net, From: "a", To: "b"})
	ba := Wrap(sinkBA, Config{Net: net, From: "b", To: "a"})

	// Connected: both directions deliver.
	if _, err := ab.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := ba.Write([]byte("y")); err != nil {
		t.Fatal(err)
	}
	if len(sinkAB.wrote) != 1 || len(sinkBA.wrote) != 1 {
		t.Fatalf("healthy net dropped frames")
	}

	// Asymmetric fault: a -> b severed, b -> a alive.
	net.SeverDirection("a", "b")
	if n, err := ab.Write([]byte("gone")); err != nil || n != 4 {
		t.Fatalf("partitioned write: n = %d, err = %v, want silent success", n, err)
	}
	if _, err := ba.Write([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	if len(sinkAB.wrote) != 1 {
		t.Errorf("severed direction delivered a frame")
	}
	if len(sinkBA.wrote) != 2 {
		t.Errorf("healthy direction lost a frame")
	}
	if got := ab.Stats().PartitionDrops(); got != 1 {
		t.Errorf("conn partition drops = %d, want 1", got)
	}
	if got := net.Drops(); got != 1 {
		t.Errorf("net drops = %d, want 1", got)
	}

	// Heal restores delivery.
	net.Heal()
	if _, err := ab.Write([]byte("back")); err != nil {
		t.Fatal(err)
	}
	if len(sinkAB.wrote) != 2 {
		t.Errorf("healed direction still blackholed")
	}
}

func TestNetSplitSeversAcrossGroupsOnly(t *testing.T) {
	net := NewNet(7)
	net.Split([]string{"s0", "s1"}, []string{"s2", "ctl"})
	cases := []struct {
		from, to string
		severed  bool
	}{
		{"s0", "s1", false}, {"s1", "s0", false}, // same group
		{"s2", "ctl", false}, {"ctl", "s2", false},
		{"s0", "s2", true}, {"s2", "s0", true}, // across the split
		{"ctl", "s1", true}, {"s1", "ctl", true},
	}
	for _, c := range cases {
		if got := net.Severed(c.from, c.to); got != c.severed {
			t.Errorf("Severed(%s, %s) = %v, want %v", c.from, c.to, got, c.severed)
		}
	}
	net.HealLink("s0", "s2")
	if net.Severed("s0", "s2") || net.Severed("s2", "s0") {
		t.Errorf("HealLink left the link severed")
	}
	if net.Severed("ctl", "s1") != true {
		t.Errorf("HealLink healed an unrelated link")
	}
}

func TestRandomSplitIsSeedDeterministic(t *testing.T) {
	eps := []string{"a", "b", "c", "d", "e"}
	v1 := NewNet(11).RandomSplit(eps)
	v2 := NewNet(11).RandomSplit(eps)
	if len(v1) != len(v2) {
		t.Fatalf("victim group sizes differ: %v vs %v", v1, v2)
	}
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatalf("victim groups differ: %v vs %v", v1, v2)
		}
	}
	if len(v1) == 0 || len(v1) >= len(eps) {
		t.Fatalf("victim group size %d out of range", len(v1))
	}
}
