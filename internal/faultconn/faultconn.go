// Package faultconn wraps a net.Conn with seeded, deterministic fault
// injection: added latency and jitter, message (frame) drops, chunked
// partial reads, forced mid-stream disconnects, and — through the Net
// partition domain — whole-fabric splits and asymmetric-direction
// blackholes shared by any number of connections. It is the adversary
// the resilient control channel (internal/openflow) and the fabric
// controller (internal/fabric) are tested and measured against.
//
// Faults are frame-aligned by design: the wrapped protocol writes one
// frame per Write call, so dropping an entire Write models message loss
// on a lossy channel without desynchronizing the peer's framing — the
// same abstraction level at which a real controller sees loss (an
// OpenFlow message that never arrives), while forced cuts exercise the
// desynchronization paths too. All randomness is drawn from per-direction
// PRNGs seeded from Config.Seed, so a fixed seed yields a reproducible
// fault schedule: for a protocol whose write sequence is deterministic,
// drop decisions, delays and cut points are identical across runs.
package faultconn

import (
	"errors"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjectedCut reports a forced mid-stream disconnect.
var ErrInjectedCut = errors.New("faultconn: injected disconnect")

// Config selects the faults to inject. The zero value injects nothing.
type Config struct {
	// Seed drives the fault schedule. Write-side and read-side draws use
	// independent streams derived from it, so concurrent readers do not
	// perturb the write-side (counter-relevant) schedule.
	Seed int64
	// DropRate is the probability that one Write call (one protocol
	// frame) is silently discarded.
	DropRate float64
	// Latency delays every delivered write; Jitter adds a uniform draw
	// from [0, Jitter) on top.
	Latency time.Duration
	Jitter  time.Duration
	// MaxReadChunk caps the bytes returned per Read at a random size in
	// [1, MaxReadChunk], forcing the peer to reassemble frames from
	// partial reads. 0 disables chunking.
	MaxReadChunk int
	// CutAfterWrites force-closes the transport when the Nth delivered
	// or dropped Write is reached (0 = never). With CutMidFrame the cut
	// lands mid-frame: a prefix of the frame is delivered first, so the
	// peer sees a truncated read. Without it the cut lands on the frame
	// boundary — the Nth frame (and everything after) never reaches the
	// wire at all.
	CutAfterWrites int
	CutMidFrame    bool

	// Net, From, To tie the connection into a fabric-wide partition
	// domain: while Net reports the From -> To direction severed, writes
	// are silently discarded (counted in both the conn's and the Net's
	// drop counters). A nil Net disables partition faults.
	Net      *Net
	From, To string
}

// Stats counts injected faults; fields are read with atomic loads via the
// accessor methods.
type Stats struct {
	writes         int64
	dropped        int64
	cuts           int64
	reads          int64
	partitionDrops int64
	partialWrites  int64
	partialBytes   int64
}

// Writes returns Write calls observed (delivered + dropped).
func (s *Stats) Writes() int64 { return atomic.LoadInt64(&s.writes) }

// Dropped returns frames silently discarded by loss injection.
func (s *Stats) Dropped() int64 { return atomic.LoadInt64(&s.dropped) }

// Cuts returns forced disconnects (0 or 1 per conn).
func (s *Stats) Cuts() int64 { return atomic.LoadInt64(&s.cuts) }

// Reads returns Read calls observed.
func (s *Stats) Reads() int64 { return atomic.LoadInt64(&s.reads) }

// PartitionDrops returns frames discarded because the conn's direction
// was severed in its partition Net.
func (s *Stats) PartitionDrops() int64 { return atomic.LoadInt64(&s.partitionDrops) }

// PartialWrites returns forced cuts that landed mid-frame (a truncated
// prefix reached the wire); PartialWriteBytes returns how many bytes of
// the cut frame were delivered. Together they make a mid-frame cut
// visible to the harness: the write sequence cannot silently pretend the
// torn frame never touched the wire.
func (s *Stats) PartialWrites() int64 { return atomic.LoadInt64(&s.partialWrites) }

// PartialWriteBytes returns the total bytes of torn frames delivered
// before a mid-frame cut.
func (s *Stats) PartialWriteBytes() int64 { return atomic.LoadInt64(&s.partialBytes) }

// Conn is a fault-injecting net.Conn. Deadlines, addresses and Close pass
// through to the wrapped transport.
type Conn struct {
	net.Conn
	cfg   Config
	stats *Stats

	wmu    sync.Mutex
	wrng   *rand.Rand
	writes int
	cut    bool

	rmu  sync.Mutex
	rrng *rand.Rand
}

// Wrap decorates a transport with the configured faults.
func Wrap(c net.Conn, cfg Config) *Conn {
	return &Conn{
		Conn:  c,
		cfg:   cfg,
		stats: &Stats{},
		wrng:  rand.New(rand.NewSource(cfg.Seed)),
		rrng:  rand.New(rand.NewSource(cfg.Seed ^ 0x5DEECE66D)),
	}
}

// Stats exposes the fault counters (shared with the connection; safe to
// read concurrently).
func (c *Conn) Stats() *Stats { return c.stats }

// Write delivers, delays, drops, or cuts one outgoing frame.
func (c *Conn) Write(p []byte) (int, error) {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.cut {
		return 0, ErrInjectedCut
	}
	c.writes++
	atomic.AddInt64(&c.stats.writes, 1)

	if c.cfg.CutAfterWrites > 0 && c.writes >= c.cfg.CutAfterWrites {
		c.cut = true
		atomic.AddInt64(&c.stats.cuts, 1)
		delivered := 0
		if c.cfg.CutMidFrame && len(p) > 1 {
			// Deliver a prefix so the peer observes a truncated frame,
			// then kill the transport mid-stream. The partial byte count
			// is surfaced both in Stats and as the Write result, so a cut
			// can never land mid-frame invisibly: the sender learns
			// exactly how much of the torn frame reached the wire.
			delivered, _ = c.Conn.Write(p[:1+c.wrng.Intn(len(p)-1)])
			if delivered > 0 {
				atomic.AddInt64(&c.stats.partialWrites, 1)
				atomic.AddInt64(&c.stats.partialBytes, int64(delivered))
			}
		}
		_ = c.Conn.Close()
		return delivered, ErrInjectedCut
	}
	if c.cfg.Net != nil && c.cfg.Net.Severed(c.cfg.From, c.cfg.To) {
		// Partitioned: the frame vanishes in the network, the transport
		// stays up — the peer only notices through timeouts.
		atomic.AddInt64(&c.stats.partitionDrops, 1)
		c.cfg.Net.drops.Add(1)
		return len(p), nil
	}
	if c.cfg.DropRate > 0 && c.wrng.Float64() < c.cfg.DropRate {
		// Silent loss: report success so the sender believes the frame
		// is on the wire.
		atomic.AddInt64(&c.stats.dropped, 1)
		return len(p), nil
	}
	if d := c.writeDelay(); d > 0 {
		time.Sleep(d)
	}
	return c.Conn.Write(p)
}

func (c *Conn) writeDelay() time.Duration {
	d := c.cfg.Latency
	if c.cfg.Jitter > 0 {
		d += time.Duration(c.wrng.Int63n(int64(c.cfg.Jitter)))
	}
	return d
}

// Read returns at most a random chunk of the available bytes, forcing
// frame reassembly in the peer's framing layer.
func (c *Conn) Read(p []byte) (int, error) {
	c.rmu.Lock()
	defer c.rmu.Unlock()
	atomic.AddInt64(&c.stats.reads, 1)
	if c.cfg.MaxReadChunk > 0 && len(p) > 1 {
		n := 1 + c.rrng.Intn(c.cfg.MaxReadChunk)
		if n < len(p) {
			p = p[:n]
		}
	}
	return c.Conn.Read(p)
}
