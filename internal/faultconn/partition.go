package faultconn

import (
	"math/rand"
	"sync"
	"sync/atomic"
)

// Net models the failure domain of a multi-switch fabric: a set of named
// endpoints whose pairwise links can be severed and healed at runtime.
// While two endpoints are separated, frames written across the link are
// silently discarded — the transport stays up, the bytes just never
// arrive, which is how a routing-level partition looks to an OpenFlow
// channel riding on it (the peer times out rather than seeing a reset).
//
// Severing is directional: Split severs both directions between groups,
// SeverDirection blackholes a single direction (the asymmetric fault where
// a controller's flow-mods arrive but the switch's replies vanish, or vice
// versa). All mutations are plain deterministic calls — a fault schedule
// that drives Split/Heal at fixed points in a deterministic write sequence
// reproduces the same drop set every run; RandomSplit derives group
// membership from the Net's seed for reproducible whole-fabric splits.
type Net struct {
	mu  sync.Mutex
	rng *rand.Rand
	// sealed maps "from\x00to" to true while that direction is blackholed.
	sealed map[string]bool
	// drops counts frames discarded by active partitions, fabric-wide.
	drops atomic.Int64
	// splits counts Split/SeverDirection events applied.
	splits atomic.Int64
}

// NewNet creates a fully connected fault domain. The seed only drives
// RandomSplit's group draw; severing itself is deterministic.
func NewNet(seed int64) *Net {
	return &Net{rng: rand.New(rand.NewSource(seed)), sealed: make(map[string]bool)}
}

func linkKey(from, to string) string { return from + "\x00" + to }

// Split severs every link between endpoints of different groups, both
// directions. Links inside one group are untouched; previously severed
// links stay severed.
func (n *Net) Split(groups ...[]string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.splits.Add(1)
	for i := range groups {
		for j := range groups {
			if i == j {
				continue
			}
			for _, a := range groups[i] {
				for _, b := range groups[j] {
					n.sealed[linkKey(a, b)] = true
				}
			}
		}
	}
}

// RandomSplit draws a seeded 2-way split of the endpoints — the victims
// plus everyone else — and applies it. It returns the victim group so the
// caller can log or heal it; the draw sequence is deterministic in the
// Net's seed, making whole-fabric splits reproducible.
func (n *Net) RandomSplit(endpoints []string) []string {
	n.mu.Lock()
	k := 1
	if len(endpoints) > 2 {
		k = 1 + n.rng.Intn(len(endpoints)-1)
	}
	perm := n.rng.Perm(len(endpoints))
	n.mu.Unlock()
	victims := make([]string, 0, k)
	rest := make([]string, 0, len(endpoints)-k)
	for i, p := range perm {
		if i < k {
			victims = append(victims, endpoints[p])
		} else {
			rest = append(rest, endpoints[p])
		}
	}
	n.Split(victims, rest)
	return victims
}

// SeverDirection blackholes frames flowing from -> to while leaving the
// reverse direction intact — the asymmetric-direction fault.
func (n *Net) SeverDirection(from, to string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.splits.Add(1)
	n.sealed[linkKey(from, to)] = true
}

// Heal restores full connectivity.
func (n *Net) Heal() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.sealed = make(map[string]bool)
}

// HealLink restores both directions of one link.
func (n *Net) HealLink(a, b string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.sealed, linkKey(a, b))
	delete(n.sealed, linkKey(b, a))
}

// Severed reports whether frames from -> to are currently blackholed.
func (n *Net) Severed(from, to string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.sealed[linkKey(from, to)]
}

// Drops returns frames discarded by partitions across all linked conns.
func (n *Net) Drops() int64 { return n.drops.Load() }

// Splits returns partition events applied since creation.
func (n *Net) Splits() int64 { return n.splits.Load() }
