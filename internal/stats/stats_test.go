package stats

import (
	"math/rand"
	"testing"
	"time"
)

func TestReservoirExactWhenSmall(t *testing.T) {
	r := NewReservoir(100, 1)
	for i := 1; i <= 99; i++ {
		r.Add(float64(i))
	}
	if got := r.Quantile(0.5); got != 50 {
		t.Errorf("median = %g, want 50", got)
	}
	if got := r.Quantile(0); got != 1 {
		t.Errorf("min = %g, want 1", got)
	}
	if got := r.Quantile(1); got != 99 {
		t.Errorf("max = %g, want 99", got)
	}
	if got := r.Quantile(0.75); got < 74 || got > 76 {
		t.Errorf("p75 = %g, want ~75", got)
	}
	if r.Count() != 99 {
		t.Errorf("Count = %d", r.Count())
	}
	if m := r.Mean(); m != 50 {
		t.Errorf("Mean = %g, want 50", m)
	}
}

func TestReservoirSamplingAccuracy(t *testing.T) {
	// A uniform stream of 100k values through a 4k reservoir: quartiles
	// within a few percent.
	r := NewReservoir(4096, 7)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 100000; i++ {
		r.Add(rng.Float64() * 1000)
	}
	for _, q := range []float64{0.25, 0.5, 0.75} {
		got := r.Quantile(q)
		want := q * 1000
		if got < want-50 || got > want+50 {
			t.Errorf("q%.2f = %g, want ~%g", q, got, want)
		}
	}
}

func TestReservoirEmpty(t *testing.T) {
	r := NewReservoir(8, 1)
	if r.Quantile(0.5) != 0 || r.Mean() != 0 {
		t.Errorf("empty reservoir not zero-valued")
	}
}

func TestRateMeter(t *testing.T) {
	var m RateMeter
	m.Record(1_000_000, 100*time.Millisecond)
	if got := m.PerSecond(); got < 9.9e6 || got > 10.1e6 {
		t.Errorf("PerSecond = %g", got)
	}
	if got := m.Mpps(); got < 9.9 || got > 10.1 {
		t.Errorf("Mpps = %g", got)
	}
	var empty RateMeter
	if empty.PerSecond() != 0 {
		t.Errorf("empty meter nonzero")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 100, 10)
	for i := 0; i < 100; i++ {
		h.Add(float64(i))
	}
	h.Add(-5)
	h.Add(200)
	if h.Total() != 102 {
		t.Errorf("Total = %d", h.Total())
	}
	if h.Bucket(0) != 10 || h.Bucket(9) != 10 {
		t.Errorf("buckets = %d, %d; want 10, 10", h.Bucket(0), h.Bucket(9))
	}
	u, o := h.OutOfRange()
	if u != 1 || o != 1 {
		t.Errorf("out of range = %d, %d", u, o)
	}
}

func TestHistogramPanicsOnBadSpec(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("bad spec did not panic")
		}
	}()
	NewHistogram(10, 0, 5)
}
