// Package stats provides the small measurement toolkit used by the
// benchmark harness: streaming quantile estimation over a bounded
// reservoir, simple histograms, and rate accounting.
package stats

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Reservoir is a fixed-size uniform sample of a stream of float64
// observations (Vitter's algorithm R), good enough for the quartile
// latencies the paper reports.
type Reservoir struct {
	cap  int
	n    int64
	data []float64
	rng  *rand.Rand
}

// NewReservoir creates a reservoir holding up to cap samples. Sampling is
// deterministic for a given seed.
func NewReservoir(cap int, seed int64) *Reservoir {
	if cap <= 0 {
		cap = 1024
	}
	return &Reservoir{cap: cap, data: make([]float64, 0, cap), rng: rand.New(rand.NewSource(seed))}
}

// Add records one observation.
func (r *Reservoir) Add(v float64) {
	r.n++
	if len(r.data) < r.cap {
		r.data = append(r.data, v)
		return
	}
	if i := r.rng.Int63n(r.n); i < int64(r.cap) {
		r.data[i] = v
	}
}

// Count returns the number of observations seen (not retained).
func (r *Reservoir) Count() int64 { return r.n }

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) of the observed stream.
// It returns 0 when empty.
func (r *Reservoir) Quantile(q float64) float64 {
	if len(r.data) == 0 {
		return 0
	}
	sorted := append([]float64(nil), r.data...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Mean returns the mean of the retained sample.
func (r *Reservoir) Mean() float64 {
	if len(r.data) == 0 {
		return 0
	}
	var s float64
	for _, v := range r.data {
		s += v
	}
	return s / float64(len(r.data))
}

// RateMeter accumulates an event count over a measured duration and
// reports rates in events/second and Mpps.
type RateMeter struct {
	events  int64
	elapsed time.Duration
}

// Record adds n events observed over d.
func (m *RateMeter) Record(n int64, d time.Duration) {
	m.events += n
	m.elapsed += d
}

// PerSecond returns events per second (0 when nothing recorded).
func (m *RateMeter) PerSecond() float64 {
	if m.elapsed <= 0 {
		return 0
	}
	return float64(m.events) / m.elapsed.Seconds()
}

// Mpps returns the rate in million events per second.
func (m *RateMeter) Mpps() float64 { return m.PerSecond() / 1e6 }

// Histogram is a fixed-bucket histogram over [min, max).
type Histogram struct {
	min, max float64
	buckets  []int64
	under    int64
	over     int64
}

// NewHistogram creates a histogram with n equal buckets spanning
// [min, max).
func NewHistogram(min, max float64, n int) *Histogram {
	if n <= 0 || max <= min {
		panic(fmt.Sprintf("stats: bad histogram spec [%g, %g) / %d", min, max, n))
	}
	return &Histogram{min: min, max: max, buckets: make([]int64, n)}
}

// Add records an observation.
func (h *Histogram) Add(v float64) {
	switch {
	case v < h.min:
		h.under++
	case v >= h.max:
		h.over++
	default:
		i := int((v - h.min) / (h.max - h.min) * float64(len(h.buckets)))
		if i >= len(h.buckets) {
			i = len(h.buckets) - 1
		}
		h.buckets[i]++
	}
}

// Total returns the number of observations including out-of-range ones.
func (h *Histogram) Total() int64 {
	t := h.under + h.over
	for _, b := range h.buckets {
		t += b
	}
	return t
}

// Bucket returns the count of bucket i.
func (h *Histogram) Bucket(i int) int64 { return h.buckets[i] }

// OutOfRange returns the under/over counts.
func (h *Histogram) OutOfRange() (under, over int64) { return h.under, h.over }
