package dataplane

import (
	"testing"

	"manorm/internal/mat"
	"manorm/internal/packet"
	"manorm/internal/telemetry"
)

// witnessGrid is the probe set the explain tests share: service dsts and
// ports crossed with sources that exercise every load-balancer prefix.
func witnessGrid() []*packet.Packet {
	var out []*packet.Packet
	for _, s := range []uint32{0, 0x3FFFFFFF, 0x40000001, 0x7FFFFFFF, 0x80000000, 0xFFFFFFFF} {
		for _, d := range []uint32{0xC0000201, 0xC0000202, 0xC0000203, 0xC0000299} {
			for _, pt := range []uint16{80, 443, 22, 8080} {
				out = append(out, tcpTo(s, d, pt))
			}
		}
	}
	return out
}

// TestProcessExplainMatchesProcess checks that the explain path is a
// faithful mirror of the hot path: same verdict, and a stage record per
// table traversed.
func TestProcessExplainMatchesProcess(t *testing.T) {
	for _, mp := range []*mat.Pipeline{mat.SingleTable(fig1a()), fig1b(), fig1cMeta()} {
		dp, err := Compile(mp, AutoTemplates)
		if err != nil {
			t.Fatal(err)
		}
		ctx, ectx := dp.NewCtx(), dp.NewCtx()
		for _, pkt := range witnessGrid() {
			cp, ce := *pkt, *pkt
			v, err := dp.Process(&cp, ctx)
			if err != nil {
				t.Fatal(err)
			}
			ev, wit, err := dp.ProcessExplain(&ce, ectx)
			if err != nil {
				t.Fatal(err)
			}
			if ev.Drop != v.Drop || ev.Port != v.Port || ev.Tables != v.Tables {
				t.Fatalf("%s: explain verdict %+v != process verdict %+v", mp.Name, ev, v)
			}
			if len(wit.Stages) != v.Tables {
				t.Fatalf("%s: %d stage records for %d tables", mp.Name, len(wit.Stages), v.Tables)
			}
			if wit.Drop != v.Drop || (!v.Drop && wit.Port != v.Port) {
				t.Fatalf("%s: witness verdict %s != %+v", mp.Name, wit.Verdict(), v)
			}
		}
	}
}

// TestWitnessEquivalenceAcrossRepresentations is the runtime face of
// Theorem 1: the universal table and its goto- and metadata-decomposed
// pipelines yield identical per-packet verdicts, with the witnesses
// showing each representation's join mechanism.
func TestWitnessEquivalenceAcrossRepresentations(t *testing.T) {
	uni, err := Compile(mat.SingleTable(fig1a()), AutoTemplates)
	if err != nil {
		t.Fatal(err)
	}
	gto, err := Compile(fig1b(), AutoTemplates)
	if err != nil {
		t.Fatal(err)
	}
	meta, err := Compile(fig1cMeta(), AutoTemplates)
	if err != nil {
		t.Fatal(err)
	}
	uctx, gctx, mctx := uni.NewCtx(), gto.NewCtx(), meta.NewCtx()

	sawGoto, sawMeta := false, false
	for _, pkt := range witnessGrid() {
		cu, cg, cm := *pkt, *pkt, *pkt
		_, uw, err := uni.ProcessExplain(&cu, uctx)
		if err != nil {
			t.Fatal(err)
		}
		_, gw, err := gto.ProcessExplain(&cg, gctx)
		if err != nil {
			t.Fatal(err)
		}
		_, mw, err := meta.ProcessExplain(&cm, mctx)
		if err != nil {
			t.Fatal(err)
		}
		if uw.Verdict() != gw.Verdict() || uw.Verdict() != mw.Verdict() {
			t.Fatalf("verdicts diverge: universal=%s goto=%s metadata=%s\n%s%s%s",
				uw.Verdict(), gw.Verdict(), mw.Verdict(), uw, gw, mw)
		}
		// The universal witness is always a single table.
		if uw.Tables != 1 || len(uw.Stages) != 1 {
			t.Fatalf("universal witness has %d tables", uw.Tables)
		}
		// A forwarded packet traverses the decompositions via their join
		// mechanisms; the witnesses must name them.
		if !uw.Drop {
			if gw.Stages[0].Join != "goto" {
				t.Errorf("goto witness stage 0 join = %q", gw.Stages[0].Join)
			}
			sawGoto = true
			if mw.Stages[0].Join != "metadata" {
				t.Errorf("metadata witness stage 0 join = %q", mw.Stages[0].Join)
			}
			sawMeta = true
		}
	}
	if !sawGoto || !sawMeta {
		t.Fatal("probe grid produced no forwarded packets")
	}
}

// TestProcessNoAllocsWithoutTelemetry is the hot-path guard of the
// observability layer: a pipeline compiled WITHOUT WithTelemetry (and one
// compiled with a nil registry, the documented no-op) must process packets
// with zero heap allocations.
func TestProcessNoAllocsWithoutTelemetry(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts []Option
	}{
		{"no-option", nil},
		{"nil-registry", []Option{WithTelemetry(nil)}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dp, err := Compile(fig1b(), AutoTemplates, tc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			ctx := dp.NewCtx()
			pkt := tcpTo(0x80000000, 0xC0000201, 80)
			if allocs := testing.AllocsPerRun(200, func() {
				if _, err := dp.Process(pkt, ctx); err != nil {
					t.Fatal(err)
				}
			}); allocs != 0 {
				t.Errorf("Process allocates %v per packet", allocs)
			}

			pkts := witnessGrid()
			out := make([]Verdict, len(pkts))
			if allocs := testing.AllocsPerRun(50, func() {
				if err := dp.ProcessBatch(pkts, ctx, out); err != nil {
					t.Fatal(err)
				}
			}); allocs != 0 {
				t.Errorf("ProcessBatch allocates %v per batch", allocs)
			}
		})
	}
}

// TestProcessNoAllocsWithTelemetry pins the instrumented path's design
// rule: counters and histogram observations are atomic updates on
// pre-resolved instruments, so even with a live registry the per-packet
// path stays allocation-free.
func TestProcessNoAllocsWithTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	dp, err := Compile(fig1b(), AutoTemplates, WithTelemetry(reg))
	if err != nil {
		t.Fatal(err)
	}
	ctx := dp.NewCtx()
	pkt := tcpTo(0x80000000, 0xC0000201, 80)
	if allocs := testing.AllocsPerRun(200, func() {
		if _, err := dp.Process(pkt, ctx); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("instrumented Process allocates %v per packet", allocs)
	}
	snap := reg.Snapshot()
	if v, ok := snap.Counter("pipeline.gwlb-goto.stage0.T0.lookups"); !ok || v == 0 {
		t.Errorf("lookup counter = %d,%v after instrumented run", v, ok)
	}
}
