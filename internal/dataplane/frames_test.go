package dataplane

import (
	"testing"

	"manorm/internal/mat"
	"manorm/internal/packet"
	"manorm/internal/telemetry"
)

// schemaKeyPipeline builds a one-stage exact-match program over one
// schema field: n installed keys starting at base, each forwarding to its
// own port, misses dropping.
func schemaKeyPipeline(t testing.TB, dec *packet.Decoder, field string, base uint64, n int) *Pipeline {
	t.Helper()
	b := packet.NewBinder(dec.Schema())
	cols := b.Columns(field)
	width := cols[0].Width
	tab := mat.New("keys", append(cols, mat.Attr{Name: "out", Kind: mat.Action, Width: 16}))
	tab.Provenance = dec.Schema().Name
	for i := 0; i < n; i++ {
		tab.Entries = append(tab.Entries, mat.Entry{
			mat.Exact(base+uint64(i), width),
			mat.Exact(uint64(10+i), 16),
		})
	}
	mp := &mat.Pipeline{Name: "keys", Start: 0,
		Stages: []mat.Stage{{Table: tab, Next: -1, MissDrop: true}}}
	dp, err := Compile(mp, AutoTemplates, WithSchema(dec.Schema()))
	if err != nil {
		t.Fatal(err)
	}
	return dp
}

// schemaTestFrame marshals one well-formed frame of the given builtin
// schema carrying the given key field value.
func schemaTestFrame(t testing.TB, dec *packet.Decoder, schema string, key uint64) []byte {
	t.Helper()
	v := dec.NewView()
	mark := func(hdrs ...string) {
		for _, h := range hdrs {
			if !v.MarkPresentName(h) {
				t.Fatalf("unknown header %q in schema %s", h, schema)
			}
		}
	}
	switch schema {
	case packet.SchemaVXLAN:
		mark("eth", "ipv4", "udp", "vxlan", "inner_eth")
		v.SetName("eth_type", packet.EtherTypeIPv4)
		v.SetName("ip_ttl", 64)
		v.SetName("ip_proto", packet.ProtoUDP)
		v.SetName("udp_dst", packet.UDPPortVXLAN)
		v.SetName("vxlan_flags", 0x08)
		v.SetName(packet.FieldVXLANVNI, key)
		v.SetName(packet.FieldInnerEthDst, 0x112233445566)
	case packet.SchemaMPLS:
		mark("eth", "mpls", "ipv4")
		v.SetName("eth_type", packet.EtherTypeMPLS)
		v.SetName(packet.FieldMPLSLabel, key)
		v.SetName(packet.FieldMPLSBoS, 1)
		v.SetName(packet.FieldMPLSTTL, 64)
		v.SetName("ip_ttl", 64)
		v.SetName("ip_proto", packet.ProtoTCP)
	case packet.SchemaGTPU:
		mark("eth", "ipv4", "udp", "gtpu", "inner_ipv4")
		v.SetName("eth_type", packet.EtherTypeIPv4)
		v.SetName("ip_ttl", 64)
		v.SetName("ip_proto", packet.ProtoUDP)
		v.SetName("udp_dst", packet.UDPPortGTPU)
		v.SetName("gtpu_flags", 0x30)
		v.SetName("gtpu_type", packet.GTPMsgGPDU)
		v.SetName(packet.FieldGTPUTEID, key)
		v.SetName("inner_ip_ttl", 64)
		v.SetName("inner_ip_proto", packet.ProtoTCP)
	default:
		t.Fatalf("unhandled schema %s", schema)
	}
	return v.Marshal(nil)
}

// schemaKeyField names the exact-match key of each generic builtin schema.
func schemaKeyField(schema string) string {
	switch schema {
	case packet.SchemaVXLAN:
		return packet.FieldVXLANVNI
	case packet.SchemaMPLS:
		return packet.FieldMPLSLabel
	default:
		return packet.FieldGTPUTEID
	}
}

// defaultFrames marshals a grid of canonical TCP frames over the fig1b
// pipeline's match space (hits and misses).
func defaultFrames() [][]byte {
	var frames [][]byte
	for _, s := range []uint32{0, 0x40000001, 0x80000000, 0xFFFFFFFF} {
		for _, d := range []uint32{0xC0000201, 0xC0000202, 0xC0000203, 0xC0000299} {
			for _, pt := range []uint16{80, 443, 22, 8080} {
				frames = append(frames, tcpTo(s, d, pt).Marshal(nil))
			}
		}
	}
	return frames
}

// TestProcessFramesMatchesStructPathDefault cross-checks the wire-ingest
// path against the struct path on the default schema: every frame's
// ProcessFrames verdict must equal reparsing into a Packet and calling
// Process.
func TestProcessFramesMatchesStructPathDefault(t *testing.T) {
	for _, sel := range []TemplateSelector{AutoTemplates} {
		dp, err := Compile(fig1b(), sel)
		if err != nil {
			t.Fatal(err)
		}
		frames := defaultFrames()
		frames = append(frames, []byte{0x02, 0x00}) // truncated: must drop
		out := make([]Verdict, len(frames))
		if err := dp.ProcessFrames(frames, NewFrameBatch(nil), out, nil); err != nil {
			t.Fatal(err)
		}
		ctx := dp.NewCtx()
		for i, f := range frames {
			var pkt packet.Packet
			want := Verdict{Drop: true}
			if err := pkt.ParseInto(f); err == nil {
				want, err = dp.Process(&pkt, ctx)
				if err != nil {
					t.Fatal(err)
				}
			}
			if out[i].Drop != want.Drop || out[i].Port != want.Port {
				t.Fatalf("frame %d: frames path {drop:%v port:%d}, struct path {drop:%v port:%d}",
					i, out[i].Drop, out[i].Port, want.Drop, want.Port)
			}
		}
	}
}

// TestProcessFramesMatchesViewPathSchemas cross-checks the wire-ingest
// path against the per-frame view path on every generic builtin schema,
// over hit, miss and truncated frames.
func TestProcessFramesMatchesViewPathSchemas(t *testing.T) {
	for _, schema := range []string{packet.SchemaVXLAN, packet.SchemaMPLS, packet.SchemaGTPU} {
		dec, err := packet.BuiltinDecoder(schema)
		if err != nil {
			t.Fatal(err)
		}
		dp := schemaKeyPipeline(t, dec, schemaKeyField(schema), 1000, 4)
		var frames [][]byte
		for k := uint64(998); k < 1006; k++ { // straddles the installed range
			frames = append(frames, schemaTestFrame(t, dec, schema, k))
		}
		frames = append(frames, []byte{0xDE, 0xAD}) // truncated: must drop
		out := make([]Verdict, len(frames))
		if err := dp.ProcessFrames(frames, NewFrameBatch(dec), out, nil); err != nil {
			t.Fatalf("%s: %v", schema, err)
		}
		ctx := dp.NewCtx()
		view := dec.NewView()
		hits := 0
		for i, f := range frames {
			want := Verdict{Drop: true}
			if err := dec.ParseInto(view, f); err == nil {
				want, err = dp.ProcessView(view, ctx)
				if err != nil {
					t.Fatal(err)
				}
			}
			if out[i].Drop != want.Drop || out[i].Port != want.Port {
				t.Fatalf("%s frame %d: frames path {drop:%v port:%d}, view path {drop:%v port:%d}",
					schema, i, out[i].Drop, out[i].Port, want.Drop, want.Port)
			}
			if !out[i].Drop {
				hits++
			}
		}
		if hits != 4 {
			t.Fatalf("%s: %d forwarded frames, want the 4 installed keys", schema, hits)
		}
	}
}

// TestProcessFramesZeroAlloc guards the tentpole allocation contract: the
// steady-state frame path allocates nothing on any builtin schema, with
// one arena per worker at w=1 and w=4.
func TestProcessFramesZeroAlloc(t *testing.T) {
	for _, schema := range []string{packet.SchemaDefault, packet.SchemaVXLAN, packet.SchemaMPLS, packet.SchemaGTPU} {
		var dp *Pipeline
		var dec *packet.Decoder
		var frames [][]byte
		if schema == packet.SchemaDefault {
			var err error
			dp, err = Compile(fig1b(), AutoTemplates)
			if err != nil {
				t.Fatal(err)
			}
			frames = defaultFrames()
		} else {
			var err error
			dec, err = packet.BuiltinDecoder(schema)
			if err != nil {
				t.Fatal(err)
			}
			dp = schemaKeyPipeline(t, dec, schemaKeyField(schema), 1000, 4)
			for k := uint64(1000); k < 1008; k++ {
				frames = append(frames, schemaTestFrame(t, dec, schema, k))
			}
		}
		for _, workers := range []int{1, 4} {
			arenas := make([]*FrameBatch, workers)
			out := make([]Verdict, len(frames))
			for w := range arenas {
				arenas[w] = NewFrameBatch(dec)
				if err := dp.ProcessFrames(frames, arenas[w], out, nil); err != nil { // warm: ctx provisioning
					t.Fatal(err)
				}
			}
			allocs := testing.AllocsPerRun(200, func() {
				for _, a := range arenas {
					if err := dp.ProcessFrames(frames, a, out, nil); err != nil {
						t.Fatal(err)
					}
				}
			})
			if allocs != 0 {
				t.Fatalf("%s w=%d: ProcessFrames allocates %.1f/op, want 0", schema, workers, allocs)
			}
		}
	}
}

// TestFrameBatchTypedDropCounters checks that decode failures land in the
// per-reason counters, locally and aggregated across arenas attached to
// one registry.
func TestFrameBatchTypedDropCounters(t *testing.T) {
	dp, err := Compile(fig1b(), AutoTemplates)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	good := tcpTo(1, 0xC0000201, 80).Marshal(nil)
	bad := append([]byte(nil), good...)
	bad[packet.EthHeaderLen+10] ^= 0xFF // damage the IPv4 checksum
	short := good[:5]

	a := NewFrameBatch(nil).Attach(reg)
	out := make([]Verdict, 3)
	if err := dp.ProcessFrames([][]byte{good, bad, short}, a, out, nil); err != nil {
		t.Fatal(err)
	}
	if out[0].Drop || !out[1].Drop || !out[2].Drop {
		t.Fatalf("verdicts {%v %v %v}, want {forward drop drop}", out[0].Drop, out[1].Drop, out[2].Drop)
	}
	if tr, bh, _ := a.Drops(); tr != 1 || bh != 1 {
		t.Fatalf("arena drops truncated=%d bad_header=%d, want 1/1", tr, bh)
	}

	// A second arena on the same registry aggregates into the same
	// counters (the per-worker pattern).
	b := NewFrameBatch(nil).Attach(reg)
	if err := dp.ProcessFrames([][]byte{short}, b, out, nil); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["ingest.drops.truncated"]; got != 2 {
		t.Fatalf("registry truncated drops = %d, want 2", got)
	}
	if got := snap.Counters["ingest.drops.bad_header"]; got != 1 {
		t.Fatalf("registry bad_header drops = %d, want 1", got)
	}
}

// TestProcessFramesArenaValidation pins the misuse errors: missing arena,
// short verdict buffer, and schema mismatches in both directions.
func TestProcessFramesArenaValidation(t *testing.T) {
	dp, err := Compile(fig1b(), AutoTemplates)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := packet.BuiltinDecoder(packet.SchemaVXLAN)
	if err != nil {
		t.Fatal(err)
	}
	sdp := schemaKeyPipeline(t, dec, packet.FieldVXLANVNI, 1000, 1)
	frames := [][]byte{tcpTo(1, 2, 3).Marshal(nil)}
	out := make([]Verdict, 1)
	if err := dp.ProcessFrames(frames, nil, out, nil); err == nil {
		t.Fatal("nil arena accepted")
	}
	if err := dp.ProcessFrames(frames, NewFrameBatch(nil), out[:0], nil); err == nil {
		t.Fatal("short verdict buffer accepted")
	}
	if err := dp.ProcessFrames(frames, NewFrameBatch(dec), out, nil); err == nil {
		t.Fatal("schema arena accepted by default pipeline")
	}
	if err := sdp.ProcessFrames(frames, NewFrameBatch(nil), out, nil); err == nil {
		t.Fatal("default arena accepted by schema pipeline")
	}
}

// FuzzFramesVsStructPath fuzzes arbitrary bytes through both ingest
// surfaces: the struct path (ParseInto + Process; parse failure means
// drop) and the wire path (ProcessFrames) must agree on every input, and
// when the frame parses, its Marshal round-trip must agree too.
func FuzzFramesVsStructPath(f *testing.F) {
	f.Add([]byte{})
	f.Add(tcpTo(0x01020304, 0xC0000201, 80).Marshal(nil))
	f.Add(tcpTo(0x80000001, 0xC0000202, 443).Marshal(nil))
	f.Add(tcpTo(7, 0xC0000299, 8080).Marshal(nil))
	dp, err := Compile(fig1b(), AutoTemplates)
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		ctx := dp.NewCtx()
		arena := NewFrameBatch(nil)
		out := make([]Verdict, 1)
		check := func(frame []byte, label string) *packet.Packet {
			var pkt packet.Packet
			want := Verdict{Drop: true}
			perr := pkt.ParseInto(frame)
			if perr == nil {
				var err error
				want, err = dp.Process(&pkt, ctx)
				if err != nil {
					t.Fatal(err)
				}
			}
			if err := dp.ProcessFrames([][]byte{frame}, arena, out, nil); err != nil {
				t.Fatal(err)
			}
			if out[0].Drop != want.Drop || (!want.Drop && out[0].Port != want.Port) {
				t.Fatalf("%s: frames path {drop:%v port:%d}, struct path {drop:%v port:%d}",
					label, out[0].Drop, out[0].Port, want.Drop, want.Port)
			}
			if perr != nil {
				return nil
			}
			return &pkt
		}
		pkt := check(data, "input")
		if pkt == nil {
			return
		}
		// Round-trip: re-marshal the parsed packet (fresh parse — Process
		// may rewrite headers) and require agreement on the result too.
		var clean packet.Packet
		if err := clean.ParseInto(data); err != nil {
			t.Fatal(err)
		}
		check(clean.Marshal(nil), "round-trip")
	})
}
