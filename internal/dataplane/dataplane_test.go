package dataplane

import (
	"math/rand"
	"testing"

	"manorm/internal/classifier"
	"manorm/internal/mat"
	"manorm/internal/packet"
)

// fig1a / fig1b: the paper's running example, as in the other packages.
func fig1a() *mat.Table {
	t := mat.New("T0", mat.Schema{
		mat.F("ip_src", 32), mat.F("ip_dst", 32), mat.F("tcp_dst", 16), mat.A("out", 16),
	})
	t.Add(mat.Prefix(0, 1, 32), mat.IPv4("192.0.2.1"), mat.Exact(80, 16), mat.Exact(1, 16))
	t.Add(mat.Prefix(0x80000000, 1, 32), mat.IPv4("192.0.2.1"), mat.Exact(80, 16), mat.Exact(2, 16))
	t.Add(mat.Prefix(0, 2, 32), mat.IPv4("192.0.2.2"), mat.Exact(443, 16), mat.Exact(3, 16))
	t.Add(mat.Prefix(0x40000000, 2, 32), mat.IPv4("192.0.2.2"), mat.Exact(443, 16), mat.Exact(4, 16))
	t.Add(mat.Prefix(0x80000000, 1, 32), mat.IPv4("192.0.2.2"), mat.Exact(443, 16), mat.Exact(5, 16))
	t.Add(mat.Any(), mat.IPv4("192.0.2.3"), mat.Exact(22, 16), mat.Exact(6, 16))
	return t
}

func fig1b() *mat.Pipeline {
	t0 := mat.New("T0", mat.Schema{mat.F("ip_dst", 32), mat.F("tcp_dst", 16), mat.A(mat.GotoAttr, 8)})
	t0.Add(mat.IPv4("192.0.2.1"), mat.Exact(80, 16), mat.Exact(1, 8))
	t0.Add(mat.IPv4("192.0.2.2"), mat.Exact(443, 16), mat.Exact(2, 8))
	t0.Add(mat.IPv4("192.0.2.3"), mat.Exact(22, 16), mat.Exact(3, 8))
	lb1 := mat.New("T1", mat.Schema{mat.F("ip_src", 32), mat.A("out", 16)})
	lb1.Add(mat.Prefix(0, 1, 32), mat.Exact(1, 16))
	lb1.Add(mat.Prefix(0x80000000, 1, 32), mat.Exact(2, 16))
	lb2 := mat.New("T2", mat.Schema{mat.F("ip_src", 32), mat.A("out", 16)})
	lb2.Add(mat.Prefix(0, 2, 32), mat.Exact(3, 16))
	lb2.Add(mat.Prefix(0x40000000, 2, 32), mat.Exact(4, 16))
	lb2.Add(mat.Prefix(0x80000000, 1, 32), mat.Exact(5, 16))
	lb3 := mat.New("T3", mat.Schema{mat.F("ip_src", 32), mat.A("out", 16)})
	lb3.Add(mat.Any(), mat.Exact(6, 16))
	return &mat.Pipeline{
		Name:  "gwlb-goto",
		Start: 0,
		Stages: []mat.Stage{
			{Table: t0, Next: -1, MissDrop: true},
			{Table: lb1, Next: -1, MissDrop: true},
			{Table: lb2, Next: -1, MissDrop: true},
			{Table: lb3, Next: -1, MissDrop: true},
		},
	}
}

// fig1cMeta: the metadata variant, exercising metadata registers.
func fig1cMeta() *mat.Pipeline {
	mn := mat.MetaPrefix + "_svc"
	t0 := mat.New("T0", mat.Schema{mat.F("ip_dst", 32), mat.F("tcp_dst", 16), mat.A(mn, 8)})
	t0.Add(mat.IPv4("192.0.2.1"), mat.Exact(80, 16), mat.Exact(0, 8))
	t0.Add(mat.IPv4("192.0.2.2"), mat.Exact(443, 16), mat.Exact(1, 8))
	t0.Add(mat.IPv4("192.0.2.3"), mat.Exact(22, 16), mat.Exact(2, 8))
	t1 := mat.New("T1", mat.Schema{mat.F(mn, 8), mat.F("ip_src", 32), mat.A("out", 16)})
	t1.Add(mat.Exact(0, 8), mat.Prefix(0, 1, 32), mat.Exact(1, 16))
	t1.Add(mat.Exact(0, 8), mat.Prefix(0x80000000, 1, 32), mat.Exact(2, 16))
	t1.Add(mat.Exact(1, 8), mat.Prefix(0, 2, 32), mat.Exact(3, 16))
	t1.Add(mat.Exact(1, 8), mat.Prefix(0x40000000, 2, 32), mat.Exact(4, 16))
	t1.Add(mat.Exact(1, 8), mat.Prefix(0x80000000, 1, 32), mat.Exact(5, 16))
	t1.Add(mat.Exact(2, 8), mat.Any(), mat.Exact(6, 16))
	return &mat.Pipeline{
		Name:  "gwlb-meta",
		Start: 0,
		Stages: []mat.Stage{
			{Table: t0, Next: 1, MissDrop: true},
			{Table: t1, Next: -1, MissDrop: true},
		},
	}
}

func tcpTo(ipSrc, ipDst uint32, port uint16) *packet.Packet {
	return packet.TCP4(0xA, 0xB, ipSrc, ipDst, 33333, port)
}

// crossValidate runs the compiled pipeline and the relational evaluator on
// the same packets and requires identical out/drop results.
func crossValidate(t *testing.T, mp *mat.Pipeline, sel TemplateSelector) {
	t.Helper()
	dp, err := Compile(mp, sel)
	if err != nil {
		t.Fatal(err)
	}
	ctx := dp.NewCtx()
	rng := rand.New(rand.NewSource(21))
	srcs := []uint32{0, 0x3FFFFFFF, 0x40000001, 0x7FFFFFFF, 0x80000000, 0xFFFFFFFF}
	dsts := []uint32{0xC0000201, 0xC0000202, 0xC0000203, 0xC0000299}
	ports := []uint16{80, 443, 22, 8080}
	for i := 0; i < 64; i++ {
		srcs = append(srcs, rng.Uint32())
	}
	for _, s := range srcs {
		for _, d := range dsts {
			for _, pt := range ports {
				pkt := tcpTo(s, d, pt)
				v, err := dp.Process(pkt, ctx)
				if err != nil {
					t.Fatal(err)
				}
				rec, err := mp.Eval(mat.Record{"ip_src": uint64(s), "ip_dst": uint64(d), "tcp_dst": uint64(pt)})
				if err != nil {
					t.Fatal(err)
				}
				if dropped := rec[mat.DropAttr] == 1; dropped != v.Drop {
					t.Fatalf("drop mismatch on %x->%x:%d: dataplane=%v relational=%v", s, d, pt, v.Drop, dropped)
				}
				if !v.Drop && uint64(v.Port) != rec["out"] {
					t.Fatalf("port mismatch on %x->%x:%d: dataplane=%d relational=%d", s, d, pt, v.Port, rec["out"])
				}
			}
		}
	}
}

func TestProcessMatchesRelationalSemantics(t *testing.T) {
	crossValidate(t, mat.SingleTable(fig1a()), AutoTemplates)
	crossValidate(t, fig1b(), AutoTemplates)
	crossValidate(t, fig1cMeta(), AutoTemplates)
	// And with the representation-agnostic ternary datapath.
	crossValidate(t, fig1b(), FixedTemplate(classifier.ForceTernary))
	crossValidate(t, fig1cMeta(), FixedTemplate(classifier.ForceTupleSpace))
}

func TestTemplateSelectionPerStage(t *testing.T) {
	// The ESwitch mechanism: the universal table compiles to ternary; the
	// goto pipeline's first stage to exact and the per-tenant stages to
	// LPM.
	uni, err := Compile(mat.SingleTable(fig1a()), AutoTemplates)
	if err != nil {
		t.Fatal(err)
	}
	if got := uni.Templates(); got[0] != "ternary" {
		t.Errorf("universal template = %v, want ternary", got)
	}
	dec, err := Compile(fig1b(), AutoTemplates)
	if err != nil {
		t.Fatal(err)
	}
	// The catch-all single-entry tenant table (T3) degenerates to an
	// exact matcher with its only column masked out — even cheaper than a
	// trie.
	want := []string{"exact", "lpm", "lpm", "exact"}
	got := dec.Templates()
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("stage %d template = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestCounters(t *testing.T) {
	dp, err := Compile(mat.SingleTable(fig1a()), AutoTemplates)
	if err != nil {
		t.Fatal(err)
	}
	ctx := dp.NewCtx()
	for i := 0; i < 5; i++ {
		if _, err := dp.Process(tcpTo(0x01000000, 0xC0000201, 80), ctx); err != nil {
			t.Fatal(err)
		}
	}
	if got := dp.Counter(0, 0); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if got := dp.Counter(0, 1); got != 0 {
		t.Errorf("untouched counter = %d", got)
	}
	dp.ResetCounters()
	if dp.Counter(0, 0) != 0 {
		t.Errorf("reset did not zero counters")
	}
	if dp.StageEntryCount(0) != 6 {
		t.Errorf("StageEntryCount = %d", dp.StageEntryCount(0))
	}
}

func TestTablesTraversed(t *testing.T) {
	uni, _ := Compile(mat.SingleTable(fig1a()), AutoTemplates)
	dec, _ := Compile(fig1b(), AutoTemplates)
	ctxU, ctxD := uni.NewCtx(), dec.NewCtx()
	pkt := tcpTo(0x01000000, 0xC0000201, 80)
	vu, _ := uni.Process(pkt, ctxU)
	vd, _ := dec.Process(tcpTo(0x01000000, 0xC0000201, 80), ctxD)
	if vu.Tables != 1 || vd.Tables != 2 {
		t.Errorf("tables traversed: universal=%d decomposed=%d, want 1 and 2", vu.Tables, vd.Tables)
	}
}

func TestDecTTLAndSetField(t *testing.T) {
	tab := mat.New("L3", mat.Schema{
		mat.F("ip_dst", 32), mat.A("mod_ttl", 8), mat.A("mod_smac", 48), mat.A("mod_dmac", 48), mat.A("out", 16),
	})
	tab.Add(mat.IPv4Prefix("10.0.0.0", 8), mat.Exact(1, 8), mat.Exact(0xAA, 48), mat.Exact(0xBB, 48), mat.Exact(3, 16))
	dp, err := Compile(mat.SingleTable(tab), AutoTemplates)
	if err != nil {
		t.Fatal(err)
	}
	ctx := dp.NewCtx()
	pkt := tcpTo(1, 0x0A000001, 80)
	pkt.TTL = 64
	v, err := dp.Process(pkt, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if v.Drop || v.Port != 3 {
		t.Fatalf("verdict = %+v", v)
	}
	if pkt.TTL != 63 {
		t.Errorf("TTL = %d, want 63", pkt.TTL)
	}
	if pkt.EthSrc != 0xAA || pkt.EthDst != 0xBB {
		t.Errorf("MACs not rewritten: %x/%x", pkt.EthSrc, pkt.EthDst)
	}
}

func TestMissOnAbsentField(t *testing.T) {
	// A VLAN match against an untagged packet is a miss.
	tab := mat.New("V", mat.Schema{mat.F("vlan", 12), mat.A("out", 16)})
	tab.Add(mat.Exact(5, 12), mat.Exact(1, 16))
	dp, err := Compile(mat.SingleTable(tab), AutoTemplates)
	if err != nil {
		t.Fatal(err)
	}
	v, err := dp.Process(tcpTo(1, 2, 80), dp.NewCtx())
	if err != nil {
		t.Fatal(err)
	}
	if !v.Drop {
		t.Errorf("untagged packet matched a VLAN entry")
	}
}

func TestCompileRejectsWideTables(t *testing.T) {
	sch := mat.Schema{}
	for i := 0; i < 17; i++ {
		sch = append(sch, mat.F(string(rune('a'+i)), 8))
	}
	sch = append(sch, mat.A("out", 8))
	tab := mat.New("wide", sch)
	if _, err := Compile(mat.SingleTable(tab), AutoTemplates); err == nil {
		t.Errorf("17-column table accepted")
	}
}

func TestCompileRejectsInvalidPipeline(t *testing.T) {
	p := &mat.Pipeline{Name: "bad"}
	if _, err := Compile(p, AutoTemplates); err == nil {
		t.Errorf("empty pipeline compiled")
	}
}

func TestGotoCycleDetectedAtRuntime(t *testing.T) {
	t0 := mat.New("T0", mat.Schema{mat.F("ip_dst", 32), mat.A(mat.GotoAttr, 8)})
	t0.Add(mat.Any(), mat.Exact(0, 8))
	p := &mat.Pipeline{Stages: []mat.Stage{{Table: t0, Next: -1, MissDrop: true}}}
	dp, err := Compile(p, AutoTemplates)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dp.Process(tcpTo(1, 2, 3), dp.NewCtx()); err == nil {
		t.Errorf("goto cycle not detected")
	}
}

// The per-pipeline processing cost is what the switch models measure;
// keep an eye on allocation-freedom here.
func BenchmarkProcessUniversal(b *testing.B) { benchProcess(b, mat.SingleTable(fig1a())) }
func BenchmarkProcessGoto(b *testing.B)      { benchProcess(b, fig1b()) }
func BenchmarkProcessMetadata(b *testing.B)  { benchProcess(b, fig1cMeta()) }

func benchProcess(b *testing.B, mp *mat.Pipeline) {
	dp, err := Compile(mp, AutoTemplates)
	if err != nil {
		b.Fatal(err)
	}
	ctx := dp.NewCtx()
	pkt := tcpTo(0x01000000, 0xC0000201, 80)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dp.Process(pkt, ctx); err != nil {
			b.Fatal(err)
		}
	}
}
