package dataplane

import (
	"math/rand"
	"reflect"
	"testing"

	"manorm/internal/mat"
	"manorm/internal/packet"
	"manorm/internal/usecases"
)

func gwlbPacket(rng *rand.Rand, g *usecases.GwLB) *packet.Packet {
	ipSrc := uint32(rng.Uint64())
	ipDst := uint32(rng.Uint64())
	port := uint16(rng.Uint64())
	if rng.Intn(4) != 0 {
		svc := g.Services[rng.Intn(len(g.Services))]
		ipDst = svc.VIP
		if rng.Intn(8) != 0 {
			port = svc.Port
		}
	}
	return packet.TCP4(0x00aa, 0x00bb, ipSrc, ipDst, 1234, port)
}

// The fused rep's ProcessExplain must reproduce the interpreted
// pipeline's logical witness exactly — same table-hit sequence, entries,
// joins, rendered actions, verdict and depth — on every representation.
func TestFusedWitnessMatchesInterpreted(t *testing.T) {
	g := usecases.Generate(8, 4, 21)
	rng := rand.New(rand.NewSource(2))
	for _, rep := range []usecases.Representation{
		usecases.RepUniversal, usecases.RepGoto, usecases.RepMetadata, usecases.RepRematch,
	} {
		p, err := g.Build(rep)
		if err != nil {
			t.Fatal(err)
		}
		interp, err := Compile(p, AutoTemplates)
		if err != nil {
			t.Fatal(err)
		}
		fused, err := CompileFused(p)
		if err != nil {
			t.Fatal(err)
		}
		ictx, fctx := interp.NewCtx(), fused.NewCtx()
		for trial := 0; trial < 400; trial++ {
			pkt := gwlbPacket(rng, g)
			ipkt, fpkt := *pkt, *pkt
			iv, iwit, err := interp.ProcessExplain(&ipkt, ictx)
			if err != nil {
				t.Fatal(err)
			}
			fv, fwit, err := fused.ProcessExplain(&fpkt, fctx)
			if err != nil {
				t.Fatal(err)
			}
			if iv != fv {
				t.Fatalf("%s trial %d: verdict interpreted=%+v fused=%+v", rep, trial, iv, fv)
			}
			if !reflect.DeepEqual(ipkt.Record(), fpkt.Record()) {
				t.Fatalf("%s trial %d: header mutations differ: %+v vs %+v", rep, trial, ipkt, fpkt)
			}
			if fwit.Tables != iwit.Tables || !reflect.DeepEqual(fwit.Stages, iwit.Stages) {
				t.Fatalf("%s trial %d: witness mismatch\ninterpreted: %s\nfused: %s", rep, trial, iwit, fwit)
			}
		}
	}
}

// Fused Process must agree with fused ProcessExplain (the hot path and
// the witness path share the verdict).
func TestFusedProcessMatchesExplain(t *testing.T) {
	g := usecases.Generate(8, 4, 22)
	rng := rand.New(rand.NewSource(4))
	p, err := g.Build(usecases.RepGoto)
	if err != nil {
		t.Fatal(err)
	}
	fused, err := CompileFused(p)
	if err != nil {
		t.Fatal(err)
	}
	c1, c2 := fused.NewCtx(), fused.NewCtx()
	for trial := 0; trial < 300; trial++ {
		pkt := gwlbPacket(rng, g)
		p1, p2 := *pkt, *pkt
		v1, err := fused.Process(&p1, c1)
		if err != nil {
			t.Fatal(err)
		}
		v2, _, err := fused.ProcessExplain(&p2, c2)
		if err != nil {
			t.Fatal(err)
		}
		if v1 != v2 || !reflect.DeepEqual(p1.Record(), p2.Record()) {
			t.Fatalf("trial %d: Process=%+v Explain=%+v", trial, v1, v2)
		}
	}
}

// The fused hot path must not allocate with telemetry detached.
func TestFusedProcessZeroAlloc(t *testing.T) {
	g := usecases.Generate(20, 8, 42)
	p, err := g.Build(usecases.RepGoto)
	if err != nil {
		t.Fatal(err)
	}
	fused, err := CompileFused(p)
	if err != nil {
		t.Fatal(err)
	}
	ctx := fused.NewCtx()
	svc := g.Services[3]
	pkt := packet.TCP4(0x01, 0x02, 0x0A000001, svc.VIP, 1234, svc.Port)
	if _, err := fused.Process(pkt, ctx); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := fused.Process(pkt, ctx); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("fused Process allocates %v per run, want 0", allocs)
	}
}

// CompileFused must surface the decision-structure size for stats
// readers, and Compile must delegate on the Fused hint.
func TestFusedStatsAndHint(t *testing.T) {
	g := usecases.Generate(8, 4, 23)
	p, err := g.Build(usecases.RepGoto)
	if err != nil {
		t.Fatal(err)
	}
	p.Fused = true
	dp, err := Compile(p, AutoTemplates)
	if err != nil {
		t.Fatal(err)
	}
	fs := dp.Fused()
	if fs == nil || fs.Rules == 0 || fs.Nodes == 0 || fs.Leaves == 0 {
		t.Fatalf("degenerate fused stats: %+v", fs)
	}
	if dp.Depth() != 1 || dp.Templates()[0] != "fdd" {
		t.Fatalf("fused pipeline shape: depth=%d templates=%v", dp.Depth(), dp.Templates())
	}
	interp, err := Compile(&mat.Pipeline{Name: p.Name, Stages: p.Stages, Start: p.Start}, AutoTemplates)
	if err != nil {
		t.Fatal(err)
	}
	if interp.Fused() != nil {
		t.Fatal("interpreted pipeline reports fused stats")
	}
}

func benchPipeline(b *testing.B, rep usecases.Representation) {
	g := usecases.Generate(20, 8, 42)
	p, err := g.Build(rep)
	if err != nil {
		b.Fatal(err)
	}
	dp, err := Compile(p, AutoTemplates)
	if err != nil {
		b.Fatal(err)
	}
	ctx := dp.NewCtx()
	rng := rand.New(rand.NewSource(9))
	pkts := make([]*packet.Packet, 256)
	for i := range pkts {
		svc := g.Services[rng.Intn(len(g.Services))]
		pkts[i] = packet.TCP4(1, 2, rng.Uint32(), svc.VIP, 1234, svc.Port)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dp.Process(pkts[i%len(pkts)], ctx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProcessGwLBGoto(b *testing.B)  { benchPipeline(b, usecases.RepGoto) }
func BenchmarkProcessGwLBFused(b *testing.B) { benchPipeline(b, usecases.RepFused) }
