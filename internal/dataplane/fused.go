package dataplane

import (
	"fmt"
	"sync/atomic"
	"time"

	"manorm/internal/classifier"
	"manorm/internal/fdd"
	"manorm/internal/mat"
	"manorm/internal/packet"
	"manorm/internal/telemetry"
)

// CompileFused lowers a pipeline through the fusion compiler
// (internal/fdd) into a single-stage executable: one first-match decision
// structure whose leaves carry the concatenated actions of the fused-away
// path. Table-to-table joins, metadata plumbing and rematch re-entries
// are resolved at compile time, so forwarding is one classifier walk —
// the batch path, per-shard caches and counter machinery of the
// interpreted pipeline are reused unchanged.
//
// The fused stage keeps the *logical* pipeline observable: Verdict.Tables
// reports the depth of the fused-away path and ProcessExplain replays the
// reconstructed per-table witness, so the runtime Theorem-1 equivalence
// check compares fused and interpreted runs stage by stage.
//
// Megaflow traces of fused entries claim the full width of every consulted
// column. Per-rule prefix masks would be unsound here: fused rules
// overlap in first-match order, so a hit does not imply the packet avoids
// every earlier rule on the matched bits alone.
func CompileFused(p *mat.Pipeline, opts ...Option) (*Pipeline, error) {
	var cfg compileCfg
	for _, o := range opts {
		o(&cfg)
	}
	var binder *packet.Binder
	if cfg.schema != nil {
		binder = packet.NewBinder(cfg.schema)
	}
	for _, st := range p.Stages {
		if err := checkProvenance(st.Table, cfg.schema); err != nil {
			return nil, err
		}
	}
	t0 := time.Now()
	prog, err := fdd.Fuse(p)
	if err != nil {
		return nil, fmt.Errorf("dataplane: fuse %s: %w", p.Name, err)
	}
	cls, err := classifier.NewFDD(prog.MatchTable())
	if err != nil {
		return nil, fmt.Errorf("dataplane: fused classifier %s: %w", p.Name, err)
	}
	metaIdx := assignMetaIndices(p)

	ct := &Table{
		Name:        "fused",
		cls:         cls,
		next:        -1,
		missDrop:    true,
		counters:    make([]atomic.Uint64, len(prog.Rules)),
		Template:    cls.Template(),
		fusedTables: make([]int32, len(prog.Rules)),
		fusedStages: make([][]telemetry.TraceStage, len(prog.Rules)),
	}
	for _, c := range prog.Cols {
		col := matchCol{
			field: c.Name, fid: packet.FieldID(c.Name), slot: -1, meta: -1, width: c.Width,
		}
		if binder != nil {
			if col.slot = binder.Slot(c.Name); col.slot < 0 {
				return nil, fmt.Errorf("dataplane: fused %s matches %q, not a field of schema %s", p.Name, c.Name, cfg.schema.Name)
			}
		}
		ct.cols = append(ct.cols, col)
	}
	fullPlens := make([]uint8, len(prog.Cols))
	for i, c := range prog.Cols {
		fullPlens[i] = c.Width
	}
	for ri, r := range prog.Rules {
		var acts []Action
		for _, a := range r.Acts {
			if la := lowerFusedAct(a, binder); la.Kind != actNone {
				acts = append(acts, la)
			}
		}
		if r.Drop {
			acts = append(acts, Action{Kind: ActDrop})
		}
		ct.acts = append(ct.acts, acts)
		ct.gotos = append(ct.gotos, -1)
		ct.plens = append(ct.plens, fullPlens)
		ct.fusedTables[ri] = int32(r.Tables())
		ct.fusedStages[ri] = fusedWitnessStages(r, metaIdx)
	}

	out := &Pipeline{Name: p.Name, tables: []*Table{ct}, start: 0, nMeta: 0, fusedT: ct, fusedFDD: cls, schema: cfg.schema}
	if cfg.reg != nil {
		out.tel = &pipelineTel{
			procNs: cfg.reg.Histogram(fmt.Sprintf("pipeline.%s.process_ns", out.Name)),
			stages: []stageTel{{
				lookups: cfg.reg.Counter(fmt.Sprintf("pipeline.%s.stage0.fused.lookups", out.Name)),
				matches: cfg.reg.Counter(fmt.Sprintf("pipeline.%s.stage0.fused.matches", out.Name)),
				misses:  cfg.reg.Counter(fmt.Sprintf("pipeline.%s.stage0.fused.misses", out.Name)),
			}},
		}
		// Fusion-cost instruments: decision-structure size and compile
		// latency, reported by `mabench -metrics` alongside throughput.
		prefix := fmt.Sprintf("pipeline.%s.fdd.", out.Name)
		cfg.reg.Gauge(prefix + "rules").Set(float64(len(prog.Rules)))
		cfg.reg.Gauge(prefix + "nodes").Set(float64(cls.Nodes()))
		cfg.reg.Gauge(prefix + "leaves").Set(float64(cls.Leaves()))
		cfg.reg.Gauge(prefix + "depth").Set(float64(cls.DecisionDepth()))
		cfg.reg.Gauge(prefix + "compile_ns").Set(float64(time.Since(t0)))
	}
	return out, nil
}

// processFused is the fused hot path: the general stage loop specialized
// for exactly one table with no metadata registers, no goto dispatch and
// drop-on-miss, and with the decision-structure lookup devirtualized. It
// must stay verdict-identical to process() on the same fused table (the
// traced and ProcessExplain paths still run the general machinery).
func (p *Pipeline) processFused(pkt *packet.Packet, ctx *Ctx) (Verdict, error) {
	var t0 time.Time
	if p.tel != nil {
		t0 = time.Now()
		p.tel.stages[0].lookups.Inc()
	}
	t := p.fusedT
	key := ctx.key[:len(t.cols)]
	ei := -1
	ok := true
	for i := range t.cols {
		if key[i], ok = pkt.FieldByID(t.cols[i].fid); !ok {
			break
		}
	}
	if ok {
		ei = p.fusedFDD.Lookup(key)
	}
	v := Verdict{Tables: 1}
	if ei < 0 {
		v.Drop = true
		if p.tel != nil {
			p.tel.stages[0].misses.Inc()
			p.tel.procNs.Observe(float64(time.Since(t0)))
		}
		return v, nil
	}
	if p.tel != nil {
		p.tel.stages[0].matches.Inc()
	}
	t.counters[ei].Add(1)
	v.Tables = int(t.fusedTables[ei])
	for _, a := range t.acts[ei] {
		switch a.Kind {
		case ActOutput:
			v.Port = uint16(a.Value)
		case ActDecTTL:
			if pkt.HasIPv4 && pkt.TTL > 0 {
				pkt.TTL--
			}
		case ActSetField:
			pkt.SetField(a.Field, a.Value)
		case ActDrop:
			v.Drop = true
		}
	}
	if p.tel != nil {
		p.tel.procNs.Observe(float64(time.Since(t0)))
	}
	return v, nil
}

// processFusedView is the fused hot path over a decoded FieldView: the
// same devirtualized single-lookup loop as processFused, with field reads
// and writes going through the slot indices resolved by WithSchema. Kept
// as a separate specialization so the default Packet path stays
// byte-identical to its benchmarked shape.
func (p *Pipeline) processFusedView(view *packet.FieldView, ctx *Ctx) (Verdict, error) {
	var t0 time.Time
	if p.tel != nil {
		t0 = time.Now()
		p.tel.stages[0].lookups.Inc()
	}
	t := p.fusedT
	key := ctx.key[:len(t.cols)]
	ei := -1
	ok := true
	for i := range t.cols {
		if key[i], ok = view.Get(t.cols[i].slot); !ok {
			break
		}
	}
	if ok {
		ei = p.fusedFDD.Lookup(key)
	}
	v := Verdict{Tables: 1}
	if ei < 0 {
		v.Drop = true
		if p.tel != nil {
			p.tel.stages[0].misses.Inc()
			p.tel.procNs.Observe(float64(time.Since(t0)))
		}
		return v, nil
	}
	if p.tel != nil {
		p.tel.stages[0].matches.Inc()
	}
	t.counters[ei].Add(1)
	v.Tables = int(t.fusedTables[ei])
	for _, a := range t.acts[ei] {
		switch a.Kind {
		case ActOutput:
			v.Port = uint16(a.Value)
		case ActDecTTL:
			if ttl, tok := view.Get(a.Slot); tok && ttl > 0 {
				view.Set(a.Slot, ttl-1)
			}
		case ActSetField:
			view.Set(a.Slot, a.Value)
		case ActDrop:
			v.Drop = true
		}
	}
	if p.tel != nil {
		p.tel.procNs.Observe(float64(time.Since(t0)))
	}
	return v, nil
}

// FusedStats describes a compiled fused stage for stats readers.
type FusedStats struct {
	Rules  int `json:"rules"`
	Nodes  int `json:"nodes"`
	Leaves int `json:"leaves"`
	Depth  int `json:"depth"` // decision-path depth, not pipeline depth
}

// Fused returns the decision-structure statistics when the pipeline was
// compiled by CompileFused, else nil.
func (p *Pipeline) Fused() *FusedStats {
	if len(p.tables) != 1 || p.tables[0].fusedTables == nil {
		return nil
	}
	c, ok := p.tables[0].cls.(*classifier.FDD)
	if !ok {
		return nil
	}
	return &FusedStats{
		Rules: len(p.tables[0].counters), Nodes: c.Nodes(),
		Leaves: c.Leaves(), Depth: c.DecisionDepth(),
	}
}

// actNone marks logical acts with no physical lowering (metadata writes:
// every downstream consumer was resolved at fusion time).
const actNone ActionKind = 0xFF

// lowerFusedAct maps one logical fused act to its physical action.
func lowerFusedAct(a fdd.Act, binder *packet.Binder) Action {
	switch {
	case a.Attr == "out":
		return Action{Kind: ActOutput, Value: a.Value}
	case a.Attr == "mod_ttl":
		return Action{Kind: ActDecTTL, Slot: ttlSlot(binder)}
	case mat.IsLinkAttr(a.Attr):
		return Action{Kind: actNone}
	default:
		return Action{Kind: ActSetField, Field: actionField(a.Attr), Slot: actionSlot(binder, a.Attr), Value: a.Value}
	}
}

// assignMetaIndices replicates Compile's metadata-register numbering (in
// stage order: match columns first, then action attributes entry by
// entry), so fused witnesses render "meta[i]=v" with the same register
// indices the interpreted pipeline reports.
func assignMetaIndices(p *mat.Pipeline) map[string]int {
	idx := make(map[string]int)
	assign := func(name string) {
		if _, ok := idx[name]; !ok {
			idx[name] = len(idx)
		}
	}
	for _, st := range p.Stages {
		sch := st.Table.Schema
		for _, fi := range sch.Fields() {
			if mat.IsLinkAttr(sch[fi].Name) {
				assign(sch[fi].Name)
			}
		}
		for range st.Table.Entries {
			for i, at := range sch {
				if at.Kind == mat.Action && i != sch.Index(mat.GotoAttr) && mat.IsLinkAttr(at.Name) {
					assign(at.Name)
				}
			}
		}
	}
	return idx
}

// fusedWitnessStages pre-renders the logical per-table witness of one
// fused rule; ProcessExplain replays it verbatim.
func fusedWitnessStages(r fdd.Rule, metaIdx map[string]int) []telemetry.TraceStage {
	stages := make([]telemetry.TraceStage, 0, len(r.Steps))
	for _, s := range r.Steps {
		st := telemetry.TraceStage{Stage: s.Stage, Table: s.Table, Entry: s.Entry, Join: s.Join}
		for _, a := range s.Acts {
			st.Actions = append(st.Actions, renderFusedAct(a, metaIdx))
		}
		stages = append(stages, st)
	}
	return stages
}

// renderFusedAct formats one logical act exactly as the interpreted
// witness renders the corresponding compiled action.
func renderFusedAct(a fdd.Act, metaIdx map[string]int) string {
	switch {
	case a.Attr == "out":
		return fmt.Sprintf("out=%d", a.Value)
	case a.Attr == "mod_ttl":
		return "dec_ttl"
	case mat.IsLinkAttr(a.Attr):
		return fmt.Sprintf("meta[%d]=%d", metaIdx[a.Attr], a.Value)
	default:
		return fmt.Sprintf("set %s=%#x", actionField(a.Attr), a.Value)
	}
}
