package dataplane

import (
	"sync"
	"testing"
)

// TestConcurrentProcess runs many goroutines through one compiled pipeline,
// each with its own Ctx: classifiers are immutable and counters atomic, so
// results must be correct and the race detector quiet.
func TestConcurrentProcess(t *testing.T) {
	dp, err := Compile(fig1b(), AutoTemplates)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed uint32) {
			defer wg.Done()
			ctx := dp.NewCtx()
			for i := 0; i < perWorker; i++ {
				src := seed*2654435761 + uint32(i)*2246822519
				v, err := dp.Process(tcpTo(src, 0xC0000201, 80), ctx)
				if err != nil {
					errs <- err
					return
				}
				wantPort := uint16(1)
				if src >= 1<<31 {
					wantPort = 2
				}
				if v.Drop || v.Port != wantPort {
					errs <- newErrVerdict(src, v.Port, wantPort)
					return
				}
			}
		}(uint32(w))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Counters must account for every packet exactly once.
	total := uint64(0)
	for _, c := range dp.Counters(0) {
		total += c
	}
	if total != workers*perWorker {
		t.Errorf("stage-0 counters sum to %d, want %d", total, workers*perWorker)
	}
}

type errVerdict struct {
	src       uint32
	got, want uint16
}

func (e errVerdict) Error() string {
	return "wrong verdict"
}

func newErrVerdict(src uint32, got, want uint16) error { return errVerdict{src, got, want} }
