package dataplane

import (
	"fmt"

	"manorm/internal/packet"
	"manorm/internal/telemetry"
)

// ProcessExplain runs one packet through the pipeline exactly like
// Process (actions applied, counters updated) while building a
// per-packet witness: every table visited, the matched rule, the applied
// actions and the join mechanism that carried execution to the next
// stage. The witness of a universal table and of its decomposed pipeline
// on the same packet must agree on the verdict — a runtime instance of
// the paper's Theorem 1 equivalence, with the per-stage records showing
// *how* each representation reached it.
//
// Explain is the sampled slow path of the trace facility; it allocates
// (one Trace plus a record per stage) and is not meant for every packet.
func (p *Pipeline) ProcessExplain(pkt *packet.Packet, ctx *Ctx) (Verdict, *telemetry.Trace, error) {
	return p.explain(pkt, nil, ctx)
}

// ProcessExplainView is ProcessExplain over a decoded FieldView; the
// pipeline must have been compiled with WithSchema on the view's schema.
func (p *Pipeline) ProcessExplainView(view *packet.FieldView, ctx *Ctx) (Verdict, *telemetry.Trace, error) {
	if p.schema == nil {
		return Verdict{}, nil, fmt.Errorf("dataplane: pipeline %s was not compiled with WithSchema", p.Name)
	}
	if view.Schema() != p.schema {
		return Verdict{}, nil, fmt.Errorf("dataplane: pipeline %s compiled for schema %s, view is %s", p.Name, p.schema.Name, view.Schema().Name)
	}
	return p.explain(nil, view, ctx)
}

// explain is the shared witness loop; exactly one of pkt and view is
// non-nil.
func (p *Pipeline) explain(pkt *packet.Packet, view *packet.FieldView, ctx *Ctx) (Verdict, *telemetry.Trace, error) {
	wit := &telemetry.Trace{Pipeline: p.Name}
	for i := range ctx.meta {
		ctx.meta[i] = 0
	}
	var v Verdict
	cur := p.start
	for steps := 0; cur >= 0; steps++ {
		if steps > len(p.tables) {
			return v, wit, fmt.Errorf("dataplane: pipeline %s: goto cycle", p.Name)
		}
		t := p.tables[cur]
		v.Tables++
		st := telemetry.TraceStage{Stage: cur, Table: t.Name, Entry: -1}

		key := ctx.key[:len(t.cols)]
		miss := false
		for i := range t.cols {
			c := &t.cols[i]
			if c.meta >= 0 {
				key[i] = ctx.meta[c.meta]
				continue
			}
			var fv uint64
			var ok bool
			if view != nil {
				fv, ok = view.Get(c.slot)
			} else {
				fv, ok = pkt.Field(c.field)
			}
			if !ok {
				miss = true
				break
			}
			key[i] = fv
		}
		ei := -1
		if !miss {
			ei = t.cls.Lookup(key)
		}
		if ei < 0 {
			if t.missDrop {
				st.Join = "drop"
				wit.Stages = append(wit.Stages, st)
				v.Drop = true
				wit.Drop, wit.Port, wit.Tables = v.Drop, v.Port, v.Tables
				return v, wit, nil
			}
			st.Join = joinName(-1, false, t.next)
			wit.Stages = append(wit.Stages, st)
			cur = t.next
			continue
		}
		st.Entry = ei
		t.counters[ei].Add(1)
		if t.fusedStages != nil {
			// A fused hit replays the pre-rendered logical witness of the
			// fused-away path (and the path's concatenated actions), so the
			// Theorem-1 check sees the same per-table trace the interpreted
			// pipeline would produce.
			for _, a := range t.acts[ei] {
				applyExplainAct(a, pkt, view, &v)
			}
			v.Tables = int(t.fusedTables[ei])
			wit.Stages = append(wit.Stages, t.fusedStages[ei]...)
			wit.Drop, wit.Port, wit.Tables = v.Drop, v.Port, v.Tables
			return v, wit, nil
		}
		setsMeta := false
		for _, a := range t.acts[ei] {
			st.Actions = append(st.Actions, renderAction(a))
			if a.Kind == ActSetMeta {
				ctx.meta[a.Meta] = a.Value
				setsMeta = true
				continue
			}
			applyExplainAct(a, pkt, view, &v)
		}
		g := t.gotos[ei]
		st.Join = joinName(g, setsMeta, t.next)
		wit.Stages = append(wit.Stages, st)
		if g >= 0 {
			cur = g
		} else {
			cur = t.next
		}
	}
	wit.Drop, wit.Port, wit.Tables = v.Drop, v.Port, v.Tables
	return v, wit, nil
}

// applyExplainAct applies one non-metadata action on whichever packet
// representation the explain run carries.
func applyExplainAct(a Action, pkt *packet.Packet, view *packet.FieldView, v *Verdict) {
	switch a.Kind {
	case ActOutput:
		v.Port = uint16(a.Value)
	case ActDecTTL:
		if view != nil {
			if ttl, ok := view.Get(a.Slot); ok && ttl > 0 {
				view.Set(a.Slot, ttl-1)
			}
		} else if pkt.HasIPv4 && pkt.TTL > 0 {
			pkt.TTL--
		}
	case ActSetField:
		if view != nil {
			view.Set(a.Slot, a.Value)
		} else {
			pkt.SetField(a.Field, a.Value)
		}
	case ActDrop:
		v.Drop = true
	}
}

// joinName classifies the mechanism that carries execution onward from a
// stage: an explicit goto, a metadata register handed to the next stage,
// or plain fall-through (the rematch abstraction: the next stage matches
// packet headers again). A next of -1 ends the pipeline.
func joinName(gotoTarget int, setsMeta bool, next int) string {
	switch {
	case gotoTarget >= 0:
		return "goto"
	case next < 0:
		return "terminal"
	case setsMeta:
		return "metadata"
	default:
		return "rematch"
	}
}

// renderAction formats one compiled action for witness output.
func renderAction(a Action) string {
	switch a.Kind {
	case ActOutput:
		return fmt.Sprintf("out=%d", a.Value)
	case ActSetMeta:
		return fmt.Sprintf("meta[%d]=%d", a.Meta, a.Value)
	case ActDecTTL:
		return "dec_ttl"
	case ActSetField:
		return fmt.Sprintf("set %s=%#x", a.Field, a.Value)
	case ActDrop:
		return "drop"
	default:
		return fmt.Sprintf("action(%d)", a.Kind)
	}
}
