package dataplane

import (
	"fmt"

	"manorm/internal/packet"
	"manorm/internal/telemetry"
)

// ProcessExplain runs one packet through the pipeline exactly like
// Process (actions applied, counters updated) while building a
// per-packet witness: every table visited, the matched rule, the applied
// actions and the join mechanism that carried execution to the next
// stage. The witness of a universal table and of its decomposed pipeline
// on the same packet must agree on the verdict — a runtime instance of
// the paper's Theorem 1 equivalence, with the per-stage records showing
// *how* each representation reached it.
//
// Explain is the sampled slow path of the trace facility; it allocates
// (one Trace plus a record per stage) and is not meant for every packet.
// It is a thin adapter over the same general loop Process runs — the
// witness branches are nil-guarded inside it.
func (p *Pipeline) ProcessExplain(pkt *packet.Packet, ctx *Ctx) (Verdict, *telemetry.Trace, error) {
	wit := &telemetry.Trace{Pipeline: p.Name}
	v, err := p.process(pkt, nil, ctx, nil, wit)
	return v, wit, err
}

// ProcessExplainView is ProcessExplain over a decoded FieldView; the
// pipeline must have been compiled with WithSchema on the view's schema.
func (p *Pipeline) ProcessExplainView(view *packet.FieldView, ctx *Ctx) (Verdict, *telemetry.Trace, error) {
	if p.schema == nil {
		return Verdict{}, nil, fmt.Errorf("dataplane: pipeline %s was not compiled with WithSchema", p.Name)
	}
	if view.Schema() != p.schema {
		return Verdict{}, nil, fmt.Errorf("dataplane: pipeline %s compiled for schema %s, view is %s", p.Name, p.schema.Name, view.Schema().Name)
	}
	wit := &telemetry.Trace{Pipeline: p.Name}
	v, err := p.process(nil, view, ctx, nil, wit)
	return v, wit, err
}

// joinName classifies the mechanism that carries execution onward from a
// stage: an explicit goto, a metadata register handed to the next stage,
// or plain fall-through (the rematch abstraction: the next stage matches
// packet headers again). A next of -1 ends the pipeline.
func joinName(gotoTarget int, setsMeta bool, next int) string {
	switch {
	case gotoTarget >= 0:
		return "goto"
	case next < 0:
		return "terminal"
	case setsMeta:
		return "metadata"
	default:
		return "rematch"
	}
}

// renderAction formats one compiled action for witness output.
func renderAction(a Action) string {
	switch a.Kind {
	case ActOutput:
		return fmt.Sprintf("out=%d", a.Value)
	case ActSetMeta:
		return fmt.Sprintf("meta[%d]=%d", a.Meta, a.Value)
	case ActDecTTL:
		return "dec_ttl"
	case ActSetField:
		return fmt.Sprintf("set %s=%#x", a.Field, a.Value)
	case ActDrop:
		return "drop"
	default:
		return fmt.Sprintf("action(%d)", a.Kind)
	}
}
