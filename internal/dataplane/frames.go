package dataplane

import (
	"fmt"

	"manorm/internal/packet"
	"manorm/internal/telemetry"
)

// This file is the zero-copy wire-ingest surface: raw frames decode
// through a per-worker FrameBatch arena (a ring of reusable decode
// targets) and run straight through the interpreted or fused pipeline
// core, with no intermediate *packet.Packet allocation. The legacy
// struct-based entry points remain as thin adapters over the same core
// loop; ProcessFrames is the batch entry the switch models build their
// Worker APIs on.

// frameRingLen is the capacity of a schema arena's view ring. It is
// deliberately small: each live view is working-set the forwarding loop
// drags through the cache, and a ring sized to a whole measurement batch
// (64) costs double-digit percent throughput against a hot scratch slot.
// Four keeps the last few views addressable (enough for any decode hook
// that looks backward) at negligible cache cost.
const frameRingLen = 4

// ProcessOpt configures one processing call.
type ProcessOpt func(*ProcessOpts)

// ProcessOpts is the unified option set of the processing entry points.
// Build one per worker with NewProcessOpts and reuse it — a nil
// *ProcessOpts means plain processing and is always valid. All options
// funnel into the one general loop behind Process / ProcessBatch /
// ProcessExplain / ProcessFrames, so new processing modes extend this
// struct instead of adding another entry-point signature.
type ProcessOpts struct {
	// trace, when non-nil, collects the megaflow wildcard trace of each
	// processed packet (reset per packet).
	trace *Trace
	// onDecode runs after a frame decodes and before the pipeline; a
	// false return drops the frame without traversal. Exactly one of its
	// arguments is non-nil, mirroring the decode mode.
	onDecode func(pkt *packet.Packet, view *packet.FieldView) bool
}

// NewProcessOpts builds a reusable option set.
func NewProcessOpts(opts ...ProcessOpt) *ProcessOpts {
	o := &ProcessOpts{}
	for _, opt := range opts {
		opt(o)
	}
	return o
}

// WithTrace collects each packet's megaflow wildcard trace into tr.
func WithTrace(tr *Trace) ProcessOpt {
	return func(o *ProcessOpts) { o.trace = tr }
}

// WithDecodeHook runs fn on every successfully decoded frame before the
// pipeline; returning false drops the frame. This is how per-packet
// model overheads (e.g. the Lagopus record lift) ride the frame path
// without a dedicated entry point.
func WithDecodeHook(fn func(pkt *packet.Packet, view *packet.FieldView) bool) ProcessOpt {
	return func(o *ProcessOpts) { o.onDecode = fn }
}

// FrameBatch is the per-worker arena of the wire-ingest API: reusable
// decode targets (a FieldView ring under a schema decoder, one hot
// scratch Packet on the default path), the pipeline scratch Ctx, and
// typed per-reason decode counters. One FrameBatch per goroutine; it is
// not safe for concurrent use. Decode targets are loans — a view is
// overwritten ring-capacity frames later, the default-path Packet by the
// very next frame — so callers must not retain them.
type FrameBatch struct {
	dec  *packet.Decoder
	ring *packet.ViewRing
	// scratch is the default-path decode target: one hot Packet, exactly
	// the per-worker scratch the switch models carried before this API.
	scratch packet.Packet

	// ctx caches the pipeline scratch per installed pipeline:
	// ProcessFrames re-provisions it when the pipeline pointer changes —
	// the reinstall-epoch bookkeeping the switch workers otherwise carry
	// by hand.
	ctxOwner *Pipeline
	ctx      *Ctx

	// Local tallies always count; the tel* counters additionally record
	// into a registry after Attach.
	truncated   uint64
	badHeader   uint64
	unknownNext uint64
	telTrunc    *telemetry.Counter
	telBad      *telemetry.Counter
	telUnknown  *telemetry.Counter
}

// NewFrameBatch builds the per-worker arena. A nil decoder selects the
// default-schema ingest path (hot scratch Packet, hand-written codec); a
// non-nil decoder selects the schema path (FieldView ring through the
// compiled parse graph).
func NewFrameBatch(dec *packet.Decoder) *FrameBatch {
	a := &FrameBatch{dec: dec}
	if dec != nil {
		a.ring = dec.NewRing(frameRingLen)
	}
	return a
}

// Attach registers the arena's typed decode counters in reg
// ("ingest.drops.truncated", "ingest.drops.bad_header",
// "ingest.unknown_next") and returns the arena. Counters are shared by
// name, so the arenas of many workers attached to one registry
// aggregate naturally. A nil registry is a no-op.
func (a *FrameBatch) Attach(reg *telemetry.Registry) *FrameBatch {
	if reg == nil {
		return a
	}
	a.telTrunc = reg.Counter("ingest.drops.truncated")
	a.telBad = reg.Counter("ingest.drops.bad_header")
	a.telUnknown = reg.Counter("ingest.unknown_next")
	return a
}

// Drops reports the arena's decode tallies: frames rejected as
// truncated, frames rejected for a bad header, and accepted frames
// whose parse stopped at an unknown next-header (informational — those
// frames were processed).
func (a *FrameBatch) Drops() (truncated, badHeader, unknownNext uint64) {
	return a.truncated, a.badHeader, a.unknownNext
}

// DropTotal is the number of frames the arena rejected at decode.
func (a *FrameBatch) DropTotal() uint64 { return a.truncated + a.badHeader }

// Decode parses one frame into the arena's next decode target and
// returns the decoded form: (pkt, nil) on the default path, (nil, view)
// on the schema path. Decode failures bump the typed per-reason counter
// and return the error; the caller decides the verdict (ProcessFrames
// drops such frames). The returned target is reused by a later Decode —
// after ring-capacity calls on the schema path, by the very next call on
// the default path — so callers must not retain it.
func (a *FrameBatch) Decode(frame []byte) (*packet.Packet, *packet.FieldView, error) {
	if a.ring != nil {
		v := a.ring.Next()
		if err := a.dec.ParseInto(v, frame); err != nil {
			a.countErr(err)
			return nil, nil, err
		}
		if v.UnknownNext() {
			a.unknownNext++
			if a.telUnknown != nil {
				a.telUnknown.Inc()
			}
		}
		return nil, v, nil
	}
	p := &a.scratch
	if err := p.ParseInto(frame); err != nil {
		a.countErr(err)
		return nil, nil, err
	}
	a.noteLegacyUnknown(p)
	return p, nil, nil
}

// noteLegacyUnknown counts default-path frames whose parse stopped short
// of a known L3/L4 stack — the hand-written codec's equivalent of the
// parse graph's unknown next-header exit.
func (a *FrameBatch) noteLegacyUnknown(p *packet.Packet) {
	if p.EthType != packet.EtherTypeIPv4 ||
		(p.HasIPv4 && !p.HasL4 && p.Proto != packet.ProtoTCP && p.Proto != packet.ProtoUDP) {
		a.unknownNext++
		if a.telUnknown != nil {
			a.telUnknown.Inc()
		}
	}
}

// countErr records a decode failure under its typed reason.
func (a *FrameBatch) countErr(err error) {
	if packet.DecodeReasonOf(err) == packet.ReasonBadHeader {
		a.badHeader++
		if a.telBad != nil {
			a.telBad.Inc()
		}
		return
	}
	a.truncated++
	if a.telTrunc != nil {
		a.telTrunc.Inc()
	}
}

// ctxFor returns the arena's scratch Ctx for p, re-provisioning when the
// pipeline changed since the last call.
func (a *FrameBatch) ctxFor(p *Pipeline) *Ctx {
	if a.ctxOwner != p {
		a.ctxOwner = p
		a.ctx = p.NewCtx()
	}
	return a.ctx
}

// ProcessFrames is the zero-copy wire-ingest entry point: it decodes raw
// frames through the arena's ring and runs each decoded packet through
// the pipeline, writing the i-th verdict into out[i]. Malformed frames
// drop, counted per reason in the arena; well-formed frames take the
// fused fast path when the pipeline is fused and no option forces the
// general loop. The steady-state path allocates nothing.
//
// The arena's decode mode must match the pipeline: a schema pipeline
// needs an arena built on a decoder of the same schema, a default
// pipeline needs a default (nil-decoder) arena. opts may be nil.
func (p *Pipeline) ProcessFrames(frames [][]byte, arena *FrameBatch, out []Verdict, opts *ProcessOpts) error {
	if arena == nil {
		return fmt.Errorf("dataplane: pipeline %s: ProcessFrames needs a FrameBatch arena", p.Name)
	}
	if len(out) < len(frames) {
		return fmt.Errorf("dataplane: verdict buffer %d too small for batch of %d", len(out), len(frames))
	}
	if p.schema != nil {
		if arena.dec == nil || arena.dec.Schema() != p.schema {
			return fmt.Errorf("dataplane: pipeline %s compiled for schema %s; arena decoder does not match", p.Name, p.schema.Name)
		}
	} else if arena.dec != nil {
		return fmt.Errorf("dataplane: pipeline %s uses the default packet path; arena was built for schema %s", p.Name, arena.dec.Schema().Name)
	}
	ctx := arena.ctxFor(p)
	var tr *Trace
	var hook func(*packet.Packet, *packet.FieldView) bool
	if opts != nil {
		tr, hook = opts.trace, opts.onDecode
	}
	if tr == nil && hook == nil && arena.ring == nil {
		return p.framesDefault(frames, arena, out, ctx)
	}
	for i, f := range frames {
		pkt, view, err := arena.Decode(f)
		if err != nil {
			out[i] = Verdict{Drop: true}
			continue
		}
		if hook != nil && !hook(pkt, view) {
			out[i] = Verdict{Drop: true}
			continue
		}
		var v Verdict
		if tr != nil {
			tr.Reset()
			v, err = p.process(pkt, view, ctx, tr, nil)
		} else if p.fusedT != nil {
			if view != nil {
				v, err = p.processFusedView(view, ctx)
			} else {
				v, err = p.processFused(pkt, ctx)
			}
		} else {
			v, err = p.process(pkt, view, ctx, nil, nil)
		}
		if err != nil {
			return err
		}
		out[i] = v
	}
	return nil
}

// framesDefault is the specialized default-schema loop behind
// ProcessFrames when no option forces the general path: the per-frame
// decode is inlined against the arena's scratch ring so the steady state
// matches the hand-written parse-and-process loop the switch workers
// used to carry.
func (p *Pipeline) framesDefault(frames [][]byte, arena *FrameBatch, out []Verdict, ctx *Ctx) error {
	fused := p.fusedT != nil
	pkt := &arena.scratch
	for i, f := range frames {
		if err := pkt.ParseInto(f); err != nil {
			arena.countErr(err)
			out[i] = Verdict{Drop: true}
			continue
		}
		arena.noteLegacyUnknown(pkt)
		var v Verdict
		var err error
		if fused {
			v, err = p.processFused(pkt, ctx)
		} else {
			v, err = p.process(pkt, nil, ctx, nil, nil)
		}
		if err != nil {
			return err
		}
		out[i] = v
	}
	return nil
}
