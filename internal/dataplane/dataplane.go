// Package dataplane compiles match-action pipelines (internal/mat) into an
// executable form and runs packets through them: per-table classifiers,
// compiled action lists, metadata registers, goto control flow and
// per-entry counters.
//
// This is the substrate every switch model in internal/switches builds on;
// the models differ only in how they choose classifier templates and what
// per-stage costs they add.
package dataplane

import (
	"fmt"
	"sync/atomic"
	"time"

	"manorm/internal/classifier"
	"manorm/internal/mat"
	"manorm/internal/packet"
	"manorm/internal/telemetry"
)

// ActionKind enumerates compiled packet actions.
type ActionKind uint8

const (
	// ActSetField writes a header field.
	ActSetField ActionKind = iota
	// ActOutput selects the output port (the "out" attribute).
	ActOutput
	// ActSetMeta writes a metadata register.
	ActSetMeta
	// ActDecTTL decrements the IPv4 TTL (the "mod_ttl" attribute).
	ActDecTTL
	// ActDrop drops the packet. Source pipelines express drops only as
	// miss policies; fused rule lists (CompileFused) need the explicit
	// form because a fused drop path must keep its position in the
	// first-match order rather than fall through to a table miss.
	ActDrop
)

// Action is one compiled action.
type Action struct {
	Kind  ActionKind
	Field string // for ActSetField
	Meta  int    // register index for ActSetMeta
	Slot  int    // target field slot under WithSchema (set-field / dec-ttl)
	Value uint64
}

// matchCol describes where one match column's key word comes from.
type matchCol struct {
	field string // packet field name ("" when meta >= 0)
	fid   int    // dense packet field id (packet.FieldID), -1 for unknown
	slot  int    // schema slot index under WithSchema, -1 otherwise
	meta  int    // metadata register index, -1 for packet fields
	width uint8
}

// Table is a compiled match-action table.
type Table struct {
	Name  string
	cols  []matchCol
	cls   classifier.Classifier
	acts  [][]Action
	gotos []int // per entry: target stage or -1
	// plens holds each entry's per-column prefix lengths, for megaflow
	// wildcard tracing.
	plens    [][]uint8
	next     int
	missDrop bool
	counters []atomic.Uint64
	// Template records which classifier template the table compiled to.
	Template string
	// Fused-table metadata (nil on interpreted tables): per entry, the
	// logical depth of the source path and the reconstructed witness
	// stages (see CompileFused).
	fusedTables []int32
	fusedStages [][]telemetry.TraceStage
}

// Verdict is the result of processing one packet.
type Verdict struct {
	// Drop reports a table miss on a drop-on-miss stage.
	Drop bool
	// Port is the selected output port (valid when !Drop and an output
	// action ran).
	Port uint16
	// Tables is the number of tables traversed (pipeline depth cost).
	Tables int
}

// Pipeline is an executable pipeline.
type Pipeline struct {
	Name   string
	tables []*Table
	start  int
	nMeta  int
	// tel holds the pre-resolved per-stage instruments; nil when the
	// pipeline is uninstrumented (the allocation-free fast path checks a
	// single pointer).
	tel *pipelineTel
	// fusedT/fusedFDD, set by CompileFused, route Process/ProcessBatch
	// through the straight-line fused hot path (one table, no metadata
	// registers, no goto dispatch, drop on miss) with the classifier call
	// devirtualized. Traced processing still takes the general loop.
	fusedT   *Table
	fusedFDD *classifier.FDD
	// schema, set by WithSchema, enables the FieldView entry points
	// (ProcessView and friends): match columns and rewriting actions were
	// resolved to the schema's slot indices at compile time.
	schema *packet.HeaderSchema
}

// Schema returns the header schema the pipeline was compiled against, or
// nil when compiled for the fixed default Packet path.
func (p *Pipeline) Schema() *packet.HeaderSchema { return p.schema }

// pipelineTel is the instrument set of one compiled pipeline: per-stage
// lookup/match/miss counters and the per-packet processing latency
// histogram. All instruments live in the registry passed to Compile, so
// snapshots of that registry carry them; the pipeline only keeps resolved
// pointers for the hot path.
type pipelineTel struct {
	stages []stageTel
	procNs *telemetry.Histogram
}

// stageTel is one stage's counter set.
type stageTel struct {
	lookups *telemetry.Counter
	matches *telemetry.Counter
	misses  *telemetry.Counter
}

// Option configures pipeline compilation.
type Option func(*compileCfg)

type compileCfg struct {
	reg    *telemetry.Registry
	schema *packet.HeaderSchema
}

// WithTelemetry instruments the compiled pipeline against the registry:
// per-stage lookup/match/miss counters
// ("pipeline.<name>.stage<i>.<table>.lookups", ".matches", ".misses") and
// a per-packet processing latency histogram ("pipeline.<name>.process_ns").
// A nil registry leaves the pipeline uninstrumented, so callers can pass
// their (possibly nil) registry through unconditionally.
func WithTelemetry(reg *telemetry.Registry) Option {
	return func(c *compileCfg) { c.reg = reg }
}

// WithSchema compiles the pipeline against a header schema: every match
// column and rewriting action resolves to a FieldView slot index, and
// the pipeline becomes processable through ProcessView on decoded views
// of that schema. Compilation fails on attribute names outside the
// schema and on tables whose Provenance names a different schema — a
// VXLAN program cannot silently bind to the default parser. A nil schema
// is a no-op, keeping the fixed Packet fast path.
func WithSchema(s *packet.HeaderSchema) Option {
	return func(c *compileCfg) { c.schema = s }
}

// checkProvenance rejects schema/table mismatches in either direction.
func checkProvenance(t *mat.Table, schema *packet.HeaderSchema) error {
	if t.Provenance == "" {
		return nil
	}
	if schema == nil {
		if t.Provenance != packet.SchemaDefault {
			return fmt.Errorf("dataplane: table %s was built against schema %q; compile it with WithSchema", t.Name, t.Provenance)
		}
		return nil
	}
	if t.Provenance != schema.Name {
		return fmt.Errorf("dataplane: table %s was built against schema %q, not %q", t.Name, t.Provenance, schema.Name)
	}
	return nil
}

// Ctx is per-worker scratch state: metadata registers and the key buffer.
// One Ctx per goroutine; Process must not be called concurrently on the
// same Ctx.
type Ctx struct {
	meta []uint64
	key  []uint64
}

// NewCtx allocates scratch state for the pipeline.
func (p *Pipeline) NewCtx() *Ctx {
	return &Ctx{meta: make([]uint64, p.nMeta), key: make([]uint64, 16)}
}

// TemplateSelector decides the classifier template for each stage table —
// the knob that distinguishes the switch models.
type TemplateSelector func(t *mat.Table) classifier.Template

// AutoTemplates picks the best template per shape (the ESwitch strategy).
func AutoTemplates(*mat.Table) classifier.Template { return classifier.Auto }

// FixedTemplate always uses one template (e.g. ternary for Lagopus-like
// representation-agnostic datapaths).
func FixedTemplate(tmpl classifier.Template) TemplateSelector {
	return func(*mat.Table) classifier.Template { return tmpl }
}

// Compile lowers a mat.Pipeline into executable form. The selector chooses
// each stage's classifier template; metadata attributes become registers
// indexed per distinct name. Options attach cross-cutting concerns, e.g.
// WithTelemetry.
func Compile(p *mat.Pipeline, sel TemplateSelector, opts ...Option) (*Pipeline, error) {
	if p.Fused {
		// The fusion hint overrides per-stage template selection: the whole
		// pipeline becomes one first-match decision structure.
		return CompileFused(p, opts...)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if sel == nil {
		sel = AutoTemplates
	}
	var cfg compileCfg
	for _, o := range opts {
		o(&cfg)
	}
	metaIdx := make(map[string]int)
	metaOf := func(name string) int {
		if i, ok := metaIdx[name]; ok {
			return i
		}
		i := len(metaIdx)
		metaIdx[name] = i
		return i
	}

	out := &Pipeline{Name: p.Name, start: p.Start, schema: cfg.schema}
	var binder *packet.Binder
	if cfg.schema != nil {
		binder = packet.NewBinder(cfg.schema)
	}
	for _, st := range p.Stages {
		t := st.Table
		if got := len(t.Schema.Fields()); got > 16 {
			return nil, fmt.Errorf("dataplane: table %s has %d match columns; the key buffer supports 16", t.Name, got)
		}
		if err := checkProvenance(t, cfg.schema); err != nil {
			return nil, err
		}
		cls, err := classifier.Compile(t, sel(t))
		if err != nil {
			return nil, fmt.Errorf("dataplane: table %s: %w", t.Name, err)
		}
		ct := &Table{
			Name:     t.Name,
			cls:      cls,
			next:     st.Next,
			missDrop: st.MissDrop,
			counters: make([]atomic.Uint64, len(t.Entries)),
			Template: cls.Template(),
		}
		for _, fi := range t.Schema.Fields() {
			at := t.Schema[fi]
			col := matchCol{width: at.Width, meta: -1, fid: -1, slot: -1}
			if mat.IsLinkAttr(at.Name) {
				col.meta = metaOf(at.Name)
			} else {
				col.field = at.Name
				col.fid = packet.FieldID(at.Name)
				if binder != nil {
					if col.slot = binder.Slot(at.Name); col.slot < 0 {
						return nil, fmt.Errorf("dataplane: table %s matches %q, not a field of schema %s", t.Name, at.Name, cfg.schema.Name)
					}
				}
			}
			ct.cols = append(ct.cols, col)
		}
		gotoIdx := t.Schema.Index(mat.GotoAttr)
		for _, e := range t.Entries {
			var acts []Action
			var plens []uint8
			for _, fi := range t.Schema.Fields() {
				plens = append(plens, e[fi].PLen)
			}
			ct.plens = append(ct.plens, plens)
			g := -1
			for i, at := range t.Schema {
				if at.Kind != mat.Action {
					continue
				}
				switch {
				case i == gotoIdx:
					g = int(e[i].Bits)
				case at.Name == "out":
					acts = append(acts, Action{Kind: ActOutput, Value: e[i].Bits})
				case at.Name == "mod_ttl":
					acts = append(acts, Action{Kind: ActDecTTL, Slot: ttlSlot(binder)})
				case mat.IsLinkAttr(at.Name):
					acts = append(acts, Action{Kind: ActSetMeta, Meta: metaOf(at.Name), Value: e[i].Bits})
				default:
					acts = append(acts, Action{Kind: ActSetField, Field: actionField(at.Name), Slot: actionSlot(binder, at.Name), Value: e[i].Bits})
				}
			}
			ct.acts = append(ct.acts, acts)
			ct.gotos = append(ct.gotos, g)
		}
		out.tables = append(out.tables, ct)
	}
	out.nMeta = len(metaIdx)
	if cfg.reg != nil {
		tel := &pipelineTel{
			procNs: cfg.reg.Histogram(fmt.Sprintf("pipeline.%s.process_ns", out.Name)),
		}
		for i, t := range out.tables {
			prefix := fmt.Sprintf("pipeline.%s.stage%d.%s.", out.Name, i, t.Name)
			tel.stages = append(tel.stages, stageTel{
				lookups: cfg.reg.Counter(prefix + "lookups"),
				matches: cfg.reg.Counter(prefix + "matches"),
				misses:  cfg.reg.Counter(prefix + "misses"),
			})
		}
		out.tel = tel
	}
	return out, nil
}

// actionField maps action attribute names to the packet field they write;
// the canonical mapping lives in internal/packet so the fusion compiler
// can statically resolve rewrites against downstream matches.
func actionField(name string) string { return packet.ActionField(name) }

// actionSlot resolves a rewriting action attribute to its view slot
// (-1 without a schema or for fields outside it — the view path then
// no-ops exactly like Packet.SetField on an unknown name).
func actionSlot(binder *packet.Binder, name string) int {
	if binder == nil {
		return -1
	}
	return binder.ActionSlot(name)
}

// ttlSlot resolves the dec-ttl target under a schema (-1 when the schema
// carries no ip_ttl field; dec_ttl is then a no-op on the view path).
func ttlSlot(binder *packet.Binder) int {
	if binder == nil {
		return -1
	}
	return binder.Slot(packet.FieldTTL)
}

// Trace records which packet bits a pipeline traversal consulted: for
// every header field, the maximum prefix length any visited table matched
// against. This is the wildcard ("megaflow") mask Open vSwitch computes on
// its slow path: any packet agreeing on the traced bits takes the same
// path through the pipeline.
//
// Soundness note: the per-entry mask is exact for tables whose patterns
// are pairwise disjoint per column (all tables this repository generates);
// tables with overlapping longest-prefix entries would need miss-path
// un-wildcarding as in the real OVS.
type Trace struct {
	// PLens maps canonical field names to consulted prefix lengths.
	PLens map[string]uint8
}

// NewTrace allocates an empty trace.
func NewTrace() *Trace { return &Trace{PLens: make(map[string]uint8, 8)} }

// Reset clears the trace for reuse.
func (tr *Trace) Reset() {
	for k := range tr.PLens {
		delete(tr.PLens, k)
	}
}

func (tr *Trace) add(field string, plen uint8) {
	if cur, ok := tr.PLens[field]; !ok || plen > cur {
		tr.PLens[field] = plen
	}
}

// Process runs one packet through the pipeline, mutating it according to
// the matched actions, updating per-entry counters, and returning the
// verdict. ctx must come from NewCtx on this pipeline.
func (p *Pipeline) Process(pkt *packet.Packet, ctx *Ctx) (Verdict, error) {
	if p.fusedT != nil {
		return p.processFused(pkt, ctx)
	}
	return p.process(pkt, nil, ctx, nil, nil)
}

// ProcessView runs one decoded FieldView through the pipeline — the
// schema-driven twin of Process. The pipeline must have been compiled
// with WithSchema on the view's schema; match columns and rewriting
// actions then read and write slot indices directly, so the path stays
// allocation-free for any header stack.
func (p *Pipeline) ProcessView(view *packet.FieldView, ctx *Ctx) (Verdict, error) {
	if p.schema == nil {
		return Verdict{}, fmt.Errorf("dataplane: pipeline %s was not compiled with WithSchema", p.Name)
	}
	if view.Schema() != p.schema {
		return Verdict{}, fmt.Errorf("dataplane: pipeline %s compiled for schema %s, view is %s", p.Name, p.schema.Name, view.Schema().Name)
	}
	if p.fusedT != nil {
		return p.processFusedView(view, ctx)
	}
	return p.process(nil, view, ctx, nil, nil)
}

// ProcessViewTraced is ProcessView plus megaflow wildcard tracing.
func (p *Pipeline) ProcessViewTraced(view *packet.FieldView, ctx *Ctx, tr *Trace) (Verdict, error) {
	if p.schema == nil {
		return Verdict{}, fmt.Errorf("dataplane: pipeline %s was not compiled with WithSchema", p.Name)
	}
	tr.Reset()
	return p.process(nil, view, ctx, tr, nil)
}

// ProcessTraced is Process plus megaflow wildcard tracing into tr (which
// is reset first).
func (p *Pipeline) ProcessTraced(pkt *packet.Packet, ctx *Ctx, tr *Trace) (Verdict, error) {
	tr.Reset()
	return p.process(pkt, nil, ctx, tr, nil)
}

// ProcessBatch runs a batch of packets through the pipeline on one ctx,
// writing the i-th verdict into out[i]. This is the amortized fast path the
// switch models' batch APIs build on: one bounds check up front, no
// per-packet call back into the selector machinery. out must hold at least
// len(pkts) verdicts; processing stops at the first pipeline error.
func (p *Pipeline) ProcessBatch(pkts []*packet.Packet, ctx *Ctx, out []Verdict) error {
	if len(out) < len(pkts) {
		return fmt.Errorf("dataplane: verdict buffer %d too small for batch of %d", len(out), len(pkts))
	}
	if p.fusedT != nil {
		for i, pkt := range pkts {
			v, err := p.processFused(pkt, ctx)
			if err != nil {
				return err
			}
			out[i] = v
		}
		return nil
	}
	for i, pkt := range pkts {
		v, err := p.process(pkt, nil, ctx, nil, nil)
		if err != nil {
			return err
		}
		out[i] = v
	}
	return nil
}

// process is the general stage loop — the single core every entry point
// (struct, view, traced, witnessed, frame-batch) funnels into. Exactly
// one of pkt and view is non-nil: the view branch reads and writes slot
// indices resolved by WithSchema, the packet branch the dense FieldID
// table. The branch is per field read but perfectly predicted within a
// run, so the default Packet path keeps its measured shape. A non-nil
// wit additionally builds the per-stage witness (ProcessExplain); the
// nil checks cost nothing on the hot path.
func (p *Pipeline) process(pkt *packet.Packet, view *packet.FieldView, ctx *Ctx, tr *Trace, wit *telemetry.Trace) (Verdict, error) {
	var t0 time.Time
	if p.tel != nil {
		t0 = time.Now()
	}
	for i := range ctx.meta {
		ctx.meta[i] = 0
	}
	var v Verdict
	cur := p.start
	for steps := 0; cur >= 0; steps++ {
		if steps > len(p.tables) {
			return v, fmt.Errorf("dataplane: pipeline %s: goto cycle", p.Name)
		}
		t := p.tables[cur]
		v.Tables++
		if p.tel != nil {
			p.tel.stages[cur].lookups.Inc()
		}
		var st telemetry.TraceStage
		if wit != nil {
			st = telemetry.TraceStage{Stage: cur, Table: t.Name, Entry: -1}
		}

		key := ctx.key[:len(t.cols)]
		miss := false
		for i := range t.cols {
			c := &t.cols[i]
			if c.meta >= 0 {
				key[i] = ctx.meta[c.meta]
				continue
			}
			var fv uint64
			var ok bool
			if view != nil {
				fv, ok = view.Get(c.slot)
			} else {
				fv, ok = pkt.FieldByID(c.fid)
			}
			if !ok {
				miss = true
				break
			}
			key[i] = fv
		}
		ei := -1
		if !miss {
			ei = t.cls.Lookup(key)
		}
		if ei < 0 {
			if p.tel != nil {
				p.tel.stages[cur].misses.Inc()
			}
			// A miss depends on every bit the table could have matched:
			// trace full column widths.
			if tr != nil {
				for i := range t.cols {
					if t.cols[i].meta < 0 {
						tr.add(t.cols[i].field, t.cols[i].width)
					}
				}
			}
			if t.missDrop {
				v.Drop = true
				if wit != nil {
					st.Join = "drop"
					wit.Stages = append(wit.Stages, st)
				}
				return p.finish(v, wit, t0), nil
			}
			if wit != nil {
				st.Join = joinName(-1, false, t.next)
				wit.Stages = append(wit.Stages, st)
			}
			cur = t.next
			continue
		}
		if p.tel != nil {
			p.tel.stages[cur].matches.Inc()
		}
		if tr != nil {
			for i := range t.cols {
				if t.cols[i].meta < 0 {
					tr.add(t.cols[i].field, t.plens[ei][i])
				}
			}
		}
		t.counters[ei].Add(1)
		if wit != nil {
			st.Entry = ei
		}
		if t.fusedTables != nil {
			// Report the logical depth of the fused-away path, not the
			// single physical lookup.
			v.Tables += int(t.fusedTables[ei]) - 1
		}
		setsMeta := false
		for _, a := range t.acts[ei] {
			if wit != nil && t.fusedStages == nil {
				st.Actions = append(st.Actions, renderAction(a))
			}
			switch a.Kind {
			case ActOutput:
				v.Port = uint16(a.Value)
			case ActSetMeta:
				ctx.meta[a.Meta] = a.Value
				setsMeta = true
			case ActDecTTL:
				if view != nil {
					if ttl, ok := view.Get(a.Slot); ok && ttl > 0 {
						view.Set(a.Slot, ttl-1)
					}
				} else if pkt.HasIPv4 && pkt.TTL > 0 {
					pkt.TTL--
				}
			case ActSetField:
				if view != nil {
					view.Set(a.Slot, a.Value)
				} else {
					pkt.SetField(a.Field, a.Value)
				}
			case ActDrop:
				v.Drop = true
			}
		}
		if wit != nil && t.fusedStages != nil {
			// A fused hit replays the pre-rendered logical witness of the
			// fused-away path, so the Theorem-1 check sees the same
			// per-table trace the interpreted pipeline would produce.
			wit.Stages = append(wit.Stages, t.fusedStages[ei]...)
			return p.finish(v, wit, t0), nil
		}
		if v.Drop {
			if wit != nil {
				st.Join = "drop"
				wit.Stages = append(wit.Stages, st)
			}
			return p.finish(v, wit, t0), nil
		}
		g := t.gotos[ei]
		if wit != nil {
			st.Join = joinName(g, setsMeta, t.next)
			wit.Stages = append(wit.Stages, st)
		}
		if g >= 0 {
			cur = g
		} else {
			cur = t.next
		}
	}
	return p.finish(v, wit, t0), nil
}

// finish closes a traversal: observe the latency histogram and seal the
// witness's verdict fields.
func (p *Pipeline) finish(v Verdict, wit *telemetry.Trace, t0 time.Time) Verdict {
	if p.tel != nil {
		p.tel.procNs.Observe(float64(time.Since(t0)))
	}
	if wit != nil {
		wit.Drop, wit.Port, wit.Tables = v.Drop, v.Port, v.Tables
	}
	return v
}

// Depth returns the number of compiled tables.
func (p *Pipeline) Depth() int { return len(p.tables) }

// Templates lists each stage's chosen classifier template, in order.
func (p *Pipeline) Templates() []string {
	out := make([]string, len(p.tables))
	for i, t := range p.tables {
		out[i] = t.Template
	}
	return out
}

// Counter returns the packet count of one entry of one stage.
func (p *Pipeline) Counter(stage, entry int) uint64 {
	return p.tables[stage].counters[entry].Load()
}

// ResetCounters zeroes all per-entry counters.
func (p *Pipeline) ResetCounters() {
	for _, t := range p.tables {
		for i := range t.counters {
			t.counters[i].Store(0)
		}
	}
}

// StageEntryCount returns the entry count of a stage (for stats readers).
func (p *Pipeline) StageEntryCount(stage int) int { return len(p.tables[stage].counters) }

// Counters returns a snapshot of all per-entry packet counters of a stage.
func (p *Pipeline) Counters(stage int) []uint64 {
	t := p.tables[stage]
	out := make([]uint64, len(t.counters))
	for i := range t.counters {
		out[i] = t.counters[i].Load()
	}
	return out
}
