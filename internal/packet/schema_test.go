package packet

import (
	"math/rand"
	"testing"
)

// TestDefaultSchemaMatchesFieldIDs pins the contract the dataplane relies
// on: the default schema's slot order is exactly the dense FieldID order,
// with the canonical names and widths.
func TestDefaultSchemaMatchesFieldIDs(t *testing.T) {
	s := DefaultDecoder().Schema()
	if s.NumSlots() != NumFieldIDs {
		t.Fatalf("default schema has %d slots, want %d", s.NumSlots(), NumFieldIDs)
	}
	for i := 0; i < NumFieldIDs; i++ {
		name := s.SlotName(i)
		if FieldID(name) != i {
			t.Errorf("slot %d is %q but FieldID(%q)=%d", i, name, name, FieldID(name))
		}
		if s.SlotWidth(i) != FieldWidth(name) {
			t.Errorf("slot %d width %d != FieldWidth(%q)=%d", i, s.SlotWidth(i), name, FieldWidth(name))
		}
	}
}

// TestDefaultSchemaBitIdentical proves the default schema's decoder and
// encoder agree exactly with the legacy Packet codec on tagged, untagged
// and non-IP frames.
func TestDefaultSchemaBitIdentical(t *testing.T) {
	dec := DefaultDecoder()
	pkts := []*Packet{
		TCP4(0x0a0b0c0d0e0f, 0x010203040506, 0xc0a80101, 0x0a000001, 1234, 80),
		{EthDst: 0x111111111111, EthSrc: 0x222222222222, EthType: EtherTypeARP, Payload: []byte{1, 2, 3}},
	}
	tagged := TCP4(1, 2, 3, 4, 5, 6)
	tagged.HasVLAN = true
	tagged.VLANID = 42
	pkts = append(pkts, tagged)

	v := dec.NewView()
	for i, p := range pkts {
		wire := p.Marshal(nil)
		if err := dec.ParseInto(v, wire); err != nil {
			t.Fatalf("pkt %d: ParseInto: %v", i, err)
		}
		var lp Packet
		if err := lp.ParseInto(wire); err != nil {
			t.Fatalf("pkt %d: legacy ParseInto: %v", i, err)
		}
		for id := 0; id < NumFieldIDs; id++ {
			lv, lok := lp.FieldByID(id)
			sv, sok := v.Get(id)
			if lok != sok || (lok && lv != sv) {
				t.Errorf("pkt %d slot %d (%s): legacy (%d,%v) view (%d,%v)", i, id, FieldIDName(id), lv, lok, sv, sok)
			}
		}
		reWire := v.Marshal(nil)
		legacyWire := lp.Marshal(nil)
		if string(reWire) != string(legacyWire) {
			t.Errorf("pkt %d: view Marshal differs from legacy Marshal", i)
		}
	}
}

// FieldIDName is a test helper mapping a dense id back to its name.
func FieldIDName(id int) string { return DefaultDecoder().Schema().SlotName(id) }

// fillChain builds a view with the full header chain present and random
// field values, then forces the select fields so the graph re-parses the
// same chain. Used by the round-trip property tests.
func fillChain(t *testing.T, dec *Decoder, rng *rand.Rand, selects map[string]uint64, headers []string) *FieldView {
	t.Helper()
	v := dec.NewView()
	s := dec.Schema()
	for _, h := range headers {
		hi := s.HeaderIndex(h)
		if hi < 0 {
			t.Fatalf("unknown header %q", h)
		}
		v.MarkPresent(hi)
	}
	for i := 0; i < s.NumSlots(); i++ {
		if v.HeaderPresent(s.HeaderOfSlot(i)) {
			v.Set(i, rng.Uint64())
		}
	}
	for name, val := range selects {
		if !v.SetName(name, val) {
			t.Fatalf("cannot set select %q", name)
		}
	}
	v.SetPayload([]byte{0xde, 0xad, 0xbe, 0xef})
	return v
}

// TestShippedSchemaRoundTrip is the Parse→Marshal→Parse property for
// every shipped generic schema: re-parsing an encoded view yields the
// same slots, presence and payload, and re-encoding yields the same
// bytes.
func TestShippedSchemaRoundTrip(t *testing.T) {
	cases := []struct {
		schema  string
		headers []string
		selects map[string]uint64
	}{
		{SchemaVXLAN,
			[]string{"eth", "ipv4", "udp", "vxlan", "inner_eth"},
			map[string]uint64{"eth_type": EtherTypeIPv4, "ip_proto": ProtoUDP, "udp_dst": UDPPortVXLAN}},
		{SchemaMPLS,
			[]string{"eth", "mpls", "ipv4"},
			map[string]uint64{"eth_type": EtherTypeMPLS, FieldMPLSBoS: 1}},
		{SchemaMPLS,
			[]string{"eth", "mpls", "mpls2", "ipv4"},
			map[string]uint64{"eth_type": EtherTypeMPLS, FieldMPLSBoS: 0, "mpls2_s": 1}},
		{SchemaGTPU,
			[]string{"eth", "ipv4", "udp", "gtpu", "inner_ipv4"},
			map[string]uint64{"eth_type": EtherTypeIPv4, "ip_proto": ProtoUDP, "udp_dst": UDPPortGTPU, "gtpu_type": GTPMsgGPDU}},
	}
	for _, tc := range cases {
		dec, err := BuiltinDecoder(tc.schema)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(7))
		for trial := 0; trial < 50; trial++ {
			v := fillChain(t, dec, rng, tc.selects, tc.headers)
			wire := v.Marshal(nil)
			got, err := dec.Parse(wire)
			if err != nil {
				t.Fatalf("%s trial %d: re-parse: %v", tc.schema, trial, err)
			}
			if got.present != v.present {
				t.Fatalf("%s trial %d: presence %b != %b", tc.schema, trial, got.present, v.present)
			}
			for i := range v.slots {
				if v.slots[i] != got.slots[i] {
					t.Errorf("%s trial %d: slot %d (%s): %#x != %#x",
						tc.schema, trial, i, dec.Schema().SlotName(i), got.slots[i], v.slots[i])
				}
			}
			if string(got.Payload()) != string(v.Payload()) {
				t.Errorf("%s trial %d: payload mismatch", tc.schema, trial)
			}
			if string(got.Marshal(nil)) != string(wire) {
				t.Errorf("%s trial %d: re-encode differs", tc.schema, trial)
			}
		}
	}
}

// TestDecoderTruncation covers truncated and malformed frames: too short
// for the start header errors, truncation mid-graph stops cleanly with
// the remainder as payload.
func TestDecoderTruncation(t *testing.T) {
	dec, err := BuiltinDecoder(SchemaVXLAN)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	full := fillChain(t, dec, rng,
		map[string]uint64{"eth_type": EtherTypeIPv4, "ip_proto": ProtoUDP, "udp_dst": UDPPortVXLAN},
		[]string{"eth", "ipv4", "udp", "vxlan", "inner_eth"}).Marshal(nil)

	v := dec.NewView()
	for _, n := range []int{0, 1, 13} {
		if err := dec.ParseInto(v, full[:n]); err == nil {
			t.Errorf("%d-byte frame: want error, got none", n)
		}
	}
	// Ethernet complete, IPv4 truncated: accept with eth only.
	if err := dec.ParseInto(v, full[:20]); err != nil {
		t.Fatalf("truncated ipv4: %v", err)
	}
	if !v.HeaderPresent(0) || v.HeaderPresent(1) {
		t.Errorf("truncated ipv4: presence mask %b", v.present)
	}
	if len(v.Payload()) != 6 {
		t.Errorf("truncated ipv4: payload %d bytes, want 6", len(v.Payload()))
	}
	// Every prefix must parse without panicking and never mark a header
	// whose bytes are missing.
	sizes := []int{14, 20, 8, 8, 14} // eth, ipv4, udp, vxlan, inner_eth
	for n := 14; n <= len(full); n++ {
		if err := dec.ParseInto(v, full[:n]); err != nil {
			t.Fatalf("prefix %d: %v", n, err)
		}
		have := 0
		for hi := range sizes {
			if v.HeaderPresent(hi) {
				have += sizes[hi]
			}
		}
		if have > n {
			t.Fatalf("prefix %d: presence claims %d bytes", n, have)
		}
	}
}

// TestParseGraphValidation exercises compile-time rejection of malformed
// graphs.
func TestParseGraphValidation(t *testing.T) {
	base := func() *HeaderSchema {
		s, err := NewHeaderSchema("t", ethHeader("a", "a_"), ethHeader("b", "b_"))
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	cases := []struct {
		name string
		g    *ParseGraph
	}{
		{"unknown start", &ParseGraph{Schema: base(), Start: "nope"}},
		{"unknown select", &ParseGraph{Schema: base(), Start: "a",
			States: map[string]State{"a": {Select: "ghost", Transitions: []Transition{{Value: 1, Next: "b"}}}}}},
		{"backward edge", &ParseGraph{Schema: base(), Start: "a",
			States: map[string]State{"b": {Select: "b_eth_type", Transitions: []Transition{{Value: 1, Next: "a"}}}}}},
		{"select from later header", &ParseGraph{Schema: base(), Start: "a",
			States: map[string]State{"a": {Select: "b_eth_type", Transitions: []Transition{{Value: 1, Next: "b"}}}}}},
		{"transitions without select", &ParseGraph{Schema: base(), Start: "a",
			States: map[string]State{"a": {Transitions: []Transition{{Value: 1, Next: "b"}}}}}},
	}
	for _, tc := range cases {
		if _, err := tc.g.Compile(); err == nil {
			t.Errorf("%s: compiled, want error", tc.name)
		}
	}
	if _, err := NewHeaderSchema("odd", Header{Name: "h", Fields: []FieldSpec{{Name: "x", Width: 7}}}); err == nil {
		t.Error("7-bit header accepted, want byte-multiple error")
	}
	if _, err := NewHeaderSchema("dup", ethHeader("a", ""), ethHeader("b", "")); err == nil {
		t.Error("duplicate field names accepted")
	}
}

// TestFieldViewAllocs is the zero-alloc guard for the schema hot path:
// ParseInto into a reused view, slot reads and slot writes must not
// allocate, for the generic and the legacy (default) decoder alike.
func TestFieldViewAllocs(t *testing.T) {
	for _, name := range BuiltinSchemaNames() {
		dec, err := BuiltinDecoder(name)
		if err != nil {
			t.Fatal(err)
		}
		var wire []byte
		switch name {
		case SchemaDefault:
			wire = TCP4(1, 2, 3, 4, 5, 6).Marshal(nil)
		case SchemaVXLAN:
			wire = fillChain(t, dec, rand.New(rand.NewSource(1)),
				map[string]uint64{"eth_type": EtherTypeIPv4, "ip_proto": ProtoUDP, "udp_dst": UDPPortVXLAN},
				[]string{"eth", "ipv4", "udp", "vxlan", "inner_eth"}).Marshal(nil)
		case SchemaMPLS:
			wire = fillChain(t, dec, rand.New(rand.NewSource(1)),
				map[string]uint64{"eth_type": EtherTypeMPLS, FieldMPLSBoS: 1},
				[]string{"eth", "mpls", "ipv4"}).Marshal(nil)
		case SchemaGTPU:
			wire = fillChain(t, dec, rand.New(rand.NewSource(1)),
				map[string]uint64{"eth_type": EtherTypeIPv4, "ip_proto": ProtoUDP, "udp_dst": UDPPortGTPU, "gtpu_type": GTPMsgGPDU},
				[]string{"eth", "ipv4", "udp", "gtpu", "inner_ipv4"}).Marshal(nil)
		}
		v := dec.NewView()
		var sink uint64
		allocs := testing.AllocsPerRun(200, func() {
			if err := dec.ParseInto(v, wire); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < v.Schema().NumSlots(); i++ {
				if x, ok := v.Get(i); ok {
					sink += x
				}
			}
			v.Set(0, sink)
		})
		if allocs != 0 {
			t.Errorf("schema %s: %v allocs/op on ParseInto+Get+Set, want 0", name, allocs)
		}
	}
}

// TestBinder pins the attribute↔slot bridge: legacy aliases, the generic
// mod_<field> convention and schema-width column minting.
func TestBinder(t *testing.T) {
	b := DefaultBinder()
	if got := b.ActionTarget("mod_smac"); got != FieldEthSrc {
		t.Errorf("mod_smac -> %q", got)
	}
	if got := b.ActionTarget("mod_dmac"); got != FieldEthDst {
		t.Errorf("mod_dmac -> %q", got)
	}
	if got := b.ActionTarget("mod_vlan"); got != FieldVLAN {
		t.Errorf("mod_vlan -> %q", got)
	}
	if b.ActionSlot("mod_smac") != IDEthSrc {
		t.Error("mod_smac slot")
	}
	// The bridge must agree with the legacy ActionField mapping on every
	// canonical attribute.
	for _, attr := range []string{"mod_smac", "mod_dmac", "mod_vlan", FieldIPDst} {
		if b.ActionTarget(attr) != ActionField(attr) {
			t.Errorf("binder and ActionField disagree on %q", attr)
		}
	}
	vx := NewBinder(mustDecoder(t, SchemaVXLAN).Schema())
	if got := vx.ActionTarget("mod_" + FieldVXLANVNI); got != FieldVXLANVNI {
		t.Errorf("mod_vxlan_vni -> %q", got)
	}
	if vx.ActionSlot("mod_"+FieldInnerEthDst) != vx.Slot(FieldInnerEthDst) {
		t.Error("mod_inner_eth_dst slot")
	}
	cols := vx.Columns(FieldVXLANVNI, FieldInnerEthDst)
	if len(cols) != 2 || cols[0].Width != 24 || cols[1].Width != 48 {
		t.Errorf("Columns widths: %+v", cols)
	}
}

func mustDecoder(t *testing.T, name string) *Decoder {
	t.Helper()
	d, err := BuiltinDecoder(name)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestBitCodec round-trips the bit-packing primitives across unaligned
// widths.
func TestBitCodec(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		widths := []uint8{uint8(rng.Intn(20) + 1), uint8(rng.Intn(64) + 1), uint8(rng.Intn(8) + 1)}
		total := 0
		for _, w := range widths {
			total += int(w)
		}
		buf := make([]byte, (total+7)/8)
		vals := make([]uint64, len(widths))
		off := 0
		for i, w := range widths {
			vals[i] = rng.Uint64() & widthMask(w)
			writeBits(buf, off, w, vals[i])
			off += int(w)
		}
		off = 0
		for i, w := range widths {
			if got := readBits(buf, off, w); got != vals[i] {
				t.Fatalf("trial %d field %d: %#x != %#x", trial, i, got, vals[i])
			}
			off += int(w)
		}
	}
}
