package packet

import (
	"errors"
	"fmt"
)

// Transition is one edge of a parse graph: when the state's select field
// equals Value, parsing continues at header Next.
type Transition struct {
	Value uint64 `json:"value"`
	Next  string `json:"next"`
}

// State describes what happens after one header is decoded. Select names
// the field steering the transition (a field of the current header or of
// one parsed earlier); an empty Select with a non-empty Default is an
// unconditional transition, and an empty Select with an empty Default
// accepts. When Select is set, a value matching no Transition falls back
// to Default ("" = accept).
type State struct {
	Select      string       `json:"select,omitempty"`
	Transitions []Transition `json:"transitions,omitempty"`
	Default     string       `json:"default,omitempty"`
}

// ParseGraph is a programmable parser over a header schema: states are
// headers, edges are keyed on a select field (EtherType, IP proto, UDP
// destination port, ...). Transitions must go forward in schema header
// order, so the graph is a DAG and every parse terminates. Compile turns
// the graph into a table-driven Decoder once; decoding is then a loop of
// bounds check → field extraction → one select lookup per header, with no
// per-protocol code.
type ParseGraph struct {
	Schema *HeaderSchema    `json:"schema"`
	Start  string           `json:"start"`
	States map[string]State `json:"states,omitempty"`
}

// transEdge is one compiled transition.
type transEdge struct {
	v    uint64
	next int // state index
}

// decState is one compiled parser state.
type decState struct {
	hdr     int // header index in the schema
	size    int // header wire size, bytes
	first   int // first slot of the header
	nFields int
	selSlot int // slot steering the transition; -1 = no select
	trans   []transEdge
	def     int // fallback next state; -1 = accept
	verify  func([]byte) bool
}

// Decoder is a compiled parse graph: a state table the hot path walks
// per frame. Decoders are immutable after Compile and safe for concurrent
// use; each worker pairs one with its own reusable FieldView.
type Decoder struct {
	schema   *HeaderSchema
	graph    *ParseGraph
	states   []decState
	start    int
	slotMask []uint64 // per-slot presence-bit mask (1 << header index)
	legacy   bool
}

// ErrFrameTooShort reports a frame shorter than the start header.
var ErrFrameTooShort = errors.New("packet: frame too short")

// Compile validates the graph and builds the table-driven decoder.
// Validation enforces: a known start header; select fields that exist in
// the schema and belong to the current header or an earlier one; and
// transitions that only move forward in schema header order (the DAG
// property that bounds every parse and makes declaration order the wire
// order for encoding).
func (g *ParseGraph) Compile() (*Decoder, error) {
	if g.Schema == nil {
		return nil, fmt.Errorf("packet: parse graph has no schema")
	}
	if err := g.Schema.init(); err != nil {
		return nil, err
	}
	s := g.Schema
	startIdx := s.HeaderIndex(g.Start)
	if startIdx < 0 {
		return nil, fmt.Errorf("packet: parse graph for %s: unknown start header %q", s.Name, g.Start)
	}
	d := &Decoder{
		schema:   s,
		graph:    g,
		states:   make([]decState, len(s.Headers)),
		start:    startIdx,
		slotMask: make([]uint64, len(s.slots)),
		legacy:   s.legacy,
	}
	for i, sl := range s.slots {
		d.slotMask[i] = 1 << uint(sl.hdr)
	}
	// One decoder state per header; headers without an entry in States
	// accept after decoding.
	firstSlot := make([]int, len(s.Headers))
	nFields := make([]int, len(s.Headers))
	for i, sl := range s.slots {
		if nFields[sl.hdr] == 0 {
			firstSlot[sl.hdr] = i
		}
		nFields[sl.hdr]++
	}
	for hi, h := range s.Headers {
		st := decState{
			hdr: hi, size: s.headerBytes(hi),
			first: firstSlot[hi], nFields: nFields[hi],
			selSlot: -1, def: -1, verify: h.Verify,
		}
		gs, ok := g.States[h.Name]
		if ok {
			if gs.Select != "" {
				sel := s.Slot(gs.Select)
				if sel < 0 {
					return nil, fmt.Errorf("packet: parse graph for %s: state %s selects unknown field %q", s.Name, h.Name, gs.Select)
				}
				if s.slots[sel].hdr > hi {
					return nil, fmt.Errorf("packet: parse graph for %s: state %s selects %q from a later header", s.Name, h.Name, gs.Select)
				}
				st.selSlot = sel
			} else if len(gs.Transitions) > 0 {
				return nil, fmt.Errorf("packet: parse graph for %s: state %s has transitions but no select field", s.Name, h.Name)
			}
			next := func(name string) (int, error) {
				ni := s.HeaderIndex(name)
				if ni < 0 {
					return 0, fmt.Errorf("packet: parse graph for %s: state %s transitions to unknown header %q", s.Name, h.Name, name)
				}
				if ni <= hi {
					return 0, fmt.Errorf("packet: parse graph for %s: state %s transitions backward to %q", s.Name, h.Name, name)
				}
				return ni, nil
			}
			for _, tr := range gs.Transitions {
				ni, err := next(tr.Next)
				if err != nil {
					return nil, err
				}
				st.trans = append(st.trans, transEdge{v: tr.Value, next: ni})
			}
			if gs.Default != "" {
				ni, err := next(gs.Default)
				if err != nil {
					return nil, err
				}
				st.def = ni
			}
		}
		d.states[hi] = st
	}
	return d, nil
}

// Schema returns the decoder's header schema.
func (d *Decoder) Schema() *HeaderSchema { return d.schema }

// Graph returns the parse graph the decoder was compiled from.
func (d *Decoder) Graph() *ParseGraph { return d.graph }

// NewView allocates a FieldView sized for the decoder's schema. Views are
// reused across ParseInto calls; create one per worker.
func (d *Decoder) NewView() *FieldView {
	v := &FieldView{dec: d, slots: make([]uint64, len(d.schema.slots))}
	if d.legacy {
		v.lp = &Packet{}
	}
	return v
}

// ParseInto decodes a frame into v, reusing its storage. The frame must
// cover the start header; a frame truncated mid-graph stops cleanly with
// the remaining bytes as payload (matching the lenient L3/L4 handling of
// the legacy codec). Slot values and the presence mask are overwritten;
// the payload aliases the frame.
func (d *Decoder) ParseInto(v *FieldView, frame []byte) error {
	if v.dec != d {
		return fmt.Errorf("packet: view belongs to schema %s, decoder is %s", v.dec.schema.Name, d.schema.Name)
	}
	if d.legacy {
		return d.legacyParse(v, frame)
	}
	v.present = 0
	v.unknownNext = false
	b := frame
	cur := d.start
	if len(b) < d.states[cur].size {
		return &DecodeError{Reason: ReasonTruncated,
			Err: fmt.Errorf("%w: %d bytes, %s header needs %d", ErrFrameTooShort, len(b), d.schema.Headers[cur].Name, d.states[cur].size)}
	}
	for cur >= 0 {
		st := &d.states[cur]
		if len(b) < st.size {
			break // truncated mid-graph: accept with remainder as payload
		}
		hb := b[:st.size]
		if st.verify != nil && !st.verify(hb) {
			return &DecodeError{Reason: ReasonBadHeader,
				Err: fmt.Errorf("packet: header %s failed verification", d.schema.Headers[st.hdr].Name)}
		}
		for i := 0; i < st.nFields; i++ {
			sl := &d.schema.slots[st.first+i]
			v.slots[st.first+i] = readBits(hb, sl.bitOff, sl.width)
		}
		v.present |= 1 << uint(st.hdr)
		b = b[st.size:]
		if st.selSlot < 0 {
			cur = st.def
			continue
		}
		sv := v.slots[st.selSlot]
		next := st.def
		matched := false
		for _, e := range st.trans {
			if e.v == sv {
				next = e.next
				matched = true
				break
			}
		}
		if !matched && next < 0 && len(st.trans) > 0 {
			// The select value named a next header the graph does not know
			// and no default continued the walk: an accept, but a flagged
			// one, so ingest arenas can count unknown next-headers.
			v.unknownNext = true
		}
		cur = next
	}
	v.payload = b
	return nil
}

// Parse is the allocating convenience form of ParseInto.
func (d *Decoder) Parse(frame []byte) (*FieldView, error) {
	v := d.NewView()
	if err := d.ParseInto(v, frame); err != nil {
		return nil, err
	}
	return v, nil
}

// Marshal encodes a view back to wire bytes, appending to buf: every
// present header in schema order, bit-packed, then the payload. The
// generic codec does not pad or fix up length/checksum fields — a field
// holding a length is round-tripped as the value in its slot — so
// Parse(Marshal(v)) == v whenever the select-field values in v steer the
// graph through v's present headers.
func (d *Decoder) Marshal(v *FieldView, buf []byte) []byte {
	if d.legacy {
		return d.legacyMarshal(v, buf)
	}
	for hi := range d.schema.Headers {
		if v.present&(1<<uint(hi)) == 0 {
			continue
		}
		st := &d.states[hi]
		hb := make([]byte, st.size)
		for i := 0; i < st.nFields; i++ {
			sl := &d.schema.slots[st.first+i]
			writeBits(hb, sl.bitOff, sl.width, v.slots[st.first+i])
		}
		buf = append(buf, hb...)
	}
	return append(buf, v.payload...)
}

// legacyParse is the default schema's decode path: the hand-written
// Packet codec runs unchanged (VLAN untagging, IHL options, checksum
// verification, TotalLen payload trim), then the canonical fields are
// copied into slots. Bit-identical to pre-schema behavior by
// construction.
func (d *Decoder) legacyParse(v *FieldView, frame []byte) error {
	if err := v.lp.ParseInto(frame); err != nil {
		return err
	}
	p := v.lp
	// The legacy graph's unknown next-headers: a non-IPv4 EtherType, or an
	// IPv4 protocol the codec has no L4 state for (truncation-stopped
	// parses are not "unknown" — the steering value was fine).
	v.unknownNext = p.EthType != EtherTypeIPv4 ||
		(p.HasIPv4 && !p.HasL4 && p.Proto != ProtoTCP && p.Proto != ProtoUDP)
	v.present = 1 << legacyHdrEth
	v.slots[IDEthDst] = p.EthDst
	v.slots[IDEthSrc] = p.EthSrc
	v.slots[IDEthType] = uint64(p.EthType)
	if p.HasVLAN {
		v.present |= 1 << legacyHdrVLAN
		v.slots[IDVLAN] = uint64(p.VLANID)
	} else {
		v.slots[IDVLAN] = 0
	}
	if p.HasIPv4 {
		v.present |= 1 << legacyHdrIPv4
		v.slots[IDIPSrc] = uint64(p.IPSrc)
		v.slots[IDIPDst] = uint64(p.IPDst)
		v.slots[IDIPProto] = uint64(p.Proto)
		v.slots[IDTTL] = uint64(p.TTL)
	} else {
		v.slots[IDIPSrc], v.slots[IDIPDst], v.slots[IDIPProto], v.slots[IDTTL] = 0, 0, 0, 0
	}
	if p.HasL4 {
		v.present |= 1 << legacyHdrL4
		v.slots[IDTCPSrc] = uint64(p.SrcPort)
		v.slots[IDTCPDst] = uint64(p.DstPort)
	} else {
		v.slots[IDTCPSrc], v.slots[IDTCPDst] = 0, 0
	}
	v.payload = p.Payload
	return nil
}

// legacyMarshal rebuilds the scratch Packet from the view and runs the
// hand-written encoder (length/checksum recompute, minimum-frame
// padding).
func (d *Decoder) legacyMarshal(v *FieldView, buf []byte) []byte {
	p := v.lp
	*p = Packet{
		EthDst:  v.slots[IDEthDst],
		EthSrc:  v.slots[IDEthSrc],
		EthType: uint16(v.slots[IDEthType]),
		Payload: v.payload,
	}
	if v.present&(1<<legacyHdrVLAN) != 0 {
		p.HasVLAN = true
		p.VLANID = uint16(v.slots[IDVLAN])
	}
	if v.present&(1<<legacyHdrIPv4) != 0 {
		p.HasIPv4 = true
		p.IPVerIHL = 0x45
		p.TTL = uint8(v.slots[IDTTL])
		p.Proto = uint8(v.slots[IDIPProto])
		p.IPSrc = uint32(v.slots[IDIPSrc])
		p.IPDst = uint32(v.slots[IDIPDst])
	}
	if v.present&(1<<legacyHdrL4) != 0 {
		p.HasL4 = true
		p.SrcPort = uint16(v.slots[IDTCPSrc])
		p.DstPort = uint16(v.slots[IDTCPDst])
	}
	return p.Marshal(buf)
}
