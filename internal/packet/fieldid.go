package packet

// Dense field identifiers for the canonical header fields. Hot paths that
// would otherwise re-dispatch on a field *name* per packet (string switch)
// resolve the name to an id once at compile/install time and read via
// FieldByID, which compiles to an integer jump table.
const (
	IDEthDst = iota
	IDEthSrc
	IDEthType
	IDVLAN
	IDIPSrc
	IDIPDst
	IDIPProto
	IDTTL
	IDTCPSrc
	IDTCPDst
	// NumFieldIDs bounds the id space.
	NumFieldIDs
)

// FieldID resolves a canonical field name to its dense id, or -1 for an
// unknown name (FieldByID(-1) then reports the field absent, matching
// Field's behavior on unknown names).
func FieldID(name string) int {
	switch name {
	case FieldEthDst:
		return IDEthDst
	case FieldEthSrc:
		return IDEthSrc
	case FieldEthType:
		return IDEthType
	case FieldVLAN:
		return IDVLAN
	case FieldIPSrc:
		return IDIPSrc
	case FieldIPDst:
		return IDIPDst
	case FieldIPProto:
		return IDIPProto
	case FieldTTL:
		return IDTTL
	case FieldTCPSrc:
		return IDTCPSrc
	case FieldTCPDst:
		return IDTCPDst
	default:
		return -1
	}
}

// FieldByID reads a header field by dense id; semantically identical to
// Field(name) for the corresponding name.
func (p *Packet) FieldByID(id int) (uint64, bool) {
	switch id {
	case IDEthDst:
		return p.EthDst, true
	case IDEthSrc:
		return p.EthSrc, true
	case IDEthType:
		return uint64(p.EthType), true
	case IDVLAN:
		return uint64(p.VLANID), p.HasVLAN
	case IDIPSrc:
		return uint64(p.IPSrc), p.HasIPv4
	case IDIPDst:
		return uint64(p.IPDst), p.HasIPv4
	case IDIPProto:
		return uint64(p.Proto), p.HasIPv4
	case IDTTL:
		return uint64(p.TTL), p.HasIPv4
	case IDTCPSrc:
		return uint64(p.SrcPort), p.HasL4
	case IDTCPDst:
		return uint64(p.DstPort), p.HasL4
	default:
		return 0, false
	}
}

// ActionField maps rewriting action attribute names to the packet field
// they write (mod_smac -> eth_src etc.); unknown names pass through and are
// treated as opaque packet fields.
func ActionField(name string) string {
	switch name {
	case "mod_smac":
		return FieldEthSrc
	case "mod_dmac":
		return FieldEthDst
	case "mod_vlan":
		return FieldVLAN
	default:
		return name
	}
}
