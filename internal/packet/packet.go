package packet

import (
	"encoding/binary"
	"fmt"
)

// EtherType values understood by the parser.
const (
	EtherTypeIPv4 = 0x0800
	EtherTypeVLAN = 0x8100
	EtherTypeARP  = 0x0806
)

// IP protocol numbers understood by the parser.
const (
	ProtoICMP = 1
	ProtoTCP  = 6
	ProtoUDP  = 17
)

// Header sizes in bytes.
const (
	EthHeaderLen  = 14
	VLANTagLen    = 4
	IPv4HeaderLen = 20 // without options
	TCPHeaderLen  = 20 // without options
	UDPHeaderLen  = 8
	// MinFrameLen is the minimum Ethernet frame size (without FCS); short
	// frames are padded on Marshal.
	MinFrameLen = 60
)

// Packet is a decoded Ethernet/IPv4/L4 packet. Zero-valued fields of
// layers beyond ParsedLayers are meaningless.
//
// Deprecated: direct struct-field access ties callers to the fixed
// default header stack. New code should read and write fields through
// the accessors (Field/SetField/FieldByID) or, for schema-driven paths,
// through a FieldView — the struct fields remain exported only for the
// default schema's codec and the packages still being migrated.
type Packet struct {
	// Ethernet.
	EthDst  uint64 // 48-bit MAC
	EthSrc  uint64 // 48-bit MAC
	EthType uint16 // inner EtherType when a VLAN tag is present

	// 802.1Q.
	HasVLAN  bool
	VLANID   uint16 // 12 bits
	VLANPrio uint8  // 3 bits

	// IPv4.
	HasIPv4  bool
	IPVerIHL uint8 // version + header length nibble (0x45 without options)
	TOS      uint8
	TotalLen uint16
	IPID     uint16
	Flags    uint16 // flags + fragment offset
	TTL      uint8
	Proto    uint8
	IPSrc    uint32
	IPDst    uint32

	// TCP/UDP (ports only; the simulators do not model L4 state).
	HasL4   bool
	SrcPort uint16
	DstPort uint16

	// Payload is everything after the parsed headers.
	Payload []byte
}

// Parse decodes an Ethernet frame. It accepts truncated L3/L4 (leaving the
// corresponding Has* flags false) but rejects frames shorter than an
// Ethernet header.
func Parse(b []byte) (*Packet, error) {
	p := &Packet{}
	if err := p.ParseInto(b); err != nil {
		return nil, err
	}
	return p, nil
}

// ParseInto decodes into an existing Packet, avoiding the allocation in
// hot paths. The previous contents are overwritten.
func (p *Packet) ParseInto(b []byte) error {
	*p = Packet{}
	if len(b) < EthHeaderLen {
		return &DecodeError{Reason: ReasonTruncated, Err: fmt.Errorf("%w: %d bytes", ErrFrameTooShort, len(b))}
	}
	p.EthDst = mac48(b[0:6])
	p.EthSrc = mac48(b[6:12])
	et := binary.BigEndian.Uint16(b[12:14])
	off := EthHeaderLen
	if et == EtherTypeVLAN {
		if len(b) < off+VLANTagLen {
			return &DecodeError{Reason: ReasonTruncated, Err: fmt.Errorf("packet: truncated VLAN tag")}
		}
		tci := binary.BigEndian.Uint16(b[14:16])
		p.HasVLAN = true
		p.VLANPrio = uint8(tci >> 13)
		p.VLANID = tci & 0x0FFF
		et = binary.BigEndian.Uint16(b[16:18])
		off += VLANTagLen
	}
	p.EthType = et

	if et != EtherTypeIPv4 || len(b) < off+IPv4HeaderLen {
		p.Payload = b[off:]
		return nil
	}
	ip := b[off:]
	ihl := int(ip[0]&0x0F) * 4
	if ip[0]>>4 != 4 || ihl < IPv4HeaderLen || len(ip) < ihl {
		return &DecodeError{Reason: ReasonBadHeader, Err: fmt.Errorf("packet: bad IPv4 header")}
	}
	p.HasIPv4 = true
	p.IPVerIHL = ip[0]
	p.TOS = ip[1]
	p.TotalLen = binary.BigEndian.Uint16(ip[2:4])
	p.IPID = binary.BigEndian.Uint16(ip[4:6])
	p.Flags = binary.BigEndian.Uint16(ip[6:8])
	p.TTL = ip[8]
	p.Proto = ip[9]
	if Checksum(ip[:ihl]) != 0 {
		return &DecodeError{Reason: ReasonBadHeader, Err: fmt.Errorf("packet: bad IPv4 checksum")}
	}
	p.IPSrc = binary.BigEndian.Uint32(ip[12:16])
	p.IPDst = binary.BigEndian.Uint32(ip[16:20])

	// The IP datagram ends at TotalLen; anything beyond is Ethernet
	// padding (minimum frame size), not payload.
	end := off + int(p.TotalLen)
	if end < off+ihl || end > len(b) {
		end = len(b)
	}
	off += ihl

	if (p.Proto == ProtoTCP || p.Proto == ProtoUDP) && end >= off+4 {
		p.HasL4 = true
		p.SrcPort = binary.BigEndian.Uint16(b[off : off+2])
		p.DstPort = binary.BigEndian.Uint16(b[off+2 : off+4])
		l4len := TCPHeaderLen
		if p.Proto == ProtoUDP {
			l4len = UDPHeaderLen
		}
		if end >= off+l4len {
			off += l4len
		} else {
			off = end
		}
	}
	p.Payload = b[off:end]
	return nil
}

// Marshal serializes the packet into buf (allocating when nil or too
// small), recomputing lengths and the IPv4 checksum and padding to the
// minimum frame size. It returns the frame bytes.
func (p *Packet) Marshal(buf []byte) []byte {
	n := EthHeaderLen
	if p.HasVLAN {
		n += VLANTagLen
	}
	if p.HasIPv4 {
		n += IPv4HeaderLen
		if p.HasL4 {
			if p.Proto == ProtoUDP {
				n += UDPHeaderLen
			} else {
				n += TCPHeaderLen
			}
		}
	}
	l4Start := n
	n += len(p.Payload)
	frame := n
	if frame < MinFrameLen {
		frame = MinFrameLen
	}
	if cap(buf) < frame {
		buf = make([]byte, frame)
	}
	buf = buf[:frame]
	for i := n; i < frame; i++ {
		buf[i] = 0
	}

	putMAC(buf[0:6], p.EthDst)
	putMAC(buf[6:12], p.EthSrc)
	off := 12
	if p.HasVLAN {
		binary.BigEndian.PutUint16(buf[off:], EtherTypeVLAN)
		binary.BigEndian.PutUint16(buf[off+2:], uint16(p.VLANPrio)<<13|p.VLANID&0x0FFF)
		off += 4
	}
	binary.BigEndian.PutUint16(buf[off:], p.EthType)
	off += 2

	if p.HasIPv4 {
		ip := buf[off:]
		verIHL := p.IPVerIHL
		if verIHL == 0 {
			verIHL = 0x45
		}
		ip[0] = verIHL
		ip[1] = p.TOS
		totalLen := n - off
		binary.BigEndian.PutUint16(ip[2:], uint16(totalLen))
		binary.BigEndian.PutUint16(ip[4:], p.IPID)
		binary.BigEndian.PutUint16(ip[6:], p.Flags)
		ip[8] = p.TTL
		ip[9] = p.Proto
		ip[10], ip[11] = 0, 0
		binary.BigEndian.PutUint32(ip[12:], p.IPSrc)
		binary.BigEndian.PutUint32(ip[16:], p.IPDst)
		cs := Checksum(ip[:IPv4HeaderLen])
		binary.BigEndian.PutUint16(ip[10:], cs)
		off += IPv4HeaderLen

		if p.HasL4 {
			binary.BigEndian.PutUint16(buf[off:], p.SrcPort)
			binary.BigEndian.PutUint16(buf[off+2:], p.DstPort)
			if p.Proto == ProtoUDP {
				binary.BigEndian.PutUint16(buf[off+4:], uint16(UDPHeaderLen+len(p.Payload)))
				binary.BigEndian.PutUint16(buf[off+6:], 0) // checksum optional in UDP/IPv4
				off += UDPHeaderLen
			} else {
				for i := off + 4; i < off+TCPHeaderLen; i++ {
					buf[i] = 0
				}
				buf[off+12] = 5 << 4 // data offset
				off += TCPHeaderLen
			}
		}
	}
	copy(buf[l4Start:], p.Payload)
	return buf
}

// Checksum computes the Internet checksum (RFC 1071) of b.
func Checksum(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(b[i:]))
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum > 0xFFFF {
		sum = sum&0xFFFF + sum>>16
	}
	return ^uint16(sum)
}

func mac48(b []byte) uint64 {
	return uint64(b[0])<<40 | uint64(b[1])<<32 | uint64(b[2])<<24 |
		uint64(b[3])<<16 | uint64(b[4])<<8 | uint64(b[5])
}

func putMAC(b []byte, v uint64) {
	b[0] = byte(v >> 40)
	b[1] = byte(v >> 32)
	b[2] = byte(v >> 24)
	b[3] = byte(v >> 16)
	b[4] = byte(v >> 8)
	b[5] = byte(v)
}
