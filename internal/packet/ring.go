package packet

// ViewRing is a fixed-size ring of reusable FieldViews over one decoder
// — the per-worker decode arena of the frame-batch ingest path. Slot
// lifetime is bounded by the ring capacity: the view handed out for
// frame i is overwritten for frame i+Cap, so a caller may hold at most
// the last Cap decoded views at once. A ring is not safe for concurrent
// use; one worker, one ring.
type ViewRing struct {
	views []*FieldView
	pos   int
}

// NewRing allocates a ring of n reusable views (n < 1 is clamped to 1).
func (d *Decoder) NewRing(n int) *ViewRing {
	if n < 1 {
		n = 1
	}
	r := &ViewRing{views: make([]*FieldView, n)}
	for i := range r.views {
		r.views[i] = d.NewView()
	}
	return r
}

// Cap returns the ring capacity.
func (r *ViewRing) Cap() int { return len(r.views) }

// Next returns the next reusable view, cycling. The returned view's
// previous contents are whatever the parse Cap calls ago left; callers
// decode into it before reading.
func (r *ViewRing) Next() *FieldView {
	v := r.views[r.pos]
	r.pos++
	if r.pos == len(r.views) {
		r.pos = 0
	}
	return v
}
