package packet

import (
	"fmt"
	"strings"

	"manorm/internal/mat"
)

// Binder is the single bridge between mat.Schema attribute names and a
// header schema's slot space. It replaces the ad-hoc string plumbing that
// used to be scattered across the dataplane compiler, the difftest
// mutation checker and the usecases: match attributes resolve through
// Slot, rewriting action attributes resolve through ActionSlot (which
// understands both the legacy mod_smac/mod_dmac/mod_vlan aliases and the
// generic "mod_<field>" convention), and F/Columns mint mat attributes
// whose widths come from the schema instead of being re-declared at every
// call site.
type Binder struct {
	schema *HeaderSchema
}

// NewBinder wraps a header schema. The schema must be initialized (built
// by NewHeaderSchema or a compiled parse graph).
func NewBinder(s *HeaderSchema) *Binder { return &Binder{schema: s} }

// DefaultBinder binds the built-in default schema.
func DefaultBinder() *Binder { return NewBinder(DefaultDecoder().Schema()) }

// Schema returns the bound header schema.
func (b *Binder) Schema() *HeaderSchema { return b.schema }

// Slot resolves a match attribute name to its field slot, or -1.
func (b *Binder) Slot(attr string) int { return b.schema.Slot(attr) }

// ActionTarget maps a rewriting action attribute to the field it writes:
// the legacy aliases (mod_smac, mod_dmac, mod_vlan) first, then the
// generic convention mod_<field> for any schema field, then the attribute
// name itself. The schema-generic superset of ActionField.
func (b *Binder) ActionTarget(attr string) string {
	switch attr {
	case "mod_smac":
		return FieldEthSrc
	case "mod_dmac":
		return FieldEthDst
	case "mod_vlan":
		return FieldVLAN
	}
	if rest := strings.TrimPrefix(attr, "mod_"); rest != attr && b.schema.Slot(rest) >= 0 {
		return rest
	}
	return attr
}

// ActionSlot resolves a rewriting action attribute to the slot it writes,
// or -1 when the target field is not in the schema.
func (b *Binder) ActionSlot(attr string) int {
	return b.schema.Slot(b.ActionTarget(attr))
}

// Width returns the bit width of a match attribute under the schema.
func (b *Binder) Width(attr string) uint8 { return b.schema.Width(attr) }

// F mints a match attribute for a schema field; it panics on names
// outside the schema, so table definitions fail loudly at construction.
func (b *Binder) F(name string) mat.Attr {
	w := b.schema.Width(name)
	if w == 0 {
		panic(fmt.Sprintf("packet: binder for schema %s: unknown field %q", b.schema.Name, name))
	}
	return mat.F(name, w)
}

// Mod mints a rewriting action attribute "mod_<field>" whose width is the
// target field's width.
func (b *Binder) Mod(field string) mat.Attr {
	w := b.schema.Width(field)
	if w == 0 {
		panic(fmt.Sprintf("packet: binder for schema %s: unknown field %q", b.schema.Name, field))
	}
	return mat.A("mod_"+field, w)
}

// Columns builds a mat.Schema of match attributes for the named fields.
func (b *Binder) Columns(names ...string) mat.Schema {
	out := make(mat.Schema, 0, len(names))
	for _, n := range names {
		out = append(out, b.F(n))
	}
	return out
}
