package packet

import "errors"

// DecodeReason classifies decoder outcomes so ingest paths can keep
// typed per-reason drop counters instead of swallowing opaque errors.
type DecodeReason uint8

const (
	// ReasonNone marks an error that is not a decode classification (or no
	// error at all).
	ReasonNone DecodeReason = iota
	// ReasonTruncated is a frame too short for a mandatory header: the
	// start header, or a tagged/stacked header the graph already committed
	// to (the legacy codec's VLAN tag).
	ReasonTruncated
	// ReasonBadHeader is a header that failed verification: a bad IPv4
	// version/IHL, a failing checksum, or a schema Verify hook returning
	// false.
	ReasonBadHeader
)

// String names the reason the way the ingest counters spell it.
func (r DecodeReason) String() string {
	switch r {
	case ReasonTruncated:
		return "truncated"
	case ReasonBadHeader:
		return "bad_header"
	default:
		return "none"
	}
}

// DecodeError is the typed decode failure both codecs return: the
// classification plus the underlying error, whose message is unchanged
// from the pre-typed form (and still unwraps, so
// errors.Is(err, ErrFrameTooShort) keeps working for truncations).
type DecodeError struct {
	Reason DecodeReason
	Err    error
}

func (e *DecodeError) Error() string { return e.Err.Error() }

// Unwrap exposes the underlying error for errors.Is/As.
func (e *DecodeError) Unwrap() error { return e.Err }

// DecodeReasonOf classifies err: the Reason of the DecodeError in its
// chain, or ReasonNone for non-decode errors (and nil).
func DecodeReasonOf(err error) DecodeReason {
	var de *DecodeError
	if errors.As(err, &de) {
		return de.Reason
	}
	return ReasonNone
}
