package packet

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTCP4RoundTrip(t *testing.T) {
	p := TCP4(0xAA0000000001, 0xBB0000000002, 0x0A000001, 0xC0000201, 12345, 443)
	wire := p.Marshal(nil)
	if len(wire) != MinFrameLen {
		t.Fatalf("frame length = %d, want %d (padded)", len(wire), MinFrameLen)
	}
	q, err := Parse(wire)
	if err != nil {
		t.Fatal(err)
	}
	if q.EthSrc != p.EthSrc || q.EthDst != p.EthDst || q.EthType != EtherTypeIPv4 {
		t.Errorf("ethernet mismatch: %+v", q)
	}
	if !q.HasIPv4 || q.IPSrc != p.IPSrc || q.IPDst != p.IPDst || q.TTL != 64 || q.Proto != ProtoTCP {
		t.Errorf("ip mismatch: %+v", q)
	}
	if !q.HasL4 || q.SrcPort != 12345 || q.DstPort != 443 {
		t.Errorf("l4 mismatch: %+v", q)
	}
}

func TestVLANRoundTrip(t *testing.T) {
	p := TCP4(1, 2, 3, 4, 5, 6)
	p.HasVLAN = true
	p.VLANID = 0x123
	p.VLANPrio = 5
	wire := p.Marshal(nil)
	q, err := Parse(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !q.HasVLAN || q.VLANID != 0x123 || q.VLANPrio != 5 {
		t.Errorf("vlan mismatch: %+v", q)
	}
	if q.EthType != EtherTypeIPv4 {
		t.Errorf("inner ethertype = %#x", q.EthType)
	}
}

func TestUDPRoundTrip(t *testing.T) {
	p := TCP4(1, 2, 3, 4, 1000, 53)
	p.Proto = ProtoUDP
	p.Payload = []byte("query")
	wire := p.Marshal(nil)
	q, err := Parse(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !q.HasL4 || q.DstPort != 53 || q.Proto != ProtoUDP {
		t.Errorf("udp mismatch: %+v", q)
	}
	if !bytes.HasPrefix(q.Payload, []byte("query")) {
		t.Errorf("payload lost: %q", q.Payload)
	}
}

func TestParseRejectsShortFrame(t *testing.T) {
	if _, err := Parse(make([]byte, 10)); err == nil {
		t.Errorf("10-byte frame parsed")
	}
}

func TestParseRejectsBadChecksum(t *testing.T) {
	wire := TCP4(1, 2, 3, 4, 5, 6).Marshal(nil)
	wire[EthHeaderLen+10] ^= 0xFF // corrupt IPv4 checksum
	if _, err := Parse(wire); err == nil {
		t.Errorf("bad checksum accepted")
	}
}

func TestParseRejectsBadIPVersion(t *testing.T) {
	wire := TCP4(1, 2, 3, 4, 5, 6).Marshal(nil)
	wire[EthHeaderLen] = 0x65 // version 6
	if _, err := Parse(wire); err == nil {
		t.Errorf("IPv6 version nibble accepted as IPv4")
	}
}

func TestParseNonIPPayload(t *testing.T) {
	frame := make([]byte, MinFrameLen)
	putMAC(frame[0:6], 0x111111111111)
	putMAC(frame[6:12], 0x222222222222)
	frame[12], frame[13] = 0x08, 0x06 // ARP
	p, err := Parse(frame)
	if err != nil {
		t.Fatal(err)
	}
	if p.HasIPv4 || p.HasL4 {
		t.Errorf("ARP frame decoded as IP: %+v", p)
	}
	if p.EthType != EtherTypeARP {
		t.Errorf("ethertype = %#x", p.EthType)
	}
}

func TestChecksumRFC1071(t *testing.T) {
	// The classic RFC 1071 example.
	b := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(b); got != 0x220d {
		t.Errorf("Checksum = %#x, want 0x220d", got)
	}
	// A buffer with its own checksum folded in must verify to zero.
	p := TCP4(1, 2, 3, 4, 5, 6)
	wire := p.Marshal(nil)
	if Checksum(wire[EthHeaderLen:EthHeaderLen+IPv4HeaderLen]) != 0 {
		t.Errorf("self-checksummed header does not verify")
	}
	// Odd length.
	if Checksum([]byte{0xFF}) != ^uint16(0xFF00) {
		t.Errorf("odd-length checksum wrong")
	}
}

func TestMarshalReusesBuffer(t *testing.T) {
	p := TCP4(1, 2, 3, 4, 5, 6)
	buf := make([]byte, 0, 128)
	w1 := p.Marshal(buf)
	if &w1[0] != &buf[:1][0] {
		t.Errorf("Marshal did not reuse the provided buffer")
	}
}

func TestParseIntoReuses(t *testing.T) {
	var p Packet
	if err := p.ParseInto(TCP4(1, 2, 3, 4, 5, 6).Marshal(nil)); err != nil {
		t.Fatal(err)
	}
	old := p
	if err := p.ParseInto(TCP4(9, 9, 9, 9, 9, 9).Marshal(nil)); err != nil {
		t.Fatal(err)
	}
	if p.IPSrc == old.IPSrc {
		t.Errorf("ParseInto did not overwrite")
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(es, ed uint64, is, id uint32, sp, dp uint16, vlan uint16, hasVLAN bool) bool {
		p := TCP4(es, ed, is, id, sp, dp)
		if hasVLAN {
			p.HasVLAN = true
			p.VLANID = vlan & 0x0FFF
		}
		q, err := Parse(p.Marshal(nil))
		if err != nil {
			return false
		}
		return q.EthSrc == p.EthSrc && q.EthDst == p.EthDst &&
			q.IPSrc == p.IPSrc && q.IPDst == p.IPDst &&
			q.SrcPort == p.SrcPort && q.DstPort == p.DstPort &&
			q.HasVLAN == p.HasVLAN && q.VLANID == p.VLANID
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(5))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestFieldAccessors(t *testing.T) {
	p := TCP4(0xA, 0xB, 1, 2, 3, 4)
	cases := map[string]uint64{
		FieldEthSrc: 0xA, FieldEthDst: 0xB,
		FieldIPSrc: 1, FieldIPDst: 2,
		FieldTCPSrc: 3, FieldTCPDst: 4,
		FieldEthType: EtherTypeIPv4, FieldIPProto: ProtoTCP, FieldTTL: 64,
	}
	for name, want := range cases {
		got, ok := p.Field(name)
		if !ok || got != want {
			t.Errorf("Field(%s) = %d, %v; want %d", name, got, ok, want)
		}
	}
	if _, ok := p.Field(FieldVLAN); ok {
		t.Errorf("vlan present on untagged packet")
	}
	if _, ok := p.Field("bogus"); ok {
		t.Errorf("unknown field present")
	}
}

func TestSetField(t *testing.T) {
	p := TCP4(1, 2, 3, 4, 5, 6)
	if !p.SetField(FieldIPDst, 0xC0000202) || p.IPDst != 0xC0000202 {
		t.Errorf("SetField(ip_dst) failed")
	}
	if !p.SetField(FieldTTL, 63) || p.TTL != 63 {
		t.Errorf("SetField(ttl) failed")
	}
	if !p.SetField(FieldVLAN, 7) || !p.HasVLAN || p.VLANID != 7 {
		t.Errorf("SetField(vlan) did not add the tag")
	}
	if p.SetField("bogus", 1) {
		t.Errorf("unknown field set")
	}
	arp := &Packet{EthType: EtherTypeARP}
	if arp.SetField(FieldIPDst, 1) {
		t.Errorf("ip field set on non-IP packet")
	}
}

func TestRecord(t *testing.T) {
	p := TCP4(1, 2, 3, 4, 5, 6)
	r := p.Record()
	for name, want := range map[string]uint64{
		FieldIPSrc: 3, FieldIPDst: 4, FieldTCPDst: 6, FieldEthType: EtherTypeIPv4,
	} {
		if r[name] != want {
			t.Errorf("Record[%s] = %d, want %d", name, r[name], want)
		}
	}
	if _, ok := r[FieldVLAN]; ok {
		t.Errorf("untagged packet record has vlan")
	}
}

func TestFieldWidth(t *testing.T) {
	if FieldWidth(FieldEthDst) != 48 || FieldWidth(FieldIPDst) != 32 ||
		FieldWidth(FieldTCPDst) != 16 || FieldWidth(FieldVLAN) != 12 ||
		FieldWidth(FieldTTL) != 8 || FieldWidth("bogus") != 0 {
		t.Errorf("FieldWidth table wrong")
	}
}

func TestPayloadCarried(t *testing.T) {
	p := TCP4(1, 2, 3, 4, 5, 6)
	p.Payload = bytes.Repeat([]byte{0xAB}, 100)
	wire := p.Marshal(nil)
	if len(wire) != EthHeaderLen+IPv4HeaderLen+TCPHeaderLen+100 {
		t.Fatalf("frame length = %d", len(wire))
	}
	q, err := Parse(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(q.Payload, p.Payload) {
		t.Errorf("payload mismatch")
	}
}
