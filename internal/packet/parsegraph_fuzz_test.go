package packet

import (
	"bytes"
	"testing"
)

// FuzzDecoderParse throws arbitrary bytes at every shipped decoder. The
// invariants: no panic, presence never claims bytes the frame does not
// have, and a successfully parsed view re-encodes and re-parses to the
// same slots (idempotent normalization) for generic schemas.
func FuzzDecoderParse(f *testing.F) {
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 14))
	f.Add(TCP4(1, 2, 3, 4, 5, 6).Marshal(nil))
	vx := mustFuzzDecoder(f, SchemaVXLAN)
	seed := vx.NewView()
	for hi := range vx.Schema().Headers {
		seed.MarkPresent(hi)
	}
	seed.SetName("eth_type", EtherTypeIPv4)
	seed.SetName("ip_proto", ProtoUDP)
	seed.SetName("udp_dst", UDPPortVXLAN)
	f.Add(seed.Marshal(nil))

	decs := make([]*Decoder, 0, 4)
	for _, name := range BuiltinSchemaNames() {
		decs = append(decs, mustFuzzDecoder(f, name))
	}
	f.Fuzz(func(t *testing.T, frame []byte) {
		for _, dec := range decs {
			v := dec.NewView()
			if err := dec.ParseInto(v, frame); err != nil {
				continue
			}
			if dec.Schema().Name == SchemaDefault {
				continue // legacy codec normalizes (padding, checksums)
			}
			claimed := 0
			for hi := range dec.Schema().Headers {
				if v.HeaderPresent(hi) {
					claimed += dec.Schema().headerBytes(hi)
				}
			}
			if claimed+len(v.Payload()) != len(frame) {
				t.Fatalf("%s: claimed %d + payload %d != frame %d",
					dec.Schema().Name, claimed, len(v.Payload()), len(frame))
			}
			wire := v.Marshal(nil)
			v2, err := dec.Parse(wire)
			if err != nil {
				t.Fatalf("%s: re-parse of re-encoded frame: %v", dec.Schema().Name, err)
			}
			if v2.present != v.present {
				t.Fatalf("%s: presence changed on round trip: %b -> %b", dec.Schema().Name, v.present, v2.present)
			}
			for i := range v.slots {
				if v.slots[i] != v2.slots[i] {
					t.Fatalf("%s: slot %d changed on round trip", dec.Schema().Name, i)
				}
			}
		}
	})
}

func mustFuzzDecoder(f *testing.F, name string) *Decoder {
	f.Helper()
	d, err := BuiltinDecoder(name)
	if err != nil {
		f.Fatal(err)
	}
	return d
}
