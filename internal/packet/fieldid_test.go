package packet

import "testing"

// FieldByID must agree with Field for every canonical name, on packets
// with and without the optional layers.
func TestFieldIDAgreesWithField(t *testing.T) {
	names := []string{
		FieldEthDst, FieldEthSrc, FieldEthType, FieldVLAN, FieldIPSrc,
		FieldIPDst, FieldIPProto, FieldTTL, FieldTCPSrc, FieldTCPDst,
	}
	pkts := []*Packet{
		TCP4(0x0a, 0x0b, 0xC0000201, 0xC0000202, 1234, 80),
		{EthDst: 1, EthSrc: 2, EthType: 0x0800}, // no VLAN/IPv4/L4 layers
	}
	pkts[0].HasVLAN = true
	pkts[0].VLANID = 7
	for _, p := range pkts {
		for _, n := range names {
			id := FieldID(n)
			if id < 0 || id >= NumFieldIDs {
				t.Fatalf("FieldID(%q) = %d out of range", n, id)
			}
			wv, wok := p.Field(n)
			gv, gok := p.FieldByID(id)
			if wv != gv || wok != gok {
				t.Fatalf("field %q: Field=(%d,%v) FieldByID=(%d,%v)", n, wv, wok, gv, gok)
			}
		}
	}
	if FieldID("nope") != -1 {
		t.Fatalf("FieldID(unknown) should be -1")
	}
	if _, ok := pkts[0].FieldByID(-1); ok {
		t.Fatalf("FieldByID(-1) should report absent")
	}
}
