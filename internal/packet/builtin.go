package packet

import (
	"fmt"
	"sort"
	"sync"
)

// Built-in schema names, selectable via the CLIs' -schema flag.
const (
	SchemaDefault = "default"
	SchemaVXLAN   = "vxlan"
	SchemaMPLS    = "mpls"
	SchemaGTPU    = "gtpu"
)

// Well-known select values used by the shipped parse graphs.
const (
	UDPPortVXLAN  = 4789   // IANA VXLAN destination port
	UDPPortGTPU   = 2152   // GTP-U destination port
	GTPMsgGPDU    = 255    // GTP-U message type carrying an encapsulated PDU
	EtherTypeMPLS = 0x8847 // MPLS unicast
)

// Field names introduced by the shipped VXLAN/MPLS/GTP-U schemas (the
// default schema keeps the canonical Field* names from fields.go).
const (
	FieldVXLANVNI    = "vxlan_vni"
	FieldInnerEthDst = "inner_eth_dst"
	FieldInnerEthSrc = "inner_eth_src"
	FieldMPLSLabel   = "mpls_label"
	FieldMPLSTC      = "mpls_tc"
	FieldMPLSBoS     = "mpls_s"
	FieldMPLSTTL     = "mpls_ttl"
	FieldGTPUTEID    = "gtpu_teid"
	FieldInnerIPSrc  = "inner_ip_src"
	FieldInnerIPDst  = "inner_ip_dst"
)

// Header indices of the default schema (legacy codec presence bits).
const (
	legacyHdrEth = iota
	legacyHdrVLAN
	legacyHdrIPv4
	legacyHdrL4
)

// ethHeader returns a generic Ethernet header with the given field-name
// prefix ("" yields the canonical eth_dst/eth_src/eth_type).
func ethHeader(name, prefix string) Header {
	return Header{Name: name, Fields: []FieldSpec{
		{Name: prefix + "eth_dst", Width: 48},
		{Name: prefix + "eth_src", Width: 48},
		{Name: prefix + "eth_type", Width: 16},
	}}
}

// ipv4Header returns a full fixed-20-byte IPv4 header (no options) with
// the given field-name prefix.
func ipv4Header(name, prefix string) Header {
	return Header{Name: name, Fields: []FieldSpec{
		{Name: prefix + "ip_verihl", Width: 8},
		{Name: prefix + "ip_tos", Width: 8},
		{Name: prefix + "ip_len", Width: 16},
		{Name: prefix + "ip_id", Width: 16},
		{Name: prefix + "ip_frag", Width: 16},
		{Name: prefix + "ip_ttl", Width: 8},
		{Name: prefix + "ip_proto", Width: 8},
		{Name: prefix + "ip_csum", Width: 16},
		{Name: prefix + "ip_src", Width: 32},
		{Name: prefix + "ip_dst", Width: 32},
	}}
}

// udpHeader returns a UDP header with the given field-name prefix.
func udpHeader(name, prefix string) Header {
	return Header{Name: name, Fields: []FieldSpec{
		{Name: prefix + "udp_src", Width: 16},
		{Name: prefix + "udp_dst", Width: 16},
		{Name: prefix + "udp_len", Width: 16},
		{Name: prefix + "udp_csum", Width: 16},
	}}
}

// mplsHeader returns one 32-bit MPLS label-stack entry.
func mplsHeader(name, prefix string) Header {
	return Header{Name: name, Fields: []FieldSpec{
		{Name: prefix + "label", Width: 20},
		{Name: prefix + "tc", Width: 3},
		{Name: prefix + "s", Width: 1},
		{Name: prefix + "ttl", Width: 8},
	}}
}

// defaultGraph builds the legacy default schema: the canonical
// Ethernet/VLAN/IPv4/L4 field set, decoded and encoded by the
// hand-written Packet codec for bit-identical pre-schema behavior. Its
// slot order equals the dense FieldID order, so slot i and FieldID i name
// the same field.
func defaultGraph() *ParseGraph {
	s := &HeaderSchema{
		Name:   SchemaDefault,
		legacy: true,
		Headers: []Header{
			{Name: "eth", Fields: []FieldSpec{
				{Name: FieldEthDst, Width: 48},
				{Name: FieldEthSrc, Width: 48},
				{Name: FieldEthType, Width: 16},
			}},
			{Name: "vlan", Fields: []FieldSpec{
				{Name: FieldVLAN, Width: 12},
			}},
			{Name: "ipv4", Fields: []FieldSpec{
				{Name: FieldIPSrc, Width: 32},
				{Name: FieldIPDst, Width: 32},
				{Name: FieldIPProto, Width: 8},
				{Name: FieldTTL, Width: 8},
			}},
			{Name: "l4", Fields: []FieldSpec{
				{Name: FieldTCPSrc, Width: 16},
				{Name: FieldTCPDst, Width: 16},
			}},
		},
	}
	// The states document the logical parse chain; the legacy codec does
	// the actual steering (including the IHL/checksum handling the
	// generic decoder does not model).
	return &ParseGraph{
		Schema: s,
		Start:  "eth",
		States: map[string]State{
			"eth":  {Select: FieldEthType, Transitions: []Transition{{Value: EtherTypeVLAN, Next: "vlan"}, {Value: EtherTypeIPv4, Next: "ipv4"}}},
			"vlan": {Select: FieldEthType, Transitions: []Transition{{Value: EtherTypeIPv4, Next: "ipv4"}}},
			"ipv4": {Select: FieldIPProto, Transitions: []Transition{{Value: ProtoTCP, Next: "l4"}, {Value: ProtoUDP, Next: "l4"}}},
		},
	}
}

// vxlanGraph builds the VXLAN overlay schema: outer
// Ethernet/IPv4/UDP(4789)/VXLAN, then the inner Ethernet frame of the
// tenant. Programs match the 24-bit VNI and inner MACs.
func vxlanGraph() *ParseGraph {
	s := &HeaderSchema{
		Name: SchemaVXLAN,
		Headers: []Header{
			ethHeader("eth", ""),
			ipv4Header("ipv4", ""),
			udpHeader("udp", ""),
			{Name: "vxlan", Fields: []FieldSpec{
				{Name: "vxlan_flags", Width: 8},
				{Name: "vxlan_rsvd", Width: 24},
				{Name: FieldVXLANVNI, Width: 24},
				{Name: "vxlan_rsvd2", Width: 8},
			}},
			ethHeader("inner_eth", "inner_"),
		},
	}
	return &ParseGraph{
		Schema: s,
		Start:  "eth",
		States: map[string]State{
			"eth":   {Select: "eth_type", Transitions: []Transition{{Value: EtherTypeIPv4, Next: "ipv4"}}},
			"ipv4":  {Select: "ip_proto", Transitions: []Transition{{Value: ProtoUDP, Next: "udp"}}},
			"udp":   {Select: "udp_dst", Transitions: []Transition{{Value: UDPPortVXLAN, Next: "vxlan"}}},
			"vxlan": {Default: "inner_eth"},
		},
	}
}

// mplsGraph builds an MPLS schema: Ethernet, up to two label-stack
// entries steered by the bottom-of-stack bit, then IPv4.
func mplsGraph() *ParseGraph {
	s := &HeaderSchema{
		Name: SchemaMPLS,
		Headers: []Header{
			ethHeader("eth", ""),
			mplsHeader("mpls", "mpls_"),
			mplsHeader("mpls2", "mpls2_"),
			ipv4Header("ipv4", ""),
		},
	}
	return &ParseGraph{
		Schema: s,
		Start:  "eth",
		States: map[string]State{
			"eth":   {Select: "eth_type", Transitions: []Transition{{Value: EtherTypeMPLS, Next: "mpls"}}},
			"mpls":  {Select: FieldMPLSBoS, Transitions: []Transition{{Value: 1, Next: "ipv4"}, {Value: 0, Next: "mpls2"}}},
			"mpls2": {Select: "mpls2_s", Transitions: []Transition{{Value: 1, Next: "ipv4"}}},
		},
	}
}

// gtpuGraph builds a GTP-U mobile-core schema: outer
// Ethernet/IPv4/UDP(2152)/GTP-U, then the encapsulated user-plane IPv4
// packet. Programs match the 32-bit TEID and inner addresses.
func gtpuGraph() *ParseGraph {
	s := &HeaderSchema{
		Name: SchemaGTPU,
		Headers: []Header{
			ethHeader("eth", ""),
			ipv4Header("ipv4", ""),
			udpHeader("udp", ""),
			{Name: "gtpu", Fields: []FieldSpec{
				{Name: "gtpu_flags", Width: 8},
				{Name: "gtpu_type", Width: 8},
				{Name: "gtpu_len", Width: 16},
				{Name: FieldGTPUTEID, Width: 32},
			}},
			ipv4Header("inner_ipv4", "inner_"),
		},
	}
	return &ParseGraph{
		Schema: s,
		Start:  "eth",
		States: map[string]State{
			"eth":  {Select: "eth_type", Transitions: []Transition{{Value: EtherTypeIPv4, Next: "ipv4"}}},
			"ipv4": {Select: "ip_proto", Transitions: []Transition{{Value: ProtoUDP, Next: "udp"}}},
			"udp":  {Select: "udp_dst", Transitions: []Transition{{Value: UDPPortGTPU, Next: "gtpu"}}},
			"gtpu": {Select: "gtpu_type", Transitions: []Transition{{Value: GTPMsgGPDU, Next: "inner_ipv4"}}},
		},
	}
}

var builtins = map[string]func() *ParseGraph{
	SchemaDefault: defaultGraph,
	SchemaVXLAN:   vxlanGraph,
	SchemaMPLS:    mplsGraph,
	SchemaGTPU:    gtpuGraph,
}

var (
	builtinMu  sync.Mutex
	builtinDec = map[string]*Decoder{}
)

// BuiltinSchemaNames lists the shipped schemas, default first.
func BuiltinSchemaNames() []string {
	names := make([]string, 0, len(builtins))
	for n := range builtins {
		if n != SchemaDefault {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return append([]string{SchemaDefault}, names...)
}

// BuiltinDecoder returns the cached compiled decoder of a shipped schema.
func BuiltinDecoder(name string) (*Decoder, error) {
	builtinMu.Lock()
	defer builtinMu.Unlock()
	if d, ok := builtinDec[name]; ok {
		return d, nil
	}
	mk, ok := builtins[name]
	if !ok {
		return nil, fmt.Errorf("packet: unknown schema %q (have %v)", name, BuiltinSchemaNames())
	}
	d, err := mk().Compile()
	if err != nil {
		return nil, err
	}
	builtinDec[name] = d
	return d, nil
}

// BuiltinGraph returns the parse graph of a shipped schema (compiled and
// cached; the graph's Schema is initialized).
func BuiltinGraph(name string) (*ParseGraph, error) {
	d, err := BuiltinDecoder(name)
	if err != nil {
		return nil, err
	}
	return d.graph, nil
}

// DefaultDecoder returns the default schema's decoder; it always
// compiles.
func DefaultDecoder() *Decoder {
	d, err := BuiltinDecoder(SchemaDefault)
	if err != nil {
		panic(err)
	}
	return d
}
