// Package packet defines the packets the dataplane substrates process —
// as of the schema redesign, in protocol-independent form.
//
// # Schema model
//
// A HeaderSchema names an ordered set of headers, each an ordered list of
// bit-width fields; the fields flatten into a dense slot space shared by
// every layer above. A ParseGraph programs the parser over a schema in
// the P4 style: states are headers, transitions are keyed on a select
// field (EtherType, IP proto, UDP destination port, ...), and edges only
// move forward in header order so every parse terminates. Compile turns
// a graph into a table-driven Decoder once; per frame, decoding is a loop
// of bounds check → bit-field extraction → one select lookup per header,
// with no per-protocol code.
//
// The decoded form is a FieldView: one uint64 slot per schema field, a
// per-header presence mask, and the trailing payload. Views are created
// once per worker and refilled by Decoder.ParseInto, so the hot path is
// allocation-free; datapaths resolve attribute names to slot indices at
// compile time and read packet state as an array load.
//
// A Binder is the single bridge between mat.Schema attribute names and
// slots: match attributes via Slot, rewriting actions via ActionSlot
// (legacy mod_smac/mod_dmac/mod_vlan aliases plus the generic
// "mod_<field>" convention), and schema-width mat attribute constructors.
//
// # Built-in schemas
//
// The pre-schema Ethernet (optionally 802.1Q-tagged)/IPv4/TCP-UDP stack
// survives as the built-in "default" schema. Its decoder delegates to the
// original hand-written Packet codec (VLAN untagging, IHL options,
// checksum verification and recomputation, minimum-frame padding), so
// default-schema behavior is bit-identical to the fixed-struct era, and
// its slot order equals the dense FieldID order. VXLAN, MPLS and GTP-U
// ship as worked examples (BuiltinDecoder), each carried by a usecase
// experiment in internal/usecases.
//
// The legacy Packet struct remains as the default schema's codec and for
// packages not yet migrated; new code should use accessors or a
// FieldView rather than its struct fields.
package packet
