package packet

import (
	"fmt"

	"manorm/internal/mat"
)

// FieldSpec describes one named field of a header: a bit width and the
// canonical attribute name the match-action model refers to it by.
type FieldSpec struct {
	Name  string `json:"name"`
	Width uint8  `json:"width"` // bits, 1..64
}

// Header is one protocol header: an ordered list of fields laid out
// bit-packed, big-endian, in declaration order. The total width must be a
// whole number of bytes (the generic codec reads and writes whole
// headers); the built-in default schema is exempt because it rides the
// hand-written Ethernet/VLAN/IPv4/L4 codec instead.
type Header struct {
	Name   string      `json:"name"`
	Fields []FieldSpec `json:"fields"`
	// Verify, when non-nil, validates the raw header bytes during decode
	// (e.g. a checksum); returning false rejects the frame. Hooks are not
	// serialized — schemas that travel through JSON (the fuzzing corpus)
	// must not rely on them.
	Verify func(b []byte) bool `json:"-"`
}

// Bits returns the header's total width in bits.
func (h Header) Bits() int {
	n := 0
	for _, f := range h.Fields {
		n += int(f.Width)
	}
	return n
}

// slotInfo is the flattened location of one field: its owning header and
// bit offset within it.
type slotInfo struct {
	name   string
	width  uint8
	hdr    int
	bitOff int
}

// HeaderSchema is a named, ordered set of headers whose fields flatten
// into a dense slot space: slot i is the i-th field in header-then-field
// declaration order. The slot indices are the protocol-independent
// analogue of the canonical FieldID table — datapaths resolve attribute
// names to slots once at compile time and read packet state as
// FieldView.Get(slot) on the hot path.
//
// Header order is wire order: a parse graph over the schema may only
// transition forward (a DAG in declaration order), and the generic
// encoder emits present headers in declaration order.
type HeaderSchema struct {
	Name    string   `json:"name"`
	Headers []Header `json:"headers"`

	// legacy marks the built-in default schema, which decodes and encodes
	// through the hand-written Packet codec (bit-identical to the
	// pre-schema stack) rather than the generic bit-packed codec.
	legacy bool

	slots    []slotInfo
	index    map[string]int
	hdrIndex map[string]int
}

// NewHeaderSchema builds and validates a schema.
func NewHeaderSchema(name string, headers ...Header) (*HeaderSchema, error) {
	s := &HeaderSchema{Name: name, Headers: headers}
	if err := s.init(); err != nil {
		return nil, err
	}
	return s, nil
}

// init computes the slot layout, validating the schema. It is idempotent,
// so schemas arriving through JSON are initialized on first use.
func (s *HeaderSchema) init() error {
	if s.index != nil {
		return nil
	}
	if s.Name == "" {
		return fmt.Errorf("packet: schema with empty name")
	}
	if len(s.Headers) == 0 {
		return fmt.Errorf("packet: schema %s has no headers", s.Name)
	}
	if len(s.Headers) > 64 {
		return fmt.Errorf("packet: schema %s has %d headers; the presence mask supports 64", s.Name, len(s.Headers))
	}
	index := make(map[string]int)
	hdrIndex := make(map[string]int, len(s.Headers))
	var slots []slotInfo
	for hi, h := range s.Headers {
		if h.Name == "" {
			return fmt.Errorf("packet: schema %s: header %d has empty name", s.Name, hi)
		}
		if _, dup := hdrIndex[h.Name]; dup {
			return fmt.Errorf("packet: schema %s: duplicate header %q", s.Name, h.Name)
		}
		hdrIndex[h.Name] = hi
		if len(h.Fields) == 0 {
			return fmt.Errorf("packet: schema %s: header %s has no fields", s.Name, h.Name)
		}
		off := 0
		for _, f := range h.Fields {
			if f.Name == "" {
				return fmt.Errorf("packet: schema %s: header %s has a field with empty name", s.Name, h.Name)
			}
			if f.Width == 0 || f.Width > 64 {
				return fmt.Errorf("packet: schema %s: field %s has invalid width %d", s.Name, f.Name, f.Width)
			}
			if _, dup := index[f.Name]; dup {
				return fmt.Errorf("packet: schema %s: duplicate field %q", s.Name, f.Name)
			}
			index[f.Name] = len(slots)
			slots = append(slots, slotInfo{name: f.Name, width: f.Width, hdr: hi, bitOff: off})
			off += int(f.Width)
		}
		if !s.legacy && off%8 != 0 {
			return fmt.Errorf("packet: schema %s: header %s is %d bits; headers must be whole bytes", s.Name, h.Name, off)
		}
	}
	s.slots, s.index, s.hdrIndex = slots, index, hdrIndex
	return nil
}

// NumSlots returns the number of field slots.
func (s *HeaderSchema) NumSlots() int { return len(s.slots) }

// Slot resolves a field name to its dense slot index, or -1.
func (s *HeaderSchema) Slot(name string) int {
	if i, ok := s.index[name]; ok {
		return i
	}
	return -1
}

// SlotName returns the field name of a slot.
func (s *HeaderSchema) SlotName(slot int) string { return s.slots[slot].name }

// SlotWidth returns the bit width of a slot.
func (s *HeaderSchema) SlotWidth(slot int) uint8 { return s.slots[slot].width }

// HeaderOfSlot returns the index of the header owning a slot.
func (s *HeaderSchema) HeaderOfSlot(slot int) int { return s.slots[slot].hdr }

// HeaderIndex resolves a header name to its index, or -1.
func (s *HeaderSchema) HeaderIndex(name string) int {
	if i, ok := s.hdrIndex[name]; ok {
		return i
	}
	return -1
}

// Width returns the bit width of a field name (0 for unknown names) —
// the schema-generic form of the canonical FieldWidth table.
func (s *HeaderSchema) Width(name string) uint8 {
	if i, ok := s.index[name]; ok {
		return s.slots[i].width
	}
	return 0
}

// FieldNames lists every field name in slot order.
func (s *HeaderSchema) FieldNames() []string {
	out := make([]string, len(s.slots))
	for i, sl := range s.slots {
		out[i] = sl.name
	}
	return out
}

// headerBytes returns the wire size of header hi in bytes (legacy schemas
// report the packed size of their abstract field view, which the generic
// codec never uses).
func (s *HeaderSchema) headerBytes(hi int) int { return (s.Headers[hi].Bits() + 7) / 8 }

// FieldView is a decoded packet under a header schema: one uint64 slot
// per schema field plus a per-header presence mask and the trailing
// payload. It is the protocol-independent replacement for the fixed
// Packet struct — datapaths address fields by slot index, so the hot path
// is an array load instead of a struct-field switch, and the same
// compiled pipeline code serves any schema.
//
// A view is created once per worker (Decoder.NewView) and refilled per
// frame by Decoder.ParseInto; no method allocates.
type FieldView struct {
	dec     *Decoder
	slots   []uint64
	present uint64
	payload []byte
	// lp is the scratch Packet behind the default schema's legacy codec
	// (nil for generic schemas).
	lp *Packet
	// unknownNext, set per parse, flags an accepted frame whose select
	// value matched no transition and had no default to fall back to —
	// the frame is kept (remaining bytes as payload), but ingest arenas
	// count it.
	unknownNext bool
}

// Schema returns the view's header schema.
func (v *FieldView) Schema() *HeaderSchema { return v.dec.schema }

// Decoder returns the decoder the view was created from.
func (v *FieldView) Decoder() *Decoder { return v.dec }

// Reset clears presence, slot values and payload.
func (v *FieldView) Reset() {
	v.present = 0
	v.unknownNext = false
	for i := range v.slots {
		v.slots[i] = 0
	}
	v.payload = nil
}

// UnknownNext reports whether the last parse accepted the frame after a
// select value that matched no transition (and no default continued the
// walk) — the typed "unknown next-header" outcome. It is informational:
// the frame was kept, with the unparsed bytes as payload.
func (v *FieldView) UnknownNext() bool { return v.unknownNext }

// Get reads a slot; the second result is false when the slot is out of
// range or its header is absent — mirroring Packet.Field's contract.
func (v *FieldView) Get(slot int) (uint64, bool) {
	if uint(slot) >= uint(len(v.slots)) {
		return 0, false
	}
	if v.present&v.dec.slotMask[slot] == 0 {
		return 0, false
	}
	return v.slots[slot], true
}

// Set writes a slot (masked to the field width), reporting whether the
// slot exists and its header is present — mirroring Packet.SetField.
func (v *FieldView) Set(slot int, val uint64) bool {
	if uint(slot) >= uint(len(v.slots)) {
		return false
	}
	if v.present&v.dec.slotMask[slot] == 0 {
		return false
	}
	v.slots[slot] = val & widthMask(v.dec.schema.slots[slot].width)
	return true
}

// GetName reads a field by name (convenience; hot paths resolve the slot
// once and use Get).
func (v *FieldView) GetName(name string) (uint64, bool) {
	return v.Get(v.dec.schema.Slot(name))
}

// SetName writes a field by name.
func (v *FieldView) SetName(name string, val uint64) bool {
	return v.Set(v.dec.schema.Slot(name), val)
}

// HeaderPresent reports whether header hi was parsed (or marked present).
func (v *FieldView) HeaderPresent(hi int) bool { return v.present&(1<<uint(hi)) != 0 }

// MarkPresent marks header hi present — used by generators that build
// views by hand before encoding them.
func (v *FieldView) MarkPresent(hi int) { v.present |= 1 << uint(hi) }

// MarkPresentName marks a header present by name, reporting whether the
// name was known.
func (v *FieldView) MarkPresentName(name string) bool {
	hi := v.dec.schema.HeaderIndex(name)
	if hi < 0 {
		return false
	}
	v.MarkPresent(hi)
	return true
}

// Payload returns everything after the parsed headers.
func (v *FieldView) Payload() []byte { return v.payload }

// SetPayload sets the trailing payload for encoding.
func (v *FieldView) SetPayload(b []byte) { v.payload = b }

// Record converts the view into the attribute-record form evaluated by
// the relational semantics: every field of every present header, keyed by
// field name. The schema-generic analogue of Packet.Record.
func (v *FieldView) Record() mat.Record {
	r := make(mat.Record, len(v.slots))
	for i := range v.slots {
		if v.present&v.dec.slotMask[i] != 0 {
			r[v.dec.schema.slots[i].name] = v.slots[i]
		}
	}
	return r
}

// Clone deep-copies the view.
func (v *FieldView) Clone() *FieldView {
	c := v.dec.NewView()
	copy(c.slots, v.slots)
	c.present = v.present
	c.payload = append([]byte(nil), v.payload...)
	return c
}

// ParseInto decodes a frame into the view (see Decoder.ParseInto).
func (v *FieldView) ParseInto(frame []byte) error { return v.dec.ParseInto(v, frame) }

// Marshal encodes the view back to wire bytes (see Decoder.Marshal).
func (v *FieldView) Marshal(buf []byte) []byte { return v.dec.Marshal(v, buf) }

// widthMask returns the low-width-bits mask.
func widthMask(width uint8) uint64 {
	if width >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << width) - 1
}

// readBits extracts width bits starting at bit offset off (big-endian bit
// order) from b.
func readBits(b []byte, off int, width uint8) uint64 {
	var out uint64
	n := int(width)
	for n > 0 {
		byteIdx := off >> 3
		bitIdx := off & 7
		take := 8 - bitIdx
		if take > n {
			take = n
		}
		bits := (b[byteIdx] >> uint(8-bitIdx-take)) & byte(1<<uint(take)-1)
		out = out<<uint(take) | uint64(bits)
		off += take
		n -= take
	}
	return out
}

// writeBits stores the low width bits of val at bit offset off in b
// (big-endian bit order).
func writeBits(b []byte, off int, width uint8, val uint64) {
	n := int(width)
	for n > 0 {
		byteIdx := off >> 3
		bitIdx := off & 7
		take := 8 - bitIdx
		if take > n {
			take = n
		}
		shift := uint(n - take)
		bits := byte(val>>shift) & byte(1<<uint(take)-1)
		mask := byte(1<<uint(take)-1) << uint(8-bitIdx-take)
		b[byteIdx] = b[byteIdx]&^mask | bits<<uint(8-bitIdx-take)
		off += take
		n -= take
	}
}
