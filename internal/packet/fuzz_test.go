package packet

import (
	"math/rand"
	"testing"
)

// TestParseNeverPanics feeds random and mutated frames to the parser.
func TestParseNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10000; i++ {
		n := rng.Intn(128)
		b := make([]byte, n)
		rng.Read(b)
		_, _ = Parse(b)
	}
	valid := TCP4(1, 2, 3, 4, 5, 6).Marshal(nil)
	for i := 0; i < 10000; i++ {
		b := append([]byte(nil), valid...)
		for k := 0; k < 1+rng.Intn(3); k++ {
			b[rng.Intn(len(b))] ^= byte(1 << rng.Intn(8))
		}
		_, _ = Parse(b)
	}
	// Truncations.
	for cut := 0; cut <= len(valid); cut++ {
		_, _ = Parse(valid[:cut])
	}
}

// TestParseIHLOptions covers IPv4 headers with options (IHL > 5).
func TestParseIHLOptions(t *testing.T) {
	p := TCP4(1, 2, 3, 4, 5, 6)
	wire := p.Marshal(nil)
	// Rewrite the IP header to claim IHL=6 with a 4-byte option,
	// shifting the L4 header accordingly.
	ip := make([]byte, 24)
	copy(ip, wire[EthHeaderLen:EthHeaderLen+20])
	ip[0] = 0x46 // version 4, IHL 6
	// Recompute checksum over 24 bytes.
	ip[10], ip[11] = 0, 0
	cs := Checksum(ip)
	ip[10], ip[11] = byte(cs>>8), byte(cs)
	frame := append(append(append([]byte{}, wire[:EthHeaderLen]...), ip...), wire[EthHeaderLen+20:]...)
	q, err := Parse(frame)
	if err != nil {
		t.Fatal(err)
	}
	if !q.HasIPv4 || q.IPDst != 4 {
		t.Errorf("options header parsed wrong: %+v", q)
	}
	if !q.HasL4 || q.SrcPort != 5 {
		t.Errorf("L4 after options parsed wrong: %+v", q)
	}
}

// TestMarshalParseIdempotentOnReparse checks serialize∘parse∘serialize
// stability.
func TestMarshalParseIdempotentOnReparse(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 1000; i++ {
		p := TCP4(rng.Uint64(), rng.Uint64(), rng.Uint32(), rng.Uint32(),
			uint16(rng.Intn(1<<16)), uint16(rng.Intn(1<<16)))
		if rng.Intn(2) == 0 {
			p.HasVLAN = true
			p.VLANID = uint16(rng.Intn(1 << 12))
		}
		w1 := p.Marshal(nil)
		q, err := Parse(w1)
		if err != nil {
			t.Fatal(err)
		}
		w2 := q.Marshal(nil)
		if len(w1) != len(w2) {
			t.Fatalf("reserialization changed length: %d vs %d", len(w1), len(w2))
		}
		for j := range w1 {
			if w1[j] != w2[j] {
				t.Fatalf("reserialization changed byte %d", j)
			}
		}
	}
}
