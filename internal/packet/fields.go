package packet

import (
	"manorm/internal/mat"
)

// Canonical match-field names shared between the match-action model, the
// dataplane and the traffic generators.
const (
	FieldEthDst  = "eth_dst"
	FieldEthSrc  = "eth_src"
	FieldEthType = "eth_type"
	FieldVLAN    = "vlan"
	FieldIPSrc   = "ip_src"
	FieldIPDst   = "ip_dst"
	FieldIPProto = "ip_proto"
	FieldTTL     = "ip_ttl"
	FieldTCPSrc  = "tcp_src"
	FieldTCPDst  = "tcp_dst"
)

// FieldWidth returns the bit width of a canonical field name (0 for
// unknown names).
func FieldWidth(name string) uint8 {
	switch name {
	case FieldEthDst, FieldEthSrc:
		return 48
	case FieldEthType, FieldTCPSrc, FieldTCPDst:
		return 16
	case FieldVLAN:
		return 12
	case FieldIPSrc, FieldIPDst:
		return 32
	case FieldIPProto, FieldTTL:
		return 8
	default:
		return 0
	}
}

// Field reads a header field by canonical name. The second result is false
// when the packet does not carry the field's layer or the name is unknown.
func (p *Packet) Field(name string) (uint64, bool) {
	switch name {
	case FieldEthDst:
		return p.EthDst, true
	case FieldEthSrc:
		return p.EthSrc, true
	case FieldEthType:
		return uint64(p.EthType), true
	case FieldVLAN:
		return uint64(p.VLANID), p.HasVLAN
	case FieldIPSrc:
		return uint64(p.IPSrc), p.HasIPv4
	case FieldIPDst:
		return uint64(p.IPDst), p.HasIPv4
	case FieldIPProto:
		return uint64(p.Proto), p.HasIPv4
	case FieldTTL:
		return uint64(p.TTL), p.HasIPv4
	case FieldTCPSrc:
		return uint64(p.SrcPort), p.HasL4
	case FieldTCPDst:
		return uint64(p.DstPort), p.HasL4
	default:
		return 0, false
	}
}

// SetField writes a header field by canonical name, reporting whether the
// name was known and the layer present.
func (p *Packet) SetField(name string, v uint64) bool {
	switch name {
	case FieldEthDst:
		p.EthDst = v & (1<<48 - 1)
	case FieldEthSrc:
		p.EthSrc = v & (1<<48 - 1)
	case FieldEthType:
		p.EthType = uint16(v)
	case FieldVLAN:
		if !p.HasVLAN {
			p.HasVLAN = true
		}
		p.VLANID = uint16(v) & 0x0FFF
	case FieldIPSrc:
		if !p.HasIPv4 {
			return false
		}
		p.IPSrc = uint32(v)
	case FieldIPDst:
		if !p.HasIPv4 {
			return false
		}
		p.IPDst = uint32(v)
	case FieldIPProto:
		if !p.HasIPv4 {
			return false
		}
		p.Proto = uint8(v)
	case FieldTTL:
		if !p.HasIPv4 {
			return false
		}
		p.TTL = uint8(v)
	case FieldTCPSrc:
		if !p.HasL4 {
			return false
		}
		p.SrcPort = uint16(v)
	case FieldTCPDst:
		if !p.HasL4 {
			return false
		}
		p.DstPort = uint16(v)
	default:
		return false
	}
	return true
}

// Record converts the packet's parsed headers into the attribute-record
// view evaluated by the relational semantics (internal/mat). Only fields of
// present layers appear.
func (p *Packet) Record() mat.Record {
	r := mat.Record{
		FieldEthDst:  p.EthDst,
		FieldEthSrc:  p.EthSrc,
		FieldEthType: uint64(p.EthType),
	}
	if p.HasVLAN {
		r[FieldVLAN] = uint64(p.VLANID)
	}
	if p.HasIPv4 {
		r[FieldIPSrc] = uint64(p.IPSrc)
		r[FieldIPDst] = uint64(p.IPDst)
		r[FieldIPProto] = uint64(p.Proto)
		r[FieldTTL] = uint64(p.TTL)
	}
	if p.HasL4 {
		r[FieldTCPSrc] = uint64(p.SrcPort)
		r[FieldTCPDst] = uint64(p.DstPort)
	}
	return r
}

// TCP4 builds a minimal Ethernet/IPv4/TCP packet with the given addressing
// tuple — the 64-byte test traffic of the paper's evaluation.
func TCP4(ethSrc, ethDst uint64, ipSrc, ipDst uint32, srcPort, dstPort uint16) *Packet {
	return &Packet{
		EthDst:  ethDst & (1<<48 - 1),
		EthSrc:  ethSrc & (1<<48 - 1),
		EthType: EtherTypeIPv4,
		HasIPv4: true,
		TTL:     64,
		Proto:   ProtoTCP,
		IPSrc:   ipSrc,
		IPDst:   ipDst,
		HasL4:   true,
		SrcPort: srcPort,
		DstPort: dstPort,
	}
}
