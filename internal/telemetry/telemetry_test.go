package telemetry

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Load(); got != 42 {
		t.Errorf("counter = %d, want 42", got)
	}
	var g Gauge
	g.Set(3.5)
	if got := g.Load(); got != 3.5 {
		t.Errorf("gauge = %v, want 3.5", got)
	}
	g.Set(-1)
	if got := g.Load(); got != -1 {
		t.Errorf("gauge = %v, want -1", got)
	}
}

func TestDefaultLatencyBounds(t *testing.T) {
	b := DefaultLatencyBounds()
	if len(b) != 26 {
		t.Fatalf("len = %d, want 26", len(b))
	}
	if b[0] != 16 {
		t.Errorf("first bound = %v, want 16", b[0])
	}
	for i := 1; i < len(b); i++ {
		if b[i] != 2*b[i-1] {
			t.Errorf("bound %d = %v, want %v", i, b[i], 2*b[i-1])
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	tenBounds := make([]float64, 10)
	for i := range tenBounds {
		tenBounds[i] = float64(i + 1)
	}
	cases := []struct {
		name    string
		bounds  []float64
		obs     []float64
		q       float64
		want    float64
		wantMax float64
	}{
		// All observations in one bucket: linear interpolation inside it.
		{"single-bucket-median", []float64{100}, []float64{50, 50, 50, 50}, 0.5, 50, 50},
		// One observation per unit bucket: quantiles are exact.
		{"uniform-p50", tenBounds, seq(1, 10), 0.5, 5, 10},
		{"uniform-p90", tenBounds, seq(1, 10), 0.9, 9, 10},
		{"uniform-p99", tenBounds, seq(1, 10), 0.99, 9.9, 10},
		// Values above the last bound land in the overflow bucket, whose
		// quantile estimate is the observed max.
		{"overflow-max", []float64{10}, []float64{5, 100}, 0.99, 100, 100},
		// Skewed mass: 90 fast observations, 10 slow ones.
		{"skewed-p50", []float64{10, 1000}, append(rep(5, 90), rep(500, 10)...), 0.5, 5.555555555555555, 500},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := NewHistogram(tc.bounds)
			for _, v := range tc.obs {
				h.Observe(v)
			}
			s := h.Snapshot()
			if s.Count != uint64(len(tc.obs)) {
				t.Fatalf("count = %d, want %d", s.Count, len(tc.obs))
			}
			if got := s.Quantile(tc.q); math.Abs(got-tc.want) > 1e-9 {
				t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
			}
			if s.Max != tc.wantMax {
				t.Errorf("max = %v, want %v", s.Max, tc.wantMax)
			}
			var sum float64
			for _, v := range tc.obs {
				sum += v
			}
			if math.Abs(s.Sum-sum) > 1e-9 {
				t.Errorf("sum = %v, want %v", s.Sum, sum)
			}
			if wantMean := sum / float64(len(tc.obs)); math.Abs(s.Mean-wantMean) > 1e-9 {
				t.Errorf("mean = %v, want %v", s.Mean, wantMean)
			}
		})
	}
}

func seq(lo, hi int) []float64 {
	out := make([]float64, 0, hi-lo+1)
	for v := lo; v <= hi; v++ {
		out = append(out, float64(v))
	}
	return out
}

func rep(v float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func TestHistogramBucketCounts(t *testing.T) {
	h := NewHistogram([]float64{10, 20})
	for _, v := range []float64{1, 10, 11, 20, 21} {
		h.Observe(v)
	}
	s := h.Snapshot()
	want := []Bucket{
		{LE: 10, Count: 2},
		{LE: 20, Count: 2},
		{LE: math.Inf(1), Count: 1},
	}
	if len(s.Buckets) != len(want) {
		t.Fatalf("buckets = %+v, want %+v", s.Buckets, want)
	}
	for i, b := range s.Buckets {
		if b != want[i] {
			t.Errorf("bucket %d = %+v, want %+v", i, b, want[i])
		}
	}
}

func TestEmptyHistogram(t *testing.T) {
	h := NewHistogram(nil)
	s := h.Snapshot()
	if s.Count != 0 || s.P50 != 0 || s.P99 != 0 || len(s.Buckets) != 0 {
		t.Errorf("empty snapshot not zero: %+v", s)
	}
}

func TestRegistrySnapshotAndPaths(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("lookups").Add(7)
	reg.Gauge("depth").Set(4)
	reg.GaugeFunc("pulled", func() float64 { return 2.5 })
	reg.Histogram("lat_ns").Observe(100)

	sub := NewRegistry()
	sub.Counter("emc_hits").Add(3)
	reg.Register("ovs", sub)

	snap := reg.Snapshot()
	if v, ok := snap.Counter("lookups"); !ok || v != 7 {
		t.Errorf("Counter(lookups) = %d,%v", v, ok)
	}
	if v, ok := snap.Gauge("depth"); !ok || v != 4 {
		t.Errorf("Gauge(depth) = %v,%v", v, ok)
	}
	if v, ok := snap.Gauge("pulled"); !ok || v != 2.5 {
		t.Errorf("Gauge(pulled) = %v,%v", v, ok)
	}
	if h, ok := snap.Histogram("lat_ns"); !ok || h.Count != 1 {
		t.Errorf("Histogram(lat_ns) = %+v,%v", h, ok)
	}
	// "/"-paths descend into nested providers.
	if v, ok := snap.Counter("ovs/emc_hits"); !ok || v != 3 {
		t.Errorf("Counter(ovs/emc_hits) = %d,%v", v, ok)
	}
	if _, ok := snap.Counter("nosuch/leaf"); ok {
		t.Error("missing provider path resolved")
	}
	if _, ok := snap.Counter("absent"); ok {
		t.Error("missing counter resolved")
	}
}

func TestRegistryReturnsSameInstrument(t *testing.T) {
	reg := NewRegistry()
	if reg.Counter("x") != reg.Counter("x") {
		t.Error("counter identity not stable")
	}
	if reg.Histogram("h") != reg.HistogramWithBounds("h", []float64{1}) {
		t.Error("histogram identity not stable")
	}
}

func TestTraceSinkSampling(t *testing.T) {
	s := NewTraceSink(3, 2)
	var sampled int
	for i := 0; i < 9; i++ {
		if s.Tick() {
			sampled++
			s.Add(Trace{Pipeline: fmt.Sprintf("p%d", i)})
		}
	}
	if sampled != 3 {
		t.Errorf("sampled %d of 9 with every=3", sampled)
	}
	if s.Total() != 3 {
		t.Errorf("total = %d, want 3", s.Total())
	}
	// Ring keeps the last two, oldest first.
	traces := s.Snapshot()
	if len(traces) != 2 || traces[0].Pipeline != "p5" || traces[1].Pipeline != "p8" {
		t.Errorf("ring = %+v, want [p5 p8]", traces)
	}
}

func TestTraceSinkDisabledAndNil(t *testing.T) {
	if NewTraceSink(0, 4).Tick() {
		t.Error("every=0 sink sampled")
	}
	var s *TraceSink
	if s.Tick() {
		t.Error("nil sink sampled")
	}
	s.Add(Trace{})
	if s.Total() != 0 || s.Snapshot() != nil {
		t.Error("nil sink not inert")
	}
}

func TestTraceRendering(t *testing.T) {
	tr := Trace{
		Pipeline: "gwlb",
		Stages: []TraceStage{
			{Stage: 0, Table: "T0", Entry: 1, Actions: []string{"meta[0]=1"}, Join: "metadata"},
			{Stage: 1, Table: "T1", Entry: -1, Join: "drop"},
		},
		Drop:   true,
		Tables: 2,
	}
	if tr.Verdict() != "drop" {
		t.Errorf("verdict = %q", tr.Verdict())
	}
	out := tr.String()
	for _, want := range []string{"gwlb", "entry 1", "metadata", "miss -> drop"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q:\n%s", want, out)
		}
	}
	port := Trace{Port: 7}
	if port.Verdict() != "port=7" {
		t.Errorf("verdict = %q, want port=7", port.Verdict())
	}
}

// TestRegistryConcurrency hammers shared instruments from many goroutines
// with concurrent snapshots; run under -race (make check) it enforces the
// package's concurrency contract.
func TestRegistryConcurrency(t *testing.T) {
	reg := NewRegistry()
	sink := NewTraceSink(2, 8)
	reg.SetTraceSink(sink)
	const workers, iters = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := reg.Counter("shared")
			g := reg.Gauge("g")
			h := reg.Histogram("h")
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Set(float64(i))
				h.Observe(float64(i % 128))
				if sink.Tick() {
					sink.Add(Trace{Pipeline: "race", Port: uint16(w)})
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			snap := reg.Snapshot()
			if _, err := json.Marshal(snap); err != nil {
				t.Errorf("marshal: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	snap := reg.Snapshot()
	if v, _ := snap.Counter("shared"); v != workers*iters {
		t.Errorf("counter = %d, want %d", v, workers*iters)
	}
	if h, _ := snap.Histogram("h"); h.Count != workers*iters {
		t.Errorf("histogram count = %d, want %d", h.Count, workers*iters)
	}
	if sink.Total() != workers*iters/2 {
		t.Errorf("sink total = %d, want %d", sink.Total(), workers*iters/2)
	}
}

func TestHandlerServesJSON(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("hits").Add(9)
	rr := httptest.NewRecorder()
	reg.Handler().ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if ct := rr.Header().Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Errorf("content-type = %q", ct)
	}
	var snap Snapshot
	if err := json.Unmarshal(rr.Body.Bytes(), &snap); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rr.Body.String())
	}
	if v, ok := snap.Counter("hits"); !ok || v != 9 {
		t.Errorf("served counter = %d,%v", v, ok)
	}
}

func TestServeBindsAndExports(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("served").Inc()
	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if v, ok := snap.Counter("served"); !ok || v != 1 {
		t.Errorf("endpoint counter = %d,%v", v, ok)
	}
}
