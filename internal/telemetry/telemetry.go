// Package telemetry is the observability layer of the repository: a
// lightweight, allocation-conscious metrics registry (counters, gauges,
// fixed-bucket latency histograms with percentile snapshots), a unified
// Provider/Snapshot API implemented by every switch model and control
// endpoint, a per-packet pipeline trace facility (the runtime witness of
// the paper's Theorem 1 equivalences), and an expvar-style JSON/HTTP
// exporter with net/http/pprof wired in.
//
// Design rules:
//
//   - The uninstrumented fast path stays allocation-free: instrumented
//     code holds nil-checkable pointers to pre-resolved instruments, so
//     "telemetry off" costs one pointer compare per packet.
//   - The instrumented path is allocation-free too: Counter.Add,
//     Gauge.Set and Histogram.Observe are single atomic operations on
//     pre-allocated state; snapshotting is the only place that allocates.
//   - All instruments are safe for concurrent use from any number of
//     forwarding shards.
package telemetry

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing event count.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current count.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an instantaneous float64 value.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Load returns the current gauge value.
func (g *Gauge) Load() float64 { return math.Float64frombits(g.bits.Load()) }

// DefaultLatencyBounds returns the standard latency bucket upper bounds in
// nanoseconds: powers of two from 16 ns to ~536 ms (26 buckets), which
// covers everything from a cache-hit classification to a TCAM stall with
// ~2x relative quantile error.
func DefaultLatencyBounds() []float64 {
	bounds := make([]float64, 26)
	v := 16.0
	for i := range bounds {
		bounds[i] = v
		v *= 2
	}
	return bounds
}

// Histogram is a fixed-bucket histogram: observation i lands in the first
// bucket whose upper bound is >= i ("le" semantics); values above the last
// bound land in an overflow bucket. Observe is one atomic increment plus a
// binary search over the (immutable) bounds — allocation-free and safe for
// concurrent use.
type Histogram struct {
	bounds []float64 // ascending upper bounds; immutable after creation
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
	max    atomic.Uint64 // float64 bits
}

// NewHistogram creates a histogram over the given ascending upper bounds
// (DefaultLatencyBounds when nil).
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBounds()
	}
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			break
		}
	}
	for {
		old := h.max.Load()
		if v <= math.Float64frombits(old) && old != 0 {
			break
		}
		if h.max.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Snapshot captures the histogram state: bucket counts plus derived
// percentiles.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   math.Float64frombits(h.sum.Load()),
		Max:   math.Float64frombits(h.max.Load()),
	}
	s.Buckets = make([]Bucket, 0, len(h.counts))
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			continue
		}
		le := math.Inf(1)
		if i < len(h.bounds) {
			le = h.bounds[i]
		}
		s.Buckets = append(s.Buckets, Bucket{LE: le, Count: n})
	}
	if s.Count > 0 {
		s.Mean = s.Sum / float64(s.Count)
	}
	s.P50 = s.Quantile(0.50)
	s.P90 = s.Quantile(0.90)
	s.P99 = s.Quantile(0.99)
	return s
}

// Bucket is one non-empty histogram bucket: the count of observations at
// or below LE (and above the previous bucket's bound).
type Bucket struct {
	LE    float64 `json:"le"`
	Count uint64  `json:"count"`
}

// HistogramSnapshot is a point-in-time view of a histogram with derived
// percentile estimates (linear interpolation within the target bucket).
type HistogramSnapshot struct {
	Count   uint64   `json:"count"`
	Sum     float64  `json:"sum"`
	Mean    float64  `json:"mean"`
	Max     float64  `json:"max"`
	P50     float64  `json:"p50"`
	P90     float64  `json:"p90"`
	P99     float64  `json:"p99"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Quantile estimates the q-quantile (0 <= q <= 1) from the bucket counts:
// the target rank's bucket is located, and the value is interpolated
// linearly between the bucket's bounds. The overflow bucket reports the
// observed maximum. Returns 0 on an empty snapshot.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Buckets) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(s.Count)
	if target < 1 {
		target = 1
	}
	var cum float64
	lower := 0.0
	for _, b := range s.Buckets {
		next := cum + float64(b.Count)
		if target <= next {
			upper := b.LE
			if math.IsInf(upper, 1) {
				// Overflow bucket: the max is the best upper estimate.
				return s.Max
			}
			frac := (target - cum) / float64(b.Count)
			return lower + frac*(upper-lower)
		}
		cum = next
		lower = b.LE
	}
	return s.Max
}

// Registry is a named instrument store. Instruments are created on first
// use and live for the registry's lifetime; hot paths resolve them once
// and keep the pointer. Nested Providers (switch models, protocol
// endpoints) are snapshotted on demand.
type Registry struct {
	mu        sync.Mutex
	counters  map[string]*Counter
	gauges    map[string]*Gauge
	gaugeFns  map[string]func() float64
	hists     map[string]*Histogram
	providers map[string]Provider
	traces    *TraceSink
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:  make(map[string]*Counter),
		gauges:    make(map[string]*Gauge),
		gaugeFns:  make(map[string]func() float64),
		hists:     make(map[string]*Histogram),
		providers: make(map[string]Provider),
	}
}

// Counter returns the named counter, creating it if absent.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if absent.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc registers a pull-style gauge evaluated at snapshot time
// (cache sizes, queue depths). The function must be safe for concurrent
// use.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gaugeFns[name] = fn
}

// Histogram returns the named histogram with default latency bounds,
// creating it if absent.
func (r *Registry) Histogram(name string) *Histogram {
	return r.HistogramWithBounds(name, nil)
}

// HistogramWithBounds returns the named histogram, creating it with the
// given bounds if absent (existing histograms keep their original bounds).
func (r *Registry) HistogramWithBounds(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Register attaches a named sub-provider whose Stats() is embedded in this
// registry's snapshots. Re-registering a name replaces the provider.
func (r *Registry) Register(name string, p Provider) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.providers[name] = p
}

// SetTraceSink attaches a pipeline trace sink; its retained witnesses are
// embedded in snapshots. Pass nil to detach.
func (r *Registry) SetTraceSink(s *TraceSink) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.traces = s
}

// TraceSinkAttached returns the attached sink (nil when none).
func (r *Registry) TraceSinkAttached() *TraceSink {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.traces
}

// Snapshot captures every instrument, evaluated gauge function, retained
// trace and nested provider into one consistent-enough view (counters are
// read individually; cross-counter exactness is not guaranteed under
// concurrent writes, matching expvar semantics).
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	gaugeFns := make(map[string]func() float64, len(r.gaugeFns))
	for k, v := range r.gaugeFns {
		gaugeFns[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	providers := make(map[string]Provider, len(r.providers))
	for k, v := range r.providers {
		providers[k] = v
	}
	traces := r.traces
	r.mu.Unlock()

	snap := Snapshot{}
	if len(counters) > 0 {
		snap.Counters = make(map[string]uint64, len(counters))
		for k, c := range counters {
			snap.Counters[k] = c.Load()
		}
	}
	if len(gauges)+len(gaugeFns) > 0 {
		snap.Gauges = make(map[string]float64, len(gauges)+len(gaugeFns))
		for k, g := range gauges {
			snap.Gauges[k] = g.Load()
		}
		for k, fn := range gaugeFns {
			snap.Gauges[k] = fn()
		}
	}
	if len(hists) > 0 {
		snap.Histograms = make(map[string]HistogramSnapshot, len(hists))
		for k, h := range hists {
			snap.Histograms[k] = h.Snapshot()
		}
	}
	if len(providers) > 0 {
		snap.Providers = make(map[string]Snapshot, len(providers))
		for k, p := range providers {
			snap.Providers[k] = p.Stats()
		}
	}
	if traces != nil {
		snap.Traces = traces.Snapshot()
	}
	return snap
}

// Stats implements Provider, so registries nest inside other registries.
func (r *Registry) Stats() Snapshot { return r.Snapshot() }
