package telemetry

import (
	"encoding/json"
	"io"
)

// Provider is the unified stats surface: anything that can report a
// telemetry snapshot — switch models, protocol endpoints, controllers,
// registries. The repo-wide contract is that Stats is safe to call
// concurrently with the provider's hot paths.
type Provider interface {
	Stats() Snapshot
}

// Snapshot is a point-in-time telemetry view: flat counter/gauge maps,
// histogram snapshots with percentiles, retained pipeline traces, and
// nested sub-provider snapshots. It marshals to the expvar-style JSON the
// HTTP endpoint and the BENCH_*.json artifacts carry.
type Snapshot struct {
	// Name identifies the producing component ("ovs", "openflow_client").
	Name string `json:"name,omitempty"`
	// Counters are monotonic event counts (cache hits, lookups, mods).
	Counters map[string]uint64 `json:"counters,omitempty"`
	// Gauges are instantaneous values (cache sizes, ratios, depths).
	Gauges map[string]float64 `json:"gauges,omitempty"`
	// Histograms carry latency distributions with percentile estimates.
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	// Traces are retained per-packet pipeline witnesses.
	Traces []Trace `json:"traces,omitempty"`
	// Providers nest sub-component snapshots under their registered names.
	Providers map[string]Snapshot `json:"providers,omitempty"`
}

// Counter returns a counter by name, descending into nested providers via
// "/"-separated paths ("ovs/emc_hits"). The second result is false when
// absent.
func (s Snapshot) Counter(path string) (uint64, bool) {
	sub, name, ok := s.resolve(path)
	if !ok {
		return 0, false
	}
	v, ok := sub.Counters[name]
	return v, ok
}

// Gauge returns a gauge by name or nested "/" path.
func (s Snapshot) Gauge(path string) (float64, bool) {
	sub, name, ok := s.resolve(path)
	if !ok {
		return 0, false
	}
	v, ok := sub.Gauges[name]
	return v, ok
}

// Histogram returns a histogram snapshot by name or nested "/" path.
func (s Snapshot) Histogram(path string) (HistogramSnapshot, bool) {
	sub, name, ok := s.resolve(path)
	if !ok {
		return HistogramSnapshot{}, false
	}
	v, ok := sub.Histograms[name]
	return v, ok
}

// resolve walks "/"-separated provider prefixes, returning the final
// snapshot and leaf name.
func (s Snapshot) resolve(path string) (Snapshot, string, bool) {
	cur := s
	for {
		i := indexByte(path, '/')
		if i < 0 {
			return cur, path, true
		}
		sub, ok := cur.Providers[path[:i]]
		if !ok {
			return Snapshot{}, "", false
		}
		cur = sub
		path = path[i+1:]
	}
}

func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return -1
}

// WriteJSON writes the snapshot as indented JSON (the expvar-style export
// served by the HTTP endpoint and embedded in benchmark artifacts).
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
