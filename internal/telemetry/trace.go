package telemetry

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
)

// Trace is a per-packet pipeline witness: for one sampled packet, every
// table it hit, the matched rule, the actions applied and the join
// mechanism (goto / metadata / rematch fall-through) that carried it to
// the next stage. Comparing the witnesses of a universal table and its
// decomposed pipeline on the same packet is a runtime check of the
// paper's Theorem 1: the per-stage paths differ, the verdicts must not.
type Trace struct {
	// Pipeline names the traced program.
	Pipeline string `json:"pipeline"`
	// Stages records the traversal in execution order.
	Stages []TraceStage `json:"stages"`
	// Drop and Port mirror the final dataplane verdict.
	Drop bool   `json:"drop"`
	Port uint16 `json:"port"`
	// Tables is the number of tables traversed (pipeline depth cost).
	Tables int `json:"tables"`
}

// TraceStage is one table visit of a witness.
type TraceStage struct {
	// Stage is the table's pipeline index, Table its name.
	Stage int    `json:"stage"`
	Table string `json:"table"`
	// Entry is the matched rule index (-1 on a table miss).
	Entry int `json:"entry"`
	// Actions renders the applied action list ("out=3", "meta[0]=5",
	// "set eth_dst=0x1", "dec_ttl").
	Actions []string `json:"actions,omitempty"`
	// Join is the mechanism that carried execution onward: "goto"
	// (explicit goto_table), "metadata" (register write consumed
	// downstream), "rematch" (plain fall-through, the next stage re-matches
	// packet headers), "terminal" (pipeline end) or "drop" (miss on a
	// drop-on-miss stage).
	Join string `json:"join"`
}

// Verdict summarizes the witness outcome as a comparable string
// ("port=7" or "drop") — the equality tests' unit of comparison.
func (t Trace) Verdict() string {
	if t.Drop {
		return "drop"
	}
	return fmt.Sprintf("port=%d", t.Port)
}

// String renders the witness as a one-line-per-stage explanation.
func (t Trace) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace %s -> %s (%d tables)\n", t.Pipeline, t.Verdict(), t.Tables)
	for _, st := range t.Stages {
		if st.Entry < 0 {
			fmt.Fprintf(&b, "  [%d] %s: miss -> %s\n", st.Stage, st.Table, st.Join)
			continue
		}
		fmt.Fprintf(&b, "  [%d] %s: entry %d {%s} -> %s\n",
			st.Stage, st.Table, st.Entry, strings.Join(st.Actions, ", "), st.Join)
	}
	return b.String()
}

// TraceSink decides which packets to witness (1-in-N sampling) and
// retains the most recent witnesses in a fixed ring for snapshot export.
// Tick is a single atomic increment, so probing it on a forwarding path
// is cheap; only sampled packets pay for witness construction.
type TraceSink struct {
	every uint64
	n     atomic.Uint64

	mu    sync.Mutex
	ring  []Trace
	next  int
	total uint64
}

// NewTraceSink creates a sink sampling every Nth Tick and retaining the
// last keep witnesses (16 when keep <= 0). every <= 0 disables sampling.
func NewTraceSink(every, keep int) *TraceSink {
	if keep <= 0 {
		keep = 16
	}
	e := uint64(0)
	if every > 0 {
		e = uint64(every)
	}
	return &TraceSink{every: e, ring: make([]Trace, 0, keep)}
}

// Tick reports whether the current packet should be witnessed.
func (s *TraceSink) Tick() bool {
	if s == nil || s.every == 0 {
		return false
	}
	return s.n.Add(1)%s.every == 0
}

// Add retains one witness, evicting the oldest beyond the ring capacity.
func (s *TraceSink) Add(t Trace) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.total++
	if len(s.ring) < cap(s.ring) {
		s.ring = append(s.ring, t)
		return
	}
	s.ring[s.next] = t
	s.next = (s.next + 1) % len(s.ring)
}

// Total returns the number of witnesses recorded (not retained).
func (s *TraceSink) Total() uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// Snapshot returns the retained witnesses, oldest first.
func (s *TraceSink) Snapshot() []Trace {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Trace, 0, len(s.ring))
	out = append(out, s.ring[s.next:]...)
	out = append(out, s.ring[:s.next]...)
	return out
}
