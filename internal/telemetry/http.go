package telemetry

import (
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler serves the registry's snapshot as expvar-style JSON.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = r.Snapshot().WriteJSON(w)
	})
}

// Server is a running metrics endpoint.
type Server struct {
	// Addr is the bound address (useful when the requested port was 0).
	Addr string
	srv  *http.Server
	ln   net.Listener
}

// Close shuts the endpoint down.
func (s *Server) Close() error { return s.srv.Close() }

// Serve starts an HTTP endpoint on addr exporting the registry:
//
//	/metrics        registry snapshot as JSON (also served at /)
//	/debug/pprof/*  net/http/pprof profiles (CPU, heap, goroutines, ...)
//
// The listener is bound synchronously (so the caller learns about a taken
// port immediately); request serving runs in a background goroutine.
func Serve(addr string, reg *Registry) (*Server, error) {
	mux := http.NewServeMux()
	mux.Handle("/", reg.Handler())
	mux.Handle("/metrics", reg.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{Addr: ln.Addr().String(), srv: &http.Server{Handler: mux}, ln: ln}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}
