// Package trafficgen generates the synthetic workloads driving the
// evaluation: streams of 64-byte TCP packets aimed at a gateway &
// load-balancer configuration (the paper's measurement traffic: 20 random
// services, 8 backends each) and L3 routing traffic.
package trafficgen

import (
	"math/rand"

	"manorm/internal/packet"
	"manorm/internal/usecases"
)

// Stream is a pre-generated cyclic packet trace. Pre-generation keeps the
// measured hot loop free of generator cost; cycling approximates an
// endless trace.
type Stream struct {
	pkts []*packet.Packet
	pos  int
}

// Next returns the next packet of the trace (cycling). The caller may
// mutate the packet (the dataplane rewrites headers); field values the
// classifiers inspect are restored on the next cycle by regenerating from
// the template copy.
func (s *Stream) Next() *packet.Packet {
	p := s.pkts[s.pos]
	s.pos++
	if s.pos == len(s.pkts) {
		s.pos = 0
	}
	return p
}

// Len returns the trace length.
func (s *Stream) Len() int { return len(s.pkts) }

// Packets exposes the underlying trace (read-only use).
func (s *Stream) Packets() []*packet.Packet { return s.pkts }

// GwLB generates traffic for a gateway & load-balancer configuration:
// packets to random services with uniformly random client addresses, so
// every backend prefix of every service is exercised. hitRatio (0..1]
// controls the fraction of packets addressed to installed services; the
// rest miss (unknown VIP) and exercise the drop path.
func GwLB(g *usecases.GwLB, n int, hitRatio float64, seed int64) *Stream {
	rng := rand.New(rand.NewSource(seed))
	s := &Stream{pkts: make([]*packet.Packet, n)}
	for i := range s.pkts {
		src := rng.Uint32()
		var dst uint32
		var port uint16
		if rng.Float64() < hitRatio {
			svc := g.Services[rng.Intn(len(g.Services))]
			dst = svc.VIP
			port = svc.Port
		} else {
			dst = 0xDEAD0000 | uint32(rng.Intn(1<<16))
			port = uint16(1024 + rng.Intn(1<<14))
		}
		s.pkts[i] = packet.TCP4(
			0x020000000000|uint64(rng.Intn(1<<24)),
			0x02FFFFFF0000|uint64(i&0xFFFF),
			src, dst, uint16(1024+rng.Intn(1<<14)), port)
	}
	return s
}

// L3 generates routed traffic for an L3 table built by
// usecases.GenerateL3: destinations uniform over the installed /16 routes.
func L3(nPrefixes, n int, seed int64) *Stream {
	rng := rand.New(rand.NewSource(seed))
	s := &Stream{pkts: make([]*packet.Packet, n)}
	for i := range s.pkts {
		route := uint32(rng.Intn(nPrefixes))
		dst := route<<16 | uint32(rng.Intn(1<<16))
		s.pkts[i] = packet.TCP4(2, 3, rng.Uint32(), dst, 1024, 80)
	}
	return s
}

// Wire serializes the stream to frames, reporting the average frame size —
// used to sanity-check the 64-byte-packet claim of the measurement setup.
func Wire(s *Stream) ([][]byte, float64) {
	frames := make([][]byte, s.Len())
	total := 0
	for i, p := range s.Packets() {
		frames[i] = p.Marshal(nil)
		total += len(frames[i])
	}
	return frames, float64(total) / float64(len(frames))
}

// Shards splits a frame trace into n disjoint round-robin shards, one per
// forwarding worker. Round-robin (rather than contiguous chunks) keeps
// every shard statistically identical to the full trace, so per-worker
// cache behavior matches the single-core measurement. Shards only
// reslice — frames are shared, not copied. n is clamped to [1, len(frames)].
func Shards(frames [][]byte, n int) [][][]byte {
	if n < 1 {
		n = 1
	}
	if n > len(frames) {
		n = len(frames)
	}
	out := make([][][]byte, n)
	per := (len(frames) + n - 1) / n
	for i := range out {
		out[i] = make([][]byte, 0, per)
	}
	for i, f := range frames {
		out[i%n] = append(out[i%n], f)
	}
	return out
}

// GwLBZipf generates gateway traffic from a finite population of flows
// with Zipf-distributed popularity (skew s > 1): a small number of
// elephant flows dominate, as in real traces. This is the workload that
// exercises cache hierarchies (the OVS model's EMC vs megaflow layers).
func GwLBZipf(g *usecases.GwLB, n, population int, skew float64, seed int64) *Stream {
	rng := rand.New(rand.NewSource(seed))
	if skew <= 1 {
		skew = 1.1
	}
	if population < 1 {
		population = 1
	}
	zipf := rand.NewZipf(rng, skew, 1, uint64(population-1))

	// Fixed flow population: (client, service, sport) tuples.
	type flow struct {
		src   uint32
		dst   uint32
		sport uint16
		dport uint16
	}
	flows := make([]flow, population)
	for i := range flows {
		svc := g.Services[rng.Intn(len(g.Services))]
		flows[i] = flow{
			src:   rng.Uint32(),
			dst:   svc.VIP,
			sport: uint16(1024 + rng.Intn(1<<14)),
			dport: svc.Port,
		}
	}
	s := &Stream{pkts: make([]*packet.Packet, n)}
	for i := range s.pkts {
		f := flows[zipf.Uint64()]
		s.pkts[i] = packet.TCP4(0x020000000001, 0x02FFFFFF0001, f.src, f.dst, f.sport, f.dport)
	}
	return s
}

// FrameStream is a pre-generated cyclic trace of wire frames for
// schema-mode workloads: the programs match fields the fixed Packet
// cannot carry, so the trace is frames, produced by marshalling
// FieldViews through the schema's parse-graph decoder.
type FrameStream struct {
	frames [][]byte
	pos    int
}

// Next returns the next frame (cycling).
func (s *FrameStream) Next() []byte {
	f := s.frames[s.pos]
	s.pos++
	if s.pos == len(s.frames) {
		s.pos = 0
	}
	return f
}

// Len returns the trace length.
func (s *FrameStream) Len() int { return len(s.frames) }

// Frames exposes the underlying trace (read-only use).
func (s *FrameStream) Frames() [][]byte { return s.frames }

// marshalViews renders a batch of prepared views to frames.
func marshalViews(views []*packet.FieldView) *FrameStream {
	s := &FrameStream{frames: make([][]byte, len(views))}
	for i, v := range views {
		s.frames[i] = v.Marshal(nil)
	}
	return s
}

// vxlanView prepares a full eth/ipv4/udp/vxlan/inner_eth view.
func vxlanView(dec *packet.Decoder, vni uint64, innerDst uint64, rng *rand.Rand) *packet.FieldView {
	v := dec.NewView()
	for _, h := range []string{"eth", "ipv4", "udp", "vxlan", "inner_eth"} {
		v.MarkPresentName(h)
	}
	v.SetName(packet.FieldEthDst, 0x020000000001)
	v.SetName(packet.FieldEthSrc, uint64(rng.Intn(1<<24))|0x020000000000)
	v.SetName(packet.FieldEthType, packet.EtherTypeIPv4)
	v.SetName("ip_verihl", 0x45)
	v.SetName("ip_ttl", 64)
	v.SetName("ip_proto", packet.ProtoUDP)
	v.SetName("ip_src", uint64(rng.Uint32()))
	v.SetName("ip_dst", uint64(rng.Uint32()))
	v.SetName("udp_src", uint64(1024+rng.Intn(1<<14)))
	v.SetName("udp_dst", packet.UDPPortVXLAN)
	v.SetName("vxlan_flags", 0x08)
	v.SetName(packet.FieldVXLANVNI, vni)
	v.SetName(packet.FieldInnerEthDst, innerDst)
	v.SetName(packet.FieldInnerEthSrc, 0x020000000000|uint64(rng.Intn(1<<24)))
	v.SetName("inner_eth_type", packet.EtherTypeIPv4)
	return v
}

// VXLANFrames generates overlay traffic for a VXLAN gateway: frames to
// random (tenant, host) pairs; 1-hitRatio of the frames carry an unknown
// VNI or MAC and exercise the drop path.
func VXLANFrames(g *usecases.VXLANGW, n int, hitRatio float64, seed int64) (*FrameStream, error) {
	dec, err := packet.BuiltinDecoder(packet.SchemaVXLAN)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	views := make([]*packet.FieldView, n)
	for i := range views {
		var vni, mac uint64
		if rng.Float64() < hitRatio {
			ten := g.Tenants[rng.Intn(len(g.Tenants))]
			h := ten.Hosts[rng.Intn(len(ten.Hosts))]
			vni, mac = uint64(ten.VNI), h.MAC
		} else {
			vni = uint64(0xF00000 | rng.Intn(1<<20))
			mac = 0x0E0000000000 | uint64(rng.Intn(1<<24))
		}
		views[i] = vxlanView(dec, vni, mac, rng)
	}
	return marshalViews(views), nil
}

// MPLSFrames generates labeled traffic for an LSR: frames carrying random
// installed (label, tc) pairs, the rest unknown labels.
func MPLSFrames(g *usecases.MPLSLSR, n int, hitRatio float64, seed int64) (*FrameStream, error) {
	dec, err := packet.BuiltinDecoder(packet.SchemaMPLS)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	views := make([]*packet.FieldView, n)
	for i := range views {
		var label, tc uint64
		if rng.Float64() < hitRatio {
			f := g.Fecs[rng.Intn(len(g.Fecs))]
			label = uint64(f.Label)
			tc = uint64(rng.Intn(len(f.Outs)))
		} else {
			label = uint64(0x80000 | rng.Intn(1<<19))
			tc = uint64(rng.Intn(8))
		}
		v := dec.NewView()
		for _, h := range []string{"eth", "mpls", "ipv4"} {
			v.MarkPresentName(h)
		}
		v.SetName(packet.FieldEthDst, 0x020000000001)
		v.SetName(packet.FieldEthSrc, 0x020000000000|uint64(rng.Intn(1<<24)))
		v.SetName(packet.FieldEthType, packet.EtherTypeMPLS)
		v.SetName(packet.FieldMPLSLabel, label)
		v.SetName(packet.FieldMPLSTC, tc)
		v.SetName(packet.FieldMPLSBoS, 1)
		v.SetName(packet.FieldMPLSTTL, 64)
		v.SetName("ip_verihl", 0x45)
		v.SetName("ip_ttl", 64)
		v.SetName("ip_proto", packet.ProtoTCP)
		v.SetName("ip_src", uint64(rng.Uint32()))
		v.SetName("ip_dst", uint64(rng.Uint32()))
		views[i] = v
	}
	return marshalViews(views), nil
}

// GTPUFrames generates tunneled traffic for a GTP-U gateway: frames to
// random installed (bearer, inner destination) pairs, the rest unknown
// TEIDs.
func GTPUFrames(g *usecases.GTPUGW, n int, hitRatio float64, seed int64) (*FrameStream, error) {
	dec, err := packet.BuiltinDecoder(packet.SchemaGTPU)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	views := make([]*packet.FieldView, n)
	for i := range views {
		var teid, innerDst uint64
		if rng.Float64() < hitRatio {
			br := g.Bearers[rng.Intn(len(g.Bearers))]
			d := br.Dests[rng.Intn(len(br.Dests))]
			teid, innerDst = uint64(br.TEID), uint64(d.InnerDst)
		} else {
			teid = uint64(0xDEAD0000 | rng.Intn(1<<16))
			innerDst = uint64(0x0B000000 | rng.Intn(1<<24))
		}
		v := dec.NewView()
		for _, h := range []string{"eth", "ipv4", "udp", "gtpu", "inner_ipv4"} {
			v.MarkPresentName(h)
		}
		v.SetName(packet.FieldEthDst, 0x020000000001)
		v.SetName(packet.FieldEthSrc, 0x020000000000|uint64(rng.Intn(1<<24)))
		v.SetName(packet.FieldEthType, packet.EtherTypeIPv4)
		v.SetName("ip_verihl", 0x45)
		v.SetName("ip_ttl", 64)
		v.SetName("ip_proto", packet.ProtoUDP)
		v.SetName("ip_src", uint64(rng.Uint32()))
		v.SetName("ip_dst", uint64(rng.Uint32()))
		v.SetName("udp_src", uint64(1024+rng.Intn(1<<14)))
		v.SetName("udp_dst", packet.UDPPortGTPU)
		v.SetName("gtpu_flags", 0x30)
		v.SetName("gtpu_type", packet.GTPMsgGPDU)
		v.SetName(packet.FieldGTPUTEID, teid)
		v.SetName("inner_ip_verihl", 0x45)
		v.SetName("inner_ip_ttl", 64)
		v.SetName("inner_ip_proto", packet.ProtoTCP)
		v.SetName("inner_ip_src", uint64(rng.Uint32()))
		v.SetName(packet.FieldInnerIPDst, innerDst)
		views[i] = v
	}
	return marshalViews(views), nil
}
