// Package trafficgen generates the synthetic workloads driving the
// evaluation: streams of 64-byte TCP packets aimed at a gateway &
// load-balancer configuration (the paper's measurement traffic: 20 random
// services, 8 backends each) and L3 routing traffic.
package trafficgen

import (
	"math/rand"

	"manorm/internal/packet"
	"manorm/internal/usecases"
)

// Stream is a pre-generated cyclic packet trace. Pre-generation keeps the
// measured hot loop free of generator cost; cycling approximates an
// endless trace.
type Stream struct {
	pkts []*packet.Packet
	pos  int
}

// Next returns the next packet of the trace (cycling). The caller may
// mutate the packet (the dataplane rewrites headers); field values the
// classifiers inspect are restored on the next cycle by regenerating from
// the template copy.
func (s *Stream) Next() *packet.Packet {
	p := s.pkts[s.pos]
	s.pos++
	if s.pos == len(s.pkts) {
		s.pos = 0
	}
	return p
}

// Len returns the trace length.
func (s *Stream) Len() int { return len(s.pkts) }

// Packets exposes the underlying trace (read-only use).
func (s *Stream) Packets() []*packet.Packet { return s.pkts }

// GwLB generates traffic for a gateway & load-balancer configuration:
// packets to random services with uniformly random client addresses, so
// every backend prefix of every service is exercised. hitRatio (0..1]
// controls the fraction of packets addressed to installed services; the
// rest miss (unknown VIP) and exercise the drop path.
func GwLB(g *usecases.GwLB, n int, hitRatio float64, seed int64) *Stream {
	rng := rand.New(rand.NewSource(seed))
	s := &Stream{pkts: make([]*packet.Packet, n)}
	for i := range s.pkts {
		src := rng.Uint32()
		var dst uint32
		var port uint16
		if rng.Float64() < hitRatio {
			svc := g.Services[rng.Intn(len(g.Services))]
			dst = svc.VIP
			port = svc.Port
		} else {
			dst = 0xDEAD0000 | uint32(rng.Intn(1<<16))
			port = uint16(1024 + rng.Intn(1<<14))
		}
		s.pkts[i] = packet.TCP4(
			0x020000000000|uint64(rng.Intn(1<<24)),
			0x02FFFFFF0000|uint64(i&0xFFFF),
			src, dst, uint16(1024+rng.Intn(1<<14)), port)
	}
	return s
}

// L3 generates routed traffic for an L3 table built by
// usecases.GenerateL3: destinations uniform over the installed /16 routes.
func L3(nPrefixes, n int, seed int64) *Stream {
	rng := rand.New(rand.NewSource(seed))
	s := &Stream{pkts: make([]*packet.Packet, n)}
	for i := range s.pkts {
		route := uint32(rng.Intn(nPrefixes))
		dst := route<<16 | uint32(rng.Intn(1<<16))
		s.pkts[i] = packet.TCP4(2, 3, rng.Uint32(), dst, 1024, 80)
	}
	return s
}

// Wire serializes the stream to frames, reporting the average frame size —
// used to sanity-check the 64-byte-packet claim of the measurement setup.
func Wire(s *Stream) ([][]byte, float64) {
	frames := make([][]byte, s.Len())
	total := 0
	for i, p := range s.Packets() {
		frames[i] = p.Marshal(nil)
		total += len(frames[i])
	}
	return frames, float64(total) / float64(len(frames))
}

// Shards splits a frame trace into n disjoint round-robin shards, one per
// forwarding worker. Round-robin (rather than contiguous chunks) keeps
// every shard statistically identical to the full trace, so per-worker
// cache behavior matches the single-core measurement. Shards only
// reslice — frames are shared, not copied. n is clamped to [1, len(frames)].
func Shards(frames [][]byte, n int) [][][]byte {
	if n < 1 {
		n = 1
	}
	if n > len(frames) {
		n = len(frames)
	}
	out := make([][][]byte, n)
	per := (len(frames) + n - 1) / n
	for i := range out {
		out[i] = make([][]byte, 0, per)
	}
	for i, f := range frames {
		out[i%n] = append(out[i%n], f)
	}
	return out
}

// GwLBZipf generates gateway traffic from a finite population of flows
// with Zipf-distributed popularity (skew s > 1): a small number of
// elephant flows dominate, as in real traces. This is the workload that
// exercises cache hierarchies (the OVS model's EMC vs megaflow layers).
func GwLBZipf(g *usecases.GwLB, n, population int, skew float64, seed int64) *Stream {
	rng := rand.New(rand.NewSource(seed))
	if skew <= 1 {
		skew = 1.1
	}
	if population < 1 {
		population = 1
	}
	zipf := rand.NewZipf(rng, skew, 1, uint64(population-1))

	// Fixed flow population: (client, service, sport) tuples.
	type flow struct {
		src   uint32
		dst   uint32
		sport uint16
		dport uint16
	}
	flows := make([]flow, population)
	for i := range flows {
		svc := g.Services[rng.Intn(len(g.Services))]
		flows[i] = flow{
			src:   rng.Uint32(),
			dst:   svc.VIP,
			sport: uint16(1024 + rng.Intn(1<<14)),
			dport: svc.Port,
		}
	}
	s := &Stream{pkts: make([]*packet.Packet, n)}
	for i := range s.pkts {
		f := flows[zipf.Uint64()]
		s.pkts[i] = packet.TCP4(0x020000000001, 0x02FFFFFF0001, f.src, f.dst, f.sport, f.dport)
	}
	return s
}
