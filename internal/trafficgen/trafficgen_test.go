package trafficgen

import (
	"testing"

	"manorm/internal/dataplane"
	"manorm/internal/mat"
	"manorm/internal/usecases"
)

func TestGwLBTrafficHitsServices(t *testing.T) {
	g := usecases.Generate(20, 8, 7)
	s := GwLB(g, 4096, 1.0, 1)
	if s.Len() != 4096 {
		t.Fatalf("Len = %d", s.Len())
	}
	uni, err := g.Universal()
	if err != nil {
		t.Fatal(err)
	}
	dp, err := dataplane.Compile(mat.SingleTable(uni), dataplane.AutoTemplates)
	if err != nil {
		t.Fatal(err)
	}
	ctx := dp.NewCtx()
	for i := 0; i < s.Len(); i++ {
		v, err := dp.Process(s.Next(), ctx)
		if err != nil {
			t.Fatal(err)
		}
		if v.Drop {
			t.Fatalf("hitRatio=1 packet dropped")
		}
	}
}

func TestGwLBTrafficMissRatio(t *testing.T) {
	g := usecases.Generate(10, 4, 7)
	s := GwLB(g, 8192, 0.5, 2)
	uni, _ := g.Universal()
	dp, err := dataplane.Compile(mat.SingleTable(uni), dataplane.AutoTemplates)
	if err != nil {
		t.Fatal(err)
	}
	ctx := dp.NewCtx()
	drops := 0
	for i := 0; i < s.Len(); i++ {
		v, err := dp.Process(s.Next(), ctx)
		if err != nil {
			t.Fatal(err)
		}
		if v.Drop {
			drops++
		}
	}
	frac := float64(drops) / float64(s.Len())
	if frac < 0.4 || frac > 0.6 {
		t.Errorf("drop fraction = %.2f, want ~0.5", frac)
	}
}

func TestStreamCycles(t *testing.T) {
	g := usecases.Fig1()
	s := GwLB(g, 8, 1.0, 3)
	first := s.Next()
	for i := 0; i < 7; i++ {
		s.Next()
	}
	if s.Next() != first {
		t.Errorf("stream did not cycle")
	}
}

func TestTrafficBackendsAllExercised(t *testing.T) {
	// Uniform client addresses must spread a service's traffic across
	// all of its equally weighted backends.
	g := usecases.Generate(1, 8, 5)
	s := GwLB(g, 8000, 1.0, 4)
	gp, err := g.Goto()
	if err != nil {
		t.Fatal(err)
	}
	dp, err := dataplane.Compile(gp, dataplane.AutoTemplates)
	if err != nil {
		t.Fatal(err)
	}
	ctx := dp.NewCtx()
	seen := map[uint16]int{}
	for i := 0; i < s.Len(); i++ {
		v, err := dp.Process(s.Next(), ctx)
		if err != nil {
			t.Fatal(err)
		}
		if !v.Drop {
			seen[v.Port]++
		}
	}
	if len(seen) != 8 {
		t.Fatalf("backends hit = %d, want 8: %v", len(seen), seen)
	}
	for port, n := range seen {
		if n < 500 {
			t.Errorf("backend %d unbalanced: %d/8000", port, n)
		}
	}
}

func TestL3Traffic(t *testing.T) {
	l3 := usecases.GenerateL3(32, 4, 2, 9)
	s := L3(32, 2048, 10)
	dp, err := dataplane.Compile(mat.SingleTable(l3.Table), dataplane.AutoTemplates)
	if err != nil {
		t.Fatal(err)
	}
	ctx := dp.NewCtx()
	for i := 0; i < s.Len(); i++ {
		v, err := dp.Process(s.Next(), ctx)
		if err != nil {
			t.Fatal(err)
		}
		if v.Drop {
			t.Fatalf("L3 packet missed the routing table")
		}
	}
}

func TestWire64Bytes(t *testing.T) {
	// The measurement traffic is minimum-size frames (the paper's
	// "64 byte-long packets": 60 bytes without the 4-byte FCS).
	g := usecases.Fig1()
	s := GwLB(g, 64, 1.0, 11)
	frames, avg := Wire(s)
	if len(frames) != 64 {
		t.Fatalf("frames = %d", len(frames))
	}
	if avg != 60 {
		t.Errorf("avg frame = %.1f bytes, want 60 (64 with FCS)", avg)
	}
}

func TestDeterminism(t *testing.T) {
	g := usecases.Generate(5, 4, 1)
	a := GwLB(g, 100, 0.9, 42)
	b := GwLB(g, 100, 0.9, 42)
	for i := 0; i < 100; i++ {
		pa, pb := a.Next(), b.Next()
		if pa.IPSrc != pb.IPSrc || pa.IPDst != pb.IPDst || pa.DstPort != pb.DstPort {
			t.Fatalf("streams diverge at %d", i)
		}
	}
}

func TestGwLBZipfSkew(t *testing.T) {
	g := usecases.Generate(10, 4, 7)
	s := GwLBZipf(g, 20000, 1000, 1.3, 5)
	// Count per-flow frequency: the head must dominate.
	counts := map[[2]uint64]int{}
	for i := 0; i < s.Len(); i++ {
		p := s.Next()
		counts[[2]uint64{uint64(p.IPSrc), uint64(p.SrcPort)}]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < s.Len()/20 {
		t.Errorf("zipf head flow carries %d/%d packets; expected heavy skew", max, s.Len())
	}
	if len(counts) < 50 {
		t.Errorf("only %d distinct flows; tail missing", len(counts))
	}
	// All packets must target installed services.
	uni, _ := g.Universal()
	dp, err := dataplane.Compile(mat.SingleTable(uni), dataplane.AutoTemplates)
	if err != nil {
		t.Fatal(err)
	}
	ctx := dp.NewCtx()
	for i := 0; i < 1000; i++ {
		v, err := dp.Process(s.Next(), ctx)
		if err != nil || v.Drop {
			t.Fatalf("zipf packet dropped: %v %v", v, err)
		}
	}
}

func TestShardsDisjointAndComplete(t *testing.T) {
	g := usecases.Generate(5, 4, 3)
	frames, _ := Wire(GwLB(g, 1000, 1.0, 2))
	for _, n := range []int{1, 2, 3, 8, 1000, 5000} {
		shards := Shards(frames, n)
		wantShards := n
		if wantShards > len(frames) {
			wantShards = len(frames)
		}
		if len(shards) != wantShards {
			t.Fatalf("Shards(%d) returned %d shards", n, len(shards))
		}
		total := 0
		seen := map[int]bool{}
		for _, sh := range shards {
			total += len(sh)
			for _, f := range sh {
				// Frames are shared slices: identity check by the backing
				// array's first byte address via index lookup.
				for i := range frames {
					if &frames[i][0] == &f[0] {
						if seen[i] {
							t.Fatalf("frame %d appears in two shards", i)
						}
						seen[i] = true
						break
					}
				}
			}
		}
		if total != len(frames) || len(seen) != len(frames) {
			t.Fatalf("Shards(%d): %d frames in shards, %d distinct, want %d",
				n, total, len(seen), len(frames))
		}
		// Balanced: shard sizes differ by at most one.
		min, max := len(shards[0]), len(shards[0])
		for _, sh := range shards {
			if len(sh) < min {
				min = len(sh)
			}
			if len(sh) > max {
				max = len(sh)
			}
		}
		if max-min > 1 {
			t.Errorf("Shards(%d) unbalanced: min %d max %d", n, min, max)
		}
	}
}
