package trafficgen

import (
	"bytes"
	"testing"

	"manorm/internal/packet"
)

var wireSchemas = []string{packet.SchemaDefault, packet.SchemaVXLAN, packet.SchemaMPLS, packet.SchemaGTPU}

// TestWireStreamReplayable pins the replay contract: the same WireSpec
// must reproduce the exact byte trace, and changing the seed must not.
func TestWireStreamReplayable(t *testing.T) {
	for _, schema := range wireSchemas {
		spec := WireSpec{Schema: schema, N: 256, HitRatio: 0.8, Malformed: 0.1, Seed: 42}
		a, err := WireStream(spec)
		if err != nil {
			t.Fatalf("%s: %v", schema, err)
		}
		b, err := WireStream(spec)
		if err != nil {
			t.Fatal(err)
		}
		if a.Len() != spec.N || b.Len() != spec.N {
			t.Fatalf("%s: lengths %d/%d, want %d", schema, a.Len(), b.Len(), spec.N)
		}
		for i := range a.Frames() {
			if !bytes.Equal(a.Frames()[i], b.Frames()[i]) {
				t.Fatalf("%s: frame %d differs between identical specs", schema, i)
			}
		}
		spec.Seed++
		c, err := WireStream(spec)
		if err != nil {
			t.Fatal(err)
		}
		same := true
		for i := range a.Frames() {
			if !bytes.Equal(a.Frames()[i], c.Frames()[i]) {
				same = false
				break
			}
		}
		if same {
			t.Fatalf("%s: different seeds produced an identical trace", schema)
		}
	}
}

// TestWireStreamMalformed checks the malformed-injection knob actually
// exercises the decoder's typed error paths: with a nonzero fraction some
// frames must fail to decode, with reason breakdown matching the schema
// (the default schema corrupts checksums too; generic schemas only
// truncate).
func TestWireStreamMalformed(t *testing.T) {
	for _, schema := range wireSchemas {
		spec := WireSpec{Schema: schema, N: 512, Malformed: 0.25, Seed: 7}
		fs, err := WireStream(spec)
		if err != nil {
			t.Fatalf("%s: %v", schema, err)
		}
		var dec *packet.Decoder
		if schema != packet.SchemaDefault {
			if dec, err = packet.BuiltinDecoder(schema); err != nil {
				t.Fatal(err)
			}
		}
		var truncated, badHeader int
		view := (*packet.FieldView)(nil)
		if dec != nil {
			view = dec.NewView()
		}
		for _, f := range fs.Frames() {
			var perr error
			if dec != nil {
				perr = dec.ParseInto(view, f)
			} else {
				var p packet.Packet
				perr = p.ParseInto(f)
			}
			switch packet.DecodeReasonOf(perr) {
			case packet.ReasonTruncated:
				truncated++
			case packet.ReasonBadHeader:
				badHeader++
			}
		}
		if truncated == 0 {
			t.Fatalf("%s: no truncated frames out of %d at fraction %.2f", schema, spec.N, spec.Malformed)
		}
		if schema == packet.SchemaDefault && badHeader == 0 {
			t.Fatal("default: no bad-header frames despite checksum corruption")
		}
		if total := truncated + badHeader; total > spec.N/2 {
			t.Fatalf("%s: %d/%d frames malformed, far above the %.2f fraction", schema, total, spec.N, spec.Malformed)
		}
	}
}

// TestWireStreamZeroMalformed checks the clean-trace case every decoder
// accepts: no injected corruption means every frame parses.
func TestWireStreamZeroMalformed(t *testing.T) {
	for _, schema := range wireSchemas {
		fs, err := WireStream(WireSpec{Schema: schema, N: 128, Seed: 3})
		if err != nil {
			t.Fatalf("%s: %v", schema, err)
		}
		var dec *packet.Decoder
		if schema != packet.SchemaDefault {
			if dec, err = packet.BuiltinDecoder(schema); err != nil {
				t.Fatal(err)
			}
		}
		for i, f := range fs.Frames() {
			var perr error
			if dec != nil {
				perr = dec.ParseInto(dec.NewView(), f)
			} else {
				var p packet.Packet
				perr = p.ParseInto(f)
			}
			if perr != nil {
				t.Fatalf("%s: clean frame %d failed to parse: %v", schema, i, perr)
			}
		}
	}
}

// TestWireStreamUnknownSchema pins the error path.
func TestWireStreamUnknownSchema(t *testing.T) {
	if _, err := WireStream(WireSpec{Schema: "nosuch"}); err == nil {
		t.Fatal("unknown schema accepted")
	}
}
