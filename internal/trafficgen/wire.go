package trafficgen

import (
	"fmt"
	"math/rand"

	"manorm/internal/packet"
	"manorm/internal/usecases"
)

// WireSpec describes a replayable byte-stream trace for the frame-batch
// ingest path: which schema's workload to render, how long, what fraction
// of the frames hit installed state, and what fraction arrive malformed
// (truncated or corrupted) to exercise the decoder's typed drop paths.
// The same spec always yields a byte-identical trace — the pcap-style
// property the soak harness and the fuzz corpus rely on.
type WireSpec struct {
	// Schema selects the workload: "" or packet.SchemaDefault for the
	// gateway & load-balancer trace, or one of the builtin schema names
	// (vxlan, mpls, gtpu) for the matching overlay trace.
	Schema string
	// N is the trace length in frames (default 4096).
	N int
	// HitRatio is the fraction of frames addressed to installed state
	// (default 1.0; the rest exercise the drop path).
	HitRatio float64
	// Malformed is the fraction of frames corrupted on the wire: half are
	// truncated, half carry a damaged header (a flipped IPv4 checksum byte
	// on the default schema, a mid-graph cut on generic schemas).
	Malformed float64
	// Seed drives every random choice.
	Seed int64
	// Services/Backends size the generated configuration (defaults 20/8 —
	// the paper's measurement setup).
	Services, Backends int
}

// withDefaults fills the spec's zero values.
func (s WireSpec) withDefaults() WireSpec {
	if s.N <= 0 {
		s.N = 4096
	}
	if s.HitRatio <= 0 {
		s.HitRatio = 1.0
	}
	if s.Services <= 0 {
		s.Services = 20
	}
	if s.Backends <= 0 {
		s.Backends = 8
	}
	return s
}

// WireStream renders the spec to a frame trace. The configuration the
// trace targets is regenerated from (Services, Backends, Seed) with the
// matching usecases generator, so a pipeline built from the same
// parameters matches the trace's hit fraction.
func WireStream(spec WireSpec) (*FrameStream, error) {
	spec = spec.withDefaults()
	var fs *FrameStream
	legacy := false
	switch spec.Schema {
	case "", packet.SchemaDefault:
		g := usecases.Generate(spec.Services, spec.Backends, spec.Seed)
		frames, _ := Wire(GwLB(g, spec.N, spec.HitRatio, spec.Seed+1))
		fs = &FrameStream{frames: frames}
		legacy = true
	case packet.SchemaVXLAN:
		g := usecases.GenerateVXLAN(spec.Services, spec.Backends, spec.Seed)
		var err error
		fs, err = VXLANFrames(g, spec.N, spec.HitRatio, spec.Seed+1)
		if err != nil {
			return nil, err
		}
	case packet.SchemaMPLS:
		g := usecases.GenerateMPLS(spec.Services, 4, spec.Seed)
		var err error
		fs, err = MPLSFrames(g, spec.N, spec.HitRatio, spec.Seed+1)
		if err != nil {
			return nil, err
		}
	case packet.SchemaGTPU:
		g := usecases.GenerateGTPU(spec.Services, spec.Backends, spec.Seed)
		var err error
		fs, err = GTPUFrames(g, spec.N, spec.HitRatio, spec.Seed+1)
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("trafficgen: unknown wire schema %q", spec.Schema)
	}
	corruptFrames(fs.frames, spec.Malformed, spec.Seed+2, legacy)
	return fs, nil
}

// corruptFrames damages a seeded fraction of the trace in place,
// alternating two failure shapes. Truncation below the first header makes
// any decoder reject the frame as truncated. The second shape depends on
// the codec: the default path gets a flipped IPv4 checksum byte (rejected
// as a bad header; the frame is copied first, since traces share frame
// storage), while generic parse graphs get a mid-graph cut — the lenient
// decoders accept those with the remainder as payload, exercising the
// partial-parse path rather than a drop.
func corruptFrames(frames [][]byte, frac float64, seed int64, legacy bool) {
	if frac <= 0 {
		return
	}
	rng := rand.New(rand.NewSource(seed))
	for i, f := range frames {
		if rng.Float64() >= frac {
			continue
		}
		if rng.Intn(2) == 0 {
			frames[i] = f[:rng.Intn(packet.EthHeaderLen)]
			continue
		}
		if legacy && len(f) >= packet.EthHeaderLen+11 {
			g := append([]byte(nil), f...)
			g[packet.EthHeaderLen+10] ^= 0xFF
			frames[i] = g
		} else if len(f) > packet.EthHeaderLen+2 {
			frames[i] = f[:packet.EthHeaderLen+2]
		}
	}
}
