package openflow

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"manorm/internal/stats"
	"manorm/internal/telemetry"
)

// Client is the controller-side endpoint: it sends flow-mods, waits on
// barriers, and reads stats over a control connection. Safe for
// concurrent use.
//
// Resilience model: every RPC attempt runs under a per-attempt deadline
// (WithRPCTimeout) and transient failures — timeouts and connection loss
// — are retried under an exponential-backoff schedule (WithRetryPolicy).
// When a dialer is configured (WithDialer), connection loss triggers an
// automatic reconnect; flow-mods live in an xid-keyed resend queue until
// a barrier reply acknowledges them, so they are retried idempotently
// across drops and reconnects (the agent deduplicates by xid). Without a
// dialer, connection loss is terminal.
type Client struct {
	dial       func() (net.Conn, error)
	rpcTimeout time.Duration
	retry      RetryPolicy
	latCap     int

	opMu sync.Mutex // serializes RPC retry loops and reconnects
	rng  *rand.Rand // backoff jitter stream; guarded by opMu

	mu       sync.Mutex
	conn     *Conn
	gen      int  // bumped per attach; stale read loops detect replacement
	attached bool // a transport has been attached at least once
	broken   bool
	closed   bool
	pending  map[uint32]chan *Message
	queue    []queuedMod
	asyncErr error
	lat      *stats.Reservoir
	rpcs     int64

	xid atomic.Uint32

	// ModsSent counts flow-mods issued — the controller-side churn
	// metric.
	ModsSent int64

	modsResent int64
	retries    int64
	reconnects int64
	timeouts   int64
	switchErrs int64
}

// queuedMod is one unacknowledged flow-mod in the resend queue.
type queuedMod struct {
	xid uint32
	mod *FlowMod
}

// NewClient starts a client on the connection and performs the hello
// handshake. conn may be nil when a dialer is configured — the client
// then dials (with backoff) itself.
func NewClient(conn net.Conn, opts ...ClientOption) (*Client, error) {
	c := &Client{
		rpcTimeout: 5 * time.Second,
		retry:      DefaultRetryPolicy(),
		latCap:     1024,
		pending:    make(map[uint32]chan *Message),
	}
	for _, o := range opts {
		o(c)
	}
	c.rng = rand.New(rand.NewSource(c.retry.Seed))
	c.lat = stats.NewReservoir(c.latCap, c.retry.Seed+1)

	if conn != nil {
		err := c.attach(conn)
		if err == nil {
			return c, nil
		}
		if c.dial == nil {
			return nil, err
		}
	} else if c.dial == nil {
		return nil, opErr("handshake", 0, -1, fmt.Errorf("%w: no connection and no dialer", ErrClosed))
	}
	c.opMu.Lock()
	defer c.opMu.Unlock()
	if err := c.reconnect(context.Background()); err != nil {
		return nil, err
	}
	return c, nil
}

// attach performs the hello handshake on a fresh transport and starts its
// read loop. The switch speaks first, so the handshake also works over
// fully synchronous transports (net.Pipe).
func (c *Client) attach(raw net.Conn) error {
	nc := NewConn(raw)
	if c.rpcTimeout > 0 {
		_ = raw.SetDeadline(time.Now().Add(c.rpcTimeout))
	}
	m, err := nc.Recv()
	if err != nil {
		raw.Close()
		return opErr("handshake", 0, -1, err)
	}
	if m.Type != TypeHello {
		raw.Close()
		return opErr("handshake", m.XID, -1, fmt.Errorf("%w: expected hello, got %s", ErrBadFrame, m.Type))
	}
	if err := nc.Send(&Message{Type: TypeHello}); err != nil {
		raw.Close()
		return opErr("handshake", 0, -1, err)
	}
	if c.rpcTimeout > 0 {
		_ = raw.SetDeadline(time.Time{})
	}
	c.mu.Lock()
	c.conn = nc
	c.attached = true
	c.broken = false
	c.gen++
	gen := c.gen
	c.mu.Unlock()
	go c.readLoop(nc, gen)
	return nil
}

func (c *Client) readLoop(nc *Conn, gen int) {
	for {
		m, err := nc.Recv()
		if err != nil {
			// A decode failure of a well-framed message leaves the
			// stream usable; skip the frame and keep reading.
			if (errors.Is(err, ErrBadFrame) || errors.Is(err, ErrUnsupported)) && !nc.Broken() {
				continue
			}
			c.mu.Lock()
			if gen == c.gen {
				c.broken = true
				for xid, ch := range c.pending {
					close(ch)
					delete(c.pending, xid)
				}
			}
			c.mu.Unlock()
			return
		}
		c.mu.Lock()
		if m.Type == TypeError {
			// An error addressed to a queued flow-mod is a permanent
			// switch-side rejection: drop it from the resend queue and
			// surface it at the next barrier.
			if i := queueIndex(c.queue, m.XID); i >= 0 {
				c.queue = append(c.queue[:i], c.queue[i+1:]...)
				if c.asyncErr == nil {
					c.asyncErr = &SwitchError{XID: m.XID, Msg: m.Err}
				}
				atomic.AddInt64(&c.switchErrs, 1)
				c.mu.Unlock()
				continue
			}
		}
		if ch, ok := c.pending[m.XID]; ok {
			ch <- m
			delete(c.pending, m.XID)
		}
		c.mu.Unlock()
	}
}

func queueIndex(queue []queuedMod, xid uint32) int {
	for i, q := range queue {
		if q.xid == xid {
			return i
		}
	}
	return -1
}

func (c *Client) isClosed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

func (c *Client) markBroken(nc *Conn) {
	c.mu.Lock()
	if c.conn == nc {
		c.broken = true
	}
	c.mu.Unlock()
}

func (c *Client) dropPending(xid uint32) {
	c.mu.Lock()
	delete(c.pending, xid)
	c.mu.Unlock()
}

func (c *Client) observeLatency(d time.Duration) {
	c.mu.Lock()
	c.lat.Add(float64(d.Nanoseconds()))
	c.rpcs++
	c.mu.Unlock()
}

// rpc sends a request and waits for the reply carrying the same xid,
// retrying transient failures. Permanent failures (switch-reported
// errors, context cancellation) return immediately.
func (c *Client) rpc(ctx context.Context, op string, m *Message) (*Message, error) {
	c.opMu.Lock()
	defer c.opMu.Unlock()
	return c.rpcLocked(ctx, op, m)
}

func (c *Client) rpcLocked(ctx context.Context, op string, m *Message) (*Message, error) {
	var lastErr error
	for attempt := 0; attempt <= c.retry.MaxRetries; attempt++ {
		if attempt > 0 {
			atomic.AddInt64(&c.retries, 1)
			if err := sleep(ctx, c.retry.Delay(attempt-1, c.rng)); err != nil {
				return nil, opErr(op, 0, -1, err)
			}
		}
		if err := ctx.Err(); err != nil {
			return nil, opErr(op, 0, -1, err)
		}
		reply, err := c.attemptRPC(ctx, op, m)
		if err == nil {
			return reply, nil
		}
		lastErr = err
		var se *SwitchError
		if errors.As(err, &se) || ctx.Err() != nil {
			return nil, err
		}
		if errors.Is(err, ErrClosed) {
			if c.dial == nil || c.isClosed() {
				return nil, err
			}
			if rerr := c.reconnect(ctx); rerr != nil {
				return nil, rerr
			}
		}
		// ErrTimeout: retry on the live connection with a fresh xid (a
		// stale reply to the timed-out xid is discarded by readLoop).
	}
	return nil, lastErr
}

// attemptRPC performs one send-and-wait under the per-attempt deadline.
func (c *Client) attemptRPC(ctx context.Context, op string, m *Message) (*Message, error) {
	c.mu.Lock()
	if c.closed || c.conn == nil || c.broken {
		c.mu.Unlock()
		return nil, opErr(op, 0, -1, ErrClosed)
	}
	nc := c.conn
	xid := c.xid.Add(1)
	req := *m
	req.XID = xid
	ch := make(chan *Message, 1)
	c.pending[xid] = ch
	c.mu.Unlock()

	start := time.Now()
	if err := nc.Send(&req); err != nil {
		c.dropPending(xid)
		c.markBroken(nc)
		return nil, opErr(op, xid, -1, err)
	}
	var timeout <-chan time.Time
	if c.rpcTimeout > 0 {
		t := time.NewTimer(c.rpcTimeout)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case reply, ok := <-ch:
		if !ok {
			return nil, opErr(op, xid, -1, ErrClosed)
		}
		c.observeLatency(time.Since(start))
		if reply.Type == TypeError {
			return nil, opErr(op, xid, -1, &SwitchError{XID: xid, Msg: reply.Err})
		}
		return reply, nil
	case <-timeout:
		c.dropPending(xid)
		atomic.AddInt64(&c.timeouts, 1)
		return nil, opErr(op, xid, -1, ErrTimeout)
	case <-ctx.Done():
		c.dropPending(xid)
		return nil, opErr(op, xid, -1, ctx.Err())
	}
}

// reconnect closes the current transport, redials with backoff, and
// resends every queued (unacknowledged) flow-mod under its original xid.
// Callers hold opMu.
func (c *Client) reconnect(ctx context.Context) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return opErr("reconnect", 0, -1, ErrClosed)
	}
	old := c.conn
	redial := c.attached // the first attach is a connect, not a reconnect
	c.conn = nil
	c.broken = true
	c.mu.Unlock()
	if old != nil {
		old.Close()
	}
	var lastErr error = ErrClosed
	for attempt := 0; attempt <= c.retry.MaxRetries; attempt++ {
		if attempt > 0 {
			if err := sleep(ctx, c.retry.Delay(attempt-1, c.rng)); err != nil {
				return opErr("reconnect", 0, -1, err)
			}
		}
		if err := ctx.Err(); err != nil {
			return opErr("reconnect", 0, -1, err)
		}
		raw, err := c.dial()
		if err != nil {
			lastErr = err
			continue
		}
		if err := c.attach(raw); err != nil {
			lastErr = err
			continue
		}
		if redial {
			atomic.AddInt64(&c.reconnects, 1)
		}
		c.mu.Lock()
		queue := append([]queuedMod(nil), c.queue...)
		c.mu.Unlock()
		if err := c.resendMods(queue); err != nil {
			lastErr = err
			continue
		}
		return nil
	}
	return opErr("reconnect", 0, -1, fmt.Errorf("%w: giving up after %d attempts: %w", ErrClosed, c.retry.MaxRetries+1, lastErr))
}

// resendMods replays queued flow-mods under their original xids (the
// agent deduplicates re-deliveries by xid).
func (c *Client) resendMods(mods []queuedMod) error {
	c.mu.Lock()
	nc := c.conn
	c.mu.Unlock()
	if nc == nil {
		return opErr("resend", 0, -1, ErrClosed)
	}
	for _, q := range mods {
		if err := nc.Send(&Message{Type: TypeFlowMod, XID: q.xid, Flow: q.mod}); err != nil {
			c.markBroken(nc)
			return opErr("resend", q.xid, int(q.mod.TableID), err)
		}
		atomic.AddInt64(&c.modsResent, 1)
	}
	return nil
}

// SendFlowMod issues a flow modification (asynchronous; commit with
// Barrier). The mod enters the xid-keyed resend queue and stays there
// until a barrier reply acknowledges it, so it survives channel drops and
// reconnects. Switch-side rejections surface at the next Barrier.
func (c *Client) SendFlowMod(ctx context.Context, f *FlowMod) error {
	if f == nil {
		return opErr("flow-mod", 0, -1, badFrame("nil flow-mod"))
	}
	if err := ctx.Err(); err != nil {
		return opErr("flow-mod", 0, int(f.TableID), err)
	}
	atomic.AddInt64(&c.ModsSent, 1)
	xid := c.xid.Add(1)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return opErr("flow-mod", xid, int(f.TableID), ErrClosed)
	}
	c.queue = append(c.queue, queuedMod{xid: xid, mod: f})
	nc, broken := c.conn, c.broken
	c.mu.Unlock()
	if nc == nil || broken {
		if c.dial == nil {
			return opErr("flow-mod", xid, int(f.TableID), ErrClosed)
		}
		// Queued; the next Barrier reconnects and resends it.
		return nil
	}
	if err := nc.Send(&Message{Type: TypeFlowMod, XID: xid, Flow: f}); err != nil {
		c.markBroken(nc)
		if c.dial == nil {
			return opErr("flow-mod", xid, int(f.TableID), err)
		}
	}
	return nil
}

// Barrier commits outstanding flow-mods and blocks until the switch
// acknowledges. The barrier reply carries the switch's receipt list; any
// queued flow-mod missing from it (dropped by the channel) is resent and
// the barrier reissued — a successful Barrier therefore guarantees every
// flow-mod sent before it reached the switch exactly once. Switch-side
// rejections of individual flow-mods surface here as *SwitchError.
func (c *Client) Barrier(ctx context.Context) error {
	c.opMu.Lock()
	defer c.opMu.Unlock()
	for round := 0; ; round++ {
		reply, err := c.rpcLocked(ctx, "barrier", &Message{Type: TypeBarrierRequest})
		if err != nil {
			return err
		}
		missing := c.pruneAcked(parseAckXIDs(reply.Payload), reply.XID)
		if len(missing) == 0 {
			c.mu.Lock()
			asyncErr := c.asyncErr
			c.asyncErr = nil
			c.mu.Unlock()
			if asyncErr != nil {
				return opErr("barrier", reply.XID, -1, asyncErr)
			}
			return nil
		}
		if round >= c.retry.MaxRetries {
			return opErr("barrier", reply.XID, -1, fmt.Errorf("%w: %d flow-mods unacknowledged", ErrTimeout, len(missing)))
		}
		atomic.AddInt64(&c.retries, 1)
		// Resend the gap and reissue the barrier; a send failure here
		// marks the conn broken and the next round's rpc reconnects.
		_ = c.resendMods(missing)
	}
}

// pruneAcked drops acknowledged mods from the resend queue and returns
// the mods issued before the barrier that the switch has not seen.
func (c *Client) pruneAcked(acked []uint32, barrierXID uint32) []queuedMod {
	ackSet := make(map[uint32]bool, len(acked))
	for _, x := range acked {
		ackSet[x] = true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var keep, missing []queuedMod
	for _, q := range c.queue {
		switch {
		case ackSet[q.xid]:
			// Acknowledged: retire.
		case q.xid < barrierXID:
			missing = append(missing, q)
			keep = append(keep, q)
		default:
			// Issued after this barrier; a later barrier covers it.
			keep = append(keep, q)
		}
	}
	c.queue = keep
	return missing
}

// Echo round-trips a payload (liveness / RTT probe).
func (c *Client) Echo(ctx context.Context, payload []byte) error {
	reply, err := c.rpc(ctx, "echo", &Message{Type: TypeEchoRequest, Payload: payload})
	if err != nil {
		return err
	}
	if string(reply.Payload) != string(payload) {
		return opErr("echo", reply.XID, -1, badFrame("echo payload mismatch"))
	}
	return nil
}

// ReadStats fetches one table's per-entry counters.
func (c *Client) ReadStats(ctx context.Context, table int) ([]uint64, error) {
	reply, err := c.rpc(ctx, "stats", &Message{Type: TypeStatsRequest, Stats: &Stats{TableID: uint8(table)}})
	if err != nil {
		return nil, err
	}
	if reply.Stats == nil {
		return nil, opErr("stats", reply.XID, table, badFrame("stats-reply without body"))
	}
	return reply.Stats.Counts, nil
}

// QueueLen reports the number of unacknowledged flow-mods in the resend
// queue (0 after a successful Barrier).
func (c *Client) QueueLen() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.queue)
}

// Close tears down the connection and fails in-flight operations with
// ErrClosed.
func (c *Client) Close() error {
	c.mu.Lock()
	c.closed = true
	nc := c.conn
	c.conn = nil
	c.broken = true
	c.mu.Unlock()
	if nc != nil {
		return nc.Close()
	}
	return nil
}

// Stats reports the unified telemetry view of the control channel
// (telemetry.Provider): the resilience counters plus the RPC latency
// profile as a percentile snapshot in nanoseconds. The JSON metrics
// endpoints export this form, and it is the only metrics surface — the
// struct-typed Metrics view it once subsumed is gone.
func (c *Client) Stats() telemetry.Snapshot {
	c.mu.Lock()
	h := telemetry.HistogramSnapshot{
		Count: uint64(c.lat.Count()),
		Mean:  c.lat.Mean(),
		Max:   c.lat.Quantile(1),
		P50:   c.lat.Quantile(0.5),
		P90:   c.lat.Quantile(0.9),
		P99:   c.lat.Quantile(0.99),
	}
	rpcs := c.rpcs
	c.mu.Unlock()
	h.Sum = h.Mean * float64(h.Count)
	return telemetry.Snapshot{
		Name: "openflow_client",
		Counters: map[string]uint64{
			"mods_sent":     uint64(atomic.LoadInt64(&c.ModsSent)),
			"mods_resent":   uint64(atomic.LoadInt64(&c.modsResent)),
			"retries":       uint64(atomic.LoadInt64(&c.retries)),
			"timeouts":      uint64(atomic.LoadInt64(&c.timeouts)),
			"reconnects":    uint64(atomic.LoadInt64(&c.reconnects)),
			"switch_errors": uint64(atomic.LoadInt64(&c.switchErrs)),
			"rpcs":          uint64(rpcs),
		},
		Histograms: map[string]telemetry.HistogramSnapshot{
			"rpc_latency_ns": h,
		},
	}
}
