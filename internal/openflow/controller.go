package openflow

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Client is the controller-side endpoint: it sends flow-mods, waits on
// barriers, and reads stats over a Conn. Safe for concurrent use.
type Client struct {
	conn *Conn
	xid  atomic.Uint32

	mu      sync.Mutex
	pending map[uint32]chan *Message
	readErr error
	done    chan struct{}

	// ModsSent counts flow-mods issued — the controller-side churn
	// metric.
	ModsSent int64
}

// NewClient starts a client on the connection and waits for the switch's
// hello.
func NewClient(conn *Conn) (*Client, error) {
	c := &Client{conn: conn, pending: make(map[uint32]chan *Message), done: make(chan struct{})}
	// The switch speaks first; read its hello before sending ours so the
	// handshake also works over fully synchronous transports (net.Pipe).
	m, err := conn.Recv()
	if err != nil {
		return nil, err
	}
	if m.Type != TypeHello {
		return nil, fmt.Errorf("openflow: expected hello, got %s", m.Type)
	}
	if err := conn.Send(&Message{Type: TypeHello}); err != nil {
		return nil, err
	}
	go c.readLoop()
	return c, nil
}

func (c *Client) readLoop() {
	for {
		m, err := c.conn.Recv()
		c.mu.Lock()
		if err != nil {
			c.readErr = err
			for xid, ch := range c.pending {
				close(ch)
				delete(c.pending, xid)
			}
			c.mu.Unlock()
			close(c.done)
			return
		}
		if ch, ok := c.pending[m.XID]; ok {
			ch <- m
			delete(c.pending, m.XID)
		}
		c.mu.Unlock()
	}
}

// rpc sends a message and waits for the reply carrying the same xid.
func (c *Client) rpc(m *Message) (*Message, error) {
	m.XID = c.xid.Add(1)
	ch := make(chan *Message, 1)
	c.mu.Lock()
	if c.readErr != nil {
		err := c.readErr
		c.mu.Unlock()
		return nil, err
	}
	c.pending[m.XID] = ch
	c.mu.Unlock()
	if err := c.conn.Send(m); err != nil {
		return nil, err
	}
	reply, ok := <-ch
	if !ok {
		c.mu.Lock()
		err := c.readErr
		c.mu.Unlock()
		return nil, fmt.Errorf("openflow: connection lost: %w", err)
	}
	if reply.Type == TypeError {
		return nil, fmt.Errorf("openflow: switch error: %s", reply.Err)
	}
	return reply, nil
}

// SendFlowMod issues a flow modification (asynchronous; commit with
// Barrier). Errors reported by the switch surface at the next Barrier or
// on the connection.
func (c *Client) SendFlowMod(f *FlowMod) error {
	atomic.AddInt64(&c.ModsSent, 1)
	return c.conn.Send(&Message{Type: TypeFlowMod, XID: c.xid.Add(1), Flow: f})
}

// Barrier commits outstanding flow-mods and blocks until the switch
// acknowledges.
func (c *Client) Barrier() error {
	_, err := c.rpc(&Message{Type: TypeBarrierRequest})
	return err
}

// Echo round-trips a payload (liveness / RTT probe).
func (c *Client) Echo(payload []byte) error {
	reply, err := c.rpc(&Message{Type: TypeEchoRequest, Payload: payload})
	if err != nil {
		return err
	}
	if string(reply.Payload) != string(payload) {
		return fmt.Errorf("openflow: echo payload mismatch")
	}
	return nil
}

// ReadStats fetches one table's per-entry counters.
func (c *Client) ReadStats(table int) ([]uint64, error) {
	reply, err := c.rpc(&Message{Type: TypeStatsRequest, Stats: &Stats{TableID: uint8(table)}})
	if err != nil {
		return nil, err
	}
	if reply.Stats == nil {
		return nil, fmt.Errorf("openflow: stats-reply without body")
	}
	return reply.Stats.Counts, nil
}

// Close tears down the connection.
func (c *Client) Close() error { return c.conn.Close() }
