package openflow

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"manorm/internal/mat"
	"manorm/internal/switches"
	"manorm/internal/telemetry"
)

// Agent is the switch-side protocol endpoint: it owns the logical
// match-action pipeline, applies flow-mods to it, and (re)installs it into
// the backing switch model. Modifications take effect at the next barrier,
// giving the barrier the OpenFlow commit semantics the reactiveness
// experiment counts on.
//
// The agent degrades gracefully under a faulty channel: pipeline state
// lives in the Agent, not the session, so a disconnect (or, by default, a
// malformed frame) ends only the connection — the switch keeps forwarding
// on its last committed tables, and a reattached controller resynchronizes
// by resending unacknowledged flow-mods, which the agent deduplicates by
// xid. Each barrier reply carries the receipt list of flow-mod xids
// covered since the previous barrier, closing the loop for clients on
// lossy channels.
type Agent struct {
	mu sync.Mutex
	sw switches.Switch
	// pipeline is the logical (control-plane-visible) pipeline state.
	pipeline *mat.Pipeline
	dirty    bool
	// ModsApplied counts flow-mods accepted since creation — the
	// control-plane churn metric of §2/§5.
	ModsApplied int

	strictDecode bool
	// applied records flow-mod xids already applied, so resent mods
	// (after drops or reconnects) are acknowledged without re-applying.
	applied map[uint32]bool
	// epochAcks accumulates the xids covered since the last barrier
	// reply — the receipt list shipped in the next TypeBarrierReply.
	epochAcks []uint32

	// DupsSkipped counts deduplicated flow-mod re-deliveries,
	// DecodeErrors malformed frames survived, Sessions control sessions
	// served. Read with atomic.LoadInt64.
	DupsSkipped  int64
	DecodeErrors int64
	Sessions     int64
}

// maxAcksPerReply bounds the barrier-reply receipt list; overflow stays
// queued for the next barrier (the client resends unacked mods, which
// dedup absorbs).
const maxAcksPerReply = 1 << 15

// NewAgent creates an agent fronting a switch model with an initial
// pipeline.
func NewAgent(sw switches.Switch, p *mat.Pipeline, opts ...AgentOption) (*Agent, error) {
	a := &Agent{sw: sw, pipeline: p, applied: make(map[uint32]bool)}
	for _, o := range opts {
		o(a)
	}
	if err := sw.Install(p); err != nil {
		return nil, err
	}
	return a, nil
}

// Pipeline returns the logical pipeline (for inspection in tests).
func (a *Agent) Pipeline() *mat.Pipeline {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.pipeline
}

// Serve handles control messages on the connection until it closes, the
// context is canceled, or (under WithStrictDecode) a malformed frame
// arrives. It is the switch's control-channel main loop; the agent may
// serve any number of sessions sequentially or concurrently.
func (a *Agent) Serve(ctx context.Context, rw net.Conn) error {
	if ctx == nil {
		ctx = context.Background()
	}
	c := NewConn(rw)
	atomic.AddInt64(&a.Sessions, 1)
	stop := context.AfterFunc(ctx, func() { c.Close() })
	defer stop()
	if err := c.Send(&Message{Type: TypeHello}); err != nil {
		return err
	}
	for {
		m, err := c.Recv()
		if err != nil {
			if ctxErr := ctx.Err(); ctxErr != nil {
				return ctxErr
			}
			if (errors.Is(err, ErrBadFrame) || errors.Is(err, ErrUnsupported)) && !c.Broken() {
				// The frame was consumed whole; the stream is still
				// synchronized. Report and keep serving unless strict.
				atomic.AddInt64(&a.DecodeErrors, 1)
				if !a.strictDecode {
					_ = c.Send(&Message{Type: TypeError, XID: recvXID(err), Err: err.Error()})
					continue
				}
			}
			return err
		}
		if err := a.handle(c, m); err != nil {
			return err
		}
	}
}

func (a *Agent) handle(c *Conn, m *Message) error {
	switch m.Type {
	case TypeHello:
		return nil
	case TypeEchoRequest:
		return c.Send(&Message{Type: TypeEchoReply, XID: m.XID, Payload: m.Payload})
	case TypeFlowMod:
		applied, err := a.applyFlowModXID(m.XID, m.Flow)
		if err != nil {
			return c.Send(&Message{Type: TypeError, XID: m.XID, Err: err.Error()})
		}
		if !applied {
			atomic.AddInt64(&a.DupsSkipped, 1)
		}
		return nil
	case TypeBarrierRequest:
		if err := a.Commit(); err != nil {
			return c.Send(&Message{Type: TypeError, XID: m.XID, Err: err.Error()})
		}
		return c.Send(&Message{Type: TypeBarrierReply, XID: m.XID, Payload: a.takeEpochAcks()})
	case TypeStatsRequest:
		stats, err := a.ReadStats(int(m.Stats.TableID))
		if err != nil {
			return c.Send(&Message{Type: TypeError, XID: m.XID, Err: err.Error()})
		}
		return c.Send(&Message{Type: TypeStatsReply, XID: m.XID, Stats: stats})
	case TypeFlowDumpRequest:
		dump, err := a.DumpPipeline()
		if err != nil {
			return c.Send(&Message{Type: TypeError, XID: m.XID, Err: err.Error()})
		}
		return c.Send(&Message{Type: TypeFlowDumpReply, XID: m.XID, Payload: dump})
	default:
		return c.Send(&Message{Type: TypeError, XID: m.XID, Err: unsupported("unhandled type %s", m.Type).Error()})
	}
}

// applyFlowModXID applies one flow-mod with xid deduplication: a
// re-delivered xid is acknowledged (it joins the barrier receipt list)
// but not re-applied, making client resends idempotent. xid 0 bypasses
// dedup.
func (a *Agent) applyFlowModXID(xid uint32, f *FlowMod) (bool, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if xid != 0 && a.applied[xid] {
		a.epochAcks = append(a.epochAcks, xid)
		return false, nil
	}
	if err := a.applyLocked(f); err != nil {
		return false, err
	}
	if xid != 0 {
		a.applied[xid] = true
		a.pruneAppliedLocked(xid)
		a.epochAcks = append(a.epochAcks, xid)
	}
	return true, nil
}

// pruneAppliedLocked bounds the dedup map: once it exceeds 64k entries,
// xids far behind the current one are forgotten (a client never resends a
// mod that old — resend queues drain at every successful barrier).
func (a *Agent) pruneAppliedLocked(latest uint32) {
	if len(a.applied) <= 1<<16 {
		return
	}
	horizon := latest - 1<<15
	for x := range a.applied {
		if x < horizon {
			delete(a.applied, x)
		}
	}
}

// takeEpochAcks drains (up to maxAcksPerReply of) the receipt list into
// wire format.
func (a *Agent) takeEpochAcks() []byte {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := len(a.epochAcks)
	if n > maxAcksPerReply {
		n = maxAcksPerReply
	}
	b := appendAckXIDs(nil, a.epochAcks[:n])
	a.epochAcks = append(a.epochAcks[:0], a.epochAcks[n:]...)
	return b
}

// ApplyFlowMod applies one modification to the logical pipeline. The
// change is installed into the switch at the next Commit (barrier).
func (a *Agent) ApplyFlowMod(f *FlowMod) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.applyLocked(f)
}

// DumpPipeline serializes the logical pipeline (including flow-mods
// awaiting the next barrier) into the flow-dump wire payload.
func (a *Agent) DumpPipeline() ([]byte, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b, err := json.Marshal(a.pipeline)
	if err != nil {
		return nil, opErr("flow-dump", 0, -1, err)
	}
	if len(b)+8 > maxMessage {
		return nil, opErr("flow-dump", 0, -1, fmt.Errorf("%w: pipeline dump %d bytes exceeds frame limit", ErrUnsupported, len(b)))
	}
	return b, nil
}

func (a *Agent) applyLocked(f *FlowMod) error {
	if err := ApplyToPipeline(a.pipeline, f); err != nil {
		return err
	}
	a.ModsApplied++
	a.dirty = true
	return nil
}

// ApplyToPipeline applies one flow-mod to a logical pipeline in place —
// the state transition an agent performs per accepted flow-mod, exported
// so controllers (the fabric) can track each switch's desired state with
// exactly the switch's own semantics.
func ApplyToPipeline(p *mat.Pipeline, f *FlowMod) error {
	if f == nil {
		return badFrame("nil flow-mod")
	}
	if int(f.TableID) >= len(p.Stages) {
		return opErr("flow-mod", 0, int(f.TableID), fmt.Errorf("%w: table %d out of range", ErrUnsupported, f.TableID))
	}
	t := p.Stages[f.TableID].Table

	match, err := matchRow(t, f.Match)
	if err != nil {
		return opErr("flow-mod", 0, int(f.TableID), err)
	}
	idx := findEntry(t, match)

	switch f.Command {
	case FlowAdd:
		if idx >= 0 {
			return opErr("flow-mod", 0, int(f.TableID), fmt.Errorf("duplicate entry in table %d", f.TableID))
		}
		row, err := fullRow(t, match, f.Actions)
		if err != nil {
			return opErr("flow-mod", 0, int(f.TableID), err)
		}
		t.Entries = append(t.Entries, row)
	case FlowModify:
		if idx < 0 {
			return opErr("flow-mod", 0, int(f.TableID), fmt.Errorf("modify: no such entry in table %d", f.TableID))
		}
		row, err := fullRow(t, match, f.Actions)
		if err != nil {
			return opErr("flow-mod", 0, int(f.TableID), err)
		}
		t.Entries[idx] = row
	case FlowDelete:
		if idx < 0 {
			return opErr("flow-mod", 0, int(f.TableID), fmt.Errorf("delete: no such entry in table %d", f.TableID))
		}
		t.Entries = append(t.Entries[:idx], t.Entries[idx+1:]...)
	default:
		return opErr("flow-mod", 0, int(f.TableID), fmt.Errorf("%w: unknown flow-mod command %d", ErrUnsupported, f.Command))
	}
	return nil
}

// Commit reinstalls the logical pipeline into the switch if it changed —
// the barrier semantics.
func (a *Agent) Commit() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.dirty {
		return nil
	}
	if err := a.pipeline.Validate(); err != nil {
		return opErr("commit", 0, -1, err)
	}
	// Install-time classifier validation: a flow-mod batch must not
	// create entries whose regions overlap at equal specificity — such
	// packets would have no most-specific winner.
	for si := range a.pipeline.Stages {
		if amb := a.pipeline.Stages[si].Table.AmbiguousPairs(); len(amb) > 0 {
			return opErr("commit", 0, si, fmt.Errorf("table %d has ambiguous entries %v; rejecting commit", si, amb[0]))
		}
	}
	if err := a.sw.Install(a.pipeline); err != nil {
		return opErr("commit", 0, -1, err)
	}
	a.sw.ApplyMods(1)
	a.dirty = false
	return nil
}

// Stats reports the agent's control-plane telemetry (telemetry.Provider):
// flow-mod churn, dedup and decode counters, session count, and — nested
// under "switch" — the fronted switch model's own snapshot.
func (a *Agent) Stats() telemetry.Snapshot {
	a.mu.Lock()
	mods := uint64(a.ModsApplied)
	sw := a.sw
	a.mu.Unlock()
	snap := telemetry.Snapshot{
		Name: "openflow_agent",
		Counters: map[string]uint64{
			"mods_applied":  mods,
			"dups_skipped":  uint64(atomic.LoadInt64(&a.DupsSkipped)),
			"decode_errors": uint64(atomic.LoadInt64(&a.DecodeErrors)),
			"sessions":      uint64(atomic.LoadInt64(&a.Sessions)),
		},
	}
	if sw != nil {
		snap.Providers = map[string]telemetry.Snapshot{"switch": sw.Stats()}
	}
	return snap
}

// ReadStats snapshots one table's per-entry counters.
func (a *Agent) ReadStats(table int) (*Stats, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if table >= len(a.pipeline.Stages) || table < 0 {
		return nil, opErr("stats", 0, table, fmt.Errorf("%w: table %d out of range", ErrUnsupported, table))
	}
	return &Stats{TableID: uint8(table), Counts: a.sw.Counters(table)}, nil
}

// matchRow builds the match-cell projection of a flow-mod against a
// table's schema: absent fields are wildcards.
func matchRow(t *mat.Table, fields []MatchField) ([]mat.Cell, error) {
	cells := make([]mat.Cell, len(t.Schema))
	for i := range cells {
		cells[i] = mat.Any()
	}
	for _, f := range fields {
		i := t.Schema.Index(f.Name)
		if i < 0 {
			return nil, fmt.Errorf("table %s has no match field %q", t.Name, f.Name)
		}
		if t.Schema[i].Kind != mat.Field {
			return nil, fmt.Errorf("attribute %q is not a match field", f.Name)
		}
		cells[i] = f.Cell.Canonical(t.Schema[i].Width)
	}
	return cells, nil
}

// findEntry locates the entry with exactly the given match cells.
func findEntry(t *mat.Table, match []mat.Cell) int {
	for ei, e := range t.Entries {
		same := true
		for _, fi := range t.Schema.Fields() {
			if e[fi] != match[fi] {
				same = false
				break
			}
		}
		if same {
			return ei
		}
	}
	return -1
}

// fullRow combines match cells with action values into a complete entry;
// every action attribute of the schema must be provided.
func fullRow(t *mat.Table, match []mat.Cell, actions []ActionField) (mat.Entry, error) {
	row := make(mat.Entry, len(t.Schema))
	copy(row, match)
	provided := make(map[int]bool)
	for _, af := range actions {
		i := t.Schema.Index(af.Name)
		if i < 0 {
			return nil, fmt.Errorf("table %s has no action %q", t.Name, af.Name)
		}
		if t.Schema[i].Kind != mat.Action {
			return nil, fmt.Errorf("attribute %q is not an action", af.Name)
		}
		row[i] = mat.Exact(af.Value, t.Schema[i].Width)
		provided[i] = true
	}
	for _, ai := range t.Schema.Actions() {
		if !provided[ai] {
			return nil, fmt.Errorf("action %q missing from flow-mod", t.Schema[ai].Name)
		}
	}
	return row, nil
}
