package openflow

import (
	"fmt"
	"sync"

	"manorm/internal/mat"
	"manorm/internal/switches"
)

// Agent is the switch-side protocol endpoint: it owns the logical
// match-action pipeline, applies flow-mods to it, and (re)installs it into
// the backing switch model. Modifications take effect at the next barrier,
// giving the barrier the OpenFlow commit semantics the reactiveness
// experiment counts on.
type Agent struct {
	mu sync.Mutex
	sw switches.Switch
	// pipeline is the logical (control-plane-visible) pipeline state.
	pipeline *mat.Pipeline
	dirty    bool
	// ModsApplied counts flow-mods accepted since creation — the
	// control-plane churn metric of §2/§5.
	ModsApplied int
}

// NewAgent creates an agent fronting a switch model with an initial
// pipeline.
func NewAgent(sw switches.Switch, p *mat.Pipeline) (*Agent, error) {
	a := &Agent{sw: sw, pipeline: p}
	if err := sw.Install(p); err != nil {
		return nil, err
	}
	return a, nil
}

// Pipeline returns the logical pipeline (for inspection in tests).
func (a *Agent) Pipeline() *mat.Pipeline {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.pipeline
}

// Serve handles control messages on the connection until it closes. It is
// the switch's control-channel main loop.
func (a *Agent) Serve(c *Conn) error {
	if err := c.Send(&Message{Type: TypeHello}); err != nil {
		return err
	}
	for {
		m, err := c.Recv()
		if err != nil {
			return err
		}
		if err := a.handle(c, m); err != nil {
			return err
		}
	}
}

func (a *Agent) handle(c *Conn, m *Message) error {
	switch m.Type {
	case TypeHello:
		return nil
	case TypeEchoRequest:
		return c.Send(&Message{Type: TypeEchoReply, XID: m.XID, Payload: m.Payload})
	case TypeFlowMod:
		if err := a.ApplyFlowMod(m.Flow); err != nil {
			return c.Send(&Message{Type: TypeError, XID: m.XID, Err: err.Error()})
		}
		return nil
	case TypeBarrierRequest:
		if err := a.Commit(); err != nil {
			return c.Send(&Message{Type: TypeError, XID: m.XID, Err: err.Error()})
		}
		return c.Send(&Message{Type: TypeBarrierReply, XID: m.XID})
	case TypeStatsRequest:
		stats, err := a.ReadStats(int(m.Stats.TableID))
		if err != nil {
			return c.Send(&Message{Type: TypeError, XID: m.XID, Err: err.Error()})
		}
		return c.Send(&Message{Type: TypeStatsReply, XID: m.XID, Stats: stats})
	default:
		return c.Send(&Message{Type: TypeError, XID: m.XID, Err: fmt.Sprintf("unhandled type %s", m.Type)})
	}
}

// ApplyFlowMod applies one modification to the logical pipeline. The
// change is installed into the switch at the next Commit (barrier).
func (a *Agent) ApplyFlowMod(f *FlowMod) error {
	if f == nil {
		return fmt.Errorf("openflow: nil flow-mod")
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if int(f.TableID) >= len(a.pipeline.Stages) {
		return fmt.Errorf("openflow: table %d out of range", f.TableID)
	}
	t := a.pipeline.Stages[f.TableID].Table

	match, err := matchRow(t, f.Match)
	if err != nil {
		return err
	}
	idx := findEntry(t, match)

	switch f.Command {
	case FlowAdd:
		if idx >= 0 {
			return fmt.Errorf("openflow: duplicate entry in table %d", f.TableID)
		}
		row, err := fullRow(t, match, f.Actions)
		if err != nil {
			return err
		}
		t.Entries = append(t.Entries, row)
	case FlowModify:
		if idx < 0 {
			return fmt.Errorf("openflow: modify: no such entry in table %d", f.TableID)
		}
		row, err := fullRow(t, match, f.Actions)
		if err != nil {
			return err
		}
		t.Entries[idx] = row
	case FlowDelete:
		if idx < 0 {
			return fmt.Errorf("openflow: delete: no such entry in table %d", f.TableID)
		}
		t.Entries = append(t.Entries[:idx], t.Entries[idx+1:]...)
	default:
		return fmt.Errorf("openflow: unknown flow-mod command %d", f.Command)
	}
	a.ModsApplied++
	a.dirty = true
	return nil
}

// Commit reinstalls the logical pipeline into the switch if it changed —
// the barrier semantics.
func (a *Agent) Commit() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.dirty {
		return nil
	}
	if err := a.pipeline.Validate(); err != nil {
		return err
	}
	// Install-time classifier validation: a flow-mod batch must not
	// create entries whose regions overlap at equal specificity — such
	// packets would have no most-specific winner.
	for si := range a.pipeline.Stages {
		if amb := a.pipeline.Stages[si].Table.AmbiguousPairs(); len(amb) > 0 {
			return fmt.Errorf("openflow: table %d has ambiguous entries %v; rejecting commit", si, amb[0])
		}
	}
	if err := a.sw.Install(a.pipeline); err != nil {
		return err
	}
	a.sw.ApplyMods(1)
	a.dirty = false
	return nil
}

// ReadStats snapshots one table's per-entry counters.
func (a *Agent) ReadStats(table int) (*Stats, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if table >= len(a.pipeline.Stages) || table < 0 {
		return nil, fmt.Errorf("openflow: table %d out of range", table)
	}
	return &Stats{TableID: uint8(table), Counts: a.sw.Counters(table)}, nil
}

// matchRow builds the match-cell projection of a flow-mod against a
// table's schema: absent fields are wildcards.
func matchRow(t *mat.Table, fields []MatchField) ([]mat.Cell, error) {
	cells := make([]mat.Cell, len(t.Schema))
	for i := range cells {
		cells[i] = mat.Any()
	}
	for _, f := range fields {
		i := t.Schema.Index(f.Name)
		if i < 0 {
			return nil, fmt.Errorf("openflow: table %s has no match field %q", t.Name, f.Name)
		}
		if t.Schema[i].Kind != mat.Field {
			return nil, fmt.Errorf("openflow: attribute %q is not a match field", f.Name)
		}
		cells[i] = f.Cell.Canonical(t.Schema[i].Width)
	}
	return cells, nil
}

// findEntry locates the entry with exactly the given match cells.
func findEntry(t *mat.Table, match []mat.Cell) int {
	for ei, e := range t.Entries {
		same := true
		for _, fi := range t.Schema.Fields() {
			if e[fi] != match[fi] {
				same = false
				break
			}
		}
		if same {
			return ei
		}
	}
	return -1
}

// fullRow combines match cells with action values into a complete entry;
// every action attribute of the schema must be provided.
func fullRow(t *mat.Table, match []mat.Cell, actions []ActionField) (mat.Entry, error) {
	row := make(mat.Entry, len(t.Schema))
	copy(row, match)
	provided := make(map[int]bool)
	for _, af := range actions {
		i := t.Schema.Index(af.Name)
		if i < 0 {
			return nil, fmt.Errorf("openflow: table %s has no action %q", t.Name, af.Name)
		}
		if t.Schema[i].Kind != mat.Action {
			return nil, fmt.Errorf("openflow: attribute %q is not an action", af.Name)
		}
		row[i] = mat.Exact(af.Value, t.Schema[i].Width)
		provided[i] = true
	}
	for _, ai := range t.Schema.Actions() {
		if !provided[ai] {
			return nil, fmt.Errorf("openflow: action %q missing from flow-mod", t.Schema[ai].Name)
		}
	}
	return row, nil
}
